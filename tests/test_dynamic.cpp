// Tests for the dynamic update layer (src/dynamic/) and its tree-repair
// primitive: the differential harness (incremental result bit-identical
// to a cold rebuild on the final graph, across every generator family and
// threads ∈ {1, 4}), rebuild-threshold and warm-refine semantics, batch
// validation/atomicity, telemetry, the update-journal format, and the
// canonical max-weight tree maintenance it all rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/stretch.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "dynamic/update_journal.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/airfoil.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/weights.hpp"
#include "harness.hpp"
#include "scale/quality.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_repair.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

using testing::make_update_script;
using testing::replay;
using testing::ReplayOutcome;
using testing::ScriptOptions;

struct Family {
  const char* name;
  Graph graph;
};

/// One small connected graph per generator family the paper evaluates.
std::vector<Family> generator_families() {
  std::vector<Family> families;
  {
    Rng rng(11);
    families.push_back(
        {"lattice", grid_2d(12, 12, WeightModel::log_uniform(0.2, 5.0), &rng)});
  }
  {
    Rng rng(12);
    families.push_back(
        {"rmat", rmat_graph(7, 4, rng, {}, WeightModel::uniform(0.5, 2.0))});
  }
  {
    Rng rng(13);
    families.push_back(
        {"community", planted_partition(160, 4, 0.08, 0.01, rng,
                                        WeightModel::uniform(0.5, 2.0))});
  }
  {
    Rng rng(14);
    const PointCloud pc = gaussian_mixture_points(150, 3, 5, 0.05, rng);
    families.push_back({"knn", knn_graph(pc, 4, KnnWeight::kInverseDistance)});
  }
  families.push_back({"airfoil", joukowski_airfoil_mesh(6, 24).graph});
  return families;
}

DynamicOptions incremental_options(std::uint64_t seed = 42) {
  DynamicOptions opts;
  opts.base = SparsifyOptions{}.with_sigma2(30.0).with_seed(seed);
  opts.rebuild_threshold = 1e9;  // never fall back: always incremental
  return opts;
}

// ---- The differential harness ---------------------------------------------

TEST(Differential, IncrementalIsBitIdenticalToColdRebuildAcrossFamilies) {
  // The crown-jewel contract: after every incrementally applied batch, the
  // dynamic sparsifier equals a cold rebuild on the final graph bit for
  // bit — whatever mix of tree repairs the script exercised — at one and
  // at four worker threads.
  for (auto& [name, g] : generator_families()) {
    Rng script_rng(101);
    const std::vector<UpdateBatch> script =
        make_update_script(g, script_rng, ScriptOptions{});
    for (const int threads : {1, 4}) {
      DynamicOptions opts = incremental_options();
      opts.base.threads = threads;
      DynamicSparsifier dyn(g, opts);
      Index batch_no = 0;
      for (const UpdateBatch& batch : script) {
        const UpdateStats& stats = dyn.apply(batch);
        ++batch_no;
        ASSERT_NE(stats.route, UpdateRoute::kRebuild)
            << name << " batch " << batch_no << " threads " << threads;
        const SparsifyResult cold =
            sparsify(dyn.graph(), dyn.cold_equivalent_options());
        ASSERT_EQ(dyn.result().edges, cold.edges)
            << name << " batch " << batch_no << " threads " << threads;
        ASSERT_EQ(dyn.result().tree_edges, cold.tree_edges)
            << name << " batch " << batch_no << " threads " << threads;
        ASSERT_DOUBLE_EQ(dyn.result().sigma2_estimate, cold.sigma2_estimate)
            << name << " batch " << batch_no << " threads " << threads;
        ASSERT_EQ(dyn.result().reached_target, cold.reached_target);
      }
    }
  }
}

TEST(Differential, ThreadCountNeverChangesAnyBatch) {
  for (auto& [name, g] : generator_families()) {
    Rng script_rng(202);
    const std::vector<UpdateBatch> script =
        make_update_script(g, script_rng, ScriptOptions{});
    const ReplayOutcome t1 = replay(g, script, incremental_options(), 1);
    const ReplayOutcome t4 = replay(g, script, incremental_options(), 4);
    ASSERT_EQ(t1.edges_per_batch.size(), t4.edges_per_batch.size()) << name;
    for (std::size_t b = 0; b < t1.edges_per_batch.size(); ++b) {
      ASSERT_EQ(t1.edges_per_batch[b], t4.edges_per_batch[b])
          << name << " batch " << b;  // bit-for-bit
    }
    EXPECT_DOUBLE_EQ(t1.final_sigma2, t4.final_sigma2) << name;
    EXPECT_EQ(t1.final_reached, t4.final_reached) << name;
  }
}

TEST(Differential, RebuildThresholdChangesWallTimeOnly) {
  // Forcing a cold rebuild on every batch (threshold 0) must reproduce
  // the always-incremental run exactly: the repaired backbone IS the cold
  // Kruskal tree, and both draw the same per-batch seed. The issue's
  // "spectrally equivalent above the threshold" guarantee holds in the
  // strongest possible form.
  const Graph g = generator_families()[0].graph;  // lattice
  Rng script_rng(303);
  const std::vector<UpdateBatch> script =
      make_update_script(g, script_rng, ScriptOptions{.batches = 4});

  DynamicOptions incremental = incremental_options();
  DynamicOptions rebuild = incremental_options();
  rebuild.rebuild_threshold = 0.0;

  const ReplayOutcome a = replay(g, script, incremental, 1);
  const ReplayOutcome b = replay(g, script, rebuild, 1);
  ASSERT_EQ(a.edges_per_batch.size(), b.edges_per_batch.size());
  for (std::size_t i = 0; i < a.edges_per_batch.size(); ++i) {
    EXPECT_EQ(a.edges_per_batch[i], b.edges_per_batch[i]) << "batch " << i;
  }
  for (std::size_t i = 1; i < a.history.size(); ++i) {
    EXPECT_NE(a.history[i].route, UpdateRoute::kRebuild);
    EXPECT_EQ(b.history[i].route, UpdateRoute::kRebuild);
  }
}

TEST(Differential, WarmRefineStaysSpectrallyEquivalent) {
  // warm_refine trades bit-exactness for speed: the result may keep edges
  // a cold run would re-rank, but it must still hit the σ² target, and an
  // independent κ estimate must agree with the cold rebuild's quality
  // within tolerance.
  for (auto& [name, g] : generator_families()) {
    Rng script_rng(404);
    const std::vector<UpdateBatch> script =
        make_update_script(g, script_rng, ScriptOptions{});
    DynamicOptions opts = incremental_options();
    opts.warm_refine = true;
    DynamicSparsifier dyn(g, opts);
    for (const UpdateBatch& batch : script) dyn.apply(batch);
    EXPECT_TRUE(dyn.result().reached_target) << name;

    const SparsifyResult cold =
        sparsify(dyn.graph(), dyn.cold_equivalent_options());
    const SparsifierQuality warm_q = estimate_sparsifier_quality(
        dyn.graph(), dyn.result().extract(dyn.graph()));
    const SparsifierQuality cold_q =
        estimate_sparsifier_quality(dyn.graph(), cold.extract(dyn.graph()));
    // Both sparsifiers meet the target per the independent estimator (the
    // engine's internal estimate is looser than the 20-iteration one, so
    // allow modest slack) and agree with each other within a factor.
    EXPECT_LE(warm_q.sigma2, opts.base.sigma2 * 1.5) << name;
    EXPECT_LE(cold_q.sigma2, opts.base.sigma2 * 1.5) << name;
    EXPECT_LT(warm_q.sigma2, cold_q.sigma2 * 3.0 + 10.0) << name;
    // The warm result is a superset-style keeper: never sparser than the
    // backbone, and at least as dense as the tree.
    EXPECT_GE(dyn.result().num_edges(),
              static_cast<EdgeId>(dyn.result().tree_edges.size()));
  }
}

// ---- Localized re-estimation (EstimationMode::kLocalized) ------------------

Graph small_grid(std::uint64_t seed = 5) {
  Rng rng(seed);
  return grid_2d(8, 8, WeightModel::log_uniform(0.5, 2.0), &rng);
}

DynamicOptions localized_options(std::uint64_t seed = 42) {
  DynamicOptions opts = incremental_options(seed);
  opts.base.estimation = EstimationMode::kLocalized;
  return opts;
}

/// Bitwise-compares the engine's warm heat cache against a cold stretch
/// recompute on the current graph — the dirty set under-approximating
/// would surface here as a stale double.
void expect_heat_cache_matches_cold(const DynamicSparsifier& dyn,
                                    const char* context) {
  const std::span<const double> cache = dyn.localized_heat_cache();
  ASSERT_EQ(cache.size(),
            static_cast<std::size_t>(dyn.graph().num_edges()))
      << context;
  const SpanningTree cold_tree = max_weight_spanning_tree(dyn.graph());
  std::vector<double> expected(cache.size(), 0.0);
  compute_all_stretches(cold_tree, expected);
  for (EdgeId e = 0; e < dyn.graph().num_edges(); ++e) {
    if (cold_tree.contains(e)) continue;  // tree slots are unspecified
    ASSERT_EQ(cache[static_cast<std::size_t>(e)],
              expected[static_cast<std::size_t>(e)])
        << context << " edge " << e;  // exact, not approximate
  }
}

TEST(Localized, BitIdenticalToColdRebuildAcrossFamiliesAndThreads) {
  // The tentpole contract: the localized exact route reuses unchanged
  // heats across batches yet stays bit-identical to a cold localized
  // rebuild on the final graph — and reuse actually happens.
  for (auto& [name, g] : generator_families()) {
    Rng script_rng(101);
    const std::vector<UpdateBatch> script =
        make_update_script(g, script_rng, ScriptOptions{});
    for (const int threads : {1, 4}) {
      DynamicOptions opts = localized_options();
      opts.base.threads = threads;
      DynamicSparsifier dyn(g, opts);
      EdgeId total_reused = 0;
      Index batch_no = 0;
      for (const UpdateBatch& batch : script) {
        const UpdateStats& stats = dyn.apply(batch);
        ++batch_no;
        ASSERT_NE(stats.route, UpdateRoute::kRebuild) << name;
        total_reused += stats.heats_reused;
        const SparsifyResult cold =
            sparsify(dyn.graph(), dyn.cold_equivalent_options());
        ASSERT_EQ(dyn.result().edges, cold.edges)
            << name << " batch " << batch_no << " threads " << threads;
        ASSERT_DOUBLE_EQ(dyn.result().sigma2_estimate, cold.sigma2_estimate)
            << name << " batch " << batch_no;
        ASSERT_EQ(dyn.result().reached_target, cold.reached_target);
        expect_heat_cache_matches_cold(dyn, name);
      }
      // Small batches on these graphs leave most heats untouched; the
      // warm start must actually exploit that, not recompute the world.
      EXPECT_GT(total_reused, 0) << name << " threads " << threads;
    }
  }
}

TEST(Localized, ReuseDominatesOnSingleEdgeReweight) {
  // One off-tree reweight dirties only the paths through one edge: almost
  // every heat must carry over, and the stats/metrics must say so.
  const Graph g = small_grid(17);
  DynamicSparsifier dyn(g, localized_options());
  const SpanningTree t = max_weight_spanning_tree(dyn.graph());
  const EdgeId offtree = t.offtree_edge_ids().back();
  const double w = dyn.graph().edge(offtree).weight;
  const UpdateStats& stats =
      dyn.reweight_edges(std::vector<WeightUpdate>{{offtree, w * 1.01}});
  EXPECT_GT(stats.heats_reused, 0);
  EXPECT_GT(stats.heats_recomputed, 0);  // at least the edge itself
  EXPECT_GT(stats.heats_reused, stats.heats_recomputed);
  const SparsifyResult cold =
      sparsify(dyn.graph(), dyn.cold_equivalent_options());
  EXPECT_EQ(dyn.result().edges, cold.edges);
  expect_heat_cache_matches_cold(dyn, "single reweight");
}

TEST(Localized, AdversarialScriptsStayBitIdentical) {
  // Worst-case churn for the dirty-set tracking: the same tree edge
  // reweighted (and exchange-swapped) every batch, an edge inserted then
  // deleted across consecutive batches (id remap migration), and one
  // batch deleting the entire tree (everything dirty). Each must stay
  // bit-identical to cold and keep the heat cache exact at 1 and 4
  // threads.
  const Graph grid = small_grid(29);
  // Deleting the whole tree needs the off-tree edges alone to span the
  // graph — true on a complete graph, never on a grid (corner vertices
  // have every incident edge in the tree).
  Graph complete(12);
  {
    Rng rng(59);
    for (Vertex u = 0; u < complete.num_vertices(); ++u) {
      for (Vertex v = u + 1; v < complete.num_vertices(); ++v) {
        complete.add_edge(u, v, rng.uniform(0.5, 2.0));
      }
    }
    complete.finalize();
  }
  const struct {
    const char* name;
    const Graph& graph;
    std::vector<UpdateBatch> script;
  } cases[] = {
      {"repeated-reweight", grid, testing::make_repeated_reweight_script(grid)},
      {"insert-then-delete", grid, testing::make_insert_delete_script(grid)},
      {"all-tree-edges", complete,
       testing::make_all_tree_edge_deletion_script(complete)},
  };
  for (const auto& [name, g, script] : cases) {
    for (const int threads : {1, 4}) {
      DynamicOptions opts = localized_options();
      opts.base.threads = threads;
      DynamicSparsifier dyn(g, opts);
      Index batch_no = 0;
      for (const UpdateBatch& batch : script) {
        dyn.apply(batch);
        ++batch_no;
        const SparsifyResult cold =
            sparsify(dyn.graph(), dyn.cold_equivalent_options());
        ASSERT_EQ(dyn.result().edges, cold.edges)
            << name << " batch " << batch_no << " threads " << threads;
        expect_heat_cache_matches_cold(dyn, name);
      }
    }
  }
}

TEST(Localized, PowerModeKeepsEmptyCacheAndZeroStats) {
  // The default power route is untouched by the feature: no cache, zero
  // reuse counters, and the crown-jewel parity as before.
  const Graph g = small_grid(31);
  DynamicSparsifier dyn(g, incremental_options());
  dyn.insert_edges(std::vector<Edge>{Edge{0, 27, 1.1}});
  EXPECT_TRUE(dyn.localized_heat_cache().empty());
  EXPECT_EQ(dyn.history().back().heats_reused, 0);
  EXPECT_EQ(dyn.history().back().heats_recomputed, 0);
}

// ---- Tree repair (the primitive the contract rests on) ---------------------

TEST(TreeRepair, MaintainedTreeMatchesColdKruskalUnderRandomChurn) {
  Rng rng(7);
  Graph g = grid_2d(9, 9, WeightModel::log_uniform(0.2, 5.0), &rng);
  MaxWeightTree tree(g, max_weight_spanning_tree(g).tree_edge_ids());

  for (int round = 0; round < 40; ++round) {
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    if (kind == 0) {  // reweight a random edge
      const EdgeId e = static_cast<EdgeId>(
          rng.uniform_int(0, g.num_edges() - 1));
      const double old_w = g.edge(e).weight;
      g.set_weight(e, rng.uniform(0.1, 8.0));
      tree.after_reweight(e, old_w);
    } else if (kind == 1) {  // insert a random non-parallel edge
      const Vertex u =
          static_cast<Vertex>(rng.uniform_int(0, g.num_vertices() - 1));
      const Vertex v =
          static_cast<Vertex>(rng.uniform_int(0, g.num_vertices() - 1));
      if (u == v || g.find_edge(u, v) != kInvalidEdge) continue;
      const EdgeId id = g.add_edge(u, v, rng.uniform(0.1, 8.0));
      g.finalize();
      tree.after_insert(id);
    } else {  // delete a random edge batch (skip disconnecting picks)
      std::vector<EdgeId> remove = {
          static_cast<EdgeId>(rng.uniform_int(0, g.num_edges() - 1))};
      if (!testing::stays_connected(g, remove)) continue;
      std::vector<char> mask(static_cast<std::size_t>(g.num_edges()), 0);
      mask[static_cast<std::size_t>(remove[0])] = 1;
      tree.after_deletions(mask);
      const std::vector<EdgeId> remap = g.remove_edges(remove);
      tree.remap_ids(remap);
      g.finalize();
    }
    const std::span<const EdgeId> canon = tree.canonical_edge_ids();
    const std::vector<EdgeId> maintained(canon.begin(), canon.end());
    const SpanningTree cold = max_weight_spanning_tree(g);
    const std::vector<EdgeId> expected(cold.tree_edge_ids().begin(),
                                       cold.tree_edge_ids().end());
    ASSERT_EQ(maintained, expected) << "round " << round;
  }
}

TEST(TreeRepair, DeletionReconnectionTieBreakIsCanonical) {
  // Regression: deleting several tree edges at once creates components
  // whose best crossing candidates TIE in weight across *different*
  // component pairs. Only two of the three w=5 candidates below fit in the
  // repaired tree, so consuming them in container order (e.g. a map keyed
  // by union-find roots) instead of the canonical (weight desc, id asc)
  // order picks the wrong pair — here it would keep edge 7 over edge 6 —
  // and silently breaks the bit-identical-to-Kruskal contract.
  Graph g(6);
  g.add_edge(0, 1, 10.0);  // 0: intra component A
  g.add_edge(2, 3, 10.0);  // 1: intra component B
  g.add_edge(4, 5, 10.0);  // 2: intra component C
  g.add_edge(1, 2, 10.0);  // 3: A—B connector (deleted)
  g.add_edge(3, 4, 10.0);  // 4: B—C connector (deleted)
  g.add_edge(0, 2, 5.0);   // 5: A—B candidate, tie
  g.add_edge(2, 4, 5.0);   // 6: B—C candidate, tie — canonical pick
  g.add_edge(0, 4, 5.0);   // 7: A—C candidate, tie — canonical reject
  g.finalize();

  MaxWeightTree tree(g, max_weight_spanning_tree(g).tree_edge_ids());
  std::vector<char> mask(8, 0);
  mask[3] = mask[4] = 1;
  EXPECT_EQ(tree.after_deletions(mask), 2);
  const std::vector<EdgeId> removed = {3, 4};
  const std::vector<EdgeId> remap = g.remove_edges(removed);
  tree.remap_ids(remap);
  g.finalize();

  const std::span<const EdgeId> canon = tree.canonical_edge_ids();
  const std::vector<EdgeId> maintained(canon.begin(), canon.end());
  const SpanningTree cold = max_weight_spanning_tree(g);
  const std::vector<EdgeId> expected(cold.tree_edge_ids().begin(),
                                     cold.tree_edge_ids().end());
  EXPECT_EQ(maintained, expected);
  // Spell the canonical winner out: old edges 5 and 6 (now 3 and 4), not 7.
  EXPECT_TRUE(tree.contains(3));
  EXPECT_TRUE(tree.contains(4));
  EXPECT_FALSE(tree.contains(5));
}

TEST(TreeRepair, DirtyEdgesCoverEveryStructuralChange) {
  // begin_batch() opens a window; every previous-tree edge that is
  // reweighted, swapped out, or deleted is recorded by id.
  Rng rng(3);
  Graph g = grid_2d(6, 6, WeightModel::log_uniform(0.5, 2.0), &rng);
  MaxWeightTree tree(g, max_weight_spanning_tree(g).tree_edge_ids());

  tree.begin_batch();
  EXPECT_TRUE(tree.dirty_tree_edges().empty());

  // Off-tree reweight that cannot enter the tree: records nothing (no
  // previous-tree path changed).
  const SpanningTree t0 = max_weight_spanning_tree(g);
  const EdgeId off = t0.offtree_edge_ids().front();
  const double old_off = g.edge(off).weight;
  g.set_weight(off, old_off * 0.5);
  EXPECT_FALSE(tree.after_reweight(off, old_off));
  EXPECT_TRUE(tree.dirty_tree_edges().empty());

  // Tree-edge reweight (no swap): records the edge itself.
  const EdgeId te = t0.tree_edge_ids()[5];
  const double old_te = g.edge(te).weight;
  g.set_weight(te, old_te * 1.5);  // increase: provably no swap
  EXPECT_FALSE(tree.after_reweight(te, old_te));
  ASSERT_EQ(tree.dirty_tree_edges().size(), 1u);
  EXPECT_EQ(tree.dirty_tree_edges()[0], te);

  // A dominating insert swaps out a path edge: the swapped-OUT edge is
  // recorded (paths that used it are exactly the rerouted ones).
  tree.begin_batch();
  const EdgeId heavy = g.add_edge(0, g.num_vertices() - 1, 1e6);
  g.finalize();
  EXPECT_TRUE(tree.after_insert(heavy));
  ASSERT_EQ(tree.dirty_tree_edges().size(), 1u);
  const EdgeId swapped_out = tree.dirty_tree_edges()[0];
  EXPECT_NE(swapped_out, heavy);
  EXPECT_FALSE(tree.contains(swapped_out));
  EXPECT_TRUE(tree.contains(heavy));

  // Batched deletion records each deleted tree edge by (pre-remap) id.
  tree.begin_batch();
  EdgeId victim = kInvalidEdge;
  for (const EdgeId e : tree.canonical_edge_ids()) {
    if (testing::stays_connected(g, {e})) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidEdge);
  std::vector<char> mask(static_cast<std::size_t>(g.num_edges()), 0);
  mask[static_cast<std::size_t>(victim)] = 1;
  tree.after_deletions(mask);
  const auto recorded = tree.dirty_tree_edges();
  EXPECT_TRUE(std::find(recorded.begin(), recorded.end(), victim) !=
              recorded.end());

  // begin_batch() clears the window.
  tree.begin_batch();
  EXPECT_TRUE(tree.dirty_tree_edges().empty());
}

TEST(TreeRepair, DeletionsThatDisconnectThrow) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  MaxWeightTree tree(g, max_weight_spanning_tree(g).tree_edge_ids());
  std::vector<char> mask = {1, 0};
  EXPECT_THROW(tree.after_deletions(mask), std::invalid_argument);
}

// ---- DynamicSparsifier unit behavior ---------------------------------------

TEST(Dynamic, InitialBuildMatchesColdEquivalentOptions) {
  const Graph g = small_grid();
  DynamicSparsifier dyn(g, incremental_options());
  ASSERT_EQ(dyn.batches_applied(), 1);
  const SparsifyResult cold = sparsify(g, dyn.cold_equivalent_options());
  EXPECT_EQ(dyn.result().edges, cold.edges);
  EXPECT_EQ(dyn.history().front().route, UpdateRoute::kRebuild);
}

TEST(Dynamic, ValidationRejectsBadBatchesAtomically) {
  const Graph g = small_grid();
  DynamicSparsifier dyn(g, incremental_options());
  const std::vector<EdgeId> before = dyn.result().edges;
  const EdgeId m = dyn.graph().num_edges();

  UpdateBatch bad;
  bad.remove = {m};  // out of range
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);
  bad.remove = {0, 0};  // duplicate
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);
  bad.remove = {0};
  bad.reweight = {{0, 1.0}};  // removed and reweighted
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);
  bad = UpdateBatch{};
  bad.reweight = {{1, -2.0}};  // non-positive weight
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);
  bad = UpdateBatch{};
  bad.reweight = {{1, std::nan("")}};
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);
  bad = UpdateBatch{};
  bad.insert = {Edge{3, 3, 1.0}};  // self-loop
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);
  bad = UpdateBatch{};
  bad.insert = {Edge{0, g.num_vertices(), 1.0}};  // endpoint out of range
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);

  // Deleting every edge at a corner vertex disconnects it.
  bad = UpdateBatch{};
  for (const auto item : dyn.graph().neighbors(0)) {
    bad.remove.push_back(item.edge);
  }
  EXPECT_THROW(dyn.apply(bad), std::invalid_argument);

  // Nothing changed: same graph, same sparsifier, only batch 0 recorded.
  EXPECT_EQ(dyn.graph().num_edges(), m);
  EXPECT_EQ(dyn.result().edges, before);
  EXPECT_EQ(dyn.batches_applied(), 1);
}

TEST(Dynamic, BridgeSwapInOneBatchIsAccepted) {
  // Deleting a bridge while inserting its replacement in the same batch
  // must pass validation (inserts land before removals).
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  g.add_edge(0, 2, 0.5);  // edge 4
  g.finalize();
  DynamicSparsifier dyn(g, incremental_options());
  UpdateBatch batch;
  batch.remove = {4};
  batch.insert = {Edge{1, 3, 0.7}};
  const UpdateStats& stats = dyn.apply(batch);
  EXPECT_EQ(stats.removed, 1);
  EXPECT_EQ(stats.inserted, 1);
  EXPECT_EQ(dyn.graph().num_edges(), 5);
  EXPECT_TRUE(is_connected(dyn.graph()));
  const SparsifyResult cold =
      sparsify(dyn.graph(), dyn.cold_equivalent_options());
  EXPECT_EQ(dyn.result().edges, cold.edges);
}

TEST(Dynamic, RoutesAndTelemetryAreClassifiedPerBatch) {
  const Graph g = small_grid(9);
  DynamicOptions opts = incremental_options();
  DynamicSparsifier dyn(g, opts);

  // Reweight an off-tree edge downward: provably no tree change — the
  // pure resparsify route.
  const SpanningTree cold_tree = max_weight_spanning_tree(dyn.graph());
  const EdgeId offtree = cold_tree.offtree_edge_ids().front();
  const double w = dyn.graph().edge(offtree).weight;
  const UpdateStats& s1 =
      dyn.reweight_edges(std::vector<WeightUpdate>{{offtree, w * 0.5}});
  EXPECT_EQ(s1.route, UpdateRoute::kResparsify);
  EXPECT_EQ(s1.tree_swaps, 0);
  EXPECT_EQ(s1.reweighted, 1);

  // Delete a tree edge: repair via union-find reconnection.
  const SpanningTree now = max_weight_spanning_tree(dyn.graph());
  const EdgeId tree_edge = now.tree_edge_ids()[0];
  std::vector<EdgeId> remove = {tree_edge};
  ASSERT_TRUE(testing::stays_connected(dyn.graph(), remove));
  const UpdateStats& s2 = dyn.delete_edges(remove);
  EXPECT_EQ(s2.route, UpdateRoute::kTreeRepair);
  EXPECT_EQ(s2.tree_removed, 1);
  EXPECT_GE(s2.tree_swaps, 1);

  // Insertions route through tree repair classification too.
  const UpdateStats& s3 =
      dyn.insert_edges(std::vector<Edge>{Edge{0, 30, 1.3}});
  EXPECT_EQ(s3.route, UpdateRoute::kTreeRepair);
  EXPECT_EQ(s3.inserted, 1);

  // Every batch still matches its cold rebuild.
  const SparsifyResult cold =
      sparsify(dyn.graph(), dyn.cold_equivalent_options());
  EXPECT_EQ(dyn.result().edges, cold.edges);
  // Stage seconds cover the five stages; totals add up.
  for (const UpdateStats& s : dyn.history()) {
    double sum = 0.0;
    for (const double v : s.stage_seconds) sum += v;
    EXPECT_NEAR(s.seconds, sum, 1e-9);
  }
}

/// Records observer callbacks for ordering checks.
class RecordingDynamicObserver : public DynamicObserver {
 public:
  void on_dynamic_stage(DynamicStage stage, double) override {
    stages.push_back(stage);
  }
  void on_update(const UpdateStats& stats) override {
    updates.push_back(stats.batch);
  }
  std::vector<DynamicStage> stages;
  std::vector<Index> updates;
};

TEST(Dynamic, ObserverSeesStagesThenUpdatePerBatch) {
  const Graph g = small_grid(21);
  // Attached at construction, the observer sees the initial build too.
  RecordingDynamicObserver obs;
  DynamicSparsifier dyn(g, incremental_options(), &obs);
  EXPECT_EQ(obs.updates, (std::vector<Index>{0}));
  obs.stages.clear();
  dyn.insert_edges(std::vector<Edge>{Edge{0, 17, 0.9}});
  EXPECT_EQ(obs.updates, (std::vector<Index>{0, 1}));
  // All five stages report, sparsify last.
  ASSERT_FALSE(obs.stages.empty());
  EXPECT_EQ(obs.stages.front(), DynamicStage::kValidate);
  EXPECT_EQ(obs.stages.back(), DynamicStage::kSparsify);
  for (const DynamicStage s :
       {DynamicStage::kValidate, DynamicStage::kApplyGraph,
        DynamicStage::kTreeRepair, DynamicStage::kRebind,
        DynamicStage::kSparsify}) {
    EXPECT_NE(std::find(obs.stages.begin(), obs.stages.end(), s),
              obs.stages.end());
  }
}

TEST(Dynamic, OneShotWrapperMatchesManualReplay) {
  const Graph g = small_grid(33);
  Rng script_rng(55);
  const std::vector<UpdateBatch> script =
      make_update_script(g, script_rng, ScriptOptions{.batches = 2});

  const DynamicResult one_shot =
      dynamic_sparsify(g, script, incremental_options());

  DynamicSparsifier manual(g, incremental_options());
  for (const UpdateBatch& batch : script) manual.apply(batch);

  EXPECT_EQ(one_shot.result.edges, manual.result().edges);
  EXPECT_EQ(one_shot.graph.num_edges(), manual.graph().num_edges());
  EXPECT_EQ(one_shot.history.size(), manual.history().size());
}

TEST(Dynamic, OptionsValidate) {
  EXPECT_THROW(DynamicOptions{}.with_rebuild_threshold(-0.1),
               std::invalid_argument);
  EXPECT_THROW(DynamicOptions{}.with_rebuild_threshold(std::nan("")),
               std::invalid_argument);
  EXPECT_THROW(DynamicOptions{}.with_base(SparsifyOptions{.sigma2 = 0.5}),
               std::invalid_argument);
  DynamicOptions opts;
  opts.rebuild_threshold = -1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  EXPECT_NO_THROW(DynamicOptions{}
                      .with_rebuild_threshold(0.5)
                      .with_warm_refine(true)
                      .validate());
  // Enum names round-trip into telemetry strings.
  for (const UpdateRoute r : {UpdateRoute::kResparsify,
                              UpdateRoute::kTreeRepair,
                              UpdateRoute::kRebuild}) {
    EXPECT_STRNE(to_string(r), "?");
  }
  for (const DynamicStage s :
       {DynamicStage::kValidate, DynamicStage::kApplyGraph,
        DynamicStage::kTreeRepair, DynamicStage::kRebind,
        DynamicStage::kSparsify}) {
    EXPECT_STRNE(to_string(s), "?");
  }
}

// ---- Update journal ---------------------------------------------------------

TEST(Journal, ParsesBatchesAndRejectsMalformedInput) {
  std::istringstream in(
      "% header comment\n"
      "insert 0 5 1.5\n"
      "reweight 1 2 0.75\n"
      "commit\n"
      "# second batch\n"
      "delete 3 4\n");
  const std::vector<JournalBatch> batches = parse_update_journal(in);
  ASSERT_EQ(batches.size(), 2u);  // trailing ops form a final batch
  // Empty commits are skipped — they would shift every later batch seed.
  std::istringstream empties("commit\nreweight 0 1 2.0\ncommit\ncommit\n");
  EXPECT_EQ(parse_update_journal(empties).size(), 1u);
  ASSERT_EQ(batches[0].ops.size(), 2u);
  EXPECT_EQ(batches[0].ops[0].kind, JournalOp::Kind::kInsert);
  EXPECT_EQ(batches[0].ops[0].u, 0);
  EXPECT_EQ(batches[0].ops[0].v, 5);
  EXPECT_DOUBLE_EQ(batches[0].ops[0].weight, 1.5);
  EXPECT_EQ(batches[1].ops[0].kind, JournalOp::Kind::kDelete);

  std::istringstream bad1("frobnicate 1 2\n");
  EXPECT_THROW((void)parse_update_journal(bad1), std::runtime_error);
  std::istringstream bad2("insert 1\n");
  EXPECT_THROW((void)parse_update_journal(bad2), std::runtime_error);
  std::istringstream bad3("insert 1 2 -3\n");
  EXPECT_THROW((void)parse_update_journal(bad3), std::runtime_error);
  std::istringstream bad4("reweight 1 2\n");
  EXPECT_THROW((void)parse_update_journal(bad4), std::runtime_error);
  EXPECT_THROW((void)load_update_journal("/no/such/file.journal"),
               std::runtime_error);
}

TEST(Journal, ParseErrorsNameTheLineAndEchoTheText) {
  // Every parse failure reports the 1-based line number and the offending
  // text, so a bad line in a long journal (or a daemon request stream) is
  // findable without bisection.
  const auto expect_parse_error = [](const std::string& text,
                                     Index bad_line,
                                     const std::string& fragment) {
    std::istringstream in(text);
    try {
      (void)parse_update_journal(in);
      FAIL() << "expected JournalParseError for: " << text;
    } catch (const JournalParseError& e) {
      EXPECT_EQ(e.line(), bad_line) << e.what();
      const std::string what = e.what();
      EXPECT_NE(what.find("line " + std::to_string(bad_line)),
                std::string::npos)
          << what;
      EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
  };
  // Unknown verb (the error names line 3, not line 1).
  expect_parse_error("insert 0 1 2.0\ncommit\nfrobnicate 1 2\n", 3,
                     "frobnicate 1 2");
  // Bad arity, both directions.
  expect_parse_error("insert 1 2\n", 1, "'insert' expects 3 arguments");
  expect_parse_error("reweight 1 2\n", 1, "'reweight' expects 3 arguments");
  expect_parse_error("delete 1\n", 1, "'delete' expects 2 arguments");
  // Trailing garbage is rejected, not silently dropped.
  expect_parse_error("delete 1 2 3\n", 1, "'delete' expects 2 arguments");
  expect_parse_error("insert 0 1 2.0 surprise\n", 1, "expects 3 arguments");
  expect_parse_error("commit now\n", 1, "'commit' takes no arguments");
  // Non-numeric and out-of-domain ids.
  expect_parse_error("insert a 2 1.0\n", 1, "vertex id 'a'");
  expect_parse_error("insert -1 2 1.0\n", 1, "vertex id '-1'");
  expect_parse_error("insert 1 2x 1.0\n", 1, "vertex id '2x'");
  expect_parse_error("insert 99999999999999999999 2 1.0\n", 1,
                     "is not a non-negative integer");
  // Non-numeric, non-positive, and non-finite weights.
  expect_parse_error("insert 1 2 heavy\n", 1, "weight 'heavy'");
  expect_parse_error("insert 1 2 0\n", 1, "positive and finite");
  expect_parse_error("reweight 1 2 -3\n", 1, "positive and finite");
  expect_parse_error("insert 1 2 inf\n", 1, "positive and finite");
  expect_parse_error("insert 1 2 nan\n", 1, "positive and finite");
  // Trailing comments are NOT garbage; full-line comments parse as blank.
  std::istringstream good(
      "insert 0 1 2.0 % note\n"
      "delete 2 3 # note\n"
      "commit % done\n");
  EXPECT_EQ(parse_update_journal(good).size(), 1u);
}

TEST(Journal, FormatAndParseRoundTripBitExactly) {
  // format_journal_op is the canonical spelling: parsing it back yields
  // the identical op, weights included (17 significant digits).
  const std::vector<JournalOp> ops = {
      {JournalOp::Kind::kInsert, 0, 63, 1.25},
      {JournalOp::Kind::kInsert, 7, 8, 0.1},  // 0.1 is not exact in binary
      {JournalOp::Kind::kDelete, 3, 4, 0.0},
      {JournalOp::Kind::kReweight, 1, 2, 1.0 / 3.0},
      {JournalOp::Kind::kReweight, 10, 11, 1e-300},
  };
  for (const JournalOp& op : ops) {
    const std::string text = format_journal_op(op);
    const JournalLine parsed = parse_journal_line(text, 1);
    ASSERT_EQ(parsed.kind, JournalLine::Kind::kOp) << text;
    EXPECT_EQ(parsed.op.kind, op.kind) << text;
    EXPECT_EQ(parsed.op.u, op.u) << text;
    EXPECT_EQ(parsed.op.v, op.v) << text;
    if (op.kind != JournalOp::Kind::kDelete) {
      // Bit-exact round trip, not just approximate.
      EXPECT_EQ(parsed.op.weight, op.weight) << text;
    }
  }
  // The tokenizer drops comment tails and handles arbitrary whitespace.
  const auto tokens = tokenize_journal_line("  insert\t0  1\t 2.0  % tail");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "insert");
  EXPECT_EQ(tokens[3], "2.0");
  EXPECT_TRUE(tokenize_journal_line("   % only a comment").empty());
  EXPECT_TRUE(tokenize_journal_line("").empty());
}

TEST(Journal, WeightBoundaryValuesRoundTripOrRejectConsistently) {
  // Formatter and parser must agree on one weight domain — positive finite
  // doubles, subnormals included — on both the file and wire paths.
  // Historically the formatter happily printed -0.0 as "-0", a token the
  // parser rejects, so parse(format(op)) neither held nor failed cleanly.
  const double tiny_subnormal = std::nextafter(0.0, 1.0);  // DBL_TRUE_MIN
  ASSERT_GT(tiny_subnormal, 0.0);
  ASSERT_LT(tiny_subnormal, std::numeric_limits<double>::min());

  // In-domain: bit-exact round trip, including the subnormal range.
  for (const double w :
       {std::numeric_limits<double>::min(),        // DBL_MIN
        tiny_subnormal,                            // smallest positive
        std::numeric_limits<double>::min() / 2.0,  // mid-subnormal
        std::numeric_limits<double>::denorm_min(), 1e-300, 0.1,
        std::numeric_limits<double>::max()}) {
    const std::string text = format_journal_weight(w);
    const JournalOp op{JournalOp::Kind::kReweight, 1, 2, w};
    const JournalLine parsed = parse_journal_line(format_journal_op(op), 1);
    ASSERT_EQ(parsed.kind, JournalLine::Kind::kOp) << text;
    EXPECT_EQ(parsed.op.weight, w) << text;  // same bits
  }

  // Out-of-domain: the parser rejects the text, and the formatter refuses
  // to produce it in the first place — consistent on both sides.
  for (const double w : {-0.0, 0.0, -1.5,
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_THROW((void)format_journal_weight(w), std::invalid_argument)
        << w;
    const JournalOp op{JournalOp::Kind::kInsert, 0, 1, w};
    EXPECT_THROW((void)format_journal_op(op), std::invalid_argument) << w;
  }
  std::istringstream neg_zero("reweight 1 2 -0\n");
  EXPECT_THROW((void)parse_update_journal(neg_zero), std::runtime_error);
  std::istringstream neg_zero_exp("reweight 1 2 -0.0e0\n");
  EXPECT_THROW((void)parse_update_journal(neg_zero_exp), std::runtime_error);
  // Subnormal text parses to the exact subnormal (strtod's ERANGE for
  // subnormals must not be treated as an error).
  std::istringstream sub("reweight 1 2 4.9406564584124654e-324\n");
  const auto batches = parse_update_journal(sub);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].ops[0].weight,
            std::numeric_limits<double>::denorm_min());
  // Delete ops never format a weight, so a zero weight field is fine.
  EXPECT_EQ(format_journal_op({JournalOp::Kind::kDelete, 3, 4, 0.0}),
            "delete 3 4");
}

TEST(Journal, ResolveErrorsNameTheSourceLine) {
  // Ops parsed from a stream carry their source line into resolve-time
  // errors; hand-built ops (line 0) omit the position but still name the
  // op itself.
  const Graph g = small_grid(3);
  std::istringstream in(
      "reweight 0 1 2.0\n"
      "delete 0 63\n"  // no such edge — line 2
      "commit\n");
  const auto batches = parse_update_journal(in);
  ASSERT_EQ(batches.size(), 1u);
  try {
    (void)resolve_journal_batch(g, batches[0]);
    FAIL() << "expected resolve error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("delete 0 63"), std::string::npos) << what;
  }
  JournalBatch synthetic;
  synthetic.ops.push_back({JournalOp::Kind::kDelete, 0, 63, 0.0});
  try {
    (void)resolve_journal_batch(g, synthetic);
    FAIL() << "expected resolve error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("line"), std::string::npos) << what;
    EXPECT_NE(what.find("delete 0 63"), std::string::npos) << what;
  }
}

TEST(Journal, ResolvesEndpointsAgainstTheLiveGraph) {
  const Graph g = small_grid(3);
  JournalBatch jb;
  jb.ops.push_back({JournalOp::Kind::kDelete, 0, 1, 0.0});
  jb.ops.push_back({JournalOp::Kind::kReweight, 0, 8, 2.5});
  jb.ops.push_back({JournalOp::Kind::kInsert, 0, 63, 1.25});
  const UpdateBatch batch = resolve_journal_batch(g, jb);
  ASSERT_EQ(batch.remove.size(), 1u);
  EXPECT_EQ(batch.remove[0], g.find_edge(0, 1));
  ASSERT_EQ(batch.reweight.size(), 1u);
  EXPECT_EQ(batch.reweight[0].edge, g.find_edge(0, 8));
  EXPECT_DOUBLE_EQ(batch.reweight[0].weight, 2.5);
  ASSERT_EQ(batch.insert.size(), 1u);

  JournalBatch missing;
  missing.ops.push_back({JournalOp::Kind::kDelete, 0, 63, 0.0});
  EXPECT_THROW((void)resolve_journal_batch(g, missing), std::runtime_error);
  JournalBatch dup_insert;
  dup_insert.ops.push_back({JournalOp::Kind::kInsert, 0, 1, 1.0});
  EXPECT_THROW((void)resolve_journal_batch(g, dup_insert),
               std::runtime_error);
  JournalBatch out_of_range;
  out_of_range.ops.push_back({JournalOp::Kind::kDelete, 0, 9999, 0.0});
  EXPECT_THROW((void)resolve_journal_batch(g, out_of_range),
               std::runtime_error);

  // End to end: resolving + applying lands on the cold-equivalent result.
  DynamicSparsifier dyn(g, incremental_options());
  dyn.apply(resolve_journal_batch(dyn.graph(), jb));
  const SparsifyResult cold =
      sparsify(dyn.graph(), dyn.cold_equivalent_options());
  EXPECT_EQ(dyn.result().edges, cold.edges);
}

TEST(Journal, SameBatchDeleteTheNInsertOfOnePairResolves) {
  // The layer supports deleting an edge and inserting its replacement in
  // one batch; the journal resolver must not reject the re-insert as a
  // duplicate of the (about to be deleted) edge.
  const Graph g = small_grid(3);
  JournalBatch jb;
  jb.ops.push_back({JournalOp::Kind::kDelete, 0, 1, 0.0});
  jb.ops.push_back({JournalOp::Kind::kInsert, 0, 1, 9.0});
  const UpdateBatch batch = resolve_journal_batch(g, jb);
  ASSERT_EQ(batch.remove.size(), 1u);
  ASSERT_EQ(batch.insert.size(), 1u);
  EXPECT_DOUBLE_EQ(batch.insert[0].weight, 9.0);

  DynamicSparsifier dyn(g, incremental_options());
  dyn.apply(batch);
  EXPECT_DOUBLE_EQ(
      dyn.graph().edge(dyn.graph().find_edge(0, 1)).weight, 9.0);
  EXPECT_EQ(dyn.result().edges,
            sparsify(dyn.graph(), dyn.cold_equivalent_options()).edges);

  // Inserting the same pair twice in one batch is still rejected.
  JournalBatch dup;
  dup.ops.push_back({JournalOp::Kind::kDelete, 0, 1, 0.0});
  dup.ops.push_back({JournalOp::Kind::kInsert, 0, 1, 1.0});
  dup.ops.push_back({JournalOp::Kind::kInsert, 1, 0, 2.0});
  EXPECT_THROW((void)resolve_journal_batch(g, dup), std::runtime_error);
}

// ---- Graph mutation primitives ---------------------------------------------

TEST(GraphMutation, RemoveEdgesCompactsAndRemaps) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);  // 0
  g.add_edge(1, 2, 2.0);  // 1
  g.add_edge(2, 3, 3.0);  // 2
  g.add_edge(3, 0, 4.0);  // 3
  g.finalize();
  const std::vector<EdgeId> remove = {1};
  const std::vector<EdgeId> remap = g.remove_edges(remove);
  ASSERT_EQ(remap.size(), 4u);
  EXPECT_EQ(remap[0], 0);
  EXPECT_EQ(remap[1], kInvalidEdge);
  EXPECT_EQ(remap[2], 1);
  EXPECT_EQ(remap[3], 2);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 3.0);  // old edge 2

  EXPECT_THROW((void)g.remove_edges(std::vector<EdgeId>{7}),
               std::invalid_argument);
  EXPECT_THROW((void)g.remove_edges(std::vector<EdgeId>{0, 0}),
               std::invalid_argument);
  // Empty removal is a no-op that keeps the adjacency valid.
  (void)g.remove_edges({});
  EXPECT_TRUE(g.finalized());
}

TEST(GraphMutation, SetWeightPatchesAdjacencyInPlace) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  g.set_weight(0, 5.0);
  EXPECT_TRUE(g.finalized());  // no CSR rebuild needed
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 7.0);
  for (const auto item : g.neighbors(0)) {
    EXPECT_DOUBLE_EQ(item.weight, 5.0);
  }
  EXPECT_THROW(g.set_weight(0, 0.0), std::invalid_argument);
  EXPECT_THROW(g.set_weight(0, std::nan("")), std::invalid_argument);
  EXPECT_THROW(g.set_weight(5, 1.0), std::invalid_argument);
}

TEST(GraphMutation, FindEdgeLocatesEitherOrientation) {
  Graph g(4);
  g.add_edge(2, 1, 1.0);
  g.add_edge(1, 3, 2.0);
  g.finalize();
  EXPECT_EQ(g.find_edge(1, 2), 0);
  EXPECT_EQ(g.find_edge(2, 1), 0);
  EXPECT_EQ(g.find_edge(3, 1), 1);
  EXPECT_EQ(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 3), kInvalidEdge);
}

}  // namespace
}  // namespace ssp
