// Tests for the serving subsystem (src/serve/): line framing across
// partial reads, the session table and its admission control, the
// per-connection protocol state machine, deterministic backpressure, and
// — the core contract — concurrent clients committing over real sockets
// producing a sparsifier bit-identical to replaying the committed journal
// offline through the dynamic layer, at thread counts 1 and 4. Everything
// runs in-process (library only), so the suite also runs in the TSan CI
// job where the tools are not built.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/dynamic_sparsifier.hpp"
#include "dynamic/update_journal.hpp"
#include "serve/client.hpp"
#include "serve/connection.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/session_store.hpp"
#include "util/parallel.hpp"

namespace ssp::serve {
namespace {

DynamicOptions test_dynamic_options(double sigma2 = 30.0) {
  DynamicOptions opts;
  opts.base = SparsifyOptions{}.with_sigma2(sigma2).with_seed(42);
  return opts;
}

ServeOptions test_serve_options() {
  return ServeOptions{}.with_dynamic(test_dynamic_options());
}

/// A short unix-socket path (sun_path is ~100 bytes; the build tree's
/// path may not fit).
std::string temp_socket_path(const char* tag) {
  std::ostringstream os;
  os << "/tmp/ssp_serve_" << tag << "_" << ::getpid() << ".sock";
  return os.str();
}

// ---- Line framing -----------------------------------------------------------

TEST(Framing, ReassemblesPartialLinesAcrossReads) {
  LineFramer framer;
  EXPECT_TRUE(framer.push("ins").empty());
  EXPECT_EQ(framer.partial(), "ins");
  const auto lines = framer.push("ert 0 1 2.5\ncom");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "insert 0 1 2.5");
  EXPECT_EQ(framer.partial(), "com");
  const auto rest = framer.push("mit\n");
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "commit");
  EXPECT_TRUE(framer.partial().empty());
}

TEST(Framing, SplitsManyLinesPerReadAndStripsCarriageReturns) {
  LineFramer framer;
  const auto lines = framer.push("ping\r\nquery stats\n\nquit\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "ping");
  EXPECT_EQ(lines[1], "query stats");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "quit");
}

TEST(Framing, RejectsOversizedLines) {
  LineFramer framer(16);
  // Oversized without a terminator: rejected while still assembling.
  EXPECT_THROW((void)framer.push(std::string(17, 'x')), FramingError);
  EXPECT_TRUE(framer.partial().empty());  // poisoned buffer was dropped
  // Oversized with a terminator: rejected when the line completes.
  EXPECT_THROW((void)framer.push(std::string(20, 'y') + "\n"), FramingError);
  // The framer stays usable for fresh input afterwards.
  const auto ok = framer.push("ping\n");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0], "ping");
}

TEST(Protocol, StatusHelpers) {
  EXPECT_TRUE(is_ok("ok"));
  EXPECT_TRUE(is_ok("ok n=3 commits=1"));
  EXPECT_FALSE(is_ok("okay"));
  EXPECT_FALSE(is_ok("err parse: nope"));
  EXPECT_EQ(payload_count("ok n=3 commits=1").value_or(0), 3u);
  EXPECT_EQ(payload_count("ok batch=2").has_value(), false);
  EXPECT_EQ(error_line("parse", "bad\nline"), "err parse: bad line");
}

// ---- Graph sources ----------------------------------------------------------

TEST(GraphSource, GenSpecsAreDeterministic) {
  const Graph a = load_session_graph("gen:grid2d:6x5:7");
  const Graph b = load_session_graph("gen:grid2d:6x5:7");
  ASSERT_EQ(a.num_vertices(), 30);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  bool identical = true;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    identical = identical && a.edge(e).u == b.edge(e).u &&
                a.edge(e).v == b.edge(e).v &&
                a.edge(e).weight == b.edge(e).weight;
  }
  EXPECT_TRUE(identical);
  // A different seed yields different weights.
  const Graph c = load_session_graph("gen:grid2d:6x5:8");
  bool differs = false;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    differs = differs || a.edge(e).weight != c.edge(e).weight;
  }
  EXPECT_TRUE(differs);
  // Every family parses.
  EXPECT_GT(load_session_graph("gen:tri:5x5").num_edges(), 0);
  EXPECT_GT(load_session_graph("gen:ba:32:2").num_edges(), 0);
  EXPECT_GT(load_session_graph("gen:planted:64:4").num_edges(), 0);
}

TEST(GraphSource, RejectsMalformedSpecs) {
  EXPECT_THROW((void)load_session_graph("gen:grid2d"), std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:grid2d:6"),
               std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:grid2d:axb"),
               std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:grid2d:1x5"),
               std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:grid2d:6x5:7:9"),
               std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:nosuch:6x5"),
               std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:ba:32"), std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("gen:ba:32:-1"),
               std::invalid_argument);
  EXPECT_THROW((void)load_session_graph("/no/such/file.mtx"),
               std::runtime_error);
}

// ---- Options validation -----------------------------------------------------

TEST(ServeOptionsTest, ValidatesBounds) {
  EXPECT_NO_THROW(test_serve_options().validate());
  EXPECT_THROW(ServeOptions{}.with_max_sessions(0), std::invalid_argument);
  EXPECT_THROW(ServeOptions{}.with_max_queued_batches(0),
               std::invalid_argument);
  EXPECT_THROW(ServeOptions{}.with_drain_seconds(-1.0),
               std::invalid_argument);

  ServerConfig config;
  config.serve = test_serve_options();
  EXPECT_NO_THROW(config.validate());
  config.tcp_port = 70000;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.tcp_port = -1;
  config.socket_path = "";
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.socket_path = std::string(200, 'x');
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.socket_path = "ok.sock";
  config.max_clients = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.max_clients = 4;
  config.max_line_bytes = 8;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ---- Session table ----------------------------------------------------------

TEST(Sessions, OpenAttachCloseLifecycle) {
  SessionManager manager(test_serve_options());
  const auto s = manager.open("g1", "gen:grid2d:5x5");
  EXPECT_EQ(s->name(), "g1");
  EXPECT_EQ(manager.size(), 1);
  EXPECT_EQ(manager.attach("g1"), s);
  EXPECT_EQ(manager.names(), std::vector<std::string>{"g1"});

  EXPECT_THROW((void)manager.open("g1", "gen:grid2d:5x5"),
               std::runtime_error);  // duplicate
  EXPECT_THROW((void)manager.open("bad name!", "gen:grid2d:5x5"),
               std::invalid_argument);
  EXPECT_THROW((void)manager.open("", "gen:grid2d:5x5"),
               std::invalid_argument);
  EXPECT_THROW((void)manager.attach("nope"), std::runtime_error);

  manager.close("g1");
  EXPECT_EQ(manager.size(), 0);
  EXPECT_TRUE(s->closed());
  EXPECT_THROW((void)s->info(), std::runtime_error);
  EXPECT_THROW(manager.close("g1"), std::runtime_error);
}

TEST(Sessions, FailedOpenReleasesTheReservedName) {
  SessionManager manager(test_serve_options());
  EXPECT_THROW((void)manager.open("g1", "gen:grid2d:bogus"),
               std::invalid_argument);
  EXPECT_EQ(manager.size(), 0);
  EXPECT_NO_THROW((void)manager.open("g1", "gen:grid2d:5x5"));
}

TEST(Sessions, AdmissionCapRefusesTheOverflowOpen) {
  SessionManager manager(test_serve_options().with_max_sessions(1));
  (void)manager.open("g1", "gen:grid2d:5x5");
  EXPECT_THROW((void)manager.open("g2", "gen:grid2d:5x5"),
               std::runtime_error);
  manager.close("g1");
  EXPECT_NO_THROW((void)manager.open("g2", "gen:grid2d:5x5"));
}

TEST(Sessions, CommitMatchesOfflineReplayAndJournalsApplyOrder) {
  SessionManager manager(test_serve_options());
  const auto s = manager.open("g1", "gen:grid2d:8x8");

  JournalBatch b1;
  b1.ops.push_back({JournalOp::Kind::kReweight, 0, 1, 3.5});
  b1.ops.push_back({JournalOp::Kind::kInsert, 0, 63, 1.25});
  const CommitOutcome o1 = s->commit(b1);
  ASSERT_TRUE(o1.accepted);
  EXPECT_EQ(o1.stats.batch, 1);

  JournalBatch b2;
  b2.ops.push_back({JournalOp::Kind::kDelete, 0, 63, 0.0});
  ASSERT_TRUE(s->commit(b2).accepted);

  const std::vector<std::string> journal = s->journal_lines();
  ASSERT_EQ(journal.size(), 5u);  // 2 ops + commit + 1 op + commit
  EXPECT_EQ(journal[2], "commit");
  EXPECT_EQ(journal.back(), "commit");

  // Offline replay of the journal text is bit-identical.
  std::ostringstream text;
  for (const std::string& line : journal) text << line << "\n";
  std::istringstream in(text.str());
  DynamicSparsifier offline(load_session_graph("gen:grid2d:8x8"),
                            test_dynamic_options());
  for (const JournalBatch& batch : parse_update_journal(in)) {
    offline.apply(resolve_journal_batch(offline.graph(), batch));
  }
  const std::vector<Edge> live = s->sparsifier_edges();
  ASSERT_EQ(static_cast<EdgeId>(live.size()), offline.result().num_edges());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Edge off = offline.graph().edge(offline.result().edges[i]);
    EXPECT_EQ(live[i].u, off.u);
    EXPECT_EQ(live[i].v, off.v);
    EXPECT_EQ(live[i].weight, off.weight);
  }

  const SessionInfo info = s->info();
  EXPECT_EQ(info.commits, 2);
  EXPECT_EQ(info.batches, 3);  // initial build + 2 commits
}

TEST(Sessions, ResolveFailureLeavesTheSessionUntouched) {
  SessionManager manager(test_serve_options());
  const auto s = manager.open("g1", "gen:grid2d:5x5");
  JournalBatch bad;
  bad.ops.push_back({JournalOp::Kind::kDelete, 0, 24, 0.0});  // no such edge
  EXPECT_THROW((void)s->commit(bad), std::runtime_error);
  EXPECT_TRUE(s->journal_lines().empty());
  EXPECT_EQ(s->info().commits, 0);
  // And the queue slot was released: a valid commit still goes through.
  JournalBatch good;
  good.ops.push_back({JournalOp::Kind::kReweight, 0, 1, 2.0});
  EXPECT_TRUE(s->commit(good).accepted);
}

/// Blocks inside the dynamic layer's on_update callback until released —
/// holds a commit "applying" so a concurrent commit deterministically
/// observes a full queue.
class BlockingObserver : public DynamicObserver {
 public:
  void on_update(const UpdateStats& stats) override {
    std::unique_lock<std::mutex> lk(mu_);
    if (stats.batch == 0) return;  // initial build: don't block
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lk, [this] { return released_; });
  }

  void wait_until_blocked() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return blocked_; });
  }

  void release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool released_ = false;
};

TEST(Sessions, BackpressureRejectsBeforeWaiting) {
  SessionManager manager(
      test_serve_options().with_max_queued_batches(1));
  const auto s = manager.open("g1", "gen:grid2d:5x5");
  BlockingObserver observer;
  s->set_observer(&observer);

  JournalBatch slow;
  slow.ops.push_back({JournalOp::Kind::kReweight, 0, 1, 2.0});
  std::thread committer([&] { (void)s->commit(slow); });
  observer.wait_until_blocked();  // the commit is mid-apply, queue full

  JournalBatch rejected;
  rejected.ops.push_back({JournalOp::Kind::kReweight, 0, 5, 3.0});
  const CommitOutcome out = s->commit(rejected);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.queued, 1);

  observer.release();
  committer.join();
  s->set_observer(nullptr);
  // The queue drained: the same batch is accepted now.
  EXPECT_TRUE(s->commit(rejected).accepted);
  EXPECT_EQ(s->info().commits, 2);
}

// ---- Connection protocol ----------------------------------------------------

TEST(Protocol, ConnectionLifecycleAndErrors) {
  SessionManager manager(test_serve_options());
  Connection conn(manager);

  EXPECT_EQ(conn.handle_line("").status, "ok blank");
  EXPECT_EQ(conn.handle_line("% comment only").status, "ok blank");
  EXPECT_EQ(conn.handle_line("ping").status, "ok pong");

  // Reads and mutations need an attached session.
  EXPECT_EQ(conn.handle_line("query stats").status.rfind("err error:", 0), 0u);
  EXPECT_EQ(conn.handle_line("insert 0 1 2.0").status.rfind("err error:", 0),
            0u);

  const Reply open = conn.handle_line("open g1 gen:grid2d:5x5");
  EXPECT_EQ(open.status.rfind("ok session=g1 vertices=25", 0), 0u);
  EXPECT_TRUE(conn.attached());

  // Buffered ops count up; commit applies them as one batch.
  EXPECT_EQ(conn.handle_line("reweight 0 1 2.5").status, "ok queued=1");
  EXPECT_EQ(conn.handle_line("insert 0 24 1.5").status, "ok queued=2");
  EXPECT_EQ(conn.pending_ops(), 2);
  const Reply commit = conn.handle_line("commit");
  EXPECT_EQ(commit.status.rfind("ok batch=1 ", 0), 0u);
  EXPECT_EQ(conn.pending_ops(), 0);
  EXPECT_EQ(conn.handle_line("commit").status, "ok batch=empty");

  // Query surfaces.
  const Reply edges = conn.handle_line("query edges");
  EXPECT_EQ(payload_count(edges.status).value_or(0), edges.payload.size());
  EXPECT_GT(edges.payload.size(), 0u);
  const Reply journal = conn.handle_line("query journal");
  ASSERT_EQ(journal.payload.size(), 3u);
  EXPECT_EQ(journal.payload[0], "reweight 0 1 2.5");
  EXPECT_EQ(journal.payload[2], "commit");
  EXPECT_EQ(conn.handle_line("query stats").status.rfind("ok batches=2", 0),
            0u);
  EXPECT_EQ(conn.handle_line("query quality").status.rfind("ok sigma2=", 0),
            0u);
  EXPECT_EQ(conn.handle_line("query bogus").status.rfind("err protocol:", 0),
            0u);

  // sessions / attach / close / quit.
  const Reply sessions = conn.handle_line("sessions");
  ASSERT_EQ(sessions.payload.size(), 1u);
  EXPECT_EQ(sessions.payload[0], "g1");
  EXPECT_EQ(conn.handle_line("attach g1").status.rfind("ok session=g1", 0),
            0u);
  EXPECT_EQ(conn.handle_line("close").status, "ok closed=g1");
  EXPECT_FALSE(conn.attached());
  const Reply quit = conn.handle_line("quit");
  EXPECT_EQ(quit.status, "ok bye");
  EXPECT_TRUE(quit.close);
}

TEST(Protocol, ErrorsNameTheRequestLineAndKeepCategories) {
  SessionManager manager(test_serve_options());
  Connection conn(manager);
  (void)conn.handle_line("open g1 gen:grid2d:5x5");  // request line 1

  // Parse errors echo the 1-based request line number and the text.
  const Reply bad = conn.handle_line("insert 0 zero 2.0");  // line 2
  EXPECT_EQ(bad.status.rfind("err parse:", 0), 0u);
  EXPECT_NE(bad.status.find("line 2"), std::string::npos);
  EXPECT_NE(bad.status.find("insert 0 zero 2.0"), std::string::npos);

  EXPECT_EQ(conn.handle_line("frobnicate").status.rfind("err protocol:", 0),
            0u);
  EXPECT_EQ(conn.handle_line("open g1").status.rfind("err protocol:", 0), 0u);
  EXPECT_EQ(conn.handle_line("open g1 gen:grid2d:5x5").status.rfind(
                "err error: session 'g1' already exists", 0),
            0u);
  EXPECT_EQ(
      conn.handle_line("open g2 gen:bogus:1x1").status.rfind("err invalid:",
                                                             0),
      0u);
  EXPECT_EQ(conn.handle_line("attach nope").status.rfind("err error:", 0),
            0u);

  // A resolve failure mid-commit drops the poisoned buffer.
  (void)conn.handle_line("delete 0 24");  // no such edge in a 5x5 grid
  EXPECT_EQ(conn.pending_ops(), 1);
  EXPECT_EQ(conn.handle_line("commit").status.rfind("err error:", 0), 0u);
  EXPECT_EQ(conn.pending_ops(), 0);
  EXPECT_EQ(conn.handle_line("commit").status, "ok batch=empty");
}

TEST(Protocol, SnapshotWritesTheSparsifier) {
  SessionManager manager(test_serve_options());
  Connection conn(manager);
  (void)conn.handle_line("open g1 gen:grid2d:6x6");
  const std::string path =
      "/tmp/ssp_serve_snapshot_" + std::to_string(::getpid()) + ".mtx";
  const Reply snap = conn.handle_line("snapshot " + path);
  EXPECT_EQ(snap.status.rfind("ok wrote=", 0), 0u);
  const Graph round_trip = load_session_graph(path);
  EXPECT_EQ(round_trip.num_vertices(), 36);
  EXPECT_EQ(round_trip.num_edges(),
            manager.attach("g1")->info().sparsifier_edges);
  std::remove(path.c_str());
}

// ---- Socket server ----------------------------------------------------------

ServerConfig unix_config(const std::string& path) {
  ServerConfig config;
  config.socket_path = path;
  config.serve = test_serve_options();
  return config;
}

TEST(Server, ServesOverUnixAndTcpSockets) {
  for (const bool tcp : {false, true}) {
    const std::string path = temp_socket_path("transport");
    ServerConfig config = unix_config(path);
    if (tcp) config.tcp_port = 0;  // ephemeral
    Server server(config);
    server.start();
    {
      ServeClient client = tcp ? ServeClient::connect_tcp(server.tcp_port())
                               : ServeClient::connect_unix(path);
      EXPECT_EQ(client.request("ping").status, "ok pong");
      const auto open = client.request("open g1 gen:grid2d:5x5");
      EXPECT_TRUE(open.ok()) << open.status;
      (void)client.request("reweight 0 1 2.0");
      const auto commit = client.request("commit");
      EXPECT_TRUE(commit.ok()) << commit.status;
      const auto journal = client.request("query journal");
      ASSERT_EQ(journal.payload.size(), 2u);
      EXPECT_EQ(journal.payload[0], "reweight 0 1 2");
      EXPECT_EQ(client.request("quit").status, "ok bye");
    }
    server.request_stop();
    server.wait();
    EXPECT_FALSE(server.running());
  }
}

TEST(Server, RejectsOversizedRequestLines) {
  const std::string path = temp_socket_path("framing");
  ServerConfig config = unix_config(path);
  config.max_line_bytes = 64;
  Server server(config);
  server.start();
  {
    ServeClient client = ServeClient::connect_unix(path);
    const auto resp = client.request(std::string(100, 'x'));
    EXPECT_EQ(resp.status.rfind("err framing:", 0), 0u);
    // The server dropped the connection: the next request fails.
    EXPECT_THROW((void)client.request("ping"), std::runtime_error);
  }
  server.request_stop();
  server.wait();
}

TEST(Server, RefusesClientsBeyondTheAdmissionCap) {
  const std::string path = temp_socket_path("limit");
  ServerConfig config = unix_config(path);
  config.max_clients = 1;
  Server server(config);
  server.start();
  {
    ServeClient first = ServeClient::connect_unix(path);
    ASSERT_EQ(first.request("ping").status, "ok pong");
    ServeClient second = ServeClient::connect_unix(path);
    // The refusal line may race the connection teardown; both surfaces —
    // an `err limit` status or a dropped connection — are a refusal.
    try {
      const auto resp = second.request("ping");
      EXPECT_EQ(resp.status.rfind("err limit:", 0), 0u) << resp.status;
    } catch (const std::runtime_error&) {
      // connection already closed — equally refused
    }
  }
  server.request_stop();
  server.wait();
}

/// The tentpole contract, end to end over real sockets: several clients
/// interleave commits against one session; whatever order the server
/// observed, replaying its committed journal offline reproduces the
/// sparsifier bit for bit — at 1 and 4 engine threads.
TEST(Server, ConcurrentCommitsMatchOfflineReplay) {
  for (const int threads : {1, 4}) {
    set_default_threads(threads);
    const std::string path = temp_socket_path("diff");
    Server server(unix_config(path));
    server.start();

    {
      ServeClient admin = ServeClient::connect_unix(path);
      const auto open = admin.request("open g1 gen:grid2d:8x8");
      ASSERT_TRUE(open.ok()) << open.status;

      // 4 clients × 3 commits, each reweighting a disjoint set of
      // horizontal edges of the 8x8 grid (rows 2k and 2k+1 belong to
      // client k), so every interleaving resolves.
      constexpr int kClients = 4;
      constexpr int kCommits = 3;
      std::vector<std::thread> workers;
      std::vector<int> failures(kClients, 0);
      for (int c = 0; c < kClients; ++c) {
        workers.emplace_back([&, c] {
          try {
            ServeClient client = ServeClient::connect_unix(path);
            if (!client.request("attach g1").ok()) {
              failures[c] = 1;
              return;
            }
            for (int commit = 0; commit < kCommits; ++commit) {
              for (int row = 2 * c; row < 2 * c + 2; ++row) {
                for (int col = 0; col < 7; ++col) {
                  const int u = row * 8 + col;
                  std::ostringstream op;
                  op << "reweight " << u << ' ' << (u + 1) << ' '
                     << (1.0 + 0.25 * commit + 0.01 * col);
                  if (!client.request(op.str()).ok()) failures[c] = 1;
                }
              }
              auto resp = client.request("commit");
              // Bounded retry under backpressure (the buffer is kept).
              for (int retry = 0;
                   retry < 100 &&
                   resp.status.rfind("err backpressure:", 0) == 0;
                   ++retry) {
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                resp = client.request("commit");
              }
              if (!resp.ok()) failures[c] = 1;
            }
          } catch (const std::exception&) {
            failures[c] = 1;
          }
        });
      }
      for (auto& w : workers) w.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[c], 0) << "client " << c << " failed";
      }

      const auto journal = admin.request("query journal");
      ASSERT_TRUE(journal.ok()) << journal.status;
      ASSERT_EQ(journal.payload.size(),
                static_cast<std::size_t>(kClients * kCommits * (14 + 1)));

      // Offline replay of exactly what the server says it applied.
      std::ostringstream text;
      for (const std::string& line : journal.payload) text << line << "\n";
      std::istringstream in(text.str());
      DynamicSparsifier offline(load_session_graph("gen:grid2d:8x8"),
                                test_dynamic_options());
      for (const JournalBatch& batch : parse_update_journal(in)) {
        offline.apply(resolve_journal_batch(offline.graph(), batch));
      }

      const auto live = admin.request("query edges");
      ASSERT_TRUE(live.ok()) << live.status;
      ASSERT_EQ(static_cast<EdgeId>(live.payload.size()),
                offline.result().num_edges());
      for (std::size_t i = 0; i < live.payload.size(); ++i) {
        const Edge off = offline.graph().edge(offline.result().edges[i]);
        std::ostringstream row;
        row << off.u << ' ' << off.v << ' '
            << format_journal_weight(off.weight);
        EXPECT_EQ(live.payload[i], row.str()) << "edge " << i << " at "
                                              << threads << " threads";
      }
    }
    server.request_stop();
    server.wait();
  }
  set_default_threads(0);
}

// ---- On-disk session store: torn journal tails ------------------------------

std::string temp_state_dir(const char* tag) {
  std::ostringstream os;
  os << "/tmp/ssp_serve_state_" << tag << "_" << ::getpid();
  return os.str();
}

TEST(SessionStore, TornTailIsParsedOutAndTruncatedOnDisk) {
  const std::string dir = temp_state_dir("torn");
  std::filesystem::create_directories(dir);
  const std::string path = session_journal_path(dir, "g");
  create_session_journal(path, "gen:grid2d:4x4:7");
  {
    std::ofstream out(path, std::ios::app);
    out << "reweight 0 1 2.5\ncommit\n";        // durable batch
    out << "reweight 1 2 9.0\nreweight 2 3 4";  // torn mid-append
  }
  const StoredSession stored = read_stored_session(path);
  EXPECT_EQ(stored.source, "gen:grid2d:4x4:7");
  ASSERT_EQ(stored.batches.size(), 1u);
  ASSERT_EQ(stored.batches[0].ops.size(), 1u);

  truncate_stored_session(path, stored);
  EXPECT_EQ(std::filesystem::file_size(path), stored.committed_bytes);
  // After the cut, fresh appends follow the last commit directly — a new
  // committed batch holds only its own ops, never the stale tail's.
  {
    std::ofstream out(path, std::ios::app);
    out << "reweight 4 5 6.5\ncommit\n";
  }
  const StoredSession again = read_stored_session(path);
  ASSERT_EQ(again.batches.size(), 2u);
  ASSERT_EQ(again.batches[1].ops.size(), 1u);
  EXPECT_EQ(again.batches[1].ops[0].u, 4);
  EXPECT_EQ(again.batches[1].ops[0].v, 5);
  std::filesystem::remove_all(dir);
}

TEST(SessionStore, CommitMissingItsNewlineIsTorn) {
  // A `commit` whose own newline never reached the disk is not durable:
  // replaying it would diverge from the file the next append produces
  // ("commitreweight ..." on one line).
  const std::string dir = temp_state_dir("nonl");
  std::filesystem::create_directories(dir);
  const std::string path = session_journal_path(dir, "g");
  create_session_journal(path, "gen:grid2d:4x4:7");
  const auto header_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(path));
  {
    std::ofstream out(path, std::ios::app);
    out << "reweight 0 1 2.5\ncommit";  // newline lost in the crash
  }
  const StoredSession stored = read_stored_session(path);
  EXPECT_TRUE(stored.batches.empty());
  EXPECT_EQ(stored.committed_bytes, header_bytes);
  truncate_stored_session(path, stored);
  EXPECT_EQ(std::filesystem::file_size(path), header_bytes);
  std::filesystem::remove_all(dir);
}

TEST(SessionStore, RestartAfterCrashDoesNotMergeTornOpsIntoNextBatch) {
  const std::string dir = temp_state_dir("restart");
  std::filesystem::remove_all(dir);
  const ServeOptions opts = ServeOptions{}
                                .with_dynamic(test_dynamic_options())
                                .with_state_dir(dir);
  {
    SessionManager mgr(opts);
    const auto s = mgr.open("g", "gen:grid2d:4x4:7");
    JournalBatch b;
    b.ops.push_back({JournalOp::Kind::kReweight, 0, 1, 2.5, 0});
    ASSERT_TRUE(s->commit(b).accepted);
    // Hard crash mid-append: a torn op lands after the commit and the
    // manager is destroyed without close() (no final checkpoint).
    std::ofstream out(session_journal_path(dir, "g"), std::ios::app);
    out << "reweight 1 2 9.0\n";
  }
  {
    SessionManager mgr(opts);
    ASSERT_EQ(mgr.restore_all().size(), 1u);
    const auto s = mgr.attach("g");
    JournalBatch b;
    b.ops.push_back({JournalOp::Kind::kReweight, 2, 3, 4.5, 0});
    ASSERT_TRUE(s->commit(b).accepted);
    // Crash again before any close().
  }
  // The file now holds exactly the two committed batches: the torn op
  // neither replayed nor merged into the second life's batch.
  const StoredSession stored =
      read_stored_session(session_journal_path(dir, "g"));
  ASSERT_EQ(stored.batches.size(), 2u);
  ASSERT_EQ(stored.batches[0].ops.size(), 1u);
  ASSERT_EQ(stored.batches[1].ops.size(), 1u);
  EXPECT_EQ(stored.batches[1].ops[0].u, 2);
  EXPECT_EQ(stored.batches[1].ops[0].v, 3);

  // A third life restores to the same bits as an offline replay of those
  // two batches over the source graph.
  SessionManager mgr(opts);
  ASSERT_EQ(mgr.restore_all().size(), 1u);
  const auto s = mgr.attach("g");
  EXPECT_EQ(s->journal_lines().size(), 4u);  // op, commit, op, commit
  DynamicSparsifier offline(load_session_graph("gen:grid2d:4x4:7"),
                            test_dynamic_options());
  for (const JournalBatch& batch : stored.batches) {
    offline.apply(resolve_journal_batch(offline.graph(), batch));
  }
  EXPECT_EQ(s->info().sparsifier_edges, offline.result().num_edges());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ssp::serve
