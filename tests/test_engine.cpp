// Tests for the staged ssp::Sparsifier engine API: step()-driven parity
// with the one-shot wrapper, warm-started refine()/resparsify(), observer
// telemetry and cancellation, option validation / named setters, and the
// enum <-> string round trips of options_io.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/edge_filter.hpp"
#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "tree/kruskal.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

Graph test_grid(Vertex side = 24, std::uint64_t seed = 31) {
  Rng rng(seed);
  return grid_2d(side, side, WeightModel::log_uniform(0.1, 10.0), &rng);
}

TEST(Engine, StepDrivenRunMatchesOneShotBitForBit) {
  const Graph g = test_grid();
  const auto opts =
      SparsifyOptions{}.with_sigma2(10.0).with_seed(7).with_max_rounds(20);

  const SparsifyResult one_shot = sparsify(g, opts);

  Sparsifier engine(g, opts);
  int steps = 0;
  while (!engine.done()) {
    engine.step();
    ++steps;
  }
  const SparsifyResult& stepped = engine.result();

  EXPECT_EQ(stepped.edges, one_shot.edges);  // bit-for-bit
  EXPECT_EQ(stepped.tree_edges, one_shot.tree_edges);
  EXPECT_EQ(stepped.rounds.size(), one_shot.rounds.size());
  EXPECT_DOUBLE_EQ(stepped.sigma2_estimate, one_shot.sigma2_estimate);
  EXPECT_DOUBLE_EQ(stepped.lambda_min, one_shot.lambda_min);
  EXPECT_DOUBLE_EQ(stepped.lambda_max, one_shot.lambda_max);
  EXPECT_EQ(stepped.reached_target, one_shot.reached_target);
  EXPECT_EQ(static_cast<std::size_t>(steps), one_shot.rounds.size());
  EXPECT_TRUE(engine.done());
  EXPECT_TRUE(is_terminal(engine.status()));
}

TEST(Engine, RunIsIdempotentOnceDone) {
  const Graph g = test_grid(16);
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(50.0));
  const StepStatus final_status = engine.run();
  const std::size_t rounds = engine.result().rounds.size();
  EXPECT_EQ(engine.run(), final_status);   // no-op
  EXPECT_EQ(engine.step(), final_status);  // no-op
  EXPECT_EQ(engine.result().rounds.size(), rounds);
}

TEST(Engine, RefineWarmStartMatchesColdRunWithFewerRounds) {
  // Incremental tightening — the GRASS-style workflow refine() is for.
  // The gap is kept small so the warm engine, already sitting just above
  // the tight target, needs only the last few small-batch rounds, while a
  // cold run must redo the whole densification ramp.
  const Graph g = test_grid(28);
  const double loose = 10.0;
  const double tight = 6.0;

  // Cold run straight at the tight target.
  const SparsifyResult cold =
      sparsify(g, SparsifyOptions{}.with_sigma2(tight).with_seed(5));

  // Warm path: reach the loose target first, then refine down.
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(loose).with_seed(5));
  engine.run();
  ASSERT_TRUE(engine.result().reached_target);
  const std::size_t rounds_before = engine.result().rounds.size();

  engine.refine(tight);
  EXPECT_FALSE(engine.done());
  engine.run();
  const SparsifyResult& warm = engine.result();
  const std::size_t refine_rounds = warm.rounds.size() - rounds_before;

  // The warm start must hit the same target...
  EXPECT_TRUE(warm.reached_target);
  EXPECT_LE(warm.sigma2_estimate, tight * 1.0 + 1e-12);
  // ...land on a sigma2 estimate comparable to the cold run's...
  EXPECT_NEAR(warm.sigma2_estimate, cold.sigma2_estimate,
              0.5 * cold.sigma2_estimate);
  // ...and do so in fewer rounds than the cold run needed from scratch.
  EXPECT_LT(refine_rounds, cold.rounds.size());
}

TEST(Engine, RefineLooseningStopsWithoutAddingEdges) {
  const Graph g = test_grid(16);
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(20.0));
  engine.run();
  const EdgeId edges_at_20 = engine.result().num_edges();

  engine.refine(500.0);  // looser target: already satisfied
  const StepStatus s = engine.run();
  EXPECT_EQ(s, StepStatus::kConverged);
  EXPECT_EQ(engine.result().num_edges(), edges_at_20);
}

/// Observer that records rounds/stages and cancels after `cancel_after`
/// edge-adding rounds (negative = never cancel).
class RecordingObserver : public StageObserver {
 public:
  explicit RecordingObserver(int cancel_after = -1)
      : cancel_after_(cancel_after) {}

  bool on_round(const DensifyRound& round) override {
    rounds.push_back(round);
    if (cancel_after_ >= 0 && round.edges_added > 0) {
      ++adding_rounds_seen;
      if (adding_rounds_seen >= cancel_after_) return false;
    }
    return true;
  }
  void on_stage(StageKind stage, double seconds) override {
    stages.emplace_back(stage, seconds);
  }

  std::vector<DensifyRound> rounds;
  std::vector<std::pair<StageKind, double>> stages;
  int adding_rounds_seen = 0;

 private:
  int cancel_after_;
};

TEST(Engine, ObserverSeesEveryRoundAndAllStages) {
  const Graph g = test_grid(20);
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(15.0).with_seed(5));
  RecordingObserver obs;
  engine.set_observer(&obs);
  engine.run();

  ASSERT_EQ(obs.rounds.size(), engine.result().rounds.size());
  for (std::size_t i = 0; i < obs.rounds.size(); ++i) {
    EXPECT_EQ(obs.rounds[i].round, engine.result().rounds[i].round);
    EXPECT_DOUBLE_EQ(obs.rounds[i].sigma2_estimate,
                     engine.result().rounds[i].sigma2_estimate);
  }
  auto saw = [&](StageKind k) {
    return std::any_of(obs.stages.begin(), obs.stages.end(),
                       [&](const auto& s) { return s.first == k; });
  };
  EXPECT_TRUE(saw(StageKind::kBackbone));
  EXPECT_TRUE(saw(StageKind::kSolverSetup));
  EXPECT_TRUE(saw(StageKind::kSpectralEstimate));
  EXPECT_TRUE(saw(StageKind::kEmbedding));
  EXPECT_TRUE(saw(StageKind::kFiltering));
  // Backbone is built exactly once per phase.
  EXPECT_EQ(std::count_if(
                obs.stages.begin(), obs.stages.end(),
                [](const auto& s) { return s.first == StageKind::kBackbone; }),
            1);
}

TEST(Engine, ObserverCancellationStopsAtRequestedRound) {
  const Graph g = test_grid(24);
  // A tight target so densification would run for many rounds uncancelled.
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(1.5).with_seed(9));
  RecordingObserver obs(/*cancel_after=*/2);
  engine.set_observer(&obs);
  const StepStatus s = engine.run();

  EXPECT_EQ(s, StepStatus::kCancelled);
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(obs.adding_rounds_seen, 2);
  // Exactly two edge-adding rounds were retained in the result.
  const auto& rounds = engine.result().rounds;
  EXPECT_EQ(std::count_if(rounds.begin(), rounds.end(),
                          [](const DensifyRound& r) {
                            return r.edges_added > 0;
                          }),
            2);
  // The edge set still contains the backbone plus both batches.
  EXPECT_GT(engine.result().num_edges(),
            static_cast<EdgeId>(engine.result().tree_edges.size()));
}

TEST(Engine, ResparsifyReusesBackboneToposAndReachesTarget) {
  const Graph g = test_grid(20, 13);
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(20.0).with_seed(11));
  engine.run();
  ASSERT_TRUE(engine.result().reached_target);
  const std::vector<EdgeId> tree_before = engine.result().tree_edges;

  // Perturb every weight by up to ±20% and warm-start.
  Rng rng(99);
  std::vector<double> w(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[static_cast<std::size_t>(e)] =
        g.edge(e).weight * rng.uniform(0.8, 1.2);
  }
  engine.resparsify(w);
  EXPECT_FALSE(engine.done());
  const StepStatus s = engine.run();
  EXPECT_EQ(s, StepStatus::kConverged);
  EXPECT_TRUE(engine.result().reached_target);
  // The backbone tree topology (edge ids) was reused, not recomputed.
  EXPECT_EQ(engine.result().tree_edges, tree_before);
  // The engine-owned graph carries the updated weights.
  for (EdgeId e = 0; e < engine.graph().num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(engine.graph().edge(e).weight,
                     w[static_cast<std::size_t>(e)]);
  }
  // Sanity: the result extracts against the engine's graph.
  const Graph p = engine.result().extract(engine.graph());
  EXPECT_EQ(p.num_edges(), engine.result().num_edges());
}

TEST(Engine, ResparsifyBeforeFirstStepKeepsExternalBackbone) {
  const Graph g = test_grid(12, 41);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const std::vector<EdgeId> tree_ids(tree.tree_edge_ids().begin(),
                                     tree.tree_edge_ids().end());
  // Engine bound to a caller-supplied backbone, warm-started before any
  // step ran: the external tree topology must survive, not be replaced by
  // an opts.backbone rebuild.
  Sparsifier engine(g, tree, SparsifyOptions{}.with_sigma2(30.0));
  std::vector<double> w(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[static_cast<std::size_t>(e)] = g.edge(e).weight * 1.1;
  }
  engine.resparsify(w);
  engine.run();
  EXPECT_EQ(engine.result().tree_edges, tree_ids);
  EXPECT_TRUE(engine.result().reached_target);
}

TEST(Engine, ResparsifyRejectsBadWeights) {
  const Graph g = test_grid(8);
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(50.0));
  engine.run();
  std::vector<double> too_few(static_cast<std::size_t>(g.num_edges()) - 1,
                              1.0);
  EXPECT_THROW(engine.resparsify(too_few), std::invalid_argument);
  std::vector<double> too_many(static_cast<std::size_t>(g.num_edges()) + 1,
                               1.0);
  EXPECT_THROW(engine.resparsify(too_many), std::invalid_argument);
  std::vector<double> bad(static_cast<std::size_t>(g.num_edges()), 1.0);
  for (const double w : {-1.0, 0.0, std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()}) {
    bad[3] = w;
    EXPECT_THROW(engine.resparsify(bad), std::invalid_argument);
  }
  // A rejected span leaves the engine usable: it is still done, with the
  // original result intact.
  EXPECT_TRUE(engine.done());
  EXPECT_GT(engine.result().num_edges(), 0);
}

TEST(Engine, RefineAfterResparsifyTightensOnTheReweightedGraph) {
  // The warm-start chain the dynamic workflow composes: reach a loose
  // target, resparsify on perturbed weights, then refine down — the
  // engine must keep the (reused) backbone and land on the tight target
  // against the re-weighted graph.
  const Graph g = test_grid(18, 77);
  Sparsifier engine(g, SparsifyOptions{}.with_sigma2(30.0).with_seed(3));
  engine.run();
  ASSERT_TRUE(engine.result().reached_target);
  const std::vector<EdgeId> tree_before = engine.result().tree_edges;

  Rng rng(17);
  std::vector<double> w(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[static_cast<std::size_t>(e)] = g.edge(e).weight * rng.uniform(0.9, 1.1);
  }
  engine.resparsify(w);
  engine.run();
  ASSERT_TRUE(engine.result().reached_target);
  const EdgeId edges_loose = engine.result().num_edges();

  engine.refine(8.0);
  EXPECT_FALSE(engine.done());
  engine.run();
  EXPECT_TRUE(engine.result().reached_target);
  EXPECT_LE(engine.result().sigma2_estimate, 8.0 + 1e-12);
  EXPECT_GE(engine.result().num_edges(), edges_loose);  // only densifies
  EXPECT_EQ(engine.result().tree_edges, tree_before);   // backbone survives
}

TEST(Engine, RebindMatchesColdExternalBackboneRunBitForBit) {
  // rebind() is the dynamic layer's warm start: same graph + backbone +
  // seed must reproduce a cold engine bound to that backbone exactly,
  // even after the engine previously ran on a different graph.
  const Graph g1 = test_grid(14, 5);
  const Graph g2 = test_grid(16, 6);
  const SpanningTree tree2 = max_weight_spanning_tree(g2);
  const auto opts = SparsifyOptions{}.with_sigma2(15.0).with_seed(23);

  Sparsifier cold(g2, tree2, SparsifyOptions(opts).with_seed(99));
  cold.run();

  Sparsifier warm(g1, opts);
  warm.run();
  warm.rebind(g2, tree2, 99);
  EXPECT_FALSE(warm.done());
  warm.run();

  EXPECT_EQ(warm.result().edges, cold.result().edges);  // bit-for-bit
  EXPECT_EQ(warm.result().tree_edges, cold.result().tree_edges);
  EXPECT_DOUBLE_EQ(warm.result().sigma2_estimate,
                   cold.result().sigma2_estimate);
  EXPECT_EQ(&warm.graph(), &g2);
}

TEST(Engine, RebindKeepOfftreePreAcceptsIntoTheSparsifier) {
  const Graph g = test_grid(12, 9);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const std::vector<EdgeId> offtree = tree.offtree_edge_ids();
  ASSERT_GE(offtree.size(), 2u);
  const std::vector<EdgeId> keep = {offtree[0], offtree[1]};

  Sparsifier engine(g, tree, SparsifyOptions{}.with_sigma2(20.0));
  engine.rebind(g, tree, 7, keep);
  // Pre-accepted edges sit right after the backbone prefix…
  ASSERT_GE(engine.result().edges.size(), tree.tree_edge_ids().size() + 2);
  EXPECT_EQ(engine.result().edges[tree.tree_edge_ids().size()], keep[0]);
  EXPECT_EQ(engine.result().edges[tree.tree_edge_ids().size() + 1], keep[1]);
  engine.run();
  // …and survive the run.
  const auto& edges = engine.result().edges;
  EXPECT_NE(std::find(edges.begin(), edges.end(), keep[0]), edges.end());
  EXPECT_TRUE(engine.result().reached_target);
}

TEST(Engine, RebindValidatesInputs) {
  const Graph g1 = test_grid(8, 1);
  const Graph g2 = test_grid(8, 2);
  const SpanningTree tree1 = max_weight_spanning_tree(g1);
  Sparsifier engine(g1, tree1, SparsifyOptions{}.with_sigma2(50.0));
  // Backbone built on a different graph than the rebind target.
  EXPECT_THROW(engine.rebind(g2, tree1, 1), std::invalid_argument);
  // keep_offtree: out of range, tree edge, duplicate.
  const std::vector<EdgeId> offtree = tree1.offtree_edge_ids();
  ASSERT_FALSE(offtree.empty());
  const std::vector<EdgeId> out_of_range = {g1.num_edges()};
  EXPECT_THROW(engine.rebind(g1, tree1, 1, out_of_range),
               std::invalid_argument);
  const std::vector<EdgeId> tree_edge = {tree1.tree_edge_ids()[0]};
  EXPECT_THROW(engine.rebind(g1, tree1, 1, tree_edge),
               std::invalid_argument);
  const std::vector<EdgeId> duplicate = {offtree[0], offtree[0]};
  EXPECT_THROW(engine.rebind(g1, tree1, 1, duplicate),
               std::invalid_argument);
  // A valid rebind still works after the rejections.
  engine.rebind(g1, tree1, 1);
  engine.run();
  EXPECT_TRUE(is_terminal(engine.status()));
}

TEST(Engine, ConstructorValidatesGraphAndOptions) {
  const Graph g = test_grid(8);
  EXPECT_THROW(Sparsifier(g, SparsifyOptions{.sigma2 = 0.5}),
               std::invalid_argument);
  Graph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  disconnected.finalize();
  EXPECT_THROW(Sparsifier(disconnected, SparsifyOptions{}),
               std::invalid_argument);
  EXPECT_THROW(Sparsifier(g, SparsifyOptions{}).refine(1.0),
               std::invalid_argument);
}

TEST(Options, NamedSettersValidateEagerly) {
  EXPECT_THROW(SparsifyOptions{}.with_sigma2(1.0), std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_power_steps(0), std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_num_vectors(-1), std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_max_rounds(0), std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_max_edges_per_round(-1),
               std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_node_cap(0), std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_solver_tolerance(0.0),
               std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_solver_tolerance(1.0),
               std::invalid_argument);
  EXPECT_THROW(SparsifyOptions{}.with_lambda_max_iterations(0),
               std::invalid_argument);

  const auto opts = SparsifyOptions{}
                        .with_sigma2(42.0)
                        .with_backbone(BackboneKind::kMaxWeight)
                        .with_power_steps(3)
                        .with_num_vectors(8)
                        .with_max_rounds(12)
                        .with_max_edges_per_round(100)
                        .with_similarity(SimilarityPolicy::kBounded)
                        .with_node_cap(4)
                        .with_inner_solver(InnerSolverKind::kAmg)
                        .with_solver_tolerance(1e-3)
                        .with_lambda_max_iterations(6)
                        .with_seed(123);
  EXPECT_DOUBLE_EQ(opts.sigma2, 42.0);
  EXPECT_EQ(opts.backbone, BackboneKind::kMaxWeight);
  EXPECT_EQ(opts.power_steps, 3);
  EXPECT_EQ(opts.num_vectors, 8);
  EXPECT_EQ(opts.max_rounds, 12);
  EXPECT_EQ(opts.max_edges_per_round, 100);
  EXPECT_EQ(opts.similarity, SimilarityPolicy::kBounded);
  EXPECT_EQ(opts.node_cap, 4);
  EXPECT_EQ(opts.inner_solver, InnerSolverKind::kAmg);
  EXPECT_DOUBLE_EQ(opts.solver_tolerance, 1e-3);
  EXPECT_EQ(opts.lambda_max_iterations, 6);
  EXPECT_EQ(opts.seed, 123u);
  EXPECT_NO_THROW(opts.validate());
}

TEST(Options, ValidateCatchesCrossFieldViolations) {
  SparsifyOptions opts;
  opts.similarity = SimilarityPolicy::kBounded;
  opts.node_cap = 0;  // direct field poke skips the setter's check...
  EXPECT_THROW(opts.validate(), std::invalid_argument);  // ...validate sees it
  opts.similarity = SimilarityPolicy::kNone;
  EXPECT_NO_THROW(opts.validate());  // node_cap unused under kNone
}

TEST(OptionsIo, EnumStringRoundTrips) {
  for (BackboneKind k : {BackboneKind::kAkpw, BackboneKind::kMaxWeight,
                         BackboneKind::kShortestPath}) {
    EXPECT_EQ(parse_backbone_kind(to_string(k)), k);
  }
  for (InnerSolverKind k : {InnerSolverKind::kTreePcg, InnerSolverKind::kAmg}) {
    EXPECT_EQ(parse_inner_solver_kind(to_string(k)), k);
  }
  for (SimilarityPolicy p :
       {SimilarityPolicy::kNone, SimilarityPolicy::kNodeDisjoint,
        SimilarityPolicy::kBounded}) {
    EXPECT_EQ(parse_similarity_policy(to_string(p)), p);
  }
  EXPECT_THROW(parse_backbone_kind("mst"), std::invalid_argument);
  EXPECT_THROW(parse_inner_solver_kind("cholesky"), std::invalid_argument);
  EXPECT_THROW(parse_similarity_policy("strict"), std::invalid_argument);
  // Stage names are distinct and never the "?" fallback.
  for (StageKind s : {StageKind::kBackbone, StageKind::kSolverSetup,
                      StageKind::kSpectralEstimate, StageKind::kEmbedding,
                      StageKind::kFiltering, StageKind::kFinalEstimate}) {
    EXPECT_STRNE(to_string(s), "?");
  }
}

TEST(OptionsIo, EstimationModeRoundTrips) {
  for (EstimationMode m :
       {EstimationMode::kPower, EstimationMode::kLocalized}) {
    EXPECT_EQ(parse_estimation_mode(to_string(m)), m);
  }
  EXPECT_THROW((void)parse_estimation_mode("exact"), std::invalid_argument);
  EXPECT_EQ(SparsifyOptions{}.estimation, EstimationMode::kPower);
  EXPECT_EQ(SparsifyOptions{}
                .with_estimation(EstimationMode::kLocalized)
                .estimation,
            EstimationMode::kLocalized);
}

TEST(Engine, LocalizedModeConvergesDeterministicallyAcrossThreads) {
  // kLocalized replaces the randomized power estimate with per-edge tree
  // stretches: Rng-free, so the run is a pure function of (graph, options)
  // and thread count must not change a single bit. λ̂_min is exactly 1 for
  // a subgraph sparsifier, and a reached target means the certified upper
  // bound σ̂² = 1 + max remaining stretch is at or under the goal.
  const Graph g = test_grid(24, 91);
  const auto base = SparsifyOptions{}
                        .with_sigma2(30.0)
                        .with_seed(13)
                        .with_estimation(EstimationMode::kLocalized);

  Sparsifier e1(g, SparsifyOptions(base).with_threads(1));
  e1.run();
  Sparsifier e4(g, SparsifyOptions(base).with_threads(4));
  e4.run();
  EXPECT_EQ(e1.result().edges, e4.result().edges);  // bit-for-bit
  EXPECT_DOUBLE_EQ(e1.result().sigma2_estimate, e4.result().sigma2_estimate);
  EXPECT_DOUBLE_EQ(e1.result().lambda_min, 1.0);
  EXPECT_TRUE(e1.result().reached_target);
  EXPECT_LE(e1.result().sigma2_estimate, 30.0);
  // Denser than the bare tree, sparser than the graph.
  EXPECT_GT(e1.result().num_edges(),
            static_cast<EdgeId>(e1.result().tree_edges.size()));
  EXPECT_LT(e1.result().num_edges(), g.num_edges());

  // Same options, fresh engine: identical again (no hidden state).
  Sparsifier again(g, SparsifyOptions(base).with_threads(1));
  again.run();
  EXPECT_EQ(again.result().edges, e1.result().edges);
}

TEST(Engine, ThreadCountNeverChangesTheEdgeList) {
  // The determinism contract: SparsifyOptions::threads changes wall time
  // only. Per-probe split streams + stream-order reductions make the run
  // a pure function of (graph, options-without-threads, seed), so the
  // final edge lists and spectral estimates must agree bit-for-bit.
  const Graph g = test_grid(24, 91);
  const auto base = SparsifyOptions{}.with_sigma2(8.0).with_seed(13);

  Sparsifier e1(g, SparsifyOptions(base).with_threads(1));
  e1.run();
  Sparsifier e2(g, SparsifyOptions(base).with_threads(2));
  e2.run();
  Sparsifier e4(g, SparsifyOptions(base).with_threads(4));
  e4.run();

  EXPECT_EQ(e1.result().edges, e2.result().edges);  // bit-for-bit
  EXPECT_EQ(e1.result().edges, e4.result().edges);
  EXPECT_EQ(e1.result().tree_edges, e4.result().tree_edges);
  EXPECT_DOUBLE_EQ(e1.result().sigma2_estimate, e4.result().sigma2_estimate);
  EXPECT_DOUBLE_EQ(e1.result().lambda_min, e4.result().lambda_min);
  EXPECT_DOUBLE_EQ(e1.result().lambda_max, e4.result().lambda_max);
  ASSERT_EQ(e1.result().rounds.size(), e4.result().rounds.size());
  for (std::size_t i = 0; i < e1.result().rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(e1.result().rounds[i].theta,
                     e4.result().rounds[i].theta);
    EXPECT_EQ(e1.result().rounds[i].edges_added,
              e4.result().rounds[i].edges_added);
  }
}

TEST(Engine, WarmStartRefineParityUnderThreading) {
  // refine() must stay deterministic across thread counts too: a warm
  // engine refined at N threads lands on exactly the edge list of a warm
  // engine refined at 1 thread.
  const Graph g = test_grid(20, 63);
  const auto base = SparsifyOptions{}.with_sigma2(20.0).with_seed(29);

  Sparsifier e1(g, SparsifyOptions(base).with_threads(1));
  e1.run();
  Sparsifier e4(g, SparsifyOptions(base).with_threads(4));
  e4.run();
  ASSERT_EQ(e1.result().edges, e4.result().edges);

  e1.refine(8.0);
  e1.run();
  e4.refine(8.0);
  e4.run();
  EXPECT_EQ(e1.result().edges, e4.result().edges);  // bit-for-bit
  EXPECT_DOUBLE_EQ(e1.result().sigma2_estimate,
                   e4.result().sigma2_estimate);
  EXPECT_EQ(e1.result().reached_target, e4.result().reached_target);
  EXPECT_EQ(e1.rounds_completed(), e4.rounds_completed());
}

TEST(Filter, EqualHeatTiesBreakByAscendingEdgeId) {
  // Regression: equal-heat ties used to fall through a non-stable
  // std::sort, making the accepted set STL-implementation-dependent. The
  // comparator now breaks ties by ascending edge id.
  // Complete graph on 15 vertices: 105 tied candidates — enough that a
  // non-stable sort demonstrably permutes equal keys (libstdc++'s
  // insertion-sort threshold masks the bug on tiny inputs).
  constexpr Vertex kN = 15;
  Graph g(kN);
  for (Vertex u = 0; u < kN; ++u) {
    for (Vertex v = static_cast<Vertex>(u + 1); v < kN; ++v) {
      g.add_edge(u, v, 1.0);
    }
  }
  g.finalize();

  OffTreeEmbedding emb;
  for (EdgeId e = 0; e < g.num_edges(); ++e) emb.offtree_edges.push_back(e);
  // All heats identical — every permutation is a valid descending order,
  // so only the id tiebreak pins the result.
  emb.heat.assign(emb.offtree_edges.size(), 2.5);
  emb.heat_max = 2.5;
  emb.total_heat = 2.5 * static_cast<double>(emb.offtree_edges.size());

  const auto all = filter_offtree_edges(
      g, emb, 0.0, {.similarity = SimilarityPolicy::kNone});
  ASSERT_EQ(all.size(), emb.offtree_edges.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<EdgeId>(i));  // ascending ids
  }

  // With a max_edges cap the *lowest* ids must be the ones accepted.
  const auto capped = filter_offtree_edges(
      g, emb, 0.0, {.similarity = SimilarityPolicy::kNone, .max_edges = 4});
  EXPECT_EQ(capped, (std::vector<EdgeId>{0, 1, 2, 3}));

  // Mixed heats: higher heat first, ties in id order behind it.
  emb.heat[50] = 9.0;
  emb.heat_max = 9.0;
  const auto mixed = filter_offtree_edges(
      g, emb, 0.0, {.similarity = SimilarityPolicy::kNone, .max_edges = 3});
  EXPECT_EQ(mixed, (std::vector<EdgeId>{50, 0, 1}));
}

TEST(Engine, WorkspaceReuseKeepsEmbeddingResultsExact) {
  // Two engines on the same graph/seed — one stepped, one run — plus the
  // allocating legacy compute path via sparsify(): all three agree, which
  // pins down that the reused workspace buffers don't leak state between
  // rounds.
  const Graph g = test_grid(18, 55);
  const auto opts = SparsifyOptions{}.with_sigma2(5.0).with_seed(21);
  const SparsifyResult a = sparsify(g, opts);
  Sparsifier e1(g, opts);
  e1.run();
  Sparsifier e2(g, opts);
  while (!e2.done()) e2.step();
  EXPECT_EQ(a.edges, e1.result().edges);
  EXPECT_EQ(a.edges, e2.result().edges);
}

}  // namespace
}  // namespace ssp
