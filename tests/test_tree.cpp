// Tests for src/tree: SpanningTree validation, Kruskal/Dijkstra/AKPW tree
// construction, LCA correctness vs naive walks, stretch identities, and the
// exact O(n) tree Laplacian solver vs a dense oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "la/dense_eigen.hpp"
#include "la/vector_ops.hpp"
#include "tree/akpw.hpp"
#include "tree/dijkstra_tree.hpp"
#include "tree/kruskal.hpp"
#include "tree/lca.hpp"
#include "tree/stretch.hpp"
#include "tree/tree_solver.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

/// Validates the generic spanning-tree invariants.
void expect_valid_spanning_tree(const SpanningTree& t) {
  const Graph& g = t.graph();
  EXPECT_EQ(static_cast<Vertex>(t.tree_edge_ids().size()),
            g.num_vertices() - 1);
  EXPECT_EQ(t.parent(t.root()), kInvalidVertex);
  EXPECT_EQ(t.depth(t.root()), 0);
  EXPECT_DOUBLE_EQ(t.resistance_to_root(t.root()), 0.0);
  // BFS order: each vertex appears after its parent; all vertices present.
  const auto order = t.bfs_order();
  ASSERT_EQ(static_cast<Vertex>(order.size()), g.num_vertices());
  std::vector<Index> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<Index>(i);
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == t.root()) continue;
    EXPECT_GT(pos[static_cast<std::size_t>(v)],
              pos[static_cast<std::size_t>(t.parent(v))]);
    EXPECT_EQ(t.depth(v), t.depth(t.parent(v)) + 1);
    const Edge& pe = g.edge(t.parent_edge(v));
    EXPECT_TRUE((pe.u == v && pe.v == t.parent(v)) ||
                (pe.v == v && pe.u == t.parent(v)));
    EXPECT_DOUBLE_EQ(t.parent_weight(v), pe.weight);
    EXPECT_NEAR(t.resistance_to_root(v),
                t.resistance_to_root(t.parent(v)) + 1.0 / pe.weight, 1e-12);
  }
  // in-tree marks consistent.
  EdgeId marked = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.contains(e)) ++marked;
  }
  EXPECT_EQ(marked, g.num_vertices() - 1);
  EXPECT_EQ(t.num_offtree_edges(), g.num_edges() - marked);
}

Graph weighted_test_graph(Vertex n, EdgeId m, std::uint64_t seed) {
  Rng rng(seed);
  return erdos_renyi_connected(n, m, rng, WeightModel::log_uniform(0.1, 10.0));
}

TEST(SpanningTree, RejectsBadEdgeSets) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1, 1.0);
  const EdgeId e12 = g.add_edge(1, 2, 1.0);
  const EdgeId e02 = g.add_edge(0, 2, 1.0);
  const EdgeId e23 = g.add_edge(2, 3, 1.0);
  g.finalize();
  // Wrong count.
  EXPECT_THROW(SpanningTree(g, {e01, e12}), std::invalid_argument);
  // Cycle (does not span vertex 3).
  EXPECT_THROW(SpanningTree(g, {e01, e12, e02}), std::invalid_argument);
  // Duplicate edge.
  EXPECT_THROW(SpanningTree(g, {e01, e01, e23}), std::invalid_argument);
  // Valid.
  EXPECT_NO_THROW(SpanningTree(g, {e01, e12, e23}));
  // Bad root.
  EXPECT_THROW(SpanningTree(g, {e01, e12, e23}, 9), std::invalid_argument);
}

TEST(SpanningTree, SingleVertexGraph) {
  Graph g(1);
  g.finalize();
  const SpanningTree t(g, {});
  EXPECT_EQ(t.num_vertices(), 1);
  EXPECT_EQ(t.num_offtree_edges(), 0);
  expect_valid_spanning_tree(t);
}

TEST(SpanningTree, OfftreeEdgeIds) {
  const Graph g = grid_2d(3, 3);
  const SpanningTree t = max_weight_spanning_tree(g);
  const auto off = t.offtree_edge_ids();
  EXPECT_EQ(static_cast<EdgeId>(off.size()), g.num_edges() - 8);
  for (EdgeId e : off) EXPECT_FALSE(t.contains(e));
}

TEST(SpanningTree, AsGraphIsTree) {
  const Graph g = weighted_test_graph(50, 200, 3);
  const SpanningTree t = max_weight_spanning_tree(g);
  const Graph tg = t.as_graph();
  EXPECT_EQ(tg.num_vertices(), 50);
  EXPECT_EQ(tg.num_edges(), 49);
}

TEST(Kruskal, MaxTreePrefersHeavyEdges) {
  // Triangle with one light edge: the light edge must be excluded.
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  const EdgeId light = g.add_edge(1, 2, 0.1);
  g.add_edge(0, 2, 5.0);
  g.finalize();
  const SpanningTree t = max_weight_spanning_tree(g);
  EXPECT_FALSE(t.contains(light));
  expect_valid_spanning_tree(t);

  const SpanningTree tmin = min_weight_spanning_tree(g);
  EXPECT_TRUE(tmin.contains(light));
}

TEST(Kruskal, ThrowsOnDisconnected) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.finalize();
  EXPECT_THROW((void)max_weight_spanning_tree(g), std::invalid_argument);
}

TEST(Kruskal, MatchesBruteForceOnSmallGraphs) {
  // Enumerate all spanning trees of a 4-vertex graph by brute force and
  // compare the max total weight with Kruskal's result.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g(4);
    for (Vertex i = 0; i < 4; ++i) {
      for (Vertex j = i + 1; j < 4; ++j) {
        g.add_edge(i, j, rng.uniform(0.1, 5.0));
      }
    }
    g.finalize();
    double best = -1.0;
    const EdgeId m = g.num_edges();
    for (EdgeId a = 0; a < m; ++a) {
      for (EdgeId b = a + 1; b < m; ++b) {
        for (EdgeId c = b + 1; c < m; ++c) {
          Graph sub = g.edge_subgraph(std::vector<EdgeId>{a, b, c});
          // A 3-edge subgraph on 4 vertices is a spanning tree iff acyclic
          // and connected; test via SpanningTree construction.
          try {
            (void)SpanningTree(sub,
                               std::vector<EdgeId>{0, 1, 2});
            best = std::max(best, sub.total_weight());
          } catch (const std::invalid_argument&) {
          }
        }
      }
    }
    const SpanningTree t = max_weight_spanning_tree(g);
    double got = 0.0;
    for (EdgeId e : t.tree_edge_ids()) got += g.edge(e).weight;
    EXPECT_NEAR(got, best, 1e-12);
  }
}

TEST(Dijkstra, TreePathsAreShortest) {
  const Graph g = weighted_test_graph(60, 240, 5);
  const SpanningTree t = shortest_path_tree(g, 0);
  expect_valid_spanning_tree(t);
  // Tree distance from root equals Dijkstra distance: check against an
  // independent Bellman-Ford style relaxation.
  const Vertex n = g.num_vertices();
  std::vector<double> dist(static_cast<std::size_t>(n), 1e300);
  dist[0] = 0.0;
  for (Vertex it = 0; it < n; ++it) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      const double len = 1.0 / e.weight;
      if (dist[static_cast<std::size_t>(e.u)] + len <
          dist[static_cast<std::size_t>(e.v)] - 1e-15) {
        dist[static_cast<std::size_t>(e.v)] =
            dist[static_cast<std::size_t>(e.u)] + len;
        changed = true;
      }
      if (dist[static_cast<std::size_t>(e.v)] + len <
          dist[static_cast<std::size_t>(e.u)] - 1e-15) {
        dist[static_cast<std::size_t>(e.u)] =
            dist[static_cast<std::size_t>(e.v)] + len;
        changed = true;
      }
    }
    if (!changed) break;
  }
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_NEAR(t.resistance_to_root(v), dist[static_cast<std::size_t>(v)],
                1e-9);
  }
}

TEST(Dijkstra, CenterHeuristicPicksMaxDegree) {
  const Graph g = star_graph(10);
  const SpanningTree t = shortest_path_tree_from_center(g);
  EXPECT_EQ(t.root(), 0);  // hub has max weighted degree
  expect_valid_spanning_tree(t);
}

TEST(Akpw, ProducesValidSpanningTree) {
  Rng rng(7);
  const Graph g = weighted_test_graph(200, 800, 11);
  const SpanningTree t = akpw_low_stretch_tree(g, rng);
  expect_valid_spanning_tree(t);
}

TEST(Akpw, WorksOnUnitWeights) {
  Rng rng(8);
  const Graph g = grid_2d(20, 20);
  const SpanningTree t = akpw_low_stretch_tree(g, rng);
  expect_valid_spanning_tree(t);
}

TEST(Akpw, SingleVertexAndPath) {
  Rng rng(9);
  Graph g1(1);
  g1.finalize();
  EXPECT_EQ(akpw_low_stretch_tree(g1, rng).num_vertices(), 1);
  const Graph p = path_graph(30);
  const SpanningTree t = akpw_low_stretch_tree(p, rng);
  EXPECT_EQ(t.num_offtree_edges(), 0);
}

TEST(Akpw, ThrowsOnDisconnected) {
  Rng rng(10);
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.finalize();
  EXPECT_THROW((void)akpw_low_stretch_tree(g, rng), std::invalid_argument);
}

TEST(Akpw, BetterStretchThanWorstTreeOnGrid) {
  // On a weighted grid, AKPW should beat the *minimum*-weight spanning tree
  // (an intentionally bad backbone) on total stretch.
  Rng rng(11);
  Rng wrng(12);
  const Graph g =
      grid_2d(25, 25, WeightModel::log_uniform(0.01, 100.0), &wrng);
  const SpanningTree akpw = akpw_low_stretch_tree(g, rng);
  const SpanningTree worst = min_weight_spanning_tree(g);
  const double s_akpw = compute_stretch(akpw).total_all;
  const double s_worst = compute_stretch(worst).total_all;
  EXPECT_LT(s_akpw, s_worst);
}

TEST(Lca, MatchesNaiveOnRandomTrees) {
  Rng rng(13);
  const Graph g = weighted_test_graph(80, 300, 21);
  const SpanningTree t = max_weight_spanning_tree(g);
  const LcaIndex lca(t);

  auto naive_lca = [&](Vertex u, Vertex v) {
    while (t.depth(u) > t.depth(v)) u = t.parent(u);
    while (t.depth(v) > t.depth(u)) v = t.parent(v);
    while (u != v) {
      u = t.parent(u);
      v = t.parent(v);
    }
    return u;
  };

  for (int trial = 0; trial < 500; ++trial) {
    const auto u = static_cast<Vertex>(rng.uniform_int(0, 79));
    const auto v = static_cast<Vertex>(rng.uniform_int(0, 79));
    EXPECT_EQ(lca.lca(u, v), naive_lca(u, v));
  }
  EXPECT_THROW((void)lca.lca(0, 99), std::invalid_argument);
}

TEST(Lca, PathResistanceIdentities) {
  const Graph g = grid_2d(6, 6);
  const SpanningTree t = max_weight_spanning_tree(g);
  const LcaIndex lca(t);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(lca.path_resistance(v, v), 0.0);
    EXPECT_NEAR(lca.path_resistance(t.root(), v), t.resistance_to_root(v),
                1e-12);
  }
  // Symmetry.
  EXPECT_NEAR(lca.path_resistance(3, 17), lca.path_resistance(17, 3), 1e-15);
}

TEST(Stretch, TreeEdgesHaveUnitStretch) {
  const Graph g = weighted_test_graph(40, 150, 31);
  const SpanningTree t = max_weight_spanning_tree(g);
  const LcaIndex lca(t);
  for (EdgeId e : t.tree_edge_ids()) {
    EXPECT_NEAR(lca.stretch(e), 1.0, 1e-12);
  }
}

TEST(Stretch, ReportConsistency) {
  const Graph g = weighted_test_graph(50, 220, 41);
  const SpanningTree t = max_weight_spanning_tree(g);
  const StretchReport r = compute_stretch(t);
  ASSERT_EQ(r.offtree_edges.size(), r.offtree_stretch.size());
  double sum = 0.0, mx = 0.0;
  for (double s : r.offtree_stretch) {
    EXPECT_GT(s, 0.0);
    sum += s;
    mx = std::max(mx, s);
  }
  EXPECT_NEAR(r.total_offtree, sum, 1e-9);
  EXPECT_NEAR(r.max_offtree, mx, 1e-12);
  EXPECT_NEAR(r.total_all, sum + 49.0, 1e-9);
  EXPECT_NEAR(r.mean_offtree, sum / static_cast<double>(r.offtree_edges.size()),
              1e-12);
}

TEST(Stretch, EqualsTraceOfPencilOnSmallGraph) {
  // total_all = Trace(L_T^+ L_G) — verify against the dense generalized
  // eigenvalues (their sum equals the trace).
  const Graph g = weighted_test_graph(16, 40, 51);
  const SpanningTree t = max_weight_spanning_tree(g);
  const StretchReport r = compute_stretch(t);

  const DenseMatrix lg = DenseMatrix::from_csr(laplacian(g));
  const DenseMatrix lt = DenseMatrix::from_csr(laplacian(t.as_graph()));
  const Vec evals = dense_generalized_eigenvalues(lg, lt);
  const double trace = std::accumulate(evals.begin(), evals.end(), 0.0);
  EXPECT_NEAR(r.total_all, trace, 1e-6 * trace);
}

TEST(TreeSolver, ExactOnPathGraph) {
  // Path 0-1-2 with unit weights: L x = b solvable by hand.
  const Graph g = path_graph(3);
  const SpanningTree t(g, {0, 1});
  const TreeSolver solver(t);
  const Vec b = {1.0, 0.0, -1.0};
  const Vec x = solver.solve(b);
  // x = [1, 0, -1] up to constant (mean already zero).
  EXPECT_NEAR(x[0] - x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[1] - x[2], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + x[1] + x[2], 0.0, 1e-12);
}

TEST(TreeSolver, ResidualIsZeroOnRandomTrees) {
  Rng rng(61);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = weighted_test_graph(120, 400, seed);
    const SpanningTree t = akpw_low_stretch_tree(g, rng);
    const TreeSolver solver(t);
    const CsrMatrix lt = laplacian(t.as_graph());

    Vec b = rng.normal_vector(120);
    project_out_mean(b);
    const Vec x = solver.solve(b);
    const Vec lx = lt.multiply(x);
    EXPECT_LT(relative_error(lx, b), 1e-10);
    EXPECT_NEAR(mean(x), 0.0, 1e-12);
  }
}

TEST(TreeSolver, ProjectsUnbalancedRhs) {
  // b with nonzero mean: solver must treat it as b - mean(b)·1.
  const Graph g = path_graph(4);
  const SpanningTree t(g, {0, 1, 2});
  const TreeSolver solver(t);
  Vec b = {2.0, 1.0, 1.0, 0.0};
  const Vec x1 = solver.solve(b);
  project_out_mean(b);
  const Vec x2 = solver.solve(b);
  EXPECT_LT(relative_error(x1, x2), 1e-13);
}

TEST(TreeSolver, MatchesDensePseudoinverse) {
  Rng rng(71);
  const Graph g = weighted_test_graph(30, 100, 77);
  const SpanningTree t = max_weight_spanning_tree(g);
  const TreeSolver solver(t);

  // Dense oracle: pseudo-solve via eigendecomposition of L_T.
  const DenseMatrix lt = DenseMatrix::from_csr(laplacian(t.as_graph()));
  const DenseEigen eig = dense_symmetric_eigen(lt);

  Vec b = rng.normal_vector(30);
  project_out_mean(b);
  // x = Σ_{λ>0} (v^T b / λ) v
  Vec x_ref(30, 0.0);
  for (Index j = 0; j < 30; ++j) {
    const double lam = eig.eigenvalues[static_cast<std::size_t>(j)];
    if (lam < 1e-9) continue;
    double coef = 0.0;
    for (Index i = 0; i < 30; ++i) {
      coef += eig.vectors(i, j) * b[static_cast<std::size_t>(i)];
    }
    coef /= lam;
    for (Index i = 0; i < 30; ++i) {
      x_ref[static_cast<std::size_t>(i)] += coef * eig.vectors(i, j);
    }
  }
  const Vec x = solver.solve(b);
  EXPECT_LT(relative_error(x, x_ref), 1e-8);
}

// Parameterized sweep: every backbone algorithm yields a valid spanning
// tree whose tree-solver residual vanishes, across graph families.

struct BackboneCase {
  const char* name;
  int graph_kind;  // 0 grid, 1 triangulated, 2 ER, 3 BA
  int tree_kind;   // 0 kruskal-max, 1 dijkstra, 2 akpw
};

class BackboneSweep : public ::testing::TestWithParam<BackboneCase> {};

TEST_P(BackboneSweep, ValidTreeAndExactSolve) {
  const auto& param = GetParam();
  Rng rng(123);
  Graph g;
  switch (param.graph_kind) {
    case 0:
      g = grid_2d(12, 12, WeightModel::uniform(0.5, 2.0), &rng);
      break;
    case 1:
      g = triangulated_grid(10, 14, WeightModel::log_uniform(0.1, 10.0), &rng);
      break;
    case 2:
      g = erdos_renyi_connected(150, 600, rng);
      break;
    default:
      g = barabasi_albert(150, 3, rng);
      break;
  }
  SpanningTree t = [&] {
    switch (param.tree_kind) {
      case 0:
        return max_weight_spanning_tree(g);
      case 1:
        return shortest_path_tree_from_center(g);
      default:
        return akpw_low_stretch_tree(g, rng);
    }
  }();
  expect_valid_spanning_tree(t);

  const TreeSolver solver(t);
  const CsrMatrix lt = laplacian(t.as_graph());
  Vec b = rng.normal_vector(g.num_vertices());
  project_out_mean(b);
  const Vec x = solver.solve(b);
  EXPECT_LT(relative_error(lt.multiply(x), b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, BackboneSweep,
    ::testing::Values(BackboneCase{"grid_kruskal", 0, 0},
                      BackboneCase{"grid_dijkstra", 0, 1},
                      BackboneCase{"grid_akpw", 0, 2},
                      BackboneCase{"tri_kruskal", 1, 0},
                      BackboneCase{"tri_akpw", 1, 2},
                      BackboneCase{"er_kruskal", 2, 0},
                      BackboneCase{"er_dijkstra", 2, 1},
                      BackboneCase{"er_akpw", 2, 2},
                      BackboneCase{"ba_akpw", 3, 2}),
    [](const ::testing::TestParamInfo<BackboneCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace ssp
