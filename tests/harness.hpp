#pragma once

// Differential update-script harness for the dynamic layer
// (src/dynamic/): generates randomized-but-valid UpdateBatch scripts over
// any host graph and provides the comparison helpers test_dynamic.cpp
// runs across generator families and thread counts.
//
// Script generation simulates the evolving graph with the same Graph
// mutation primitives DynamicSparsifier uses, so edge ids in batch k are
// valid against the state after batch k-1, deletions never disconnect the
// simulated graph (checked with a union-find pass per batch, exactly like
// the layer's own validation), and inserts never duplicate an existing
// pair. Everything is driven by an explicit ssp::Rng, so scripts are
// bit-reproducible.

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "dynamic/dynamic_sparsifier.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/union_find.hpp"

namespace ssp::testing {

struct ScriptOptions {
  Index batches = 3;
  Index inserts_per_batch = 3;
  Index deletes_per_batch = 3;
  Index reweights_per_batch = 4;
  double weight_lo = 0.2;
  double weight_hi = 5.0;
};

/// True when removing `remove` from `g` (all ids valid) keeps it connected.
inline bool stays_connected(const Graph& g, const std::vector<EdgeId>& remove) {
  std::vector<char> drop(static_cast<std::size_t>(g.num_edges()), 0);
  for (const EdgeId e : remove) drop[static_cast<std::size_t>(e)] = 1;
  UnionFind uf(static_cast<Index>(g.num_vertices()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (drop[static_cast<std::size_t>(e)] != 0) continue;
    const Edge& edge = g.edge(e);
    uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
  }
  return uf.num_sets() == 1;
}

/// Generates a valid update script over `g` (finalized, connected).
inline std::vector<UpdateBatch> make_update_script(const Graph& g, Rng& rng,
                                                   const ScriptOptions& o = {}) {
  Graph sim = g;  // evolves exactly like DynamicSparsifier's copy
  std::set<std::pair<Vertex, Vertex>> pairs;
  for (const Edge& e : sim.edges()) {
    pairs.insert(std::minmax(e.u, e.v));
  }

  std::vector<UpdateBatch> script;
  for (Index b = 0; b < o.batches; ++b) {
    UpdateBatch batch;
    const EdgeId m = sim.num_edges();
    std::set<EdgeId> touched;

    for (Index i = 0; i < o.reweights_per_batch && m > 0; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.uniform_int(0, m - 1));
      if (!touched.insert(e).second) continue;
      batch.reweight.push_back(
          WeightUpdate{e, rng.uniform(o.weight_lo, o.weight_hi)});
    }

    for (Index i = 0; i < o.deletes_per_batch && m > 0; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.uniform_int(0, m - 1));
      if (touched.count(e) != 0) continue;
      batch.remove.push_back(e);
      if (stays_connected(sim, batch.remove)) {
        touched.insert(e);
      } else {
        batch.remove.pop_back();  // would disconnect — skip this candidate
      }
    }

    for (Index i = 0; i < o.inserts_per_batch; ++i) {
      const Vertex u =
          static_cast<Vertex>(rng.uniform_int(0, sim.num_vertices() - 1));
      const Vertex v =
          static_cast<Vertex>(rng.uniform_int(0, sim.num_vertices() - 1));
      if (u == v || !pairs.insert(std::minmax(u, v)).second) continue;
      batch.insert.push_back(Edge{u, v, rng.uniform(o.weight_lo, o.weight_hi)});
    }

    // Mirror the layer's application order: reweight, insert, remove +
    // compact — keeping `sim`'s edge ids aligned with the live graph.
    for (const WeightUpdate& wu : batch.reweight) {
      sim.set_weight(wu.edge, wu.weight);
    }
    for (const Edge& e : batch.insert) sim.add_edge(e.u, e.v, e.weight);
    std::vector<Edge> removed_pairs;
    for (const EdgeId e : batch.remove) removed_pairs.push_back(sim.edge(e));
    sim.remove_edges(batch.remove);
    for (const Edge& e : removed_pairs) pairs.erase(std::minmax(e.u, e.v));
    sim.finalize();

    script.push_back(std::move(batch));
  }
  return script;
}

/// Replays `script` through a DynamicSparsifier at the given thread count
/// and returns the driver's final per-batch sparsifier edge lists (one
/// entry per batch, initial build first).
struct ReplayOutcome {
  std::vector<std::vector<EdgeId>> edges_per_batch;
  std::vector<UpdateStats> history;
  std::vector<EdgeId> final_edges;
  double final_sigma2 = 0.0;
  bool final_reached = false;
};

inline ReplayOutcome replay(const Graph& g,
                            const std::vector<UpdateBatch>& script,
                            DynamicOptions opts, int threads) {
  opts.base.threads = threads;
  DynamicSparsifier dyn(g, opts);
  ReplayOutcome out;
  out.edges_per_batch.push_back(dyn.result().edges);
  for (const UpdateBatch& batch : script) {
    dyn.apply(batch);
    out.edges_per_batch.push_back(dyn.result().edges);
  }
  out.history = dyn.history();
  out.final_edges = dyn.result().edges;
  out.final_sigma2 = dyn.result().sigma2_estimate;
  out.final_reached = dyn.result().reached_target;
  return out;
}

}  // namespace ssp::testing
