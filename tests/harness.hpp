#pragma once

// Differential update-script harness for the dynamic layer
// (src/dynamic/): generates randomized-but-valid UpdateBatch scripts over
// any host graph and provides the comparison helpers test_dynamic.cpp
// runs across generator families and thread counts.
//
// Script generation simulates the evolving graph with the same Graph
// mutation primitives DynamicSparsifier uses, so edge ids in batch k are
// valid against the state after batch k-1, deletions never disconnect the
// simulated graph (checked with a union-find pass per batch, exactly like
// the layer's own validation), and inserts never duplicate an existing
// pair. Everything is driven by an explicit ssp::Rng, so scripts are
// bit-reproducible.

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "dynamic/dynamic_sparsifier.hpp"
#include "graph/graph.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/union_find.hpp"

namespace ssp::testing {

struct ScriptOptions {
  Index batches = 3;
  Index inserts_per_batch = 3;
  Index deletes_per_batch = 3;
  Index reweights_per_batch = 4;
  double weight_lo = 0.2;
  double weight_hi = 5.0;
};

/// True when removing `remove` from `g` (all ids valid) keeps it connected.
inline bool stays_connected(const Graph& g, const std::vector<EdgeId>& remove) {
  std::vector<char> drop(static_cast<std::size_t>(g.num_edges()), 0);
  for (const EdgeId e : remove) drop[static_cast<std::size_t>(e)] = 1;
  UnionFind uf(static_cast<Index>(g.num_vertices()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (drop[static_cast<std::size_t>(e)] != 0) continue;
    const Edge& edge = g.edge(e);
    uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
  }
  return uf.num_sets() == 1;
}

/// Generates a valid update script over `g` (finalized, connected).
inline std::vector<UpdateBatch> make_update_script(const Graph& g, Rng& rng,
                                                   const ScriptOptions& o = {}) {
  Graph sim = g;  // evolves exactly like DynamicSparsifier's copy
  std::set<std::pair<Vertex, Vertex>> pairs;
  for (const Edge& e : sim.edges()) {
    pairs.insert(std::minmax(e.u, e.v));
  }

  std::vector<UpdateBatch> script;
  for (Index b = 0; b < o.batches; ++b) {
    UpdateBatch batch;
    const EdgeId m = sim.num_edges();
    std::set<EdgeId> touched;

    for (Index i = 0; i < o.reweights_per_batch && m > 0; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.uniform_int(0, m - 1));
      if (!touched.insert(e).second) continue;
      batch.reweight.push_back(
          WeightUpdate{e, rng.uniform(o.weight_lo, o.weight_hi)});
    }

    for (Index i = 0; i < o.deletes_per_batch && m > 0; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.uniform_int(0, m - 1));
      if (touched.count(e) != 0) continue;
      batch.remove.push_back(e);
      if (stays_connected(sim, batch.remove)) {
        touched.insert(e);
      } else {
        batch.remove.pop_back();  // would disconnect — skip this candidate
      }
    }

    for (Index i = 0; i < o.inserts_per_batch; ++i) {
      const Vertex u =
          static_cast<Vertex>(rng.uniform_int(0, sim.num_vertices() - 1));
      const Vertex v =
          static_cast<Vertex>(rng.uniform_int(0, sim.num_vertices() - 1));
      if (u == v || !pairs.insert(std::minmax(u, v)).second) continue;
      batch.insert.push_back(Edge{u, v, rng.uniform(o.weight_lo, o.weight_hi)});
    }

    // Mirror the layer's application order: reweight, insert, remove +
    // compact — keeping `sim`'s edge ids aligned with the live graph.
    for (const WeightUpdate& wu : batch.reweight) {
      sim.set_weight(wu.edge, wu.weight);
    }
    for (const Edge& e : batch.insert) sim.add_edge(e.u, e.v, e.weight);
    std::vector<Edge> removed_pairs;
    for (const EdgeId e : batch.remove) removed_pairs.push_back(sim.edge(e));
    sim.remove_edges(batch.remove);
    for (const Edge& e : removed_pairs) pairs.erase(std::minmax(e.u, e.v));
    sim.finalize();

    script.push_back(std::move(batch));
  }
  return script;
}

// ---- Adversarial scripts ---------------------------------------------------
//
// Deterministic worst-case batches for the localized re-estimation path:
// each one concentrates churn on the structures the dirty-set tracking
// must get exactly right (the same tree path over and over, an edge that
// exists for exactly one batch, a batch that dirties every tree edge at
// once). They are valid update scripts for any DynamicSparsifier mode —
// the differential tests replay them in power and localized estimation and
// at several thread counts.

/// Repeatedly reweights the SAME max-weight-tree edge, alternating far
/// above and far below its original weight. Every batch re-dirties one
/// tree path; odd batches also force an exchange swap and even ones swap
/// it back, so the dirty set must cover the swapped-out edge's detour in
/// both directions.
inline std::vector<UpdateBatch> make_repeated_reweight_script(
    const Graph& g, Index batches = 6) {
  const SpanningTree t = max_weight_spanning_tree(g);
  const EdgeId victim = t.tree_edge_ids()[t.tree_edge_ids().size() / 2];
  const double w = g.edge(victim).weight;
  std::vector<UpdateBatch> script;
  for (Index b = 0; b < batches; ++b) {
    UpdateBatch batch;
    const double factor = (b % 2 == 0) ? 1e-3 : 1e3;
    batch.reweight.push_back(WeightUpdate{victim, w * factor});
    script.push_back(std::move(batch));
  }
  return script;
}

/// Inserts an edge between two far-apart vertices, then deletes exactly
/// that edge in the next batch, several times over. The inserted edge's id
/// is the tail id of its batch and a different id (post-compaction) in the
/// deleting batch — exercising cache migration through the id remap and
/// the insert/delete dirty rules for the same endpoints.
inline std::vector<UpdateBatch> make_insert_delete_script(const Graph& g,
                                                          Index cycles = 3) {
  const Vertex u = 0;
  const Vertex v = g.num_vertices() - 1;
  SSP_REQUIRE(g.find_edge(u, v) == kInvalidEdge,
              "insert_delete script: corner pair already joined");
  std::vector<UpdateBatch> script;
  const EdgeId inserted_id = g.num_edges();  // tail id, stable per cycle
  for (Index c = 0; c < cycles; ++c) {
    UpdateBatch ins;
    ins.insert.push_back(Edge{u, v, 100.0 + static_cast<double>(c)});
    script.push_back(std::move(ins));
    UpdateBatch del;
    del.remove.push_back(inserted_id);
    script.push_back(std::move(del));
  }
  return script;
}

/// One batch deleting EVERY current max-weight-tree edge (requires the
/// off-tree edges alone to keep `g` connected — true for 2D lattices and
/// most dense families). The repair reconnects n−1 components in a single
/// after_deletions() call; every off-tree stretch is dirty by
/// construction, so a localized run must recompute all of them and still
/// match cold bit for bit.
inline std::vector<UpdateBatch> make_all_tree_edge_deletion_script(
    const Graph& g) {
  const SpanningTree t = max_weight_spanning_tree(g);
  UpdateBatch batch;
  batch.remove.assign(t.tree_edge_ids().begin(), t.tree_edge_ids().end());
  SSP_REQUIRE(stays_connected(g, batch.remove),
              "all_tree_edge script: off-tree edges do not span the graph");
  return {std::move(batch)};
}

/// Replays `script` through a DynamicSparsifier at the given thread count
/// and returns the driver's final per-batch sparsifier edge lists (one
/// entry per batch, initial build first).
struct ReplayOutcome {
  std::vector<std::vector<EdgeId>> edges_per_batch;
  std::vector<UpdateStats> history;
  std::vector<EdgeId> final_edges;
  double final_sigma2 = 0.0;
  bool final_reached = false;
};

inline ReplayOutcome replay(const Graph& g,
                            const std::vector<UpdateBatch>& script,
                            DynamicOptions opts, int threads) {
  opts.base.threads = threads;
  DynamicSparsifier dyn(g, opts);
  ReplayOutcome out;
  out.edges_per_batch.push_back(dyn.result().edges);
  for (const UpdateBatch& batch : script) {
    dyn.apply(batch);
    out.edges_per_batch.push_back(dyn.result().edges);
  }
  out.history = dyn.history();
  out.final_edges = dyn.result().edges;
  out.final_sigma2 = dyn.result().sigma2_estimate;
  out.final_reached = dyn.result().reached_target;
  return out;
}

}  // namespace ssp::testing
