#!/usr/bin/env bash
# Serving smoke test: starts a real ssp_serve daemon on a unix socket,
# drives it with four concurrent scripted clients interleaving commits
# against one session, and asserts the determinism contract end to end —
# the daemon's snapshot is byte-identical to replaying the journal it
# reports through `ssp_sparsify --update-file`, at SSP_THREADS 1 and 4.
# The clients reweight disjoint edge sets (client k owns the horizontal
# edges of grid rows 2k and 2k+1), so every interleaving resolves.
#
# Usage: serve_smoke.sh <ssp_serve> <ssp_client> <ssp_sparsify> <fixtures_dir> <work_dir>

set -u

SERVE="$1"
CLIENT="$2"
SPARSIFY="$3"
FIXTURES="$4"
WORK="$5"

GRAPH="$FIXTURES/grid8.mtx"
NCLIENTS=4
NCOMMITS=3

mkdir -p "$WORK"
rm -f "$WORK"/*.mtx "$WORK"/*.txt "$WORK"/*.journal

fail() {
  echo "FAIL: $*" >&2
  [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null
  exit 1
}

# Client k's script: NCOMMITS batches reweighting its own rows.
client_script() { # client_script <k>
  local k="$1" commit row col u
  echo "attach g"
  for ((commit = 0; commit < NCOMMITS; commit++)); do
    for ((row = 2 * k; row < 2 * k + 2; row++)); do
      for ((col = 0; col < 7; col++)); do
        u=$((row * 8 + col))
        echo "reweight $u $((u + 1)) 1.${commit}${col}5"
      done
    done
    echo "commit"
  done
  echo "quit"
}

for threads in 1 4; do
  # The unix socket must fit sockaddr_un: keep it under /tmp, not $WORK.
  SOCK="/tmp/ssp_smoke_$$_t$threads.sock"
  rm -f "$SOCK"

  SSP_THREADS=$threads "$SERVE" --socket "$SOCK" --sigma2 8 --seed 42 \
      > "$WORK/server_t$threads.log" 2>&1 &
  SERVER_PID=$!

  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup: $(cat "$WORK/server_t$threads.log")"
    sleep 0.1
  done
  [ -S "$SOCK" ] || fail "socket $SOCK never appeared"

  echo "open g $GRAPH" | "$CLIENT" --socket "$SOCK" \
      > "$WORK/open_t$threads.txt" \
      || fail "open failed: $(cat "$WORK/open_t$threads.txt")"

  # Four clients commit concurrently.
  CLIENT_PIDS=()
  for ((k = 0; k < NCLIENTS; k++)); do
    client_script "$k" | "$CLIENT" --socket "$SOCK" \
        > "$WORK/client${k}_t$threads.txt" &
    CLIENT_PIDS+=($!)
  done
  for ((k = 0; k < NCLIENTS; k++)); do
    wait "${CLIENT_PIDS[$k]}" \
        || fail "client $k failed: $(cat "$WORK/client${k}_t$threads.txt")"
  done

  # The journal the server actually applied, and its live snapshot.
  printf 'attach g\nquery journal\n' | "$CLIENT" --socket "$SOCK" \
      --payload-only > "$WORK/t$threads.journal" \
      || fail "journal extraction failed"
  expected_lines=$((NCLIENTS * NCOMMITS * 15))  # 14 ops + commit per batch
  actual_lines=$(wc -l < "$WORK/t$threads.journal")
  [ "$actual_lines" -eq "$expected_lines" ] \
      || fail "journal has $actual_lines lines, expected $expected_lines"
  printf 'attach g\nsnapshot %s\n' "$WORK/server_t$threads.mtx" \
      | "$CLIENT" --socket "$SOCK" > /dev/null \
      || fail "snapshot failed"

  # Live introspection: the daemon answers `stats`/`metrics` mid-life.
  printf 'stats\n' | "$CLIENT" --socket "$SOCK" \
      > "$WORK/stats_t$threads.txt" || fail "stats request failed"
  grep -q '^ok n=1' "$WORK/stats_t$threads.txt" \
      || fail "stats: expected one session: $(cat "$WORK/stats_t$threads.txt")"
  grep -q '^session=g .*commits=' "$WORK/stats_t$threads.txt" \
      || fail "stats: missing summary line: $(cat "$WORK/stats_t$threads.txt")"
  expected_commits=$((NCLIENTS * NCOMMITS))
  printf 'stats g\n' | "$CLIENT" --socket "$SOCK" --payload-only \
      > "$WORK/stats_g_t$threads.txt" || fail "stats g request failed"
  grep -q "^commits=$expected_commits\$" "$WORK/stats_g_t$threads.txt" \
      || fail "stats g: expected commits=$expected_commits: $(cat "$WORK/stats_g_t$threads.txt")"
  grep -q '^last\.stage\.sparsify\.seconds=' "$WORK/stats_g_t$threads.txt" \
      || fail "stats g: missing per-stage seconds"
  printf 'stats nosuch\n' | "$CLIENT" --socket "$SOCK" \
      > "$WORK/stats_err_t$threads.txt" \
      && fail "stats on unknown session should fail the client"
  grep -q '^err ' "$WORK/stats_err_t$threads.txt" \
      || fail "stats nosuch: expected err status"
  "$CLIENT" --socket "$SOCK" --metrics \
      > "$WORK/metrics_t$threads.txt" || fail "metrics one-shot failed"
  grep -q "^ssp_serve_commits $expected_commits\$" "$WORK/metrics_t$threads.txt" \
      || fail "metrics: expected ssp_serve_commits $expected_commits: $(grep ssp_serve "$WORK/metrics_t$threads.txt")"
  grep -q '^ssp_serve_commit_latency_us_p50 ' "$WORK/metrics_t$threads.txt" \
      || fail "metrics: missing commit latency histogram"

  # Offline replay of that exact journal must reproduce the same bytes.
  SSP_THREADS=$threads "$SPARSIFY" --in "$GRAPH" --sigma2 8 --seed 42 \
      --update-file "$WORK/t$threads.journal" \
      --out "$WORK/offline_t$threads.mtx" \
      > "$WORK/offline_t$threads.log" 2>&1 \
      || fail "offline replay failed: $(cat "$WORK/offline_t$threads.log")"
  cmp "$WORK/server_t$threads.mtx" "$WORK/offline_t$threads.mtx" \
      || fail "snapshot differs from offline replay at SSP_THREADS=$threads"

  # Graceful drain on SIGTERM.
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
  [ -S "$SOCK" ] && fail "server left its socket behind"
  SERVER_PID=""
done

# The two thread counts agree with each other too (threads never change
# results), as long as the interleavings happened to journal identically —
# they need not, so compare each against its own replay only (done above).
echo "serve smoke OK: $NCLIENTS clients x $NCOMMITS commits, threads 1 and 4"
