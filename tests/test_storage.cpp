// Tests for the out-of-core storage layer (src/storage/) and its
// consumers: the `.sspb` round-trip identity (heap graph ↔ written file ↔
// mmap'd view ↔ re-materialized heap graph, across the paper's generator
// families), the streaming .mtx converter's bit-identity with
// load_graph_mtx, the precise byte-offset/field error contract on
// corrupt/truncated/wrong-magic/wrong-version files, the unified graph
// source resolver, engine heap-vs-mmap parity, the hierarchical
// out-of-core driver's whole-graph and multi-leaf contracts, and
// sparsifier checkpoint save/load/restore bit-identity.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sparsifier.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "graph/generators/airfoil.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/generators/weights.hpp"
#include "graph/graph_source.hpp"
#include "graph/mtx_io.hpp"
#include "harness.hpp"
#include "scale/hierarchical_sparsifier.hpp"
#include "storage/checkpoint.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/sspb_io.hpp"
#include "util/rng.hpp"
#include "util/union_find.hpp"

namespace ssp {
namespace {

struct Family {
  const char* name;
  Graph graph;
};

/// One small graph per generator family the paper evaluates (the same
/// spread test_dynamic uses, plus a preferential-attachment graph).
std::vector<Family> generator_families() {
  std::vector<Family> families;
  {
    Rng rng(11);
    families.push_back(
        {"lattice", grid_2d(12, 12, WeightModel::log_uniform(0.2, 5.0), &rng)});
  }
  {
    Rng rng(13);
    families.push_back(
        {"community", planted_partition(160, 4, 0.08, 0.01, rng,
                                        WeightModel::uniform(0.5, 2.0))});
  }
  {
    Rng rng(14);
    const PointCloud pc = gaussian_mixture_points(150, 3, 5, 0.05, rng);
    families.push_back({"knn", knn_graph(pc, 4, KnnWeight::kInverseDistance)});
  }
  families.push_back({"airfoil", joukowski_airfoil_mesh(6, 24).graph});
  {
    Rng rng(15);
    families.push_back(
        {"ba", barabasi_albert(200, 3, rng, WeightModel::uniform(0.5, 2.0))});
  }
  return families;
}

/// Scratch path in /tmp, unique per test and process.
std::string tmp_path(const std::string& tag, const std::string& ext) {
  return "/tmp/ssp_storage_" + tag + "_" + std::to_string(::getpid()) + ext;
}

/// Bit-exact equality of two finalized graphs: shape, edge list (weights
/// compared as bit patterns), adjacency arrays, weighted degrees.
void expect_graphs_bit_identical(const GraphView& a, const GraphView& b,
                                 const std::string& context) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << context;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << context;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    const Edge ea = a.edge(e);
    const Edge eb = b.edge(e);
    ASSERT_EQ(ea.u, eb.u) << context << " edge " << e;
    ASSERT_EQ(ea.v, eb.v) << context << " edge " << e;
    std::uint64_t wa = 0;
    std::uint64_t wb = 0;
    std::memcpy(&wa, &ea.weight, 8);
    std::memcpy(&wb, &eb.weight, 8);
    ASSERT_EQ(wa, wb) << context << " edge " << e << " weight bits";
  }
  for (Vertex v = 0; v <= a.num_vertices(); ++v) {
    ASSERT_EQ(a.adj_ptr()[static_cast<std::size_t>(v)],
              b.adj_ptr()[static_cast<std::size_t>(v)])
        << context << " adj_ptr " << v;
  }
  for (std::size_t i = 0; i < a.adj_nbr().size(); ++i) {
    ASSERT_EQ(a.adj_nbr()[i], b.adj_nbr()[i]) << context << " adj_nbr " << i;
    ASSERT_EQ(a.adj_eid()[i], b.adj_eid()[i]) << context << " adj_eid " << i;
    std::uint64_t wa = 0;
    std::uint64_t wb = 0;
    std::memcpy(&wa, &a.adj_w()[i], 8);
    std::memcpy(&wb, &b.adj_w()[i], 8);
    ASSERT_EQ(wa, wb) << context << " adj_w " << i;
  }
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    std::uint64_t wa = 0;
    std::uint64_t wb = 0;
    std::memcpy(&wa, &a.weighted_degrees_span()[static_cast<std::size_t>(v)],
                8);
    std::memcpy(&wb, &b.weighted_degrees_span()[static_cast<std::size_t>(v)],
                8);
    ASSERT_EQ(wa, wb) << context << " weighted_degree " << v;
  }
}

/// Patches `count` bytes at `offset` in an existing file.
void patch_file(const std::string& path, std::uint64_t offset,
                const void* data, std::size_t count) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(count));
  ASSERT_TRUE(f.good()) << path;
}

// ---- .sspb round trips -----------------------------------------------------

TEST(SspbFormat, WriteMapMaterializeRoundTripAcrossFamilies) {
  for (const auto& [name, g] : generator_families()) {
    const std::string path = tmp_path(std::string("rt_") + name, ".sspb");
    storage::write_sspb(path, g);
    const storage::MappedGraph mapped(path);
    // The mmap'd view equals the heap graph array for array...
    expect_graphs_bit_identical(g, mapped.view(), name);
    // ...and survives a deep copy back to the heap (finalize() rebuilds
    // the same CSR the file holds).
    const Graph copy = mapped.materialize();
    expect_graphs_bit_identical(g, copy, std::string(name) + " materialized");
    // release_pages() drops RSS but never data: the view re-faults.
    mapped.release_pages();
    expect_graphs_bit_identical(g, mapped.view(),
                                std::string(name) + " after release");
    std::remove(path.c_str());
  }
}

TEST(SspbFormat, StreamingConvertMatchesMtxLoaderAcrossFamilies) {
  for (const auto& [name, g] : generator_families()) {
    const std::string mtx = tmp_path(std::string("cv_") + name, ".mtx");
    const std::string bin = tmp_path(std::string("cv_") + name, ".sspb");
    save_graph_mtx(mtx, g);
    const storage::ConvertStats stats = storage::convert_mtx_to_sspb(mtx, bin);
    const Graph via_loader = load_graph_mtx(mtx);
    const storage::MappedGraph mapped(bin);
    EXPECT_EQ(stats.vertices, via_loader.num_vertices()) << name;
    EXPECT_EQ(stats.edges, via_loader.num_edges()) << name;
    expect_graphs_bit_identical(via_loader, mapped.view(), name);
    std::remove(mtx.c_str());
    std::remove(bin.c_str());
  }
}

TEST(SspbFormat, ConvertAppliesMagnitudeRuleLikeTheLoader) {
  // A hand-written general .mtx exercising the §4 corners: asymmetric
  // pair (magnitude = max |a_ij|, |a_ji|), diagonal entries (skipped),
  // a zero entry (dropped), and a dangling second component (dropped by
  // the largest-component filter).
  const std::string mtx = tmp_path("rule", ".mtx");
  const std::string bin = tmp_path("rule", ".sspb");
  {
    std::ofstream out(mtx);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "5 5 8\n";
    out << "1 2 -3.5\n";
    out << "2 1 1.25\n";   // pair magnitude max(3.5, 1.25) = 3.5
    out << "1 1 7.0\n";    // diagonal: skipped
    out << "3 1 2.0\n";    // lower-triangle single entry
    out << "2 3 0.0\n";    // upper mirror of a stored lower entry: skipped
    out << "3 2 0.75\n";   // lower owns the pair: max(0.75, 0.0) = 0.75
    out << "4 5 1.0\n";    // second component...
    out << "5 4 1.0\n";    // ...dropped by the component filter
  }
  const storage::ConvertStats stats = storage::convert_mtx_to_sspb(mtx, bin);
  const Graph via_loader = load_graph_mtx(mtx);
  const storage::MappedGraph mapped(bin);
  expect_graphs_bit_identical(via_loader, mapped.view(), "magnitude rule");
  EXPECT_EQ(stats.dropped_vertices, 2);
  EXPECT_EQ(stats.dropped_edges, 1);
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
}

TEST(SspbFormat, DuplicateEntriesSumInFileOrderLikeTheLoader) {
  // Duplicate directed (row, col) entries whose floating-point sum
  // depends on the order of addition: in file order 1e16 + 1 loses the 1
  // and the total lands on 2.5; any other order changes the bits. Both
  // pipelines must coalesce in file order (stable sorts), or the .sspb
  // file silently diverges from the in-core graph.
  const std::string mtx = tmp_path("dup", ".mtx");
  const std::string bin = tmp_path("dup", ".sspb");
  {
    std::ofstream out(mtx);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "3 3 6\n";
    out << "1 2 1e16\n";
    out << "1 2 1\n";
    out << "1 2 -1e16\n";
    out << "1 2 2.5\n";   // file-order sum: ((1e16 + 1) - 1e16) + 2.5 = 2.5
    out << "2 3 0.125\n";
    out << "2 3 0.25\n";  // keeps vertex 3 in the largest component
  }
  const Graph via_loader = load_graph_mtx(mtx);
  storage::convert_mtx_to_sspb(mtx, bin);
  const storage::MappedGraph mapped(bin);
  expect_graphs_bit_identical(via_loader, mapped.view(), "duplicates");
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
}

// ---- .sspb error contract --------------------------------------------------

/// A valid small .sspb file for the corruption tests.
std::string make_valid_sspb(const std::string& tag) {
  Rng rng(7);
  const Graph g = grid_2d(6, 6, WeightModel::log_uniform(0.5, 2.0), &rng);
  const std::string path = tmp_path(tag, ".sspb");
  storage::write_sspb(path, g);
  return path;
}

TEST(SspbErrors, WrongMagicNamesByteZero) {
  const std::string path = make_valid_sspb("magic");
  const std::uint32_t junk = 0xdeadbeefu;
  patch_file(path, 0, &junk, 4);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "wrong magic must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 0u);
    EXPECT_EQ(e.field(), "magic");
    EXPECT_NE(std::string(e.what()).find("byte 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deadbeef"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, WrongVersionNamesByteFour) {
  const std::string path = make_valid_sspb("version");
  const std::uint32_t v2 = 2;
  patch_file(path, 4, &v2, 4);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "wrong version must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 4u);
    EXPECT_EQ(e.field(), "version");
    EXPECT_NE(std::string(e.what()).find("unsupported version 2"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, TruncatedFileNamesTheCutSectionAndOffset) {
  const std::string path = make_valid_sspb("trunc");
  const std::uint64_t full = std::filesystem::file_size(path);
  const std::uint64_t cut = full - 16;  // inside weighted_degree (n*8 = 288)
  std::filesystem::resize_file(path, cut);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "truncated file must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), cut);
    EXPECT_EQ(e.field(), "weighted_degree");
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, FileShorterThanHeaderIsDiagnosed) {
  const std::string path = tmp_path("short", ".sspb");
  {
    std::ofstream out(path, std::ios::binary);
    out << "SSPB";  // 4 of the 32 header bytes
  }
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "short file must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 4u);
    EXPECT_EQ(e.field(), "header");
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, InconsistentDeclaredSizeNamesFileBytesField) {
  const std::string path = make_valid_sspb("declared");
  const std::uint64_t lie = 99999;
  patch_file(path, 24, &lie, 8);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "bad declared size must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 24u);
    EXPECT_EQ(e.field(), "file_bytes");
    EXPECT_NE(std::string(e.what()).find("99999"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, HugeEdgeCountIsRejectedBeforeLayoutOverflow) {
  const std::string path = make_valid_sspb("hugem");
  // Large enough that sspb_layout's uint64 arithmetic (largest term 16m)
  // would wrap and could collide with a small file's size — the bound
  // check must reject it before any layout math runs.
  const std::int64_t huge = std::int64_t{1} << 59;
  patch_file(path, 16, &huge, 8);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "huge edge count must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 16u);
    EXPECT_EQ(e.field(), "m");
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, OutOfRangeNeighborIsRejected) {
  const std::string path = make_valid_sspb("nbr");
  Rng rng(7);
  const Graph g = grid_2d(6, 6, WeightModel::log_uniform(0.5, 2.0), &rng);
  const storage::SspbLayout layout =
      storage::sspb_layout(g.num_vertices(), g.num_edges());
  const Vertex bogus = g.num_vertices();  // one past the last vertex
  patch_file(path, layout.adj_nbr, &bogus, 4);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "out-of-range neighbor must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), layout.adj_nbr);
    EXPECT_EQ(e.field(), "adj_nbr");
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, OutOfRangeEdgeIdIsRejected) {
  const std::string path = make_valid_sspb("eid");
  Rng rng(7);
  const Graph g = grid_2d(6, 6, WeightModel::log_uniform(0.5, 2.0), &rng);
  const storage::SspbLayout layout =
      storage::sspb_layout(g.num_vertices(), g.num_edges());
  const EdgeId bogus = g.num_edges();  // one past the last edge
  patch_file(path, layout.adj_eid, &bogus, 8);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "out-of-range edge id must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), layout.adj_eid);
    EXPECT_EQ(e.field(), "adj_eid");
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, OutOfRangeEndpointIsRejected) {
  const std::string path = make_valid_sspb("endp");
  Rng rng(7);
  const Graph g = grid_2d(6, 6, WeightModel::log_uniform(0.5, 2.0), &rng);
  const storage::SspbLayout layout =
      storage::sspb_layout(g.num_vertices(), g.num_edges());
  const Vertex bogus = -1;
  patch_file(path, layout.edge_u, &bogus, 4);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "out-of-range endpoint must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), layout.edge_u);
    EXPECT_EQ(e.field(), "edge_u");
  }
  std::remove(path.c_str());
}

TEST(SspbErrors, CorruptRowPointersAreRejected) {
  const std::string path = make_valid_sspb("adjptr");
  Rng rng(7);
  const Graph g = grid_2d(6, 6, WeightModel::log_uniform(0.5, 2.0), &rng);
  const storage::SspbLayout layout =
      storage::sspb_layout(g.num_vertices(), g.num_edges());
  const std::int64_t bogus = -5;
  patch_file(path, layout.adj_ptr, &bogus, 8);
  try {
    storage::MappedGraph mapped(path);
    FAIL() << "corrupt adj_ptr must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), layout.adj_ptr);
    EXPECT_EQ(e.field(), "adj_ptr");
  }
  std::remove(path.c_str());
}

// ---- Unified graph-source resolution ---------------------------------------

TEST(GraphSource, ClassifiesSpecsBinariesAndMtx) {
  EXPECT_EQ(classify_graph_source("gen:grid2d:8x8"),
            GraphSourceKind::kGenerator);
  EXPECT_EQ(classify_graph_source("graphs/big.sspb"), GraphSourceKind::kSspb);
  EXPECT_EQ(classify_graph_source("graphs/big.mtx"), GraphSourceKind::kMtx);
  EXPECT_EQ(classify_graph_source("no_extension"), GraphSourceKind::kMtx);
}

TEST(GraphSource, LoadsAllThreeKindsToTheSameBits) {
  const Graph from_spec = load_graph_source("gen:grid2d:9x7:3");
  // A directly-serialized binary preserves the generator's edge order.
  const std::string bin = tmp_path("src", ".sspb");
  storage::write_sspb(bin, from_spec);
  expect_graphs_bit_identical(from_spec, load_graph_source(bin),
                              "spec vs sspb");
  // The .mtx round trip re-orders edges into the loader's CSR scan
  // order — so compare the loader against a binary converted from the
  // same file, which must match it bit for bit.
  const std::string mtx = tmp_path("src", ".mtx");
  const std::string bin2 = tmp_path("src2", ".sspb");
  save_graph_mtx(mtx, from_spec);
  storage::convert_mtx_to_sspb(mtx, bin2);
  const Graph from_mtx = load_graph_source(mtx);
  expect_graphs_bit_identical(from_mtx, load_graph_source(bin2),
                              "mtx vs converted sspb");
  EXPECT_EQ(from_mtx.num_vertices(), from_spec.num_vertices());
  EXPECT_EQ(from_mtx.num_edges(), from_spec.num_edges());
  std::remove(mtx.c_str());
  std::remove(bin.c_str());
  std::remove(bin2.c_str());
}

TEST(GraphSource, MalformedSpecsThrow) {
  EXPECT_THROW(load_graph_source("gen:nosuch:4x4"), std::invalid_argument);
  EXPECT_THROW(load_graph_source("gen:grid2d:4"), std::invalid_argument);
  EXPECT_THROW(load_graph_source("/nonexistent/path.sspb"),
               std::runtime_error);
}

// ---- Engine parity: heap vs mmap -------------------------------------------

TEST(EngineParity, SparsifierRunsBitIdenticalOnHeapAndMmapGraphs) {
  Rng rng(21);
  const Graph g = grid_2d(16, 16, WeightModel::log_uniform(0.2, 5.0), &rng);
  const std::string path = tmp_path("parity", ".sspb");
  storage::write_sspb(path, g);
  const storage::MappedGraph mapped(path);
  const Graph from_map = mapped.materialize();

  const SparsifyOptions opts = SparsifyOptions{}.with_sigma2(30.0).with_seed(5);
  Sparsifier on_heap(g, opts);
  Sparsifier on_map(from_map, opts);
  on_heap.run();
  on_map.run();
  EXPECT_EQ(on_heap.result().edges, on_map.result().edges);
  EXPECT_EQ(on_heap.result().sigma2_estimate, on_map.result().sigma2_estimate);
  EXPECT_EQ(on_heap.result().lambda_min, on_map.result().lambda_min);
  EXPECT_EQ(on_heap.result().lambda_max, on_map.result().lambda_max);
  std::remove(path.c_str());
}

// ---- Hierarchical out-of-core driver ---------------------------------------

TEST(Hierarchical, WholeGraphFastPathIsBitIdenticalToTheEngine) {
  Rng rng(31);
  const Graph g = grid_2d(14, 14, WeightModel::log_uniform(0.2, 5.0), &rng);
  const SparsifyOptions engine_opts =
      SparsifyOptions{}.with_sigma2(30.0).with_seed(9);
  Sparsifier engine(g, engine_opts);
  engine.run();

  // A budget the whole graph fits in → one leaf → verbatim engine run,
  // on the heap view and on the mmap'd file alike.
  HierarchicalOptions opts;
  opts.memory_budget_bytes = 1ull << 30;
  opts.block = engine_opts;
  const HierarchicalResult on_heap = hierarchical_sparsify(g, opts);
  EXPECT_TRUE(on_heap.whole_graph);
  EXPECT_EQ(on_heap.leaves, 1);
  EXPECT_EQ(on_heap.edges, engine.result().edges);

  const std::string path = tmp_path("oc_whole", ".sspb");
  storage::write_sspb(path, g);
  const storage::MappedGraph mapped(path);
  const HierarchicalResult on_map = hierarchical_sparsify(mapped, opts);
  EXPECT_TRUE(on_map.whole_graph);
  EXPECT_EQ(on_map.edges, engine.result().edges);
  std::remove(path.c_str());
}

TEST(Hierarchical, MultiLeafRunIsDeterministicAcrossProducersAndThreads) {
  Rng rng(33);
  const Graph g = grid_2d(24, 24, WeightModel::log_uniform(0.2, 5.0), &rng);
  const std::string path = tmp_path("oc_multi", ".sspb");
  storage::write_sspb(path, g);
  const storage::MappedGraph mapped(path);

  HierarchicalOptions opts;
  opts.memory_budget_bytes = 24 << 10;  // force several leaves
  opts.block = SparsifyOptions{}.with_sigma2(30.0).with_seed(9);

  HierarchicalOptions t1 = opts;
  t1.threads = 1;
  HierarchicalOptions t4 = opts;
  t4.threads = 4;
  const HierarchicalResult heap_t1 = hierarchical_sparsify(g, t1);
  const HierarchicalResult heap_t4 = hierarchical_sparsify(g, t4);
  const HierarchicalResult map_t1 = hierarchical_sparsify(mapped, t1);

  EXPECT_GT(heap_t1.leaves, 2);
  EXPECT_GT(heap_t1.depth, 0);
  EXPECT_FALSE(heap_t1.whole_graph);
  // Same bits for any thread count and either producer.
  EXPECT_EQ(heap_t1.edges, heap_t4.edges);
  EXPECT_EQ(heap_t1.edges, map_t1.edges);
  EXPECT_EQ(heap_t1.leaves, map_t1.leaves);
  EXPECT_EQ(heap_t1.cut_edges, map_t1.cut_edges);

  // The sparsifier connects what the input connects.
  UnionFind uf(g.num_vertices());
  for (const EdgeId e : heap_t1.edges) {
    const Edge& edge = g.edge(e);
    uf.unite(edge.u, edge.v);
  }
  EXPECT_EQ(uf.num_sets(), 1);
  std::remove(path.c_str());
}

TEST(Hierarchical, LeafStatsCoverEveryVertexAndSelectedEdge) {
  Rng rng(35);
  const Graph g = grid_2d(20, 20, WeightModel::log_uniform(0.2, 5.0), &rng);
  HierarchicalOptions opts;
  opts.memory_budget_bytes = 64 << 10;
  opts.block = SparsifyOptions{}.with_sigma2(30.0).with_seed(9);
  const HierarchicalResult res = hierarchical_sparsify(g, opts);
  ASSERT_EQ(static_cast<Index>(res.leaf_stats.size()), res.leaves);
  Vertex vertices = 0;
  EdgeId kept = 0;
  for (const BlockStats& b : res.leaf_stats) {
    vertices += b.vertices;
    kept += b.kept_edges;
  }
  EXPECT_EQ(vertices, g.num_vertices());
  EXPECT_EQ(kept + res.cut_edges, res.num_edges());
}

// ---- Checkpoint save/load/restore ------------------------------------------

DynamicOptions dynamic_options(std::uint64_t seed = 42) {
  DynamicOptions opts;
  opts.base = SparsifyOptions{}.with_sigma2(30.0).with_seed(seed);
  return opts;
}

TEST(Checkpoint, SaveLoadRoundTripsEveryField) {
  Rng rng(41);
  const Graph g = grid_2d(10, 10, WeightModel::log_uniform(0.2, 5.0), &rng);
  Rng script_rng(101);
  const auto script = testing::make_update_script(g, script_rng);
  DynamicSparsifier dyn(g, dynamic_options());
  for (const UpdateBatch& batch : script) dyn.apply(batch);

  storage::SparsifierCheckpoint ckpt;
  ckpt.commits = static_cast<std::uint64_t>(script.size());
  ckpt.state = dyn.restore_state();

  const std::string path = tmp_path("ckpt_rt", ".sspc");
  storage::save_checkpoint(path, ckpt);
  const storage::SparsifierCheckpoint back = storage::load_checkpoint(path);

  EXPECT_EQ(back.commits, ckpt.commits);
  EXPECT_EQ(back.state.vertices, ckpt.state.vertices);
  EXPECT_EQ(back.state.edges, ckpt.state.edges);
  EXPECT_EQ(back.state.tree_edges, ckpt.state.tree_edges);
  EXPECT_EQ(back.state.offtree_edges, ckpt.state.offtree_edges);
  EXPECT_EQ(back.state.lambda_min, ckpt.state.lambda_min);
  EXPECT_EQ(back.state.lambda_max, ckpt.state.lambda_max);
  EXPECT_EQ(back.state.sigma2_estimate, ckpt.state.sigma2_estimate);
  EXPECT_EQ(back.state.reached_target, ckpt.state.reached_target);
  EXPECT_EQ(back.state.status, ckpt.state.status);
  ASSERT_EQ(back.state.history.size(), ckpt.state.history.size());
  for (std::size_t i = 0; i < back.state.history.size(); ++i) {
    const UpdateStats& a = back.state.history[i];
    const UpdateStats& b = ckpt.state.history[i];
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.inserted, b.inserted);
    EXPECT_EQ(a.removed, b.removed);
    EXPECT_EQ(a.reweighted, b.reweighted);
    EXPECT_EQ(a.tree_removed, b.tree_removed);
    EXPECT_EQ(a.tree_swaps, b.tree_swaps);
    EXPECT_EQ(a.dirty_fraction, b.dirty_fraction);
    EXPECT_EQ(a.route, b.route);
    EXPECT_EQ(a.graph_edges, b.graph_edges);
    EXPECT_EQ(a.sparsifier_edges, b.sparsifier_edges);
    EXPECT_EQ(a.sigma2_estimate, b.sigma2_estimate);
    EXPECT_EQ(a.reached_target, b.reached_target);
    EXPECT_EQ(a.seconds, b.seconds);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoredSparsifierMatchesNeverRestartedBitForBit) {
  Rng rng(43);
  const Graph g = grid_2d(10, 10, WeightModel::log_uniform(0.2, 5.0), &rng);
  Rng script_rng(103);
  testing::ScriptOptions script_opts;
  script_opts.batches = 4;
  const auto script = testing::make_update_script(g, script_rng, script_opts);

  // Reference: one process lives through all four batches.
  DynamicSparsifier reference(g, dynamic_options());
  for (const UpdateBatch& batch : script) reference.apply(batch);

  // Checkpointed: live through two batches, snapshot through the .sspc
  // serializer (not just in memory), "crash", fast-forward a fresh copy
  // of the base graph, restore, replay the tail.
  const std::string path = tmp_path("ckpt_restore", ".sspc");
  {
    DynamicSparsifier first_life(g, dynamic_options());
    first_life.apply(script[0]);
    first_life.apply(script[1]);
    storage::SparsifierCheckpoint ckpt;
    ckpt.commits = 2;
    ckpt.state = first_life.restore_state();
    storage::save_checkpoint(path, ckpt);
  }
  const storage::SparsifierCheckpoint loaded = storage::load_checkpoint(path);
  Graph replayed = g;
  for (std::uint64_t b = 0; b < loaded.commits; ++b) {
    apply_batch_to_graph(replayed, script[static_cast<std::size_t>(b)]);
  }
  DynamicSparsifier second_life(replayed, dynamic_options(), loaded.state);
  EXPECT_EQ(second_life.batches_applied(), Index{3});  // build + 2 commits
  for (std::size_t b = loaded.commits; b < script.size(); ++b) {
    second_life.apply(script[b]);
  }

  EXPECT_EQ(second_life.result().edges, reference.result().edges);
  EXPECT_EQ(second_life.result().sigma2_estimate,
            reference.result().sigma2_estimate);
  EXPECT_EQ(second_life.graph().num_edges(), reference.graph().num_edges());
  ASSERT_EQ(second_life.history().size(), reference.history().size());
  for (std::size_t i = 0; i < reference.history().size(); ++i) {
    EXPECT_EQ(second_life.history()[i].route, reference.history()[i].route);
    EXPECT_EQ(second_life.history()[i].sparsifier_edges,
              reference.history()[i].sparsifier_edges);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFilesNameByteOffsetAndField) {
  Rng rng(45);
  const Graph g = grid_2d(8, 8, WeightModel::log_uniform(0.2, 5.0), &rng);
  DynamicSparsifier dyn(g, dynamic_options());
  storage::SparsifierCheckpoint ckpt;
  ckpt.commits = 0;
  ckpt.state = dyn.restore_state();
  const std::string path = tmp_path("ckpt_bad", ".sspc");

  storage::save_checkpoint(path, ckpt);
  const std::uint32_t junk = 0x12345678u;
  patch_file(path, 0, &junk, 4);
  try {
    (void)storage::load_checkpoint(path);
    FAIL() << "wrong magic must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 0u);
    EXPECT_EQ(e.field(), "magic");
  }

  storage::save_checkpoint(path, ckpt);
  const std::uint32_t v9 = 9;
  patch_file(path, 4, &v9, 4);
  try {
    (void)storage::load_checkpoint(path);
    FAIL() << "wrong version must throw";
  } catch (const storage::SspbError& e) {
    EXPECT_EQ(e.byte_offset(), 4u);
    EXPECT_EQ(e.field(), "version");
  }

  storage::save_checkpoint(path, ckpt);
  const std::uint64_t full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 8);
  EXPECT_THROW(storage::load_checkpoint(path), storage::SspbError);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace ssp
