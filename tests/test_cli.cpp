// Unit tests for the dependency-free CLI argument parser used by the
// ssp_* tools.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "cli.hpp"

namespace ssp::cli {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, ParsesKeyValuePairs) {
  Argv a({"prog", "--in", "file.mtx", "--sigma2", "50"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_EQ(p.get("in", ""), "file.mtx");
  EXPECT_DOUBLE_EQ(p.get_double("sigma2", 0.0), 50.0);
}

TEST(Cli, ParsesEqualsForm) {
  Argv a({"prog", "--sigma2=123.5", "--name=x"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_DOUBLE_EQ(p.get_double("sigma2", 0.0), 123.5);
  EXPECT_EQ(p.get("name", ""), "x");
}

TEST(Cli, BooleanFlags) {
  Argv a({"prog", "--verbose", "--out", "o.mtx"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_TRUE(p.get_bool("verbose", false));
  EXPECT_FALSE(p.get_bool("quiet", false));
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("quiet"));
}

TEST(Cli, TrailingFlagIsBoolean) {
  Argv a({"prog", "--check"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_TRUE(p.get_bool("check", false));
}

TEST(Cli, HelpReturnsFalse) {
  Argv a({"prog", "--help"});
  ArgParser p("prog", "test");
  EXPECT_FALSE(p.parse(a.argc(), a.argv()));
  Argv b({"prog", "-h"});
  ArgParser q("prog", "test");
  EXPECT_FALSE(q.parse(b.argc(), b.argv()));
}

TEST(Cli, RequireThrowsWhenMissing) {
  Argv a({"prog"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_THROW((void)p.require("in"), std::invalid_argument);
}

TEST(Cli, TypedGettersValidate) {
  Argv a({"prog", "--n", "abc"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_THROW((void)p.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)p.get_double("n", 0.0), std::invalid_argument);
  EXPECT_EQ(p.get_int("missing", 7), 7);
}

TEST(Cli, PositionalArguments) {
  Argv a({"prog", "input.mtx", "--k", "3", "extra"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.mtx");
  EXPECT_EQ(p.positional()[1], "extra");
}

TEST(Cli, UsageListsOptions) {
  ArgParser p("prog", "does things");
  p.option("in", "input file").option("sigma2", "target", "100");
  const std::string u = p.usage();
  EXPECT_NE(u.find("--in"), std::string::npos);
  EXPECT_NE(u.find("default: 100"), std::string::npos);
  EXPECT_NE(u.find("does things"), std::string::npos);
}

}  // namespace
}  // namespace ssp::cli
