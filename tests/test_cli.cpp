// Unit tests for the dependency-free CLI argument parser used by the
// ssp_* tools.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "cli.hpp"

namespace ssp::cli {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, ParsesKeyValuePairs) {
  Argv a({"prog", "--in", "file.mtx", "--sigma2", "50"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_EQ(p.get("in", ""), "file.mtx");
  EXPECT_DOUBLE_EQ(p.get_double("sigma2", 0.0), 50.0);
}

TEST(Cli, ParsesEqualsForm) {
  Argv a({"prog", "--sigma2=123.5", "--name=x"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_DOUBLE_EQ(p.get_double("sigma2", 0.0), 123.5);
  EXPECT_EQ(p.get("name", ""), "x");
}

TEST(Cli, BooleanFlags) {
  Argv a({"prog", "--verbose", "--out", "o.mtx"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_TRUE(p.get_bool("verbose", false));
  EXPECT_FALSE(p.get_bool("quiet", false));
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("quiet"));
}

TEST(Cli, TrailingFlagIsBoolean) {
  Argv a({"prog", "--check"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_TRUE(p.get_bool("check", false));
}

TEST(Cli, HelpReturnsFalse) {
  Argv a({"prog", "--help"});
  ArgParser p("prog", "test");
  EXPECT_FALSE(p.parse(a.argc(), a.argv()));
  Argv b({"prog", "-h"});
  ArgParser q("prog", "test");
  EXPECT_FALSE(q.parse(b.argc(), b.argv()));
}

TEST(Cli, RequireThrowsWhenMissing) {
  Argv a({"prog"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_THROW((void)p.require("in"), std::invalid_argument);
}

TEST(Cli, TypedGettersValidate) {
  Argv a({"prog", "--n", "abc"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  EXPECT_THROW((void)p.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)p.get_double("n", 0.0), std::invalid_argument);
  EXPECT_EQ(p.get_int("missing", 7), 7);
}

TEST(Cli, PositionalArguments) {
  Argv a({"prog", "input.mtx", "--k", "3", "extra"});
  ArgParser p("prog", "test");
  ASSERT_TRUE(p.parse(a.argc(), a.argv()));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.mtx");
  EXPECT_EQ(p.positional()[1], "extra");
}

TEST(Cli, ServeOptionsDefaultsAndOverrides) {
  {
    Argv a({"prog"});
    ArgParser p("prog", "test");
    add_serve_options(p);
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    const serve::ServerConfig config = serve_config_from(p, DynamicOptions{});
    EXPECT_EQ(config.socket_path, "ssp_serve.sock");
    EXPECT_EQ(config.tcp_port, -1);  // unix socket is the default transport
    EXPECT_EQ(config.max_clients, 64);
    EXPECT_EQ(config.max_line_bytes, 65536u);
    EXPECT_EQ(config.serve.max_sessions, 64);
    EXPECT_EQ(config.serve.max_queued_batches, 8);
    EXPECT_DOUBLE_EQ(config.serve.drain_seconds, 5.0);
  }
  {
    Argv a({"prog", "--socket", "/tmp/s.sock", "--max-sessions", "4",
            "--max-queue", "2", "--max-clients", "8", "--max-line-bytes",
            "256", "--drain-timeout", "0.5"});
    ArgParser p("prog", "test");
    add_serve_options(p);
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    const serve::ServerConfig config = serve_config_from(p, DynamicOptions{});
    EXPECT_EQ(config.socket_path, "/tmp/s.sock");
    EXPECT_EQ(config.max_clients, 8);
    EXPECT_EQ(config.max_line_bytes, 256u);
    EXPECT_EQ(config.serve.max_sessions, 4);
    EXPECT_EQ(config.serve.max_queued_batches, 2);
    EXPECT_DOUBLE_EQ(config.serve.drain_seconds, 0.5);
  }
}

TEST(Cli, ServeTcpFlagForms) {
  {
    // `--tcp <port>` binds that loopback port.
    Argv a({"prog", "--tcp", "7077"});
    ArgParser p("prog", "test");
    add_serve_options(p);
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(serve_config_from(p, DynamicOptions{}).tcp_port, 7077);
  }
  {
    // Bare `--tcp` means "any ephemeral port".
    Argv a({"prog", "--tcp"});
    ArgParser p("prog", "test");
    add_serve_options(p);
    ASSERT_TRUE(p.parse(a.argc(), a.argv()));
    EXPECT_EQ(serve_config_from(p, DynamicOptions{}).tcp_port, 0);
  }
}

TEST(Cli, ServeOptionsRejectOutOfRangeValues) {
  const auto config_of = [](std::vector<std::string> argv) {
    Argv a(std::move(argv));
    ArgParser p("prog", "test");
    add_serve_options(p);
    EXPECT_TRUE(p.parse(a.argc(), a.argv()));
    return serve_config_from(p, DynamicOptions{});
  };
  EXPECT_THROW((void)config_of({"prog", "--tcp", "70000"}),
               std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--socket="}), std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--max-sessions", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--max-queue", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--max-clients", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--max-line-bytes", "4"}),
               std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--drain-timeout", "-1"}),
               std::invalid_argument);
  EXPECT_THROW((void)config_of({"prog", "--max-sessions", "lots"}),
               std::invalid_argument);
}

TEST(Cli, UsageListsOptions) {
  ArgParser p("prog", "does things");
  p.option("in", "input file").option("sigma2", "target", "100");
  const std::string u = p.usage();
  EXPECT_NE(u.find("--in"), std::string::npos);
  EXPECT_NE(u.find("default: 100"), std::string::npos);
  EXPECT_NE(u.find("does things"), std::string::npos);
}

}  // namespace
}  // namespace ssp::cli
