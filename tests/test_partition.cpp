// Tests for src/partition: sign cut, cut metrics, and the Table 3 spectral
// bisection (direct vs sparsifier-preconditioned solvers).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "partition/metrics.hpp"
#include "partition/recursive_bisection.hpp"
#include "partition/sign_cut.hpp"
#include "partition/spectral_bisection.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(SignCut, BasicSplit) {
  const Vec v = {-1.0, 2.0, 0.0, -0.5};
  const auto side = sign_cut(v);
  ASSERT_EQ(side.size(), 4u);
  EXPECT_EQ(side[0], 0);
  EXPECT_EQ(side[1], 1);
  EXPECT_EQ(side[2], 1);  // zero counts as positive
  EXPECT_EQ(side[3], 0);
  EXPECT_DOUBLE_EQ(sign_balance(side), 1.0);
}

TEST(SignCut, BalanceInfinityWhenOneSided) {
  const std::vector<std::uint8_t> all_pos = {1, 1, 1};
  EXPECT_TRUE(std::isinf(sign_balance(all_pos)));
}

TEST(SignCut, DisagreementIsSignInvariant) {
  const std::vector<std::uint8_t> a = {1, 1, 0, 0};
  const std::vector<std::uint8_t> b = {0, 0, 1, 1};  // global flip of a
  EXPECT_DOUBLE_EQ(sign_disagreement(a, b), 0.0);
  const std::vector<std::uint8_t> c = {1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(sign_disagreement(a, c), 0.25);
  const std::vector<std::uint8_t> short_vec = {1};
  EXPECT_THROW((void)sign_disagreement(a, short_vec), std::invalid_argument);
}

TEST(Metrics, CutWeightAndConductance) {
  // Two triangles joined by one weight-0.5 bridge.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(3, 5, 1.0);
  g.add_edge(2, 3, 0.5);
  g.finalize();
  const std::vector<std::uint8_t> side = {0, 0, 0, 1, 1, 1};
  const CutMetrics m = evaluate_cut(g, side);
  EXPECT_DOUBLE_EQ(m.cut_weight, 0.5);
  EXPECT_EQ(m.cut_edges, 1);
  EXPECT_DOUBLE_EQ(m.balance, 1.0);
  // vol of each side = 6.5; conductance = 0.5/6.5.
  EXPECT_NEAR(m.conductance, 0.5 / 6.5, 1e-12);

  const std::vector<std::uint8_t> empty_side = {1, 1, 1, 1, 1, 1};
  EXPECT_THROW((void)evaluate_cut(g, empty_side), std::invalid_argument);
}

TEST(Bisection, RecoversDumbbellSplitBothSolvers) {
  Rng rng(1);
  const Graph g = dumbbell_graph(60, 2, 0.01, rng);
  for (FiedlerSolverKind kind : {FiedlerSolverKind::kDirectCholesky,
                                 FiedlerSolverKind::kSparsifierPcg}) {
    BisectionOptions opts;
    opts.solver = kind;
    const BisectionResult res = spectral_bisection(g, opts);
    // Ground truth: vertices 0..59 vs 60..119.
    std::vector<std::uint8_t> truth(120, 0);
    for (std::size_t v = 60; v < 120; ++v) truth[v] = 1;
    EXPECT_LT(sign_disagreement(res.partition, truth), 0.02)
        << "solver " << static_cast<int>(kind);
    EXPECT_LE(res.metrics.cut_weight, 0.05);
    EXPECT_GT(res.power_iterations, 0);
    EXPECT_GT(res.solve_seconds, 0.0);
  }
}

TEST(Bisection, SolversAgreeOnMesh) {
  Rng rng(2);
  const Graph g = grid_2d(24, 17, WeightModel::uniform(0.5, 2.0), &rng);
  BisectionOptions direct;
  direct.solver = FiedlerSolverKind::kDirectCholesky;
  const BisectionResult rd = spectral_bisection(g, direct);

  BisectionOptions iter;
  iter.solver = FiedlerSolverKind::kSparsifierPcg;
  iter.sparsify.sigma2 = 200.0;
  const BisectionResult ri = spectral_bisection(g, iter);

  // Paper Table 3: Rel.Err between solvers is small (<= ~4e-2).
  EXPECT_LT(sign_disagreement(rd.partition, ri.partition), 0.05);
  EXPECT_NEAR(ri.lambda2, rd.lambda2, 0.05 * rd.lambda2);
  EXPECT_GT(ri.sparsifier_edges, 0);
  EXPECT_EQ(rd.sparsifier_edges, 0);
  EXPECT_GT(rd.solver_memory_bytes, 0u);
  EXPECT_GT(ri.solver_memory_bytes, 0u);
  // Balance close to 1 on a homogeneous mesh.
  EXPECT_GT(ri.metrics.balance, 0.5);
  EXPECT_LT(ri.metrics.balance, 2.0);
}

TEST(RecursiveBisection, SplitsMeshIntoBalancedParts) {
  Rng rng(3);
  const Graph g = grid_2d(24, 24, WeightModel::uniform(0.5, 2.0), &rng);
  RecursiveBisectionOptions opts;
  opts.num_parts = 4;
  const RecursiveBisectionResult res = recursive_bisection(g, opts);
  EXPECT_EQ(res.parts, 4);
  ASSERT_EQ(res.assignment.size(), static_cast<std::size_t>(576));
  // Balance: every part within [0.5, 2.0]x of the ideal size.
  std::vector<Index> sizes(4, 0);
  for (Vertex part : res.assignment) {
    ASSERT_GE(part, 0);
    ASSERT_LT(part, 4);
    ++sizes[static_cast<std::size_t>(part)];
  }
  for (Index s : sizes) {
    EXPECT_GE(s, 576 / 8);
    EXPECT_LE(s, 576 / 2);
  }
  EXPECT_GT(res.total_cut_weight, 0.0);
  // Cut is far below total weight (parts are contiguous-ish).
  EXPECT_LT(res.total_cut_weight, 0.25 * g.total_weight());
}

TEST(RecursiveBisection, RespectsMinPartSize) {
  Rng rng(4);
  const Graph g = grid_2d(8, 8);
  RecursiveBisectionOptions opts;
  opts.num_parts = 16;
  opts.min_part_size = 16;  // parts below 32 vertices never split
  const RecursiveBisectionResult res = recursive_bisection(g, opts);
  EXPECT_LE(res.parts, 4);  // 64 vertices / 2*16 limit
  EXPECT_GE(res.parts, 2);
}

// Edge cases the partition-parallel layer (src/scale/) depends on.

// Every produced label in [0, parts) is non-empty and in range.
void expect_compact_labels(const Graph& g,
                           const RecursiveBisectionResult& res) {
  ASSERT_EQ(res.assignment.size(), static_cast<std::size_t>(g.num_vertices()));
  std::vector<Index> sizes(static_cast<std::size_t>(res.parts), 0);
  for (Vertex part : res.assignment) {
    ASSERT_GE(part, 0);
    ASSERT_LT(part, res.parts);
    ++sizes[static_cast<std::size_t>(part)];
  }
  for (Index s : sizes) EXPECT_GT(s, 0) << "empty part label";
}

TEST(RecursiveBisection, PartCountNeedNotBePowerOfTwo) {
  Rng rng(5);
  const Graph g = grid_2d(20, 18, WeightModel::uniform(0.5, 2.0), &rng);
  for (Index k : {3, 5, 6}) {
    RecursiveBisectionOptions opts;
    opts.num_parts = k;
    const RecursiveBisectionResult res = recursive_bisection(g, opts);
    EXPECT_EQ(res.parts, k) << "k = " << k;
    expect_compact_labels(g, res);
  }
}

TEST(RecursiveBisection, DisconnectedInputNeverSplitsAcrossComponents) {
  // Two grids with no edges between them.
  const Graph a = grid_2d(8, 8);
  const Graph b = grid_2d(7, 7);
  Graph g(a.num_vertices() + b.num_vertices());
  for (const Edge& e : a.edges()) g.add_edge(e.u, e.v, e.weight);
  for (const Edge& e : b.edges()) {
    g.add_edge(e.u + a.num_vertices(), e.v + a.num_vertices(), e.weight);
  }
  g.finalize();

  RecursiveBisectionOptions opts;
  opts.num_parts = 4;
  const RecursiveBisectionResult res = recursive_bisection(g, opts);
  EXPECT_EQ(res.parts, 4);
  expect_compact_labels(g, res);
  // No part contains vertices from both components.
  std::vector<std::uint8_t> in_a(static_cast<std::size_t>(res.parts), 0);
  std::vector<std::uint8_t> in_b(static_cast<std::size_t>(res.parts), 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto part = static_cast<std::size_t>(
        res.assignment[static_cast<std::size_t>(v)]);
    (v < a.num_vertices() ? in_a : in_b)[part] = 1;
  }
  for (Index p = 0; p < res.parts; ++p) {
    EXPECT_FALSE(in_a[static_cast<std::size_t>(p)] != 0 &&
                 in_b[static_cast<std::size_t>(p)] != 0)
        << "part " << p << " spans components";
  }
}

TEST(RecursiveBisection, MoreComponentsThanRequestedParts) {
  // Three 3x3 grids, num_parts = 2: one part per component regardless.
  Graph g(27);
  const Graph cell = grid_2d(3, 3);
  for (Vertex offset : {0, 9, 18}) {
    for (const Edge& e : cell.edges()) {
      g.add_edge(e.u + offset, e.v + offset, e.weight);
    }
  }
  g.finalize();
  RecursiveBisectionOptions opts;
  opts.num_parts = 2;
  const RecursiveBisectionResult res = recursive_bisection(g, opts);
  EXPECT_EQ(res.parts, 3);
  expect_compact_labels(g, res);
  EXPECT_DOUBLE_EQ(res.total_cut_weight, 0.0);
}

TEST(RecursiveBisection, PartCountBeyondVertexCountSaturates) {
  const Graph g = grid_2d(6, 6);  // 36 vertices
  RecursiveBisectionOptions opts;
  opts.num_parts = 64;  // >= n: min_part_size stops splitting long before
  const RecursiveBisectionResult res = recursive_bisection(g, opts);
  EXPECT_GE(res.parts, 2);
  EXPECT_LE(res.parts, static_cast<Index>(g.num_vertices()) /
                           opts.min_part_size);
  expect_compact_labels(g, res);
}

TEST(RecursiveBisection, InputValidation) {
  const Graph g = grid_2d(6, 6);
  RecursiveBisectionOptions opts;
  opts.num_parts = 1;
  EXPECT_THROW((void)recursive_bisection(g, opts), std::invalid_argument);
  opts.num_parts = 2;
  opts.min_part_size = 2;
  EXPECT_THROW((void)recursive_bisection(g, opts), std::invalid_argument);
}

TEST(Bisection, InputValidation) {
  Graph small(2);
  small.add_edge(0, 1, 1.0);
  small.finalize();
  EXPECT_THROW((void)spectral_bisection(small, {}), std::invalid_argument);

  Graph disconnected(6);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  disconnected.add_edge(4, 5, 1.0);
  disconnected.finalize();
  EXPECT_THROW((void)spectral_bisection(disconnected, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssp
