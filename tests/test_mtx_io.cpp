// Tests for Matrix Market I/O: parsing (general/symmetric/pattern),
// round-trips through files, error handling, and the paper §4 graph
// conversion path.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/connectivity.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/laplacian.hpp"
#include "graph/mtx_io.hpp"

namespace ssp {
namespace {

TEST(MtxIo, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 1.5\n"
      "3 1 -2.0\n");
  const CsrMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -2.0);
}

TEST(MtxIo, ParsesSymmetricExpandsBothTriangles) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "2 1 4.0\n"
      "3 2 5.0\n"
      "1 1 7.0\n");
  const CsrMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 5);  // two mirrored off-diagonals + diagonal
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 7.0);
  EXPECT_TRUE(a.is_symmetric(0.0));
}

TEST(MtxIo, ParsesPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 1\n");
  const CsrMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 1.0);
}

TEST(MtxIo, RejectsMalformedInput) {
  {
    std::istringstream in("not a banner\n1 1 0\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n1 1\n1.0\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);  // range
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);  // EOF
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
}

TEST(MtxIo, WriteReadRoundTrip) {
  const Graph g = grid_2d(4, 4);
  const CsrMatrix l = laplacian(g);
  std::stringstream buf;
  write_matrix_market(buf, l);
  const CsrMatrix l2 = read_matrix_market(buf);
  EXPECT_EQ(l2.rows(), l.rows());
  EXPECT_EQ(l2.nnz(), l.nnz());
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      EXPECT_NEAR(l2.at(r, cols[k]), l.row_vals(r)[k], 1e-14);
    }
  }
}

TEST(MtxIo, GraphFileRoundTrip) {
  const std::string path = "ssp_test_graph_roundtrip.mtx";
  const Graph g = triangulated_grid(5, 5);
  save_graph_mtx(path, g);
  const Graph h = load_graph_mtx(path);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_NEAR(h.total_weight(), g.total_weight(), 1e-12);
  EXPECT_TRUE(is_connected(h));
  std::remove(path.c_str());
}

TEST(MtxIo, LoadGraphKeepsLargestComponent) {
  // Two disconnected cliques of different sizes in one matrix.
  const std::string path = "ssp_test_components.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n";
    out << "5 5 4\n";
    // triangle {0,1,2} (1-based {1,2,3}) + edge {3,4} (1-based {4,5})
    out << "2 1 1.0\n3 1 1.0\n3 2 1.0\n5 4 1.0\n";
  }
  const Graph g = load_graph_mtx(path);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  std::remove(path.c_str());
}

TEST(MtxIo, SkewSymmetricLoadsWithPositiveMagnitudeWeights) {
  // Regression: skew-symmetric entries are mirrored as -v by the matrix
  // reader; the §4 magnitude conversion must turn both sides into the
  // same positive edge weight instead of letting a sign leak through.
  const std::string path = "ssp_test_skew.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real skew-symmetric\n";
    out << "3 3 3\n";
    out << "2 1 -4.0\n3 1 2.5\n3 2 -1.5\n";
  }
  const Graph g = load_graph_mtx(path);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  for (const Edge& e : g.edges()) {
    EXPECT_GT(e.weight, 0.0);
  }
  EXPECT_NEAR(g.total_weight(), 4.0 + 2.5 + 1.5, 1e-15);
  std::remove(path.c_str());
}

TEST(MtxIo, GeneralNegativeOffDiagonalsBecomeMagnitudes) {
  // Regression: a general/real file with negative off-diagonals (e.g. a
  // Laplacian exported as 'general') must load as a positive-weight
  // graph under the uniform §4 rule — including entries stored only in
  // the upper triangle, which used to be dropped silently.
  const std::string path = "ssp_test_negative_general.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "4 4 4\n";
    out << "2 1 -3.0\n"    // lower, negative
        << "1 2 -3.0\n"    // its mirror (two-sided storage)
        << "1 3 -2.0\n"    // upper-triangle-only, negative
        << "4 3 1.5\n";    // lower, positive
  }
  const Graph g = load_graph_mtx(path);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  for (const Edge& e : g.edges()) {
    EXPECT_GT(e.weight, 0.0);
  }
  EXPECT_NEAR(g.total_weight(), 3.0 + 2.0 + 1.5, 1e-15);
  std::remove(path.c_str());
}

TEST(MtxIo, EdgelessConversionFailsWithClearError) {
  // Diagonal-only matrices convert to an edgeless graph; loading one must
  // fail loudly instead of handing an unusable graph downstream.
  const std::string path = "ssp_test_diagonal_only.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n";
    out << "3 3 3\n";
    out << "1 1 1.0\n2 2 1.0\n3 3 1.0\n";
  }
  try {
    (void)load_graph_mtx(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no usable off-diagonal"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(MtxIo, MissingFileThrows) {
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/file.mtx"),
               std::runtime_error);
  EXPECT_THROW((void)load_graph_mtx("/nonexistent/file.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace ssp
