#!/usr/bin/env bash
# Kernel backend parity check: runs ssp_sparsify over the checked-in
# fixture graphs under every kernel backend compiled into the binary
# (SSP_KERNEL_BACKEND) crossed with SSP_THREADS 1 and 4, and compares the
# output edge lists byte for byte against the generic-backend
# single-thread reference. Any difference is a violation of the kernel
# layer's determinism contract (see src/la/kernels/kernel_config.hpp).
#
# Usage: kernel_parity.sh <ssp_sparsify> <fixtures_dir> <work_dir>

set -u

SPARSIFY="$1"
FIXTURES="$2"
WORK="$3"

mkdir -p "$WORK"
rm -f "$WORK"/*.mtx

# Ask the binary which backends it can actually run here ("+" = compiled
# and supported by this CPU); an unsupported pin must not be attempted.
BACKENDS=$("$SPARSIFY" --kernels | awk '$1 == "backend" && $3 == "+" {print $2}')
if [ -z "$BACKENDS" ]; then
  echo "FAIL: ssp_sparsify --kernels reported no usable backends" >&2
  exit 1
fi
echo "usable backends: $BACKENDS"

run() { # run <backend> <threads> <output-name> <args...>
  local backend="$1" threads="$2" out="$WORK/$3"
  shift 3
  if ! SSP_KERNEL_BACKEND="$backend" SSP_THREADS="$threads" \
       "$SPARSIFY" "$@" --out "$out" > "$WORK/log.txt" 2>&1; then
    echo "FAIL: [$backend t$threads] ssp_sparsify $* exited non-zero" >&2
    cat "$WORK/log.txt" >&2
    exit 1
  fi
}

checked=0
for fixture in grid8 community16; do
  in="$FIXTURES/$fixture.mtx"
  # Reference: scalar backend, one thread.
  run generic 1 "${fixture}_ref.mtx" --in "$in" --sigma2 8 --seed 42
  for backend in $BACKENDS; do
    for threads in 1 4; do
      [ "$backend" = generic ] && [ "$threads" = 1 ] && continue
      out="${fixture}_${backend}_t${threads}.mtx"
      run "$backend" "$threads" "$out" --in "$in" --sigma2 8 --seed 42
      if ! cmp -s "$WORK/${fixture}_ref.mtx" "$WORK/$out"; then
        echo "FAIL: $fixture output differs: $backend @ SSP_THREADS=$threads" >&2
        echo "      vs generic @ SSP_THREADS=1 — backends must be" >&2
        echo "      byte-identical (kernel determinism contract)." >&2
        exit 1
      fi
      checked=$((checked + 1))
    done
  done
done

# A pin the binary cannot honour must fail loudly, never fall back.
if SSP_KERNEL_BACKEND=bogus "$SPARSIFY" --kernels > "$WORK/log.txt" 2>&1; then
  echo "FAIL: SSP_KERNEL_BACKEND=bogus did not error" >&2
  exit 1
fi

echo "kernel parity OK ($checked backend/thread legs byte-identical)"
