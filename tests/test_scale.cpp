// Tests for the partition-parallel sparsification layer (src/scale/) and
// its graph/subgraph.hpp extraction primitive: local ↔ global map round
// trips, the k = 1 bit-for-bit contract against the whole-graph engine,
// determinism across thread counts, cut-policy semantics, connectivity
// preservation, and assignment validation (singleton / empty blocks).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/weights.hpp"
#include "graph/subgraph.hpp"
#include "scale/partitioned_sparsifier.hpp"
#include "scale/quality.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

Graph weighted_grid(Vertex nx, Vertex ny, std::uint64_t seed) {
  Rng rng(seed);
  return grid_2d(nx, ny, WeightModel::uniform(0.5, 2.0), &rng);
}

/// Two weighted grids with no edges between them.
Graph two_component_graph() {
  const Graph a = weighted_grid(8, 8, 11);
  const Graph b = weighted_grid(6, 6, 12);
  Graph g(a.num_vertices() + b.num_vertices());
  for (const Edge& e : a.edges()) g.add_edge(e.u, e.v, e.weight);
  for (const Edge& e : b.edges()) {
    g.add_edge(e.u + a.num_vertices(), e.v + a.num_vertices(), e.weight);
  }
  g.finalize();
  return g;
}

// ---- graph/subgraph.hpp ----------------------------------------------------

TEST(Subgraph, InducedMapsRoundTrip) {
  const Graph g = weighted_grid(6, 5, 1);
  std::vector<Vertex> pick;
  for (Vertex v = 0; v < g.num_vertices(); v += 2) pick.push_back(v);
  const Subgraph sub = induced_subgraph(g, pick);

  ASSERT_EQ(sub.local_to_global.size(), pick.size());
  ASSERT_EQ(static_cast<std::size_t>(sub.graph.num_vertices()), pick.size());
  for (std::size_t i = 0; i < pick.size(); ++i) {
    EXPECT_EQ(sub.local_to_global[i], pick[i]);
  }
  // Every local edge maps to the host edge with the same endpoints/weight.
  ASSERT_EQ(static_cast<std::size_t>(sub.graph.num_edges()),
            sub.edge_to_global.size());
  for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
    const Edge& local = sub.graph.edge(e);
    const Edge& host = g.edge(sub.edge_to_global[static_cast<std::size_t>(e)]);
    const Vertex gu = sub.local_to_global[static_cast<std::size_t>(local.u)];
    const Vertex gv = sub.local_to_global[static_cast<std::size_t>(local.v)];
    EXPECT_TRUE((gu == host.u && gv == host.v) ||
                (gu == host.v && gv == host.u));
    EXPECT_DOUBLE_EQ(local.weight, host.weight);
  }
  // Completeness: every host edge with both endpoints picked appears once.
  std::set<Vertex> picked(pick.begin(), pick.end());
  EdgeId expected = 0;
  for (const Edge& e : g.edges()) {
    if (picked.count(e.u) != 0 && picked.count(e.v) != 0) ++expected;
  }
  EXPECT_EQ(sub.graph.num_edges(), expected);
}

TEST(Subgraph, PartitionAndCutCoverEveryEdgeExactlyOnce) {
  const Graph g = weighted_grid(7, 6, 2);
  std::vector<Vertex> assignment(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    assignment[static_cast<std::size_t>(v)] = v % 3;
  }
  const auto blocks = partition_subgraphs(g, assignment, 3);
  const Subgraph cut = cut_subgraph(g, assignment);

  std::vector<int> seen(static_cast<std::size_t>(g.num_edges()), 0);
  for (const auto& block : blocks) {
    for (const EdgeId e : block.edge_to_global) {
      ++seen[static_cast<std::size_t>(e)];
    }
  }
  for (const EdgeId e : cut.edge_to_global) {
    ++seen[static_cast<std::size_t>(e)];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
  // Boundary vertices are exactly the endpoints of cut edges.
  std::set<Vertex> boundary;
  for (const EdgeId e : cut.edge_to_global) {
    boundary.insert(g.edge(e).u);
    boundary.insert(g.edge(e).v);
  }
  EXPECT_EQ(boundary.size(), cut.local_to_global.size());
}

TEST(Subgraph, Validation) {
  const Graph g = weighted_grid(4, 4, 3);
  const std::vector<Vertex> dup = {0, 1, 1};
  EXPECT_THROW((void)induced_subgraph(g, dup), std::invalid_argument);
  const std::vector<Vertex> out_of_range = {0, 99};
  EXPECT_THROW((void)induced_subgraph(g, out_of_range),
               std::invalid_argument);
  std::vector<Vertex> short_assignment(3, 0);
  EXPECT_THROW((void)partition_subgraphs(g, short_assignment, 1),
               std::invalid_argument);
  std::vector<Vertex> bad_block(static_cast<std::size_t>(g.num_vertices()),
                                0);
  bad_block[0] = 5;
  EXPECT_THROW((void)partition_subgraphs(g, bad_block, 2),
               std::invalid_argument);
}

// ---- PartitionedSparsifier -------------------------------------------------

TEST(PartitionedSparsifier, K1MatchesWholeGraphBitForBit) {
  const Graph g = weighted_grid(14, 13, 4);
  const auto engine_opts = SparsifyOptions{}.with_sigma2(60.0).with_seed(7);
  Sparsifier whole(g, engine_opts);
  whole.run();

  PartitionedOptions opts;
  opts.partitions = 1;
  opts.block = engine_opts;
  PartitionedSparsifier driver(g, opts);
  const PartitionedResult& res = driver.run();

  EXPECT_EQ(res.blocks, 1);
  EXPECT_EQ(res.edges, whole.result().edges);
  EXPECT_EQ(res.cut_edges_total, 0);
  ASSERT_EQ(res.block_stats.size(), 1u);
  EXPECT_DOUBLE_EQ(res.block_stats[0].sigma2_estimate,
                   whole.result().sigma2_estimate);
}

TEST(PartitionedSparsifier, K1ViaUserAssignmentAlsoBitForBit) {
  const Graph g = weighted_grid(10, 10, 5);
  const auto engine_opts = SparsifyOptions{}.with_sigma2(80.0).with_seed(3);
  const SparsifyResult whole = sparsify(g, engine_opts);

  PartitionedOptions opts;
  opts.block = engine_opts;
  std::vector<Vertex> assignment(static_cast<std::size_t>(g.num_vertices()),
                                 0);
  PartitionedSparsifier driver(g, std::move(assignment), opts);
  EXPECT_EQ(driver.run().edges, whole.edges);
}

TEST(PartitionedSparsifier, DeterministicAcrossThreadCounts) {
  const Graph g = weighted_grid(16, 12, 6);
  for (const CutPolicy policy :
       {CutPolicy::kKeepAll, CutPolicy::kFilter, CutPolicy::kQuotient}) {
    std::vector<std::vector<EdgeId>> runs;
    for (const int threads : {1, 2, 4}) {
      PartitionedOptions opts;
      opts.partitions = 4;
      opts.cut_policy = policy;
      opts.threads = threads;
      opts.block.sigma2 = 50.0;
      runs.push_back(partitioned_sparsify(g, opts).edges);
    }
    EXPECT_EQ(runs[0], runs[1]) << "policy " << to_string(policy);
    EXPECT_EQ(runs[0], runs[2]) << "policy " << to_string(policy);
  }
}

TEST(PartitionedSparsifier, ConnectivityPreservedEveryPolicy) {
  Rng rng(8);
  const Graph g = planted_partition(240, 4, 0.12, 0.01, rng);
  for (const CutPolicy policy :
       {CutPolicy::kKeepAll, CutPolicy::kFilter, CutPolicy::kQuotient}) {
    PartitionedOptions opts;
    opts.partitions = 4;
    opts.cut_policy = policy;
    opts.block.sigma2 = 40.0;
    const PartitionedResult res = partitioned_sparsify(g, opts);
    const Graph p = res.extract(g);
    EXPECT_TRUE(is_connected(p)) << "policy " << to_string(policy);
    EXPECT_GE(res.num_edges(),
              static_cast<EdgeId>(g.num_vertices()) - 1);
  }
}

TEST(PartitionedSparsifier, CutPolicySemantics) {
  const Graph g = weighted_grid(12, 12, 9);
  PartitionedOptions keep;
  keep.partitions = 4;
  keep.cut_policy = CutPolicy::kKeepAll;
  keep.block.sigma2 = 60.0;
  const PartitionedResult res_keep = partitioned_sparsify(g, keep);
  EXPECT_GT(res_keep.cut_edges_total, 0);
  EXPECT_EQ(res_keep.cut_edges_kept, res_keep.cut_edges_total);

  PartitionedOptions filter = keep;
  filter.cut_policy = CutPolicy::kFilter;
  const PartitionedResult res_filter = partitioned_sparsify(g, filter);
  EXPECT_LE(res_filter.cut_edges_kept, res_filter.cut_edges_total);
  EXPECT_GT(res_filter.cut_edges_kept, 0);
  ASSERT_TRUE(res_filter.cut_stats.has_value());
  EXPECT_EQ(res_filter.cut_stats->block, kCutBlock);
  EXPECT_EQ(res_filter.cut_stats->edges, res_filter.cut_edges_total);

  PartitionedOptions quotient = keep;
  quotient.cut_policy = CutPolicy::kQuotient;
  const PartitionedResult res_q = partitioned_sparsify(g, quotient);
  // At most one representative per unordered block pair, plus any
  // connectivity repairs (bounded by blocks - 1 extra bridges).
  const Index k = res_q.blocks;
  EXPECT_LE(res_q.cut_edges_kept, k * (k - 1) / 2 + (k - 1));
  EXPECT_TRUE(is_connected(res_q.extract(g)));
  // Quotient keeps the fewest cut edges of the three policies.
  EXPECT_LE(res_q.cut_edges_kept, res_filter.cut_edges_kept);
}

TEST(PartitionedSparsifier, DisconnectedInputKeepsComponents) {
  const Graph g = two_component_graph();
  EXPECT_FALSE(is_connected(g));
  PartitionedOptions opts;
  opts.partitions = 4;
  opts.block.sigma2 = 50.0;
  const PartitionedResult res = partitioned_sparsify(g, opts);
  const Graph p = res.extract(g);
  EXPECT_EQ(connected_components(p).num_components,
            connected_components(g).num_components);
  // The whole-graph engine rejects this input outright.
  EXPECT_THROW((void)sparsify(g, opts.block), std::invalid_argument);
}

TEST(PartitionedSparsifier, SingletonBlocksWorkEmptyBlocksThrow) {
  const Graph g = weighted_grid(6, 6, 10);
  const auto n = static_cast<std::size_t>(g.num_vertices());

  // Blocks 1 and 2 are singletons; block 0 has everything else.
  std::vector<Vertex> singleton(n, 0);
  singleton[0] = 1;
  singleton[n - 1] = 2;
  PartitionedOptions opts;
  opts.block.sigma2 = 60.0;
  PartitionedSparsifier driver(g, singleton, opts);
  const PartitionedResult& res = driver.run();
  EXPECT_EQ(res.blocks, 3);
  EXPECT_TRUE(is_connected(res.extract(g)));
  EXPECT_EQ(res.block_stats[1].vertices, 1);
  EXPECT_EQ(res.block_stats[1].kept_edges, 0);

  // Block id 1 of [0, 3) has no vertices: rejected.
  std::vector<Vertex> with_hole(n, 0);
  with_hole[0] = 2;
  EXPECT_THROW(PartitionedSparsifier(g, with_hole, opts),
               std::invalid_argument);
  // Negative ids and size mismatches: rejected.
  std::vector<Vertex> negative(n, 0);
  negative[3] = -2;
  EXPECT_THROW(PartitionedSparsifier(g, negative, opts),
               std::invalid_argument);
  EXPECT_THROW(PartitionedSparsifier(g, std::vector<Vertex>(n - 1, 0), opts),
               std::invalid_argument);
}

TEST(PartitionedSparsifier, TreeInputKeptVerbatim) {
  Rng rng(13);
  const Graph g = path_graph(40, WeightModel::uniform(0.5, 2.0), &rng);
  std::vector<Vertex> assignment(40, 0);
  for (Vertex v = 20; v < 40; ++v) assignment[static_cast<std::size_t>(v)] = 1;
  PartitionedOptions opts;
  PartitionedSparsifier driver(g, assignment, opts);
  const PartitionedResult& res = driver.run();
  // Every component is a tree (kept verbatim) and the single cut edge is a
  // one-edge tree itself: the sparsifier is the whole path.
  EXPECT_EQ(res.num_edges(), g.num_edges());
  EXPECT_EQ(res.block_stats[0].tree_components, 1);
  EXPECT_EQ(res.block_stats[1].tree_components, 1);
  EXPECT_DOUBLE_EQ(res.block_stats[0].sigma2_estimate, 1.0);
}

TEST(PartitionedSparsifier, ObserverSeesStagesAndBlocksInOrder) {
  const Graph g = weighted_grid(12, 10, 14);

  struct Recorder final : ScaleObserver {
    std::vector<ScaleStage> stages;
    std::vector<Index> block_ids;
    void on_scale_stage(ScaleStage stage, double seconds) override {
      stages.push_back(stage);
      EXPECT_GE(seconds, 0.0);
    }
    void on_block(const BlockStats& stats) override {
      block_ids.push_back(stats.block);
      EXPECT_GE(stats.seconds, 0.0);
      EXPECT_GE(stats.components, 1);
    }
  } recorder;

  PartitionedOptions opts;
  opts.partitions = 3;
  opts.block.sigma2 = 60.0;
  opts.estimate_quality = true;
  PartitionedSparsifier driver(g, opts);
  driver.set_observer(&recorder);
  const PartitionedResult& res = driver.run();

  const std::vector<ScaleStage> expected = {
      ScaleStage::kPartition,    ScaleStage::kExtract,
      ScaleStage::kBlockSparsify, ScaleStage::kCutSparsify,
      ScaleStage::kStitch,       ScaleStage::kQuality};
  EXPECT_EQ(recorder.stages, expected);
  // Blocks in id order, then the cut pass.
  ASSERT_EQ(recorder.block_ids.size(),
            static_cast<std::size_t>(res.blocks) + 1);
  for (Index b = 0; b < res.blocks; ++b) {
    EXPECT_EQ(recorder.block_ids[static_cast<std::size_t>(b)], b);
  }
  EXPECT_EQ(recorder.block_ids.back(), kCutBlock);
  // Per-block engine stage timings are populated (satellite: partitioned
  // runs are observable).
  double engine_seconds = 0.0;
  for (const BlockStats& stats : res.block_stats) {
    for (const double s : stats.stage_seconds) engine_seconds += s;
  }
  EXPECT_GT(engine_seconds, 0.0);
}

TEST(PartitionedSparsifier, QualityAndRescale) {
  const Graph g = weighted_grid(13, 11, 15);
  PartitionedOptions opts;
  opts.partitions = 3;
  opts.block.sigma2 = 40.0;
  opts.rescale = true;  // implies the quality estimate
  const PartitionedResult res = partitioned_sparsify(g, opts);
  ASSERT_TRUE(res.quality.has_value());
  EXPECT_GT(res.quality->lambda_min, 0.0);
  EXPECT_GE(res.quality->lambda_max, res.quality->lambda_min);
  EXPECT_GE(res.quality->sigma2, 1.0 - 1e-9);
  ASSERT_TRUE(res.rescaled.has_value());
  EXPECT_GT(res.rescaled->scale, 0.0);
  EXPECT_EQ(res.rescaled->sparsifier.num_edges(), res.num_edges());
  EXPECT_NEAR(res.rescaled->sigma2_after,
              std::sqrt(res.rescaled->sigma2_before), 1e-9);
  // The stitched sparsifier satisfies the κ definition sanity bound.
  const SparsifierQuality direct =
      estimate_sparsifier_quality(g, res.extract(g));
  EXPECT_GT(direct.sigma2, 0.0);
}

TEST(PartitionedSparsifier, BlockStatsAccountForEveryKeptEdge) {
  const Graph g = weighted_grid(11, 9, 16);
  PartitionedOptions opts;
  opts.partitions = 4;
  opts.cut_policy = CutPolicy::kKeepAll;
  opts.block.sigma2 = 70.0;
  const PartitionedResult res = partitioned_sparsify(g, opts);
  EdgeId block_kept = 0;
  for (const BlockStats& stats : res.block_stats) {
    block_kept += stats.kept_edges;
  }
  EXPECT_EQ(block_kept + res.cut_edges_kept, res.num_edges());
  // No duplicate edge ids in the stitched list.
  std::vector<EdgeId> sorted = res.edges;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace ssp
