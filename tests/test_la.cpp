// Unit tests for src/la: vector kernels, CSR assembly and SpMV, dense
// matrices/Cholesky, dense Jacobi eigensolver, tridiagonal QL eigensolver.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/dense_eigen.hpp"
#include "la/dense_matrix.hpp"
#include "la/tridiagonal_eigen.hpp"
#include "la/vector_ops.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(VectorOps, DotAndNorms) {
  const Vec x = {1.0, 2.0, 3.0};
  const Vec y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 12.0);
  EXPECT_DOUBLE_EQ(norm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(norm_inf(y), 6.0);
  EXPECT_THROW((void)dot(x, Vec{1.0}), std::invalid_argument);
}

TEST(VectorOps, AxpyScaleFill) {
  Vec y = {1.0, 1.0};
  axpy(2.0, Vec{3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  fill(y, -1.0);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(VectorOps, ProjectOutMeanZeroesSum) {
  Vec x = {1.0, 2.0, 3.0, 10.0};
  project_out_mean(x);
  double s = 0.0;
  for (double v : x) s += v;
  EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(VectorOps, NormalizeAndErrors) {
  Vec x = {3.0, 4.0};
  normalize(x);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
  Vec z = {0.0, 0.0};
  EXPECT_THROW(normalize(z), std::invalid_argument);
}

TEST(VectorOps, AddSubtractRelativeError) {
  const Vec x = {1.0, 2.0};
  const Vec y = {0.5, 1.5};
  const Vec s = add(x, y);
  const Vec d = subtract(x, y);
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
  EXPECT_NEAR(relative_error(x, x), 0.0, 1e-15);
  EXPECT_GT(relative_error(x, y), 0.0);
}

CsrMatrix small_matrix() {
  // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]]
  const std::vector<Triplet> ts = {
      {0, 0, 2.0},  {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
      {1, 2, -1.0}, {2, 1, -1.0}, {2, 2, 2.0}};
  return CsrMatrix::from_triplets(3, 3, ts);
}

TEST(CsrMatrix, FromTripletsCoalescesDuplicates) {
  const std::vector<Triplet> ts = {
      {0, 1, 1.0}, {0, 1, 2.0}, {1, 0, -1.0}, {0, 0, 5.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, ts);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(CsrMatrix, RowsAreSortedByColumn) {
  const std::vector<Triplet> ts = {{0, 3, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(1, 4, ts);
  const auto cols = a.row_cols(0);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
}

TEST(CsrMatrix, TripletOutOfRangeThrows) {
  const std::vector<Triplet> ts = {{0, 5, 1.0}};
  EXPECT_THROW((void)CsrMatrix::from_triplets(2, 2, ts),
               std::invalid_argument);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  const CsrMatrix a = small_matrix();
  const Vec x = {1.0, 2.0, 3.0};
  const Vec y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(CsrMatrix, QuadraticAndBilinearForms) {
  const CsrMatrix a = small_matrix();
  const Vec x = {1.0, 0.0, -1.0};
  // x^T A x = 2 + 2 + 2*0... compute directly: Ax = [2, 0, -2]; x.Ax = 4.
  EXPECT_DOUBLE_EQ(a.quadratic(x), 4.0);
  const Vec y = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(a.bilinear(x, y), a.bilinear(y, x));  // symmetry
}

TEST(CsrMatrix, TransposeInvolution) {
  const std::vector<Triplet> ts = {{0, 1, 2.0}, {1, 2, 3.0}, {2, 0, 4.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(3, 3, ts);
  const CsrMatrix att = a.transpose().transpose();
  EXPECT_EQ(att.nnz(), a.nnz());
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(att.at(r, c), a.at(r, c));
    }
  }
}

TEST(CsrMatrix, IsSymmetricDetects) {
  EXPECT_TRUE(small_matrix().is_symmetric());
  const std::vector<Triplet> ts = {{0, 1, 2.0}};
  EXPECT_FALSE(CsrMatrix::from_triplets(2, 2, ts).is_symmetric());
}

TEST(CsrMatrix, IdentityAndDiagonal) {
  const CsrMatrix i5 = CsrMatrix::identity(5);
  EXPECT_EQ(i5.nnz(), 5);
  const Vec d = i5.diagonal();
  for (double v : d) EXPECT_DOUBLE_EQ(v, 1.0);
  const Vec x = {1, 2, 3, 4, 5};
  EXPECT_EQ(i5.multiply(x), x);
}

TEST(CsrMatrix, DropExplicitZeros) {
  const std::vector<Triplet> ts = {{0, 0, 1.0}, {0, 1, -1.0}, {0, 1, 1.0}};
  CsrMatrix a = CsrMatrix::from_triplets(1, 2, ts);
  EXPECT_EQ(a.nnz(), 2);  // coalesced (0,1) = 0 kept
  a.drop_explicit_zeros();
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
}

TEST(CsrMatrix, FrobeniusNorm) {
  const CsrMatrix a = small_matrix();
  EXPECT_NEAR(a.frobenius_norm(), std::sqrt(4.0 * 3 + 1.0 * 4), 1e-14);
}

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vec y = a.multiply(Vec{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const DenseMatrix at = a.transpose();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  const DenseMatrix aat = a.multiply(at);
  EXPECT_DOUBLE_EQ(aat(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(aat(0, 1), 32.0);
}

TEST(DenseMatrix, CholeskySolvesSpdSystem) {
  // SPD matrix A = M^T M + I for random M.
  Rng rng(5);
  const Index n = 8;
  DenseMatrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) m(i, j) = rng.normal();
  }
  DenseMatrix a = m.transpose().multiply(m);
  for (Index i = 0; i < n; ++i) a(i, i) += 1.0;
  const DenseMatrix a_copy = a;

  const Vec x_true = rng.normal_vector(n);
  const Vec b = a.multiply(x_true);
  a.cholesky_in_place();
  const Vec x = a.cholesky_solve(b);
  EXPECT_LT(relative_error(x, x_true), 1e-10);
  // Residual check against the untouched copy.
  const Vec r = subtract(a_copy.multiply(x), b);
  EXPECT_LT(norm2(r), 1e-9 * std::max(1.0, norm2(b)));
}

TEST(DenseMatrix, CholeskyRejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(a.cholesky_in_place(), std::runtime_error);
}

TEST(DenseMatrix, FromCsrRejectsHuge) {
  const CsrMatrix i = CsrMatrix::identity(10);
  EXPECT_THROW((void)DenseMatrix::from_csr(i, 5), std::invalid_argument);
  const DenseMatrix d = DenseMatrix::from_csr(i, 16);
  EXPECT_DOUBLE_EQ(d(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(d(3, 4), 0.0);
}

TEST(DenseEigen, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const DenseEigen e = dense_symmetric_eigen(a);
  ASSERT_EQ(e.eigenvalues.size(), 3u);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(DenseEigen, ReconstructsMatrix) {
  Rng rng(9);
  const Index n = 12;
  DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const DenseEigen e = dense_symmetric_eigen(a);
  // Check A v_j = w_j v_j for all j.
  for (Index j = 0; j < n; ++j) {
    Vec v(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = e.vectors(i, j);
    const Vec av = a.multiply(v);
    Vec wv = v;
    scale(wv, e.eigenvalues[static_cast<std::size_t>(j)]);
    EXPECT_LT(norm2(subtract(av, wv)), 1e-9 * (1.0 + std::abs(e.eigenvalues[static_cast<std::size_t>(j)])));
  }
}

TEST(DenseEigen, EigenvectorsOrthonormal) {
  Rng rng(21);
  const Index n = 10;
  DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const DenseEigen e = dense_symmetric_eigen(a);
  for (Index p = 0; p < n; ++p) {
    for (Index q = 0; q < n; ++q) {
      double s = 0.0;
      for (Index i = 0; i < n; ++i) s += e.vectors(i, p) * e.vectors(i, q);
      EXPECT_NEAR(s, p == q ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(DenseEigen, GeneralizedIdentityPencil) {
  // A u = λ I u reduces to the standard problem.
  DenseMatrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = 5.0;
  a(2, 2) = 7.0;
  const Vec vals =
      dense_generalized_eigenvalues(a, DenseMatrix::identity(3));
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_NEAR(vals[0], 2.0, 1e-10);
  EXPECT_NEAR(vals[2], 7.0, 1e-10);
}

TEST(DenseEigen, GeneralizedScaledPencil) {
  // A = 2B (B SPD) => all generalized eigenvalues are 2.
  Rng rng(33);
  const Index n = 6;
  DenseMatrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) m(i, j) = rng.normal();
  }
  DenseMatrix b = m.transpose().multiply(m);
  for (Index i = 0; i < n; ++i) b(i, i) += 1.0;
  DenseMatrix a = b;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) *= 2.0;
  }
  const Vec vals = dense_generalized_eigenvalues(a, b);
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(n));
  for (double v : vals) EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(TridiagonalEigen, KnownToeplitzSpectrum) {
  // Tridiag(-1, 2, -1) of size n has eigenvalues 2 - 2 cos(k π / (n+1)).
  const Index n = 20;
  const Vec diag(static_cast<std::size_t>(n), 2.0);
  const Vec off(static_cast<std::size_t>(n) - 1, -1.0);
  const Vec vals = tridiagonal_eigenvalues(diag, off);
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(n));
  for (Index k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(vals[static_cast<std::size_t>(k - 1)], expected, 1e-10);
  }
}

TEST(TridiagonalEigen, VectorsSatisfyDefinition) {
  Rng rng(55);
  const Index n = 15;
  Vec diag(static_cast<std::size_t>(n));
  Vec off(static_cast<std::size_t>(n) - 1);
  for (auto& d : diag) d = rng.uniform(0.5, 3.0);
  for (auto& e : off) e = rng.uniform(-1.0, 1.0);

  const TridiagonalEigen te = tridiagonal_eigen(diag, off);
  for (Index j = 0; j < n; ++j) {
    Vec v(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = te.vectors(i, j);
    // Multiply tridiagonal matrix by v.
    Vec av(static_cast<std::size_t>(n), 0.0);
    for (Index i = 0; i < n; ++i) {
      double s = diag[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
      if (i > 0) s += off[static_cast<std::size_t>(i) - 1] * v[static_cast<std::size_t>(i) - 1];
      if (i + 1 < n) s += off[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i) + 1];
      av[static_cast<std::size_t>(i)] = s;
    }
    Vec wv = v;
    scale(wv, te.eigenvalues[static_cast<std::size_t>(j)]);
    EXPECT_LT(norm2(subtract(av, wv)), 1e-9);
  }
}

TEST(TridiagonalEigen, MatchesDenseJacobi) {
  Rng rng(77);
  const Index n = 12;
  Vec diag(static_cast<std::size_t>(n));
  Vec off(static_cast<std::size_t>(n) - 1);
  for (auto& d : diag) d = rng.uniform(-2.0, 2.0);
  for (auto& e : off) e = rng.uniform(-2.0, 2.0);
  DenseMatrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    a(i, i) = diag[static_cast<std::size_t>(i)];
    if (i + 1 < n) {
      a(i, i + 1) = off[static_cast<std::size_t>(i)];
      a(i + 1, i) = off[static_cast<std::size_t>(i)];
    }
  }
  const Vec tv = tridiagonal_eigenvalues(diag, off);
  const DenseEigen de = dense_symmetric_eigen(a);
  ASSERT_EQ(tv.size(), de.eigenvalues.size());
  for (std::size_t i = 0; i < tv.size(); ++i) {
    EXPECT_NEAR(tv[i], de.eigenvalues[i], 1e-9);
  }
}

TEST(TridiagonalEigen, TrivialSizes) {
  EXPECT_TRUE(tridiagonal_eigenvalues({}, {}).empty());
  const Vec one = tridiagonal_eigenvalues({4.0}, {});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 4.0);
  EXPECT_THROW((void)tridiagonal_eigenvalues({1.0, 2.0}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssp
