// Unit tests for src/graph: Graph invariants, adjacency construction,
// Laplacian assembly, connectivity analysis, and matrix conversions.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  g.finalize();
  return g;
}

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  g.finalize();
  EXPECT_TRUE(g.finalized());
}

TEST(Graph, AddEdgeValidation) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);   // self-loop
  EXPECT_THROW(g.add_edge(0, 3, 1.0), std::invalid_argument);   // range
  EXPECT_THROW(g.add_edge(-1, 1, 1.0), std::invalid_argument);  // range
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);   // weight
  EXPECT_THROW(g.add_edge(0, 1, -2.0), std::invalid_argument);  // weight
  EXPECT_THROW(g.add_edge(0, 1, std::nan("")), std::invalid_argument);
  const EdgeId e = g.add_edge(0, 1, 1.5);
  EXPECT_EQ(e, 0);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, EdgeAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 2.0);
  EXPECT_EQ(g.edge(1).u, 1);
  EXPECT_EQ(g.edge(1).v, 2);
  EXPECT_THROW((void)g.edge(3), std::invalid_argument);
  EXPECT_THROW((void)g.edge(-1), std::invalid_argument);
}

TEST(Graph, NeighborsAndDegrees) {
  const Graph g = triangle();
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 4.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(2), 5.0);

  std::set<Vertex> nbrs;
  double wsum = 0.0;
  for (const auto item : g.neighbors(2)) {
    nbrs.insert(item.neighbor);
    wsum += item.weight;
    // edge id consistency
    const Edge& e = g.edge(item.edge);
    EXPECT_TRUE(e.u == 2 || e.v == 2);
  }
  EXPECT_EQ(nbrs, (std::set<Vertex>{0, 1}));
  EXPECT_DOUBLE_EQ(wsum, 5.0);
}

TEST(Graph, NeighborsRequireFinalize) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)g.neighbors(0), std::invalid_argument);
  g.finalize();
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  // Adding an edge invalidates; finalize() restores.
  g.add_edge(0, 1, 2.0);
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_EQ(g.neighbors(0).size(), 2u);
}

TEST(Graph, CoalesceParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.5);  // parallel, reversed orientation
  g.add_edge(1, 2, 1.0);
  g.coalesce_parallel_edges();
  g.finalize();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 3.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.5);
}

TEST(Graph, EdgeSubgraphPreservesEndpoints) {
  const Graph g = triangle();
  const std::vector<EdgeId> keep = {2, 0};
  const Graph s = g.edge_subgraph(keep);
  EXPECT_EQ(s.num_vertices(), 3);
  EXPECT_EQ(s.num_edges(), 2);
  EXPECT_DOUBLE_EQ(s.edge(0).weight, 3.0);  // original edge 2
  EXPECT_DOUBLE_EQ(s.edge(1).weight, 1.0);  // original edge 0
}

TEST(Laplacian, RowsSumToZero) {
  const Graph g = triangle();
  const CsrMatrix l = laplacian(g);
  EXPECT_EQ(l.rows(), 3);
  EXPECT_TRUE(l.is_symmetric(1e-15));
  const Vec ones(3, 1.0);
  const Vec ly = l.multiply(ones);
  for (double v : ly) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(Laplacian, MatchesDefinition) {
  const Graph g = triangle();
  const CsrMatrix l = laplacian(g);
  EXPECT_DOUBLE_EQ(l.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(l.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(l.at(0, 2), -3.0);
  EXPECT_DOUBLE_EQ(l.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(l.at(2, 2), 5.0);
}

TEST(Laplacian, QuadraticFormIsWeightedCutSum) {
  // x^T L x = sum_e w_e (x_u - x_v)^2.
  const Graph g = triangle();
  const CsrMatrix l = laplacian(g);
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x = rng.normal_vector(3);
    double expected = 0.0;
    for (const Edge& e : g.edges()) {
      const double d = x[static_cast<std::size_t>(e.u)] -
                       x[static_cast<std::size_t>(e.v)];
      expected += e.weight * d * d;
    }
    EXPECT_NEAR(l.quadratic(x), expected, 1e-12 * std::max(1.0, expected));
  }
}

TEST(Laplacian, PositiveSemiDefinite) {
  Rng rng(11);
  Graph g(20);
  for (int i = 0; i < 40; ++i) {
    const auto a = static_cast<Vertex>(rng.uniform_int(0, 19));
    const auto b = static_cast<Vertex>(rng.uniform_int(0, 19));
    if (a != b) g.add_edge(a, b, rng.uniform(0.1, 3.0));
  }
  g.finalize();
  const CsrMatrix l = laplacian(g);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = rng.normal_vector(20);
    EXPECT_GE(l.quadratic(x), -1e-10);
  }
}

TEST(Laplacian, AdjacencyMatrix) {
  const Graph g = triangle();
  const CsrMatrix w = adjacency_matrix(g);
  EXPECT_DOUBLE_EQ(w.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(w.at(0, 0), 0.0);
}

TEST(Laplacian, GraphFromLaplacianRoundTrip) {
  const Graph g = triangle();
  const CsrMatrix l = laplacian(g);
  const Graph h = graph_from_laplacian(l);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_DOUBLE_EQ(h.total_weight(), g.total_weight());
  // Laplacians equal
  const CsrMatrix l2 = laplacian(h);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 3; ++c) {
      EXPECT_NEAR(l2.at(r, c), l.at(r, c), 1e-14);
    }
  }
}

TEST(Laplacian, GraphFromMatrixUniformMagnitudeRule) {
  // Paper §4 rule applied uniformly over both triangles: pair {i,j} gets
  // weight max(|a_ij|, |a_ji|); negative entries are magnitude-converted.
  const std::vector<Triplet> ts = {
      {1, 0, -2.0},  // edge {1,0} w=2 (magnitude of a negative entry)
      {2, 0, 4.0},   // lower entry of pair {2,0}...
      {0, 2, 99.0},  // ...whose asymmetric upper mirror wins: w=99
      {1, 2, 5.0},   // upper-triangle-only pair: kept, w=5
      {1, 1, 7.0},   // diagonal: ignored
  };
  const CsrMatrix a = CsrMatrix::from_triplets(3, 3, ts);
  const Graph g = graph_from_matrix(a);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.0 + 99.0 + 5.0);
  const Graph gu = graph_from_matrix(a, /*unit_weights=*/true);
  EXPECT_DOUBLE_EQ(gu.total_weight(), 3.0);
}

TEST(Laplacian, GraphFromMatrixStoredZeroMirrorDoesNotDoubleCount) {
  // An explicitly stored 0.0 in the lower triangle still owns its pair:
  // the nonzero upper mirror must not add the edge a second time.
  const std::vector<Triplet> ts = {
      {1, 0, 0.0},   // stored zero, lower
      {0, 1, -2.0},  // nonzero upper mirror
  };
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, ts);
  const Graph g = graph_from_matrix(a);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.0);
}

TEST(Laplacian, GraphFromMatrixRejectsNonFiniteEntries) {
  const std::vector<Triplet> ts = {
      {1, 0, std::numeric_limits<double>::quiet_NaN()},
  };
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, ts);
  EXPECT_THROW((void)graph_from_matrix(a), std::invalid_argument);
  const std::vector<Triplet> ts2 = {
      {1, 0, std::numeric_limits<double>::infinity()},
  };
  const CsrMatrix b = CsrMatrix::from_triplets(2, 2, ts2);
  EXPECT_THROW((void)graph_from_matrix(b), std::invalid_argument);
}

TEST(Laplacian, WeightedDegreesMatchDiagonal) {
  const Graph g = triangle();
  const Vec d = weighted_degrees(g);
  const Vec diag = laplacian(g).diagonal();
  ASSERT_EQ(d.size(), diag.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(d[i], diag[i]);
  }
}

TEST(Connectivity, SingleComponent) {
  const Graph g = triangle();
  EXPECT_TRUE(is_connected(g));
  const ComponentLabels cl = connected_components(g);
  EXPECT_EQ(cl.num_components, 1);
}

TEST(Connectivity, MultipleComponents) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.finalize();  // vertex 4 isolated
  EXPECT_FALSE(is_connected(g));
  const ComponentLabels cl = connected_components(g);
  EXPECT_EQ(cl.num_components, 3);
  EXPECT_EQ(cl.label[0], cl.label[1]);
  EXPECT_EQ(cl.label[2], cl.label[3]);
  EXPECT_NE(cl.label[0], cl.label[2]);
  EXPECT_NE(cl.label[4], cl.label[0]);
}

TEST(Connectivity, LargestComponentExtraction) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);  // component {0,1,2}
  g.add_edge(3, 4, 1.0);  // component {3,4}; vertex 5 isolated
  g.finalize();
  std::vector<Vertex> back;
  const Graph big = largest_component(g, &back);
  EXPECT_EQ(big.num_vertices(), 3);
  EXPECT_EQ(big.num_edges(), 2);
  EXPECT_TRUE(is_connected(big));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], 0);
  EXPECT_EQ(back[2], 2);
}

TEST(Connectivity, ConnectComponentsRepairs) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.finalize();
  const Index added = connect_components(g, 0.5);
  EXPECT_EQ(added, 1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connect_components(g), 0);  // idempotent on connected input
}

TEST(Connectivity, EmptyGraphNotConnected) {
  Graph g(0);
  g.finalize();
  EXPECT_FALSE(is_connected(g));
}

}  // namespace
}  // namespace ssp
