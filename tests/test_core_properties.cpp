// Parameterized property suites for the sparsification pipeline — the
// invariants the paper's theory promises, swept across graph families,
// seeds, and σ² targets:
//
//  P1. Subgraph pencil bound: all generalized eigenvalues of (L_G, L_P)
//      are >= 1, and quadratic forms satisfy xᵀL_P x <= xᵀL_G x.
//  P2. Similarity targeting: the *true* condition number of the returned
//      sparsifier stays within a small factor of σ².
//  P3. Monotonicity: tightening σ² never removes edges.
//  P4. PCG payoff: smaller σ² gives no more PCG iterations (Table 2 trend).
//  P5. Determinism: equal seeds give identical sparsifiers.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/sparsifier.hpp"
#include "core/sparsifier_preconditioner.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "la/dense_eigen.hpp"
#include "la/vector_ops.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

Graph make_family_graph(int family, std::uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case 0:
      return grid_2d(14, 14, WeightModel::log_uniform(0.1, 10.0), &rng);
    case 1:
      return triangulated_grid(12, 12, WeightModel::uniform(0.5, 2.0), &rng);
    case 2:
      return erdos_renyi_connected(160, 640, rng,
                                   WeightModel::log_uniform(0.2, 5.0));
    case 3:
      return barabasi_albert(180, 3, rng);
    default: {
      const PointCloud pc = gaussian_mixture_points(150, 3, 4, 0.05, rng);
      return knn_graph(pc, 6);
    }
  }
}

class FamilySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FamilySweep, QuadraticFormsLowerBounded) {
  // P1: P ⊆ G (same weights) ⇒ xᵀL_P x ≤ xᵀL_G x for all x.
  const auto [family, seed] = GetParam();
  const Graph g = make_family_graph(family, seed);
  SparsifyOptions opts;
  opts.sigma2 = 60.0;
  opts.seed = seed;
  const SparsifyResult res = sparsify(g, opts);
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(res.extract(g));

  Rng rng(seed + 999);
  for (int trial = 0; trial < 20; ++trial) {
    Vec x = rng.normal_vector(g.num_vertices());
    project_out_mean(x);
    const double qg = lg.quadratic(x);
    const double qp = lp.quadratic(x);
    EXPECT_LE(qp, qg * (1.0 + 1e-10));
    EXPECT_GE(qp, qg / (opts.sigma2 * 4.0))
        << "quadratic form dropped below the σ² similarity bound";
  }
}

TEST_P(FamilySweep, SparsifierIsConnectedAndDeterministic) {
  // P5 + structural invariants.
  const auto [family, seed] = GetParam();
  const Graph g = make_family_graph(family, seed);
  SparsifyOptions opts;
  opts.sigma2 = 80.0;
  opts.seed = 1234;
  const SparsifyResult a = sparsify(g, opts);
  const SparsifyResult b = sparsify(g, opts);
  EXPECT_EQ(a.edges, b.edges);  // bit-deterministic
  EXPECT_TRUE(is_connected(a.extract(g)));
  EXPECT_GE(a.lambda_min, 1.0 - 1e-12);
  EXPECT_GE(a.lambda_max, a.lambda_min);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, FamilySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 7u)));

class SigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaSweep, TrueKappaTracksTarget) {
  // P2 on a small graph where the dense pencil oracle is affordable.
  const double sigma2 = GetParam();
  Rng rng(31);
  const Graph g = erdos_renyi_connected(56, 290, rng,
                                        WeightModel::uniform(0.4, 2.5));
  SparsifyOptions opts;
  opts.sigma2 = sigma2;
  opts.max_rounds = 40;
  const SparsifyResult res = sparsify(g, opts);
  const Vec pencil = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(laplacian(g)),
      DenseMatrix::from_csr(laplacian(res.extract(g))));
  const double kappa = pencil.back() / pencil.front();
  EXPECT_LE(kappa, 2.5 * sigma2)
      << "true κ drifted far above the requested σ²";
}

INSTANTIATE_TEST_SUITE_P(Targets, SigmaSweep,
                         ::testing::Values(10.0, 25.0, 50.0, 100.0, 200.0));

TEST(Monotonicity, TighterTargetKeepsMoreEdges) {
  // P3 across a ladder of σ² targets on one graph.
  Rng rng(41);
  const Graph g = grid_2d(22, 22, WeightModel::log_uniform(0.1, 10.0), &rng);
  EdgeId prev = g.num_edges() + 1;
  for (double sigma2 : {5.0, 20.0, 80.0, 320.0}) {
    SparsifyOptions opts;
    opts.sigma2 = sigma2;
    opts.seed = 5;
    const SparsifyResult res = sparsify(g, opts);
    EXPECT_LE(res.num_edges(), prev)
        << "looser σ² " << sigma2 << " kept more edges";
    prev = res.num_edges();
  }
}

TEST(PcgPayoff, FewerIterationsWithHigherSimilarity) {
  // P4 — the Table 2 trade-off: σ²=50 preconditioner converges in fewer
  // PCG iterations than σ²=200, which beats the bare tree.
  Rng rng(51);
  const Graph g = grid_2d(40, 40, WeightModel::log_uniform(0.1, 10.0), &rng);
  const CsrMatrix lg = laplacian(g);
  Vec b = rng.normal_vector(g.num_vertices());
  project_out_mean(b);
  const PcgOptions popts = {.max_iterations = 3000,
                            .rel_tolerance = 1e-3,
                            .project_constants = true};

  auto iterations_with = [&](double sigma2) {
    SparsifyOptions opts;
    opts.sigma2 = sigma2;
    opts.seed = 77;
    const SparsifyResult res = sparsify(g, opts);
    const Graph p = res.extract(g);
    const SparsifierPreconditioner precond(p);

    Vec x(static_cast<std::size_t>(g.num_vertices()), 0.0);
    const PcgResult r = pcg_solve(lg, b, x, precond, popts);
    EXPECT_TRUE(r.converged);
    return r.iterations;
  };

  const Index n50 = iterations_with(50.0);
  const Index n200 = iterations_with(200.0);
  EXPECT_LE(n50, n200);
  // Both are far below unpreconditioned CG.
  Vec x(static_cast<std::size_t>(g.num_vertices()), 0.0);
  const PcgResult plain = cg_solve(lg, b, x, popts);
  EXPECT_LT(n200, plain.iterations);
}

TEST(EdgeCases, TinyGraphs) {
  // Path on 2 vertices: tree == graph, σ² trivially 1.
  Graph g2(2);
  g2.add_edge(0, 1, 3.0);
  g2.finalize();
  const SparsifyResult r2 = sparsify(g2, {.sigma2 = 2.0});
  EXPECT_TRUE(r2.reached_target);
  EXPECT_EQ(r2.num_edges(), 1);

  // Triangle: one off-tree edge.
  Graph g3(3);
  g3.add_edge(0, 1, 1.0);
  g3.add_edge(1, 2, 1.0);
  g3.add_edge(0, 2, 1.0);
  g3.finalize();
  const SparsifyResult r3 = sparsify(g3, {.sigma2 = 1.5, .max_rounds = 8});
  EXPECT_GE(r3.num_edges(), 2);
  EXPECT_TRUE(is_connected(r3.extract(g3)));
}

TEST(EdgeCases, AlreadyTreeInput) {
  Rng rng(61);
  const Graph g = path_graph(64, WeightModel::log_uniform(0.1, 10.0), &rng);
  const SparsifyResult res = sparsify(g, {.sigma2 = 100.0});
  EXPECT_TRUE(res.reached_target);
  EXPECT_EQ(res.num_edges(), 63);
  EXPECT_NEAR(res.sigma2_estimate, 1.0, 1e-6);
}

TEST(EdgeCases, ParallelEdgesInInput) {
  // Parallel edges are legal; the sparsifier never selects an edge twice.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);  // parallel
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  g.finalize();
  const SparsifyResult res = sparsify(g, {.sigma2 = 1.2, .max_rounds = 10});
  std::set<EdgeId> uniq(res.edges.begin(), res.edges.end());
  EXPECT_EQ(uniq.size(), res.edges.size());
  EXPECT_TRUE(is_connected(res.extract(g)));
}

TEST(EdgeCases, ExtremeWeightSpread) {
  // 12 decades of weight spread must not break the pipeline numerically.
  Rng rng(71);
  const Graph g =
      grid_2d(12, 12, WeightModel::log_uniform(1e-6, 1e6), &rng);
  const SparsifyResult res = sparsify(g, {.sigma2 = 100.0, .max_rounds = 30});
  EXPECT_TRUE(std::isfinite(res.sigma2_estimate));
  EXPECT_GE(res.sigma2_estimate, 1.0 - 1e-9);
  EXPECT_TRUE(is_connected(res.extract(g)));
}

}  // namespace
}  // namespace ssp
