#!/usr/bin/env bash
# Out-of-core smoke test: generates a grid, converts it to the mmap'd
# `.sspb` binary with ssp_convert, and asserts the hierarchical layer's
# determinism contract end to end through the real tools —
#
#   * k = 1 (a budget the whole graph fits in) routes through the
#     whole-graph fast path and its output file is byte-identical to the
#     plain in-core engine run on the .mtx form of the same graph;
#   * a tight budget splits into several leaves, and the multi-leaf
#     output is byte-identical across SSP_THREADS 1 / 4 and across
#     producers (heap .mtx input vs mmap'd .sspb input);
#   * the mmap'd multi-leaf runs execute under a hard address-space cap
#     (ulimit -v), so a regression that materializes the whole graph
#     per leaf or leaks subgraphs across leaves trips the limit.
#
# Usage: outofcore_smoke.sh <ssp_gen> <ssp_convert> <ssp_sparsify> <work_dir>

set -u

GEN="$1"
CONVERT="$2"
SPARSIFY="$3"
WORK="$4"

NX=160
NY=160
SIGMA2=30
SEED=42
# Address-space cap for the capped runs. Generous against the ~5 MB
# graph, but hard: a whole-graph materialization bug at real out-of-core
# scale shows up as unbounded growth patterns even at smoke scale.
ULIMIT_KB=1048576

mkdir -p "$WORK"
rm -f "$WORK"/*.mtx "$WORK"/*.sspb "$WORK"/*.log

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

"$GEN" --family grid2d --nx $NX --ny $NY --weights log --seed 7 \
    --out "$WORK/g.mtx" > "$WORK/gen.log" 2>&1 \
    || fail "ssp_gen failed: $(cat "$WORK/gen.log")"
"$CONVERT" --in "$WORK/g.mtx" --out "$WORK/g.sspb" \
    > "$WORK/convert.log" 2>&1 \
    || fail "ssp_convert failed: $(cat "$WORK/convert.log")"

# Reference: the plain in-core engine on the .mtx form.
SSP_THREADS=1 "$SPARSIFY" --in "$WORK/g.mtx" --sigma2 $SIGMA2 --seed $SEED \
    --out "$WORK/ref.mtx" > "$WORK/ref.log" 2>&1 \
    || fail "in-core reference run failed: $(cat "$WORK/ref.log")"

# k = 1: a budget the whole graph fits in must take the whole-graph fast
# path and reproduce the reference bytes from the mmap'd input.
SSP_THREADS=1 "$SPARSIFY" --in "$WORK/g.sspb" --memory-budget-mb 512 \
    --sigma2 $SIGMA2 --seed $SEED --out "$WORK/whole.mtx" \
    > "$WORK/whole.log" 2>&1 \
    || fail "whole-graph out-of-core run failed: $(cat "$WORK/whole.log")"
grep -q "leaves: 1 .*whole-graph" "$WORK/whole.log" \
    || fail "512 MB budget did not take the whole-graph path: $(grep leaves: "$WORK/whole.log")"
cmp "$WORK/ref.mtx" "$WORK/whole.mtx" \
    || fail "k=1 out-of-core output differs from the in-core engine"

# Tight budget: several leaves, mmap'd input, under the address-space
# cap, at two thread counts.
for threads in 1 4; do
  ( ulimit -v $ULIMIT_KB
    SSP_THREADS=$threads "$SPARSIFY" --in "$WORK/g.sspb" \
        --memory-budget-mb 1 --sigma2 $SIGMA2 --seed $SEED \
        --out "$WORK/oc_t$threads.mtx" ) > "$WORK/oc_t$threads.log" 2>&1 \
      || fail "capped multi-leaf run (threads=$threads) failed: $(cat "$WORK/oc_t$threads.log")"
done
grep -q "leaves: 1" "$WORK/oc_t1.log" \
    && fail "1 MB budget did not split: $(grep leaves: "$WORK/oc_t1.log")"
cmp "$WORK/oc_t1.mtx" "$WORK/oc_t4.mtx" \
    || fail "multi-leaf output differs between SSP_THREADS=1 and 4"

# Same tight budget from the heap producer (.mtx input): identical bytes.
SSP_THREADS=1 "$SPARSIFY" --in "$WORK/g.mtx" --memory-budget-mb 1 \
    --sigma2 $SIGMA2 --seed $SEED --out "$WORK/oc_heap.mtx" \
    > "$WORK/oc_heap.log" 2>&1 \
    || fail "heap multi-leaf run failed: $(cat "$WORK/oc_heap.log")"
cmp "$WORK/oc_t1.mtx" "$WORK/oc_heap.mtx" \
    || fail "multi-leaf output differs between .sspb and .mtx producers"

echo "out-of-core smoke OK: ${NX}x${NY} grid, k=1 parity + $(grep -o 'leaves: [0-9]*' "$WORK/oc_t1.log") deterministic"
