// Unit tests for the core similarity-aware sparsification pipeline:
// Joule-heat embedding identities, λ estimators, θ_σ filtering, the
// densification loop, the public sparsify() API, the Spielman–Srivastava
// baseline, and the rescaling extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/densify.hpp"
#include "core/edge_filter.hpp"
#include "core/eigen_estimate.hpp"
#include "core/embedding.hpp"
#include "core/rescale.hpp"
#include "core/resistance_sampling.hpp"
#include "core/sparsifier.hpp"
#include "eigen/operators.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "la/dense_eigen.hpp"
#include "la/vector_ops.hpp"
#include "solver/pcg.hpp"
#include "tree/kruskal.hpp"
#include "tree/stretch.hpp"
#include "tree/tree_solver.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

std::vector<char> tree_membership(const Graph& g, const SpanningTree& t) {
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : t.tree_edge_ids()) in_p[static_cast<std::size_t>(e)] = 1;
  return in_p;
}

TEST(Embedding, HeatMatchesDirectQuadraticForm) {
  // Σ_offtree heat(p,q) must equal h_tᵀ (L_G − L_P) h_t summed over the
  // random vectors — Eq. (6) is an exact identity, not an approximation.
  Rng rng(1);
  const Graph g = erdos_renyi_connected(40, 150, rng,
                                        WeightModel::uniform(0.5, 2.0));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const auto in_p = tree_membership(g, tree);

  // Re-run the embedding manually with the same RNG stream to capture h_t.
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(tree.as_graph());
  const EmbeddingOptions opts = {.power_steps = 2, .num_vectors = 3};

  Rng rng_a(77);
  const OffTreeEmbedding emb = compute_offtree_heat(
      g, in_p, make_tree_solver_op(solver), opts, rng_a);

  // Replay the documented randomness contract: the call advances the
  // parent once, then probe j draws from split(j).
  Rng rng_b(77);
  (void)rng_b();
  const Rng probe_root = rng_b;
  double expected_total = 0.0;
  for (Index j = 0; j < 3; ++j) {
    Rng probe_rng = probe_root.split(static_cast<std::uint64_t>(j));
    Vec h = random_probe_vector(g.num_vertices(), probe_rng);
    for (int s = 0; s < 2; ++s) {
      Vec gh = lg.multiply(h);
      project_out_mean(gh);
      solver.solve(gh, h);
      project_out_mean(h);
    }
    expected_total += lg.quadratic(h) - lp.quadratic(h);
  }
  EXPECT_NEAR(emb.total_heat, expected_total,
              1e-9 * std::max(1.0, expected_total));
}

TEST(Embedding, HeatIsPositiveAndBoundedByMax) {
  Rng rng(2);
  const Graph g = grid_2d(10, 10, WeightModel::log_uniform(0.1, 10.0), &rng);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const OffTreeEmbedding emb = compute_offtree_heat(
      g, tree_membership(g, tree), make_tree_solver_op(solver), {}, rng);
  ASSERT_EQ(emb.offtree_edges.size(), emb.heat.size());
  EXPECT_EQ(static_cast<EdgeId>(emb.offtree_edges.size()),
            tree.num_offtree_edges());
  for (double h : emb.heat) {
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, emb.heat_max * (1 + 1e-12));
  }
  EXPECT_GT(emb.heat_max, 0.0);
  EXPECT_EQ(emb.num_vectors, 6);  // max(6, ceil(log2(100)/2))
}

TEST(Embedding, HighStretchEdgesRunHot) {
  // Rank correlation between stretch and heat: the top-stretch edge should
  // sit in the top quartile by heat (Eq. (10): stretch ≈ λ for
  // spectrally-unique edges).
  Rng rng(3);
  const Graph g = grid_2d(15, 15, WeightModel::log_uniform(0.01, 100.0), &rng);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const OffTreeEmbedding emb = compute_offtree_heat(
      g, tree_membership(g, tree), make_tree_solver_op(solver),
      {.power_steps = 2, .num_vectors = 12}, rng);
  const StretchReport st = compute_stretch(tree);

  // Identify edge with max stretch; find its heat rank.
  const auto max_it =
      std::max_element(st.offtree_stretch.begin(), st.offtree_stretch.end());
  const std::size_t max_idx =
      static_cast<std::size_t>(max_it - st.offtree_stretch.begin());
  ASSERT_EQ(st.offtree_edges[max_idx], emb.offtree_edges[max_idx]);
  const double heat_of_max_stretch = emb.heat[max_idx];
  Index hotter = 0;
  for (double h : emb.heat) {
    if (h > heat_of_max_stretch) ++hotter;
  }
  EXPECT_LT(hotter, static_cast<Index>(emb.heat.size()) / 4);
}

TEST(Embedding, InputValidation) {
  Rng rng(4);
  const Graph g = grid_2d(4, 4);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const LinOp op = make_tree_solver_op(solver);
  std::vector<char> wrong_size(3, 1);
  EXPECT_THROW((void)compute_offtree_heat(g, wrong_size, op, {}, rng),
               std::invalid_argument);
  const auto in_p = tree_membership(g, tree);
  EXPECT_THROW(
      (void)compute_offtree_heat(g, in_p, op, {.power_steps = 0}, rng),
      std::invalid_argument);
}

TEST(EigenEstimate, LambdaMinIsUpperBoundOnSmallGraphs) {
  Rng rng(5);
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Rng grng(seed);
    const Graph g = erdos_renyi_connected(
        24, 70, grng, WeightModel::log_uniform(0.2, 5.0));
    const SpanningTree tree = max_weight_spanning_tree(g);
    const auto in_p = tree_membership(g, tree);
    const double est = estimate_lambda_min_node_coloring(g, in_p);

    const Vec oracle = dense_generalized_eigenvalues(
        DenseMatrix::from_csr(laplacian(g)),
        DenseMatrix::from_csr(laplacian(tree.as_graph())));
    const double lmin = oracle.front();
    EXPECT_GE(est, lmin - 1e-9) << "node coloring must upper-bound λ_min";
    EXPECT_GE(est, 1.0 - 1e-12);  // subgraph pencil spectrum >= 1
    // Accuracy on these graph families: within ~35% (paper reports ~10% on
    // FE matrices; random graphs are harsher).
    EXPECT_LE(est, 1.35 * lmin + 1e-9);
  }
}

TEST(EigenEstimate, GraphOverloadAgrees) {
  Rng rng(6);
  const Graph g = grid_2d(8, 8);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const double a =
      estimate_lambda_min_node_coloring(g, tree_membership(g, tree));
  const double b = estimate_lambda_min_node_coloring(g, tree.as_graph());
  EXPECT_NEAR(a, b, 1e-14);
}

TEST(EigenEstimate, LambdaMaxCloseToLanczosReference) {
  Rng rng(7);
  const Graph g = triangulated_grid(10, 10,
                                    WeightModel::log_uniform(0.1, 10.0), &rng);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const CsrMatrix lg = laplacian(g);
  const double est = estimate_lambda_max_power(
      lg, make_tree_solver_op(solver), rng, 10);
  const Vec oracle = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(lg),
      DenseMatrix::from_csr(laplacian(tree.as_graph())));
  EXPECT_NEAR(est, oracle.back(), 0.06 * oracle.back());
}

TEST(Filter, ThresholdFormula) {
  // θ_σ = (σ² λ_min / λ_max)^{2t+1}.
  EXPECT_NEAR(heat_threshold(100.0, 1.0, 1000.0, 2),
              std::pow(0.1, 5.0), 1e-15);
  EXPECT_NEAR(heat_threshold(50.0, 2.0, 400.0, 1),
              std::pow(0.25, 3.0), 1e-15);
  // Clamped to 1 when the target already holds.
  EXPECT_DOUBLE_EQ(heat_threshold(100.0, 1.0, 50.0, 2), 1.0);
  EXPECT_THROW((void)heat_threshold(-1.0, 1.0, 10.0, 2),
               std::invalid_argument);
  EXPECT_THROW((void)heat_threshold(10.0, 0.0, 10.0, 2),
               std::invalid_argument);
}

TEST(Filter, SelectsAboveThresholdInHeatOrder) {
  Graph g(6);
  // Build a graph with 5 tree edges + 4 off-tree edges.
  for (Vertex v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, 1.0);
  const EdgeId o1 = g.add_edge(0, 2, 1.0);
  const EdgeId o2 = g.add_edge(0, 3, 1.0);
  const EdgeId o3 = g.add_edge(2, 4, 1.0);
  const EdgeId o4 = g.add_edge(1, 5, 1.0);
  g.finalize();

  OffTreeEmbedding emb;
  emb.offtree_edges = {o1, o2, o3, o4};
  emb.heat = {0.9, 1.0, 0.05, 0.5};
  emb.heat_max = 1.0;

  const auto picked =
      filter_offtree_edges(g, emb, 0.3, {.similarity = SimilarityPolicy::kNone});
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0], o2);  // heat 1.0
  EXPECT_EQ(picked[1], o1);  // heat 0.9
  EXPECT_EQ(picked[2], o4);  // heat 0.5
}

TEST(Filter, NodeDisjointSuppressesSharedEndpoints) {
  Graph g(6);
  for (Vertex v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, 1.0);
  const EdgeId o1 = g.add_edge(0, 2, 1.0);
  const EdgeId o2 = g.add_edge(0, 3, 1.0);  // shares vertex 0 with o1
  const EdgeId o3 = g.add_edge(4, 1, 1.0);
  g.finalize();

  OffTreeEmbedding emb;
  emb.offtree_edges = {o1, o2, o3};
  emb.heat = {1.0, 0.9, 0.8};
  emb.heat_max = 1.0;

  const auto picked = filter_offtree_edges(
      g, emb, 0.0, {.similarity = SimilarityPolicy::kNodeDisjoint});
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], o1);
  EXPECT_EQ(picked[1], o3);  // o2 rejected as similar

  // Bounded with cap 2 admits o2 as well.
  const auto picked2 = filter_offtree_edges(
      g, emb, 0.0,
      {.similarity = SimilarityPolicy::kBounded, .node_cap = 2});
  EXPECT_EQ(picked2.size(), 3u);
}

TEST(Filter, MaxEdgesCapRespected) {
  Graph g(8);
  for (Vertex v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1, 1.0);
  OffTreeEmbedding emb;
  for (Vertex v = 0; v + 2 < 8; ++v) {
    emb.offtree_edges.push_back(g.add_edge(v, v + 2, 1.0));
    emb.heat.push_back(1.0);
  }
  g.finalize();
  emb.heat_max = 1.0;
  const auto picked = filter_offtree_edges(
      g, emb, 0.0,
      {.similarity = SimilarityPolicy::kNone, .max_edges = 3});
  EXPECT_EQ(picked.size(), 3u);
}

TEST(Sparsify, ReachesTargetOnWeightedGrid) {
  Rng rng(8);
  const Graph g = grid_2d(24, 24, WeightModel::log_uniform(0.1, 10.0), &rng);
  SparsifyOptions opts;
  opts.sigma2 = 50.0;
  opts.seed = 9;
  const SparsifyResult res = sparsify(g, opts);
  EXPECT_TRUE(res.reached_target);
  EXPECT_LE(res.sigma2_estimate, 50.0 * 1.0001);
  EXPECT_GE(res.lambda_min, 1.0 - 1e-9);
  // Sparsifier contains the backbone and is connected.
  const Graph p = res.extract(g);
  EXPECT_TRUE(is_connected(p));
  EXPECT_GE(res.num_edges(), g.num_vertices() - 1);
  EXPECT_LT(res.num_edges(), g.num_edges());
  // Tree edges form a prefix.
  ASSERT_GE(res.edges.size(), res.tree_edges.size());
  for (std::size_t i = 0; i < res.tree_edges.size(); ++i) {
    EXPECT_EQ(res.edges[i], res.tree_edges[i]);
  }
  // No duplicate edges.
  std::set<EdgeId> uniq(res.edges.begin(), res.edges.end());
  EXPECT_EQ(uniq.size(), res.edges.size());
  EXPECT_FALSE(res.rounds.empty());
  EXPECT_GT(res.total_seconds, 0.0);
}

TEST(Sparsify, TrueConditionNumberWithinTargetOnSmallGraph) {
  // Verify against the dense pencil oracle, not just our own estimates.
  Rng rng(9);
  const Graph g = erdos_renyi_connected(48, 300, rng,
                                        WeightModel::uniform(0.5, 2.0));
  SparsifyOptions opts;
  opts.sigma2 = 30.0;
  opts.max_rounds = 40;
  const SparsifyResult res = sparsify(g, opts);
  const Vec oracle = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(laplacian(g)),
      DenseMatrix::from_csr(laplacian(res.extract(g))));
  const double kappa = oracle.back() / oracle.front();
  // Estimator noise allowance: true κ within 2× of the target.
  EXPECT_LE(kappa, 2.0 * opts.sigma2);
}

TEST(Sparsify, SigmaControlsDensity) {
  // Smaller σ² (higher similarity) must keep at least as many edges.
  Rng rng(10);
  const Graph g = grid_2d(20, 20, WeightModel::log_uniform(0.1, 10.0), &rng);
  SparsifyOptions tight;
  tight.sigma2 = 10.0;
  SparsifyOptions loose;
  loose.sigma2 = 300.0;
  const SparsifyResult rt = sparsify(g, tight);
  const SparsifyResult rl = sparsify(g, loose);
  EXPECT_GE(rt.num_edges(), rl.num_edges());
  EXPECT_LE(rl.sigma2_estimate, 300.0 * 1.0001);
}

TEST(Sparsify, WholeGraphWhenTargetUnreachable) {
  // σ² barely above 1 on a dense graph: P should approach G and the loop
  // must terminate.
  Rng rng(11);
  const Graph g = complete_graph(12);
  SparsifyOptions opts;
  opts.sigma2 = 1.01;
  opts.max_rounds = 60;
  const SparsifyResult res = sparsify(g, opts);
  // With nearly all edges present the estimate must be ~1.
  EXPECT_GE(res.num_edges(), g.num_edges() / 2);
}

TEST(Sparsify, BackboneKindsAllWork) {
  Rng rng(12);
  const Graph g = triangulated_grid(12, 12,
                                    WeightModel::log_uniform(0.1, 10.0), &rng);
  for (BackboneKind kind : {BackboneKind::kAkpw, BackboneKind::kMaxWeight,
                            BackboneKind::kShortestPath}) {
    SparsifyOptions opts;
    opts.backbone = kind;
    opts.sigma2 = 80.0;
    const SparsifyResult res = sparsify(g, opts);
    EXPECT_TRUE(res.reached_target) << "backbone " << static_cast<int>(kind);
    EXPECT_TRUE(is_connected(res.extract(g)));
  }
}

TEST(Sparsify, AmgInnerSolverAgreesWithTreePcg) {
  Rng rng(13);
  const Graph g = grid_2d(16, 16, WeightModel::uniform(0.5, 2.0), &rng);
  SparsifyOptions a;
  a.sigma2 = 40.0;
  a.inner_solver = InnerSolverKind::kTreePcg;
  SparsifyOptions b = a;
  b.inner_solver = InnerSolverKind::kAmg;
  const SparsifyResult ra = sparsify(g, a);
  const SparsifyResult rb = sparsify(g, b);
  EXPECT_TRUE(ra.reached_target);
  EXPECT_TRUE(rb.reached_target);
  // Both reach the target with comparable edge budgets (within 2x).
  const double ratio = static_cast<double>(ra.num_edges()) /
                       static_cast<double>(rb.num_edges());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Sparsify, InputValidation) {
  Rng rng(14);
  const Graph g = grid_2d(4, 4);
  SparsifyOptions opts;
  opts.sigma2 = 0.5;
  EXPECT_THROW((void)sparsify(g, opts), std::invalid_argument);
  opts = {};
  opts.power_steps = 0;
  EXPECT_THROW((void)sparsify(g, opts), std::invalid_argument);
  Graph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  disconnected.finalize();
  EXPECT_THROW((void)sparsify(disconnected, {}), std::invalid_argument);
  Graph unfinalized(3);
  unfinalized.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)sparsify(unfinalized, {}), std::invalid_argument);
}

TEST(Sparsify, RoundTelemetryIsConsistent) {
  Rng rng(15);
  const Graph g = grid_2d(20, 20, WeightModel::log_uniform(0.5, 2.0), &rng);
  SparsifyOptions opts;
  opts.sigma2 = 20.0;
  const SparsifyResult res = sparsify(g, opts);
  EdgeId added = 0;
  for (const DensifyRound& r : res.rounds) {
    EXPECT_GE(r.lambda_max, r.lambda_min);
    EXPECT_GE(r.lambda_min, 1.0 - 1e-12);
    EXPECT_NEAR(r.sigma2_estimate, r.lambda_max / r.lambda_min, 1e-9);
    EXPECT_GE(r.theta, 0.0);
    EXPECT_LE(r.theta, 1.0);
    added += r.edges_added;
  }
  EXPECT_EQ(added + static_cast<EdgeId>(res.tree_edges.size()),
            res.num_edges());
  // λ_max decreases monotonically (up to estimator noise) across rounds.
  for (std::size_t i = 0; i + 1 < res.rounds.size(); ++i) {
    EXPECT_LE(res.rounds[i + 1].lambda_max,
              res.rounds[i].lambda_max * 1.25);
  }
}

TEST(DensifyLoop, UsesSuppliedBackbone) {
  Rng rng(16);
  const Graph g = grid_2d(12, 12);
  const SpanningTree tree = max_weight_spanning_tree(g);
  SparsifyOptions opts;
  opts.sigma2 = 25.0;
  const SparsifyResult res = densify_loop(g, tree, opts);
  ASSERT_EQ(res.tree_edges.size(), static_cast<std::size_t>(143));
  for (std::size_t i = 0; i < res.tree_edges.size(); ++i) {
    EXPECT_EQ(res.tree_edges[i], tree.tree_edge_ids()[i]);
  }
  // Backbone from another graph is rejected.
  const Graph g2 = grid_2d(12, 12);
  const SpanningTree tree2 = max_weight_spanning_tree(g2);
  EXPECT_THROW((void)densify_loop(g, tree2, opts), std::invalid_argument);
}

TEST(SpielmanSrivastava, ProducesConnectedSpectralApproximation) {
  Rng rng(17);
  const Graph g = grid_2d(16, 16, WeightModel::uniform(0.5, 2.0), &rng);
  SsOptions opts;
  opts.samples = 4000;
  opts.seed = 3;
  const SsResult res = spielman_srivastava_sparsify(g, opts);
  EXPECT_TRUE(is_connected(res.sparsifier));
  EXPECT_EQ(res.samples_drawn, 4000);
  EXPECT_LE(res.distinct_edges, g.num_edges());
  EXPECT_GT(res.distinct_edges, 0);
  // Quadratic forms agree within a loose factor on random vectors.
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(res.sparsifier);
  for (int trial = 0; trial < 10; ++trial) {
    Vec x = rng.normal_vector(g.num_vertices());
    project_out_mean(x);
    const double qg = lg.quadratic(x);
    const double qp = lp.quadratic(x);
    EXPECT_GT(qp, 0.2 * qg);
    EXPECT_LT(qp, 5.0 * qg);
  }
}

TEST(SpielmanSrivastava, JlSketchModeWorks) {
  Rng rng(18);
  const Graph g = grid_2d(12, 12);
  SsOptions opts;
  opts.samples = 2500;
  opts.estimate = ResistanceEstimate::kJlSketch;
  opts.jl_projections = 16;
  const SsResult res = spielman_srivastava_sparsify(g, opts);
  EXPECT_TRUE(is_connected(res.sparsifier));
  EXPECT_GT(res.distinct_edges, g.num_vertices() - 2);
}

TEST(SpielmanSrivastava, NoControlOfSimilarity) {
  // The motivating gap: at equal edge budget, SS does not hit a requested
  // σ² — the similarity-aware result with the same edge count should have
  // bounded κ while SS's κ is whatever sampling produced. We only check
  // that the API exposes the knobs needed for the comparison bench.
  Rng rng(19);
  const Graph g = grid_2d(10, 10);
  const SparsifyResult sim = sparsify(g, {.sigma2 = 50.0});
  SsOptions opts;
  opts.samples = static_cast<EdgeId>(sim.num_edges()) * 4;
  const SsResult ss = spielman_srivastava_sparsify(g, opts);
  EXPECT_GT(ss.distinct_edges, 0);
}

TEST(Rescale, CentersPencilSpectrum) {
  Rng rng(20);
  const Graph g = grid_2d(14, 14, WeightModel::log_uniform(0.1, 10.0), &rng);
  const SparsifyResult res = sparsify(g, {.sigma2 = 100.0});
  const RescaleResult rr = rescale_sparsifier(g, res);
  EXPECT_NEAR(rr.scale,
              std::sqrt(res.lambda_min * res.lambda_max), 1e-12);
  EXPECT_NEAR(rr.sigma2_after, std::sqrt(rr.sigma2_before), 1e-9);
  EXPECT_EQ(rr.sparsifier.num_edges(), res.num_edges());
  // Weights scaled uniformly.
  const Edge& e0 = rr.sparsifier.edge(0);
  EXPECT_NEAR(e0.weight, g.edge(res.edges[0]).weight * rr.scale, 1e-12);
  // Empty result rejected.
  SparsifyResult empty;
  EXPECT_THROW((void)rescale_sparsifier(g, empty), std::invalid_argument);
}

}  // namespace
}  // namespace ssp
