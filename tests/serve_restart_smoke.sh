#!/usr/bin/env bash
# Warm-restart smoke test: runs a real ssp_serve daemon with a state
# directory, commits three batches against one session, SIGTERMs the
# daemon, restarts it on the same state directory, and asserts the warm
# restore contract end to end —
#
#   * the restarted daemon reopens the session from `<name>.sspc` +
#     `<name>.journal` (checkpoint fast-forward + journal-tail replay:
#     checkpoint_every=2 with 3 first-life commits forces both paths);
#   * two more commits land on the restored session, and its snapshot is
#     byte-identical to an offline `ssp_sparsify --update-file` replay of
#     the on-disk journal over the original graph — i.e. the
#     kill/restart cycle is invisible in the output bits;
#   * the journal the restored session reports contains the first life's
#     ops too (restore really replayed them, it did not start fresh).
#
# Runs at SSP_THREADS 1 and 4.
#
# Usage: serve_restart_smoke.sh <ssp_serve> <ssp_client> <ssp_sparsify> <fixtures_dir> <work_dir>

set -u

SERVE="$1"
CLIENT="$2"
SPARSIFY="$3"
FIXTURES="$4"
WORK="$5"

GRAPH="$FIXTURES/grid8.mtx"
OPS_PER_COMMIT=14  # rows 0-1, cols 0-6 → 14 reweights
LIFE1_COMMITS=3
LIFE2_COMMITS=2

mkdir -p "$WORK"

fail() {
  echo "FAIL: $*" >&2
  [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null
  exit 1
}

# `commit_script <first> <count>` — `count` batches reweighting the
# horizontal edges of grid rows 0-1, values keyed off the global commit
# index so first- and second-life batches are distinguishable.
commit_script() {
  local first="$1" count="$2" p row col u
  for ((p = first; p < first + count; p++)); do
    for ((row = 0; row < 2; row++)); do
      for ((col = 0; col < 7; col++)); do
        u=$((row * 8 + col))
        echo "reweight $u $((u + 1)) 1.${p}${col}5"
      done
    done
    echo "commit"
  done
  echo "quit"
}

start_server() { # start_server <threads> <sock> <state> <log>
  SSP_THREADS="$1" "$SERVE" --socket "$2" --sigma2 8 --seed 42 \
      --state-dir "$3" --checkpoint-every 2 > "$4" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$2" ] && return 0
    kill -0 "$SERVER_PID" 2>/dev/null \
        || fail "server died on startup: $(cat "$4")"
    sleep 0.1
  done
  fail "socket $2 never appeared"
}

stop_server() { # stop_server <sock>
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
  [ -S "$1" ] && fail "server left its socket behind"
  SERVER_PID=""
}

for threads in 1 4; do
  STATE="$WORK/state_t$threads"
  rm -rf "$STATE"
  rm -f "$WORK"/*_t$threads.*
  SOCK="/tmp/ssp_restart_$$_t$threads.sock"
  rm -f "$SOCK"

  # --- first life: open, three commits, SIGTERM ---
  start_server "$threads" "$SOCK" "$STATE" "$WORK/server1_t$threads.log"
  { echo "open g $GRAPH"; commit_script 0 $LIFE1_COMMITS; } \
      | "$CLIENT" --socket "$SOCK" > "$WORK/life1_t$threads.txt" \
      || fail "first life failed: $(cat "$WORK/life1_t$threads.txt")"
  stop_server "$SOCK"

  [ -f "$STATE/g.journal" ] || fail "no $STATE/g.journal after SIGTERM"
  [ -f "$STATE/g.sspc" ] || fail "no $STATE/g.sspc after SIGTERM"

  # --- second life: restore, two more commits, snapshot ---
  start_server "$threads" "$SOCK" "$STATE" "$WORK/server2_t$threads.log"
  { echo "attach g"; commit_script $LIFE1_COMMITS $LIFE2_COMMITS; } \
      | "$CLIENT" --socket "$SOCK" > "$WORK/life2_t$threads.txt" \
      || fail "restored session rejected commits: $(cat "$WORK/life2_t$threads.txt")"

  # The restored session's journal spans both lives.
  printf 'attach g\nquery journal\n' | "$CLIENT" --socket "$SOCK" \
      --payload-only > "$WORK/t$threads.journal" \
      || fail "journal extraction failed"
  expected=$(( (LIFE1_COMMITS + LIFE2_COMMITS) * (OPS_PER_COMMIT + 1) ))
  actual=$(wc -l < "$WORK/t$threads.journal")
  [ "$actual" -eq "$expected" ] \
      || fail "journal has $actual lines, expected $expected (restore lost ops?)"

  printf 'attach g\nsnapshot %s\n' "$WORK/server_t$threads.mtx" \
      | "$CLIENT" --socket "$SOCK" > /dev/null \
      || fail "snapshot failed"
  stop_server "$SOCK"

  # Offline replay of the on-disk journal (its `%` header is comment
  # grammar, so the state file doubles as an --update-file input) over
  # the original graph must reproduce the snapshot bytes.
  SSP_THREADS=$threads "$SPARSIFY" --in "$GRAPH" --sigma2 8 --seed 42 \
      --update-file "$STATE/g.journal" \
      --out "$WORK/offline_t$threads.mtx" \
      > "$WORK/offline_t$threads.log" 2>&1 \
      || fail "offline replay failed: $(cat "$WORK/offline_t$threads.log")"
  cmp "$WORK/server_t$threads.mtx" "$WORK/offline_t$threads.mtx" \
      || fail "restored snapshot differs from offline replay at SSP_THREADS=$threads"
done

echo "serve restart smoke OK: $LIFE1_COMMITS + $LIFE2_COMMITS commits across a SIGTERM, threads 1 and 4"
