// End-to-end integration tests crossing module boundaries: Matrix Market
// round trips feeding the sparsifier, sparsifier-preconditioned PCG
// solving the original system, partitioning on sparsified networks, and
// cross-solver consistency (tree / Cholesky / AMG / PCG agree on the same
// Laplacian systems).

#include <gtest/gtest.h>

#include <cstdio>
#include <cmath>

#include "core/eigen_estimate.hpp"
#include "core/resistance_sampling.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_preconditioner.hpp"
#include "eigen/fiedler.hpp"
#include "eigen/lanczos.hpp"
#include "eigen/operators.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/airfoil.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "graph/mtx_io.hpp"
#include "la/vector_ops.hpp"
#include "partition/spectral_bisection.hpp"
#include "solver/amg.hpp"
#include "solver/cholesky.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(Integration, MtxRoundTripThenSparsify) {
  // Generate -> save -> load -> sparsify -> verify similarity estimate.
  Rng rng(1);
  const Graph g = triangulated_grid(20, 20,
                                    WeightModel::log_uniform(0.2, 5.0), &rng);
  const std::string path = "ssp_integration_roundtrip.mtx";
  save_graph_mtx(path, g);
  const Graph loaded = load_graph_mtx(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());

  const SparsifyResult res = sparsify(loaded, {.sigma2 = 60.0});
  EXPECT_TRUE(res.reached_target);
  EXPECT_TRUE(is_connected(res.extract(loaded)));
}

TEST(Integration, SparsifierPreconditionedSolveMatchesDirect) {
  // Solve L_G x = b via sparsifier-PCG and via sparse Cholesky; compare.
  Rng rng(2);
  const Graph g = grid_2d(30, 30, WeightModel::log_uniform(0.1, 10.0), &rng);
  const CsrMatrix lg = laplacian(g);
  Vec b = rng.normal_vector(g.num_vertices());
  project_out_mean(b);

  const SparseCholesky chol = SparseCholesky::factor_laplacian(lg);
  const Vec x_direct = chol.solve(b);

  const SparsifyResult sp = sparsify(g, {.sigma2 = 50.0});
  const Graph p = sp.extract(g);
  const SparsifierPreconditioner precond(p);

  Vec x(b.size(), 0.0);
  const PcgResult r = pcg_solve(lg, b, x, precond,
                                {.max_iterations = 200,
                                 .rel_tolerance = 1e-10,
                                 .project_constants = true});
  EXPECT_TRUE(r.converged);
  EXPECT_LT(relative_error(x, x_direct), 1e-7);
  // σ²=50 preconditioner: iteration count scales with √σ²·log(1/tol); at
  // tol 1e-10 that is well under a hundred (plain CG needs several
  // hundred here).
  EXPECT_LT(r.iterations, 90);
}

TEST(Integration, PartitionQualitySurvivesSparsification) {
  // Bisect the ORIGINAL graph vs bisect the SPARSIFIER directly; the
  // sparsifier's Fiedler cut must be nearly as good on the original graph.
  Rng rng(3);
  const Graph g = planted_partition(400, 2, 0.08, 0.002, rng);
  const CsrMatrix lg = laplacian(g);
  const SparseCholesky chol_g = SparseCholesky::factor_laplacian(lg);
  const FiedlerResult f_orig =
      fiedler_vector(lg, make_cholesky_op(chol_g), rng);

  const SparsifyResult sp = sparsify(g, {.sigma2 = 30.0});
  const Graph p = sp.extract(g);
  const CsrMatrix lp = laplacian(p);
  const SparseCholesky chol_p = SparseCholesky::factor_laplacian(lp);
  const FiedlerResult f_spars =
      fiedler_vector(lp, make_cholesky_op(chol_p), rng);

  const auto cut_orig = evaluate_cut(g, sign_cut(f_orig.vector));
  const auto cut_spars = evaluate_cut(g, sign_cut(f_spars.vector));
  EXPECT_LE(cut_spars.conductance, 3.0 * cut_orig.conductance + 1e-9);
}

TEST(Integration, AllSolversAgreeOnLaplacianSystem) {
  Rng rng(4);
  const Graph g = torus_2d(14, 17, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  Vec b = rng.normal_vector(g.num_vertices());
  project_out_mean(b);

  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const Vec x_chol = chol.solve(b);

  const AmgHierarchy amg = AmgHierarchy::build(l);
  Vec x_amg(b.size(), 0.0);
  amg.solve(b, x_amg, 1e-11, 500);

  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner tp(tree);
  Vec x_pcg(b.size(), 0.0);
  (void)pcg_solve(l, b, x_pcg, tp,
                  {.max_iterations = 3000,
                   .rel_tolerance = 1e-12,
                   .project_constants = true});

  EXPECT_LT(relative_error(x_amg, x_chol), 1e-7);
  EXPECT_LT(relative_error(x_pcg, x_chol), 1e-7);
}

TEST(Integration, AirfoilPipelineEndToEnd) {
  // The Fig. 1 pipeline: airfoil mesh -> sparsify -> drawing eigenvectors
  // of both graphs correlate strongly.
  const Mesh2d mesh = joukowski_airfoil_mesh(10, 40);
  const Graph& g = mesh.graph;
  const SparsifyResult res = sparsify(g, {.sigma2 = 50.0, .max_rounds = 30});
  const Graph p = res.extract(g);

  Rng rng(5);
  auto eigvecs = [&rng](const Graph& graph) {
    const CsrMatrix l = laplacian(graph);
    const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
    return smallest_laplacian_eigenpairs(l.rows(), 2, make_cholesky_op(chol),
                                         60, rng);
  };
  const EigenPairs orig = eigvecs(g);
  const EigenPairs spars = eigvecs(p);
  ASSERT_GE(orig.vectors.size(), 2u);
  ASSERT_GE(spars.vectors.size(), 2u);
  // u2 correlation; u3 may rotate within near-degenerate subspaces, so we
  // only require the leading drawing axis to align.
  EXPECT_GT(std::abs(dot(orig.vectors[0], spars.vectors[0])), 0.9);
}

TEST(Integration, SimilarityTargetingIsControllableUnlikeSs) {
  // The paper's motivating comparison: the similarity-aware sparsifier
  // *hits a requested* σ² level; SS sampling offers no such knob — its
  // achieved κ at a given budget is whatever sampling produced. Verify the
  // controllability claim end to end and that both pipelines interoperate
  // with the estimators.
  Rng rng(6);
  const Graph g = grid_2d(24, 24, WeightModel::log_uniform(0.1, 10.0), &rng);
  const double target = 40.0;
  const SparsifyResult sim = sparsify(g, {.sigma2 = target});

  SsOptions ss_opts;
  ss_opts.samples = static_cast<EdgeId>(sim.num_edges());
  ss_opts.seed = 3;
  const SsResult ss = spielman_srivastava_sparsify(g, ss_opts);

  auto lambda_max_of = [&](const Graph& p) {
    const CsrMatrix lg = laplacian(g);
    const CsrMatrix lp = laplacian(p);
    const SpanningTree pt = max_weight_spanning_tree(p);
    const TreePreconditioner precond(pt);
    Rng krng(9);
    const LinOp solve_p = make_pcg_op(
        lp, precond,
        {.max_iterations = 500, .rel_tolerance = 1e-9,
         .project_constants = true});
    return estimate_lambda_max_power(lg, solve_p, krng, 25);
  };
  // Controllability: the similarity-aware result respects its target
  // (λ_min >= 1 for subgraphs, so λ_max bounds κ).
  const double k_sim = lambda_max_of(sim.extract(g));
  EXPECT_LE(k_sim, 1.6 * target);
  EXPECT_TRUE(sim.reached_target);
  // SS runs and produces a usable connected graph, but its κ is whatever
  // it is — only sanity-check it.
  const double k_ss = lambda_max_of(ss.sparsifier);
  EXPECT_GT(k_ss, 1.0);
  EXPECT_GT(ss.distinct_edges, 0);
}

}  // namespace
}  // namespace ssp
