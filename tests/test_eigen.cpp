// Tests for src/eigen against dense oracles: power iterations (plain and
// generalized), pencil Lanczos, inverse Lanczos eigenpairs, Fiedler vector.

#include <gtest/gtest.h>

#include <cmath>

#include "eigen/fiedler.hpp"
#include "eigen/lanczos.hpp"
#include "eigen/operators.hpp"
#include "eigen/power_iteration.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "la/dense_eigen.hpp"
#include "la/vector_ops.hpp"
#include "solver/cholesky.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_solver.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(Operators, CsrOpMatchesMultiply) {
  const Graph g = grid_2d(4, 4);
  const CsrMatrix l = laplacian(g);
  const LinOp op = make_csr_op(l);
  Rng rng(1);
  const Vec x = rng.normal_vector(l.rows());
  Vec y(static_cast<std::size_t>(l.rows()));
  op(x, y);
  EXPECT_LT(relative_error(y, l.multiply(x)), 1e-15);
}

TEST(Operators, SolverOpsAgree) {
  // Tree solver, Cholesky and PCG ops all apply L^+ — compare them.
  Rng rng(2);
  const Graph g = grid_2d(8, 8, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);

  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const LinOp chol_op = make_cholesky_op(chol);

  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner tp(tree);
  Index pcg_iters = 0;
  const LinOp pcg_op = make_pcg_op(
      l, tp,
      {.max_iterations = 500, .rel_tolerance = 1e-12, .project_constants = true},
      &pcg_iters);

  const AmgHierarchy amg = AmgHierarchy::build(l);
  const LinOp amg_op = make_amg_op(amg, 1e-12, 300);

  Vec x_chol(b.size()), x_pcg(b.size()), x_amg(b.size());
  chol_op(b, x_chol);
  pcg_op(b, x_pcg);
  amg_op(b, x_amg);
  EXPECT_LT(relative_error(x_pcg, x_chol), 1e-8);
  EXPECT_LT(relative_error(x_amg, x_chol), 1e-8);
  EXPECT_GT(pcg_iters, 0);
}

TEST(PowerIteration, FindsLargestEigenvalueOfLaplacian) {
  Rng rng(3);
  const Graph g = erdos_renyi_connected(40, 150, rng,
                                        WeightModel::uniform(0.5, 2.0));
  const CsrMatrix l = laplacian(g);
  const PowerResult res = power_iteration(
      make_csr_op(l), l.rows(), rng,
      {.max_iterations = 2000, .rel_tolerance = 1e-12});

  const DenseEigen oracle = dense_symmetric_eigen(DenseMatrix::from_csr(l));
  const double lmax = oracle.eigenvalues.back();
  EXPECT_NEAR(res.eigenvalue, lmax, 1e-4 * lmax);
}

TEST(PowerIteration, InputValidation) {
  Rng rng(4);
  const LinOp noop = [](std::span<const double>, std::span<double>) {};
  EXPECT_THROW((void)power_iteration(noop, 0, rng), std::invalid_argument);
  EXPECT_THROW(
      (void)power_iteration(noop, 5, rng, {.max_iterations = 0}),
      std::invalid_argument);
}

TEST(GeneralizedPower, IdenticalGraphsGiveLambdaOne) {
  Rng rng(5);
  const Graph g = grid_2d(6, 6);
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const PowerResult res = generalized_power_iteration(
      l, make_cholesky_op(chol), rng, {.max_iterations = 20});
  EXPECT_NEAR(res.eigenvalue, 1.0, 1e-6);
}

TEST(GeneralizedPower, MatchesDensePencilOracle) {
  Rng rng(6);
  const Graph g = erdos_renyi_connected(30, 100, rng,
                                        WeightModel::log_uniform(0.1, 10.0));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver ts(tree);
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(tree.as_graph());

  const PowerResult res = generalized_power_iteration(
      lg, make_tree_solver_op(ts), rng,
      {.max_iterations = 300, .rel_tolerance = 1e-12});

  const Vec oracle = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(lg), DenseMatrix::from_csr(lp));
  const double lmax = oracle.back();
  EXPECT_NEAR(res.eigenvalue, lmax, 2e-3 * lmax);
  // All pencil eigenvalues >= 1 for subgraph preconditioners.
  EXPECT_GE(oracle.front(), 1.0 - 1e-8);
}

TEST(GeneralizedPower, TenIterationsGetWithinSixPercent) {
  // The paper's Table 1 claim: <= 10 generalized power iterations estimate
  // λ_max within a few percent.
  Rng rng(7);
  const Graph g = triangulated_grid(12, 12,
                                    WeightModel::log_uniform(0.1, 10.0), &rng);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver ts(tree);
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(tree.as_graph());

  const PowerResult res = generalized_power_iteration(
      lg, make_tree_solver_op(ts), rng,
      {.max_iterations = 10, .rel_tolerance = 0.0});
  const Vec oracle = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(lg), DenseMatrix::from_csr(lp));
  const double rel_err = std::abs(res.eigenvalue - oracle.back()) /
                         oracle.back();
  EXPECT_LT(rel_err, 0.06);
  // Power iteration under-estimates: λ̃ <= λ (Rayleigh quotient bound).
  EXPECT_LE(res.eigenvalue, oracle.back() * (1.0 + 1e-9));
}

TEST(PencilLanczos, MatchesDenseOracleExtremes) {
  Rng rng(8);
  const Graph g = erdos_renyi_connected(40, 140, rng,
                                        WeightModel::uniform(0.2, 5.0));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver ts(tree);
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(tree.as_graph());

  const PencilEigenEstimate est = pencil_extreme_eigenvalues(
      lg, lp, make_tree_solver_op(ts), /*steps=*/39, rng);
  const Vec oracle = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(lg), DenseMatrix::from_csr(lp));
  EXPECT_NEAR(est.lambda_max, oracle.back(), 1e-5 * oracle.back());
  // λ_min from forward Lanczos is an upper bound >= 1.
  EXPECT_GE(est.lambda_min, 1.0 - 1e-6);
}

TEST(PencilLanczos, ReverseGivesAccurateLambdaMin) {
  Rng rng(9);
  const Graph g = triangulated_grid(7, 7,
                                    WeightModel::log_uniform(0.2, 5.0), &rng);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(tree.as_graph());
  const SparseCholesky chol_g = SparseCholesky::factor_laplacian(lg);

  const double lmin = pencil_lambda_min_reverse(
      lp, lg, make_cholesky_op(chol_g), /*steps=*/48, rng);
  const Vec oracle = dense_generalized_eigenvalues(
      DenseMatrix::from_csr(lg), DenseMatrix::from_csr(lp));
  EXPECT_NEAR(lmin, oracle.front(), 0.02 * oracle.front());
}

TEST(SmallestEigenpairs, MatchDenseOracle) {
  Rng rng(10);
  const Graph g = grid_2d(7, 8, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const EigenPairs pairs = smallest_laplacian_eigenpairs(
      l.rows(), /*k=*/5, make_cholesky_op(chol), /*max_steps=*/55, rng);

  const DenseEigen oracle = dense_symmetric_eigen(DenseMatrix::from_csr(l));
  ASSERT_GE(pairs.values.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    // oracle.eigenvalues[0] ~ 0 is the trivial eigenvalue.
    const double expected = oracle.eigenvalues[i + 1];
    EXPECT_NEAR(pairs.values[i], expected, 1e-6 * expected) << "pair " << i;
    // Eigenvector residual ||L v - λ v||.
    const Vec lv = l.multiply(pairs.vectors[i]);
    Vec scaled = pairs.vectors[i];
    scale(scaled, pairs.values[i]);
    EXPECT_LT(norm2(subtract(lv, scaled)), 1e-5 * (1.0 + expected));
  }
  // Values ascending.
  for (std::size_t i = 0; i + 1 < pairs.values.size(); ++i) {
    EXPECT_LE(pairs.values[i], pairs.values[i + 1] * (1 + 1e-12));
  }
}

TEST(SmallestEigenpairs, InputValidation) {
  Rng rng(11);
  const LinOp noop = [](std::span<const double>, std::span<double>) {};
  EXPECT_THROW((void)smallest_laplacian_eigenpairs(1, 1, noop, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)smallest_laplacian_eigenpairs(10, 0, noop, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)smallest_laplacian_eigenpairs(10, 10, noop, 10, rng),
               std::invalid_argument);
}

TEST(Fiedler, MatchesDenseSecondEigenvector) {
  Rng rng(12);
  const Graph g = grid_2d(9, 5);
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const FiedlerResult res = fiedler_vector(l, make_cholesky_op(chol), rng,
                                           {.max_iterations = 200,
                                            .rel_tolerance = 1e-14});
  const DenseEigen oracle = dense_symmetric_eigen(DenseMatrix::from_csr(l));
  const double lambda2 = oracle.eigenvalues[1];
  EXPECT_NEAR(res.eigenvalue, lambda2, 1e-6 * lambda2);

  // Vector matches up to sign: |<v, v_oracle>| ~ 1.
  Vec v_oracle(static_cast<std::size_t>(l.rows()));
  for (Index i = 0; i < l.rows(); ++i) {
    v_oracle[static_cast<std::size_t>(i)] = oracle.vectors(i, 1);
  }
  const double corr = std::abs(dot(res.vector, v_oracle));
  EXPECT_GT(corr, 0.999);
}

TEST(Fiedler, SeparatesDumbbell) {
  // The Fiedler vector of a dumbbell splits the two blobs by sign.
  Rng rng(13);
  const Graph g = dumbbell_graph(40, 1, 0.01, rng);
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const FiedlerResult res = fiedler_vector(l, make_cholesky_op(chol), rng);

  int mismatch_left = 0, mismatch_right = 0;
  const double s0 = res.vector[0] >= 0 ? 1.0 : -1.0;
  for (Vertex v = 0; v < 40; ++v) {
    if (res.vector[static_cast<std::size_t>(v)] * s0 < 0) ++mismatch_left;
  }
  for (Vertex v = 40; v < 80; ++v) {
    if (res.vector[static_cast<std::size_t>(v)] * s0 > 0) ++mismatch_right;
  }
  EXPECT_EQ(mismatch_left, 0);
  EXPECT_EQ(mismatch_right, 0);
}

TEST(Fiedler, WorksWithPcgSolver) {
  Rng rng(14);
  // Non-square grid: λ₂ is simple, so the Fiedler vector is unique up to
  // sign (square grids have a doubly degenerate λ₂).
  const Graph g = grid_2d(10, 7);
  const CsrMatrix l = laplacian(g);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner tp(tree);
  const LinOp solve = make_pcg_op(
      l, tp,
      {.max_iterations = 400, .rel_tolerance = 1e-10, .project_constants = true});
  const FiedlerResult res = fiedler_vector(l, solve, rng);

  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const FiedlerResult ref = fiedler_vector(l, make_cholesky_op(chol), rng);
  EXPECT_NEAR(res.eigenvalue, ref.eigenvalue, 1e-4 * ref.eigenvalue);
  EXPECT_GT(std::abs(dot(res.vector, ref.vector)), 0.999);
}

}  // namespace
}  // namespace ssp
