// Tests for src/la/kernels: every SIMD backend must reproduce the generic
// scalar reference BIT FOR BIT — across sizes (lane tails), special values
// (signed zeros, infinities, NaN propagation), aliased and unaligned
// inputs — and the panel (multi-RHS) kernels must make each column
// bit-identical to the corresponding single-RHS call, all the way up
// through TreeSolver::solve_multi and the spectral embedding.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/embedding.hpp"
#include "eigen/operators.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "la/csr_matrix.hpp"
#include "la/kernels/kernels.hpp"
#include "la/vector_ops.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_solver.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

using kernels::Backend;
using kernels::Ops;

/// Sizes exercising every lane-tail case (n mod 4 ∈ {0,1,2,3}), the empty
/// vector, and a bulk size.
const std::vector<std::size_t> kSizes = {0,  1,  2,  3,  4,  5,  6,
                                         7,  8,  9,  10, 11, 12, 13,
                                         14, 15, 16, 17, 31, 33, 1000};

std::vector<Backend> simd_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (kernels::backend_supported(b)) out.push_back(b);
  }
  return out;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bits_eq(double a, double b, const char* what, std::size_t i) {
  // NaN-ness must agree, but NaN sign/payload is outside the determinism
  // contract: scalar `s += p` propagates whichever NaN operand the
  // compiler register-allocated as the addsd destination, so `+nan + -nan`
  // is ±nan depending on codegen (see kernel_config.hpp).
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(bits(a), bits(b)) << what << " diverges at element " << i
                              << ": " << a << " vs " << b;
}

void expect_vec_bits_eq(const Vec& a, const Vec& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bits_eq(a[i], b[i], what, i);
  }
}

Vec random_vec(std::size_t n, Rng& rng) {
  Vec v(n);
  for (double& x : v) x = rng.normal() * 3.0;
  return v;
}

TEST(Kernels, GenericAlwaysAvailable) {
  EXPECT_TRUE(kernels::backend_compiled(Backend::kGeneric));
  EXPECT_TRUE(kernels::backend_supported(Backend::kGeneric));
  ASSERT_NE(kernels::ops_for(Backend::kGeneric), nullptr);
  EXPECT_STREQ(kernels::backend_name(Backend::kGeneric), "generic");
}

TEST(Kernels, SetBackendRejectsUnavailable) {
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (!kernels::backend_supported(b)) {
      EXPECT_THROW(kernels::set_backend(b), std::runtime_error);
      EXPECT_EQ(kernels::ops_for(b), nullptr);
    }
  }
}

TEST(Kernels, ScopedBackendRestores) {
  const Backend before = kernels::active_backend();
  {
    kernels::ScopedBackend scope(Backend::kGeneric);
    EXPECT_EQ(kernels::active_backend(), Backend::kGeneric);
  }
  EXPECT_EQ(kernels::active_backend(), before);
}

TEST(Kernels, ReductionParityAcrossSizes) {
  const Ops& g = *kernels::ops_for(Backend::kGeneric);
  Rng rng(11);
  for (Backend b : simd_backends()) {
    const Ops& s = *kernels::ops_for(b);
    for (std::size_t n : kSizes) {
      const Vec x = random_vec(n, rng);
      const Vec y = random_vec(n, rng);
      expect_bits_eq(g.dot(x.data(), y.data(), n), s.dot(x.data(), y.data(), n),
                     "dot", n);
      expect_bits_eq(g.sum(x.data(), n), s.sum(x.data(), n), "sum", n);
      expect_bits_eq(g.nrm2sq(x.data(), n), s.nrm2sq(x.data(), n), "nrm2sq",
                     n);
      expect_bits_eq(g.sq_dist(x.data(), y.data(), n),
                     s.sq_dist(x.data(), y.data(), n), "sq_dist", n);
      expect_bits_eq(g.norm_inf(x.data(), n), s.norm_inf(x.data(), n),
                     "norm_inf", n);
    }
  }
}

TEST(Kernels, ElementwiseParityAcrossSizes) {
  const Ops& g = *kernels::ops_for(Backend::kGeneric);
  Rng rng(12);
  for (Backend b : simd_backends()) {
    const Ops& s = *kernels::ops_for(b);
    for (std::size_t n : kSizes) {
      const Vec x = random_vec(n, rng);
      const Vec y0 = random_vec(n, rng);
      const double a = rng.normal();

      Vec yg = y0, ys = y0;
      g.axpy(a, x.data(), yg.data(), n);
      s.axpy(a, x.data(), ys.data(), n);
      expect_vec_bits_eq(yg, ys, "axpy");

      yg = y0;
      ys = y0;
      g.xpay(x.data(), a, yg.data(), n);
      s.xpay(x.data(), a, ys.data(), n);
      expect_vec_bits_eq(yg, ys, "xpay");

      yg = y0;
      ys = y0;
      g.scal(a, yg.data(), n);
      s.scal(a, ys.data(), n);
      expect_vec_bits_eq(yg, ys, "scal");

      yg = y0;
      ys = y0;
      g.shift(a, yg.data(), n);
      s.shift(a, ys.data(), n);
      expect_vec_bits_eq(yg, ys, "shift");

      Vec zg(n), zs(n);
      g.sub(x.data(), y0.data(), zg.data(), n);
      s.sub(x.data(), y0.data(), zs.data(), n);
      expect_vec_bits_eq(zg, zs, "sub");
      g.add(x.data(), y0.data(), zg.data(), n);
      s.add(x.data(), y0.data(), zs.data(), n);
      expect_vec_bits_eq(zg, zs, "add");
    }
  }
}

TEST(Kernels, FusedMatchesComposedOnEveryBackend) {
  Rng rng(13);
  std::vector<Backend> backends = {Backend::kGeneric};
  for (Backend b : simd_backends()) backends.push_back(b);
  for (Backend be : backends) {
    const Ops& k = *kernels::ops_for(be);
    for (std::size_t n : kSizes) {
      const Vec x = random_vec(n, rng);
      const Vec y0 = random_vec(n, rng);
      const double a = rng.normal();

      // axpy_sum == axpy; sum — both the returned sum and the updated y.
      Vec y_fused = y0, y_composed = y0;
      const double s_fused = k.axpy_sum(a, x.data(), y_fused.data(), n);
      k.axpy(a, x.data(), y_composed.data(), n);
      const double s_composed = k.sum(y_composed.data(), n);
      expect_bits_eq(s_fused, s_composed, "axpy_sum value", n);
      expect_vec_bits_eq(y_fused, y_composed, "axpy_sum y");

      // shift_nrm2sq == shift; nrm2sq.
      Vec x_fused = x, x_composed = x;
      const double q_fused = k.shift_nrm2sq(a, x_fused.data(), n);
      k.shift(a, x_composed.data(), n);
      const double q_composed = k.nrm2sq(x_composed.data(), n);
      expect_bits_eq(q_fused, q_composed, "shift_nrm2sq value", n);
      expect_vec_bits_eq(x_fused, x_composed, "shift_nrm2sq x");

      // nrm2sq == dot(x, x); sq_dist == sub; nrm2sq.
      expect_bits_eq(k.nrm2sq(x.data(), n), k.dot(x.data(), x.data(), n),
                     "nrm2sq vs dot", n);
      Vec d(n);
      k.sub(x.data(), y0.data(), d.data(), n);
      expect_bits_eq(k.sq_dist(x.data(), y0.data(), n),
                     k.nrm2sq(d.data(), n), "sq_dist vs sub+nrm2sq", n);
    }
  }
}

TEST(Kernels, SpecialValueParity) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Mixed specials at every lane position plus a tail.
  const Vec x = {0.0, -0.0, inf, -inf, nan, 1.0, -2.5, 1e-308,
                 -1e308, 0.0, nan, inf, 3.0};
  const Vec y = {-0.0, 0.0, 1.0, inf, 2.0, nan, -0.0, 1e308,
                 1e-308, -inf, 0.5, -1.0, -3.0};
  const std::size_t n = x.size();
  const Ops& g = *kernels::ops_for(Backend::kGeneric);

  // The reference semantics themselves: NaN propagates through sums;
  // norm_inf follows MAXPD semantics (not sticky — a later element in the
  // same lane replaces a NaN accumulator), so only NaN-ness up to the
  // lane order is defined, and parity below is the real check.
  EXPECT_TRUE(std::isnan(g.sum(x.data(), n)));

  for (Backend b : simd_backends()) {
    const Ops& s = *kernels::ops_for(b);
    for (std::size_t m = 0; m <= n; ++m) {
      expect_bits_eq(g.dot(x.data(), y.data(), m),
                     s.dot(x.data(), y.data(), m), "special dot", m);
      expect_bits_eq(g.sum(x.data(), m), s.sum(x.data(), m), "special sum",
                     m);
      expect_bits_eq(g.norm_inf(x.data(), m), s.norm_inf(x.data(), m),
                     "special norm_inf", m);
      expect_bits_eq(g.sq_dist(x.data(), y.data(), m),
                     s.sq_dist(x.data(), y.data(), m), "special sq_dist", m);
      Vec zg(n), zs(n);
      g.add(x.data(), y.data(), zg.data(), m);
      s.add(x.data(), y.data(), zs.data(), m);
      for (std::size_t i = 0; i < m; ++i) {
        expect_bits_eq(zg[i], zs[i], "special add", i);
      }
    }
  }
}

TEST(Kernels, AliasedArgumentsParity) {
  Rng rng(14);
  const std::size_t n = 33;
  const Vec x0 = random_vec(n, rng);
  const Vec y0 = random_vec(n, rng);
  const Ops& g = *kernels::ops_for(Backend::kGeneric);
  for (Backend b : simd_backends()) {
    const Ops& s = *kernels::ops_for(b);
    // sub(x, y, x): output aliases the first input.
    Vec ag = x0, as = x0;
    g.sub(ag.data(), y0.data(), ag.data(), n);
    s.sub(as.data(), y0.data(), as.data(), n);
    expect_vec_bits_eq(ag, as, "aliased sub");
    // add(x, y, y): output aliases the second input.
    ag = y0;
    as = y0;
    g.add(x0.data(), ag.data(), ag.data(), n);
    s.add(x0.data(), as.data(), as.data(), n);
    expect_vec_bits_eq(ag, as, "aliased add");
    // axpy(a, x, x): y aliases x.
    ag = x0;
    as = x0;
    g.axpy(1.5, ag.data(), ag.data(), n);
    s.axpy(1.5, as.data(), as.data(), n);
    expect_vec_bits_eq(ag, as, "aliased axpy");
    // dot(x, x) — trivially must agree with nrm2sq path.
    expect_bits_eq(g.dot(x0.data(), x0.data(), n),
                   s.dot(x0.data(), x0.data(), n), "aliased dot", n);
  }
}

TEST(Kernels, UnalignedPointersParity) {
  // SIMD backends use unaligned loads; feeding pointers offset by one
  // double from the allocation start must neither crash nor change bits.
  Rng rng(15);
  const std::size_t n = 257;
  const Vec xbuf = random_vec(n + 1, rng);
  const Vec ybuf = random_vec(n + 1, rng);
  const double* x = xbuf.data() + 1;
  const double* y = ybuf.data() + 1;
  const Ops& g = *kernels::ops_for(Backend::kGeneric);
  for (Backend b : simd_backends()) {
    const Ops& s = *kernels::ops_for(b);
    expect_bits_eq(g.dot(x, y, n), s.dot(x, y, n), "unaligned dot", n);
    expect_bits_eq(g.nrm2sq(x, n), s.nrm2sq(x, n), "unaligned nrm2sq", n);
    Vec outg(n + 1), outs(n + 1);
    g.sub(x, y, outg.data() + 1, n);
    s.sub(x, y, outs.data() + 1, n);
    for (std::size_t i = 1; i <= n; ++i) {
      expect_bits_eq(outg[i], outs[i], "unaligned sub", i);
    }
  }
}

TEST(Kernels, SpmvPanelColumnsMatchSingleRhs) {
  Rng rng(16);
  const Graph g =
      erdos_renyi_connected(60, 200, rng, WeightModel::uniform(0.5, 2.0));
  const CsrMatrix lg = laplacian(g);
  const Index n = lg.rows();
  for (const Index r : {Index{1}, Index{3}, Index{4}, Index{7}, Index{8}}) {
    Vec panel_x(static_cast<std::size_t>(n * r));
    for (double& v : panel_x) v = rng.normal();
    Vec panel_y(static_cast<std::size_t>(n * r));
    lg.multiply_panel(panel_x, panel_y, r);

    Vec col_x(static_cast<std::size_t>(n));
    Vec col_y(static_cast<std::size_t>(n));
    for (Index j = 0; j < r; ++j) {
      for (Index v = 0; v < n; ++v) {
        col_x[static_cast<std::size_t>(v)] =
            panel_x[static_cast<std::size_t>(v * r + j)];
      }
      lg.multiply(col_x, col_y);
      for (Index v = 0; v < n; ++v) {
        expect_bits_eq(panel_y[static_cast<std::size_t>(v * r + j)],
                       col_y[static_cast<std::size_t>(v)], "spmv_panel col",
                       static_cast<std::size_t>(v));
      }
    }

    // And the panel itself is backend-invariant.
    for (Backend b : simd_backends()) {
      kernels::ScopedBackend scope(b);
      Vec panel_y2(static_cast<std::size_t>(n * r));
      lg.multiply_panel(panel_x, panel_y2, r);
      expect_vec_bits_eq(panel_y, panel_y2, "spmv_panel backend");
    }
  }
}

TEST(Kernels, ColSumsAndRowBiasParity) {
  Rng rng(17);
  const Ops& g = *kernels::ops_for(Backend::kGeneric);
  for (const Index n : {Index{1}, Index{5}, Index{64}, Index{101}}) {
    for (const Index r : {Index{1}, Index{3}, Index{4}, Index{6}, Index{9}}) {
      Vec p(static_cast<std::size_t>(n * r));
      for (double& v : p) v = rng.normal();

      // col_sums[j] must equal kernels::sum of the gathered column.
      Vec sums(static_cast<std::size_t>(r));
      g.col_sums(p.data(), n, r, sums.data());
      Vec col(static_cast<std::size_t>(n));
      for (Index j = 0; j < r; ++j) {
        for (Index v = 0; v < n; ++v) {
          col[static_cast<std::size_t>(v)] =
              p[static_cast<std::size_t>(v * r + j)];
        }
        expect_bits_eq(sums[static_cast<std::size_t>(j)],
                       g.sum(col.data(), static_cast<std::size_t>(n)),
                       "col_sums vs sum", static_cast<std::size_t>(j));
      }

      Vec bias(static_cast<std::size_t>(r));
      for (double& v : bias) v = rng.normal();
      for (Backend b : simd_backends()) {
        const Ops& s = *kernels::ops_for(b);
        Vec sums2(static_cast<std::size_t>(r));
        s.col_sums(p.data(), n, r, sums2.data());
        expect_vec_bits_eq(sums, sums2, "col_sums backend");

        Vec pg = p, ps = p;
        g.add_row_bias(pg.data(), n, r, bias.data());
        s.add_row_bias(ps.data(), n, r, bias.data());
        expect_vec_bits_eq(pg, ps, "add_row_bias backend");

        Vec fg(p.size()), fs(p.size());
        g.sub_row_bias(p.data(), bias.data(), fg.data(), n, r);
        s.sub_row_bias(p.data(), bias.data(), fs.data(), n, r);
        expect_vec_bits_eq(fg, fs, "sub_row_bias backend");
      }
    }
  }
}

TEST(Kernels, TreeSolveMultiColumnsMatchSingleSolve) {
  Rng rng(18);
  const Graph g =
      erdos_renyi_connected(80, 300, rng, WeightModel::uniform(0.5, 2.0));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const auto n = static_cast<Index>(g.num_vertices());

  for (const Index r : {Index{1}, Index{3}, Index{4}, Index{8}}) {
    Vec panel_b(static_cast<std::size_t>(n * r));
    for (double& v : panel_b) v = rng.normal();
    Vec panel_x(static_cast<std::size_t>(n * r));
    solver.solve_multi(panel_b, panel_x, r);

    Vec col_b(static_cast<std::size_t>(n));
    Vec col_x(static_cast<std::size_t>(n));
    for (Index j = 0; j < r; ++j) {
      for (Index v = 0; v < n; ++v) {
        col_b[static_cast<std::size_t>(v)] =
            panel_b[static_cast<std::size_t>(v * r + j)];
      }
      solver.solve(col_b, col_x);
      for (Index v = 0; v < n; ++v) {
        expect_bits_eq(panel_x[static_cast<std::size_t>(v * r + j)],
                       col_x[static_cast<std::size_t>(v)], "solve_multi col",
                       static_cast<std::size_t>(v));
      }
    }

    for (Backend b : simd_backends()) {
      kernels::ScopedBackend scope(b);
      Vec panel_x2(static_cast<std::size_t>(n * r));
      solver.solve_multi(panel_b, panel_x2, r);
      expect_vec_bits_eq(panel_x, panel_x2, "solve_multi backend");
    }
  }
}

std::vector<char> tree_membership(const Graph& g, const SpanningTree& t) {
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (t.contains(e)) in_p[static_cast<std::size_t>(e)] = 1;
  }
  return in_p;
}

TEST(Kernels, EmbeddingPanelSolverMatchesColumnwise) {
  // The blocked tree solve and the column-wise fallback must produce the
  // same heats bit for bit (solve_multi columns == solve).
  Rng rng(19);
  const Graph g =
      erdos_renyi_connected(70, 260, rng, WeightModel::uniform(0.5, 2.0));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const auto in_p = tree_membership(g, tree);
  const CsrMatrix lg = laplacian(g);
  const EmbeddingOptions opts = {.power_steps = 2, .num_vectors = 7};

  EmbeddingWorkspace ws;
  OffTreeEmbedding with_panel;
  Rng rng_a(123);
  compute_offtree_heat(g, lg, in_p, make_tree_solver_op(solver), opts, rng_a,
                       ws, with_panel, make_tree_solver_panel_op(solver));

  OffTreeEmbedding columnwise;
  Rng rng_b(123);
  compute_offtree_heat(g, lg, in_p, make_tree_solver_op(solver), opts, rng_b,
                       ws, columnwise);

  ASSERT_EQ(with_panel.heat.size(), columnwise.heat.size());
  for (std::size_t k = 0; k < with_panel.heat.size(); ++k) {
    expect_bits_eq(with_panel.heat[k], columnwise.heat[k], "embedding heat",
                   k);
  }
}

TEST(Kernels, EmbeddingBackendAndThreadParity) {
  Rng rng(20);
  const Graph g =
      erdos_renyi_connected(90, 350, rng, WeightModel::uniform(0.5, 2.0));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const auto in_p = tree_membership(g, tree);
  const CsrMatrix lg = laplacian(g);

  const auto run = [&](int threads) {
    EmbeddingWorkspace ws;
    OffTreeEmbedding emb;
    Rng r(99);
    compute_offtree_heat(
        g, lg, in_p, make_tree_solver_op(solver),
        {.power_steps = 2, .num_vectors = 6, .threads = threads}, r, ws, emb,
        make_tree_solver_panel_op(solver));
    return emb.heat;
  };

  kernels::ScopedBackend ref_scope(Backend::kGeneric);
  const Vec reference = run(1);
  expect_vec_bits_eq(reference, run(4), "embedding threads=4 (generic)");
  for (Backend b : simd_backends()) {
    kernels::ScopedBackend scope(b);
    expect_vec_bits_eq(reference, run(1), "embedding backend t1");
    expect_vec_bits_eq(reference, run(4), "embedding backend t4");
  }
}

}  // namespace
}  // namespace ssp
