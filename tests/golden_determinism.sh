#!/usr/bin/env bash
# Golden determinism check: runs ssp_sparsify over the checked-in fixture
# graphs through all three execution paths — the whole-graph engine, the
# partition-parallel scale layer, and the dynamic update layer — and
# compares the output edge lists byte for byte (sha256) against
# tests/fixtures/golden_hashes.txt. Every path is pinned to fixed options
# and seeds, so any hash drift is a cross-PR determinism regression.
#
# Usage: golden_determinism.sh <ssp_sparsify> <fixtures_dir> <work_dir>
#
# Regenerate hashes after an *intentional* output change:
#   tests/golden_determinism.sh build/ssp_sparsify tests/fixtures /tmp/gw --update

set -u

SPARSIFY="$1"
FIXTURES="$2"
WORK="$3"
UPDATE="${4:-}"

mkdir -p "$WORK"
rm -f "$WORK"/*.mtx

run() { # run <output-name> <args...>
  local out="$WORK/$1"
  shift
  if ! "$SPARSIFY" "$@" --out "$out" > "$WORK/log.txt" 2>&1; then
    echo "FAIL: ssp_sparsify $* exited non-zero" >&2
    cat "$WORK/log.txt" >&2
    exit 1
  fi
}

# grid8: 8x8 weighted lattice. community16: four planted blocks.
for fixture in grid8 community16; do
  in="$FIXTURES/$fixture.mtx"
  run "${fixture}_plain.mtx"     --in "$in" --sigma2 8 --seed 42
  run "${fixture}_part4.mtx"     --in "$in" --sigma2 8 --seed 42 --partitions 4
  run "${fixture}_dynamic.mtx"   --in "$in" --sigma2 8 --seed 42 \
      --update-file "$FIXTURES/$fixture.journal"
done

cd "$WORK" || exit 1
sha256sum ./*.mtx > observed_hashes.txt

if [ "$UPDATE" = "--update" ]; then
  cp observed_hashes.txt "$FIXTURES/golden_hashes.txt"
  echo "updated $FIXTURES/golden_hashes.txt"
  exit 0
fi

if ! diff -u "$FIXTURES/golden_hashes.txt" observed_hashes.txt; then
  echo "FAIL: sparsifier output drifted from the golden fixtures." >&2
  echo "If the change is intentional, regenerate with --update." >&2
  exit 1
fi
echo "golden determinism OK ($(wc -l < observed_hashes.txt) outputs)"
