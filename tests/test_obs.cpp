// Tests for the observability layer (src/obs/): metrics-registry
// exactness under concurrent writers, histogram percentiles against a
// sorted reference, Chrome-trace JSON well-formedness and span nesting,
// the serve `stats`/`metrics` protocol verbs, and — the layer's hard
// contract — bit-identical sparsifier output with observability on vs
// off at thread counts 1 and 4. Library-only, so the suite also runs in
// the TSan CI job where the tools are not built.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sparsifier.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/connection.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

/// Scoped enable/disable so a failing test cannot leak a live registry
/// into later suites (the determinism tests rely on the default-off
/// state).
struct MetricsOn {
  MetricsOn() {
    obs::reset_metrics_for_tests();
    obs::set_metrics_enabled(true);
  }
  ~MetricsOn() {
    obs::set_metrics_enabled(false);
    obs::reset_metrics_for_tests();
  }
};

/// Finds one metric by name in a visit() snapshot; count() == 0 when the
/// metric was never registered.
struct Found {
  bool present = false;
  obs::MetricKind kind = obs::MetricKind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Found find_metric(const std::string& name) {
  Found f;
  obs::for_each_metric([&](const obs::MetricEntry& e) {
    if (name != e.name) return;
    f.present = true;
    f.kind = e.kind;
    f.counter = e.counter;
    f.gauge = e.gauge;
    if (e.kind == obs::MetricKind::kHistogram) {
      f.hist_count = e.hist.count;
      f.hist_sum = e.hist.sum;
      f.p50 = e.hist.percentile(0.50);
      f.p95 = e.hist.percentile(0.95);
      f.p99 = e.hist.percentile(0.99);
    }
  });
  return f;
}

// ---- Metrics registry -------------------------------------------------------

TEST(Metrics, DisabledRecordingIsInvisible) {
  obs::reset_metrics_for_tests();
  ASSERT_FALSE(obs::metrics_enabled());  // default-off contract
  obs::counter_add("off.counter", 5);
  obs::gauge_set("off.gauge", 7);
  obs::histogram_observe("off.hist", 3.0);
  obs::counter_add_named(std::string("off.named"), 1);
  EXPECT_EQ(obs::metric_count(), 0);
  EXPECT_FALSE(find_metric("off.counter").present);
}

TEST(Metrics, CountersExactUnderConcurrentWriters) {
  const MetricsOn on;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      char mine[32];
      std::snprintf(mine, sizeof(mine), "test.thread.%d", t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::counter_add("test.shared", 1);
        obs::counter_add_named(mine, 2);
        obs::gauge_set("test.gauge", static_cast<std::int64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();

  const Found shared = find_metric("test.shared");
  ASSERT_TRUE(shared.present);
  EXPECT_EQ(shared.kind, obs::MetricKind::kCounter);
  EXPECT_EQ(shared.counter, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const Found mine = find_metric("test.thread." + std::to_string(t));
    ASSERT_TRUE(mine.present) << t;
    EXPECT_EQ(mine.counter, 2 * kPerThread) << t;
  }
  const Found gauge = find_metric("test.gauge");
  ASSERT_TRUE(gauge.present);
  EXPECT_EQ(gauge.kind, obs::MetricKind::kGauge);
  // Last-writer-wins: some thread's final store.
  EXPECT_EQ(gauge.gauge, static_cast<std::int64_t>(kPerThread - 1));
  EXPECT_EQ(obs::metric_count(), kThreads + 2);
}

TEST(Metrics, GaugeAddAccumulates) {
  const MetricsOn on;
  obs::gauge_add("test.depth", 3);
  obs::gauge_add("test.depth", 4);
  obs::gauge_add("test.depth", -5);
  EXPECT_EQ(find_metric("test.depth").gauge, 2);
}

TEST(Metrics, HistogramPercentilesTrackSortedReference) {
  const MetricsOn on;
  // A skewed latency-like sample: exact values known, so the power-of-two
  // bucket estimate must land in [ref, 2*max(ref, 2)] — the documented
  // within-2x guarantee (bucket 0 spans [0,2)).
  std::vector<double> samples;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(rng.uniform(0.0, 10.0));  // 1 .. ~22026
    samples.push_back(v);
    obs::histogram_observe("test.lat", v);
  }
  std::sort(samples.begin(), samples.end());
  const Found h = find_metric("test.lat");
  ASSERT_TRUE(h.present);
  ASSERT_EQ(h.kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(h.hist_count, samples.size());
  double sum = 0.0;
  for (const double s : samples) sum += s;
  EXPECT_NEAR(h.hist_sum, sum, sum * 1e-9);

  const double qs[] = {0.50, 0.95, 0.99};
  const double got[] = {h.p50, h.p95, h.p99};
  for (int i = 0; i < 3; ++i) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(qs[i] * static_cast<double>(samples.size())));
    const double ref = samples[std::min(rank == 0 ? 0 : rank - 1,
                                        samples.size() - 1)];
    EXPECT_GE(got[i], ref) << "q=" << qs[i];
    EXPECT_LE(got[i], 2.0 * std::max(ref, 2.0)) << "q=" << qs[i];
  }
}

TEST(Metrics, HistogramEdgeValues) {
  const MetricsOn on;
  obs::histogram_observe("test.edge", 0.0);
  obs::histogram_observe("test.edge", 1.0);
  obs::histogram_observe("test.edge", 1.99);  // all land in bucket [0,2)
  const Found h = find_metric("test.edge");
  EXPECT_EQ(h.hist_count, 3u);
  EXPECT_EQ(h.p50, 2.0);  // bucket 0's upper bound
  EXPECT_EQ(h.p99, 2.0);
}

TEST(Metrics, ResetDropsRegistrations) {
  const MetricsOn on;
  obs::counter_add("test.reset", 1);
  EXPECT_EQ(obs::metric_count(), 1);
  obs::reset_metrics_for_tests();
  EXPECT_EQ(obs::metric_count(), 0);
  obs::set_metrics_enabled(true);  // reset clears values, not the switch
  obs::counter_add("test.reset", 4);
  EXPECT_EQ(find_metric("test.reset").counter, 4u);
}

// ---- Trace export -----------------------------------------------------------

/// Minimal string-aware JSON structural validator: balanced {}/[],
/// properly terminated strings, no trailing garbage. (CI additionally
/// runs `python3 -m json.tool` on a real --trace file; this keeps the
/// check in-process for TSan runs.)
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  std::size_t i = 0;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      const char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
      if (stack.empty()) break;  // root value closed
    }
  }
  if (in_string || !stack.empty()) return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] != ' ' && s[i] != '\n' && s[i] != '\t' && s[i] != '\r') {
      return false;
    }
  }
  return true;
}

/// Extracts the first complete event with the given name; returns false
/// when absent.
bool find_event(const std::string& json, const std::string& name, double* ts,
                double* dur) {
  const std::string needle = "\"name\":\"" + name + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t ts_at = json.find("\"ts\":", at);
  if (ts_at == std::string::npos) return false;
  return std::sscanf(json.c_str() + ts_at, "\"ts\":%lf,\"dur\":%lf", ts,
                     dur) == 2;
}

TEST(Trace, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(obs::trace_enabled());
  const std::uint64_t before = obs::trace_span_count();
  {
    const obs::Span s("never.recorded");
    obs::emit_span("never.recorded", 0.001);
  }
  EXPECT_EQ(obs::trace_span_count(), before);
}

TEST(Trace, ChromeJsonIsWellFormedAndSpansNest) {
  obs::start_trace();
  {
    const obs::Span outer("test.outer", "block", 7);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      const obs::Span inner("test.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  obs::emit_span("test.retro \"quoted\"", 0.001);  // name needing escapes
  obs::stop_trace();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"block\":7}"), std::string::npos);
  EXPECT_NE(json.find("test.retro \\\"quoted\\\""), std::string::npos);

  double outer_ts = 0.0, outer_dur = 0.0, inner_ts = 0.0, inner_dur = 0.0;
  ASSERT_TRUE(find_event(json, "test.outer", &outer_ts, &outer_dur));
  ASSERT_TRUE(find_event(json, "test.inner", &inner_ts, &inner_dur));
  // Proper nesting: the inner complete event sits inside the outer one
  // (timestamps are µs; allow the 0.001 µs formatting quantum).
  constexpr double kEps = 0.01;
  EXPECT_GE(inner_ts + kEps, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + kEps);
  EXPECT_GE(inner_dur, 1000.0);               // slept >= 2 ms
  EXPECT_GE(outer_dur, inner_dur + 2000.0);   // plus the outer sleeps
}

TEST(Trace, StartResetsAndCountsSpans) {
  obs::start_trace();
  obs::emit_span("test.one", 0.0001);
  obs::emit_span("test.two", 0.0001);
  EXPECT_EQ(obs::trace_span_count(), 2u);
  obs::start_trace();  // re-arm: rings reset
  EXPECT_EQ(obs::trace_span_count(), 0u);
  obs::stop_trace();
}

// ---- Determinism: observability must not change output ----------------------

Graph parity_graph() {
  Rng rng(11);
  return grid_2d(48, 48, WeightModel::log_uniform(0.1, 10.0), &rng);
}

TEST(Determinism, ObsOnVsOffBitIdenticalAtThreads1And4) {
  const Graph g = parity_graph();
  for (const int threads : {1, 4}) {
    set_default_threads(threads);
    const auto opts =
        SparsifyOptions{}.with_sigma2(100.0).with_seed(5).with_threads(
            threads);

    obs::set_metrics_enabled(false);
    const SparsifyResult off = sparsify(g, opts);

    obs::reset_metrics_for_tests();
    obs::set_metrics_enabled(true);
    obs::start_trace();
    const SparsifyResult on = sparsify(g, opts);
    obs::stop_trace();
    obs::set_metrics_enabled(false);

    // Bit-for-bit: edge ids, order, and every float byte.
    EXPECT_EQ(off.edges, on.edges) << "threads=" << threads;
    EXPECT_EQ(off.tree_edges, on.tree_edges) << "threads=" << threads;
    EXPECT_EQ(off.lambda_min, on.lambda_min) << "threads=" << threads;
    EXPECT_EQ(off.lambda_max, on.lambda_max) << "threads=" << threads;
    EXPECT_EQ(off.sigma2_estimate, on.sigma2_estimate)
        << "threads=" << threads;
    EXPECT_EQ(off.reached_target, on.reached_target) << "threads=" << threads;

    // And the instrumented run actually recorded something.
    EXPECT_GT(obs::trace_span_count(), 0u) << "threads=" << threads;
    EXPECT_GT(find_metric("engine.rounds").counter, 0u)
        << "threads=" << threads;
  }
  set_default_threads(0);
  obs::reset_metrics_for_tests();
}

// ---- Serve introspection verbs ----------------------------------------------

serve::ServeOptions obs_serve_options() {
  serve::ServeOptions opts;
  opts.dynamic.base = SparsifyOptions{}.with_sigma2(30.0).with_seed(42);
  return opts;
}

TEST(ServeIntrospection, StatsListsSessionsAndDetailsOne) {
  const MetricsOn on;
  serve::SessionManager manager(obs_serve_options());
  serve::Connection conn(manager);

  // Usage / error cases first.
  EXPECT_EQ(conn.handle_line("stats a b").status.rfind("err protocol:", 0),
            0u);
  EXPECT_EQ(conn.handle_line("stats nosuch").status.rfind("err ", 0), 0u);
  EXPECT_EQ(conn.handle_line("stats").status, "ok n=0");  // no sessions yet

  ASSERT_TRUE(
      serve::is_ok(conn.handle_line("open s1 gen:grid2d:6x6:7").status));
  ASSERT_TRUE(
      serve::is_ok(conn.handle_line("open s2 gen:grid2d:5x5:3").status));
  ASSERT_TRUE(serve::is_ok(conn.handle_line("reweight 0 1 2.5").status));
  ASSERT_TRUE(serve::is_ok(conn.handle_line("commit").status));

  const serve::Reply all = conn.handle_line("stats");
  EXPECT_EQ(all.status, "ok n=2");
  ASSERT_EQ(all.payload.size(), 2u);
  for (const std::string& line : all.payload) {
    EXPECT_EQ(line.rfind("session=s", 0), 0u) << line;
    EXPECT_NE(line.find(" sigma2="), std::string::npos) << line;
    EXPECT_NE(line.find(" queued=0"), std::string::npos) << line;
  }

  const serve::Reply one = conn.handle_line("stats s2");
  ASSERT_TRUE(serve::is_ok(one.status)) << one.status;
  EXPECT_EQ(serve::payload_count(one.status).value_or(0), one.payload.size());
  auto has = [&one](const std::string& prefix) {
    for (const std::string& line : one.payload) {
      if (line.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("name=s2"));
  EXPECT_TRUE(has("commits=1"));
  EXPECT_TRUE(has("last.route="));
  EXPECT_TRUE(has("last.batch=1"));
  EXPECT_TRUE(has("last.stage.validate.seconds="));
  EXPECT_TRUE(has("last.stage.sparsify.seconds="));
}

TEST(ServeIntrospection, MetricsDumpsRegistrySorted) {
  const MetricsOn on;
  serve::SessionManager manager(obs_serve_options());
  serve::Connection conn(manager);

  EXPECT_EQ(conn.handle_line("metrics extra").status.rfind("err protocol:", 0),
            0u);

  ASSERT_TRUE(
      serve::is_ok(conn.handle_line("open s1 gen:grid2d:6x6:7").status));
  ASSERT_TRUE(serve::is_ok(conn.handle_line("reweight 0 1 2.5").status));
  ASSERT_TRUE(serve::is_ok(conn.handle_line("commit").status));

  const serve::Reply reply = conn.handle_line("metrics");
  ASSERT_TRUE(serve::is_ok(reply.status)) << reply.status;
  EXPECT_NE(reply.status.find(" enabled=1"), std::string::npos);
  EXPECT_EQ(serve::payload_count(reply.status).value_or(0),
            reply.payload.size());
  EXPECT_TRUE(
      std::is_sorted(reply.payload.begin(), reply.payload.end()));

  auto value_of = [&reply](const std::string& name) -> std::string {
    for (const std::string& line : reply.payload) {
      if (line.rfind(name + " ", 0) == 0) return line.substr(name.size() + 1);
    }
    return "";
  };
  EXPECT_EQ(value_of("serve.commits"), "1");
  EXPECT_EQ(value_of("serve.sessions.opened"), "1");
  EXPECT_EQ(value_of("serve.commit.latency_us.count"), "1");
  EXPECT_NE(value_of("serve.commit.latency_us.p50"), "");
  EXPECT_NE(value_of("serve.session.s1.commit_us.count"), "");
  EXPECT_NE(value_of("engine.rounds"), "");

  // Disabled registry still answers (with whatever was recorded).
  obs::set_metrics_enabled(false);
  const serve::Reply off = conn.handle_line("metrics");
  ASSERT_TRUE(serve::is_ok(off.status));
  EXPECT_NE(off.status.find(" enabled=0"), std::string::npos);
}

}  // namespace
}  // namespace ssp
