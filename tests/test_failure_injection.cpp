// Failure-injection tests: every module must reject malformed input with a
// typed exception (std::invalid_argument for API misuse, std::runtime_error
// for data/numeric failures) rather than corrupt state or crash — and
// partial/degenerate configurations must still uphold the documented
// invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/densify.hpp"
#include "core/edge_filter.hpp"
#include "core/embedding.hpp"
#include "core/rescale.hpp"
#include "core/resistance_sampling.hpp"
#include "core/sparsifier.hpp"
#include "eigen/operators.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/amg.hpp"
#include "solver/cholesky.hpp"
#include "solver/pcg.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_solver.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(FailureInjection, GraphRejectsNonFiniteWeights) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_EQ(g.num_edges(), 0);  // no partial insertion
}

TEST(FailureInjection, LaplacianConversionRejectsPositiveOffDiagonal) {
  const std::vector<Triplet> ts = {
      {0, 0, 1.0}, {0, 1, 0.5}, {1, 0, 0.5}, {1, 1, 1.0}};
  const CsrMatrix not_laplacian = CsrMatrix::from_triplets(2, 2, ts);
  EXPECT_THROW((void)graph_from_laplacian(not_laplacian),
               std::invalid_argument);
}

TEST(FailureInjection, TreeSolverSizeMismatch) {
  const Graph g = path_graph(5);
  const SpanningTree t(g, {0, 1, 2, 3});
  const TreeSolver solver(t);
  const Vec wrong(3, 1.0);
  Vec out(5);
  EXPECT_THROW(solver.solve(wrong, out), std::invalid_argument);
  Vec short_out(2);
  const Vec ok(5, 0.0);
  EXPECT_THROW(solver.solve(ok, short_out), std::invalid_argument);
}

TEST(FailureInjection, CholeskyShiftCanRepairSemidefinite) {
  // L is singular -> factor() throws; a positive shift repairs it.
  const Graph g = grid_2d(5, 5);
  const CsrMatrix l = laplacian(g);
  EXPECT_THROW((void)SparseCholesky::factor(l), std::runtime_error);
  const SparseCholesky shifted =
      SparseCholesky::factor(l, {.diagonal_shift = 1e-3});
  Rng rng(1);
  const Vec b = rng.normal_vector(l.rows());
  const Vec x = shifted.solve(b);
  // Residual wrt the shifted operator is tiny.
  Vec lx = l.multiply(x);
  for (std::size_t i = 0; i < lx.size(); ++i) lx[i] += 1e-3 * x[i];
  EXPECT_LT(relative_error(lx, b), 1e-10);
}

TEST(FailureInjection, AmgRejectsNonPositiveDiagonal) {
  // A matrix with a zero diagonal entry cannot be Jacobi-smoothed.
  const std::vector<Triplet> ts = {{0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 1.0}};
  const CsrMatrix bad = CsrMatrix::from_triplets(2, 2, ts);
  EXPECT_THROW((void)AmgHierarchy::build(bad), std::invalid_argument);
}

TEST(FailureInjection, SparsifyPartialBudgetKeepsInvariants) {
  // One round with a tiny per-round cap: result may miss the target but
  // must keep every structural invariant.
  Rng rng(2);
  const Graph g = grid_2d(16, 16, WeightModel::log_uniform(0.1, 10.0), &rng);
  SparsifyOptions opts;
  opts.sigma2 = 5.0;  // unreachable in one round
  opts.max_rounds = 1;
  opts.max_edges_per_round = 4;
  const SparsifyResult res = sparsify(g, opts);
  EXPECT_FALSE(res.reached_target);
  EXPECT_LE(res.num_edges(),
            static_cast<EdgeId>(g.num_vertices()) - 1 + 4);
  EXPECT_TRUE(is_connected(res.extract(g)));
  EXPECT_GE(res.sigma2_estimate, 1.0);
}

TEST(FailureInjection, EmbeddingWhenSparsifierEqualsGraph) {
  // No off-tree edges: the embedding must return an empty, consistent
  // report and the filter must select nothing.
  const Graph g = path_graph(6);
  const SpanningTree t(g, {0, 1, 2, 3, 4});
  const TreeSolver solver(t);
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 1);
  Rng rng(3);
  const OffTreeEmbedding emb = compute_offtree_heat(
      g, in_p, make_tree_solver_op(solver), {}, rng);
  EXPECT_TRUE(emb.offtree_edges.empty());
  EXPECT_EQ(emb.heat_max, 0.0);
  const auto picked = filter_offtree_edges(g, emb, 0.5, {});
  EXPECT_TRUE(picked.empty());
}

TEST(FailureInjection, FilterRejectsMalformedInputs) {
  const Graph g = path_graph(4);
  OffTreeEmbedding emb;
  emb.offtree_edges = {0};
  emb.heat = {1.0, 2.0};  // size mismatch
  emb.heat_max = 2.0;
  EXPECT_THROW((void)filter_offtree_edges(g, emb, 0.5, {}),
               std::invalid_argument);
  emb.heat = {1.0};
  EXPECT_THROW((void)filter_offtree_edges(g, emb, 1.5, {}),
               std::invalid_argument);  // theta out of range
  EXPECT_THROW(
      (void)filter_offtree_edges(
          g, emb, 0.5,
          {.similarity = SimilarityPolicy::kBounded, .node_cap = 0}),
      std::invalid_argument);
}

TEST(FailureInjection, SsRejectsBadOptions) {
  const Graph g = path_graph(4);
  SsOptions opts;
  opts.jl_projections = 0;
  EXPECT_THROW((void)spielman_srivastava_sparsify(g, opts),
               std::invalid_argument);
  Graph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  disconnected.finalize();
  EXPECT_THROW((void)spielman_srivastava_sparsify(disconnected, {}),
               std::invalid_argument);  // not connected
}

TEST(FailureInjection, PcgWithWrongSizePreconditioner) {
  const Graph g = grid_2d(4, 4);
  const CsrMatrix a = laplacian(g);
  const IdentityPreconditioner wrong(7);
  Vec b(static_cast<std::size_t>(a.rows()), 1.0);
  Vec x(b.size(), 0.0);
  EXPECT_THROW((void)pcg_solve(a, b, x, wrong, {}), std::invalid_argument);
}

TEST(FailureInjection, RescaleRequiresEstimates) {
  const Graph g = path_graph(4);
  SparsifyResult empty;
  empty.edges = {0, 1, 2};
  EXPECT_THROW((void)rescale_sparsifier(g, empty), std::invalid_argument);
}

TEST(FailureInjection, DegenerateThresholds) {
  // theta exactly 1 keeps only edges tied with heat_max.
  const Graph g = cycle_graph(4);
  OffTreeEmbedding emb;
  emb.offtree_edges = {3};
  emb.heat = {0.8};
  emb.heat_max = 1.0;  // max elsewhere (hypothetically)
  const auto none = filter_offtree_edges(g, emb, 1.0, {});
  EXPECT_TRUE(none.empty());
  emb.heat = {1.0};
  const auto one = filter_offtree_edges(g, emb, 1.0, {});
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace ssp
