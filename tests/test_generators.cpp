// Tests for the synthetic workload generators, including parameterized
// property sweeps: every generator must produce a connected simple graph
// with positive weights and the documented size.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "graph/connectivity.hpp"
#include "graph/generators/airfoil.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/random_graphs.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

void expect_simple_positive(const Graph& g) {
  std::set<std::pair<Vertex, Vertex>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_GT(e.weight, 0.0);
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "parallel edge " << e.u << "-" << e.v;
  }
}

TEST(Lattice, Grid2dSizes) {
  const Graph g = grid_2d(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 4 * 4 + 5 * 3);  // (nx-1)*ny + nx*(ny-1) = 16+15=31
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
}

TEST(Lattice, Grid2dDegenerate) {
  const Graph line = grid_2d(1, 7);
  EXPECT_EQ(line.num_edges(), 6);
  EXPECT_TRUE(is_connected(line));
  const Graph dot = grid_2d(1, 1);
  EXPECT_EQ(dot.num_vertices(), 1);
  EXPECT_EQ(dot.num_edges(), 0);
}

TEST(Lattice, Grid2dRandomWeightsInRange) {
  Rng rng(1);
  const Graph g =
      grid_2d(10, 10, WeightModel::uniform(0.5, 2.0), &rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.0);
  }
  // Non-unit model without RNG must throw.
  EXPECT_THROW((void)grid_2d(3, 3, WeightModel::uniform(0.5, 2.0), nullptr),
               std::invalid_argument);
}

TEST(Lattice, LogUniformSpansDecades) {
  Rng rng(2);
  const Graph g =
      grid_2d(30, 30, WeightModel::log_uniform(1e-3, 1e3), &rng);
  double lo = 1e9, hi = 0.0;
  for (const Edge& e : g.edges()) {
    lo = std::min(lo, e.weight);
    hi = std::max(hi, e.weight);
  }
  EXPECT_LT(lo, 1e-1);
  EXPECT_GT(hi, 1e1);
}

TEST(Lattice, Grid2d8HasDiagonals) {
  const Graph g = grid_2d_8(3, 3);
  // 12 axis edges + 8 diagonal edges.
  EXPECT_EQ(g.num_edges(), 20);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
}

TEST(Lattice, TriangulatedGridEdgeCount) {
  const Graph g = triangulated_grid(3, 4);
  // axis: 2*4 + 3*3 = 17; diagonals: one per cell = 2*3 = 6.
  EXPECT_EQ(g.num_edges(), 23);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
}

TEST(Lattice, Grid3dSizes) {
  const Graph g = grid_3d(3, 4, 5);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
}

TEST(Lattice, Torus2dIsRegular) {
  const Graph g = torus_2d(4, 5);
  EXPECT_EQ(g.num_edges(), 2 * 4 * 5);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
  EXPECT_TRUE(is_connected(g));
}

TEST(Lattice, Torus3dIsRegularAndConnected) {
  const Graph g = torus_3d(3, 4, 5);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 3 * 60);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 6);
  }
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
  EXPECT_THROW((void)torus_3d(2, 3, 3), std::invalid_argument);
}

TEST(Lattice, SmallNamedGraphs) {
  EXPECT_EQ(path_graph(5).num_edges(), 4);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5);
  EXPECT_EQ(star_graph(5).num_edges(), 4);
  EXPECT_EQ(complete_graph(5).num_edges(), 10);
  EXPECT_THROW((void)cycle_graph(2), std::invalid_argument);
  EXPECT_THROW((void)grid_2d(0, 3), std::invalid_argument);
}

TEST(Airfoil, MeshIsConnectedAndPlanarSized) {
  const Mesh2d mesh = joukowski_airfoil_mesh(12, 48);
  EXPECT_EQ(mesh.graph.num_vertices(), 12 * 48);
  EXPECT_TRUE(is_connected(mesh.graph));
  expect_simple_positive(mesh.graph);
  EXPECT_EQ(mesh.x.size(), mesh.graph.num_vertices());
  // circumferential + radial + diagonal edges
  EXPECT_EQ(mesh.graph.num_edges(), 12 * 48 + 11 * 48 * 2);
}

TEST(Airfoil, WeightsReflectGeometry) {
  const Mesh2d mesh = joukowski_airfoil_mesh(10, 32);
  // Edge lengths vary strongly (graded mesh) => weights span > 1 decade.
  double lo = 1e300, hi = 0.0;
  for (const Edge& e : mesh.graph.edges()) {
    lo = std::min(lo, e.weight);
    hi = std::max(hi, e.weight);
  }
  EXPECT_GT(hi / lo, 10.0);
  EXPECT_THROW((void)joukowski_airfoil_mesh(1, 32), std::invalid_argument);
  EXPECT_THROW((void)joukowski_airfoil_mesh(5, 4), std::invalid_argument);
}

TEST(RandomGraphs, BarabasiAlbertShape) {
  Rng rng(7);
  const Graph g = barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.num_vertices(), 500);
  EXPECT_TRUE(is_connected(g));
  // Power-law-ish: max degree far above m.
  Index dmax = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    dmax = std::max(dmax, g.degree(v));
  }
  EXPECT_GT(dmax, 20);
  EXPECT_THROW((void)barabasi_albert(3, 3, rng), std::invalid_argument);
}

TEST(RandomGraphs, WattsStrogatzShape) {
  Rng rng(8);
  const Graph g = watts_strogatz(400, 6, 0.1, rng);
  EXPECT_EQ(g.num_vertices(), 400);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
  EXPECT_THROW((void)watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)watts_strogatz(10, 4, 1.5, rng), std::invalid_argument);
}

TEST(RandomGraphs, ErdosRenyiConnectedHasExactEdges) {
  Rng rng(9);
  const Graph g = erdos_renyi_connected(200, 800, rng);
  EXPECT_EQ(g.num_vertices(), 200);
  EXPECT_EQ(g.num_edges(), 800);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
  EXPECT_THROW((void)erdos_renyi_connected(10, 5, rng),
               std::invalid_argument);  // m < n-1
  EXPECT_THROW((void)erdos_renyi_connected(4, 7, rng),
               std::invalid_argument);  // m > n(n-1)/2
}

TEST(Points, GaussianMixtureStats) {
  Rng rng(10);
  const PointCloud pc = gaussian_mixture_points(300, 4, 3, 0.05, rng);
  EXPECT_EQ(pc.n, 300);
  EXPECT_EQ(pc.dim, 4);
  EXPECT_EQ(pc.coords.size(), 1200u);
  // Points from the same cluster (i, i+3) are closer on average than
  // points from different clusters.
  double same = 0.0, cross = 0.0;
  int cs = 0, cc = 0;
  for (Index i = 0; i + 3 < 300; i += 3) {
    same += squared_distance(pc, i, i + 3);
    ++cs;
    cross += squared_distance(pc, i, i + 1);
    ++cc;
  }
  EXPECT_LT(same / cs, cross / cc);
}

TEST(Knn, GraphIsConnectedAndBounded) {
  Rng rng(12);
  const PointCloud pc = gaussian_mixture_points(200, 3, 4, 0.02, rng);
  const Graph g = knn_graph(pc, 5);
  EXPECT_EQ(g.num_vertices(), 200);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
  // Union-symmetrized kNN has at most n*k edges.
  EXPECT_LE(g.num_edges(), 200 * 5);
  EXPECT_GE(g.num_edges(), 199);
}

TEST(Knn, WeightKindsAreOrdered) {
  Rng rng(13);
  const PointCloud pc = uniform_points(50, 2, rng);
  const Graph gu = knn_graph(pc, 4, KnnWeight::kUnit);
  for (const Edge& e : gu.edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
  const Graph gg = knn_graph(pc, 4, KnnWeight::kGaussianSimilarity);
  for (const Edge& e : gg.edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
  }
  const Graph gi = knn_graph(pc, 4, KnnWeight::kInverseDistance);
  for (const Edge& e : gi.edges()) EXPECT_GT(e.weight, 0.0);
  EXPECT_THROW((void)knn_graph(pc, 0), std::invalid_argument);
  EXPECT_THROW((void)knn_graph(pc, 50), std::invalid_argument);
}

TEST(Community, PlantedPartitionDetectableStructure) {
  Rng rng(14);
  const Graph g = planted_partition(200, 2, 0.10, 0.005, rng);
  EXPECT_TRUE(is_connected(g));
  expect_simple_positive(g);
  // Count intra vs inter edges wrt ground truth blocks of 100.
  Index intra = 0, inter = 0;
  for (const Edge& e : g.edges()) {
    if ((e.u / 100) == (e.v / 100)) {
      ++intra;
    } else {
      ++inter;
    }
  }
  EXPECT_GT(intra, 4 * inter);
}

TEST(Community, DumbbellHasWeakBridge) {
  Rng rng(15);
  const Graph g = dumbbell_graph(50, 2, 0.01, rng);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_TRUE(is_connected(g));
  Index bridges = 0;
  for (const Edge& e : g.edges()) {
    const bool cross = (e.u < 50) != (e.v < 50);
    if (cross) {
      ++bridges;
      EXPECT_LE(e.weight, 0.02 + 1e-12);
    }
  }
  EXPECT_GE(bridges, 1);
  EXPECT_LE(bridges, 2);
}

// ---- Parameterized property sweep: all lattice generators stay connected
// and simple across a size grid. ----

class LatticeSweep
    : public ::testing::TestWithParam<std::tuple<Vertex, Vertex>> {};

TEST_P(LatticeSweep, ConnectedSimplePositive) {
  const auto [nx, ny] = GetParam();
  Rng rng(99);
  for (const Graph& g :
       {grid_2d(nx, ny), grid_2d_8(nx, ny), triangulated_grid(nx, ny),
        grid_2d(nx, ny, WeightModel::log_uniform(0.1, 10.0), &rng)}) {
    EXPECT_EQ(g.num_vertices(), nx * ny);
    EXPECT_TRUE(is_connected(g));
    expect_simple_positive(g);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LatticeSweep,
    ::testing::Values(std::make_tuple(2, 2), std::make_tuple(1, 10),
                      std::make_tuple(7, 3), std::make_tuple(16, 16),
                      std::make_tuple(5, 40)));

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSweep, AllModelsConnected) {
  Rng rng(GetParam());
  EXPECT_TRUE(is_connected(barabasi_albert(300, 2, rng)));
  EXPECT_TRUE(is_connected(watts_strogatz(300, 4, 0.2, rng)));
  EXPECT_TRUE(is_connected(erdos_renyi_connected(300, 600, rng)));
  const PointCloud pc = gaussian_mixture_points(150, 2, 5, 0.01, rng);
  EXPECT_TRUE(is_connected(knn_graph(pc, 3)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ssp
