// Tests for the extension modules: k-way spectral clustering (§4.4
// application), the graph-signal low-pass filter view (§3.4), and the
// IC(0) preconditioner baseline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/graph_filter.hpp"
#include "core/sparsifier.hpp"
#include "eigen/operators.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/laplacian.hpp"
#include "la/dense_eigen.hpp"
#include "la/vector_ops.hpp"
#include "partition/spectral_clustering.hpp"
#include "solver/cholesky.hpp"
#include "solver/ichol.hpp"
#include "solver/pcg.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(SpectralClustering, RecoversPlantedCommunities) {
  Rng rng(1);
  const Graph g = planted_partition(300, 3, 0.12, 0.004, rng);
  SpectralClusteringOptions opts;
  opts.num_clusters = 3;
  opts.seed = 5;
  const SpectralClusteringResult res = spectral_clustering(g, opts);
  ASSERT_EQ(res.assignment.size(), static_cast<std::size_t>(g.num_vertices()));

  // Ground truth: blocks of 100.
  std::vector<Vertex> truth(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    truth[static_cast<std::size_t>(v)] = v / 100;
  }
  const double nmi = normalized_mutual_information(res.assignment, truth);
  EXPECT_GT(nmi, 0.9) << "clustering failed to recover planted structure";
  EXPECT_GT(res.eigensolver_seconds, 0.0);
  EXPECT_GE(res.kmeans_objective, 0.0);
  ASSERT_GE(res.eigenvalues.size(), 2u);
  EXPECT_GT(res.eigenvalues[0], 0.0);
}

TEST(SpectralClustering, SparsifiedGraphPreservesCommunities) {
  // The paper's §4.4 claim: clustering on the sparsifier recovers the same
  // structure as on the original — both measured against ground truth.
  Rng rng(2);
  const Graph g = planted_partition(300, 2, 0.12, 0.004, rng);
  std::vector<Vertex> truth(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    truth[static_cast<std::size_t>(v)] = v / 150;
  }
  SpectralClusteringOptions opts;
  opts.num_clusters = 2;
  opts.seed = 7;
  const SpectralClusteringResult orig = spectral_clustering(g, opts);
  const double nmi_orig =
      normalized_mutual_information(orig.assignment, truth);

  const SparsifyResult sp = sparsify(g, {.sigma2 = 15.0});
  const Graph p = sp.extract(g);
  const SpectralClusteringResult spars = spectral_clustering(p, opts);
  const double nmi_spars =
      normalized_mutual_information(spars.assignment, truth);

  EXPECT_GT(nmi_orig, 0.85);
  EXPECT_GT(nmi_spars, 0.8) << "sparsifier lost the community structure";
  EXPECT_LT(p.num_edges(), g.num_edges());
}

TEST(SpectralClustering, InputValidation) {
  const Graph g = grid_2d(4, 4);
  SpectralClusteringOptions opts;
  opts.num_clusters = 1;
  EXPECT_THROW((void)spectral_clustering(g, opts), std::invalid_argument);
  opts.num_clusters = 16;
  EXPECT_THROW((void)spectral_clustering(g, opts), std::invalid_argument);
  opts.num_clusters = 2;
  opts.kmeans_restarts = 0;
  EXPECT_THROW((void)spectral_clustering(g, opts), std::invalid_argument);
}

TEST(Nmi, AgreementScores) {
  const std::vector<Vertex> a = {0, 0, 1, 1};
  const std::vector<Vertex> b = {1, 1, 0, 0};  // permuted labels
  EXPECT_NEAR(normalized_mutual_information(a, b), 1.0, 1e-12);
  const std::vector<Vertex> c = {0, 1, 0, 1};  // independent
  EXPECT_LT(normalized_mutual_information(a, c), 0.1);
  const std::vector<Vertex> mono = {0, 0, 0, 0};
  EXPECT_NEAR(normalized_mutual_information(mono, mono), 1.0, 1e-12);
  const std::vector<Vertex> shorter = {0};
  EXPECT_THROW((void)normalized_mutual_information(a, shorter),
               std::invalid_argument);
}

TEST(GraphFilter, SmoothnessOrdersSignals) {
  const Graph g = grid_2d(12, 12);
  const CsrMatrix l = laplacian(g);
  Rng rng(3);
  const Vec smooth = synthesize_signal(l, 0.0, rng);
  const Vec rough = synthesize_signal(l, 1.0, rng);
  EXPECT_LT(smoothness(l, smooth), smoothness(l, rough));
  const Vec zero(static_cast<std::size_t>(l.rows()), 0.0);
  EXPECT_DOUBLE_EQ(smoothness(l, zero), 0.0);
}

TEST(GraphFilter, ChebyshevMatchesDenseHeatKernel) {
  // exp(-tau L) x computed densely via the eigendecomposition vs the
  // Chebyshev approximation.
  Rng rng(4);
  const Graph g = grid_2d(6, 5, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  const DenseEigen eig = dense_symmetric_eigen(DenseMatrix::from_csr(l));

  const Vec x = rng.normal_vector(l.rows());
  const double tau = 0.7;
  // Dense reference: y = V exp(-tau D) V^T x.
  Vec y_ref(static_cast<std::size_t>(l.rows()), 0.0);
  for (Index j = 0; j < l.rows(); ++j) {
    double coef = 0.0;
    for (Index i = 0; i < l.rows(); ++i) {
      coef += eig.vectors(i, j) * x[static_cast<std::size_t>(i)];
    }
    coef *= std::exp(-tau * eig.eigenvalues[static_cast<std::size_t>(j)]);
    for (Index i = 0; i < l.rows(); ++i) {
      y_ref[static_cast<std::size_t>(i)] += coef * eig.vectors(i, j);
    }
  }
  const Vec y = chebyshev_lowpass(
      l, x, {.tau = tau, .degree = 40,
             .lambda_max = eig.eigenvalues.back() * 1.01},
      rng);
  EXPECT_LT(relative_error(y, y_ref), 1e-8);
}

TEST(GraphFilter, SparsifierActsAsLowPass) {
  // The §3.4 fingerprint: the sparsifier filters smooth signals almost
  // identically to G, and degrades (relatively) on oscillatory input.
  Rng rng(5);
  const Graph g = grid_2d(20, 20, WeightModel::uniform(0.5, 2.0), &rng);
  const SparsifyResult sp = sparsify(g, {.sigma2 = 30.0});
  const CsrMatrix lg = laplacian(g);
  const CsrMatrix lp = laplacian(sp.extract(g));

  const ChebyshevFilterOptions fopts = {.tau = 2.0, .degree = 32};
  const Vec smooth = synthesize_signal(lg, 0.0, rng);
  const Vec rough = synthesize_signal(lg, 1.0, rng);
  const double err_smooth = filter_agreement(lg, lp, smooth, fopts, rng);
  const double err_rough = filter_agreement(lg, lp, rough, fopts, rng);
  EXPECT_LT(err_smooth, 0.2);
  EXPECT_LE(err_smooth, err_rough * 1.05);
}

TEST(GraphFilter, InputValidation) {
  const Graph g = grid_2d(3, 3);
  const CsrMatrix l = laplacian(g);
  Rng rng(6);
  const Vec x(static_cast<std::size_t>(l.rows()), 1.0);
  EXPECT_THROW((void)chebyshev_lowpass(l, x, {.tau = -1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)chebyshev_lowpass(l, x, {.tau = 1.0, .degree = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)synthesize_signal(l, 1.5, rng), std::invalid_argument);
}

CsrMatrix spd_from_grid(Vertex nx, Vertex ny, double alpha, Rng& rng) {
  const Graph g = grid_2d(nx, ny, WeightModel::log_uniform(0.1, 10.0), &rng);
  const CsrMatrix l = laplacian(g);
  std::vector<Triplet> ts;
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({r, cols[k], vals[k]});
    }
    ts.push_back({r, r, alpha});
  }
  return CsrMatrix::from_triplets(l.rows(), l.cols(), ts);
}

TEST(IncompleteCholesky, ExactOnTridiagonal) {
  // IC(0) on a path-graph SPD matrix has no dropped fill: it must be an
  // exact factorization, so PCG converges in one iteration.
  Rng rng(7);
  const CsrMatrix a = spd_from_grid(1, 40, 0.5, rng);
  const IncompleteCholesky ic(a);
  Vec b = rng.normal_vector(a.rows());
  Vec x(b.size(), 0.0);
  const PcgResult res = pcg_solve(a, b, x, ic,
                                  {.max_iterations = 5,
                                   .rel_tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);
  EXPECT_DOUBLE_EQ(ic.shift_used(), 0.0);
}

TEST(IncompleteCholesky, AcceleratesPcgOnMesh) {
  Rng rng(8);
  const CsrMatrix a = spd_from_grid(40, 40, 1e-4, rng);
  Vec b = rng.normal_vector(a.rows());
  const PcgOptions opts = {.max_iterations = 4000, .rel_tolerance = 1e-8};

  Vec x1(b.size(), 0.0);
  const PcgResult plain = cg_solve(a, b, x1, opts);
  const IncompleteCholesky ic(a);
  Vec x2(b.size(), 0.0);
  const PcgResult prec = pcg_solve(a, b, x2, ic, opts);
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations / 2);
  EXPECT_LT(relative_error(x2, x1), 1e-5);
}

TEST(IncompleteCholesky, GroundedLaplacianWorks) {
  // IC(0) of a grounded Laplacian = usable preconditioner for PCG on the
  // full singular system via projection.
  Rng rng(9);
  const Graph g = grid_2d(20, 20);
  const CsrMatrix l = laplacian(g);
  // Ground vertex 0: add 1.0 to its diagonal (equivalent to pinning
  // through a unit conductance to ground).
  std::vector<Triplet> ts;
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({r, cols[k], vals[k]});
    }
  }
  ts.push_back({0, 0, 1.0});
  const CsrMatrix grounded =
      CsrMatrix::from_triplets(l.rows(), l.cols(), ts);
  const IncompleteCholesky ic(grounded);
  Vec b = rng.normal_vector(grounded.rows());
  Vec x(b.size(), 0.0);
  const PcgResult res = pcg_solve(grounded, b, x, ic,
                                  {.max_iterations = 2000,
                                   .rel_tolerance = 1e-8});
  EXPECT_TRUE(res.converged);
}

TEST(IncompleteCholesky, InputValidation) {
  const std::vector<Triplet> ts = {{0, 1, 1.0}};
  const CsrMatrix rect = CsrMatrix::from_triplets(1, 2, ts);
  EXPECT_THROW((void)IncompleteCholesky(rect), std::invalid_argument);
}

}  // namespace
}  // namespace ssp
