// Tests for src/solver: CG/PCG correctness and preconditioner effects,
// fill-reducing orderings, sparse Cholesky vs dense oracle (SPD + grounded
// Laplacian), elimination tree, and AMG convergence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"
#include "solver/amg.hpp"
#include "solver/cholesky.hpp"
#include "solver/ordering.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

/// SPD test matrix: Laplacian + alpha*I.
CsrMatrix spd_matrix(const Graph& g, double alpha) {
  const CsrMatrix l = laplacian(g);
  std::vector<Triplet> ts;
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({r, cols[k], vals[k]});
    }
    ts.push_back({r, r, alpha});
  }
  return CsrMatrix::from_triplets(l.rows(), l.cols(), ts);
}

TEST(Pcg, SolvesSpdSystem) {
  Rng rng(1);
  const Graph g = grid_2d(10, 10, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix a = spd_matrix(g, 0.5);
  const Vec x_true = rng.normal_vector(a.rows());
  const Vec b = a.multiply(x_true);
  Vec x(static_cast<std::size_t>(a.rows()), 0.0);
  const PcgResult res = cg_solve(a, b, x, {.max_iterations = 500,
                                           .rel_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(relative_error(x, x_true), 1e-7);
  EXPECT_GT(res.iterations, 0);
}

TEST(Pcg, SolvesLaplacianWithProjection) {
  Rng rng(2);
  const Graph g = grid_2d(12, 12);
  const CsrMatrix l = laplacian(g);
  Vec x_true = rng.normal_vector(l.rows());
  project_out_mean(x_true);
  const Vec b = l.multiply(x_true);
  Vec x(static_cast<std::size_t>(l.rows()), 0.0);
  const PcgResult res =
      cg_solve(l, b, x, {.max_iterations = 1000,
                         .rel_tolerance = 1e-10,
                         .project_constants = true});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(relative_error(x, x_true), 1e-6);
}

TEST(Pcg, JacobiHelpsOnBadlyScaledSystem) {
  Rng rng(3);
  const Graph g =
      grid_2d(15, 15, WeightModel::log_uniform(1e-4, 1e4), &rng);
  const CsrMatrix a = spd_matrix(g, 1e-3);
  const Vec b = rng.normal_vector(a.rows());
  const PcgOptions opts = {.max_iterations = 3000, .rel_tolerance = 1e-8};

  Vec x1(static_cast<std::size_t>(a.rows()), 0.0);
  const PcgResult plain = cg_solve(a, b, x1, opts);
  Vec x2(static_cast<std::size_t>(a.rows()), 0.0);
  const JacobiPreconditioner jac(a);
  const PcgResult prec = pcg_solve(a, b, x2, jac, opts);
  EXPECT_TRUE(prec.converged);
  EXPECT_LE(prec.iterations, plain.iterations);
}

TEST(Pcg, TreePreconditionerBeatsPlainCgOnLaplacian) {
  Rng rng(4);
  const Graph g =
      grid_2d(30, 30, WeightModel::log_uniform(0.01, 100.0), &rng);
  const CsrMatrix l = laplacian(g);
  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);
  const PcgOptions opts = {.max_iterations = 4000,
                           .rel_tolerance = 1e-8,
                           .project_constants = true};

  Vec x1(static_cast<std::size_t>(l.rows()), 0.0);
  const PcgResult plain = cg_solve(l, b, x1, opts);

  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner tp(tree);
  Vec x2(static_cast<std::size_t>(l.rows()), 0.0);
  const PcgResult prec = pcg_solve(l, b, x2, tp, opts);

  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
  EXPECT_LT(relative_error(x2, x1), 1e-5);
}

TEST(Pcg, ZeroRhsReturnsZero) {
  const Graph g = grid_2d(4, 4);
  const CsrMatrix a = spd_matrix(g, 1.0);
  const Vec b(static_cast<std::size_t>(a.rows()), 0.0);
  Vec x(static_cast<std::size_t>(a.rows()), 3.0);
  const PcgResult res = cg_solve(a, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Pcg, BreakdownIsFlaggedWithTrueResidualOfReturnedIterate) {
  // Regression: a pᵀAp ≤ 0 breakdown used to return silently with the
  // residual recorded *before* the breakdown. It must now set
  // `breakdown` and report ||b − A x|| of the iterate actually returned.
  const std::vector<Triplet> ts = {{0, 0, 1.0}, {1, 1, -1.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, ts);  // indefinite
  {
    // b = (1, 2): p₀ᵀA p₀ = 1 − 4 < 0 — immediate breakdown, x stays 0,
    // so the true relative residual is exactly 1.
    const Vec b = {1.0, 2.0};
    Vec x(2, 0.0);
    const PcgResult res =
        cg_solve(a, b, x, {.max_iterations = 10, .rel_tolerance = 1e-12});
    EXPECT_TRUE(res.breakdown);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 0);
    EXPECT_DOUBLE_EQ(res.relative_residual, 1.0);
    for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
  }
  {
    // b = (2, 1): the first iteration succeeds (p₀ᵀA p₀ = 3), the second
    // direction has p₁ᵀA p₁ < 0. The reported residual must describe the
    // returned x — here 4/3, checked against an independent recompute.
    const Vec b = {2.0, 1.0};
    Vec x(2, 0.0);
    const PcgResult res =
        cg_solve(a, b, x, {.max_iterations = 10, .rel_tolerance = 1e-12});
    EXPECT_TRUE(res.breakdown);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 1);
    const Vec ax = a.multiply(x);
    const Vec r = subtract(b, ax);
    EXPECT_NEAR(res.relative_residual, norm2(r) / norm2(b), 1e-14);
    EXPECT_NEAR(res.relative_residual, 4.0 / 3.0, 1e-12);
  }
  // Healthy SPD solves never set the flag.
  const Graph g = grid_2d(6, 6);
  const CsrMatrix spd = spd_matrix(g, 1.0);
  const Vec b(static_cast<std::size_t>(spd.rows()), 1.0);
  Vec x(static_cast<std::size_t>(spd.rows()), 0.0);
  const PcgResult ok = cg_solve(spd, b, x, {.max_iterations = 500});
  EXPECT_TRUE(ok.converged);
  EXPECT_FALSE(ok.breakdown);
}

TEST(Pcg, InputValidation) {
  const Graph g = grid_2d(3, 3);
  const CsrMatrix a = spd_matrix(g, 1.0);
  Vec b(static_cast<std::size_t>(a.rows()), 1.0);
  Vec x(static_cast<std::size_t>(a.rows()), 0.0);
  Vec bad(3, 0.0);
  EXPECT_THROW((void)cg_solve(a, bad, x), std::invalid_argument);
  EXPECT_THROW((void)cg_solve(a, b, bad), std::invalid_argument);
  EXPECT_THROW((void)cg_solve(a, b, x, {.rel_tolerance = 0.0}),
               std::invalid_argument);
}

TEST(Ordering, RcmIsPermutationAndReducesBandwidth) {
  Rng rng(5);
  const Graph g = grid_2d(20, 20);
  const CsrMatrix l = laplacian(g);
  const auto order = rcm_ordering(l);
  ASSERT_EQ(static_cast<Index>(order.size()), l.rows());
  std::vector<Vertex> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < l.rows(); ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], static_cast<Vertex>(i));
  }
  // Bandwidth with RCM should be at most the natural-order bandwidth for a
  // row-major grid (ny = 20).
  const CsrMatrix lp = permute_symmetric(l, order);
  auto bandwidth = [](const CsrMatrix& m) {
    Index bw = 0;
    for (Index r = 0; r < m.rows(); ++r) {
      for (Vertex c : m.row_cols(r)) {
        bw = std::max(bw, std::abs(static_cast<Index>(c) - r));
      }
    }
    return bw;
  };
  EXPECT_LE(bandwidth(lp), bandwidth(l));
}

TEST(Ordering, MinDegreePermutationValid) {
  const Graph g = triangulated_grid(8, 8);
  const CsrMatrix l = laplacian(g);
  const auto order = min_degree_ordering(l);
  std::vector<Vertex> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < l.rows(); ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], static_cast<Vertex>(i));
  }
}

TEST(Ordering, PermuteSymmetricPreservesSpectrumSample) {
  Rng rng(6);
  const Graph g = erdos_renyi_connected(30, 90, rng);
  const CsrMatrix l = laplacian(g);
  const auto order = rcm_ordering(l);
  const CsrMatrix lp = permute_symmetric(l, order);
  // Quadratic forms agree under the permutation.
  const Vec x = rng.normal_vector(30);
  Vec xp(30);
  for (Index i = 0; i < 30; ++i) {
    xp[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  }
  EXPECT_NEAR(l.quadratic(x), lp.quadratic(xp), 1e-9);
  std::vector<Vertex> bad = {0, 0, 1};
  EXPECT_THROW((void)permute_symmetric(l, bad), std::invalid_argument);
}

TEST(EliminationTree, PathGraphIsChain) {
  // Natural-ordered path: etree parent of k is k+1.
  const Graph g = path_graph(6);
  const CsrMatrix l = laplacian(g);
  const auto parent = elimination_tree(l);
  for (Index k = 0; k + 1 < 6; ++k) {
    EXPECT_EQ(parent[static_cast<std::size_t>(k)], static_cast<Vertex>(k + 1));
  }
  EXPECT_EQ(parent[5], kInvalidVertex);
}

TEST(Cholesky, FactorsSpdAndSolves) {
  Rng rng(7);
  for (auto ordering : {CholeskyOptions::Ordering::kNatural,
                        CholeskyOptions::Ordering::kRcm,
                        CholeskyOptions::Ordering::kMinDegree}) {
    const Graph g =
        triangulated_grid(9, 9, WeightModel::uniform(0.5, 2.0), &rng);
    const CsrMatrix a = spd_matrix(g, 0.3);
    const SparseCholesky chol =
        SparseCholesky::factor(a, {.ordering = ordering});
    const Vec x_true = rng.normal_vector(a.rows());
    const Vec b = a.multiply(x_true);
    const Vec x = chol.solve(b);
    EXPECT_LT(relative_error(x, x_true), 1e-10)
        << "ordering " << static_cast<int>(ordering);
    EXPECT_GE(chol.factor_nnz(), a.rows());  // at least the diagonal
    EXPECT_GE(chol.fill_ratio(), 1.0 - 1e-12);
    EXPECT_GT(chol.memory_bytes(), 0u);
  }
}

TEST(Cholesky, MatchesDenseOracle) {
  Rng rng(8);
  const Graph g = erdos_renyi_connected(25, 80, rng,
                                        WeightModel::uniform(0.5, 3.0));
  const CsrMatrix a = spd_matrix(g, 1.0);
  const SparseCholesky chol = SparseCholesky::factor(a);
  DenseMatrix d = DenseMatrix::from_csr(a);
  const DenseMatrix d_saved = d;
  d.cholesky_in_place();
  for (int trial = 0; trial < 5; ++trial) {
    const Vec b = rng.normal_vector(a.rows());
    const Vec xs = chol.solve(b);
    const Vec xd = d.cholesky_solve(b);
    EXPECT_LT(relative_error(xs, xd), 1e-10);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  // Laplacian alone is singular: factoring it as SPD must fail.
  const Graph g = grid_2d(4, 4);
  const CsrMatrix l = laplacian(g);
  EXPECT_THROW((void)SparseCholesky::factor(l), std::runtime_error);
}

TEST(Cholesky, LaplacianModeSolvesPseudoinverse) {
  Rng rng(9);
  const Graph g =
      triangulated_grid(8, 8, WeightModel::log_uniform(0.1, 10.0), &rng);
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  EXPECT_EQ(chol.size(), l.rows());

  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);
  const Vec x = chol.solve(b);
  EXPECT_NEAR(mean(x), 0.0, 1e-12);
  EXPECT_LT(relative_error(l.multiply(x), b), 1e-10);

  // Unbalanced b handled by projection.
  Vec b2 = b;
  for (double& v : b2) v += 3.0;
  const Vec x2 = chol.solve(b2);
  EXPECT_LT(relative_error(x2, x), 1e-10);
}

TEST(Cholesky, LaplacianPinChoices) {
  Rng rng(10);
  const Graph g = grid_2d(6, 6);
  const CsrMatrix l = laplacian(g);
  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);
  const Vec x_default = SparseCholesky::factor_laplacian(l).solve(b);
  const Vec x_pin0 =
      SparseCholesky::factor_laplacian(l, {}, /*pin=*/0).solve(b);
  EXPECT_LT(relative_error(x_pin0, x_default), 1e-9);
  EXPECT_THROW(
      (void)SparseCholesky::factor_laplacian(l, {}, /*pin=*/99),
      std::invalid_argument);
}

TEST(Cholesky, PreconditionerAdapterWorks) {
  Rng rng(11);
  const Graph g = grid_2d(10, 10);
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
  const CholeskyPreconditioner pc(chol);
  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);
  Vec x(static_cast<std::size_t>(l.rows()), 0.0);
  // Exact preconditioner: PCG converges in O(1) iterations.
  const PcgResult res = pcg_solve(l, b, x, pc,
                                  {.max_iterations = 10,
                                   .rel_tolerance = 1e-10,
                                   .project_constants = true});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 3);
}

TEST(Amg, HierarchyShrinksAndSolves) {
  Rng rng(12);
  const Graph g = grid_2d(32, 32, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  const AmgHierarchy amg = AmgHierarchy::build(l);
  EXPECT_GT(amg.num_levels(), 1);
  EXPECT_LT(amg.operator_complexity(), 3.0);

  Vec x_true = rng.normal_vector(l.rows());
  project_out_mean(x_true);
  const Vec b = l.multiply(x_true);
  Vec x(static_cast<std::size_t>(l.rows()), 0.0);
  const Index cycles = amg.solve(b, x, 1e-8, 200);
  EXPECT_LT(cycles, 200);
  EXPECT_LT(relative_error(x, x_true), 1e-5);
}

TEST(Amg, PreconditionerAcceleratesPcg) {
  Rng rng(13);
  const Graph g = grid_2d(40, 40, WeightModel::log_uniform(0.1, 10.0), &rng);
  const CsrMatrix l = laplacian(g);
  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);
  const PcgOptions opts = {.max_iterations = 2000,
                           .rel_tolerance = 1e-8,
                           .project_constants = true};
  Vec x1(static_cast<std::size_t>(l.rows()), 0.0);
  const PcgResult plain = cg_solve(l, b, x1, opts);
  const AmgHierarchy amg = AmgHierarchy::build(l);
  const AmgPreconditioner ap(amg);
  Vec x2(static_cast<std::size_t>(l.rows()), 0.0);
  const PcgResult prec = pcg_solve(l, b, x2, ap, opts);
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations / 2);
}

TEST(Amg, TinyMatrixSingleLevel) {
  const Graph g = path_graph(4);
  const CsrMatrix l = laplacian(g);
  const AmgHierarchy amg = AmgHierarchy::build(l, {.coarse_size = 64});
  EXPECT_EQ(amg.num_levels(), 1);
  Vec b = {1.0, -1.0, 1.0, -1.0};
  Vec x(4, 0.0);
  amg.vcycle(b, x);
  const Vec lx = l.multiply(x);
  EXPECT_LT(relative_error(lx, b), 1e-6);  // direct coarse solve is exact
}

TEST(Amg, GaussSeidelSmootherConvergesFaster) {
  // Symmetric GS needs fewer V-cycles than weighted Jacobi for the same
  // tolerance (it is the stronger smoother; wall-time is another matter —
  // see the inner-solver ablation).
  Rng rng(99);
  const Graph g = grid_2d(24, 24, WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  Vec x_true = rng.normal_vector(l.rows());
  project_out_mean(x_true);
  const Vec b = l.multiply(x_true);

  const AmgHierarchy jac = AmgHierarchy::build(
      l, {.smoother = AmgOptions::Smoother::kJacobi});
  const AmgHierarchy gs = AmgHierarchy::build(
      l, {.smoother = AmgOptions::Smoother::kGaussSeidel});
  Vec xj(b.size(), 0.0);
  Vec xg(b.size(), 0.0);
  const Index cj = jac.solve(b, xj, 1e-8, 400);
  const Index cg = gs.solve(b, xg, 1e-8, 400);
  EXPECT_LT(cg, cj);
  EXPECT_LT(relative_error(xg, x_true), 1e-5);
  // GS smoothing keeps the V-cycle symmetric: valid as PCG preconditioner.
  const AmgPreconditioner pc(gs);
  Vec xp(b.size(), 0.0);
  const PcgResult pr = pcg_solve(l, b, xp, pc,
                                 {.max_iterations = 200,
                                  .rel_tolerance = 1e-8,
                                  .project_constants = true});
  EXPECT_TRUE(pr.converged);
}

TEST(Amg, SpdModeWorksWithoutProjection) {
  Rng rng(14);
  const Graph g = grid_2d(16, 16);
  const CsrMatrix a = spd_matrix(g, 0.5);
  const AmgHierarchy amg =
      AmgHierarchy::build(a, {.laplacian_mode = false});
  const Vec x_true = rng.normal_vector(a.rows());
  const Vec b = a.multiply(x_true);
  Vec x(static_cast<std::size_t>(a.rows()), 0.0);
  amg.solve(b, x, 1e-8, 300);
  EXPECT_LT(relative_error(x, x_true), 1e-5);
}

// Parameterized: Cholesky Laplacian-mode residual across graph families
// and orderings.

struct CholCase {
  const char* name;
  int graph_kind;
  CholeskyOptions::Ordering ordering;
};

class CholeskySweep : public ::testing::TestWithParam<CholCase> {};

TEST_P(CholeskySweep, GroundedLaplacianResidual) {
  const auto& p = GetParam();
  Rng rng(55);
  Graph g;
  switch (p.graph_kind) {
    case 0:
      g = grid_2d(11, 13);
      break;
    case 1:
      g = triangulated_grid(9, 9, WeightModel::log_uniform(0.1, 10.0), &rng);
      break;
    default:
      g = barabasi_albert(120, 3, rng);
      break;
  }
  const CsrMatrix l = laplacian(g);
  const SparseCholesky chol =
      SparseCholesky::factor_laplacian(l, {.ordering = p.ordering});
  Vec b = rng.normal_vector(l.rows());
  project_out_mean(b);
  const Vec x = chol.solve(b);
  EXPECT_LT(relative_error(l.multiply(x), b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, CholeskySweep,
    ::testing::Values(
        CholCase{"grid_rcm", 0, CholeskyOptions::Ordering::kRcm},
        CholCase{"grid_natural", 0, CholeskyOptions::Ordering::kNatural},
        CholCase{"grid_mindeg", 0, CholeskyOptions::Ordering::kMinDegree},
        CholCase{"tri_rcm", 1, CholeskyOptions::Ordering::kRcm},
        CholCase{"tri_mindeg", 1, CholeskyOptions::Ordering::kMinDegree},
        CholCase{"ba_rcm", 2, CholeskyOptions::Ordering::kRcm},
        CholCase{"ba_mindeg", 2, CholeskyOptions::Ordering::kMinDegree}),
    [](const ::testing::TestParamInfo<CholCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace ssp
