// Tests for the effective-resistance API (exact / JL sketch / tree bound)
// and the R-MAT generator — including the paper §2 property that a
// σ²-sparsifier preserves effective resistances within the σ² factor.

#include <gtest/gtest.h>

#include <cmath>

#include "core/effective_resistance.hpp"
#include "core/sparsifier.hpp"
#include "eigen/operators.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/cholesky.hpp"
#include "util/rng.hpp"

namespace ssp {
namespace {

TEST(EffectiveResistance, SeriesAndParallelLaws) {
  // Path 0-1-2 with conductances 2 and 4: R(0,2) = 1/2 + 1/4 = 0.75.
  Graph path(3);
  path.add_edge(0, 1, 2.0);
  path.add_edge(1, 2, 4.0);
  path.finalize();
  const SparseCholesky chol_p =
      SparseCholesky::factor_laplacian(laplacian(path));
  const LinOp solve_p = make_cholesky_op(chol_p);
  EXPECT_NEAR(effective_resistance(path, solve_p, 0, 2), 0.75, 1e-12);
  EXPECT_NEAR(effective_resistance(path, solve_p, 0, 1), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(effective_resistance(path, solve_p, 1, 1), 0.0);

  // Two parallel unit edges: R = 1/2.
  Graph par(2);
  par.add_edge(0, 1, 1.0);
  par.add_edge(0, 1, 1.0);
  par.finalize();
  const SparseCholesky chol_q =
      SparseCholesky::factor_laplacian(laplacian(par));
  const LinOp solve_q = make_cholesky_op(chol_q);
  EXPECT_NEAR(effective_resistance(par, solve_q, 0, 1), 0.5, 1e-12);
}

TEST(EffectiveResistance, SketchApproximatesExact) {
  Rng rng(1);
  const Graph g = grid_2d(9, 9, WeightModel::uniform(0.5, 2.0), &rng);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(laplacian(g));
  const LinOp solve = make_cholesky_op(chol);
  const ResistanceSketch sketch(g, solve, /*projections=*/160, rng);
  EXPECT_EQ(sketch.projections(), 160);
  // JL with k projections gives (1±eps) with eps ~ sqrt(8 ln n / k) —
  // loose check at 35%.
  for (const auto& [u, v] : std::vector<std::pair<Vertex, Vertex>>{
           {0, 80}, {3, 40}, {10, 11}, {0, 8}}) {
    const double exact = effective_resistance(g, solve, u, v);
    const double approx = sketch.query(u, v);
    EXPECT_NEAR(approx, exact, 0.35 * exact) << u << "," << v;
  }
  const Vec per_edge = sketch.all_edges();
  EXPECT_EQ(static_cast<EdgeId>(per_edge.size()), g.num_edges());
  for (double r : per_edge) EXPECT_GT(r, 0.0);
}

TEST(EffectiveResistance, TreeBoundIsUpperBound) {
  Rng rng(2);
  const Graph g = grid_2d(8, 8, WeightModel::log_uniform(0.2, 5.0), &rng);
  const SparseCholesky chol = SparseCholesky::factor_laplacian(laplacian(g));
  const LinOp solve = make_cholesky_op(chol);
  const Vec bound = tree_resistance_bound_all_edges(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const double exact = effective_resistance(g, solve, edge.u, edge.v);
    EXPECT_GE(bound[static_cast<std::size_t>(e)], exact - 1e-10)
        << "edge " << e;
  }
}

TEST(EffectiveResistance, SparsifierPreservesResistances) {
  // Paper §2: sparsifiers preserve effective resistances. Quantitatively:
  //   R_G(u,v) <= R_P(u,v) <= sigma^2 · R_G(u,v)
  // (P ⊆ G gives the lower bound by Rayleigh monotonicity; the pencil
  // bound gives the upper).
  Rng rng(3);
  const Graph g = grid_2d(12, 12, WeightModel::uniform(0.5, 2.0), &rng);
  const double sigma2 = 25.0;
  const SparsifyResult sp = sparsify(g, {.sigma2 = sigma2});
  const Graph p = sp.extract(g);

  const SparseCholesky chol_g =
      SparseCholesky::factor_laplacian(laplacian(g));
  const SparseCholesky chol_p =
      SparseCholesky::factor_laplacian(laplacian(p));
  const LinOp solve_g = make_cholesky_op(chol_g);
  const LinOp solve_p = make_cholesky_op(chol_p);

  for (int trial = 0; trial < 25; ++trial) {
    const auto u = static_cast<Vertex>(rng.uniform_int(0, 143));
    const auto v = static_cast<Vertex>(rng.uniform_int(0, 143));
    if (u == v) continue;
    const double rg = effective_resistance(g, solve_g, u, v);
    const double rp = effective_resistance(p, solve_p, u, v);
    EXPECT_GE(rp, rg * (1.0 - 1e-9));
    EXPECT_LE(rp, rg * sigma2 * 1.5);  // slack for estimator noise
  }
}

TEST(EffectiveResistance, InputValidation) {
  const Graph g = grid_2d(3, 3);
  const LinOp noop = [](std::span<const double>, std::span<double>) {};
  EXPECT_THROW((void)effective_resistance(g, noop, 0, 99),
               std::invalid_argument);
  Rng rng(4);
  EXPECT_THROW(ResistanceSketch(g, noop, 0, rng), std::invalid_argument);
}

TEST(Rmat, GeneratesPowerLawConnectedGraph) {
  Rng rng(5);
  const Graph g = rmat_graph(/*scale=*/10, /*edge_factor=*/8, rng);
  EXPECT_GT(g.num_vertices(), 200);  // largest component of 1024 vertices
  EXPECT_TRUE(is_connected(g));
  // Heavy-tailed: max degree far above the mean.
  Index dmax = 0;
  double dsum = 0.0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    dmax = std::max(dmax, g.degree(v));
    dsum += static_cast<double>(g.degree(v));
  }
  const double dmean = dsum / g.num_vertices();
  EXPECT_GT(static_cast<double>(dmax), 6.0 * dmean);
}

TEST(Rmat, OptionsValidated) {
  Rng rng(6);
  EXPECT_THROW((void)rmat_graph(1, 8, rng), std::invalid_argument);
  EXPECT_THROW((void)rmat_graph(10, 0, rng), std::invalid_argument);
  RmatOptions bad;
  bad.a = 0.9;  // sums to > 1 with defaults
  EXPECT_THROW((void)rmat_graph(8, 4, rng, bad), std::invalid_argument);
}

TEST(Rmat, SparsifiesLikeOtherNetworks) {
  Rng rng(7);
  const Graph g = rmat_graph(11, 10, rng);
  const SparsifyResult res = sparsify(g, {.sigma2 = 100.0});
  EXPECT_TRUE(res.reached_target);
  EXPECT_TRUE(is_connected(res.extract(g)));
  EXPECT_LT(res.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace ssp
