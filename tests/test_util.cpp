// Unit tests for src/util: RNG determinism and distributions, union-find
// invariants, timers, and descriptive statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/union_find.hpp"

namespace ssp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 6.0, 0.05 * draws / 6.0);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(17, 17), 17);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, RademacherBalanced) {
  Rng rng(17);
  int pos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.rademacher();
    ASSERT_TRUE(x == 1.0 || x == -1.0);
    if (x > 0) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, VectorHelpersHaveRequestedLength) {
  Rng rng(23);
  EXPECT_EQ(rng.rademacher_vector(100).size(), 100u);
  EXPECT_EQ(rng.normal_vector(64).size(), 64u);
  EXPECT_TRUE(rng.rademacher_vector(0).empty());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));  // overwhelmingly
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitIsDeterministicAndDoesNotAdvanceParent) {
  Rng parent_a(7);
  Rng parent_b(7);
  // Same parent state + same stream id => identical child sequences.
  Rng child_a = parent_a.split(3);
  Rng child_b = parent_b.split(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child_a(), child_b());
  // The parent's own sequence is untouched by split().
  for (int i = 0; i < 32; ++i) EXPECT_EQ(parent_a(), parent_b());
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(42);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0() == s1()) ++agree;
  }
  EXPECT_EQ(agree, 0);  // adjacent ids must not collide
  // A different parent state yields different streams for the same id.
  (void)parent();
  Rng s0_shifted = parent.split(0);
  Rng s0_again = Rng(42).split(0);
  EXPECT_NE(s0_shifted(), s0_again());
}

TEST(Parallel, DefaultThreadsResolution) {
  EXPECT_GE(hardware_threads(), 1);
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3);
  EXPECT_EQ(resolve_threads(0), 3);
  EXPECT_EQ(resolve_threads(7), 7);
  set_default_threads(0);  // restore env/hardware default
  EXPECT_GE(default_threads(), 1);
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 9}) {
    std::vector<int> hits(1000, 0);
    parallel_for(0, 1000, threads,
                 [&](Index i) { ++hits[static_cast<std::size_t>(i)]; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << "threads=" << threads;
  }
  // Empty and tiny ranges are fine.
  parallel_for(5, 5, 4, [](Index) { FAIL() << "empty range ran a body"; });
  int tiny = 0;
  parallel_for(0, 1, 8, [&](Index) { ++tiny; });
  EXPECT_EQ(tiny, 1);
}

TEST(Parallel, ChunkDecompositionIsAPureFunctionOfRangeAndCount) {
  // Chunk boundaries must not depend on scheduling: record them twice and
  // compare. Contiguity + coverage is also pinned here.
  const auto record = [](Index n, int chunks) {
    std::vector<std::pair<Index, Index>> bounds(
        static_cast<std::size_t>(chunks), {-1, -1});
    parallel_for_chunks(0, n, chunks, [&](int c, Index b, Index e) {
      bounds[static_cast<std::size_t>(c)] = {b, e};
    });
    return bounds;
  };
  for (int chunks : {1, 3, 4, 7}) {
    const auto a = record(101, chunks);
    const auto b = record(101, chunks);
    EXPECT_EQ(a, b);
    Index expected_begin = 0;
    for (const auto& [lo, hi] : a) {
      EXPECT_EQ(lo, expected_begin);  // contiguous, in chunk order
      EXPECT_GT(hi, lo);              // no empty chunks
      expected_begin = hi;
    }
    EXPECT_EQ(expected_begin, 101);  // full coverage
  }
}

TEST(Parallel, NestedRegionsRunInlineWithoutDeadlock) {
  std::vector<int> hits(64, 0);
  parallel_for(0, 8, 4, [&](Index outer) {
    parallel_for(0, 8, 4, [&](Index inner) {
      ++hits[static_cast<std::size_t>(outer * 8 + inner)];
    });
  });
  EXPECT_TRUE(
      std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(Parallel, LowestIndexedChunkExceptionWins) {
  try {
    parallel_for_chunks(0, 100, 4, [](int chunk, Index, Index) {
      if (chunk >= 1) {
        throw std::runtime_error("chunk " + std::to_string(chunk));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");  // deterministic: lowest index
  }
}

TEST(Parallel, ThreadPoolRejectsBadConfig) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  ThreadPool pool(2);
  EXPECT_EQ(pool.workers(), 2);
  EXPECT_THROW(
      pool.run_chunks(0, 4, 0, [](int, Index, Index) {}),
      std::invalid_argument);
}

TEST(UnionFind, SingletonsAtStart) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_EQ(uf.num_sets(), 4);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_TRUE(uf.same(1, 3));
  EXPECT_EQ(uf.size_of(3), 4);
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFind, TransitivityProperty) {
  // Property: after uniting chains, all chain members share a root.
  UnionFind uf(100);
  for (Index i = 0; i + 1 < 100; i += 2) uf.unite(i, i + 1);
  for (Index i = 0; i + 3 < 100; i += 4) uf.unite(i, i + 2);
  for (Index i = 0; i + 3 < 100; i += 4) {
    EXPECT_TRUE(uf.same(i, i + 3));
  }
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW((void)uf.find(3), std::invalid_argument);
  EXPECT_THROW((void)uf.find(-1), std::invalid_argument);
}

TEST(UnionFind, ResetRestoresSingletonsAndResizes) {
  UnionFind uf(4);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.reset(4);  // same size: storage reused, state cleared
  EXPECT_EQ(uf.num_sets(), 4);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1);
  }
  uf.reset(6);  // growing re-seeds the new tail as singletons too
  EXPECT_EQ(uf.num_sets(), 6);
  EXPECT_TRUE(uf.unite(4, 5));
  EXPECT_FALSE(uf.same(0, 4));
  uf.reset(2);
  EXPECT_EQ(uf.num_elements(), 2);
  EXPECT_THROW((void)uf.find(2), std::invalid_argument);
  EXPECT_THROW(uf.reset(-1), std::invalid_argument);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double x = 0.0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  const double first = t.milliseconds();
  EXPECT_GE(t.milliseconds(), first);  // monotone non-decreasing
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
  EXPECT_THROW((void)percentile(xs, 1.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

TEST(Stats, SortedSeriesEndpoints) {
  std::vector<double> xs(100);
  std::iota(xs.begin(), xs.end(), 0.0);
  const auto series = sorted_series(xs, 5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front(), 99.0);  // descending series
  EXPECT_DOUBLE_EQ(series.back(), 0.0);
  EXPECT_TRUE(std::is_sorted(series.rbegin(), series.rend()));
}

TEST(Assert, RequireThrowsInvalidArgument) {
  EXPECT_THROW(SSP_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(SSP_REQUIRE(true, "fine"));
}

TEST(Assert, AssertThrowsInternalError) {
  EXPECT_THROW(SSP_ASSERT(false, "bug"), InternalError);
  EXPECT_NO_THROW(SSP_ASSERT(true, "fine"));
}

}  // namespace
}  // namespace ssp
