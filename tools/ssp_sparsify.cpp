// ssp_sparsify — sparsify a Matrix Market graph to a target σ² level.
//
//   ssp_sparsify --in graph.mtx --out sparsifier.mtx --sigma2 100
//
// Reads any SuiteSparse-style .mtx (converted per the paper's §4 rule),
// runs the similarity-aware pipeline, writes the sparsifier back as a
// symmetric .mtx, and prints a machine-greppable stats block.

#include <cstdio>
#include <exception>
#include <string>

#include "cli.hpp"
#include "core/sparsifier.hpp"
#include "graph/mtx_io.hpp"

namespace {

ssp::BackboneKind parse_backbone(const std::string& name) {
  if (name == "akpw") return ssp::BackboneKind::kAkpw;
  if (name == "kruskal") return ssp::BackboneKind::kMaxWeight;
  if (name == "spt") return ssp::BackboneKind::kShortestPath;
  throw std::invalid_argument("unknown backbone '" + name +
                              "' (akpw|kruskal|spt)");
}

}  // namespace

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_sparsify",
      "similarity-aware spectral sparsification of a Matrix Market graph");
  args.option("in", "input .mtx file (required)")
      .option("out", "output .mtx for the sparsifier (optional)")
      .option("sigma2", "target relative condition number", "100")
      .option("backbone", "spanning tree: akpw|kruskal|spt", "akpw")
      .option("power-steps", "embedding power iterations t", "2")
      .option("max-rounds", "densification round limit", "24")
      .option("seed", "random seed", "42");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const std::string in_path = args.require("in");
    const ssp::Graph g = ssp::load_graph_mtx(in_path);
    std::printf("loaded %s: |V| = %d, |E| = %lld\n", in_path.c_str(),
                g.num_vertices(), static_cast<long long>(g.num_edges()));

    ssp::SparsifyOptions opts;
    opts.sigma2 = args.get_double("sigma2", 100.0);
    opts.backbone = parse_backbone(args.get("backbone", "akpw"));
    opts.power_steps = static_cast<int>(args.get_int("power-steps", 2));
    opts.max_rounds = args.get_int("max-rounds", 24);
    opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const ssp::SparsifyResult res = ssp::sparsify(g, opts);
    std::printf("edges: %lld  density: %.4f x |V|\n",
                static_cast<long long>(res.num_edges()),
                static_cast<double>(res.num_edges()) / g.num_vertices());
    std::printf("sigma2: target %.3f, estimate %.3f (%s)\n", opts.sigma2,
                res.sigma2_estimate,
                res.reached_target ? "reached" : "NOT reached");
    std::printf("lambda_min %.6f lambda_max %.3f rounds %zu time %.3fs\n",
                res.lambda_min, res.lambda_max, res.rounds.size(),
                res.total_seconds);

    if (args.has("out")) {
      const ssp::Graph p = res.extract(g);
      ssp::save_graph_mtx(args.get("out", ""), p);
      std::printf("wrote %s\n", args.get("out", "").c_str());
    }
    return res.reached_target ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
}
