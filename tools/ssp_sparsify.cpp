// ssp_sparsify — sparsify a Matrix Market graph to a target σ² level.
//
//   ssp_sparsify --in graph.mtx --out sparsifier.mtx --sigma2 100
//
// Reads any SuiteSparse-style .mtx (converted per the paper's §4 rule),
// runs the similarity-aware pipeline through the staged ssp::Sparsifier
// engine, writes the sparsifier back as a symmetric .mtx, and prints a
// machine-greppable stats block. --progress streams per-round telemetry
// (and per-stage wall times with --progress=stages) via a StageObserver.

#include <cstdio>
#include <exception>
#include <string>

#include "cli.hpp"
#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "graph/mtx_io.hpp"
#include "util/parallel.hpp"

namespace {

/// Streams engine telemetry to stdout as rounds/stages complete.
class ProgressPrinter : public ssp::StageObserver {
 public:
  explicit ProgressPrinter(bool show_stages) : show_stages_(show_stages) {}

  bool on_round(const ssp::DensifyRound& r) override {
    std::printf("round %3lld  sigma2 %10.2f  theta %8.3e  added %6lld  "
                "%.3fs\n",
                static_cast<long long>(r.round), r.sigma2_estimate, r.theta,
                static_cast<long long>(r.edges_added), r.seconds);
    return true;
  }
  void on_stage(ssp::StageKind stage, double seconds) override {
    if (show_stages_) {
      std::printf("  stage %-17s %.4fs\n", ssp::to_string(stage), seconds);
    }
  }

 private:
  bool show_stages_;
};

}  // namespace

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_sparsify",
      "similarity-aware spectral sparsification of a Matrix Market graph");
  args.option("in", "input .mtx file (required)")
      .option("out", "output .mtx for the sparsifier (optional)")
      .option("sigma2", "target relative condition number", "100")
      .option("backbone", "spanning tree: akpw|kruskal|spt", "akpw")
      .option("power-steps", "embedding power iterations t", "2")
      .option("num-vectors", "embedding vectors r (0 = auto)", "0")
      .option("max-rounds", "densification round limit", "24")
      .option("max-edges-per-round", "per-round edge cap (0 = adaptive)", "0")
      .option("similarity", "batch policy: none|node-disjoint|bounded",
              "node-disjoint")
      .option("node-cap", "per-endpoint budget (similarity=bounded)", "2")
      .option("inner-solver", "L_P solver: tree-pcg|amg", "tree-pcg")
      .option("solver-tolerance", "relative tolerance of inner solves",
              "1e-4")
      .option("progress", "stream per-round telemetry (=stages for more)")
      .option("threads",
              "worker threads; results are bit-identical for every value "
              "(0 = SSP_THREADS env or hardware concurrency)",
              "0")
      .option("seed", "random seed", "42");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const int threads = static_cast<int>(args.get_int("threads", 0));
    ssp::set_default_threads(threads);
    const std::string in_path = args.require("in");
    const ssp::Graph g = ssp::load_graph_mtx(in_path);
    std::printf("loaded %s: |V| = %d, |E| = %lld\n", in_path.c_str(),
                g.num_vertices(), static_cast<long long>(g.num_edges()));

    const auto opts =
        ssp::SparsifyOptions{}
            .with_sigma2(args.get_double("sigma2", 100.0))
            .with_backbone(
                ssp::parse_backbone_kind(args.get("backbone", "akpw")))
            .with_power_steps(
                static_cast<int>(args.get_int("power-steps", 2)))
            .with_num_vectors(args.get_int("num-vectors", 0))
            .with_max_rounds(args.get_int("max-rounds", 24))
            .with_max_edges_per_round(args.get_int("max-edges-per-round", 0))
            .with_similarity(ssp::parse_similarity_policy(
                args.get("similarity", "node-disjoint")))
            .with_node_cap(args.get_int("node-cap", 2))
            .with_inner_solver(ssp::parse_inner_solver_kind(
                args.get("inner-solver", "tree-pcg")))
            .with_solver_tolerance(
                args.get_double("solver-tolerance", 1e-4))
            .with_threads(threads)
            .with_seed(
                static_cast<std::uint64_t>(args.get_int("seed", 42)));

    ssp::Sparsifier engine(g, opts);
    ProgressPrinter progress(args.get("progress", "") == "stages");
    if (args.has("progress")) engine.set_observer(&progress);
    engine.run();
    const ssp::SparsifyResult& res = engine.result();

    std::printf("edges: %lld  density: %.4f x |V|\n",
                static_cast<long long>(res.num_edges()),
                static_cast<double>(res.num_edges()) / g.num_vertices());
    std::printf("sigma2: target %.3f, estimate %.3f (%s)\n", opts.sigma2,
                res.sigma2_estimate,
                res.reached_target ? "reached" : "NOT reached");
    std::printf("lambda_min %.6f lambda_max %.3f rounds %zu time %.3fs\n",
                res.lambda_min, res.lambda_max, res.rounds.size(),
                res.total_seconds);

    if (args.has("out")) {
      const ssp::Graph p = res.extract(g);
      ssp::save_graph_mtx(args.get("out", ""), p);
      std::printf("wrote %s\n", args.get("out", "").c_str());
    }
    return res.reached_target ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
}
