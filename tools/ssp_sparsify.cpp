// ssp_sparsify — sparsify a graph to a target σ² level.
//
//   ssp_sparsify --in graph.mtx --out sparsifier.mtx --sigma2 100
//   ssp_sparsify --in graph.mtx --partitions 8 --cut-policy filter
//   ssp_sparsify --in graph.mtx --update-file updates.journal --out p.mtx
//   ssp_sparsify --in graph.sspb --memory-budget-mb 256 --out p.mtx
//
// `--in` accepts a SuiteSparse-style .mtx (converted per the paper's §4
// rule), a converted `.sspb` binary (ssp_convert; mmap-backed), or a
// `gen:<family>` generator spec. The graph runs through the staged
// ssp::Sparsifier engine — or, with --partitions k > 1, through the
// partition-parallel scale layer (one engine per block, concurrent,
// bit-identical for every --threads value) — or, with --update-file,
// through the dynamic update layer, replaying an insert/delete/reweight
// journal batch by batch and re-sparsifying incrementally after each
// commit — or, with --memory-budget-mb, through the out-of-core
// hierarchical layer, which keeps at most one leaf subgraph on the heap
// at a time (a `.sspb` input is never materialized whole). Writes the
// (final) sparsifier back as a symmetric .mtx and prints a
// machine-greppable stats block. --progress streams per-round /
// per-block / per-batch telemetry (per-stage wall times with
// --progress=stages).

#include <algorithm>
#include <cstdio>
#include <string>

#include "cli.hpp"
#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "dynamic/update_journal.hpp"
#include "graph/graph_source.hpp"
#include "graph/mtx_io.hpp"
#include "la/kernels/kernels.hpp"
#include "scale/hierarchical_sparsifier.hpp"
#include "scale/partitioned_sparsifier.hpp"
#include "storage/mapped_graph.hpp"

namespace {

/// Streams engine telemetry to stdout as rounds/stages complete.
class ProgressPrinter : public ssp::StageObserver {
 public:
  explicit ProgressPrinter(bool show_stages) : show_stages_(show_stages) {}

  bool on_round(const ssp::DensifyRound& r) override {
    std::printf("round %3lld  sigma2 %10.2f  theta %8.3e  added %6lld  "
                "%.3fs\n",
                static_cast<long long>(r.round), r.sigma2_estimate, r.theta,
                static_cast<long long>(r.edges_added), r.seconds);
    return true;
  }
  void on_stage(ssp::StageKind stage, double seconds) override {
    if (show_stages_) {
      std::printf("  stage %-17s %.4fs\n", ssp::to_string(stage), seconds);
    }
  }

 private:
  bool show_stages_;
};

/// Streams scale-layer telemetry: one line per pipeline stage and per
/// block (engine stage breakdown with --progress=stages).
class ScaleProgressPrinter : public ssp::ScaleObserver {
 public:
  explicit ScaleProgressPrinter(bool show_stages)
      : show_stages_(show_stages) {}

  void on_scale_stage(ssp::ScaleStage stage, double seconds) override {
    std::printf("stage %-14s %.4fs\n", ssp::to_string(stage), seconds);
  }
  void on_block(const ssp::BlockStats& b) override {
    if (b.block == ssp::kCutBlock) {
      std::printf("  cut    |V| %7d |E| %8lld kept %8lld  sigma2 %8.2f  "
                  "%.3fs\n",
                  b.vertices, static_cast<long long>(b.edges),
                  static_cast<long long>(b.kept_edges), b.sigma2_estimate,
                  b.seconds);
    } else {
      std::printf("  block %2lld |V| %7d |E| %8lld kept %8lld  sigma2 %8.2f"
                  "  %.3fs%s\n",
                  static_cast<long long>(b.block), b.vertices,
                  static_cast<long long>(b.edges),
                  static_cast<long long>(b.kept_edges), b.sigma2_estimate,
                  b.seconds, b.reached_target ? "" : "  (NOT reached)");
    }
    if (show_stages_) {
      for (int s = 0; s < ssp::kNumStageKinds; ++s) {
        const double sec = b.stage_seconds[static_cast<std::size_t>(s)];
        if (sec > 0.0) {
          std::printf("    stage %-17s %.4fs\n",
                      ssp::to_string(static_cast<ssp::StageKind>(s)), sec);
        }
      }
    }
  }

 private:
  bool show_stages_;
};

int run_whole_graph(const ssp::cli::ArgParser& args, const ssp::Graph& g,
                    const ssp::SparsifyOptions& opts) {
  ssp::Sparsifier engine(g, opts);
  ProgressPrinter progress(args.get("progress", "") == "stages");
  if (args.has("progress")) engine.set_observer(&progress);
  engine.run();
  const ssp::SparsifyResult& res = engine.result();

  std::printf("edges: %lld  density: %.4f x |V|\n",
              static_cast<long long>(res.num_edges()),
              static_cast<double>(res.num_edges()) / g.num_vertices());
  std::printf("sigma2: target %.3f, estimate %.3f (%s)\n", opts.sigma2,
              res.sigma2_estimate,
              res.reached_target ? "reached" : "NOT reached");
  std::printf("lambda_min %.6f lambda_max %.3f rounds %zu time %.3fs\n",
              res.lambda_min, res.lambda_max, res.rounds.size(),
              res.total_seconds);

  if (args.has("out")) {
    const ssp::Graph p = res.extract(g);
    ssp::save_graph_mtx(args.get("out", ""), p);
    std::printf("wrote %s\n", args.get("out", "").c_str());
  }
  return res.reached_target ? 0 : 2;
}

int run_partitioned(const ssp::cli::ArgParser& args, const ssp::Graph& g,
                    const ssp::PartitionedOptions& opts) {
  ssp::PartitionedSparsifier driver(g, opts);
  ScaleProgressPrinter progress(args.get("progress", "") == "stages");
  if (args.has("progress")) driver.set_observer(&progress);
  const ssp::PartitionedResult& res = driver.run();

  std::printf("edges: %lld  density: %.4f x |V|\n",
              static_cast<long long>(res.num_edges()),
              static_cast<double>(res.num_edges()) / g.num_vertices());
  std::printf("blocks: %lld (policy %s)  cut edges kept %lld / %lld\n",
              static_cast<long long>(res.blocks),
              ssp::to_string(res.cut_policy),
              static_cast<long long>(res.cut_edges_kept),
              static_cast<long long>(res.cut_edges_total));
  bool reached = true;
  double worst_sigma2 = 0.0;
  for (const ssp::BlockStats& b : res.block_stats) {
    reached = reached && b.reached_target;
    worst_sigma2 = std::max(worst_sigma2, b.sigma2_estimate);
  }
  if (res.cut_stats.has_value()) {
    reached = reached && res.cut_stats->reached_target;
  }
  std::printf("block sigma2: target %.3f, worst estimate %.3f (%s)\n",
              opts.block.sigma2, worst_sigma2,
              reached ? "reached" : "NOT reached");
  if (res.quality.has_value()) {
    std::printf("global: lambda_min %.6f lambda_max %.3f sigma2 %.3f\n",
                res.quality->lambda_min, res.quality->lambda_max,
                res.quality->sigma2);
  }
  if (res.rescaled.has_value()) {
    std::printf("rescale: scale %.6e, two-sided sigma2 %.3f -> %.3f\n",
                res.rescaled->scale, res.rescaled->sigma2_before,
                res.rescaled->sigma2_after);
  }
  std::printf("time %.3fs\n", res.total_seconds);

  if (args.has("out")) {
    const ssp::Graph p = res.rescaled.has_value() ? res.rescaled->sparsifier
                                                  : res.extract(g);
    ssp::save_graph_mtx(args.get("out", ""), p);
    std::printf("wrote %s\n", args.get("out", "").c_str());
  }
  return reached ? 0 : 2;
}

/// Materializes the sparsifier `edges` of a view as a finalized heap
/// graph in the listed order — the view-side twin of
/// `Graph::edge_subgraph`, so the written .mtx is byte-identical between
/// the heap and mmap paths for the same edge list.
ssp::Graph extract_from_view(const ssp::GraphView& v,
                             const std::vector<ssp::EdgeId>& edges) {
  ssp::Graph p(v.num_vertices());
  for (const ssp::EdgeId e : edges) {
    const ssp::Edge ed = v.edge(e);
    p.add_edge(ed.u, ed.v, ed.weight);
  }
  p.finalize();
  return p;
}

int report_outofcore(const ssp::cli::ArgParser& args, const ssp::GraphView& v,
                     const ssp::HierarchicalOptions& opts,
                     const ssp::HierarchicalResult& res) {
  std::printf("edges: %lld  density: %.4f x |V|\n",
              static_cast<long long>(res.num_edges()),
              static_cast<double>(res.num_edges()) / v.num_vertices());
  std::printf("leaves: %lld (depth %lld%s)  cut edges kept %lld\n",
              static_cast<long long>(res.leaves),
              static_cast<long long>(res.depth),
              res.whole_graph ? ", whole-graph" : "",
              static_cast<long long>(res.cut_edges));
  bool reached = true;
  double worst_sigma2 = 0.0;
  for (const ssp::BlockStats& b : res.leaf_stats) {
    reached = reached && b.reached_target;
    worst_sigma2 = std::max(worst_sigma2, b.sigma2_estimate);
  }
  std::printf("leaf sigma2: target %.3f, worst estimate %.3f (%s)\n",
              opts.block.sigma2, worst_sigma2,
              reached ? "reached" : "NOT reached");
  std::printf("time %.3fs\n", res.total_seconds);

  if (args.has("out")) {
    const ssp::Graph p = extract_from_view(v, res.edges);
    ssp::save_graph_mtx(args.get("out", ""), p);
    std::printf("wrote %s\n", args.get("out", "").c_str());
  }
  return reached ? 0 : 2;
}

/// Out-of-core routing: a `.sspb` input stays mmap'd (pages released
/// between leaves); other sources load once onto the heap and run through
/// the same hierarchy, so the budget still bounds the per-leaf engines.
int run_outofcore(const ssp::cli::ArgParser& args, const std::string& in_path,
                  const ssp::SparsifyOptions& base) {
  const ssp::HierarchicalOptions opts =
      ssp::cli::hierarchical_options_from(args, base);
  ScaleProgressPrinter progress(args.get("progress", "") == "stages");
  if (ssp::classify_graph_source(in_path) == ssp::GraphSourceKind::kSspb) {
    const ssp::storage::MappedGraph mapped(in_path);
    std::printf("mapped %s: |V| = %d, |E| = %lld (%llu bytes)\n",
                in_path.c_str(), mapped.num_vertices(),
                static_cast<long long>(mapped.num_edges()),
                static_cast<unsigned long long>(mapped.file_bytes()));
    ssp::HierarchicalSparsifier driver(mapped.view(), opts);
    driver.set_release_hook([&mapped] { mapped.release_pages(); });
    if (args.has("progress")) driver.set_observer(&progress);
    return report_outofcore(args, mapped.view(), opts, driver.run());
  }
  const ssp::Graph g = ssp::load_graph_source(in_path);
  std::printf("loaded %s: |V| = %d, |E| = %lld\n", in_path.c_str(),
              g.num_vertices(), static_cast<long long>(g.num_edges()));
  ssp::HierarchicalSparsifier driver(g, opts);
  if (args.has("progress")) driver.set_observer(&progress);
  return report_outofcore(args, g, opts, driver.run());
}

/// Streams dynamic-layer telemetry: one line per applied batch (stage
/// breakdown with --progress=stages).
class DynamicProgressPrinter : public ssp::DynamicObserver {
 public:
  explicit DynamicProgressPrinter(bool show_stages)
      : show_stages_(show_stages) {}

  void on_dynamic_stage(ssp::DynamicStage stage, double seconds) override {
    if (show_stages_) {
      std::printf("  stage %-12s %.4fs\n", ssp::to_string(stage), seconds);
    }
  }
  void on_update(const ssp::UpdateStats& s) override {
    std::printf("batch %3lld  %-11s +%lld -%lld ~%lld  dirty %.4f  "
                "swaps %lld  |Es| %lld  sigma2 %8.2f%s  %.3fs\n",
                static_cast<long long>(s.batch), ssp::to_string(s.route),
                static_cast<long long>(s.inserted),
                static_cast<long long>(s.removed),
                static_cast<long long>(s.reweighted), s.dirty_fraction,
                static_cast<long long>(s.tree_swaps),
                static_cast<long long>(s.sparsifier_edges),
                s.sigma2_estimate, s.reached_target ? "" : " (NOT reached)",
                s.seconds);
  }

 private:
  bool show_stages_;
};

int run_dynamic(const ssp::cli::ArgParser& args, const ssp::Graph& g,
                const ssp::SparsifyOptions& base) {
  // The dynamic layer pins the canonical kruskal (max-weight) backbone —
  // the one whose incremental repair equals a cold rebuild bit for bit —
  // so an explicit --backbone would be silently overridden; reject it.
  SSP_REQUIRE(!args.has("backbone"),
              "--update-file pins the canonical kruskal backbone; "
              "--backbone cannot be combined with it");
  const auto journal = ssp::load_update_journal(args.require("update-file"));
  DynamicProgressPrinter progress(args.get("progress", "") == "stages");
  // Observer attached at construction so the initial build (batch 0)
  // streams its telemetry too.
  ssp::DynamicSparsifier dyn(g, ssp::cli::dynamic_options_from(args, base),
                             args.has("progress") ? &progress : nullptr);
  for (const ssp::JournalBatch& batch : journal) {
    dyn.apply(ssp::resolve_journal_batch(dyn.graph(), batch));
  }
  const ssp::SparsifyResult& res = dyn.result();

  std::printf("batches: %lld (journal %zu)  graph edges: %lld\n",
              static_cast<long long>(dyn.batches_applied()), journal.size(),
              static_cast<long long>(dyn.graph().num_edges()));
  std::printf("edges: %lld  density: %.4f x |V|\n",
              static_cast<long long>(res.num_edges()),
              static_cast<double>(res.num_edges()) / g.num_vertices());
  std::printf("sigma2: target %.3f, estimate %.3f (%s)\n", base.sigma2,
              res.sigma2_estimate,
              res.reached_target ? "reached" : "NOT reached");
  double total_seconds = 0.0;
  for (const ssp::UpdateStats& s : dyn.history()) total_seconds += s.seconds;
  std::printf("time %.3fs\n", total_seconds);

  if (args.has("out")) {
    const ssp::Graph p = res.extract(dyn.graph());
    ssp::save_graph_mtx(args.get("out", ""), p);
    std::printf("wrote %s\n", args.get("out", "").c_str());
  }
  return res.reached_target ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_sparsify",
      "similarity-aware spectral sparsification of a Matrix Market graph");
  args.option("in", ssp::cli::kGraphSourceHelp)
      .option("out", "output .mtx for the sparsifier (optional)")
      .option("progress", "stream per-round telemetry (=stages for more)")
      .option("kernels", "print compiled/supported kernel backends and exit");
  ssp::cli::add_sparsify_options(args);
  ssp::cli::add_partition_options(args);
  ssp::cli::add_dynamic_options(args);
  ssp::cli::add_outofcore_options(args);
  ssp::cli::add_trace_option(args);
  return ssp::cli::run_tool(args, argc, argv, [&args] {
    if (args.has("kernels")) {
      // Capability probe for scripts (tests/kernel_parity.sh): one line
      // per compiled backend, "+" when the running CPU supports it, and
      // the backend SSP_KERNEL_BACKEND currently resolves to.
      for (ssp::kernels::Backend b : {ssp::kernels::Backend::kGeneric,
                                      ssp::kernels::Backend::kAvx2,
                                      ssp::kernels::Backend::kNeon}) {
        if (ssp::kernels::backend_compiled(b)) {
          std::printf("backend %s %s\n", ssp::kernels::backend_name(b),
                      ssp::kernels::backend_supported(b) ? "+" : "-");
        }
      }
      std::printf("active %s\n",
                  ssp::kernels::backend_name(ssp::kernels::active_backend()));
      return 0;
    }
    ssp::cli::apply_threads(args);
    // Spans/metrics record from here on; flushed below. Observability is
    // read-only telemetry — the emitted graph is bit-identical with or
    // without --trace.
    const std::string trace_path = ssp::cli::apply_trace(args);
    const std::string in_path = args.require("in");
    const ssp::SparsifyOptions opts = ssp::cli::sparsify_options_from(args);
    // Any scale-layer flag routes through PartitionedSparsifier (whose
    // k = 1 path is the whole-graph engine bit for bit), so
    // --estimate-quality / --rescale / --cut-policy are honoured — and
    // every scale flag, --partitions included, is validated.
    const bool partitioned = args.has("partitions") ||
                             args.has("cut-policy") ||
                             args.has("cut-sigma2") ||
                             args.has("estimate-quality") ||
                             args.has("rescale");
    const bool dynamic = args.has("update-file") ||
                         args.has("rebuild-threshold") ||
                         args.has("warm-refine");
    const bool outofcore = args.get_int("memory-budget-mb", 0) > 0;
    const int rc = [&]() -> int {
      if (outofcore) {
        SSP_REQUIRE(!partitioned && !dynamic,
                    "--memory-budget-mb routes through the out-of-core "
                    "hierarchical layer; it cannot be combined with "
                    "partition or update flags");
        return run_outofcore(args, in_path, opts);
      }
      const ssp::Graph g = ssp::load_graph_source(in_path);
      std::printf("loaded %s: |V| = %d, |E| = %lld\n", in_path.c_str(),
                  g.num_vertices(), static_cast<long long>(g.num_edges()));
      if (dynamic) {
        SSP_REQUIRE(!partitioned,
                    "--update-file replays through the whole-graph dynamic "
                    "layer; it cannot be combined with partition flags");
        return run_dynamic(args, g, opts);
      }
      if (partitioned) {
        return run_partitioned(
            args, g, ssp::cli::partitioned_options_from(args, opts));
      }
      return run_whole_graph(args, g, opts);
    }();
    if (!ssp::cli::finish_trace(trace_path) && rc == 0) return 1;
    return rc;
  });
}
