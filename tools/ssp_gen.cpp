// ssp_gen — generate the synthetic workload families used by the
// benchmarks as Matrix Market files (or `.sspb` binaries, picked by the
// --out extension), so external tools (or the other ssp_* tools) can
// consume identical graphs.
//
//   ssp_gen --family grid2d --nx 512 --ny 512 --weights log --out g.mtx
//   ssp_gen --family grid2d --nx 800 --ny 800 --out g.sspb
//
// Families: grid2d | grid2d8 | tri | grid3d | torus2d | torus3d | airfoil |
//           ba | ws | er | knn | planted.

#include <cstdio>
#include <exception>
#include <string>

#include "cli.hpp"
#include "graph/generators/airfoil.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/graph_source.hpp"
#include "graph/mtx_io.hpp"
#include "storage/sspb_io.hpp"
#include "util/parallel.hpp"

namespace {

using namespace ssp;

WeightModel parse_weights(const std::string& spec) {
  if (spec == "unit") return WeightModel::unit();
  if (spec == "uniform") return WeightModel::uniform(0.5, 2.0);
  if (spec == "log") return WeightModel::log_uniform(0.1, 10.0);
  if (spec == "wide-log") return WeightModel::log_uniform(1e-3, 1e3);
  throw std::invalid_argument("unknown weight model '" + spec +
                              "' (unit|uniform|log|wide-log)");
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("ssp_gen", "synthetic benchmark graph generator");
  args.option("family",
              "grid2d|grid2d8|tri|grid3d|torus2d|torus3d|airfoil|ba|ws|er|"
              "knn|planted (required)")
      .option("out", "output path, .mtx or .sspb by extension (required)")
      .option("nx", "grid x dimension", "128")
      .option("ny", "grid y dimension", "128")
      .option("nz", "grid z dimension", "16")
      .option("n", "vertex count (random families)", "10000")
      .option("m", "edges (er) / attachments (ba) / ring degree (ws)", "3")
      .option("k", "kNN neighbors / planted communities", "8")
      .option("dim", "point dimension (knn)", "3")
      .option("weights", "unit|uniform|log|wide-log", "unit");
  cli::add_execution_options(args);
  return cli::run_tool(args, argc, argv, [&args] {
    cli::apply_threads(args);
    const std::string family = args.require("family");
    const std::string out = args.require("out");
    Rng rng(cli::seed_from(args));
    const WeightModel w = parse_weights(args.get("weights", "unit"));
    const auto nx = static_cast<Vertex>(args.get_int("nx", 128));
    const auto ny = static_cast<Vertex>(args.get_int("ny", 128));
    const auto nz = static_cast<Vertex>(args.get_int("nz", 16));
    const auto n = static_cast<Vertex>(args.get_int("n", 10000));
    const auto m = args.get_int("m", 3);
    const auto k = args.get_int("k", 8);

    Graph g;
    if (family == "grid2d") {
      g = grid_2d(nx, ny, w, &rng);
    } else if (family == "grid2d8") {
      g = grid_2d_8(nx, ny, w, &rng);
    } else if (family == "tri") {
      g = triangulated_grid(nx, ny, w, &rng);
    } else if (family == "grid3d") {
      g = grid_3d(nx, ny, nz, w, &rng);
    } else if (family == "torus2d") {
      g = torus_2d(nx, ny, w, &rng);
    } else if (family == "torus3d") {
      g = torus_3d(nx, ny, nz, w, &rng);
    } else if (family == "airfoil") {
      g = joukowski_airfoil_mesh(nx, ny).graph;
    } else if (family == "ba") {
      g = barabasi_albert(n, static_cast<Vertex>(m), rng, w);
    } else if (family == "ws") {
      g = watts_strogatz(n, static_cast<Vertex>(m), 0.1, rng, w);
    } else if (family == "er") {
      g = erdos_renyi_connected(n, static_cast<EdgeId>(m) * n, rng, w);
    } else if (family == "knn") {
      const PointCloud pc = gaussian_mixture_points(
          n, args.get_int("dim", 3), 8, 0.05, rng);
      g = knn_graph(pc, k);
    } else if (family == "planted") {
      g = planted_partition(n, static_cast<Vertex>(k), 0.1, 0.005, rng, w);
    } else {
      throw std::invalid_argument("unknown family '" + family + "'");
    }
    // An .sspb extension writes the mmap-ready binary directly (same
    // bits `ssp_convert` would produce from the .mtx form).
    if (classify_graph_source(out) == GraphSourceKind::kSspb) {
      storage::write_sspb(out, g);
    } else {
      save_graph_mtx(out, g);
    }
    std::printf("wrote %s: |V| = %d, |E| = %lld\n", out.c_str(),
                g.num_vertices(), static_cast<long long>(g.num_edges()));
    return 0;
  });
}
