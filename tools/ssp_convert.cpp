// ssp_convert — convert a graph to the mmap-ready `.sspb` binary format
// (storage/binary_format.hpp), the input of the out-of-core paths.
//
//   ssp_convert --in graph.mtx --out graph.sspb
//   ssp_convert --in gen:grid2d:800x800 --out graph.sspb
//
// A Matrix Market input streams through the memory-lean converter
// (storage/sspb_io.hpp): ~16 bytes of transient memory per stored matrix
// entry + O(|V|), with the CSR bulk scattered straight into the mmap'd
// output — so graphs far larger than RAM convert without ever being a
// heap `Graph`. The result is bit-identical to `load_graph_mtx` (§4
// magnitude rule, coalesced edges, largest component kept). A `gen:` spec
// generates on the heap first, then serializes.

#include <cstdio>
#include <string>

#include "cli.hpp"
#include "graph/graph_source.hpp"
#include "storage/sspb_io.hpp"

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_convert", "convert .mtx / gen: graphs to the .sspb binary format");
  args.option("in", "input graph: .mtx file or generator spec gen:<family>:"
                    "... (required)")
      .option("out", "output .sspb path (required)");
  return ssp::cli::run_tool(args, argc, argv, [&args] {
    const std::string in_path = args.require("in");
    const std::string out_path = args.require("out");
    switch (ssp::classify_graph_source(in_path)) {
      case ssp::GraphSourceKind::kSspb:
        throw std::invalid_argument("ssp_convert: input '" + in_path +
                                    "' is already an .sspb file");
      case ssp::GraphSourceKind::kGenerator: {
        const ssp::Graph g = ssp::graph_from_spec(in_path);
        ssp::storage::write_sspb(out_path, g);
        std::printf("wrote %s: |V| = %d, |E| = %lld\n", out_path.c_str(),
                    g.num_vertices(),
                    static_cast<long long>(g.num_edges()));
        return 0;
      }
      case ssp::GraphSourceKind::kMtx:
        break;
    }
    const ssp::storage::ConvertStats stats =
        ssp::storage::convert_mtx_to_sspb(in_path, out_path);
    std::printf("wrote %s: |V| = %d, |E| = %lld (%llu bytes)\n",
                out_path.c_str(), stats.vertices,
                static_cast<long long>(stats.edges),
                static_cast<unsigned long long>(stats.file_bytes));
    if (stats.dropped_vertices > 0 || stats.dropped_edges > 0) {
      std::printf("kept largest component: dropped %d vertices, %lld "
                  "edges\n",
                  stats.dropped_vertices,
                  static_cast<long long>(stats.dropped_edges));
    }
    return 0;
  });
}
