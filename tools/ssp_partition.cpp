// ssp_partition — spectral bisection or k-way clustering of a Matrix
// Market graph.
//
//   ssp_partition --in graph.mtx --k 2 --solver sparsifier --out parts.txt
//
// k = 2 uses the Fiedler sign cut (Table 3 pipeline); k > 2 uses k-way
// spectral clustering (§4.4 pipeline). The output file lists one cluster
// id per line in vertex order.

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "cli.hpp"
#include "graph/mtx_io.hpp"
#include "partition/spectral_bisection.hpp"
#include "partition/spectral_clustering.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  ssp::cli::ArgParser args("ssp_partition",
                           "spectral partitioning / clustering");
  args.option("in", ssp::cli::kGraphSourceHelp)
      .option("k", "number of parts", "2")
      .option("solver", "direct|sparsifier (k=2 only)", "sparsifier")
      .option("sigma2", "sparsifier target", "200")
      .option("out", "output assignment file (optional)");
  ssp::cli::add_execution_options(args);
  return ssp::cli::run_tool(args, argc, argv, [&args] {
    ssp::cli::apply_threads(args);
    const ssp::Graph g = ssp::cli::load_graph_arg(args);
    const auto k = args.get_int("k", 2);
    std::printf("|V| = %d, |E| = %lld, k = %lld\n", g.num_vertices(),
                static_cast<long long>(g.num_edges()), k);

    std::vector<ssp::Vertex> assignment;
    if (k == 2) {
      ssp::BisectionOptions opts;
      opts.solver = args.get("solver", "sparsifier") == "direct"
                        ? ssp::FiedlerSolverKind::kDirectCholesky
                        : ssp::FiedlerSolverKind::kSparsifierPcg;
      opts.sparsify.with_sigma2(args.get_double("sigma2", 200.0));
      opts.seed = ssp::cli::seed_from(args);
      const ssp::BisectionResult res = ssp::spectral_bisection(g, opts);
      std::printf("cut weight %.4f over %lld edges, balance %.3f, "
                  "conductance %.5f\n",
                  res.metrics.cut_weight,
                  static_cast<long long>(res.metrics.cut_edges),
                  res.metrics.balance, res.metrics.conductance);
      std::printf("lambda2 %.6e, solve %.3fs (sparsify %.3fs)\n",
                  res.lambda2, res.solve_seconds, res.sparsify_seconds);
      assignment.assign(res.partition.begin(), res.partition.end());
    } else {
      ssp::SpectralClusteringOptions opts;
      opts.num_clusters = k;
      opts.seed = ssp::cli::seed_from(args);
      const ssp::SpectralClusteringResult res =
          ssp::spectral_clustering(g, opts);
      std::printf("k-means objective %.6f, eigensolver %.3fs, kmeans %.3fs\n",
                  res.kmeans_objective, res.eigensolver_seconds,
                  res.kmeans_seconds);
      assignment = res.assignment;
    }

    if (args.has("out")) {
      std::ofstream out(args.get("out", ""));
      for (ssp::Vertex c : assignment) out << c << '\n';
      std::printf("wrote %s\n", args.get("out", "").c_str());
    }
    return 0;
  });
}
