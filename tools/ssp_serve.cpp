// ssp_serve — long-running sparsification service over a line protocol.
//
//   ssp_serve --socket /tmp/ssp.sock --sigma2 100
//   ssp_serve --tcp 7077 --max-sessions 16 --max-queue 4
//
// A SessionManager owns many named graph sessions, each wrapping a
// DynamicSparsifier behind the update-journal grammar extended with
// session verbs (open/attach/close), read verbs (query, snapshot) and
// admission control (max sessions, max clients, per-session queue caps
// with backpressure responses). Any interleaving of client commits to one
// session yields a sparsifier bit-identical to replaying the session's
// committed journal offline through `ssp_sparsify --update-file`.
// SIGINT/SIGTERM drain gracefully: in-flight commits finish, responses
// are written, then connections close.

#include <csignal>
#include <cstdio>

#include "cli.hpp"
#include "serve/server.hpp"

namespace {

ssp::serve::Server* g_server = nullptr;

// Signal-safe: request_stop() only stores an atomic flag.
extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_serve",
      "multi-tenant sparsification service (unix socket or loopback TCP)");
  ssp::cli::add_serve_options(args);
  ssp::cli::add_sparsify_options(args);
  ssp::cli::add_dynamic_options(args);
  ssp::cli::add_trace_option(args);
  return ssp::cli::run_tool(args, argc, argv, [&args] {
    ssp::cli::apply_threads(args);
    // The daemon always keeps the metrics registry live so the `metrics`
    // and `stats` protocol verbs have data to report; --trace additionally
    // records spans. Telemetry only — commits stay bit-identical to the
    // offline replay either way.
    ssp::obs::set_metrics_enabled(true);
    const std::string trace_path = ssp::cli::apply_trace(args);
    const ssp::SparsifyOptions base = ssp::cli::sparsify_options_from(args);
    const ssp::DynamicOptions dynamic =
        ssp::cli::dynamic_options_from(args, base);
    ssp::serve::Server server(ssp::cli::serve_config_from(args, dynamic));

    g_server = &server;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    server.start();
    if (server.config().tcp_port >= 0) {
      std::printf("listening on 127.0.0.1:%d\n", server.tcp_port());
    } else {
      std::printf("listening on %s\n", server.socket_path().c_str());
    }
    std::printf("sessions max %lld, queue max %lld, clients max %d\n",
                static_cast<long long>(server.config().serve.max_sessions),
                static_cast<long long>(
                    server.config().serve.max_queued_batches),
                server.config().max_clients);
    std::fflush(stdout);

    server.wait();
    g_server = nullptr;
    std::printf("drained, bye\n");
    return ssp::cli::finish_trace(trace_path) ? 0 : 1;
  });
}
