// ssp_client — scripted client for the ssp_serve line protocol.
//
//   ssp_client --socket /tmp/ssp.sock <<'EOF'
//   open g1 gen:grid2d:8x8
//   reweight 0 1 2.5
//   commit
//   query stats
//   EOF
//
// Reads request lines from stdin, sends each to the server, and prints
// every status line (and payload) to stdout. With --payload-only, only
// payload lines are printed — `query journal | ssp_client --payload-only`
// extracts a replayable journal directly. Exits non-zero when any request
// failed, so shell scripts can assert whole conversations.

#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "serve/client.hpp"

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_client", "scripted stdin client for the ssp_serve protocol");
  args.option("socket", "unix-domain socket path", "ssp_serve.sock")
      .option("tcp", "connect to 127.0.0.1:<port> instead of the unix socket")
      .option("payload-only",
              "print only payload lines (journal/edge extraction)");
  return ssp::cli::run_tool(args, argc, argv, [&args] {
    ssp::serve::ServeClient client =
        args.has("tcp")
            ? ssp::serve::ServeClient::connect_tcp(
                  static_cast<int>(args.get_int("tcp", 0)))
            : ssp::serve::ServeClient::connect_unix(
                  args.get("socket", "ssp_serve.sock"));
    const bool payload_only = args.get_bool("payload-only", false);

    int failures = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
      const ssp::serve::ClientResponse resp = client.request(line);
      if (!resp.ok()) ++failures;
      if (payload_only) {
        for (const std::string& p : resp.payload) std::printf("%s\n", p.c_str());
      } else {
        std::printf("%s\n", resp.status.c_str());
        for (const std::string& p : resp.payload) std::printf("%s\n", p.c_str());
      }
      if (resp.status == "ok bye") break;
    }
    std::fflush(stdout);
    return failures == 0 ? 0 : 1;
  });
}
