// ssp_client — scripted client for the ssp_serve line protocol.
//
//   ssp_client --socket /tmp/ssp.sock <<'EOF'
//   open g1 gen:grid2d:8x8
//   reweight 0 1 2.5
//   commit
//   query stats
//   EOF
//
// Reads request lines from stdin, sends each to the server, and prints
// every status line (and payload) to stdout. With --payload-only, only
// payload lines are printed — `query journal | ssp_client --payload-only`
// extracts a replayable journal directly. Exits non-zero when any request
// failed, so shell scripts can assert whole conversations.
//
// With --metrics, stdin is ignored: the client sends one `metrics`
// request and prints the server's registry snapshot in Prometheus text
// exposition format (name sanitized to [a-zA-Z0-9_], prefixed `ssp_`),
// ready for a textfile collector or `curl`-style scrape wrapper.

#include <cctype>
#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "serve/client.hpp"

namespace {

// "serve.commit.latency_us.p99" -> "ssp_serve_commit_latency_us_p99".
std::string prometheus_name(const std::string& name) {
  std::string out = "ssp_";
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(uc) != 0 ? c : '_');
  }
  return out;
}

// One `metrics` round trip, reformatted for Prometheus scrapers. The
// server payload is "<name> <value>" lines; everything after the first
// space is the value expression.
int run_metrics_oneshot(ssp::serve::ServeClient& client) {
  const ssp::serve::ClientResponse resp = client.request("metrics");
  if (!resp.ok()) {
    std::fprintf(stderr, "ssp_client: %s\n", resp.status.c_str());
    return 1;
  }
  for (const std::string& line : resp.payload) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;  // malformed line; skip
    std::printf("%s %s\n", prometheus_name(line.substr(0, space)).c_str(),
                line.c_str() + space + 1);
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ssp::cli::ArgParser args(
      "ssp_client", "scripted stdin client for the ssp_serve protocol");
  args.option("socket", "unix-domain socket path", "ssp_serve.sock")
      .option("tcp", "connect to 127.0.0.1:<port> instead of the unix socket")
      .option("payload-only",
              "print only payload lines (journal/edge extraction)")
      .option("metrics",
              "one-shot: fetch the server metrics registry and print it in "
              "Prometheus text format (stdin is not read)");
  return ssp::cli::run_tool(args, argc, argv, [&args] {
    ssp::serve::ServeClient client =
        args.has("tcp")
            ? ssp::serve::ServeClient::connect_tcp(
                  static_cast<int>(args.get_int("tcp", 0)))
            : ssp::serve::ServeClient::connect_unix(
                  args.get("socket", "ssp_serve.sock"));
    if (args.get_bool("metrics", false)) return run_metrics_oneshot(client);
    const bool payload_only = args.get_bool("payload-only", false);

    int failures = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
      const ssp::serve::ClientResponse resp = client.request(line);
      if (!resp.ok()) ++failures;
      if (payload_only) {
        for (const std::string& p : resp.payload) std::printf("%s\n", p.c_str());
      } else {
        std::printf("%s\n", resp.status.c_str());
        for (const std::string& p : resp.payload) std::printf("%s\n", p.c_str());
      }
      if (resp.status == "ok bye") break;
    }
    std::fflush(stdout);
    return failures == 0 ? 0 : 1;
  });
}
