// ssp_solve — solve the graph Laplacian system L x = b from a Matrix
// Market graph, with a selectable solver.
//
//   ssp_solve --in graph.mtx --method sparsifier --sigma2 50 --tol 1e-6
//
// Methods: cg | jacobi | ichol | tree | sparsifier | cholesky | amg.
// b defaults to a seeded random zero-mean vector (or --rhs file.mtx with
// an n×1 coordinate matrix).

#include <cstdio>
#include <exception>
#include <string>

#include "cli.hpp"
#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_preconditioner.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "graph/mtx_io.hpp"
#include "la/vector_ops.hpp"
#include "solver/amg.hpp"
#include "solver/cholesky.hpp"
#include "solver/ichol.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace ssp;

int main(int argc, char** argv) {
  cli::ArgParser args("ssp_solve",
                      "solve a graph Laplacian system");
  args.option("in", cli::kGraphSourceHelp)
      .option("method", "cg|jacobi|ichol|tree|sparsifier|cholesky|amg",
              "sparsifier")
      .option("sigma2", "sparsifier target (method=sparsifier)", "100")
      .option("inner-solver", "sparsifier inner solver: tree-pcg|amg",
              "tree-pcg")
      .option("tol", "relative residual tolerance", "1e-6")
      .option("max-iters", "PCG iteration limit", "5000");
  cli::add_execution_options(args, "random RHS seed");
  return cli::run_tool(args, argc, argv, [&args] {
    cli::apply_threads(args);
    const Graph g = cli::load_graph_arg(args);
    const CsrMatrix l = laplacian(g);
    Rng rng(cli::seed_from(args));
    Vec b = rng.normal_vector(g.num_vertices());
    project_out_mean(b);
    Vec x(b.size(), 0.0);

    const std::string method = args.get("method", "sparsifier");
    const PcgOptions popts = {
        .max_iterations = args.get_int("max-iters", 5000),
        .rel_tolerance = args.get_double("tol", 1e-6),
        .project_constants = true};

    std::printf("|V| = %d, |E| = %lld, method = %s\n", g.num_vertices(),
                static_cast<long long>(g.num_edges()), method.c_str());
    const WallTimer total;
    PcgResult res;
    if (method == "cg") {
      res = cg_solve(l, b, x, popts);
    } else if (method == "jacobi") {
      const JacobiPreconditioner m(l);
      res = pcg_solve(l, b, x, m, popts);
    } else if (method == "ichol") {
      // IC(0) needs an SPD matrix: ground vertex 0 through a unit leak.
      std::vector<Triplet> ts;
      for (Index r = 0; r < l.rows(); ++r) {
        const auto cols = l.row_cols(r);
        const auto vals = l.row_vals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          ts.push_back({r, cols[k], vals[k]});
        }
      }
      ts.push_back({0, 0, 1.0});
      const CsrMatrix grounded =
          CsrMatrix::from_triplets(l.rows(), l.cols(), ts);
      const IncompleteCholesky m(grounded);
      res = pcg_solve(l, b, x, m, popts);
    } else if (method == "tree") {
      const SpanningTree tree = max_weight_spanning_tree(g);
      const TreePreconditioner m(tree);
      res = pcg_solve(l, b, x, m, popts);
    } else if (method == "sparsifier") {
      // Note: --seed only drives the random RHS; the sparsifier build
      // keeps its default seed so iteration-count sweeps over RHS draws
      // compare against one fixed preconditioner.
      const auto sopts =
          SparsifyOptions{}
              .with_sigma2(args.get_double("sigma2", 100.0))
              .with_inner_solver(parse_inner_solver_kind(
                  args.get("inner-solver", "tree-pcg")));
      const SparsifyResult sp = sparsify(g, sopts);
      std::printf("sparsifier: %lld edges, sigma2 est %.2f, built in %.2fs\n",
                  static_cast<long long>(sp.num_edges()), sp.sigma2_estimate,
                  sp.total_seconds);
      const Graph p = sp.extract(g);
      const SparsifierPreconditioner m(p);
      res = pcg_solve(l, b, x, m, popts);
    } else if (method == "cholesky") {
      const SparseCholesky chol = SparseCholesky::factor_laplacian(l);
      chol.solve(b, x);
      res.converged = true;
      const Vec r = subtract(l.multiply(x), b);
      res.relative_residual = norm2(r) / norm2(b);
    } else if (method == "amg") {
      const AmgHierarchy amg = AmgHierarchy::build(l);
      res.iterations =
          amg.solve(b, x, popts.rel_tolerance, popts.max_iterations);
      const Vec r = subtract(l.multiply(x), b);
      res.relative_residual = norm2(r) / norm2(b);
      res.converged = res.relative_residual <= popts.rel_tolerance;
    } else {
      throw std::invalid_argument("unknown method '" + method + "'");
    }
    std::printf("%s in %lld iterations, rel residual %.3e, %.3fs total\n",
                res.converged ? "converged" : "NOT converged",
                static_cast<long long>(res.iterations),
                res.relative_residual, total.seconds());
    return res.converged ? 0 : 2;
  });
}
