#pragma once

/// \file cli.hpp
/// Minimal dependency-free command-line parsing for the ssp tools.
/// Supports `--flag`, `--key value` and `--key=value` forms, typed lookup
/// with defaults, required-argument checks, and usage text generation.

#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ssp::cli {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers an option (for usage text; parsing is lenient).
  ArgParser& option(const std::string& name, const std::string& help,
                    const std::string& default_value = "") {
    help_.push_back({name, help, default_value});
    return *this;
  }

  /// Parses argv. Throws std::invalid_argument on malformed input.
  /// Returns false when --help was requested (usage printed by caller).
  bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") return false;
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        continue;
      }
      // `--key value` unless the next token is another option or absent.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
    return true;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    return it->second;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key +
                                  " expects a number, got '" + it->second +
                                  "'");
    }
  }

  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key +
                                  " expects an integer, got '" + it->second +
                                  "'");
    }
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const {
    std::ostringstream os;
    os << program_ << " — " << description_ << "\n\noptions:\n";
    for (const auto& h : help_) {
      os << "  --" << h.name;
      if (!h.default_value.empty()) os << " (default: " << h.default_value << ")";
      os << "\n      " << h.help << "\n";
    }
    return os.str();
  }

 private:
  struct HelpEntry {
    std::string name;
    std::string help;
    std::string default_value;
  };
  std::string program_;
  std::string description_;
  std::vector<HelpEntry> help_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ssp::cli
