#pragma once

/// \file cli.hpp
/// Command-line parsing for the ssp tools. `ArgParser` supports `--flag`,
/// `--key value` and `--key=value` forms, typed lookup with defaults,
/// required-argument checks, and usage text generation; the helpers below
/// it declare each shared flag set exactly once (--threads/--seed, the
/// SparsifyOptions surface, and the partition-parallel
/// --partitions/--cut-policy group) so the four tools stay in sync.

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "graph/graph_source.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scale/hierarchical_sparsifier.hpp"
#include "scale/partitioned_sparsifier.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"

namespace ssp::cli {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers an option (for usage text; parsing is lenient).
  ArgParser& option(const std::string& name, const std::string& help,
                    const std::string& default_value = "") {
    help_.push_back({name, help, default_value});
    return *this;
  }

  /// Parses argv. Throws std::invalid_argument on malformed input.
  /// Returns false when --help was requested (usage printed by caller).
  bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") return false;
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        continue;
      }
      // `--key value` unless the next token is another option or absent.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
    return true;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    return it->second;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key +
                                  " expects a number, got '" + it->second +
                                  "'");
    }
  }

  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key +
                                  " expects an integer, got '" + it->second +
                                  "'");
    }
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const {
    std::ostringstream os;
    os << program_ << " — " << description_ << "\n\noptions:\n";
    for (const auto& h : help_) {
      os << "  --" << h.name;
      if (!h.default_value.empty()) os << " (default: " << h.default_value << ")";
      os << "\n      " << h.help << "\n";
    }
    return os.str();
  }

 private:
  struct HelpEntry {
    std::string name;
    std::string help;
    std::string default_value;
  };
  std::string program_;
  std::string description_;
  std::vector<HelpEntry> help_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// ---- Shared flag sets ------------------------------------------------------

/// Registers the execution flags every ssp tool carries: --threads and
/// --seed (with a tool-specific seed description).
inline ArgParser& add_execution_options(ArgParser& args,
                                        const char* seed_help =
                                            "random seed") {
  return args
      .option("threads",
              "worker threads; results are bit-identical for every value "
              "(0 = SSP_THREADS env or hardware concurrency)",
              "0")
      .option("seed", seed_help, "42");
}

/// Applies --threads to the process-wide default (before any parallel
/// path runs) and returns the parsed value.
inline int apply_threads(const ArgParser& args) {
  const int threads = static_cast<int>(args.get_int("threads", 0));
  set_default_threads(threads);
  return threads;
}

/// The parsed --seed value.
[[nodiscard]] inline std::uint64_t seed_from(const ArgParser& args) {
  return static_cast<std::uint64_t>(args.get_int("seed", 42));
}

/// Registers the shared observability flag: `--trace <out.json>` records
/// spans + metrics and writes a Chrome trace_event file on exit.
inline ArgParser& add_trace_option(ArgParser& args) {
  return args.option(
      "trace",
      "record spans and metrics, writing a chrome://tracing / Perfetto "
      "JSON trace here on exit (observability never changes output bytes)");
}

/// Applies --trace: enables the metrics registry and span recording,
/// returning the output path ("" = tracing off). Call before the
/// workload; pass the returned path to finish_trace() at tool exit.
[[nodiscard]] inline std::string apply_trace(const ArgParser& args) {
  const std::string path = args.has("trace") ? args.get("trace", "") : "";
  if (!path.empty() && path != "true") {
    obs::set_metrics_enabled(true);
    obs::start_trace();
    return path;
  }
  if (path == "true") {
    throw std::invalid_argument("option --trace expects an output path");
  }
  return "";
}

/// Flushes the trace recorded since apply_trace() to `path` (no-op when
/// empty). Returns false when the file could not be written.
inline bool finish_trace(const std::string& path) {
  if (path.empty()) return true;
  const bool ok = obs::write_trace_file(path);
  if (ok) std::fprintf(stderr, "trace: wrote %s\n", path.c_str());
  return ok;
}

/// Registers the full SparsifyOptions flag surface (plus --threads/--seed
/// via add_execution_options).
inline ArgParser& add_sparsify_options(ArgParser& args) {
  args.option("sigma2", "target relative condition number", "100")
      .option("backbone", "spanning tree: akpw|kruskal|spt", "akpw")
      .option("power-steps", "embedding power iterations t", "2")
      .option("num-vectors", "embedding vectors r (0 = auto)", "0")
      .option("max-rounds", "densification round limit", "24")
      .option("max-edges-per-round", "per-round edge cap (0 = adaptive)", "0")
      .option("similarity", "batch policy: none|node-disjoint|bounded",
              "node-disjoint")
      .option("node-cap", "per-endpoint budget (similarity=bounded)", "2")
      .option("inner-solver", "L_P solver: tree-pcg|amg", "tree-pcg")
      .option("solver-tolerance", "relative tolerance of inner solves",
              "1e-4");
  return add_execution_options(args);
}

/// Builds SparsifyOptions from the flags registered by
/// add_sparsify_options (validating eagerly via the with_* setters).
[[nodiscard]] inline SparsifyOptions sparsify_options_from(
    const ArgParser& args) {
  return SparsifyOptions{}
      .with_sigma2(args.get_double("sigma2", 100.0))
      .with_backbone(parse_backbone_kind(args.get("backbone", "akpw")))
      .with_power_steps(static_cast<int>(args.get_int("power-steps", 2)))
      .with_num_vectors(args.get_int("num-vectors", 0))
      .with_max_rounds(args.get_int("max-rounds", 24))
      .with_max_edges_per_round(args.get_int("max-edges-per-round", 0))
      .with_similarity(
          parse_similarity_policy(args.get("similarity", "node-disjoint")))
      .with_node_cap(args.get_int("node-cap", 2))
      .with_inner_solver(
          parse_inner_solver_kind(args.get("inner-solver", "tree-pcg")))
      .with_solver_tolerance(args.get_double("solver-tolerance", 1e-4))
      .with_threads(static_cast<int>(args.get_int("threads", 0)))
      .with_seed(seed_from(args));
}

/// Registers the partition-parallel flag group (src/scale/) — declared
/// once here for every tool that sparsifies.
inline ArgParser& add_partition_options(ArgParser& args) {
  return args
      .option("partitions",
              "partition-parallel blocks k (1 = whole-graph engine)", "1")
      .option("cut-policy",
              "inter-block edges: keep-all|filter|quotient", "filter")
      .option("cut-sigma2", "σ² target for the cut pass (0 = --sigma2)", "0")
      .option("estimate-quality",
              "estimate global (λ_min, λ_max, σ²) of the stitched sparsifier")
      .option("rescale",
              "apply the scalar rescale stage to the stitched sparsifier");
}

/// Builds PartitionedOptions from the flags registered by
/// add_partition_options, with `block` as the per-block engine options.
[[nodiscard]] inline PartitionedOptions partitioned_options_from(
    const ArgParser& args, const SparsifyOptions& block) {
  PartitionedOptions opts;
  opts.with_partitions(args.get_int("partitions", 1))
      .with_cut_policy(parse_cut_policy(args.get("cut-policy", "filter")))
      .with_block_options(block)
      .with_threads(block.threads)
      .with_estimate_quality(args.get_bool("estimate-quality", false))
      .with_rescale(args.get_bool("rescale", false));
  const double cut_sigma2 = args.get_double("cut-sigma2", 0.0);
  if (cut_sigma2 > 0.0) {
    opts.with_cut_options(SparsifyOptions(block).with_sigma2(cut_sigma2));
  }
  return opts;
}

/// Help text for the shared --in graph-source surface: a Matrix Market
/// path, a converted `.sspb` binary (mmap-backed), or a `gen:` spec
/// (graph/graph_source.hpp).
inline constexpr const char* kGraphSourceHelp =
    "input graph: .mtx file, .sspb binary (ssp_convert), or generator "
    "spec gen:<family>:... (required)";

/// Loads the tool's `--in` graph through the unified source resolver
/// (.mtx / .sspb / gen: spec) as a heap graph.
[[nodiscard]] inline Graph load_graph_arg(const ArgParser& args) {
  return load_graph_source(args.require("in"));
}

/// Registers the out-of-core flag group (scale/hierarchical_sparsifier.hpp).
inline ArgParser& add_outofcore_options(ArgParser& args) {
  return args
      .option("memory-budget-mb",
              "out-of-core mode: sparsify hierarchically, one leaf "
              "subgraph under this many MiB at a time (0 = in-core)", "0")
      .option("oc-max-depth",
              "out-of-core split recursion limit", "48");
}

/// Builds HierarchicalOptions from the flags registered by
/// add_outofcore_options, with `block` as the per-leaf engine options.
[[nodiscard]] inline HierarchicalOptions hierarchical_options_from(
    const ArgParser& args, const SparsifyOptions& block) {
  return HierarchicalOptions{}
      .with_memory_budget_bytes(
          static_cast<std::uint64_t>(args.get_int("memory-budget-mb", 0))
          << 20)
      .with_block_options(block)
      .with_threads(block.threads)
      .with_max_depth(args.get_int("oc-max-depth", 48));
}

/// Registers the dynamic-update flag group (src/dynamic/) — the
/// update-journal replay surface of ssp_sparsify.
inline ArgParser& add_dynamic_options(ArgParser& args) {
  return args
      .option("update-file",
              "replay an update journal (insert/delete/reweight/commit "
              "lines) through the dynamic layer")
      .option("rebuild-threshold",
              "dirty fraction that falls back to a cold rebuild", "0.25")
      .option("warm-refine",
              "keep the previous selection across updates (faster, "
              "spectrally equivalent, not bit-equal to a cold rebuild)");
}

/// Builds DynamicOptions from the flags registered by
/// add_dynamic_options, with `base` as the per-batch engine options.
[[nodiscard]] inline DynamicOptions dynamic_options_from(
    const ArgParser& args, const SparsifyOptions& base) {
  return DynamicOptions{}
      .with_base(base)
      .with_rebuild_threshold(args.get_double("rebuild-threshold", 0.25))
      .with_warm_refine(args.get_bool("warm-refine", false));
}

/// Registers the serving flag group (src/serve/) — the transport and
/// admission-control surface shared by ssp_serve and bench_serve.
inline ArgParser& add_serve_options(ArgParser& args) {
  return args
      .option("socket", "unix-domain socket path", "ssp_serve.sock")
      .option("tcp",
              "bind 127.0.0.1:<port> instead of the unix socket "
              "(0 = ephemeral port)")
      .option("max-sessions", "admission cap on open sessions", "64")
      .option("max-queue",
              "per-session queued-batch cap before commits get a "
              "backpressure response", "8")
      .option("max-clients", "admission cap on concurrent connections", "64")
      .option("max-line-bytes", "framing limit on one request line", "65536")
      .option("drain-timeout",
              "seconds wait() gives idle connections before force-closing "
              "them", "5")
      .option("state-dir",
              "persist sessions here (journal + checkpoint per session) "
              "and restore them warm on the next start; empty = off")
      .option("checkpoint-every",
              "with --state-dir: write a sparsifier checkpoint every N "
              "commits (a final one is written on graceful close)", "16");
}

/// Builds a validated serve::ServerConfig from the flags registered by
/// add_serve_options, with `dynamic` as the per-session engine options.
/// Throws std::invalid_argument on out-of-range values.
[[nodiscard]] inline serve::ServerConfig serve_config_from(
    const ArgParser& args, const DynamicOptions& dynamic) {
  serve::ServerConfig config;
  config.socket_path = args.get("socket", "ssp_serve.sock");
  if (args.has("tcp")) {
    // Bare `--tcp` parses as the boolean "true"; treat it as port 0.
    const std::string raw = args.get("tcp", "0");
    config.tcp_port =
        raw == "true" ? 0 : static_cast<int>(args.get_int("tcp", 0));
  }
  config.max_clients = static_cast<int>(args.get_int("max-clients", 64));
  const long long line_bytes = args.get_int("max-line-bytes", 65536);
  if (line_bytes < 16) {
    throw std::invalid_argument(
        "option --max-line-bytes expects a value >= 16, got '" +
        std::to_string(line_bytes) + "'");
  }
  config.max_line_bytes = static_cast<std::size_t>(line_bytes);
  config.serve = serve::ServeOptions{}
                     .with_dynamic(dynamic)
                     .with_max_sessions(args.get_int("max-sessions", 64))
                     .with_max_queued_batches(args.get_int("max-queue", 8))
                     .with_drain_seconds(args.get_double("drain-timeout", 5.0))
                     .with_state_dir(args.get("state-dir", ""))
                     .with_checkpoint_every(args.get_int("checkpoint-every", 16));
  config.validate();
  return config;
}

/// Shared main() scaffold: parses argv, prints usage on --help, runs
/// `body` and reports std::exception failures with the usage text.
template <typename Body>
int run_tool(ArgParser& args, int argc, char** argv, Body&& body) {
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    return body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
}

}  // namespace ssp::cli
