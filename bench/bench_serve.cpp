// bench_serve — load generator for the serving daemon (src/serve/).
//
// Runs an in-process Server on a unix socket and drives it with
// N sessions × M clients: every client attaches to its session, then
// issues commit after commit of reweight batches (disjoint edge rows per
// client, so any interleaving resolves). Reports per-commit latency
// (p50/p99) and sustained throughput (commits/sec, updates/sec) for the
// configs 1×1, 4×4, and 16×4 into BENCH_bench_serve.json.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"

namespace {

using ssp::bench::Json;

constexpr int kGridSide = 16;        // per-session graph: 16x16 grid
constexpr int kCommitsPerClient = 6;
constexpr int kOpsPerCommit = 8;

struct Config {
  int sessions;
  int clients_per_session;
};

struct RunResult {
  std::vector<double> commit_seconds;  // one entry per commit, all clients
  double wall_seconds = 0.0;
  int failures = 0;
};

/// One client: attach, then kCommitsPerClient reweight-only commits over
/// the client's own grid rows (disjoint across clients of a session).
void run_client(const std::string& socket_path, const std::string& session,
                int client, int clients_per_session,
                std::vector<double>& latencies, int& failures) {
  try {
    ssp::serve::ServeClient conn =
        ssp::serve::ServeClient::connect_unix(socket_path);
    if (!conn.request("attach " + session).ok()) {
      ++failures;
      return;
    }
    const int rows_per_client = kGridSide / clients_per_session;
    const int row0 = client * rows_per_client;
    for (int commit = 0; commit < kCommitsPerClient; ++commit) {
      for (int op = 0; op < kOpsPerCommit; ++op) {
        const int row = row0 + (op % rows_per_client);
        const int col = (commit * kOpsPerCommit + op) % (kGridSide - 1);
        const int u = row * kGridSide + col;
        std::ostringstream line;
        line << "reweight " << u << ' ' << (u + 1) << ' '
             << (1.0 + 0.001 * (commit * kOpsPerCommit + op + 1));
        if (!conn.request(line.str()).ok()) ++failures;
      }
      ssp::WallTimer timer;
      auto resp = conn.request("commit");
      while (resp.status.rfind("err backpressure:", 0) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        resp = conn.request("commit");
      }
      latencies.push_back(timer.seconds());
      if (!resp.ok()) ++failures;
    }
    (void)conn.request("quit");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client %s/%d: %s\n", session.c_str(), client,
                 e.what());
    ++failures;
  }
}

RunResult run_config(const Config& config) {
  const std::string socket_path =
      "/tmp/ssp_bench_serve_" + std::to_string(::getpid()) + ".sock";
  ssp::serve::ServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.max_clients = config.sessions * config.clients_per_session + 8;
  server_config.serve =
      ssp::serve::ServeOptions{}
          .with_dynamic(ssp::DynamicOptions{}.with_base(
              ssp::SparsifyOptions{}.with_sigma2(30.0).with_seed(42)))
          .with_max_sessions(config.sessions);
  ssp::serve::Server server(server_config);
  server.start();

  RunResult result;
  {
    // Session opens are the expensive part (initial sparsification) —
    // done up front so the measured window is pure commit traffic.
    ssp::serve::ServeClient admin =
        ssp::serve::ServeClient::connect_unix(socket_path);
    for (int s = 0; s < config.sessions; ++s) {
      std::ostringstream open;
      open << "open s" << s << " gen:grid2d:" << kGridSide << 'x' << kGridSide
           << ':' << (s + 1);
      if (!admin.request(open.str()).ok()) ++result.failures;
    }

    const int total_clients = config.sessions * config.clients_per_session;
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(total_clients));
    std::vector<int> failures(static_cast<std::size_t>(total_clients), 0);
    std::vector<std::thread> workers;
    ssp::WallTimer wall;
    for (int s = 0; s < config.sessions; ++s) {
      for (int c = 0; c < config.clients_per_session; ++c) {
        const auto slot =
            static_cast<std::size_t>(s * config.clients_per_session + c);
        workers.emplace_back([&, s, c, slot] {
          run_client(socket_path, "s" + std::to_string(s), c,
                     config.clients_per_session, latencies[slot],
                     failures[slot]);
        });
      }
    }
    for (auto& w : workers) w.join();
    result.wall_seconds = wall.seconds();
    for (const auto& per_client : latencies) {
      result.commit_seconds.insert(result.commit_seconds.end(),
                                   per_client.begin(), per_client.end());
    }
    for (const int f : failures) result.failures += f;
  }
  server.request_stop();
  server.wait();
  return result;
}

}  // namespace

int main() {
  ssp::bench::print_banner(
      "bench_serve — multi-tenant serving daemon under concurrent commit "
      "load");
  ssp::bench::Report report("bench_serve");
  report.root()
      .set("grid_side", kGridSide)
      .set("commits_per_client", kCommitsPerClient)
      .set("ops_per_commit", kOpsPerCommit);

  std::printf("%10s %8s %12s %12s %14s %14s %9s\n", "config", "commits",
              "p50 (ms)", "p99 (ms)", "commits/sec", "updates/sec", "wall");
  int failures = 0;
  for (const Config& config : {Config{1, 1}, Config{4, 4}, Config{16, 4}}) {
    const RunResult result = run_config(config);
    failures += result.failures;

    std::vector<double> sorted = result.commit_seconds;
    std::sort(sorted.begin(), sorted.end());
    const auto commits = static_cast<double>(sorted.size());
    const double p50 = ssp::bench::percentile(sorted, 0.50);
    const double p99 = ssp::bench::percentile(sorted, 0.99);
    const double commits_per_sec =
        result.wall_seconds > 0.0 ? commits / result.wall_seconds : 0.0;
    const double updates_per_sec = commits_per_sec * kOpsPerCommit;

    std::ostringstream name;
    name << config.sessions << 'x' << config.clients_per_session;
    std::printf("%10s %8.0f %12.3f %12.3f %14.1f %14.1f %8.2fs\n",
                name.str().c_str(), commits, p50 * 1e3, p99 * 1e3,
                commits_per_sec, updates_per_sec, result.wall_seconds);

    report.section("configs").push(
        Json::object()
            .set("sessions", config.sessions)
            .set("clients_per_session", config.clients_per_session)
            .set("commits", sorted.size())
            .set("failures", result.failures)
            .set("p50_ms", p50 * 1e3)
            .set("p99_ms", p99 * 1e3)
            .set("latency_ms",
                 ssp::bench::latency_summary([&] {
                   std::vector<double> ms;
                   ms.reserve(sorted.size());
                   for (const double s : sorted) ms.push_back(s * 1e3);
                   return ms;
                 }()))
            .set("commits_per_sec", commits_per_sec)
            .set("updates_per_sec", updates_per_sec)
            .set("wall_seconds", result.wall_seconds));
  }
  report.write();
  if (failures != 0) {
    std::fprintf(stderr, "bench_serve: %d request failures\n", failures);
    return 1;
  }
  return 0;
}
