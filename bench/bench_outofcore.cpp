// Out-of-core hierarchical sparsification at 10x the in-core bench
// ceiling: generates an 800x800 grid (640k vertices — the largest graph
// any other bench touches is 240x240 = 57,600), serializes it to the
// mmap'd `.sspb` format, and sparsifies it through the hierarchical
// driver under a fixed resident-memory budget, reporting wall time and
// the peak RSS of the out-of-core phase (VmHWM, reset with
// /proc/self/clear_refs so the generation spike does not count).
//
// Two hard checks make this a regression gate, not just a timing table:
//
//   * the out-of-core phase's peak RSS must stay under
//     file_bytes + budget + fixed slack — a regression that materializes
//     the whole graph per leaf (or stops releasing pages between leaves)
//     blows the cap;
//   * a k = 1 run (budget the whole graph fits in) must be bit-identical
//     to the heap whole-graph engine on the same graph.
//
// The process exits non-zero when either check fails. Emits
// BENCH_outofcore.json. SSP_BENCH_LARGE=1 scales the grid to 2000x2000
// (4M vertices).

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "graph/generators/lattice.hpp"
#include "scale/hierarchical_sparsifier.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/sspb_io.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;

constexpr double kSigma2 = 500.0;
constexpr std::uint64_t kBudgetMb = 8;
// Fixed allowance for everything outside the budgeted subgraphs: the
// driver's per-vertex order/assignment arrays, the growing selection,
// and the code + runtime itself.
constexpr std::uint64_t kSlackMb = 128;

/// VmHWM (peak RSS) of this process in bytes, from /proc/self/status.
std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

/// Resets the kernel's peak-RSS watermark so VmHWM measures only what
/// runs after this call. Returns false where /proc/self/clear_refs is
/// unsupported (the RSS cap check is then skipped, not failed).
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear.is_open()) return false;
  clear << "5";
  clear.close();
  return clear.good();
}

}  // namespace

int main() {
  bench::Report report("outofcore");
  const Vertex side = dim(800, 2000);
  const std::string path =
      "/tmp/bench_outofcore_" + std::to_string(::getpid()) + ".sspb";

  bench::print_banner("out-of-core hierarchical sparsification");

  // Generate and serialize; the heap graph dies at scope exit so the
  // out-of-core phase starts from the file alone.
  {
    Rng rng(101);
    WallTimer t;
    const Graph g =
        grid_2d(side, side, WeightModel::log_uniform(0.1, 10.0), &rng);
    storage::write_sspb(path, g);
    std::printf("generated %dx%d grid: |V| = %d, |E| = %lld (%.1fs)\n", side,
                side, g.num_vertices(), static_cast<long long>(g.num_edges()),
                t.seconds());
  }
  const storage::MappedGraph mapped(path);
  const double file_mb = static_cast<double>(mapped.file_bytes()) / (1 << 20);
  std::printf("mapped %s: %.1f MB\n\n", path.c_str(), file_mb);

  HierarchicalOptions opts;
  opts.memory_budget_bytes = kBudgetMb << 20;
  opts.block = SparsifyOptions{}.with_sigma2(kSigma2).with_seed(42);

  // ---- Phase 1: the budgeted run, peak RSS measured in isolation ----
  const bool rss_resettable = reset_peak_rss();
  WallTimer oc_timer;
  const HierarchicalResult oc = hierarchical_sparsify(mapped, opts);
  const double oc_seconds = oc_timer.seconds();
  const double peak_mb = static_cast<double>(peak_rss_bytes()) / (1 << 20);
  const double cap_mb =
      file_mb + static_cast<double>(kBudgetMb) + static_cast<double>(kSlackMb);
  const bool within_cap = !rss_resettable || peak_mb <= cap_mb;

  std::printf("out-of-core: budget %llu MB -> %lld leaves (depth %lld), "
              "%lld edges (%lld cut), %.1fs\n",
              static_cast<unsigned long long>(kBudgetMb),
              static_cast<long long>(oc.leaves),
              static_cast<long long>(oc.depth),
              static_cast<long long>(oc.num_edges()),
              static_cast<long long>(oc.cut_edges), oc_seconds);
  if (rss_resettable) {
    std::printf("peak RSS %.1f MB vs cap %.1f MB (file %.1f + budget %llu + "
                "slack %llu) — %s\n",
                peak_mb, cap_mb, file_mb,
                static_cast<unsigned long long>(kBudgetMb),
                static_cast<unsigned long long>(kSlackMb),
                within_cap ? "within cap" : "EXCEEDS CAP");
  } else {
    std::printf("peak RSS %.1f MB (clear_refs unsupported; cap not "
                "enforced)\n", peak_mb);
  }

  // ---- Phase 2: k = 1 bit-parity against the heap whole-graph path ----
  WallTimer heap_timer;
  const Graph heap = mapped.materialize();
  Sparsifier engine(heap, opts.block);
  engine.run();
  const double heap_seconds = heap_timer.seconds();

  HierarchicalOptions whole = opts;
  whole.memory_budget_bytes = ~0ull >> 1;
  WallTimer k1_timer;
  const HierarchicalResult k1 = hierarchical_sparsify(mapped, whole);
  const double k1_seconds = k1_timer.seconds();
  const bool bitmatch =
      k1.whole_graph && k1.edges == engine.result().edges;

  std::printf("\nheap whole-graph engine: %lld edges, %.1fs\n",
              static_cast<long long>(engine.result().num_edges()),
              heap_seconds);
  std::printf("k=1 out-of-core rerun:   %lld edges, %.1fs — %s\n",
              static_cast<long long>(k1.num_edges()), k1_seconds,
              bitmatch ? "bit-identical" : "MISMATCH");

  report.root().set(
      "graph", Json::object()
                   .set("side", static_cast<long long>(side))
                   .set("vertices", static_cast<long long>(
                                        mapped.num_vertices()))
                   .set("edges", static_cast<long long>(mapped.num_edges()))
                   .set("file_mb", file_mb));
  report.root().set(
      "outofcore",
      Json::object()
          .set("budget_mb", static_cast<long long>(kBudgetMb))
          .set("leaves", static_cast<long long>(oc.leaves))
          .set("depth", static_cast<long long>(oc.depth))
          .set("edges", static_cast<long long>(oc.num_edges()))
          .set("cut_edges", static_cast<long long>(oc.cut_edges))
          .set("seconds", oc_seconds)
          .set("peak_rss_mb", peak_mb)
          .set("rss_cap_mb", cap_mb)
          .set("rss_measured", rss_resettable)
          .set("within_cap", within_cap));
  report.root().set("parity",
                    Json::object()
                        .set("heap_engine_seconds", heap_seconds)
                        .set("k1_outofcore_seconds", k1_seconds)
                        .set("edges", static_cast<long long>(k1.num_edges()))
                        .set("bit_identical", bitmatch));
  report.write();

  ::unlink(path.c_str());
  if (!within_cap || !bitmatch) {
    std::fprintf(stderr, "bench_outofcore: %s\n",
                 !bitmatch ? "k=1 parity violated" : "RSS cap exceeded");
    return 1;
  }
  return 0;
}
