// Reproduces paper Table 4: sparsification of complex networks at
// σ² ≈ 100. Columns: total sparsification time T_tot, edge reduction
// |E|/|Es|, collapse of the top pencil eigenvalue λ1/λ̃1 (tree backbone vs
// final sparsifier), and the time to compute the first 10 Laplacian
// eigenvectors on the original vs sparsified graph (T_eig^o vs T_eig^s).
//
// Expected shape (paper): reductions 3–36x, λ1/λ̃1 ratios in the
// hundreds-to-tens-of-thousands, and a large eigensolver speedup.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "eigen/lanczos.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;

struct Row {
  const char* name;
  Graph graph;
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  rows.push_back({"fe_tooth*", bench::fe_solid_proxy(dim(22, 43), 501)});
  rows.push_back({"appu*", bench::appu_proxy(dim(4000, 14000), 502)});
  rows.push_back({"coAuthorsDBLP*", bench::dblp_proxy(dim(40000, 300000))});
  rows.push_back({"auto*", bench::fe_solid_proxy(dim(28, 77), 503)});
  rows.push_back({"RCV-80NN*", bench::rcv_proxy(dim(4000, 12000))});
  return rows;
}

double eigs_seconds(const Graph& g, Index k, Rng& rng) {
  const CsrMatrix l = laplacian(g);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner precond(tree);
  const LinOp solve = make_pcg_op(
      l, precond,
      {.max_iterations = 3000, .rel_tolerance = 1e-6,
       .project_constants = true});
  const WallTimer t;
  benchmark::DoNotOptimize(
      smallest_laplacian_eigenpairs(l.rows(), k, solve, 3 * k + 15, rng));
  return t.seconds();
}

void print_table4(bench::Report& report) {
  bench::print_banner(
      "Table 4 — complex network sparsification at sigma^2 ~ 100\n"
      "columns: T_tot, |E|/|Es|, lambda1/~lambda1, T_eig original "
      "(sparsified)");
  std::printf("%-15s %9s %10s %7s %9s %11s %12s\n", "graph", "|V|", "|E|",
              "T_tot", "|E|/|Es|", "l1/~l1", "Teig o(s)");
  bench::print_rule(84);

  for (Row& row : make_rows()) {
    const Graph& g = row.graph;
    SparsifyOptions opts;
    opts.sigma2 = 100.0;
    const SparsifyResult res = sparsify(g, opts);
    const Graph p = res.extract(g);
    const double reduction = static_cast<double>(g.num_edges()) /
                             static_cast<double>(p.num_edges());
    const double lambda1_tree =
        res.rounds.empty() ? res.lambda_max : res.rounds.front().lambda_max;
    const double collapse = lambda1_tree / res.lambda_max;

    Rng rng(19);
    const double t_orig = eigs_seconds(g, 10, rng);
    const double t_spars = eigs_seconds(p, 10, rng);

    std::printf("%-15s %9d %10lld %6.1fs %8.1fx %10.0fx %8.2fs (%.2fs)\n",
                row.name, g.num_vertices(),
                static_cast<long long>(g.num_edges()), res.total_seconds,
                reduction, collapse, t_orig, t_spars);
    report.section("cases").push(
        bench::Json::object()
            .set("graph", row.name)
            .set("vertices", g.num_vertices())
            .set("edges", static_cast<long long>(g.num_edges()))
            .set("sparsifier_edges", static_cast<long long>(p.num_edges()))
            .set("sparsify_seconds", res.total_seconds)
            .set("edge_reduction", reduction)
            .set("lambda1_collapse", collapse)
            .set("eig_seconds_original", t_orig)
            .set("eig_seconds_sparsified", t_spars));
  }
  bench::print_rule(84);
  std::printf("* synthetic proxy (DESIGN.md §3). Expected shape: reductions "
              ">= 3x, large l1 collapse, eigensolver speedup.\n");
}

void BM_SparsifyNetwork(benchmark::State& state) {
  const Graph g = bench::dblp_proxy(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify(g, {.sigma2 = 100.0}));
  }
}
BENCHMARK(BM_SparsifyNetwork)->Arg(10000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("table4_networks");
  print_table4(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
