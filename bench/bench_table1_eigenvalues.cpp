// Reproduces paper Table 1: accuracy of the extreme generalized-eigenvalue
// estimators — λ̃_max from <= 10 generalized power iterations (§3.6.1) and
// λ̃_min from the node-coloring bound (§3.6.2) — against "exact" values from
// long pencil Lanczos runs (standing in for MATLAB eigs).
//
// Paper test cases -> proxies: fe_rotor/brack2 -> 3-D FE grids,
// pdb1HYS/raefsky3 -> kNN protein-like clouds, bcsstk36 -> stiffened
// triangulated shell mesh.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/eigen_estimate.hpp"
#include "eigen/lanczos.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_solver.hpp"

namespace {

using namespace ssp;
using bench::dim;

struct Case {
  const char* name;
  Graph graph;
};

std::vector<Case> make_cases() {
  // Fixed moderate sizes: this is an accuracy table (the reference values
  // come from exact-factorization Lanczos, which wants n in the few
  // thousands). Boundary-free tori stand in for the FE solids so that the
  // degree-ratio bound is non-trivial, as on the paper's matrices.
  std::vector<Case> cases;
  {
    Rng rng(201);
    cases.push_back({"fe_rotor*",
                     torus_3d(13, 13, 13,
                              WeightModel::log_uniform(0.2, 5.0), &rng)});
  }
  {
    // pdb1HYS (protein structure): mildly clustered 3-D cloud, 10-NN.
    Rng rng(202);
    const PointCloud pc = gaussian_mixture_points(2500, 3, 5, 0.12, rng);
    cases.push_back({"pdb1HYS*",
                     knn_graph(pc, 10, KnnWeight::kInverseDistance)});
  }
  {
    Rng rng(203);
    cases.push_back({"bcsstk36*",
                     torus_2d(48, 48, WeightModel::log_uniform(0.05, 20.0),
                              &rng)});
  }
  {
    Rng rng(204);
    cases.push_back({"brack2*",
                     torus_3d(12, 12, 12,
                              WeightModel::uniform(0.3, 3.0), &rng)});
  }
  {
    // raefsky3 (fluid-structure FE): uniform cloud -> spread-out stretch
    // spectrum, the regime where [21]'s eigenvalue-separation result (and
    // hence fast power-iteration convergence) applies.
    Rng rng(205);
    const PointCloud pc = uniform_points(3000, 3, rng);
    cases.push_back({"raefsky3*",
                     knn_graph(pc, 8, KnnWeight::kInverseDistance)});
  }
  return cases;
}

void print_table1(bench::Report& report) {
  bench::print_banner(
      "Table 1 — extreme eigenvalue estimation (estimate vs Lanczos exact)\n"
      "columns: lambda_min  ~lambda_min  err%%   lambda_max  ~lambda_max  err%%");
  std::printf("%-12s %10s %10s %6s %12s %12s %6s\n", "case", "l_min",
              "~l_min", "err%", "l_max", "~l_max", "err%");
  bench::print_rule(78);

  Rng rng(42);
  for (Case& c : make_cases()) {
    const Graph& g = c.graph;
    const SpanningTree tree = max_weight_spanning_tree(g);
    const TreeSolver solver(tree);
    const CsrMatrix lg = laplacian(g);
    const CsrMatrix lp = laplacian(tree.as_graph());
    const LinOp solve_p = make_tree_solver_op(solver);

    // --- Estimates (the paper's cheap methods). ---
    std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
    for (EdgeId e : tree.tree_edge_ids()) {
      in_p[static_cast<std::size_t>(e)] = 1;
    }
    const double lmin_est = estimate_lambda_min_node_coloring(g, in_p);
    const double lmax_est =
        estimate_lambda_max_power(lg, solve_p, rng, /*iterations=*/10);

    // --- "Exact" references: long Lanczos runs with an exact L_G solver
    // (sparse Cholesky), so the reverse-pencil spectrum is not polluted by
    // inner-solver noise. ---
    const PencilEigenEstimate fwd =
        pencil_extreme_eigenvalues(lg, lp, solve_p, /*steps=*/60, rng);
    const SparseCholesky chol_g = SparseCholesky::factor_laplacian(lg);
    const LinOp solve_g = make_cholesky_op(chol_g);
    const double lmin_exact =
        pencil_lambda_min_reverse(lp, lg, solve_g, /*steps=*/50, rng);
    const double lmax_exact = fwd.lambda_max;

    const double emin = 100.0 * std::abs(lmin_est - lmin_exact) / lmin_exact;
    const double emax = 100.0 * std::abs(lmax_est - lmax_exact) / lmax_exact;
    std::printf("%-12s %10.3f %10.3f %5.1f%% %12.1f %12.1f %5.1f%%\n",
                c.name, lmin_exact, lmin_est, emin, lmax_exact, lmax_est,
                emax);
    report.section("cases").push(
        bench::Json::object()
            .set("graph", c.name)
            .set("vertices", g.num_vertices())
            .set("edges", static_cast<long long>(g.num_edges()))
            .set("lambda_min_exact", lmin_exact)
            .set("lambda_min_estimate", lmin_est)
            .set("lambda_min_err_pct", emin)
            .set("lambda_max_exact", lmax_exact)
            .set("lambda_max_estimate", lmax_est)
            .set("lambda_max_err_pct", emax));
  }
  bench::print_rule(78);
  std::printf("* synthetic proxy of the SuiteSparse matrix (DESIGN.md §3)\n");
}

// Micro-benchmarks: cost of the two estimators.
void BM_LambdaMinNodeColoring(benchmark::State& state) {
  const Graph g = bench::thermal2_proxy(static_cast<Vertex>(state.range(0)));
  const SpanningTree tree = max_weight_spanning_tree(g);
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : tree.tree_edge_ids()) in_p[static_cast<std::size_t>(e)] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_lambda_min_node_coloring(g, in_p));
  }
  state.SetComplexityN(g.num_vertices());
}
BENCHMARK(BM_LambdaMinNodeColoring)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_LambdaMaxPowerIterations(benchmark::State& state) {
  const Graph g = bench::thermal2_proxy(static_cast<Vertex>(state.range(0)));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const CsrMatrix lg = laplacian(g);
  const LinOp solve_p = make_tree_solver_op(solver);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_lambda_max_power(lg, solve_p, rng, 10));
  }
}
BENCHMARK(BM_LambdaMaxPowerIterations)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("table1_eigenvalues");
  print_table1(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
