// Reproduces paper Table 2: the iterative SDD solver. For each mesh proxy
// and σ² ∈ {50, 200}: sparsifier density |E_σ|/|V|, PCG iterations N_σ to
// ||Ax−b|| < 1e-3||b||, and sparsification time T_σ.
//
// Expected shape (paper): N_50 ≈ 18–21 < N_200 ≈ 36–40, while
// |E_50|/|V| > |E_200|/|V| and T_50 > T_200 — the similarity/density/time
// trade-off the similarity-aware filter exposes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_preconditioner.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;

struct Row {
  const char* name;
  Graph graph;
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  rows.push_back({"G3_circuit*", bench::g3_circuit_proxy(dim(190, 1260))});
  rows.push_back({"thermal2*", bench::thermal2_proxy(dim(170, 1100))});
  rows.push_back({"ecology2*", bench::ecology2_proxy(dim(140, 1000))});
  rows.push_back({"tmt_sym*", bench::tmt_sym_proxy(dim(150, 840))});
  rows.push_back({"parabolic_fem*", bench::parabolic_fem_proxy(dim(95, 360))});
  return rows;
}

struct SigmaCell {
  double density = 0.0;
  Index iterations = 0;
  double sparsify_seconds = 0.0;
};

SigmaCell run_cell(const Graph& g, double sigma2, std::span<const double> b) {
  SigmaCell cell;
  SparsifyOptions opts;
  opts.sigma2 = sigma2;
  const WallTimer t;
  const SparsifyResult res = sparsify(g, opts);
  cell.sparsify_seconds = t.seconds();
  cell.density = static_cast<double>(res.num_edges()) /
                 static_cast<double>(g.num_vertices());

  const Graph p = res.extract(g);
  const CsrMatrix lg = laplacian(g);
  const SparsifierPreconditioner precond(p);
  Vec x(b.size(), 0.0);
  const PcgResult r = pcg_solve(lg, b, x, precond,
                                {.max_iterations = 2000,
                                 .rel_tolerance = 1e-3,
                                 .project_constants = true});
  cell.iterations = r.iterations;
  return cell;
}

void print_table2(bench::Report& report) {
  bench::print_banner(
      "Table 2 — iterative SDD solver with sigma^2 = 50 / 200 sparsifier "
      "preconditioners\ncolumns: |E50|/|V|  N50  T50   |E200|/|V|  N200  T200");
  std::printf("%-15s %9s %9s %5s %6s %10s %6s %7s\n", "graph", "|V|", "|E|",
              "E50/V", "N50", "T50(s)", "E200/V", "N200");
  bench::print_rule(78);

  for (Row& row : make_rows()) {
    const Graph& g = row.graph;
    Rng rng(17);
    Vec b = rng.normal_vector(g.num_vertices());
    project_out_mean(b);
    const SigmaCell c50 = run_cell(g, 50.0, b);
    const SigmaCell c200 = run_cell(g, 200.0, b);
    std::printf(
        "%-15s %9d %9lld %5.2f %6lld %9.2fs %6.2f %7lld  (T200 %.2fs)\n",
        row.name, g.num_vertices(), static_cast<long long>(g.num_edges()),
        c50.density, static_cast<long long>(c50.iterations),
        c50.sparsify_seconds, c200.density,
        static_cast<long long>(c200.iterations), c200.sparsify_seconds);
    report.section("cases").push(
        bench::Json::object()
            .set("graph", row.name)
            .set("vertices", g.num_vertices())
            .set("edges", static_cast<long long>(g.num_edges()))
            .set("density_50", c50.density)
            .set("iterations_50", static_cast<long long>(c50.iterations))
            .set("sparsify_seconds_50", c50.sparsify_seconds)
            .set("density_200", c200.density)
            .set("iterations_200", static_cast<long long>(c200.iterations))
            .set("sparsify_seconds_200", c200.sparsify_seconds));
  }
  bench::print_rule(78);
  std::printf("* synthetic proxy (DESIGN.md §3). Expected shape: N50 < N200, "
              "E50/V > E200/V, T50 > T200.\n");
}

void BM_PcgTreePreconditioned(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  const CsrMatrix lg = laplacian(g);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner tp(tree);
  Rng rng(3);
  Vec b = rng.normal_vector(g.num_vertices());
  project_out_mean(b);
  for (auto _ : state) {
    Vec x(b.size(), 0.0);
    benchmark::DoNotOptimize(
        pcg_solve(lg, b, x, tp,
                  {.max_iterations = 4000,
                   .rel_tolerance = 1e-3,
                   .project_constants = true}));
  }
}
BENCHMARK(BM_PcgTreePreconditioned)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("table2_pcg");
  print_table2(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
