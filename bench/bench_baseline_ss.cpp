// Baseline comparison: Spielman–Srivastava effective-resistance sampling
// [17] vs the paper's similarity-aware filter, at a matched edge budget.
//
// The motivating observation of the paper: SS produces good sparsifiers
// but gives no direct handle on the achieved similarity level; the
// similarity-aware filter targets sigma^2 explicitly. We sparsify to
// sigma^2 = 100, then run SS tuned to land near the same distinct-edge
// count, and measure the resulting condition-number estimates of both.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/resistance_sampling.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "obs/metrics.hpp"
#include "scale/quality.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;

bench::Report& report() {
  static bench::Report r("baseline_ss");
  return r;
}

/// Condition-number estimate for an arbitrary (possibly reweighted)
/// sparsifier graph (scale/quality.hpp).
double kappa_estimate(const Graph& g, const Graph& p) {
  return estimate_sparsifier_quality(g, p, {.seed = 77}).sigma2;
}

void run_case(const char* name, const Graph& g) {
  SparsifyOptions opts;
  opts.sigma2 = 100.0;
  const WallTimer t_sim;
  const SparsifyResult sim = sparsify(g, opts);
  const double sim_seconds = t_sim.seconds();
  const Graph p_sim = sim.extract(g);

  // Tune SS sample count to land near the same distinct edge budget.
  SsOptions ss_opts;
  ss_opts.samples = static_cast<EdgeId>(sim.num_edges()) * 3;
  ss_opts.seed = 9;
  const SsResult ss = spielman_srivastava_sparsify(g, ss_opts);

  const double kappa_sim = kappa_estimate(g, p_sim);
  const double kappa_ss = kappa_estimate(g, ss.sparsifier);

  std::printf("%-10s %9d %10lld | %8lld %10.1f %8.2fs | %8lld %10.1f %8.2fs\n",
              name, g.num_vertices(), static_cast<long long>(g.num_edges()),
              static_cast<long long>(sim.num_edges()), kappa_sim, sim_seconds,
              static_cast<long long>(ss.distinct_edges), kappa_ss,
              ss.seconds);
  report().section("baseline").push(
      Json::object()
          .set("graph", name)
          .set("vertices", g.num_vertices())
          .set("edges", static_cast<long long>(g.num_edges()))
          .set("sim_edges", static_cast<long long>(sim.num_edges()))
          .set("sim_kappa", kappa_sim)
          .set("sim_seconds", sim_seconds)
          .set("ss_edges", static_cast<long long>(ss.distinct_edges))
          .set("ss_kappa", kappa_ss)
          .set("ss_seconds", ss.seconds));
}

void print_baseline() {
  bench::print_banner(
      "Baseline E — similarity-aware filtering vs Spielman–Srivastava "
      "sampling [17]\ncolumns: similarity-aware (|Es|, kappa, time) | SS "
      "(|Es|, kappa, time); target sigma^2 = 100");
  std::printf("%-10s %9s %10s | %8s %10s %9s | %8s %10s %9s\n", "graph",
              "|V|", "|E|", "|Es|", "kappa", "time", "|Es|", "kappa",
              "time");
  bench::print_rule(92);
  run_case("grid", bench::g3_circuit_proxy(dim(120, 500), 701));
  run_case("tri", bench::thermal2_proxy(dim(110, 450), 702));
  run_case("dblp", bench::dblp_proxy(dim(12000, 80000), 703));
  bench::print_rule(92);
  std::printf("similarity-aware hits the kappa target by construction; SS "
              "kappa is uncontrolled at equal budget.\n");
}

// Warm-start comparison: once a graph is sparsified at a loose target, an
// incrementally tighter target is reached by ssp::Sparsifier::refine() —
// which reuses the backbone, tree solver/preconditioner, warm edge set,
// and embedding workspace — instead of a cold re-run that redoes the
// whole densification ramp. (For aggressive target jumps a cold run's large
// adaptive batches can still win on wall time, at the price of
// overshooting the density; refine() follows the paper's small-portions
// schedule and lands sparser.)
void print_warm_start() {
  bench::print_banner(
      "Warm-start refine() vs cold re-run (sigma^2 100 -> 80)\ncolumns: "
      "cold run at 80 | refine from a warm engine at 100");
  std::printf("%-10s | %8s %8s %9s | %8s %8s %9s\n", "graph", "rounds",
              "|Es|", "time", "rounds", "|Es|", "time");
  bench::print_rule(70);
  struct Case {
    const char* name;
    Graph graph;
  };
  Case cases[] = {
      {"grid", bench::g3_circuit_proxy(dim(120, 500), 701)},
      {"tri", bench::thermal2_proxy(dim(110, 450), 702)},
  };
  for (Case& c : cases) {
    const auto opts = SparsifyOptions{}.with_sigma2(80.0).with_seed(5);
    const WallTimer t_cold;
    const SparsifyResult cold = sparsify(c.graph, opts);
    const double cold_seconds = t_cold.seconds();

    Sparsifier engine(c.graph, SparsifyOptions{}.with_sigma2(100.0).with_seed(5));
    engine.run();
    const std::size_t rounds_before = engine.result().rounds.size();
    const WallTimer t_warm;
    engine.refine(80.0);
    engine.run();
    const double warm_seconds = t_warm.seconds();
    const std::size_t warm_rounds =
        engine.result().rounds.size() - rounds_before;

    std::printf("%-10s | %8zu %8lld %8.3fs | %8zu %8lld %8.3fs\n", c.name,
                cold.rounds.size(), static_cast<long long>(cold.num_edges()),
                cold_seconds, warm_rounds,
                static_cast<long long>(engine.result().num_edges()),
                warm_seconds);
    report().section("warm_start").push(
        Json::object()
            .set("graph", c.name)
            .set("cold_rounds", cold.rounds.size())
            .set("cold_edges", static_cast<long long>(cold.num_edges()))
            .set("cold_seconds", cold_seconds)
            .set("warm_rounds", warm_rounds)
            .set("warm_edges",
                 static_cast<long long>(engine.result().num_edges()))
            .set("warm_seconds", warm_seconds));
  }
  bench::print_rule(70);
  std::printf("refine() resumes densification from the warm edge set — "
              "fewer rounds and less wall time than a cold re-run.\n");
}

/// Accumulates per-stage wall time, keyed by StageKind.
class StageTimeObserver : public StageObserver {
 public:
  void on_stage(StageKind stage, double seconds) override {
    seconds_[static_cast<std::size_t>(stage)] += seconds;
  }
  [[nodiscard]] double embedding_seconds() const {
    return seconds_[static_cast<std::size_t>(StageKind::kEmbedding)];
  }

 private:
  double seconds_[8] = {};
};

// Thread-scaling on the largest graph: the engine's determinism contract
// says SparsifyOptions::threads changes wall time only, so the final edge
// lists are compared bit-for-bit while the embedding stage (the probe
// loop this PR parallelized) is timed at 1 vs N workers.
void print_thread_scaling() {
  const int n_threads = std::max(4, hardware_threads());
  bench::print_banner(
      "Thread scaling — parallel probe embedding (threads = 1 vs N)\n"
      "identical-result check: run() edge lists must match bit-for-bit");
  std::printf("%-10s | %8s %12s | %3s %12s | %8s %9s\n", "graph", "|Es|",
              "embed(1t)", "N", "embed(Nt)", "speedup", "bitmatch");
  bench::print_rule(80);
  const Graph g = bench::dblp_proxy(dim(12000, 80000), 703);

  StageTimeObserver obs1;
  Sparsifier e1(g, SparsifyOptions{}.with_sigma2(100.0).with_seed(5)
                       .with_threads(1));
  e1.set_observer(&obs1);
  e1.run();

  StageTimeObserver obsn;
  Sparsifier en(g, SparsifyOptions{}.with_sigma2(100.0).with_seed(5)
                       .with_threads(n_threads));
  en.set_observer(&obsn);
  en.run();

  const bool identical = e1.result().edges == en.result().edges;
  std::printf("%-10s | %8lld %11.3fs | %3d %11.3fs | %7.2fx %9s\n", "dblp",
              static_cast<long long>(e1.result().num_edges()),
              obs1.embedding_seconds(), n_threads, obsn.embedding_seconds(),
              obs1.embedding_seconds() /
                  std::max(obsn.embedding_seconds(), 1e-12),
              identical ? "yes" : "NO (BUG)");
  report().section("thread_scaling").push(
      Json::object()
          .set("graph", "dblp")
          .set("edges", static_cast<long long>(e1.result().num_edges()))
          .set("embed_seconds_1t", obs1.embedding_seconds())
          .set("threads", n_threads)
          .set("embed_seconds_nt", obsn.embedding_seconds())
          .set("bitmatch", identical));
  bench::print_rule(80);
  std::printf("probe streams are split per vector and partials reduce in "
              "stream order, so N-thread output is bit-identical.\n");
}

// Observability overhead: the same sparsification with the metrics
// registry off (the default) vs on must produce bit-identical edge lists,
// and the disabled instrumentation must be nearly free (ISSUE 9 budget:
// <1% on this bench). A flaky hard gate in CI would be worse than the
// data, so the measured ratio is reported into BENCH_baseline_ss.json for
// the perf-trajectory tracking instead of asserted here; the disabled
// per-call cost (one relaxed load + branch) is timed directly as well.
void print_obs_overhead() {
  bench::print_banner(
      "Observability overhead — metrics registry off vs on\n"
      "identical-result check: edge lists must match bit-for-bit");
  const Graph g = bench::g3_circuit_proxy(dim(120, 500), 701);
  const auto opts = SparsifyOptions{}.with_sigma2(100.0).with_seed(5);

  obs::set_metrics_enabled(false);
  const WallTimer t_off;
  const SparsifyResult off = sparsify(g, opts);
  const double off_seconds = t_off.seconds();

  obs::set_metrics_enabled(true);
  const WallTimer t_on;
  const SparsifyResult on = sparsify(g, opts);
  const double on_seconds = t_on.seconds();
  obs::set_metrics_enabled(false);

  const bool identical = off.edges == on.edges;
  const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;

  // Disabled-path per-call cost: a tight loop of counter_add while the
  // registry is off. DoNotOptimize keeps the load+branch alive.
  constexpr int kCalls = 1 << 20;
  const WallTimer t_call;
  for (int i = 0; i < kCalls; ++i) {
    obs::counter_add("bench.obs.disabled_probe", 1);
    benchmark::DoNotOptimize(i);
  }
  const double ns_per_disabled_call = t_call.seconds() * 1e9 / kCalls;

  std::printf("obs off %.3fs, on %.3fs (%.2fx), disabled call %.2f ns, "
              "bitmatch %s\n",
              off_seconds, on_seconds, ratio, ns_per_disabled_call,
              identical ? "yes" : "NO (BUG)");
  report().section("obs_overhead").push(
      Json::object()
          .set("graph", "grid")
          .set("off_seconds", off_seconds)
          .set("on_seconds", on_seconds)
          .set("on_off_ratio", ratio)
          .set("disabled_call_ns", ns_per_disabled_call)
          .set("bitmatch", identical));
}

void BM_SpielmanSrivastava(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  SsOptions opts;
  opts.samples = static_cast<EdgeId>(g.num_vertices()) * 6;
  SsWorkspace ws;  // scratch reused across iterations
  for (auto _ : state) {
    benchmark::DoNotOptimize(spielman_srivastava_sparsify(g, opts, ws));
  }
}
BENCHMARK(BM_SpielmanSrivastava)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SimilarityAware(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify(g, {.sigma2 = 100.0}));
  }
}
BENCHMARK(BM_SimilarityAware)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  // Size the global pool before first use so the N-thread scaling section
  // has real workers even when SSP_THREADS/hardware report fewer.
  ssp::set_default_threads(std::max(4, ssp::hardware_threads()));
  print_baseline();
  print_warm_start();
  print_thread_scaling();
  print_obs_overhead();
  report().write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
