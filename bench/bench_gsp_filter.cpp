// Demonstrates the paper's §3.4 claim quantitatively: a spectral
// sparsifier behaves as a *low-pass graph filter* — it reproduces the
// action of the heat-kernel filter exp(-tau L) on smooth (low-frequency)
// graph signals almost exactly, with the agreement degrading as the
// signal's frequency content rises.
//
// For a sweep of signal "highness" fractions, we print the relative L2
// disagreement between filtering on G and on its sigma^2 = 100 sparsifier.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/graph_filter.hpp"
#include "core/sparsifier.hpp"
#include "graph/laplacian.hpp"

namespace {

using namespace ssp;
using bench::dim;

void print_gsp(bench::Report& report) {
  bench::print_banner(
      "GSP view (paper §3.4) — sparsifier as a low-pass graph filter\n"
      "rows: signal high-frequency fraction; value: relative filter "
      "disagreement |h(L_P)x - h(L_G)x| / |h(L_G)x|");

  struct Item {
    const char* name;
    Graph graph;
  };
  std::vector<Item> graphs;
  graphs.push_back({"grid", bench::g3_circuit_proxy(dim(100, 300), 801)});
  graphs.push_back({"tri", bench::thermal2_proxy(dim(90, 280), 802)});

  std::printf("%-8s", "high%");
  for (const Item& item : graphs) std::printf(" %12s", item.name);
  std::printf("\n");
  bench::print_rule(40);

  std::vector<std::vector<double>> columns;
  for (Item& item : graphs) {
    const Graph& g = item.graph;
    // A tight sparsifier makes the low-pass fingerprint crisp; looser
    // targets shift mid-band eigenvalues by up to sigma^2 and blur it.
    const SparsifyResult sp = sparsify(g, {.sigma2 = 25.0});
    const CsrMatrix lg = laplacian(g);
    const CsrMatrix lp = laplacian(sp.extract(g));
    Rng rng(9);
    std::vector<double> col;
    for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const Vec sig = synthesize_signal(lg, frac, rng);
      col.push_back(filter_agreement(lg, lp, sig,
                                     {.tau = 2.0, .degree = 32}, rng));
    }
    columns.push_back(std::move(col));
  }
  const double fracs[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (std::size_t r = 0; r < 5; ++r) {
    std::printf("%-8.0f", fracs[r] * 100);
    for (const auto& col : columns) std::printf(" %12.4f", col[r]);
    std::printf("\n");
  }
  for (std::size_t c = 0; c < graphs.size(); ++c) {
    bench::Json& entry = report.section("cases").push(
        bench::Json::object()
            .set("graph", graphs[c].name)
            .set("vertices", graphs[c].graph.num_vertices())
            .set("edges",
                 static_cast<long long>(graphs[c].graph.num_edges())));
    for (std::size_t r = 0; r < 5; ++r) {
      entry["disagreement"].push(
          bench::Json::object()
              .set("high_freq_fraction", fracs[r])
              .set("rel_disagreement", columns[c][r]));
    }
  }
  bench::print_rule(40);
  std::printf("expected shape: near-zero disagreement for smooth signals, "
              "growing with frequency.\n");
}

void BM_ChebyshevFilter(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  const CsrMatrix l = laplacian(g);
  Rng rng(3);
  const Vec x = synthesize_signal(l, 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chebyshev_lowpass(l, x, {.tau = 2.0, .degree = 32}, rng));
  }
}
BENCHMARK(BM_ChebyshevFilter)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("gsp_filter");
  print_gsp(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
