// Reproduces the paper's §4.4 spectral-clustering claim: k-way spectral
// clustering of a large kNN graph is much cheaper on the sigma^2 ~ 100
// sparsifier while recovering the same clusters (the paper's RCV-80NN
// could not even be clustered un-sparsified within 50 GB).
//
// We cluster a Gaussian-mixture 80-NN proxy on the original and sparsified
// graphs, reporting eigensolver + k-means time and the NMI agreement with
// the generating mixture components.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/points.hpp"
#include "partition/spectral_clustering.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;

void print_clustering(bench::Report& report) {
  bench::print_banner(
      "Spectral clustering on sparsified networks (paper §4.4)\n"
      "k-NN mixture graph: cluster original vs sigma^2=100 sparsifier");

  const Index points = dim(3000, 10000);
  const Index k_clusters = 6;
  Rng rng(71);
  const PointCloud pc =
      gaussian_mixture_points(points, 8, k_clusters, 0.04, rng);
  const Graph g = knn_graph(pc, 40, KnnWeight::kInverseDistance);
  std::vector<Vertex> truth(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    truth[static_cast<std::size_t>(v)] =
        static_cast<Vertex>(v % k_clusters);  // round-robin assignment
  }
  std::printf("graph: |V| = %d, |E| = %lld (40-NN of %lld-point mixture)\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              static_cast<long long>(points));

  SpectralClusteringOptions copts;
  copts.num_clusters = k_clusters;
  copts.seed = 5;

  const WallTimer t_orig;
  const SpectralClusteringResult orig = spectral_clustering(g, copts);
  const double orig_seconds = t_orig.seconds();

  const WallTimer t_sp;
  const SparsifyResult sp = sparsify(g, {.sigma2 = 100.0});
  const double sparsify_seconds = t_sp.seconds();
  const Graph p = sp.extract(g);
  const WallTimer t_spc;
  const SpectralClusteringResult spars = spectral_clustering(p, copts);
  const double spars_seconds = t_spc.seconds();

  std::printf("\n%-22s %10s %10s %10s\n", "", "time(s)", "NMI(truth)",
              "|E|");
  bench::print_rule(58);
  std::printf("%-22s %9.2fs %10.3f %10lld\n", "original graph", orig_seconds,
              normalized_mutual_information(orig.assignment, truth),
              static_cast<long long>(g.num_edges()));
  std::printf("%-22s %9.2fs %10.3f %10lld\n", "sparsified graph",
              spars_seconds,
              normalized_mutual_information(spars.assignment, truth),
              static_cast<long long>(p.num_edges()));
  bench::print_rule(58);
  std::printf("sparsification itself: %.2fs; clustering agreement "
              "NMI(orig, spars) = %.3f\n",
              sparsify_seconds,
              normalized_mutual_information(orig.assignment,
                                            spars.assignment));
  std::printf("expected shape: same clusters, several-fold cheaper "
              "clustering on the sparsifier.\n");
  report.section("cases").push(
      bench::Json::object()
          .set("graph", "knn_mixture_40nn")
          .set("vertices", g.num_vertices())
          .set("edges", static_cast<long long>(g.num_edges()))
          .set("sparsifier_edges", static_cast<long long>(p.num_edges()))
          .set("cluster_seconds_original", orig_seconds)
          .set("cluster_seconds_sparsified", spars_seconds)
          .set("sparsify_seconds", sparsify_seconds)
          .set("nmi_original",
               normalized_mutual_information(orig.assignment, truth))
          .set("nmi_sparsified",
               normalized_mutual_information(spars.assignment, truth))
          .set("nmi_agreement",
               normalized_mutual_information(orig.assignment,
                                             spars.assignment)));
}

void BM_SpectralClustering(benchmark::State& state) {
  Rng rng(3);
  const PointCloud pc = gaussian_mixture_points(
      static_cast<Index>(state.range(0)), 4, 4, 0.04, rng);
  const Graph g = knn_graph(pc, 10);
  SpectralClusteringOptions opts;
  opts.num_clusters = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spectral_clustering(g, opts));
  }
}
BENCHMARK(BM_SpectralClustering)->Arg(500)->Arg(1500)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("clustering");
  print_clustering(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
