// Kernel-layer benchmark (src/la/kernels/): per-primitive bandwidth of the
// scalar reference vs the SIMD backend selected at runtime, the multi-RHS
// panel kernels (blocked spmv and blocked tree solve) against the
// column-at-a-time loops they replaced, and the end effect on the
// sparsifier's embedding stage. Every SIMD/panel result is byte-identical
// to the scalar column-wise one (tests/test_kernels.cpp proves it); this
// binary measures what that free determinism costs — nothing — and what
// the blocking buys.
//
// Headline numbers land in BENCH_bench_kernels.json:
//   spmv.panel_speedup       — blocked panel spmv vs r single-RHS passes
//   tree_solve.panel_speedup — solve_multi vs r single solves
//   embedding.speedup        — embedding stage, generic vs SIMD backend

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "graph/laplacian.hpp"
#include "la/csr_matrix.hpp"
#include "la/kernels/kernels.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_solver.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;
using kernels::Backend;

bench::Report& report() {
  static bench::Report r("bench_kernels");
  return r;
}

/// The best non-scalar backend this machine can run, if any.
std::optional<Backend> simd_backend() {
  for (Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (kernels::backend_supported(b)) return b;
  }
  return std::nullopt;
}

/// Mean seconds per call after one warm-up invocation.
double time_reps(int reps, const std::function<void()>& fn) {
  fn();
  const WallTimer t;
  for (int i = 0; i < reps; ++i) fn();
  return t.seconds() / reps;
}

volatile double g_sink;  // defeats dead-code elimination in timing loops

// ---- Per-primitive bandwidth -----------------------------------------------

void print_primitives() {
  bench::print_banner(
      "Kernel primitives — scalar reference vs runtime-dispatched SIMD\n"
      "bit-identical results by construction; GB/s over a 1M-element "
      "stream");
  const std::size_t n = std::size_t{1} << 20;
  Rng rng(1);
  Vec x(n), y(n), scratch(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }

  struct Prim {
    const char* name;
    double bytes_per_elem;  // read+write traffic per element
    std::function<void(const kernels::Ops&)> run;
  };
  const std::vector<Prim> prims = {
      {"dot", 16.0,
       [&](const kernels::Ops& k) { g_sink = k.dot(x.data(), y.data(), n); }},
      {"sum", 8.0, [&](const kernels::Ops& k) { g_sink = k.sum(x.data(), n); }},
      {"nrm2sq", 8.0,
       [&](const kernels::Ops& k) { g_sink = k.nrm2sq(x.data(), n); }},
      {"sq_dist", 16.0,
       [&](const kernels::Ops& k) {
         g_sink = k.sq_dist(x.data(), y.data(), n);
       }},
      {"axpy", 24.0,
       [&](const kernels::Ops& k) {
         k.axpy(1.0000001, x.data(), scratch.data(), n);
       }},
      {"axpy_sum", 24.0,
       [&](const kernels::Ops& k) {
         g_sink = k.axpy_sum(1.0000001, x.data(), scratch.data(), n);
       }},
      {"shift_nrm2sq", 16.0,
       [&](const kernels::Ops& k) {
         g_sink = k.shift_nrm2sq(1e-9, scratch.data(), n);
       }},
  };

  const std::optional<Backend> simd = simd_backend();
  std::printf("%-14s %12s", "primitive", "generic GB/s");
  if (simd) std::printf(" %12s %8s", kernels::backend_name(*simd), "speedup");
  std::printf("\n");
  bench::print_rule(50);

  const kernels::Ops& gen = *kernels::ops_for(Backend::kGeneric);
  for (const Prim& p : prims) {
    scratch = y;
    const double t_gen = time_reps(40, [&] { p.run(gen); });
    const double gbps_gen = p.bytes_per_elem * static_cast<double>(n) /
                            t_gen / 1e9;
    Json row = Json::object()
                   .set("primitive", p.name)
                   .set("elements", n)
                   .set("generic_gbps", gbps_gen);
    std::printf("%-14s %12.2f", p.name, gbps_gen);
    if (simd) {
      const kernels::Ops& sk = *kernels::ops_for(*simd);
      scratch = y;
      const double t_simd = time_reps(40, [&] { p.run(sk); });
      const double gbps_simd = p.bytes_per_elem * static_cast<double>(n) /
                               t_simd / 1e9;
      std::printf(" %12.2f %7.2fx", gbps_simd, t_gen / t_simd);
      row.set("simd_backend", kernels::backend_name(*simd))
          .set("simd_gbps", gbps_simd)
          .set("speedup", t_gen / t_simd);
    }
    std::printf("\n");
    report().section("primitives").push(std::move(row));
  }
  bench::print_rule(50);
  std::printf("streaming primitives are memory-bound at this size; the SIMD "
              "win shows up while operands fit in cache (the panel kernels "
              "below are built around exactly that).\n");
}

// ---- Blocked panel spmv vs column-at-a-time --------------------------------

void print_spmv() {
  bench::print_banner(
      "Panel spmv — all r JL probes as one n x r panel vs r single-RHS "
      "passes\n(the single-RHS loop is the pre-kernel-layer embedding hot "
      "path: gather column, multiply, scatter)");
  const Vertex side = dim(240, 500);
  const Graph g = bench::g3_circuit_proxy(side);
  const CsrMatrix lg = laplacian(g);
  const auto n = lg.rows();
  const Index r = 8;
  const auto un = static_cast<std::size_t>(n);

  Rng rng(2);
  Vec panel_x(un * static_cast<std::size_t>(r));
  for (double& v : panel_x) v = rng.normal();
  Vec panel_y(panel_x.size());
  Vec col_x(un), col_y(un);

  // Before: r separate single-RHS multiplies through gather/scatter, on
  // the scalar backend (exactly the shape of the old probe loop).
  const double t_single = time_reps(10, [&] {
    kernels::ScopedBackend scope(Backend::kGeneric);
    for (Index j = 0; j < r; ++j) {
      for (Index v = 0; v < n; ++v) {
        col_x[static_cast<std::size_t>(v)] =
            panel_x[static_cast<std::size_t>(v * r + j)];
      }
      lg.multiply(col_x, col_y);
      for (Index v = 0; v < n; ++v) {
        panel_y[static_cast<std::size_t>(v * r + j)] =
            col_y[static_cast<std::size_t>(v)];
      }
    }
  });

  // After: one blocked pass over the matrix, SIMD across columns.
  const double t_panel =
      time_reps(10, [&] { lg.multiply_panel(panel_x, panel_y, r); });

  const double nnz = static_cast<double>(lg.nnz());
  const double speedup = t_single / t_panel;
  std::printf("%-18s %10lld vertices, %12.0f nnz, r = %d\n", "graph",
              static_cast<long long>(n), nnz, static_cast<int>(r));
  std::printf("%-18s %10.4fs  (%6.2f Mnnz/s per RHS)\n", "r single-RHS",
              t_single, nnz * static_cast<double>(r) / t_single / 1e6 /
                            static_cast<double>(r));
  std::printf("%-18s %10.4fs  (%6.2f Mnnz/s per RHS)\n", "blocked panel",
              t_panel, nnz * static_cast<double>(r) / t_panel / 1e6 /
                           static_cast<double>(r));
  std::printf("%-18s %9.2fx %s\n", "panel speedup", speedup,
              speedup >= 2.0 ? "(>= 2x target met)" : "(BELOW 2x TARGET)");
  report().section("spmv").set("vertices", static_cast<long long>(n))
      .set("nnz", nnz)
      .set("rhs", static_cast<int>(r))
      .set("single_rhs_seconds", t_single)
      .set("panel_seconds", t_panel)
      .set("panel_speedup", speedup)
      .set("target_2x_met", speedup >= 2.0);
}

// ---- Blocked tree solve ----------------------------------------------------

void print_tree_solve() {
  bench::print_banner(
      "Blocked tree solve — TreeSolver::solve_multi (one traversal for the "
      "whole panel) vs r single solves");
  const Vertex side = dim(240, 500);
  const Graph g = bench::g3_circuit_proxy(side);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const auto n = static_cast<Index>(g.num_vertices());
  const Index r = 8;
  const auto un = static_cast<std::size_t>(n);

  Rng rng(3);
  Vec panel_b(un * static_cast<std::size_t>(r));
  for (double& v : panel_b) v = rng.normal();
  Vec panel_x(panel_b.size());
  Vec col_b(un), col_x(un);

  const double t_single = time_reps(10, [&] {
    for (Index j = 0; j < r; ++j) {
      for (Index v = 0; v < n; ++v) {
        col_b[static_cast<std::size_t>(v)] =
            panel_b[static_cast<std::size_t>(v * r + j)];
      }
      solver.solve(col_b, col_x);
      for (Index v = 0; v < n; ++v) {
        panel_x[static_cast<std::size_t>(v * r + j)] =
            col_x[static_cast<std::size_t>(v)];
      }
    }
  });
  const double t_panel =
      time_reps(10, [&] { solver.solve_multi(panel_b, panel_x, r); });

  const double speedup = t_single / t_panel;
  std::printf("%-18s %10lld vertices, r = %d\n", "tree",
              static_cast<long long>(n), static_cast<int>(r));
  std::printf("%-18s %10.4fs\n", "r single solves", t_single);
  std::printf("%-18s %10.4fs\n", "solve_multi", t_panel);
  std::printf("%-18s %9.2fx\n", "panel speedup", speedup);
  report().section("tree_solve").set("vertices", static_cast<long long>(n))
      .set("rhs", static_cast<int>(r))
      .set("single_seconds", t_single)
      .set("panel_seconds", t_panel)
      .set("panel_speedup", speedup);
}

// ---- Embedding stage, end to end -------------------------------------------

/// Accumulates per-stage wall time, keyed by StageKind.
class StageTimeObserver : public StageObserver {
 public:
  void on_stage(StageKind stage, double seconds) override {
    seconds_[static_cast<std::size_t>(stage)] += seconds;
  }
  [[nodiscard]] double embedding_seconds() const {
    return seconds_[static_cast<std::size_t>(StageKind::kEmbedding)];
  }

 private:
  double seconds_[8] = {};
};

void print_embedding_stage() {
  bench::print_banner(
      "Embedding stage, end to end — sparsifier run with the kernel "
      "backend pinned to generic vs the SIMD backend\nidentical-result "
      "check: final edge lists must match bit-for-bit");
  const Graph g = bench::dblp_proxy(dim(12000, 80000), 703);
  const auto opts =
      SparsifyOptions{}.with_sigma2(100.0).with_seed(5).with_threads(1);

  const auto run_with = [&](Backend b, StageTimeObserver& obs) {
    kernels::ScopedBackend scope(b);
    Sparsifier engine(g, opts);
    engine.set_observer(&obs);
    engine.run();
    return engine.result().edges;
  };

  StageTimeObserver obs_gen;
  const auto edges_gen = run_with(Backend::kGeneric, obs_gen);

  const std::optional<Backend> simd = simd_backend();
  Json row = Json::object()
                 .set("graph", "dblp")
                 .set("embed_seconds_generic", obs_gen.embedding_seconds());
  std::printf("%-10s | %-8s %12s\n", "graph", "backend", "embed stage");
  bench::print_rule(40);
  std::printf("%-10s | %-8s %11.3fs\n", "dblp", "generic",
              obs_gen.embedding_seconds());
  if (simd) {
    StageTimeObserver obs_simd;
    const auto edges_simd = run_with(*simd, obs_simd);
    const bool identical = edges_gen == edges_simd;
    const double speedup =
        obs_gen.embedding_seconds() /
        std::max(obs_simd.embedding_seconds(), 1e-12);
    std::printf("%-10s | %-8s %11.3fs  %5.2fx  bitmatch: %s\n", "dblp",
                kernels::backend_name(*simd), obs_simd.embedding_seconds(),
                speedup, identical ? "yes" : "NO (BUG)");
    row.set("simd_backend", kernels::backend_name(*simd))
        .set("embed_seconds_simd", obs_simd.embedding_seconds())
        .set("speedup", speedup)
        .set("bitmatch", identical);
  }
  report().section("embedding").push(std::move(row));
  bench::print_rule(40);
  std::printf("both runs use the blocked panel path; the delta isolates the "
              "SIMD backend. The blocking win over the old column loop is "
              "the spmv/tree-solve sections above.\n");
}

// ---- Google-benchmark timers over the same kernels -------------------------

void BM_SpmvPanel(benchmark::State& state) {
  const Graph g =
      bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  const CsrMatrix lg = laplacian(g);
  const Index r = 8;
  Rng rng(4);
  Vec x(static_cast<std::size_t>(lg.rows() * r));
  for (double& v : x) v = rng.normal();
  Vec y(x.size());
  for (auto _ : state) {
    lg.multiply_panel(x, y, r);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SpmvPanel)->Arg(64)->Arg(160)->Unit(benchmark::kMillisecond);

void BM_TreeSolveMulti(benchmark::State& state) {
  const Graph g =
      bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const Index r = 8;
  Rng rng(5);
  Vec b(static_cast<std::size_t>(g.num_vertices()) *
        static_cast<std::size_t>(r));
  for (double& v : b) v = rng.normal();
  Vec x(b.size());
  for (auto _ : state) {
    solver.solve_multi(b, x, r);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_TreeSolveMulti)->Arg(64)->Arg(160)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_primitives();
  print_spmv();
  print_tree_solve();
  print_embedding_stage();
  report().write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
