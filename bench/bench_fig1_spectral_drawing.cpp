// Reproduces paper Fig. 1: spectral drawings of the airfoil graph and of
// its similarity-aware sparsifier. The drawing places vertex v at
// (u2(v), u3(v)), the first two nontrivial Laplacian eigenvectors [Koren].
// If the sparsifier is spectrally similar, the two drawings coincide.
//
// Outputs fig1_original.csv / fig1_sparsifier.csv (x, y per vertex) and
// prints the eigenvalue comparison plus drawing correlation.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "eigen/lanczos.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"

namespace {

using namespace ssp;
using bench::Json;

EigenPairs drawing_eigenvectors(const Graph& g, Rng& rng) {
  const CsrMatrix l = laplacian(g);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner precond(tree);
  const LinOp solve = make_pcg_op(
      l, precond,
      {.max_iterations = 3000, .rel_tolerance = 1e-9,
       .project_constants = true});
  return smallest_laplacian_eigenpairs(l.rows(), 2, solve, 60, rng);
}

void write_csv(const std::string& path, const EigenPairs& pairs) {
  std::ofstream out(path);
  out << "x,y\n";
  const Vec& x = pairs.vectors[0];
  const Vec& y = pairs.vectors[1];
  for (std::size_t i = 0; i < x.size(); ++i) {
    out << x[i] << ',' << y[i] << '\n';
  }
}

void print_fig1(bench::Report& report) {
  bench::print_banner(
      "Fig. 1 — spectral drawings of two spectrally-similar airfoil graphs");
  const Vertex nr = bench::dim(24, 48);
  const Vertex na = bench::dim(180, 360);
  const Mesh2d mesh = joukowski_airfoil_mesh(nr, na);
  const Graph& g = mesh.graph;
  std::printf("airfoil mesh: |V| = %d, |E| = %lld\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  SparsifyOptions opts;
  opts.sigma2 = 100.0;
  const SparsifyResult res = sparsify(g, opts);
  const Graph p = res.extract(g);
  std::printf("sparsifier:   |Es| = %lld (%.2f x |V|), sigma2 = %.1f %s\n",
              static_cast<long long>(p.num_edges()),
              static_cast<double>(p.num_edges()) / g.num_vertices(),
              res.sigma2_estimate,
              res.reached_target ? "[reached]" : "[not reached]");

  Rng rng(11);
  const EigenPairs orig = drawing_eigenvectors(g, rng);
  const EigenPairs spars = drawing_eigenvectors(p, rng);
  write_csv("fig1_original.csv", orig);
  write_csv("fig1_sparsifier.csv", spars);

  Json& entry = report.section("cases").push(
      Json::object()
          .set("graph", "airfoil")
          .set("vertices", g.num_vertices())
          .set("edges", static_cast<long long>(g.num_edges()))
          .set("sparsifier_edges", static_cast<long long>(p.num_edges()))
          .set("sigma2_estimate", res.sigma2_estimate)
          .set("sparsify_seconds", res.total_seconds));
  // Drawing agreement: |correlation| of each coordinate (sign-invariant).
  for (int k = 0; k < 2; ++k) {
    const double corr = std::abs(
        dot(orig.vectors[static_cast<std::size_t>(k)],
            spars.vectors[static_cast<std::size_t>(k)]));
    std::printf("eigenvector u%d: lambda %.3e (orig) vs %.3e (spars), "
                "|corr| = %.4f\n",
                k + 2, orig.values[static_cast<std::size_t>(k)],
                spars.values[static_cast<std::size_t>(k)], corr);
    entry["eigenvectors"].push(
        Json::object()
            .set("index", k + 2)
            .set("lambda_original", orig.values[static_cast<std::size_t>(k)])
            .set("lambda_sparsifier",
                 spars.values[static_cast<std::size_t>(k)])
            .set("abs_correlation", corr));
  }
  std::printf("wrote fig1_original.csv / fig1_sparsifier.csv "
              "(plot x,y per vertex to compare drawings)\n");
}

void BM_AirfoilSparsify(benchmark::State& state) {
  const Mesh2d mesh =
      joukowski_airfoil_mesh(static_cast<Vertex>(state.range(0)), 120);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparsify(mesh.graph, {.sigma2 = 100.0}));
  }
}
BENCHMARK(BM_AirfoilSparsify)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("fig1_spectral_drawing");
  print_fig1(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
