// Reproduces paper Fig. 2: spectral edge ranking and filtering by
// normalized Joule heat for the G2_circuit and thermal1 test cases (proxied
// by a log-uniform-weight grid and a triangulated FE grid).
//
// Prints the sorted normalized-heat series (sharply decaying: "not too many
// large generalized eigenvalues") with the θ_σ filtering thresholds for
// σ² = 100 and σ² = 500, and writes fig2_<case>.csv (rank, heat).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>

#include "bench_common.hpp"
#include "core/edge_filter.hpp"
#include "core/eigen_estimate.hpp"
#include "core/embedding.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "tree/kruskal.hpp"
#include "tree/tree_solver.hpp"

namespace {

using namespace ssp;
using bench::Json;

bench::Report& report() {
  static bench::Report r("fig2_edge_ranking");
  return r;
}

void run_case(const char* name, const Graph& g) {
  std::printf("\n%s: |V| = %d, |E| = %lld\n", name, g.num_vertices(),
              static_cast<long long>(g.num_edges()));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const LinOp solve_p = make_tree_solver_op(solver);
  const CsrMatrix lg = laplacian(g);

  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : tree.tree_edge_ids()) in_p[static_cast<std::size_t>(e)] = 1;

  Rng rng(31);
  // Fig. 2 uses one-step generalized power iterations (t = 1).
  const OffTreeEmbedding emb = compute_offtree_heat(
      g, in_p, solve_p, {.power_steps = 1, .num_vectors = 16}, rng);

  std::vector<double> normalized = emb.heat;
  for (double& h : normalized) h /= emb.heat_max;
  std::sort(normalized.begin(), normalized.end(), std::greater<>());

  // Thresholds for the two σ² levels shown in the figure.
  const double lmin = estimate_lambda_min_node_coloring(g, in_p);
  const double lmax = estimate_lambda_max_power(lg, solve_p, rng, 10);
  std::printf("  lambda_min ~= %.3f, lambda_max ~= %.1f\n", lmin, lmax);
  Json& entry = report().section("cases").push(
      Json::object()
          .set("graph", name)
          .set("vertices", g.num_vertices())
          .set("edges", static_cast<long long>(g.num_edges()))
          .set("lambda_min", lmin)
          .set("lambda_max", lmax));
  // The paper's figure marks sigma^2 = 100 and 500; our grid proxies carry
  // a larger tree-pencil lambda_max than the UFL circuit matrices, so two
  // higher levels are added to exhibit the same sharp-cut regime.
  for (const double sigma2 : {100.0, 500.0, 0.05 * lmax, 0.5 * lmax}) {
    const double theta = heat_threshold(sigma2, lmin, lmax, 1);
    const auto above = static_cast<Index>(
        std::lower_bound(normalized.begin(), normalized.end(), theta,
                         std::greater<>()) -
        normalized.begin());
    std::printf(
        "  theta(sigma2=%3.0f) = %.3e  -> %lld of %zu off-tree edges pass "
        "(%.2f%%)\n",
        sigma2, theta, static_cast<long long>(above), normalized.size(),
        100.0 * static_cast<double>(above) /
            static_cast<double>(normalized.size()));
    entry["thresholds"].push(Json::object()
                                 .set("sigma2", sigma2)
                                 .set("theta", theta)
                                 .set("edges_passing",
                                      static_cast<long long>(above))
                                 .set("offtree_edges", normalized.size()));
  }

  // Decile series of the sorted curve (log-scale decay profile).
  std::printf("  sorted normalized heat deciles:");
  for (int d = 0; d <= 10; ++d) {
    const std::size_t idx = std::min(
        normalized.size() - 1, normalized.size() * static_cast<std::size_t>(d) / 10);
    std::printf(" %.1e", normalized[idx]);
    entry["heat_deciles"].push(normalized[idx]);
  }
  std::printf("\n");

  // CSV for plotting (subsampled to <= 2000 rows).
  const std::string path = std::string("fig2_") + name + ".csv";
  std::ofstream out(path);
  out << "rank,normalized_heat\n";
  const std::size_t stride = std::max<std::size_t>(1, normalized.size() / 2000);
  for (std::size_t i = 0; i < normalized.size(); i += stride) {
    out << i << ',' << normalized[i] << '\n';
  }
  std::printf("  wrote %s\n", path.c_str());
}

void print_fig2() {
  bench::print_banner(
      "Fig. 2 — spectral edge ranking & filtering by normalized Joule heat");
  run_case("G2_circuit", bench::g3_circuit_proxy(bench::dim(160, 420), 301));
  run_case("thermal1", bench::thermal2_proxy(bench::dim(140, 380), 302));
}

void BM_HeatEmbedding(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const LinOp solve_p = make_tree_solver_op(solver);
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : tree.tree_edge_ids()) in_p[static_cast<std::size_t>(e)] = 1;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_offtree_heat(
        g, in_p, solve_p, {.power_steps = 2, .num_vectors = 8}, rng));
  }
}
BENCHMARK(BM_HeatEmbedding)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig2();
  report().write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
