// Partition-parallel sparsification (src/scale/) vs the whole-graph
// engine: quality (condition-number / eigenvalue error against the
// whole-graph sparsifier, measured with one shared estimator) and
// wall-clock across k ∈ {1, 2, 4, 8}, plus a cut-policy sweep at k = 4.
// k = 1 is the whole-graph engine bit for bit, so its row doubles as the
// baseline. Emits BENCH_partitioned.json for the perf trajectory.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "graph/generators/community.hpp"
#include "scale/partitioned_sparsifier.hpp"
#include "scale/quality.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;

constexpr double kSigma2 = 100.0;

PartitionedOptions make_options(Index k, CutPolicy policy) {
  PartitionedOptions opts;
  opts.partitions = k;
  opts.cut_policy = policy;
  opts.block.sigma2 = kSigma2;
  return opts;
}

/// One partitioned run: prints a table row and appends the JSON record.
/// `whole` is the k = 1 quality every row is compared against.
void run_case(const Graph& g, Index k, CutPolicy policy,
              const SparsifierQuality& whole, Json& rows) {
  const PartitionedResult res = partitioned_sparsify(g, make_options(k, policy));
  const SparsifierQuality q = estimate_sparsifier_quality(g, res.extract(g));
  const double sigma2_err = std::abs(q.sigma2 - whole.sigma2) / whole.sigma2;
  const double lmax_err =
      std::abs(q.lambda_max - whole.lambda_max) / whole.lambda_max;

  std::printf("%4lld  %-8s %8lld %7lld/%-7lld %8.2f %9.4f %9.4f %8.3f\n",
              static_cast<long long>(k), to_string(policy),
              static_cast<long long>(res.num_edges()),
              static_cast<long long>(res.cut_edges_kept),
              static_cast<long long>(res.cut_edges_total), q.sigma2,
              sigma2_err, lmax_err, res.total_seconds);

  Json stage = Json::object();
  for (int s = 0; s < kNumScaleStages; ++s) {
    stage.set(to_string(static_cast<ScaleStage>(s)),
              res.stage_seconds[static_cast<std::size_t>(s)]);
  }
  rows.push(Json::object()
                .set("k", static_cast<long long>(k))
                .set("cut_policy", to_string(policy))
                .set("blocks", static_cast<long long>(res.blocks))
                .set("edges", static_cast<long long>(res.num_edges()))
                .set("cut_edges_total",
                     static_cast<long long>(res.cut_edges_total))
                .set("cut_edges_kept",
                     static_cast<long long>(res.cut_edges_kept))
                .set("sigma2", q.sigma2)
                .set("lambda_min", q.lambda_min)
                .set("lambda_max", q.lambda_max)
                .set("sigma2_rel_err_vs_whole", sigma2_err)
                .set("lambda_max_rel_err_vs_whole", lmax_err)
                .set("stage_seconds", std::move(stage))
                .set("seconds", res.total_seconds));
}

void run_graph(const char* name, const Graph& g, bench::Report& report) {
  bench::print_banner(
      ("partitioned sparsification — " + std::string(name)).c_str());
  std::printf("|V| = %d  |E| = %lld  block sigma2 target %.0f\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              kSigma2);
  std::printf("%4s  %-8s %8s %15s %8s %9s %9s %8s\n", "k", "policy",
              "edges", "cut kept/total", "sigma2", "s2 err", "lmax err",
              "seconds");
  bench::print_rule(78);

  // Whole-graph baseline = the k = 1 row (bit-for-bit the same engine);
  // measure its quality once with the shared estimator.
  const PartitionedResult base =
      partitioned_sparsify(g, make_options(1, CutPolicy::kFilter));
  const SparsifierQuality whole = estimate_sparsifier_quality(g, base.extract(g));

  Json& entry = report.section("cases").push(
      Json::object()
          .set("graph", name)
          .set("vertices", g.num_vertices())
          .set("edges", static_cast<long long>(g.num_edges()))
          .set("sigma2_target", kSigma2)
          .set("whole_graph_sigma2", whole.sigma2));
  Json& rows = entry["runs"];
  for (const Index k : {1, 2, 4, 8}) {
    run_case(g, k, CutPolicy::kFilter, whole, rows);
  }
  for (const CutPolicy policy : {CutPolicy::kKeepAll, CutPolicy::kQuotient}) {
    run_case(g, 4, policy, whole, rows);
  }
}

}  // namespace

int main() {
  set_default_threads(std::max(4, hardware_threads()));
  bench::Report report("partitioned");

  run_graph("g3_circuit_proxy", bench::g3_circuit_proxy(dim(40, 384)),
            report);
  {
    Rng rng(21);
    run_graph("planted_partition",
              planted_partition(dim(800, 60000), 8, 0.02, 0.002, rng),
              report);
  }

  bench::print_rule(78);
  std::printf("k = 1 reproduces the whole-graph engine bit for bit; larger "
              "k trades a\nbounded sigma2 increase (cut edges filtered "
              "separately) for near-linear\nblock-parallel scaling.\n");
  report.write();
  return 0;
}
