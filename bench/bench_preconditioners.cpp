// Preconditioner shootout on the Table 2 solve scenario: plain CG, Jacobi,
// IC(0), bare spanning tree, AMG, and similarity-aware sparsifiers at
// sigma^2 = 200 and 50 — iterations to ||Ax-b|| <= 1e-3||b|| plus setup
// time. Contextualizes the paper's preconditioner against the standard
// toolbox.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_preconditioner.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/amg.hpp"
#include "solver/ichol.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;

void print_shootout(bench::Report& report) {
  bench::print_banner(
      "Preconditioner shootout — PCG on L_G x = b to 1e-3 (Table 2 "
      "scenario)\ncolumns: iterations (setup seconds)");
  Rng wrng(901);
  const Vertex side = dim(150, 600);
  const Graph g = grid_2d(side, side,
                          WeightModel::log_uniform(1e-2, 1e2), &wrng);
  const CsrMatrix lg = laplacian(g);
  Rng rng(7);
  Vec b = rng.normal_vector(g.num_vertices());
  project_out_mean(b);
  const PcgOptions opts = {.max_iterations = 20000,
                           .rel_tolerance = 1e-3,
                           .project_constants = true};
  std::printf("graph: %d-vertex weighted grid (weights span 4 decades)\n\n",
              g.num_vertices());
  std::printf("%-22s %10s %12s\n", "preconditioner", "iters", "setup(s)");
  bench::print_rule(48);

  auto run = [&](const char* name, const Preconditioner& m, double setup) {
    Vec x(b.size(), 0.0);
    const PcgResult r = pcg_solve(lg, b, x, m, opts);
    std::printf("%-22s %10lld %11.2fs%s\n", name,
                static_cast<long long>(r.iterations), setup,
                r.converged ? "" : "  [no convergence]");
    report.section("cases").push(
        bench::Json::object()
            .set("preconditioner", name)
            .set("vertices", g.num_vertices())
            .set("edges", static_cast<long long>(g.num_edges()))
            .set("iterations", static_cast<long long>(r.iterations))
            .set("setup_seconds", setup)
            .set("converged", r.converged));
  };

  {
    const IdentityPreconditioner id(lg.rows());
    run("none (plain CG)", id, 0.0);
  }
  {
    WallTimer t;
    const JacobiPreconditioner m(lg);
    run("Jacobi", m, t.seconds());
  }
  {
    WallTimer t;
    // Ground vertex 0 through a unit leak so IC(0) sees an SPD matrix.
    std::vector<Triplet> ts;
    for (Index r = 0; r < lg.rows(); ++r) {
      const auto cols = lg.row_cols(r);
      const auto vals = lg.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        ts.push_back({r, cols[k], vals[k]});
      }
    }
    ts.push_back({0, 0, 1.0});
    const CsrMatrix grounded =
        CsrMatrix::from_triplets(lg.rows(), lg.cols(), ts);
    const IncompleteCholesky m(grounded);
    run("IC(0)", m, t.seconds());
  }
  {
    WallTimer t;
    const SpanningTree tree = max_weight_spanning_tree(g);
    const TreePreconditioner m(tree);
    run("spanning tree", m, t.seconds());
  }
  {
    WallTimer t;
    const AmgHierarchy amg = AmgHierarchy::build(lg);
    const AmgPreconditioner m(amg);
    run("AMG V-cycle", m, t.seconds());
  }
  for (const double sigma2 : {200.0, 50.0}) {
    WallTimer t;
    const SparsifyResult sp = sparsify(g, {.sigma2 = sigma2});
    const Graph p = sp.extract(g);
    const SparsifierPreconditioner m(p);
    char name[64];
    std::snprintf(name, sizeof(name), "sparsifier s2=%.0f", sigma2);
    run(name, m, t.seconds());
  }
  bench::print_rule(48);
  std::printf("similarity-aware sparsifiers trade setup time for the "
              "lowest iteration counts;\nIC(0)/Jacobi struggle as the "
              "weight spread grows.\n");
}

void BM_Ic0Setup(benchmark::State& state) {
  Rng rng(11);
  const Graph g = grid_2d(static_cast<Vertex>(state.range(0)),
                          static_cast<Vertex>(state.range(0)),
                          WeightModel::uniform(0.5, 2.0), &rng);
  const CsrMatrix l = laplacian(g);
  std::vector<Triplet> ts;
  for (Index r = 0; r < l.rows(); ++r) {
    const auto cols = l.row_cols(r);
    const auto vals = l.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({r, cols[k], vals[k]});
    }
  }
  ts.push_back({0, 0, 1.0});
  const CsrMatrix grounded = CsrMatrix::from_triplets(l.rows(), l.cols(), ts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IncompleteCholesky(grounded));
  }
}
BENCHMARK(BM_Ic0Setup)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("preconditioners");
  print_shootout(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
