// Reproduces paper Table 3: scalable spectral graph partitioning. For each
// graph the approximate Fiedler vector is computed by a direct solver
// (sparse Cholesky — CHOLMOD's role) and by PCG preconditioned with a
// σ² ≤ 200 sparsifier; the table reports solve time T_D/T_I, analytic
// memory M_D/M_I, the sign-cut balance |V+|/|V-|, and the sign
// disagreement Rel.Err between the two solutions.
//
// Expected shape (paper): T_I << T_D, M_I << M_D, Rel.Err <= ~4e-2,
// balance ~= 1.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "partition/spectral_bisection.hpp"
#include "util/rng.hpp"

namespace {

using namespace ssp;
using bench::dim;

struct Row {
  const char* name;
  Graph graph;
};

std::vector<Row> make_rows() {
  std::vector<Row> rows;
  rows.push_back({"G3_circuit*", bench::g3_circuit_proxy(dim(170, 1260))});
  rows.push_back({"thermal2*", bench::thermal2_proxy(dim(150, 1100))});
  rows.push_back({"ecology2*", bench::ecology2_proxy(dim(150, 1000))});
  rows.push_back({"tmt_sym*", bench::tmt_sym_proxy(dim(130, 840))});
  rows.push_back({"parabolic_fem*", bench::parabolic_fem_proxy(dim(85, 360))});
  // The paper's synthesized random-weight meshes (mesh_1M/4M/9M): scaled to
  // mesh_40k/90k by default.
  {
    Rng rng(401);
    rows.push_back({"mesh_A*", grid_2d(dim(200, 1000), dim(200, 1000),
                                       WeightModel::uniform(0.1, 1.0), &rng)});
  }
  {
    Rng rng(402);
    rows.push_back({"mesh_B*", grid_2d(dim(300, 2100), dim(300, 2100),
                                       WeightModel::uniform(0.1, 1.0), &rng)});
  }
  return rows;
}

void print_table3(bench::Report& report) {
  bench::print_banner(
      "Table 3 — spectral partitioning: direct Cholesky vs sigma^2<=200 "
      "sparsifier PCG\ncolumns: balance |V+|/|V-|, T_D (M_D), T_I (M_I), "
      "Rel.Err");
  std::printf("%-15s %9s %7s %9s %9s %9s %9s %9s\n", "graph", "|V|",
              "V+/V-", "T_D(s)", "M_D(MB)", "T_I(s)", "M_I(MB)", "Rel.Err");
  bench::print_rule(88);

  for (Row& row : make_rows()) {
    const Graph& g = row.graph;

    BisectionOptions direct;
    direct.solver = FiedlerSolverKind::kDirectCholesky;
    const BisectionResult rd = spectral_bisection(g, direct);

    BisectionOptions iter;
    iter.solver = FiedlerSolverKind::kSparsifierPcg;
    iter.sparsify.sigma2 = 200.0;
    const BisectionResult ri = spectral_bisection(g, iter);

    const double rel_err = sign_disagreement(rd.partition, ri.partition);
    auto mb = [](std::size_t b) {
      return static_cast<double>(b) / (1024.0 * 1024.0);
    };
    std::printf("%-15s %9d %7.2f %9.2f %9.1f %9.2f %9.1f %9.1e\n", row.name,
                g.num_vertices(), ri.metrics.balance, rd.solve_seconds,
                mb(rd.solver_memory_bytes), ri.solve_seconds,
                mb(ri.solver_memory_bytes), rel_err);
    report.section("cases").push(
        bench::Json::object()
            .set("graph", row.name)
            .set("vertices", g.num_vertices())
            .set("edges", static_cast<long long>(g.num_edges()))
            .set("balance", ri.metrics.balance)
            .set("direct_seconds", rd.solve_seconds)
            .set("direct_memory_mb", mb(rd.solver_memory_bytes))
            .set("sparsifier_seconds", ri.solve_seconds)
            .set("sparsifier_memory_mb", mb(ri.solver_memory_bytes))
            .set("sparsifier_edges",
                 static_cast<long long>(ri.sparsifier_edges))
            .set("rel_err", rel_err));
  }
  bench::print_rule(88);
  std::printf("* synthetic proxy (DESIGN.md §3). Expected shape: T_I < T_D, "
              "M_I < M_D, Rel.Err <= ~4e-2.\n");
}

void BM_DirectFiedler(benchmark::State& state) {
  const Graph g = bench::ecology2_proxy(static_cast<Vertex>(state.range(0)));
  BisectionOptions opts;
  opts.solver = FiedlerSolverKind::kDirectCholesky;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spectral_bisection(g, opts));
  }
}
BENCHMARK(BM_DirectFiedler)->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SparsifierFiedler(benchmark::State& state) {
  const Graph g = bench::ecology2_proxy(static_cast<Vertex>(state.range(0)));
  BisectionOptions opts;
  opts.solver = FiedlerSolverKind::kSparsifierPcg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spectral_bisection(g, opts));
  }
}
BENCHMARK(BM_SparsifierFiedler)->Arg(64)->Arg(100)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ssp::bench::Report report("table3_partition");
  print_table3(report);
  report.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
