// Ablation studies for the design choices called out in DESIGN.md §4:
//   A. Backbone: AKPW low-stretch tree vs max-weight Kruskal vs Dijkstra
//      SPT (total stretch and downstream sparsifier size/time).
//   B. Embedding: power steps t and random-vector count r (ranking
//      stability and final edge budget).
//   C. Similarity policy: none / node-disjoint / bounded (edges and rounds
//      needed to reach the target).
//   D. Inner solver: tree-preconditioned PCG vs AMG (densification time).
//   E. Edge rescaling extension: two-sided sigma^2 before/after.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "core/densify.hpp"
#include "core/embedding.hpp"
#include "core/options_io.hpp"
#include "core/rescale.hpp"
#include "core/sparsifier.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "tree/akpw.hpp"
#include "tree/dijkstra_tree.hpp"
#include "tree/kruskal.hpp"
#include "tree/stretch.hpp"
#include "tree/tree_solver.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;

bench::Report& report() {
  static bench::Report r("ablations");
  return r;
}

void ablation_backbone() {
  bench::print_banner("Ablation A — backbone spanning tree");
  std::printf("%-12s %-10s %14s %10s %8s %8s\n", "graph", "backbone",
              "total stretch", "|Es|", "rounds", "time(s)");
  bench::print_rule(70);

  struct Item {
    const char* gname;
    Graph graph;
  };
  std::vector<Item> graphs;
  graphs.push_back({"grid", bench::g3_circuit_proxy(dim(120, 500), 601)});
  graphs.push_back({"dblp", bench::dblp_proxy(dim(15000, 100000), 602)});

  for (Item& item : graphs) {
    const Graph& g = item.graph;
    for (BackboneKind kind : {BackboneKind::kAkpw, BackboneKind::kMaxWeight,
                              BackboneKind::kShortestPath}) {
      const char* bname = to_string(kind);
      Rng rng(7);
      const SpanningTree tree = [&] {
        switch (kind) {
          case BackboneKind::kMaxWeight:
            return max_weight_spanning_tree(g);
          case BackboneKind::kShortestPath:
            return shortest_path_tree_from_center(g);
          default:
            return akpw_low_stretch_tree(g, rng);
        }
      }();
      const StretchReport st = compute_stretch(tree);

      SparsifyOptions opts;
      opts.sigma2 = 100.0;
      opts.backbone = kind;
      const WallTimer t;
      const SparsifyResult res = sparsify(g, opts);
      std::printf("%-12s %-10s %14.3e %10lld %8zu %7.2fs\n", item.gname,
                  bname, st.total_all,
                  static_cast<long long>(res.num_edges()),
                  res.rounds.size(), t.seconds());
      report().section("backbone").push(
          Json::object()
              .set("graph", item.gname)
              .set("backbone", bname)
              .set("total_stretch", st.total_all)
              .set("edges", static_cast<long long>(res.num_edges()))
              .set("rounds", res.rounds.size())
              .set("seconds", t.seconds()));
    }
  }
}

void ablation_embedding() {
  bench::print_banner(
      "Ablation B — embedding parameters t (power steps) and r (vectors)");
  const Graph g = bench::g3_circuit_proxy(dim(120, 400), 603);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreeSolver solver(tree);
  const LinOp solve_p = make_tree_solver_op(solver);
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : tree.tree_edge_ids()) in_p[static_cast<std::size_t>(e)] = 1;

  // Reference ranking: t=3, r=32 (expensive, accurate).
  Rng ref_rng(11);
  const OffTreeEmbedding ref = compute_offtree_heat(
      g, in_p, solve_p, {.power_steps = 3, .num_vectors = 32}, ref_rng);
  auto top_set = [](const OffTreeEmbedding& emb, std::size_t k) {
    std::vector<std::size_t> idx(emb.heat.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                      idx.end(), [&](std::size_t a, std::size_t b) {
                        return emb.heat[a] > emb.heat[b];
                      });
    std::set<EdgeId> s;
    for (std::size_t i = 0; i < k; ++i) {
      s.insert(emb.offtree_edges[idx[i]]);
    }
    return s;
  };
  const std::size_t k = std::min<std::size_t>(512, ref.heat.size());
  const auto ref_top = top_set(ref, k);

  std::printf("%-6s %-6s %16s %10s\n", "t", "r", "top-512 overlap",
              "time(ms)");
  bench::print_rule(50);
  for (int t = 1; t <= 3; ++t) {
    for (Index r : {4, 8, 16}) {
      Rng rng(23);
      const WallTimer timer;
      const OffTreeEmbedding emb = compute_offtree_heat(
          g, in_p, solve_p, {.power_steps = t, .num_vectors = r}, rng);
      const auto top = top_set(emb, k);
      std::size_t overlap = 0;
      for (EdgeId e : top) overlap += ref_top.count(e);
      std::printf("%-6d %-6lld %15.1f%% %9.1f\n", t,
                  static_cast<long long>(r),
                  100.0 * static_cast<double>(overlap) /
                      static_cast<double>(k),
                  timer.milliseconds());
      report().section("embedding").push(
          Json::object()
              .set("power_steps", t)
              .set("num_vectors", static_cast<long long>(r))
              .set("top512_overlap_pct",
                   100.0 * static_cast<double>(overlap) /
                       static_cast<double>(k))
              .set("milliseconds", timer.milliseconds()));
    }
  }
}

void ablation_similarity() {
  bench::print_banner(
      "Ablation C — similarity (dissimilar-edge) policy of densify step 6");
  const Graph g = bench::thermal2_proxy(dim(140, 400), 604);
  std::printf("%-14s %10s %8s %12s %10s\n", "policy", "|Es|", "rounds",
              "sigma2_est", "time(s)");
  bench::print_rule(60);
  struct P {
    const char* name;
    SimilarityPolicy policy;
    Index cap;
  };
  for (const P& p : {P{"none", SimilarityPolicy::kNone, 1},
                     P{"node-disjoint", SimilarityPolicy::kNodeDisjoint, 1},
                     P{"bounded(2)", SimilarityPolicy::kBounded, 2},
                     P{"bounded(4)", SimilarityPolicy::kBounded, 4}}) {
    SparsifyOptions opts;
    opts.sigma2 = 80.0;
    opts.similarity = p.policy;
    opts.node_cap = p.cap;
    const WallTimer t;
    const SparsifyResult res = sparsify(g, opts);
    std::printf("%-14s %10lld %8zu %12.1f %9.2fs\n", p.name,
                static_cast<long long>(res.num_edges()), res.rounds.size(),
                res.sigma2_estimate, t.seconds());
    report().section("similarity").push(
        Json::object()
            .set("policy", p.name)
            .set("edges", static_cast<long long>(res.num_edges()))
            .set("rounds", res.rounds.size())
            .set("sigma2_estimate", res.sigma2_estimate)
            .set("seconds", t.seconds()));
  }
}

void ablation_inner_solver() {
  bench::print_banner("Ablation D — inner L_P solver during densification");
  std::printf("%-10s %-10s %10s %12s %10s\n", "graph", "solver", "|Es|",
              "sigma2_est", "time(s)");
  bench::print_rule(60);
  struct Item {
    const char* name;
    Graph graph;
  };
  std::vector<Item> graphs;
  graphs.push_back({"grid", bench::g3_circuit_proxy(dim(120, 400), 605)});
  graphs.push_back({"tri", bench::thermal2_proxy(dim(110, 380), 606)});
  for (Item& item : graphs) {
    for (InnerSolverKind kind :
         {InnerSolverKind::kTreePcg, InnerSolverKind::kAmg}) {
      SparsifyOptions opts;
      opts.sigma2 = 80.0;
      opts.inner_solver = kind;
      const WallTimer t;
      const SparsifyResult res = sparsify(item.graph, opts);
      std::printf("%-10s %-10s %10lld %12.1f %9.2fs\n", item.name,
                  to_string(kind),
                  static_cast<long long>(res.num_edges()),
                  res.sigma2_estimate, t.seconds());
      report().section("inner_solver").push(
          Json::object()
              .set("graph", item.name)
              .set("solver", to_string(kind))
              .set("edges", static_cast<long long>(res.num_edges()))
              .set("sigma2_estimate", res.sigma2_estimate)
              .set("seconds", t.seconds()));
    }
  }
}

void ablation_rescale() {
  bench::print_banner(
      "Ablation E — scalar edge re-scaling extension (paper §3.1 pointer)");
  const Graph g = bench::g3_circuit_proxy(dim(120, 400), 607);
  const SparsifyResult res = sparsify(g, {.sigma2 = 100.0});
  const RescaleResult rr = rescale_sparsifier(g, res);
  std::printf("two-sided sigma^2 before rescale: %10.2f\n", rr.sigma2_before);
  std::printf("two-sided sigma^2 after rescale:  %10.2f  (scale factor "
              "%.4f)\n",
              rr.sigma2_after, rr.scale);
  report().section("rescale").push(Json::object()
                                       .set("sigma2_before", rr.sigma2_before)
                                       .set("sigma2_after", rr.sigma2_after)
                                       .set("scale", rr.scale));
}

void BM_AkpwTree(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(akpw_low_stretch_tree(g, rng));
  }
}
BENCHMARK(BM_AkpwTree)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_KruskalTree(benchmark::State& state) {
  const Graph g = bench::g3_circuit_proxy(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_spanning_tree(g));
  }
}
BENCHMARK(BM_KruskalTree)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ablation_backbone();
  ablation_embedding();
  ablation_similarity();
  ablation_inner_solver();
  ablation_rescale();
  report().write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
