// Dynamic update layer (src/dynamic/) vs cold rebuild: wall-clock and
// quality (κ via the shared estimator) across update-batch sizes on two
// generator families. Three modes per point:
//
//   cold    — what a user without the dynamic layer does: rebuild the
//             Graph from the updated edge list and run a fresh engine
//             (canonical kMaxWeight backbone, same per-batch seed, so the
//             output matches the exact mode bit for bit);
//   exact   — DynamicSparsifier, bit-identical to cold (tree repair +
//             engine rebind reuse; densification restarts from the tree);
//   refine  — DynamicSparsifier with warm_refine: keeps the previous
//             selection, so an update that leaves κ under target costs
//             one estimation round instead of a full densification.
//
// Emits BENCH_bench_dynamic.json for the perf trajectory.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "graph/generators/community.hpp"
#include "harness.hpp"  // tests/harness.hpp: shared update-script generator
#include "scale/quality.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;

constexpr double kSigma2 = 100.0;
constexpr Index kBatches = 3;

/// Mixed update script: ~60% reweights, ~20% inserts, ~20% deletes per
/// batch, via the differential harness's generator.
std::vector<UpdateBatch> make_script(const Graph& g, EdgeId batch_size,
                                     Rng& rng) {
  ssp::testing::ScriptOptions opts;
  opts.batches = kBatches;
  opts.reweights_per_batch = std::max<Index>(1, batch_size * 3 / 5);
  opts.inserts_per_batch = std::max<Index>(1, batch_size / 5);
  opts.deletes_per_batch = std::max<Index>(1, batch_size / 5);
  return ssp::testing::make_update_script(g, rng, opts);
}

struct ModeResult {
  double update_seconds = 0.0;  ///< batches only (initial build excluded)
  double sigma2 = 0.0;          ///< independent κ estimate, final state
  EdgeId edges = 0;
  std::vector<EdgeId> edge_ids;
};

DynamicOptions make_options(bool refine) {
  DynamicOptions opts;
  opts.base.sigma2 = kSigma2;
  opts.rebuild_threshold = 1e9;  // measure the incremental paths
  opts.warm_refine = refine;
  return opts;
}

ModeResult run_dynamic_mode(const Graph& g,
                            const std::vector<UpdateBatch>& script,
                            bool refine) {
  DynamicSparsifier dyn(g, make_options(refine));
  const WallTimer timer;
  for (const UpdateBatch& batch : script) dyn.apply(batch);
  ModeResult out;
  out.update_seconds = timer.seconds();
  out.edges = dyn.result().num_edges();
  out.edge_ids = dyn.result().edges;
  out.sigma2 = estimate_sparsifier_quality(
                   dyn.graph(), dyn.result().extract(dyn.graph()))
                   .sigma2;
  return out;
}

/// The no-dynamic-layer baseline: after every batch, rebuild the graph
/// from its edge list and run a cold engine with the same canonical
/// backbone and per-batch seed (its edge list matches the exact mode bit
/// for bit — checked — so the comparison is pure wall-clock).
ModeResult run_cold_mode(const Graph& g,
                         const std::vector<UpdateBatch>& script,
                         const std::vector<EdgeId>& exact_final_edges) {
  // Replay graph mutations through a zero-cost shadow driver to obtain
  // each post-batch edge list (mutation cost is negligible next to the
  // sparsifier run; the timer covers only the cold path's own work).
  DynamicOptions shadow_opts = make_options(false);
  const SparsifyOptions base = shadow_opts.base;
  Graph current = g;
  ModeResult out;
  std::vector<UpdateBatch> applied;
  for (std::size_t b = 0; b < script.size(); ++b) {
    // Advance the shadow graph exactly like the layer does.
    const UpdateBatch& batch = script[b];
    for (const WeightUpdate& wu : batch.reweight) {
      current.set_weight(wu.edge, wu.weight);
    }
    for (const Edge& e : batch.insert) current.add_edge(e.u, e.v, e.weight);
    current.remove_edges(batch.remove);
    current.finalize();

    const WallTimer timer;
    // The cold path pays for: copying the edge list into a fresh Graph,
    // finalizing it, and a from-scratch engine run (Kruskal backbone).
    Graph rebuilt(current.num_vertices());
    for (const Edge& e : current.edges()) {
      rebuilt.add_edge(e.u, e.v, e.weight);
    }
    rebuilt.finalize();
    SparsifyOptions cold = base;
    cold.backbone = BackboneKind::kMaxWeight;
    cold.seed = DynamicSparsifier::batch_seed(base.seed,
                                              static_cast<Index>(b) + 1);
    const SparsifyResult res = sparsify(rebuilt, cold);
    out.update_seconds += timer.seconds();
    if (b + 1 == script.size()) {
      out.edges = res.num_edges();
      out.sigma2 =
          estimate_sparsifier_quality(rebuilt, res.extract(rebuilt)).sigma2;
      if (res.edges != exact_final_edges) {
        std::printf("WARNING: cold baseline diverged from exact mode\n");
      }
    }
  }
  return out;
}

void run_point(const char* name, const Graph& g, EdgeId batch_size,
               Json& rows) {
  Rng rng(77);
  const std::vector<UpdateBatch> script = make_script(g, batch_size, rng);

  const ModeResult exact = run_dynamic_mode(g, script, /*refine=*/false);
  const ModeResult refine = run_dynamic_mode(g, script, /*refine=*/true);
  const ModeResult cold = run_cold_mode(g, script, exact.edge_ids);

  const double exact_speedup = cold.update_seconds / exact.update_seconds;
  const double refine_speedup = cold.update_seconds / refine.update_seconds;
  std::printf("%6lld  %8.3f %8.3f %8.3f   %6.2fx %6.2fx   %8.2f %8.2f\n",
              static_cast<long long>(batch_size), cold.update_seconds,
              exact.update_seconds, refine.update_seconds, exact_speedup,
              refine_speedup, exact.sigma2, refine.sigma2);

  rows.push(Json::object()
                .set("graph", name)
                .set("batch_size", static_cast<long long>(batch_size))
                .set("batches", static_cast<long long>(kBatches))
                .set("cold_seconds", cold.update_seconds)
                .set("exact_seconds", exact.update_seconds)
                .set("refine_seconds", refine.update_seconds)
                .set("exact_speedup_vs_cold", exact_speedup)
                .set("refine_speedup_vs_cold", refine_speedup)
                .set("cold_sigma2", cold.sigma2)
                .set("exact_sigma2", exact.sigma2)
                .set("refine_sigma2", refine.sigma2)
                .set("exact_edges", static_cast<long long>(exact.edges))
                .set("refine_edges", static_cast<long long>(refine.edges))
                .set("incremental_beats_cold",
                     exact.update_seconds < cold.update_seconds ||
                         refine.update_seconds < cold.update_seconds));
}

void run_graph(const char* name, const Graph& g, bench::Report& report) {
  bench::print_banner(
      ("dynamic updates vs cold rebuild — " + std::string(name)).c_str());
  std::printf("|V| = %d  |E| = %lld  sigma2 target %.0f  %lld batches/point\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              kSigma2, static_cast<long long>(kBatches));
  std::printf("%6s  %8s %8s %8s   %6s %6s   %8s %8s\n", "batch", "cold_s",
              "exact_s", "refine_s", "ex_spd", "rf_spd", "ex_s2", "rf_s2");
  bench::print_rule(78);
  Json& rows = report.section("cases");
  for (const EdgeId batch_size : {8, 64, 512}) {
    run_point(name, g, batch_size, rows);
  }
}

}  // namespace

int main() {
  set_default_threads(std::max(4, hardware_threads()));
  bench::Report report("bench_dynamic");
  report.root().set("sigma2_target", kSigma2);

  run_graph("g3_circuit_proxy", bench::g3_circuit_proxy(dim(44, 320)),
            report);
  run_graph("dblp_proxy", bench::dblp_proxy(dim(1800, 120000)), report);

  report.write();
  return 0;
}
