// Dynamic update layer (src/dynamic/) vs cold rebuild: wall-clock and
// quality (κ via the shared estimator) across update-batch sizes, two
// generator families, and both estimation modes. Three measurements per
// point:
//
//   cold    — what a user without the dynamic layer does: rerun a fresh
//             engine on the updated graph (canonical kMaxWeight backbone,
//             same per-batch seed, so the output matches the exact mode
//             bit for bit — checked, and a mismatch fails the run). The
//             timer covers ONLY the sparsify() call: graph mutation is
//             paid identically by every mode and the incremental path
//             never copies the graph, so charging a per-batch rebuild to
//             the baseline would inflate every speedup.
//   exact   — DynamicSparsifier, bit-identical to cold (tree repair +
//             engine rebind; under kLocalized the warm start recomputes
//             only the heats the batch dirtied).
//   refine  — DynamicSparsifier with warm_refine: keeps the previous
//             selection, so an update that leaves κ under target costs
//             one estimation round instead of a full densification.
//
// The kLocalized reweight-workload rows are the headline (the exact
// dynamic mode on the parameter-update pattern the paper targets — see
// Workload below); mixed-workload and kPower rows document structural
// churn and the randomized estimator, whose global dataflow makes every
// batch recompute the world. This binary is also the CI regression gate:
// it exits non-zero when a gated (localized, reweight) batch ≤ 64 point
// drops under 1.5× vs cold, or when ANY row's cold/exact bit-parity
// check fails — parity is enforced on every workload, gated or not.
//
// Emits BENCH_bench_dynamic.json for the perf trajectory.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/options_io.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "graph/generators/community.hpp"
#include "harness.hpp"  // tests/harness.hpp: shared update-script generator
#include "scale/quality.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace ssp;
using bench::dim;
using bench::Json;

constexpr double kSigma2 = 100.0;
constexpr Index kBatches = 5;
constexpr double kGateMinSpeedup = 1.5;  ///< localized, batch_size <= 64
constexpr EdgeId kGateMaxBatch = 64;

/// The two measured workloads. `kReweight` is the paper's motivating
/// pattern — circuit parameter updates change edge weights, not topology —
/// and is the headline the CI gate runs against: reweight-only batches
/// keep the graph finalized and (when no tree edge is touched) the
/// backbone bit-valid, so the incremental path pays none of the O(m)
/// compaction / re-root costs. `kMixed` (~60% reweights, ~20% inserts,
/// ~20% deletes) stresses the structural-repair machinery and is reported
/// ungated: every delete batch inherently costs O(m) compaction that the
/// cold baseline also pays only inside its rebuild.
enum class Workload { kReweight, kMixed };

const char* to_string(Workload w) {
  return w == Workload::kReweight ? "reweight" : "mixed";
}

std::vector<UpdateBatch> make_script(const Graph& g, EdgeId batch_size,
                                     Workload workload, Rng& rng) {
  ssp::testing::ScriptOptions opts;
  opts.batches = kBatches;
  if (workload == Workload::kReweight) {
    opts.reweights_per_batch = std::max<Index>(1, batch_size);
    opts.inserts_per_batch = 0;
    opts.deletes_per_batch = 0;
  } else {
    opts.reweights_per_batch = std::max<Index>(1, batch_size * 3 / 5);
    opts.inserts_per_batch = std::max<Index>(1, batch_size / 5);
    opts.deletes_per_batch = std::max<Index>(1, batch_size / 5);
  }
  return ssp::testing::make_update_script(g, rng, opts);
}

struct ModeResult {
  double update_seconds = 0.0;  ///< batches only (initial build excluded)
  double sigma2 = 0.0;          ///< independent κ estimate, final state
  EdgeId edges = 0;
  EdgeId heats_reused = 0;      ///< localized exact mode only
  EdgeId heats_recomputed = 0;
  std::vector<EdgeId> edge_ids;
};

/// Failures accumulated across points; reported and turned into a
/// non-zero exit at the end so one bad point doesn't mask another.
struct Gate {
  std::vector<std::string> failures;
  void fail(std::string what) {
    std::printf("GATE FAILURE: %s\n", what.c_str());
    failures.push_back(std::move(what));
  }
};

DynamicOptions make_options(bool refine, EstimationMode estimation) {
  DynamicOptions opts;
  opts.base.sigma2 = kSigma2;
  opts.base.estimation = estimation;
  opts.rebuild_threshold = 1e9;  // measure the incremental paths
  opts.warm_refine = refine;
  return opts;
}

ModeResult run_dynamic_mode(const Graph& g,
                            const std::vector<UpdateBatch>& script,
                            bool refine, EstimationMode estimation) {
  DynamicSparsifier dyn(g, make_options(refine, estimation));
  const WallTimer timer;
  for (const UpdateBatch& batch : script) dyn.apply(batch);
  ModeResult out;
  out.update_seconds = timer.seconds();
  out.edges = dyn.result().num_edges();
  out.edge_ids = dyn.result().edges;
  for (std::size_t b = 1; b < dyn.history().size(); ++b) {
    out.heats_reused += dyn.history()[b].heats_reused;
    out.heats_recomputed += dyn.history()[b].heats_recomputed;
  }
  out.sigma2 = estimate_sparsifier_quality(
                   dyn.graph(), dyn.result().extract(dyn.graph()))
                   .sigma2;
  return out;
}

/// The no-dynamic-layer baseline: after every batch, run a cold engine on
/// the updated graph with the same canonical backbone and per-batch seed.
/// Mutations advance a shadow graph OUTSIDE the timer — every mode pays
/// them equally, and the old habit of also timing a full Graph copy per
/// batch overstated cold cost (and thus every speedup) by the copy's
/// O(m) for work the incremental path never does.
ModeResult run_cold_mode(const Graph& g,
                         const std::vector<UpdateBatch>& script,
                         EstimationMode estimation) {
  const SparsifyOptions base = make_options(false, estimation).base;
  Graph current = g;
  ModeResult out;
  for (std::size_t b = 0; b < script.size(); ++b) {
    // Advance the shadow graph exactly like the layer does — untimed.
    const UpdateBatch& batch = script[b];
    for (const WeightUpdate& wu : batch.reweight) {
      current.set_weight(wu.edge, wu.weight);
    }
    for (const Edge& e : batch.insert) current.add_edge(e.u, e.v, e.weight);
    current.remove_edges(batch.remove);
    current.finalize();

    SparsifyOptions cold = base;
    cold.backbone = BackboneKind::kMaxWeight;
    cold.seed = DynamicSparsifier::batch_seed(base.seed,
                                              static_cast<Index>(b) + 1);
    const WallTimer timer;
    const SparsifyResult res = sparsify(current, cold);
    out.update_seconds += timer.seconds();
    if (b + 1 == script.size()) {
      out.edges = res.num_edges();
      out.edge_ids = res.edges;
      // No independent quality estimate here: bit-parity with the exact
      // mode is enforced below, so cold's κ IS exact's κ — measuring it
      // again would double the most expensive part of every point.
    }
  }
  return out;
}

void run_point(const char* name, const Graph& g, EdgeId batch_size,
               EstimationMode estimation, Workload workload, bool gated,
               Json& rows, Gate& gate) {
  Rng rng(77);
  const std::vector<UpdateBatch> script =
      make_script(g, batch_size, workload, rng);

  const ModeResult exact =
      run_dynamic_mode(g, script, /*refine=*/false, estimation);
  const ModeResult refine =
      run_dynamic_mode(g, script, /*refine=*/true, estimation);
  const ModeResult cold = run_cold_mode(g, script, estimation);

  if (cold.edge_ids != exact.edge_ids) {
    gate.fail(std::string(name) + " estimation=" + to_string(estimation) +
              " batch=" + std::to_string(batch_size) +
              ": exact mode diverged from cold rebuild (bit-parity broken)");
  }

  const double exact_speedup = cold.update_seconds / exact.update_seconds;
  const double refine_speedup = cold.update_seconds / refine.update_seconds;
  if (gated && estimation == EstimationMode::kLocalized &&
      batch_size <= kGateMaxBatch && exact_speedup < kGateMinSpeedup) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s localized %s batch=%lld: exact speedup %.2fx < %.1fx",
                  name, to_string(workload),
                  static_cast<long long>(batch_size), exact_speedup,
                  kGateMinSpeedup);
    gate.fail(buf);
  }

  std::printf(
      "%6lld  %8.3f %8.3f %8.3f   %6.2fx %6.2fx   %8.2f %8.2f  %5.1f%%\n",
      static_cast<long long>(batch_size), cold.update_seconds,
      exact.update_seconds, refine.update_seconds, exact_speedup,
      refine_speedup, exact.sigma2, refine.sigma2,
      exact.heats_reused + exact.heats_recomputed == 0
          ? 0.0
          : 100.0 * static_cast<double>(exact.heats_reused) /
                static_cast<double>(exact.heats_reused +
                                    exact.heats_recomputed));

  rows.push(Json::object()
                .set("graph", name)
                .set("estimation", to_string(estimation))
                .set("workload", to_string(workload))
                .set("gated", gated)
                .set("batch_size", static_cast<long long>(batch_size))
                .set("batches", static_cast<long long>(kBatches))
                .set("cold_seconds", cold.update_seconds)
                .set("exact_seconds", exact.update_seconds)
                .set("refine_seconds", refine.update_seconds)
                .set("exact_speedup_vs_cold", exact_speedup)
                .set("refine_speedup_vs_cold", refine_speedup)
                .set("cold_sigma2", exact.sigma2)  // == exact by bit-parity
                .set("exact_sigma2", exact.sigma2)
                .set("refine_sigma2", refine.sigma2)
                .set("exact_edges", static_cast<long long>(exact.edges))
                .set("refine_edges", static_cast<long long>(refine.edges))
                .set("heats_reused", static_cast<long long>(exact.heats_reused))
                .set("heats_recomputed",
                     static_cast<long long>(exact.heats_recomputed))
                .set("bit_parity", cold.edge_ids == exact.edge_ids)
                .set("incremental_beats_cold",
                     exact.update_seconds < cold.update_seconds ||
                         refine.update_seconds < cold.update_seconds));
}

void run_graph(const char* name, const Graph& g, EstimationMode estimation,
               Workload workload, bool gated, bench::Report& report,
               Gate& gate) {
  bench::print_banner(("dynamic updates vs cold rebuild — " +
                       std::string(name) + " [" + to_string(estimation) +
                       ", " + to_string(workload) + "]")
                          .c_str());
  std::printf("|V| = %d  |E| = %lld  sigma2 target %.0f  %lld batches/point\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              kSigma2, static_cast<long long>(kBatches));
  std::printf("%6s  %8s %8s %8s   %6s %6s   %8s %8s  %6s\n", "batch",
              "cold_s", "exact_s", "refine_s", "ex_spd", "rf_spd", "ex_s2",
              "rf_s2", "reuse");
  bench::print_rule(84);
  Json& rows = report.section("cases");
  for (const EdgeId batch_size : {8, 64, 512}) {
    run_point(name, g, batch_size, estimation, workload, gated, rows, gate);
  }
}

}  // namespace

int main() {
  set_default_threads(std::max(4, hardware_threads()));
  bench::Report report("bench_dynamic");
  report.root().set("sigma2_target", kSigma2);
  Gate gate;

  // Headline: the localized exact route under the parameter-update
  // workload (reweight-only batches — the circuit-simulation pattern the
  // paper targets). These rows carry the CI speedup gate.
  run_graph("g3_circuit_proxy", bench::g3_circuit_proxy(dim(256, 512)),
            EstimationMode::kLocalized, Workload::kReweight, /*gated=*/true,
            report, gate);
  run_graph("dblp_proxy", bench::dblp_proxy(dim(40000, 300000)),
            EstimationMode::kLocalized, Workload::kReweight, /*gated=*/true,
            report, gate);

  // Structural-churn rows: inserts and deletes force O(m) compaction and
  // tree surgery per batch, which the cold baseline amortises inside its
  // rebuild — documented, not gated (bit-parity is still enforced).
  run_graph("g3_circuit_proxy", bench::g3_circuit_proxy(dim(160, 512)),
            EstimationMode::kLocalized, Workload::kMixed, /*gated=*/false,
            report, gate);
  run_graph("dblp_proxy", bench::dblp_proxy(dim(40000, 300000)),
            EstimationMode::kLocalized, Workload::kMixed, /*gated=*/false,
            report, gate);

  // Secondary: the randomized power estimator at the historical sizes —
  // its global dataflow recomputes everything per batch, so exact rarely
  // beats cold here; documented, not gated.
  run_graph("g3_circuit_proxy", bench::g3_circuit_proxy(dim(44, 320)),
            EstimationMode::kPower, Workload::kMixed, /*gated=*/false,
            report, gate);
  run_graph("dblp_proxy", bench::dblp_proxy(dim(1800, 120000)),
            EstimationMode::kPower, Workload::kMixed, /*gated=*/false,
            report, gate);

  report.write();
  if (!gate.failures.empty()) {
    std::printf("\n%zu gate failure(s) — failing the bench.\n",
                gate.failures.size());
    return 1;
  }
  std::printf("\nGate passed: localized exact >= %.1fx vs cold at batch <= "
              "%lld, bit-parity intact.\n",
              kGateMinSpeedup, static_cast<long long>(kGateMaxBatch));
  return 0;
}
