#pragma once

/// \file bench_common.hpp
/// Shared helpers for the paper-reproduction benchmark binaries: the proxy
/// workloads standing in for the paper's SuiteSparse matrices (DESIGN.md
/// §3), fixed-width table printing, and the machine-readable
/// `BENCH_<name>.json` report writer behind the perf-trajectory tracking
/// (every bench emits stage timings, graph sizes, and quality metrics as
/// JSON next to its text tables).
///
/// Set SSP_BENCH_LARGE=1 to run paper-scale sizes (millions of vertices);
/// the defaults are laptop-scale and finish each binary in well under two
/// minutes while preserving every trend.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators/airfoil.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp::bench {

/// True when SSP_BENCH_LARGE=1: paper-scale workloads.
inline bool large_mode() {
  const char* v = std::getenv("SSP_BENCH_LARGE");
  return v != nullptr && std::string(v) == "1";
}

/// Scales a default dimension up in large mode.
inline Vertex dim(Vertex normal, Vertex large) {
  return large_mode() ? large : normal;
}

// ---- Proxy workloads (paper test case -> synthetic stand-in) ----

/// `G3_circuit` (1.6M-node circuit mesh): 2-D grid, conductances over two
/// decades.
inline Graph g3_circuit_proxy(Vertex side, std::uint64_t seed = 101) {
  Rng rng(seed);
  return grid_2d(side, side, WeightModel::log_uniform(0.1, 10.0), &rng);
}

/// `thermal2` (1.2M-node FE thermal problem): triangulated grid, smooth
/// coefficient variation.
inline Graph thermal2_proxy(Vertex side, std::uint64_t seed = 102) {
  Rng rng(seed);
  return triangulated_grid(side, side, WeightModel::uniform(0.5, 2.0), &rng);
}

/// `ecology2` (1M-node 5-point stencil): unit-weight 2-D grid.
inline Graph ecology2_proxy(Vertex side, std::uint64_t /*seed*/ = 103) {
  return grid_2d(side, side);
}

/// `tmt_sym` (0.7M-node electromagnetics FE): 8-neighbor grid.
inline Graph tmt_sym_proxy(Vertex side, std::uint64_t seed = 104) {
  Rng rng(seed);
  return grid_2d_8(side, side, WeightModel::uniform(0.5, 2.0), &rng);
}

/// `parabolic_fem` (0.5M-node parabolic FE): thin 3-D slab.
inline Graph parabolic_fem_proxy(Vertex side, std::uint64_t seed = 105) {
  Rng rng(seed);
  return grid_3d(side, side, 4, WeightModel::uniform(0.5, 2.0), &rng);
}

/// FE solids for Table 1 / Table 4 (fe_rotor, brack2, fe_tooth, auto):
/// 3-D grids with log-uniform stiffness.
inline Graph fe_solid_proxy(Vertex side, std::uint64_t seed) {
  Rng rng(seed);
  return grid_3d(side, side, side, WeightModel::log_uniform(0.2, 5.0), &rng);
}

/// Protein / structural matrices (pdb1HYS, bcsstk36, raefsky3): kNN graph
/// of a clustered 3-D point cloud. Inverse-distance weights keep the
/// dynamic range physical (Gaussian similarities of far-apart clusters
/// underflow and make reference eigensolves meaningless).
inline Graph protein_proxy(Index points, Index k, std::uint64_t seed) {
  Rng rng(seed);
  const PointCloud pc = gaussian_mixture_points(points, 3, 12, 0.03, rng);
  return knn_graph(pc, k, KnnWeight::kInverseDistance);
}

/// `coAuthorsDBLP` (300k-node collaboration network): preferential
/// attachment.
inline Graph dblp_proxy(Vertex n, std::uint64_t seed = 106) {
  Rng rng(seed);
  return barabasi_albert(n, 3, rng);
}

/// `appu` (14k-node dense random graph, ~65 nnz/row).
inline Graph appu_proxy(Vertex n, std::uint64_t seed = 107) {
  Rng rng(seed);
  return erdos_renyi_connected(n, static_cast<EdgeId>(n) * 30, rng);
}

/// `RCV-80NN` (80-nearest-neighbor document graph): 80-NN over a
/// Gaussian-mixture embedding cloud.
inline Graph rcv_proxy(Index points, std::uint64_t seed = 108) {
  Rng rng(seed);
  const PointCloud pc = gaussian_mixture_points(points, 16, 20, 0.08, rng);
  return knn_graph(pc, 80);
}

// ---- Machine-readable reports (BENCH_<name>.json) ----

/// Minimal ordered JSON value: object (insertion-ordered), array, number,
/// string, bool, null. Built fluently, dumped with stable formatting so
/// report diffs stay reviewable.
class Json {
 public:
  Json() = default;  // null
  Json(double v) : kind_(Kind::kNumber), number_(v) {}
  Json(int v) : kind_(Kind::kNumber), number_(v) {}
  Json(long v) : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(long long v) : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(std::size_t v)
      : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Object field (created on first use; this must be an object/null).
  Json& operator[](const std::string& key) {
    require(Kind::kObject);
    for (auto& [k, v] : members_) {
      if (k == key) return v;
    }
    members_.emplace_back(key, Json());
    return members_.back().second;
  }

  /// Sets an object field and returns *this for chaining.
  Json& set(const std::string& key, Json value) {
    (*this)[key] = std::move(value);
    return *this;
  }

  /// Appends to an array (this must be an array/null); returns the
  /// appended element.
  Json& push(Json value) {
    require(Kind::kArray);
    items_.push_back(std::move(value));
    return items_.back();
  }

  void dump(std::string& out, int depth = 0) const {
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        return;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::kNumber: {
        if (!std::isfinite(number_)) {
          out += "null";  // JSON has no NaN/Inf
          return;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        out += buf;
        return;
      }
      case Kind::kString:
        append_escaped(out, string_);
        return;
      case Kind::kArray: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
          if (i != 0) out += ", ";
          items_[i].dump(out, depth + 1);
        }
        out += ']';
        return;
      }
      case Kind::kObject: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out += i == 0 ? "\n" : ",\n";
          out.append(static_cast<std::size_t>(depth + 1) * 2, ' ');
          append_escaped(out, members_[i].first);
          out += ": ";
          members_[i].second.dump(out, depth + 1);
        }
        if (!members_.empty()) {
          out += '\n';
          out.append(static_cast<std::size_t>(depth) * 2, ' ');
        }
        out += '}';
        return;
      }
    }
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  void require(Kind kind) {
    if (kind_ == Kind::kNull) kind_ = kind;  // lazily become a container
    if (kind_ != kind) {
      std::fprintf(stderr, "bench::Json: container kind mismatch\n");
      std::abort();
    }
  }

  static void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  bool bool_ = false;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

// ---- Latency summaries ----

/// Nearest-rank percentile over an ascending-sorted sample vector;
/// q in [0,1]. Shared by every bench that reports latency percentiles so
/// BENCH_*.json fields agree on one definition.
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Full distribution summary of a latency sample (any unit — callers
/// scale before or after): count/min/mean/max plus the percentile ladder
/// the perf-trajectory tracking plots. Sorts a copy; samples need not be
/// ordered.
inline Json latency_summary(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double s : samples) sum += s;
  const auto n = static_cast<double>(samples.size());
  return Json::object()
      .set("count", samples.size())
      .set("min", samples.empty() ? 0.0 : samples.front())
      .set("mean", samples.empty() ? 0.0 : sum / n)
      .set("p50", percentile(samples, 0.50))
      .set("p90", percentile(samples, 0.90))
      .set("p95", percentile(samples, 0.95))
      .set("p99", percentile(samples, 0.99))
      .set("max", samples.empty() ? 0.0 : samples.back());
}

/// Accumulates one bench binary's structured results and writes them to
/// `BENCH_<name>.json` in the working directory (explicitly via write(),
/// or from the destructor as a backstop). Typical use:
///
///   bench::Report report("table1_eigenvalues");
///   report.section("cases").push(Json::object()
///       .set("graph", name).set("n", g.num_vertices())
///       .set("seconds", t.seconds()));
///   ...
///   report.write();
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {
    root_ = Json::object();
    root_.set("bench", name_).set("large_mode", large_mode());
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    if (!written_) write();
  }

  [[nodiscard]] Json& root() { return root_; }

  /// Root-level array, created on first use.
  [[nodiscard]] Json& section(const std::string& key) { return root_[key]; }

  void write() {
    const std::string path = "BENCH_" + name_ + ".json";
    std::string out;
    root_.dump(out);
    out += '\n';
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
    }
    written_ = true;
  }

 private:
  std::string name_;
  Json root_;
  bool written_ = false;
};

// ---- Table printing ----

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// Prints a banner naming the reproduced paper artifact.
inline void print_banner(const char* title) {
  std::printf("\n");
  print_rule(78);
  std::printf("%s\n", title);
  print_rule(78);
}

}  // namespace ssp::bench
