#pragma once

/// \file bench_common.hpp
/// Shared helpers for the paper-reproduction benchmark binaries: the proxy
/// workloads standing in for the paper's SuiteSparse matrices (DESIGN.md
/// §3) and fixed-width table printing.
///
/// Set SSP_BENCH_LARGE=1 to run paper-scale sizes (millions of vertices);
/// the defaults are laptop-scale and finish each binary in well under two
/// minutes while preserving every trend.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/generators/airfoil.hpp"
#include "graph/generators/knn.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/points.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp::bench {

/// True when SSP_BENCH_LARGE=1: paper-scale workloads.
inline bool large_mode() {
  const char* v = std::getenv("SSP_BENCH_LARGE");
  return v != nullptr && std::string(v) == "1";
}

/// Scales a default dimension up in large mode.
inline Vertex dim(Vertex normal, Vertex large) {
  return large_mode() ? large : normal;
}

// ---- Proxy workloads (paper test case -> synthetic stand-in) ----

/// `G3_circuit` (1.6M-node circuit mesh): 2-D grid, conductances over two
/// decades.
inline Graph g3_circuit_proxy(Vertex side, std::uint64_t seed = 101) {
  Rng rng(seed);
  return grid_2d(side, side, WeightModel::log_uniform(0.1, 10.0), &rng);
}

/// `thermal2` (1.2M-node FE thermal problem): triangulated grid, smooth
/// coefficient variation.
inline Graph thermal2_proxy(Vertex side, std::uint64_t seed = 102) {
  Rng rng(seed);
  return triangulated_grid(side, side, WeightModel::uniform(0.5, 2.0), &rng);
}

/// `ecology2` (1M-node 5-point stencil): unit-weight 2-D grid.
inline Graph ecology2_proxy(Vertex side, std::uint64_t /*seed*/ = 103) {
  return grid_2d(side, side);
}

/// `tmt_sym` (0.7M-node electromagnetics FE): 8-neighbor grid.
inline Graph tmt_sym_proxy(Vertex side, std::uint64_t seed = 104) {
  Rng rng(seed);
  return grid_2d_8(side, side, WeightModel::uniform(0.5, 2.0), &rng);
}

/// `parabolic_fem` (0.5M-node parabolic FE): thin 3-D slab.
inline Graph parabolic_fem_proxy(Vertex side, std::uint64_t seed = 105) {
  Rng rng(seed);
  return grid_3d(side, side, 4, WeightModel::uniform(0.5, 2.0), &rng);
}

/// FE solids for Table 1 / Table 4 (fe_rotor, brack2, fe_tooth, auto):
/// 3-D grids with log-uniform stiffness.
inline Graph fe_solid_proxy(Vertex side, std::uint64_t seed) {
  Rng rng(seed);
  return grid_3d(side, side, side, WeightModel::log_uniform(0.2, 5.0), &rng);
}

/// Protein / structural matrices (pdb1HYS, bcsstk36, raefsky3): kNN graph
/// of a clustered 3-D point cloud. Inverse-distance weights keep the
/// dynamic range physical (Gaussian similarities of far-apart clusters
/// underflow and make reference eigensolves meaningless).
inline Graph protein_proxy(Index points, Index k, std::uint64_t seed) {
  Rng rng(seed);
  const PointCloud pc = gaussian_mixture_points(points, 3, 12, 0.03, rng);
  return knn_graph(pc, k, KnnWeight::kInverseDistance);
}

/// `coAuthorsDBLP` (300k-node collaboration network): preferential
/// attachment.
inline Graph dblp_proxy(Vertex n, std::uint64_t seed = 106) {
  Rng rng(seed);
  return barabasi_albert(n, 3, rng);
}

/// `appu` (14k-node dense random graph, ~65 nnz/row).
inline Graph appu_proxy(Vertex n, std::uint64_t seed = 107) {
  Rng rng(seed);
  return erdos_renyi_connected(n, static_cast<EdgeId>(n) * 30, rng);
}

/// `RCV-80NN` (80-nearest-neighbor document graph): 80-NN over a
/// Gaussian-mixture embedding cloud.
inline Graph rcv_proxy(Index points, std::uint64_t seed = 108) {
  Rng rng(seed);
  const PointCloud pc = gaussian_mixture_points(points, 16, 20, 0.08, rng);
  return knn_graph(pc, 80);
}

// ---- Table printing ----

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// Prints a banner naming the reproduced paper artifact.
inline void print_banner(const char* title) {
  std::printf("\n");
  print_rule(78);
  std::printf("%s\n", title);
  print_rule(78);
}

}  // namespace ssp::bench
