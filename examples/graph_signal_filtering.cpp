// Graph-signal filtering demo (the paper's §3.4 "low-pass graph filter"
// view): apply heat-kernel smoothing exp(-tau L) to signals of increasing
// frequency on a mesh and on its sigma^2 = 100 sparsifier, and show that
// the sparsifier reproduces the filter on smooth content.
//
//   build/examples/graph_signal_filtering

#include <iostream>

#include "core/graph_filter.hpp"
#include "core/sparsifier.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/laplacian.hpp"
#include "util/rng.hpp"

int main() {
  ssp::Rng wrng(21);
  const ssp::Graph g = ssp::triangulated_grid(
      90, 90, ssp::WeightModel::uniform(0.5, 2.0), &wrng);
  std::cout << "mesh: |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  const ssp::SparsifyResult sp = ssp::sparsify(g, {.sigma2 = 100.0});
  const ssp::CsrMatrix lg = ssp::laplacian(g);
  const ssp::CsrMatrix lp = ssp::laplacian(sp.extract(g));
  std::cout << "sparsifier: " << sp.num_edges() << " edges (sigma^2 est "
            << sp.sigma2_estimate << ")\n\n";

  ssp::Rng rng(4);
  std::cout << "high-freq%   smoothness(L_G)   filter disagreement\n";
  std::cout << "---------------------------------------------------\n";
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const ssp::Vec sig = ssp::synthesize_signal(lg, frac, rng);
    const double s = ssp::smoothness(lg, sig);
    const double err = ssp::filter_agreement(
        lg, lp, sig, {.tau = 2.0, .degree = 32}, rng);
    std::cout.width(9);
    std::cout << frac * 100 << "   ";
    std::cout.width(15);
    std::cout << s << "   ";
    std::cout.width(19);
    std::cout << err << "\n";
  }
  std::cout << "\nlow-frequency signals filter identically on G and P; the\n"
               "disagreement grows with frequency — the sparsifier is a\n"
               "low-pass approximation of the graph (paper §3.4).\n";
  return 0;
}
