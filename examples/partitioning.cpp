// Spectral graph partitioning demo (the paper's Table 3 scenario): bisect a
// mesh with the approximate Fiedler vector computed by (a) a direct sparse
// Cholesky solver and (b) PCG preconditioned by a σ² ≤ 200 sparsifier, then
// compare time, memory, balance, and sign disagreement.
//
//   build/examples/partitioning

#include <iostream>

#include "graph/generators/lattice.hpp"
#include "partition/spectral_bisection.hpp"
#include "util/rng.hpp"

int main() {
  ssp::Rng rng(3);
  const ssp::Graph g = ssp::triangulated_grid(
      180, 180, ssp::WeightModel::uniform(0.5, 2.0), &rng);
  std::cout << "mesh: |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n\n";

  ssp::BisectionOptions direct;
  direct.solver = ssp::FiedlerSolverKind::kDirectCholesky;
  const ssp::BisectionResult rd = ssp::spectral_bisection(g, direct);

  ssp::BisectionOptions iterative;
  iterative.solver = ssp::FiedlerSolverKind::kSparsifierPcg;
  iterative.sparsify.sigma2 = 200.0;
  const ssp::BisectionResult ri = ssp::spectral_bisection(g, iterative);

  auto mb = [](std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  std::cout << "direct (sparse Cholesky):\n"
            << "  solve time  " << rd.solve_seconds << " s\n"
            << "  memory      " << mb(rd.solver_memory_bytes) << " MB\n"
            << "  balance     " << rd.metrics.balance << "\n"
            << "  conductance " << rd.metrics.conductance << "\n\n";
  std::cout << "iterative (sigma^2=200 sparsifier PCG):\n"
            << "  sparsify    " << ri.sparsify_seconds << " s, "
            << ri.sparsifier_edges << " edges\n"
            << "  solve time  " << ri.solve_seconds << " s\n"
            << "  memory      " << mb(ri.solver_memory_bytes) << " MB\n"
            << "  balance     " << ri.metrics.balance << "\n"
            << "  conductance " << ri.metrics.conductance << "\n\n";

  const double rel_err = ssp::sign_disagreement(rd.partition, ri.partition);
  std::cout << "Rel.Err between the two partitions: " << rel_err << "\n";
  std::cout << "speedup (solve time): "
            << rd.solve_seconds / ri.solve_seconds << "x, memory saving: "
            << mb(rd.solver_memory_bytes) / mb(ri.solver_memory_bytes)
            << "x\n";
  return rel_err < 0.05 ? 0 : 1;
}
