// Quickstart: sparsify a weighted mesh to a chosen spectral-similarity
// level and inspect the result.
//
//   build/examples/quickstart [sigma2]
//
// Demonstrates the core public API: build a Graph, call ssp::sparsify with
// a σ² target, extract the sparsifier, and verify the similarity estimate.

#include <cstdlib>
#include <iostream>

#include "core/sparsifier.hpp"
#include "graph/generators/lattice.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const double sigma2 = argc > 1 ? std::atof(argv[1]) : 100.0;

  // A 128x128 grid with conductance-like weights spanning two decades —
  // the structure of the paper's circuit/thermal test matrices.
  ssp::Rng weights(7);
  const ssp::Graph g = ssp::grid_2d(
      128, 128, ssp::WeightModel::log_uniform(0.1, 10.0), &weights);

  std::cout << "input graph: |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  ssp::SparsifyOptions opts;
  opts.sigma2 = sigma2;  // target relative condition number
  const ssp::SparsifyResult result = ssp::sparsify(g, opts);

  std::cout << "sparsifier:  |Es| = " << result.num_edges() << "  ("
            << static_cast<double>(result.num_edges()) /
                   static_cast<double>(g.num_vertices())
            << " x |V|)\n";
  std::cout << "sigma^2 target " << sigma2 << "  ->  estimate "
            << result.sigma2_estimate
            << (result.reached_target ? "  [reached]" : "  [NOT reached]")
            << "\n";
  std::cout << "lambda_min = " << result.lambda_min
            << ", lambda_max = " << result.lambda_max << "\n";
  std::cout << "densification rounds: " << result.rounds.size()
            << ", total time " << result.total_seconds << " s\n";
  for (const ssp::DensifyRound& r : result.rounds) {
    std::cout << "  round " << r.round << ": sigma2 = " << r.sigma2_estimate
              << ", theta = " << r.theta << ", added " << r.edges_added
              << " edges\n";
  }

  const ssp::Graph p = result.extract(g);
  std::cout << "extracted sparsifier graph with " << p.num_edges()
            << " edges\n";
  return result.reached_target ? 0 : 1;
}
