// Quickstart: sparsify a weighted mesh to a chosen spectral-similarity
// level and inspect the result — first with the one-shot wrapper, then
// with the staged ssp::Sparsifier engine (observer + warm-started refine).
//
//   build/example_quickstart [sigma2]
//
// Prefer the `with_*` named setters when configuring SparsifyOptions —
// they validate eagerly; direct field pokes are only checked when the
// engine is constructed and may be restricted in a future release.

#include <cstdlib>
#include <iostream>

#include "core/options_io.hpp"
#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "graph/generators/lattice.hpp"
#include "util/rng.hpp"

namespace {

/// Live telemetry: one line per densification round, stage timings on
/// demand. Returning false from on_round would cancel the run.
class PrintObserver : public ssp::StageObserver {
 public:
  bool on_round(const ssp::DensifyRound& r) override {
    std::cout << "  round " << r.round << ": sigma2 = " << r.sigma2_estimate
              << ", theta = " << r.theta << ", added " << r.edges_added
              << " edges (" << r.seconds << " s)\n";
    return true;
  }
  void on_stage(ssp::StageKind stage, double seconds) override {
    if (stage == ssp::StageKind::kBackbone) {
      std::cout << "  [" << ssp::to_string(stage) << " built in " << seconds
                << " s]\n";
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const double sigma2 = argc > 1 ? std::atof(argv[1]) : 100.0;

  // A 128x128 grid with conductance-like weights spanning two decades —
  // the structure of the paper's circuit/thermal test matrices.
  ssp::Rng weights(7);
  const ssp::Graph g = ssp::grid_2d(
      128, 128, ssp::WeightModel::log_uniform(0.1, 10.0), &weights);

  std::cout << "input graph: |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  const auto opts = ssp::SparsifyOptions{}.with_sigma2(sigma2).with_seed(42);

  // --- One-shot wrapper: configure, call, done. ---------------------------
  const ssp::SparsifyResult result = ssp::sparsify(g, opts);

  std::cout << "sparsifier:  |Es| = " << result.num_edges() << "  ("
            << static_cast<double>(result.num_edges()) /
                   static_cast<double>(g.num_vertices())
            << " x |V|)\n";
  std::cout << "sigma^2 target " << sigma2 << "  ->  estimate "
            << result.sigma2_estimate
            << (result.reached_target ? "  [reached]" : "  [NOT reached]")
            << "\n";
  std::cout << "lambda_min = " << result.lambda_min
            << ", lambda_max = " << result.lambda_max << "\n";
  std::cout << "densification rounds: " << result.rounds.size()
            << ", total time " << result.total_seconds << " s\n";

  const ssp::Graph p = result.extract(g);
  std::cout << "extracted sparsifier graph with " << p.num_edges()
            << " edges\n";

  // --- Staged engine: observers, per-round stepping, warm refine. ---------
  std::cout << "\nengine flow (same seed -> identical edges):\n";
  ssp::Sparsifier engine(g, opts);
  PrintObserver observer;
  engine.set_observer(&observer);
  engine.run();  // or: while (!engine.done()) engine.step();
  std::cout << "engine reproduces the one-shot edge list: "
            << (engine.result().edges == result.edges ? "yes" : "NO")
            << "\n";

  // Warm start at a 2x tighter target: reuses the backbone, solver
  // factorizations, and workspace instead of re-sparsifying from scratch.
  // (Targets must stay > 1 — skip the demo for near-exact inputs.)
  if (sigma2 / 2.0 > 1.0) {
    engine.refine(sigma2 / 2.0);
    engine.run();
    std::cout << "refined to sigma^2 = " << sigma2 / 2.0 << ": |Es| = "
              << engine.result().num_edges() << ", estimate "
              << engine.result().sigma2_estimate << "\n";
  }

  return result.reached_target ? 0 : 1;
}
