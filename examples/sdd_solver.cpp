// SDD solver demo (the paper's Table 2 scenario): precondition PCG with
// similarity-aware sparsifiers at two σ² levels and compare iteration
// counts against plain CG and the bare spanning-tree preconditioner.
//
//   build/examples/sdd_solver

#include <iostream>

#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "core/sparsifier_preconditioner.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  ssp::Rng rng(11);
  const ssp::Graph g = ssp::grid_2d(
      150, 150, ssp::WeightModel::log_uniform(0.1, 10.0), &rng);
  const ssp::CsrMatrix lg = ssp::laplacian(g);

  // Random RHS, solved to ||Ax-b|| < 1e-3 ||b|| as in the paper.
  ssp::Vec b = rng.normal_vector(g.num_vertices());
  ssp::project_out_mean(b);
  const ssp::PcgOptions opts = {.max_iterations = 5000,
                                .rel_tolerance = 1e-3,
                                .project_constants = true};

  std::cout << "solving L x = b on |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << " (tol 1e-3)\n\n";

  {  // plain CG
    ssp::Vec x(b.size(), 0.0);
    const ssp::PcgResult r = ssp::cg_solve(lg, b, x, opts);
    std::cout << "plain CG:                    " << r.iterations
              << " iterations\n";
  }
  {  // bare spanning tree preconditioner
    const ssp::SpanningTree tree = ssp::max_weight_spanning_tree(g);
    const ssp::TreePreconditioner tp(tree);
    ssp::Vec x(b.size(), 0.0);
    const ssp::PcgResult r = ssp::pcg_solve(lg, b, x, tp, opts);
    std::cout << "spanning-tree preconditioner: " << r.iterations
              << " iterations\n";
  }
  // One engine serves both σ² levels: the loose sparsifier is built cold,
  // the tight one via a warm-started refine() that reuses the backbone,
  // tree solver/preconditioner, warm edge set, and embedding workspace.
  ssp::Sparsifier engine(g, ssp::SparsifyOptions{}.with_sigma2(200.0));
  for (const double sigma2 : {200.0, 50.0}) {
    engine.refine(sigma2);
    const ssp::WallTimer build_timer;
    engine.run();
    const double build_seconds = build_timer.seconds();
    const ssp::SparsifyResult& sp = engine.result();
    const ssp::Graph p = sp.extract(engine.graph());
    const ssp::SparsifierPreconditioner precond(p);
    ssp::Vec x(b.size(), 0.0);
    const ssp::PcgResult r = ssp::pcg_solve(lg, b, x, precond, opts);
    std::cout << "sigma^2 = " << sigma2 << " sparsifier ("
              << static_cast<double>(sp.num_edges()) /
                     static_cast<double>(g.num_vertices())
              << " x |V| edges, " << build_seconds
              << " s to build):  " << r.iterations << " iterations\n";
  }
  std::cout << "\nhigher similarity (smaller sigma^2) -> fewer PCG "
               "iterations, denser preconditioner.\n";
  return 0;
}
