// Complex-network simplification demo (the paper's Table 4 scenario):
// sparsify a social-network-like graph at σ² ≈ 100, then show that the
// sparsifier (i) is drastically smaller, (ii) collapses the top pencil
// eigenvalue by orders of magnitude relative to the bare spanning tree,
// and (iii) accelerates computing the first 10 Laplacian eigenvectors.
//
//   build/examples/network_simplification

#include <iostream>

#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "eigen/lanczos.hpp"
#include "eigen/operators.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/laplacian.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

double eigs_time(const ssp::Graph& graph, ssp::Index k, ssp::Rng& rng,
                 ssp::Vec* values) {
  const ssp::CsrMatrix l = ssp::laplacian(graph);
  const ssp::SpanningTree tree = ssp::max_weight_spanning_tree(graph);
  const ssp::TreePreconditioner precond(tree);
  const ssp::LinOp solve = ssp::make_pcg_op(
      l, precond,
      {.max_iterations = 2000, .rel_tolerance = 1e-8,
       .project_constants = true});
  const ssp::WallTimer t;
  const ssp::EigenPairs pairs = ssp::smallest_laplacian_eigenpairs(
      l.rows(), k, solve, /*max_steps=*/3 * k + 20, rng);
  if (values != nullptr) *values = pairs.values;
  return t.seconds();
}

}  // namespace

int main() {
  ssp::Rng rng(5);
  // Preferential-attachment graph: coAuthorsDBLP-like degree structure.
  const ssp::Graph g = ssp::barabasi_albert(20000, 8, rng);
  std::cout << "network: |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  // Drive the staged engine directly: a FirstRoundObserver captures the
  // bare-backbone λ_1 live instead of fishing it out of the telemetry
  // vector afterwards.
  struct FirstRoundObserver : ssp::StageObserver {
    double lambda1_tree = 0.0;
    bool on_round(const ssp::DensifyRound& r) override {
      if (r.round == 0) lambda1_tree = r.lambda_max;
      return true;
    }
  } observer;
  ssp::Sparsifier engine(g, ssp::SparsifyOptions{}.with_sigma2(100.0));
  engine.set_observer(&observer);
  engine.run();
  const ssp::SparsifyResult& res = engine.result();
  const ssp::Graph p = res.extract(g);

  std::cout << "sparsifier: |Es| = " << p.num_edges() << "  (|E|/|Es| = "
            << static_cast<double>(g.num_edges()) /
                   static_cast<double>(p.num_edges())
            << "x),  built in " << res.total_seconds << " s\n";
  if (observer.lambda1_tree > 0.0) {
    std::cout << "lambda_1 (tree backbone) = " << observer.lambda1_tree
              << "  ->  lambda_1 (sparsifier) = " << res.lambda_max
              << "   (ratio " << observer.lambda1_tree / res.lambda_max
              << "x)\n";
  }

  ssp::Vec ev_orig, ev_spars;
  const double t_orig = eigs_time(g, 10, rng, &ev_orig);
  const double t_spars = eigs_time(p, 10, rng, &ev_spars);
  std::cout << "first-10-eigenvector time: original " << t_orig
            << " s, sparsified " << t_spars << " s  (speedup "
            << t_orig / t_spars << "x)\n";
  std::cout << "lambda_2: original " << (ev_orig.empty() ? 0.0 : ev_orig[0])
            << ", sparsified " << (ev_spars.empty() ? 0.0 : ev_spars[0])
            << "\n";
  return 0;
}
