#pragma once

/// \file dense_matrix.hpp
/// Small dense matrices. Used only as a *test oracle* (dense eigensolver for
/// tiny graphs) and for the coarsest level of the AMG hierarchy — never on
/// large problems.

#include <span>
#include <vector>

#include "la/csr_matrix.hpp"
#include "util/types.hpp"

namespace ssp {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Index rows, Index cols, double value = 0.0);

  /// Densifies a sparse matrix (guards against accidentally huge inputs).
  [[nodiscard]] static DenseMatrix from_csr(const CsrMatrix& a,
                                            Index max_dim = 4096);

  [[nodiscard]] static DenseMatrix identity(Index n);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  [[nodiscard]] double& operator()(Index r, Index c);
  [[nodiscard]] double operator()(Index r, Index c) const;

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const;
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& b) const;
  [[nodiscard]] DenseMatrix transpose() const;

  /// In-place Cholesky factorization A = L L^T of an SPD matrix; the lower
  /// triangle is overwritten with L. Throws std::runtime_error when a pivot
  /// is not positive (matrix not SPD).
  void cholesky_in_place();

  /// Solves L L^T x = b given `this` holds the Cholesky factor in its lower
  /// triangle (as produced by cholesky_in_place()).
  [[nodiscard]] Vec cholesky_solve(std::span<const double> b) const;

  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ssp
