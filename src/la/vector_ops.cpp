#include "la/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels/kernels.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ssp {

double dot(std::span<const double> x, std::span<const double> y) {
  SSP_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  return kernels::ops().dot(x.data(), y.data(), x.size());
}

double norm2(std::span<const double> x) {
  return std::sqrt(kernels::ops().nrm2sq(x.data(), x.size()));
}

double norm_inf(std::span<const double> x) {
  return kernels::ops().norm_inf(x.data(), x.size());
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  SSP_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  kernels::ops().axpy(a, x.data(), y.data(), y.size());
}

void scale(std::span<double> x, double a) {
  kernels::ops().scal(a, x.data(), x.size());
}

void fill(std::span<double> x, double a) {
  std::fill(x.begin(), x.end(), a);
}

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return kernels::ops().sum(x.data(), x.size()) /
         static_cast<double>(x.size());
}

void project_out_mean(std::span<double> x) {
  // x + (−m) is bit-identical to x − m under IEEE-754.
  kernels::ops().shift(-mean(x), x.data(), x.size());
}

void normalize(std::span<double> x) {
  const double n = norm2(x);
  SSP_REQUIRE(n > 0.0, "normalize: zero vector");
  scale(x, 1.0 / n);
}

Vec subtract(std::span<const double> x, std::span<const double> y) {
  SSP_REQUIRE(x.size() == y.size(), "subtract: size mismatch");
  Vec out(x.size());
  kernels::ops().sub(x.data(), y.data(), out.data(), out.size());
  return out;
}

Vec add(std::span<const double> x, std::span<const double> y) {
  SSP_REQUIRE(x.size() == y.size(), "add: size mismatch");
  Vec out(x.size());
  kernels::ops().add(x.data(), y.data(), out.data(), out.size());
  return out;
}

double relative_error(std::span<const double> x, std::span<const double> y) {
  SSP_REQUIRE(x.size() == y.size(), "relative_error: size mismatch");
  const double dist =
      std::sqrt(kernels::ops().sq_dist(x.data(), y.data(), x.size()));
  const double denom = std::max(norm2(y), 1e-300);
  return dist / denom;
}

Vec random_probe_vector(Index n, Rng& rng) {
  SSP_REQUIRE(n >= 2, "random_probe_vector: need n >= 2");
  Vec v(static_cast<std::size_t>(n));
  random_probe_fill(v, rng);
  return v;
}

void random_probe_fill(std::span<double> v, Rng& rng) {
  SSP_REQUIRE(v.size() >= 2, "random_probe_fill: need n >= 2");
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (attempt < 4) {
      for (double& x : v) x = rng.rademacher();
    } else {
      for (double& x : v) x = rng.normal();
    }
    project_out_mean(v);
    const double nrm = norm2(v);
    if (nrm > 1e-12) {
      scale(v, 1.0 / nrm);
      return;
    }
  }
  // Deterministic fallback: e_0 - e_1 projected (never zero for n >= 2).
  fill(v, 0.0);
  v[0] = 1.0;
  v[1] = -1.0;
  project_out_mean(v);
  normalize(v);
}

}  // namespace ssp
