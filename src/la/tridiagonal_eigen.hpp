#pragma once

/// \file tridiagonal_eigen.hpp
/// Eigensolver for symmetric tridiagonal matrices — the reduction step of
/// the Lanczos process (eigen/lanczos.hpp) produces exactly such matrices.
/// Implements the implicit-shift QL algorithm (EISPACK `tql2` lineage).

#include <vector>

#include "la/dense_matrix.hpp"
#include "util/types.hpp"

namespace ssp {

/// Eigendecomposition of the symmetric tridiagonal matrix with main diagonal
/// `diag` (length n) and sub/super-diagonal `offdiag` (length n-1; empty
/// when n <= 1).
struct TridiagonalEigen {
  Vec eigenvalues;      ///< ascending
  DenseMatrix vectors;  ///< column j = eigenvector of eigenvalues[j]
};

/// Full eigendecomposition; throws std::invalid_argument on size mismatch
/// and std::runtime_error when the QL iteration fails to converge (does not
/// happen for well-formed input).
[[nodiscard]] TridiagonalEigen tridiagonal_eigen(const Vec& diag,
                                                 const Vec& offdiag);

/// Eigenvalues only (same algorithm, skips eigenvector accumulation).
[[nodiscard]] Vec tridiagonal_eigenvalues(const Vec& diag, const Vec& offdiag);

}  // namespace ssp
