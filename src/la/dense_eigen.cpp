#include "la/dense_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace ssp {

namespace {

double offdiagonal_norm(const DenseMatrix& a) {
  double s = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(s);
}

}  // namespace

DenseEigen dense_symmetric_eigen(const DenseMatrix& a_in, double tol,
                                 int max_sweeps) {
  SSP_REQUIRE(a_in.rows() == a_in.cols(), "eigen: matrix must be square");
  const Index n = a_in.rows();
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      SSP_REQUIRE(std::abs(a_in(i, j) - a_in(j, i)) <=
                      1e-10 * (1.0 + std::abs(a_in(i, j))),
                  "eigen: matrix must be symmetric");
    }
  }

  DenseMatrix a = a_in;
  DenseMatrix v = DenseMatrix::identity(n);
  double fro = 0.0;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) fro += a(i, j) * a(i, j);
  }
  fro = std::sqrt(fro);
  const double threshold = tol * std::max(fro, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiagonal_norm(a) <= threshold) break;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= threshold / static_cast<double>(n)) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // A <- J^T A J with J the (p,q) rotation.
        for (Index k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (Index k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting columns of v.
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  std::sort(perm.begin(), perm.end(),
            [&](Index x, Index y) { return a(x, x) < a(y, y); });

  DenseEigen out;
  out.eigenvalues.resize(static_cast<std::size_t>(n));
  out.vectors = DenseMatrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = perm[static_cast<std::size_t>(j)];
    out.eigenvalues[static_cast<std::size_t>(j)] = a(src, src);
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
  }
  return out;
}

Vec dense_generalized_eigenvalues(const DenseMatrix& a, const DenseMatrix& b,
                                  double null_tol) {
  SSP_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols() &&
                  a.rows() == b.rows(),
              "generalized eigen: dimension mismatch");
  const Index n = a.rows();
  const DenseEigen eb = dense_symmetric_eigen(b);
  const double bmax = std::max(std::abs(eb.eigenvalues.front()),
                               std::abs(eb.eigenvalues.back()));
  SSP_REQUIRE(bmax > 0.0, "generalized eigen: B is zero");

  // Columns of S = B^{+1/2} restricted to range(B).
  std::vector<Index> keep;
  for (Index j = 0; j < n; ++j) {
    if (eb.eigenvalues[static_cast<std::size_t>(j)] > null_tol * bmax) {
      keep.push_back(j);
    }
  }
  const Index m = static_cast<Index>(keep.size());
  // W(i,k) = v_k(i) / sqrt(mu_k)  for kept eigenpairs (n x m).
  DenseMatrix w(n, m);
  for (Index k = 0; k < m; ++k) {
    const Index j = keep[static_cast<std::size_t>(k)];
    const double inv_sqrt =
        1.0 / std::sqrt(eb.eigenvalues[static_cast<std::size_t>(j)]);
    for (Index i = 0; i < n; ++i) w(i, k) = eb.vectors(i, j) * inv_sqrt;
  }
  // M = W^T A W  (m x m, symmetric).
  const DenseMatrix aw = a.multiply(w);
  const DenseMatrix mmat = w.transpose().multiply(aw);
  DenseEigen em = dense_symmetric_eigen(mmat);
  return em.eigenvalues;
}

}  // namespace ssp
