#pragma once

/// \file csr_matrix.hpp
/// Compressed-sparse-row matrix. This is the single sparse-matrix type used
/// across the library: graph Laplacians, AMG Galerkin products, and the
/// Cholesky front-end all speak CSR.
///
/// Conventions:
///  * Row offsets are 64-bit (`Index`), column indices 32-bit (`Vertex`-sized)
///    — adjacency of multi-million-node meshes stays compact.
///  * Within each row the column indices are strictly increasing and
///    duplicates have been summed (`from_triplets` coalesces).

#include <span>
#include <vector>

#include "la/vector_ops.hpp"
#include "util/types.hpp"

namespace ssp {

/// One (row, col, value) entry for assembly.
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds a rows×cols matrix from unsorted triplets; duplicate (r,c) pairs
  /// are summed in triplet order (floating-point addition is order
  /// sensitive, so the order is part of the determinism contract); entries
  /// that sum to exactly zero are kept (callers that want dropping can
  /// call `drop_explicit_zeros`).
  [[nodiscard]] static CsrMatrix from_triplets(Index rows, Index cols,
                                               std::span<const Triplet> ts);

  /// Identity matrix of size n.
  [[nodiscard]] static CsrMatrix identity(Index n);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] Index nnz() const {
    return static_cast<Index>(col_idx_.size());
  }

  /// y = A x. `x.size()==cols`, `y.size()==rows`; aliasing is not allowed.
  /// Large matrices run row-parallel on the global pool (each y[r] is
  /// written by exactly one row, so the result is bit-identical to the
  /// serial loop for every thread count); small ones stay serial.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Convenience allocating form of multiply.
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// Panel (multi-RHS) form: Y = A X for row-major n×r panels
  /// (`x.size()==cols*r`, `y.size()==rows*r`; row = vertex, the r RHS
  /// values of one vertex contiguous). Column j of the result is
  /// bit-identical to `multiply` applied to column j, for every thread
  /// count and kernel backend; the panel form amortizes the matrix
  /// traversal (row_ptr/col_idx/values traffic) over all r RHS at once.
  void multiply_panel(std::span<const double> x, std::span<double> y,
                      Index r) const;

  /// x^T A y for square symmetric use-cases (sizes must match rows/cols).
  [[nodiscard]] double bilinear(std::span<const double> x,
                                std::span<const double> y) const;

  /// x^T A x.
  [[nodiscard]] double quadratic(std::span<const double> x) const;

  /// A^T as a new matrix.
  [[nodiscard]] CsrMatrix transpose() const;

  /// Main diagonal (length min(rows, cols)); absent entries are 0.
  [[nodiscard]] Vec diagonal() const;

  /// Removes stored entries with value exactly 0.
  void drop_explicit_zeros();

  /// True when the matrix equals its transpose up to `tol` (entrywise).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Row accessors.
  [[nodiscard]] std::span<const Index> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const Vertex> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<const Vertex> row_cols(Index r) const;
  [[nodiscard]] std::span<const double> row_vals(Index r) const;

  /// Entry lookup by binary search within the row; 0.0 when absent.
  [[nodiscard]] double at(Index r, Index c) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Direct constructor from raw CSR arrays (validated).
  CsrMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
            std::vector<Vertex> col_idx, std::vector<double> values);

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_;  // size rows_+1
  std::vector<Vertex> col_idx_;
  std::vector<double> values_;
};

}  // namespace ssp
