#pragma once

/// \file kernels_detail.hpp
/// Internal cross-backend plumbing for src/la/kernels/. Not part of the
/// public API — include kernels.hpp instead.

#include "la/kernels/kernels.hpp"

namespace ssp::kernels::detail {

/// The always-compiled scalar reference table.
extern const Ops kGenericOps;

/// Kernels whose canonical order is the plain sequential loop share the
/// generic implementation across backends (declared here so the SIMD
/// tables can point at them).
void generic_spmv_rows(Index row_begin, Index row_end, const Index* row_ptr,
                       const Vertex* cols, const double* vals, const double* x,
                       double* y);

#if defined(SSP_KERNELS_HAVE_AVX2)
/// Defined in kernels_avx2.cpp (compiled with -mavx2).
const Ops& avx2_ops();
#endif
#if defined(SSP_KERNELS_HAVE_NEON)
/// Defined in kernels_neon.cpp.
const Ops& neon_ops();
#endif

}  // namespace ssp::kernels::detail
