#pragma once

/// \file kernels.hpp
/// Dispatchable SIMD/cache-blocked numeric kernels — the single home of
/// every dense inner primitive the pipeline bottoms out in (H2Pack-style:
/// hand-vectorized kernels behind a config header, selected at runtime).
///
/// All higher layers (la/vector_ops, la/csr_matrix, tree/tree_solver,
/// solver/pcg, core/embedding) route their inner loops through the
/// `Ops` table returned by `ops()`, so there is exactly one definition of
/// each primitive per backend and the backend can be swapped per process
/// (`SSP_KERNEL_BACKEND`) or per scope (`ScopedBackend`, for parity tests
/// and benches).
///
/// Determinism: reductions use the canonical lane-blocked order defined
/// in kernel_config.hpp; every backend produces bit-identical results
/// (enforced by tests/test_kernels.cpp and the `kernel_parity` ctest).
///
/// Conventions:
///  * Vector kernels take raw pointers + `std::size_t n`; the caller
///    validates sizes (la/vector_ops.hpp keeps the checked span forms).
///  * In-place aliasing is allowed wherever an output element depends
///    only on the same-index input elements (`sub(x, y, x)`,
///    `axpy(a, x, x)`, `dot(x, x)`); fully or partially *shifted* overlap
///    is not.
///  * Panels are row-major n×r (row = vertex, the r RHS columns of one
///    vertex contiguous); SIMD backends vectorize across the r columns,
///    which leaves each column's reduction order equal to the single-RHS
///    kernel's.

#include <cstddef>
#include <span>
#include <string>

#include "la/kernels/kernel_config.hpp"
#include "util/types.hpp"

namespace ssp::kernels {

enum class Backend { kGeneric = 0, kAvx2 = 1, kNeon = 2 };

/// "generic" | "avx2" | "neon".
[[nodiscard]] const char* backend_name(Backend b);

/// True when the backend's implementation is compiled into this binary.
[[nodiscard]] bool backend_compiled(Backend b);

/// True when the backend is compiled AND the running CPU supports it.
[[nodiscard]] bool backend_supported(Backend b);

/// The backend whose table `ops()` currently returns. Resolved on first
/// use from `SSP_KERNEL_BACKEND` (auto|generic|avx2|neon; unknown or
/// unavailable values throw std::runtime_error — CI pins must fail
/// loudly, never fall back).
[[nodiscard]] Backend active_backend();

/// Forces the active backend (tests/benches). Throws std::runtime_error
/// when `b` is not compiled/supported. Not thread-safe against concurrent
/// kernel calls — switch only between pipeline runs.
void set_backend(Backend b);

/// RAII backend override restoring the previous backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : previous_(active_backend()) {
    set_backend(b);
  }
  ~ScopedBackend() { set_backend(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend previous_;
};

/// One backend's implementation of every kernel. Reduction-order and
/// aliasing contracts are documented per entry; all three backends must
/// agree bit for bit.
struct Ops {
  // ---- Vector reductions (canonical lane-blocked order) ----

  /// Σ x[i]·y[i].
  double (*dot)(const double* x, const double* y, std::size_t n);
  /// Σ x[i].
  double (*sum)(const double* x, std::size_t n);
  /// Σ x[i]² — bit-identical to dot(x, x, n).
  double (*nrm2sq)(const double* x, std::size_t n);
  /// Σ (x[i] − y[i])² (fused subtract + squared norm).
  double (*sq_dist)(const double* x, const double* y, std::size_t n);
  /// max |x[i]| with MAXPD semantics per lane: an unordered compare takes
  /// the new element, so a NaN input yields NaN.
  double (*norm_inf)(const double* x, std::size_t n);

  // ---- Elementwise vector updates ----

  /// y[i] += a·x[i].
  void (*axpy)(double a, const double* x, double* y, std::size_t n);
  /// y[i] := x[i] + a·y[i] (the PCG direction update p = z + β p).
  void (*xpay)(const double* x, double a, double* y, std::size_t n);
  /// x[i] *= a.
  void (*scal)(double a, double* x, std::size_t n);
  /// x[i] += c.
  void (*shift)(double c, double* x, std::size_t n);
  /// z[i] := x[i] − y[i]; z may alias x or y.
  void (*sub)(const double* x, const double* y, double* z, std::size_t n);
  /// z[i] := x[i] + y[i]; z may alias x or y.
  void (*add)(const double* x, const double* y, double* z, std::size_t n);

  // ---- Fused update+reduction (PCG inner loop) ----

  /// y[i] += a·x[i], returning Σ y[i] (lane-blocked, bit-identical to
  /// axpy followed by sum) — the projected-residual update of PCG.
  double (*axpy_sum)(double a, const double* x, double* y, std::size_t n);
  /// x[i] += c, returning Σ x[i]² (lane-blocked, bit-identical to shift
  /// followed by nrm2sq) — mean-projection fused with the residual norm.
  double (*shift_nrm2sq)(double c, double* x, std::size_t n);

  // ---- Sparse matrix × vector ----

  /// y[row] := Σ_k vals[k]·x[cols[k]] for rows in [row_begin, row_end).
  /// The per-row accumulation is SEQUENTIAL in k (not lane-blocked): with
  /// the short rows of graph Laplacians (~6 nnz) per-row lane-blocking
  /// and gathers lose to the scalar loop, so the canonical single-RHS
  /// SpMV order is the plain sequential one in every backend. The
  /// vectorized form is `spmv_panel`, which keeps the same per-column
  /// k-order and vectorizes across RHS columns instead.
  void (*spmv_rows)(Index row_begin, Index row_end, const Index* row_ptr,
                    const Vertex* cols, const double* vals, const double* x,
                    double* y);

  // ---- Panel (multi-RHS) kernels: row-major n×r, SIMD across columns ----

  /// Y[row][j] := Σ_k vals[k]·X[cols[k]][j], rows in [row_begin, row_end),
  /// j in [0, r). Per (row, j) the k-order is sequential — column j is
  /// bit-identical to spmv_rows applied to X's j-th column.
  void (*spmv_panel)(Index row_begin, Index row_end, const Index* row_ptr,
                     const Vertex* cols, const double* vals, const double* x,
                     double* y, Index r);
  /// out[j] := Σ_v P[v][j] in the canonical lane-blocked order over v —
  /// column j is bit-identical to sum() of that column.
  void (*col_sums)(const double* p, Index n, Index r, double* out);
  /// P[v][j] += c[j] (per-column bias; c = −mean projects out the mean).
  void (*add_row_bias)(double* p, Index n, Index r, const double* c);
  /// F[v][j] := B[v][j] − c[j].
  void (*sub_row_bias)(const double* b, const double* c, double* f, Index n,
                       Index r);

  // ---- Blocked tree solve passes (multi-RHS, traversal amortized) ----

  /// Leaf-to-root flow accumulation: for i = n−1 … 1,
  /// F[parent[order[i]]][j] += F[order[i]][j]. The child-into-parent
  /// order is fixed by `order`, so per column this is the exact
  /// single-RHS sweep.
  void (*tree_accumulate)(const Vertex* order, const Vertex* parent, Index n,
                          double* f, Index r);
  /// Root-to-leaf potential integration: X[order[0]][j] = 0, then for
  /// i = 1 … n−1, v = order[i]:
  /// X[v][j] = X[parent[v]][j] + F[v][j] / parent_weight[v].
  void (*tree_integrate)(const Vertex* order, const Vertex* parent,
                         const double* parent_weight, Index n,
                         const double* f, double* x, Index r);
};

/// The active backend's kernel table (resolved on first use, see
/// `active_backend`).
[[nodiscard]] const Ops& ops();

/// A specific backend's table, or nullptr when not compiled/supported
/// (parity tests iterate the available tables).
[[nodiscard]] const Ops* ops_for(Backend b);

// ---- Span conveniences for the common vector kernels -----------------------

[[nodiscard]] inline double dot(std::span<const double> x,
                                std::span<const double> y) {
  return ops().dot(x.data(), y.data(), x.size());
}
[[nodiscard]] inline double sum(std::span<const double> x) {
  return ops().sum(x.data(), x.size());
}
[[nodiscard]] inline double nrm2sq(std::span<const double> x) {
  return ops().nrm2sq(x.data(), x.size());
}
[[nodiscard]] inline double sq_dist(std::span<const double> x,
                                    std::span<const double> y) {
  return ops().sq_dist(x.data(), y.data(), x.size());
}
inline void axpy(double a, std::span<const double> x, std::span<double> y) {
  ops().axpy(a, x.data(), y.data(), y.size());
}
inline void xpay(std::span<const double> x, double a, std::span<double> y) {
  ops().xpay(x.data(), a, y.data(), y.size());
}

}  // namespace ssp::kernels
