// AVX2 backend. Compiled only when CMake defines SSP_KERNELS_HAVE_AVX2
// (this TU gets -mavx2); selected at runtime only on CPUs reporting AVX2.
//
// Every kernel is a direct transliteration of kernels_generic.cpp into
// 256-bit intrinsics: one __m256d accumulator IS the four lane-blocked
// scalar accumulators, the horizontal sum adds the low and high 128-bit
// halves first — (a0 + a2) + (a1 + a3) — and tails run the same scalar
// code after the combine. No FMA anywhere (the scalar reference builds
// with -ffp-contract=off); multiplies and adds stay separate so both
// backends round identically.

#if defined(SSP_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

#include "la/kernels/kernels_detail.hpp"

namespace ssp::kernels::detail {

namespace {

/// (a0 + a2) + (a1 + a3): low half + high half, then the two lanes.
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {a0+a2, a1+a3}
  const __m128d high = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, high));
}

/// Clears the sign bit — bitwise identical to std::abs, including on NaN.
inline __m256d vabs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

inline double maxpd(double a, double b) { return a > b ? a : b; }

double v_dot(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  double s = hsum(acc);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

double v_sum(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  double s = hsum(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

double v_nrm2sq(const double* x, std::size_t n) { return v_dot(x, x, n); }

double v_sq_dist(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s = hsum(acc);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

double v_norm_inf(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    // VMAXPD(acc, v) = acc > v ? acc : v per lane — the scalar maxpd.
    acc = _mm256_max_pd(acc, vabs(_mm256_loadu_pd(x + i)));
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_max_pd(lo, hi);  // {maxpd(a0,a2), maxpd(a1,a3)}
  const __m128d high = _mm_unpackhi_pd(pair, pair);
  double m = _mm_cvtsd_f64(_mm_max_sd(pair, high));
  for (; i < n; ++i) m = maxpd(m, std::abs(x[i]));
  return m;
}

void v_axpy(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const __m256d vy = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void v_xpay(const double* x, double a, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const __m256d vy = _mm256_add_pd(
        _mm256_loadu_pd(x + i), _mm256_mul_pd(va, _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) y[i] = x[i] + a * y[i];
}

void v_scal(double a, double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

void v_shift(double c, double* x, std::size_t n) {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_add_pd(_mm256_loadu_pd(x + i), vc));
  }
  for (; i < n; ++i) x[i] += c;
}

void v_sub(const double* x, const double* y, double* z, std::size_t n) {
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        z + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) z[i] = x[i] - y[i];
}

void v_add(const double* x, const double* y, double* z, std::size_t n) {
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(
        z + i, _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) z[i] = x[i] + y[i];
}

double v_axpy_sum(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const __m256d vy = _mm256_add_pd(
        _mm256_loadu_pd(y + i), _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, vy);
    acc = _mm256_add_pd(acc, vy);
  }
  double s = hsum(acc);
  for (; i < n; ++i) {
    y[i] += a * x[i];
    s += y[i];
  }
  return s;
}

double v_shift_nrm2sq(double c, double* x, std::size_t n) {
  const __m256d vc = _mm256_set1_pd(c);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const __m256d vx = _mm256_add_pd(_mm256_loadu_pd(x + i), vc);
    _mm256_storeu_pd(x + i, vx);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vx));
  }
  double s = hsum(acc);
  for (; i < n; ++i) {
    x[i] += c;
    s += x[i] * x[i];
  }
  return s;
}

void v_spmv_panel(Index row_begin, Index row_end, const Index* row_ptr,
                  const Vertex* cols, const double* vals, const double* x,
                  double* y, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r4 = r & ~Index{3};
  for (Index row = row_begin; row < row_end; ++row) {
    const Index b = row_ptr[row];
    const Index e = row_ptr[row + 1];
    double* yr = y + static_cast<std::size_t>(row) * rs;
    Index j = 0;
    for (; j < r4; j += 4) {
      // Column block: k advances sequentially, so each of the 4 columns
      // accumulates in exactly the single-RHS spmv order.
      __m256d acc = _mm256_setzero_pd();
      for (Index k = b; k < e; ++k) {
        const __m256d vx = _mm256_loadu_pd(
            x + static_cast<std::size_t>(cols[k]) * rs +
            static_cast<std::size_t>(j));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(vals[k]), vx));
      }
      _mm256_storeu_pd(yr + j, acc);
    }
    for (; j < r; ++j) {
      double s = 0.0;
      for (Index k = b; k < e; ++k) {
        s += vals[k] *
             x[static_cast<std::size_t>(cols[k]) * rs + static_cast<std::size_t>(j)];
      }
      yr[j] = s;
    }
  }
}

void v_col_sums(const double* p, Index n, Index r, double* out) {
  const auto rs = static_cast<std::size_t>(r);
  const Index n4 = n & ~Index{3};
  const Index r4 = r & ~Index{3};
  Index j = 0;
  for (; j < r4; j += 4) {
    // Four row-lane accumulators per column block, mirroring the scalar
    // a0..a3 — each vector holds one lane's partials for 4 columns.
    __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
    Index v = 0;
    for (; v < n4; v += 4) {
      const double* base = p + static_cast<std::size_t>(v) * rs +
                           static_cast<std::size_t>(j);
      a0 = _mm256_add_pd(a0, _mm256_loadu_pd(base));
      a1 = _mm256_add_pd(a1, _mm256_loadu_pd(base + rs));
      a2 = _mm256_add_pd(a2, _mm256_loadu_pd(base + 2 * rs));
      a3 = _mm256_add_pd(a3, _mm256_loadu_pd(base + 3 * rs));
    }
    __m256d s =
        _mm256_add_pd(_mm256_add_pd(a0, a2), _mm256_add_pd(a1, a3));
    for (; v < n; ++v) {
      s = _mm256_add_pd(s, _mm256_loadu_pd(p + static_cast<std::size_t>(v) * rs +
                                           static_cast<std::size_t>(j)));
    }
    _mm256_storeu_pd(out + j, s);
  }
  for (; j < r; ++j) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    Index v = 0;
    for (; v < n4; v += 4) {
      const double* base =
          p + static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j);
      a0 += base[0];
      a1 += base[rs];
      a2 += base[2 * rs];
      a3 += base[3 * rs];
    }
    double s = (a0 + a2) + (a1 + a3);
    for (; v < n; ++v) {
      s += p[static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j)];
    }
    out[j] = s;
  }
}

void v_add_row_bias(double* p, Index n, Index r, const double* c) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r4 = r & ~Index{3};
  for (Index v = 0; v < n; ++v) {
    double* row = p + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r4; j += 4) {
      _mm256_storeu_pd(
          row + j, _mm256_add_pd(_mm256_loadu_pd(row + j),
                                 _mm256_loadu_pd(c + j)));
    }
    for (; j < r; ++j) row[j] += c[j];
  }
}

void v_sub_row_bias(const double* b, const double* c, double* f, Index n,
                    Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r4 = r & ~Index{3};
  for (Index v = 0; v < n; ++v) {
    const double* brow = b + static_cast<std::size_t>(v) * rs;
    double* frow = f + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r4; j += 4) {
      _mm256_storeu_pd(
          frow + j, _mm256_sub_pd(_mm256_loadu_pd(brow + j),
                                  _mm256_loadu_pd(c + j)));
    }
    for (; j < r; ++j) frow[j] = brow[j] - c[j];
  }
}

void v_tree_accumulate(const Vertex* order, const Vertex* parent, Index n,
                       double* f, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r4 = r & ~Index{3};
  for (Index i = n; i-- > 1;) {
    const Vertex v = order[i];
    const Vertex pa = parent[v];
    double* fp = f + static_cast<std::size_t>(pa) * rs;
    const double* fv = f + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r4; j += 4) {
      _mm256_storeu_pd(
          fp + j, _mm256_add_pd(_mm256_loadu_pd(fp + j),
                                _mm256_loadu_pd(fv + j)));
    }
    for (; j < r; ++j) fp[j] += fv[j];
  }
}

void v_tree_integrate(const Vertex* order, const Vertex* parent,
                      const double* parent_weight, Index n, const double* f,
                      double* x, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r4 = r & ~Index{3};
  double* xroot = x + static_cast<std::size_t>(order[0]) * rs;
  for (Index j = 0; j < r; ++j) xroot[j] = 0.0;
  for (Index i = 1; i < n; ++i) {
    const Vertex v = order[i];
    const Vertex pa = parent[v];
    const __m256d vw = _mm256_set1_pd(parent_weight[v]);
    const double w = parent_weight[v];
    const double* xp = x + static_cast<std::size_t>(pa) * rs;
    const double* fv = f + static_cast<std::size_t>(v) * rs;
    double* xv = x + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r4; j += 4) {
      _mm256_storeu_pd(
          xv + j, _mm256_add_pd(_mm256_loadu_pd(xp + j),
                                _mm256_div_pd(_mm256_loadu_pd(fv + j), vw)));
    }
    for (; j < r; ++j) xv[j] = xp[j] + fv[j] / w;
  }
}

const Ops kAvx2Ops = {
    .dot = v_dot,
    .sum = v_sum,
    .nrm2sq = v_nrm2sq,
    .sq_dist = v_sq_dist,
    .norm_inf = v_norm_inf,
    .axpy = v_axpy,
    .xpay = v_xpay,
    .scal = v_scal,
    .shift = v_shift,
    .sub = v_sub,
    .add = v_add,
    .axpy_sum = v_axpy_sum,
    .shift_nrm2sq = v_shift_nrm2sq,
    // Single-RHS SpMV is canonically the sequential per-row loop (short
    // Laplacian rows — gathers lose); the vectorized form is spmv_panel.
    .spmv_rows = generic_spmv_rows,
    .spmv_panel = v_spmv_panel,
    .col_sums = v_col_sums,
    .add_row_bias = v_add_row_bias,
    .sub_row_bias = v_sub_row_bias,
    .tree_accumulate = v_tree_accumulate,
    .tree_integrate = v_tree_integrate,
};

}  // namespace

const Ops& avx2_ops() { return kAvx2Ops; }

}  // namespace ssp::kernels::detail

#endif  // SSP_KERNELS_HAVE_AVX2
