// Backend dispatch: resolves SSP_KERNEL_BACKEND on first use, exposes the
// active kernel table via an atomic pointer so tests/benches can swap
// backends between pipeline runs without re-execing.

#include "la/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

#include "la/kernels/kernels_detail.hpp"

namespace ssp::kernels {

namespace {

std::atomic<const Ops*> g_ops{nullptr};
std::atomic<Backend> g_backend{Backend::kGeneric};
std::once_flag g_init_once;

bool cpu_has_avx2() {
#if defined(SSP_KERNELS_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Ops* table_for(Backend b) {
  switch (b) {
    case Backend::kGeneric:
      return &detail::kGenericOps;
    case Backend::kAvx2:
#if defined(SSP_KERNELS_HAVE_AVX2)
      return &detail::avx2_ops();
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(SSP_KERNELS_HAVE_NEON)
      return &detail::neon_ops();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Backend best_backend() {
  if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_supported(Backend::kNeon)) return Backend::kNeon;
  return Backend::kGeneric;
}

Backend backend_from_env() {
  const char* env = std::getenv("SSP_KERNEL_BACKEND");
  const std::string name = env == nullptr ? "auto" : env;
  if (name.empty() || name == "auto") return best_backend();
  for (Backend b : {Backend::kGeneric, Backend::kAvx2, Backend::kNeon}) {
    if (name == backend_name(b)) {
      if (!backend_supported(b)) {
        throw std::runtime_error(
            "SSP_KERNEL_BACKEND=" + name + " requested but backend is " +
            (backend_compiled(b) ? "not supported by this CPU"
                                 : "not compiled into this binary"));
      }
      return b;
    }
  }
  throw std::runtime_error("SSP_KERNEL_BACKEND=" + name +
                           " is not a known backend "
                           "(auto|generic|avx2|neon)");
}

void ensure_init() {
  std::call_once(g_init_once, [] {
    const Backend b = backend_from_env();
    g_backend.store(b, std::memory_order_relaxed);
    g_ops.store(table_for(b), std::memory_order_release);
  });
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kGeneric:
      return "generic";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool backend_compiled(Backend b) {
  switch (b) {
    case Backend::kGeneric:
      return true;
    case Backend::kAvx2:
#if defined(SSP_KERNELS_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(SSP_KERNELS_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool backend_supported(Backend b) {
  if (!backend_compiled(b)) return false;
  if (b == Backend::kAvx2) return cpu_has_avx2();
  return true;  // generic always; neon is baseline on aarch64 builds
}

Backend active_backend() {
  ensure_init();
  return g_backend.load(std::memory_order_relaxed);
}

void set_backend(Backend b) {
  ensure_init();
  if (!backend_supported(b)) {
    throw std::runtime_error(std::string("kernel backend '") +
                             backend_name(b) +
                             "' is not available in this build/CPU");
  }
  g_backend.store(b, std::memory_order_relaxed);
  g_ops.store(table_for(b), std::memory_order_release);
}

const Ops& ops() {
  const Ops* t = g_ops.load(std::memory_order_acquire);
  if (t == nullptr) {
    ensure_init();
    t = g_ops.load(std::memory_order_acquire);
  }
  return *t;
}

const Ops* ops_for(Backend b) {
  if (!backend_supported(b)) return nullptr;
  return table_for(b);
}

}  // namespace ssp::kernels
