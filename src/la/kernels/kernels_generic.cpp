// Generic scalar backend — the reference semantics of the kernel layer.
//
// Every loop here spells out the canonical arithmetic order documented in
// kernel_config.hpp: reductions run kLanes (= 4) interleaved accumulators
// (accumulator l sums indices ≡ l mod 4), combine them as
// (a0 + a2) + (a1 + a3) — the 256-bit horizontal-sum order — and append
// the tail sequentially. The SIMD backends must reproduce these results
// bit for bit; keep the two in lockstep when changing either.
//
// The build compiles this translation unit (like the whole library) with
// -ffp-contract=off, so none of the a*b+c patterns below may be fused
// into FMAs the vector backends do not use.

#include <cmath>

#include "la/kernels/kernels_detail.hpp"

namespace ssp::kernels::detail {

namespace {

double g_dot(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  double s = (a0 + a2) + (a1 + a3);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

double g_sum(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
  }
  double s = (a0 + a2) + (a1 + a3);
  for (; i < n; ++i) s += x[i];
  return s;
}

double g_nrm2sq(const double* x, std::size_t n) { return g_dot(x, x, n); }

double g_sq_dist(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  double s = (a0 + a2) + (a1 + a3);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

/// MAXPD lane semantics: unordered compares take the new element, so NaN
/// inputs surface as NaN instead of being silently skipped.
inline double maxpd(double a, double b) { return a > b ? a : b; }

double g_norm_inf(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    a0 = maxpd(a0, std::abs(x[i]));
    a1 = maxpd(a1, std::abs(x[i + 1]));
    a2 = maxpd(a2, std::abs(x[i + 2]));
    a3 = maxpd(a3, std::abs(x[i + 3]));
  }
  double m = maxpd(maxpd(a0, a2), maxpd(a1, a3));
  for (; i < n; ++i) m = maxpd(m, std::abs(x[i]));
  return m;
}

void g_axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void g_xpay(const double* x, double a, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + a * y[i];
}

void g_scal(double a, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void g_shift(double c, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] += c;
}

void g_sub(const double* x, const double* y, double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

void g_add(const double* x, const double* y, double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + y[i];
}

double g_axpy_sum(double a, const double* x, double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    y[i] += a * x[i];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
    a0 += y[i];
    a1 += y[i + 1];
    a2 += y[i + 2];
    a3 += y[i + 3];
  }
  double s = (a0 + a2) + (a1 + a3);
  for (; i < n; ++i) {
    y[i] += a * x[i];
    s += y[i];
  }
  return s;
}

double g_shift_nrm2sq(double c, double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    x[i] += c;
    x[i + 1] += c;
    x[i + 2] += c;
    x[i + 3] += c;
    a0 += x[i] * x[i];
    a1 += x[i + 1] * x[i + 1];
    a2 += x[i + 2] * x[i + 2];
    a3 += x[i + 3] * x[i + 3];
  }
  double s = (a0 + a2) + (a1 + a3);
  for (; i < n; ++i) {
    x[i] += c;
    s += x[i] * x[i];
  }
  return s;
}

void g_spmv_panel(Index row_begin, Index row_end, const Index* row_ptr,
                  const Vertex* cols, const double* vals, const double* x,
                  double* y, Index r) {
  for (Index row = row_begin; row < row_end; ++row) {
    const Index b = row_ptr[row];
    const Index e = row_ptr[row + 1];
    double* yr = y + static_cast<std::size_t>(row) * static_cast<std::size_t>(r);
    for (Index j = 0; j < r; ++j) {
      double s = 0.0;
      for (Index k = b; k < e; ++k) {
        s += vals[k] *
             x[static_cast<std::size_t>(cols[k]) * static_cast<std::size_t>(r) +
               static_cast<std::size_t>(j)];
      }
      yr[j] = s;
    }
  }
}

void g_col_sums(const double* p, Index n, Index r, double* out) {
  // Per column: the canonical lane-blocked order over rows (matches sum()
  // on a contiguous copy of the column). Row-lane accumulators live in
  // `out` plus a small stack block per column chunk.
  const auto rs = static_cast<std::size_t>(r);
  for (Index j = 0; j < r; ++j) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    Index v = 0;
    const Index n4 = n & ~Index{3};
    for (; v < n4; v += 4) {
      a0 += p[static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j)];
      a1 += p[static_cast<std::size_t>(v + 1) * rs + static_cast<std::size_t>(j)];
      a2 += p[static_cast<std::size_t>(v + 2) * rs + static_cast<std::size_t>(j)];
      a3 += p[static_cast<std::size_t>(v + 3) * rs + static_cast<std::size_t>(j)];
    }
    double s = (a0 + a2) + (a1 + a3);
    for (; v < n; ++v) {
      s += p[static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j)];
    }
    out[j] = s;
  }
}

void g_add_row_bias(double* p, Index n, Index r, const double* c) {
  for (Index v = 0; v < n; ++v) {
    double* row = p + static_cast<std::size_t>(v) * static_cast<std::size_t>(r);
    for (Index j = 0; j < r; ++j) row[j] += c[j];
  }
}

void g_sub_row_bias(const double* b, const double* c, double* f, Index n,
                    Index r) {
  for (Index v = 0; v < n; ++v) {
    const double* brow =
        b + static_cast<std::size_t>(v) * static_cast<std::size_t>(r);
    double* frow = f + static_cast<std::size_t>(v) * static_cast<std::size_t>(r);
    for (Index j = 0; j < r; ++j) frow[j] = brow[j] - c[j];
  }
}

void g_tree_accumulate(const Vertex* order, const Vertex* parent, Index n,
                       double* f, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  for (Index i = n; i-- > 1;) {
    const Vertex v = order[i];
    const Vertex pa = parent[v];
    double* fp = f + static_cast<std::size_t>(pa) * rs;
    const double* fv = f + static_cast<std::size_t>(v) * rs;
    for (Index j = 0; j < r; ++j) fp[j] += fv[j];
  }
}

void g_tree_integrate(const Vertex* order, const Vertex* parent,
                      const double* parent_weight, Index n, const double* f,
                      double* x, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  double* xroot = x + static_cast<std::size_t>(order[0]) * rs;
  for (Index j = 0; j < r; ++j) xroot[j] = 0.0;
  for (Index i = 1; i < n; ++i) {
    const Vertex v = order[i];
    const Vertex pa = parent[v];
    const double w = parent_weight[v];
    const double* xp = x + static_cast<std::size_t>(pa) * rs;
    const double* fv = f + static_cast<std::size_t>(v) * rs;
    double* xv = x + static_cast<std::size_t>(v) * rs;
    for (Index j = 0; j < r; ++j) xv[j] = xp[j] + fv[j] / w;
  }
}

}  // namespace

void generic_spmv_rows(Index row_begin, Index row_end, const Index* row_ptr,
                       const Vertex* cols, const double* vals, const double* x,
                       double* y) {
  for (Index row = row_begin; row < row_end; ++row) {
    const Index b = row_ptr[row];
    const Index e = row_ptr[row + 1];
    double s = 0.0;
    for (Index k = b; k < e; ++k) {
      s += vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    y[row] = s;
  }
}

const Ops kGenericOps = {
    .dot = g_dot,
    .sum = g_sum,
    .nrm2sq = g_nrm2sq,
    .sq_dist = g_sq_dist,
    .norm_inf = g_norm_inf,
    .axpy = g_axpy,
    .xpay = g_xpay,
    .scal = g_scal,
    .shift = g_shift,
    .sub = g_sub,
    .add = g_add,
    .axpy_sum = g_axpy_sum,
    .shift_nrm2sq = g_shift_nrm2sq,
    .spmv_rows = generic_spmv_rows,
    .spmv_panel = g_spmv_panel,
    .col_sums = g_col_sums,
    .add_row_bias = g_add_row_bias,
    .sub_row_bias = g_sub_row_bias,
    .tree_accumulate = g_tree_accumulate,
    .tree_integrate = g_tree_integrate,
};

}  // namespace ssp::kernels::detail
