#pragma once

/// \file kernel_config.hpp
/// Compile-time gating and block-size constants for the dispatchable
/// kernel layer (src/la/kernels/).
///
/// ## Backends
///
/// Three implementations of the same kernel table exist:
///
///  * `generic` — portable scalar C++. Always compiled; it is the
///    *reference semantics*: every other backend must reproduce its
///    results bit for bit.
///  * `avx2` — x86-64 AVX2 intrinsics. Compiled only when CMake enables it
///    (`-DSSP_KERNEL_BACKEND=auto|avx2` on an x86-64 toolchain, which
///    defines `SSP_KERNELS_HAVE_AVX2` and builds kernels_avx2.cpp with
///    `-mavx2`); selected at runtime only when the CPU reports AVX2.
///  * `neon` — AArch64 NEON intrinsics (`SSP_KERNELS_HAVE_NEON`,
///    baseline on AArch64 so no runtime CPU check is needed).
///
/// Runtime selection: the first kernel call resolves the backend from the
/// `SSP_KERNEL_BACKEND` environment variable (`auto` | `generic` | `avx2`
/// | `neon`; default `auto` = best compiled-and-supported). Naming a
/// backend that is not compiled in or not supported by the CPU is an
/// error, not a silent fallback — CI legs pin backends and must fail
/// loudly when the pin cannot be honoured. Tests and benches can switch
/// backends in-process via `kernels::set_backend` /
/// `kernels::ScopedBackend`.
///
/// ## The determinism contract for vectorized reductions
///
/// The library guarantees bit-identical results across thread counts AND
/// across kernel backends. Elementwise kernels (axpy, scale, subtract,
/// panel updates, tree sweeps) are trivially safe: every output element is
/// computed by the same expression in every backend. Reductions (dot,
/// sum, squared norms, Joule heats) are where vectorization normally
/// changes the answer, because floating-point addition is not
/// associative. The kernel layer therefore fixes ONE canonical reduction
/// order — the *lane-blocked* order — and every backend implements it
/// exactly:
///
///   * `kLanes` (= 4) independent accumulators; accumulator `l` sums the
///     elements with index ≡ l (mod kLanes), in increasing index order.
///     This is precisely what one 256-bit vector accumulator computes, and
///     what a pair of 128-bit NEON accumulators computes.
///   * The lane partials combine as `(a0 + a2) + (a1 + a3)` — the order
///     produced by the standard 256-bit horizontal sum (add the low and
///     high 128-bit halves, then the two remaining lanes).
///   * The `n mod kLanes` tail elements are added sequentially *after*
///     the lane combine.
///
/// The generic backend implements this same order with scalar code, so
/// `generic` and SIMD backends agree bit for bit — including signed
/// zeros and infinities, since both execute the same IEEE-754 operation
/// sequence. NaN-ness is preserved (a NaN input always yields a NaN
/// result), but the *sign/payload* of a NaN result is unspecified: for
/// scalar `s += p`, x86 `addsd` propagates whichever NaN operand the
/// compiler register-allocated as the destination, so `+nan + -nan` can
/// legitimately differ between backends in the sign bit. Pipeline data is
/// NaN-free; the contract covers it anyway so misuse fails loudly rather
/// than subtly. Two consequences worth knowing:
///
///   * Per-RHS reductions in panel (multi-RHS) kernels accumulate over
///     the sparse/tree dimension in the same sequential order as the
///     single-RHS kernels, so a panel column is bit-identical to the
///     corresponding single-RHS call (tested in test_kernels.cpp).
///   * The whole library builds with `-ffp-contract=off` (see the
///     top-level CMakeLists.txt): the scalar reference must not be
///     contracted into FMAs the intrinsics do not use, or the backends
///     would diverge in the last ulp.
///
/// ## Block sizes

#include "util/types.hpp"

namespace ssp::kernels {

/// Canonical reduction width (doubles): one 256-bit vector, or two
/// 128-bit NEON vectors. Fixed across backends — it defines the
/// arithmetic, not just the implementation.
inline constexpr int kLanes = 4;

/// Column-block width of panel (multi-RHS) kernels: each inner loop
/// advances `kPanelColBlock` RHS columns at once (one vector register).
inline constexpr int kPanelColBlock = 4;

/// Row-parallel SpMV pays off only once the row loop dominates the
/// fork/join cost; below these floors the serial loop wins and the
/// parallel path is skipped entirely (shared by the single-RHS and panel
/// forms — the panel form scales its nnz by the panel width first).
inline constexpr Index kSpmvParallelMinRows = 512;
inline constexpr Index kSpmvParallelMinNnz = Index{1} << 14;

}  // namespace ssp::kernels
