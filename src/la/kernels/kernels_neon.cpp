// NEON (AArch64) backend. Compiled when CMake defines
// SSP_KERNELS_HAVE_NEON; NEON is baseline on AArch64 so no runtime CPU
// check is needed.
//
// Two float64x2_t registers emulate the four canonical lanes
// (lo = {a0, a1}, hi = {a2, a3}); the combine adds lo + hi — producing
// {a0+a2, a1+a3} — then the two remaining lanes, exactly the
// (a0 + a2) + (a1 + a3) order of kernel_config.hpp. Tails run the same
// scalar code as the generic backend, no FMA (vfma is never emitted from
// intrinsics here and the build uses -ffp-contract=off).

#if defined(SSP_KERNELS_HAVE_NEON)

#include <arm_neon.h>

#include <cmath>

#include "la/kernels/kernels_detail.hpp"

namespace ssp::kernels::detail {

namespace {

/// (a0 + a2) + (a1 + a3).
inline double hsum(float64x2_t lo, float64x2_t hi) {
  const float64x2_t pair = vaddq_f64(lo, hi);  // {a0+a2, a1+a3}
  return vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
}

inline double maxpd(double a, double b) { return a > b ? a : b; }

double n_dot(const double* x, const double* y, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    lo = vaddq_f64(lo, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    hi = vaddq_f64(hi, vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  double s = hsum(lo, hi);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

double n_sum(const double* x, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    lo = vaddq_f64(lo, vld1q_f64(x + i));
    hi = vaddq_f64(hi, vld1q_f64(x + i + 2));
  }
  double s = hsum(lo, hi);
  for (; i < n; ++i) s += x[i];
  return s;
}

double n_nrm2sq(const double* x, std::size_t n) { return n_dot(x, x, n); }

double n_sq_dist(const double* x, const double* y, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(x + i), vld1q_f64(y + i));
    const float64x2_t d1 =
        vsubq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2));
    lo = vaddq_f64(lo, vmulq_f64(d0, d0));
    hi = vaddq_f64(hi, vmulq_f64(d1, d1));
  }
  double s = hsum(lo, hi);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return s;
}

double n_norm_inf(const double* x, std::size_t n) {
  // Scalar loop in the canonical lane order: NEON's vmaxq_f64 has
  // "NaN wins" semantics (either operand NaN → NaN), which differs from
  // MAXPD's "second operand wins" only for the (acc = NaN, new = finite)
  // case that cannot arise here (acc starts 0 and once NaN stays NaN
  // under both rules) — but we keep the scalar form to make the order
  // unmistakable; this kernel is never hot.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    a0 = maxpd(a0, std::abs(x[i]));
    a1 = maxpd(a1, std::abs(x[i + 1]));
    a2 = maxpd(a2, std::abs(x[i + 2]));
    a3 = maxpd(a3, std::abs(x[i + 3]));
  }
  double m = maxpd(maxpd(a0, a2), maxpd(a1, a3));
  for (; i < n; ++i) m = maxpd(m, std::abs(x[i]));
  return m;
}

void n_axpy(double a, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (; i < n2; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void n_xpay(const double* x, double a, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (; i < n2; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(x + i), vmulq_f64(va, vld1q_f64(y + i))));
  }
  for (; i < n; ++i) y[i] = x[i] + a * y[i];
}

void n_scal(double a, double* x, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (; i < n2; i += 2) vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), va));
  for (; i < n; ++i) x[i] *= a;
}

void n_shift(double c, double* x, std::size_t n) {
  const float64x2_t vc = vdupq_n_f64(c);
  std::size_t i = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (; i < n2; i += 2) vst1q_f64(x + i, vaddq_f64(vld1q_f64(x + i), vc));
  for (; i < n; ++i) x[i] += c;
}

void n_sub(const double* x, const double* y, double* z, std::size_t n) {
  std::size_t i = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (; i < n2; i += 2) {
    vst1q_f64(z + i, vsubq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
  }
  for (; i < n; ++i) z[i] = x[i] - y[i];
}

void n_add(const double* x, const double* y, double* z, std::size_t n) {
  std::size_t i = 0;
  const std::size_t n2 = n & ~std::size_t{1};
  for (; i < n2; i += 2) {
    vst1q_f64(z + i, vaddq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
  }
  for (; i < n; ++i) z[i] = x[i] + y[i];
}

double n_axpy_sum(double a, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const float64x2_t y0 =
        vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i)));
    const float64x2_t y1 =
        vaddq_f64(vld1q_f64(y + i + 2), vmulq_f64(va, vld1q_f64(x + i + 2)));
    vst1q_f64(y + i, y0);
    vst1q_f64(y + i + 2, y1);
    lo = vaddq_f64(lo, y0);
    hi = vaddq_f64(hi, y1);
  }
  double s = hsum(lo, hi);
  for (; i < n; ++i) {
    y[i] += a * x[i];
    s += y[i];
  }
  return s;
}

double n_shift_nrm2sq(double c, double* x, std::size_t n) {
  const float64x2_t vc = vdupq_n_f64(c);
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const float64x2_t x0 = vaddq_f64(vld1q_f64(x + i), vc);
    const float64x2_t x1 = vaddq_f64(vld1q_f64(x + i + 2), vc);
    vst1q_f64(x + i, x0);
    vst1q_f64(x + i + 2, x1);
    lo = vaddq_f64(lo, vmulq_f64(x0, x0));
    hi = vaddq_f64(hi, vmulq_f64(x1, x1));
  }
  double s = hsum(lo, hi);
  for (; i < n; ++i) {
    x[i] += c;
    s += x[i] * x[i];
  }
  return s;
}

void n_spmv_panel(Index row_begin, Index row_end, const Index* row_ptr,
                  const Vertex* cols, const double* vals, const double* x,
                  double* y, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r2 = r & ~Index{1};
  for (Index row = row_begin; row < row_end; ++row) {
    const Index b = row_ptr[row];
    const Index e = row_ptr[row + 1];
    double* yr = y + static_cast<std::size_t>(row) * rs;
    Index j = 0;
    for (; j < r2; j += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (Index k = b; k < e; ++k) {
        const float64x2_t vx = vld1q_f64(
            x + static_cast<std::size_t>(cols[k]) * rs +
            static_cast<std::size_t>(j));
        acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(vals[k]), vx));
      }
      vst1q_f64(yr + j, acc);
    }
    for (; j < r; ++j) {
      double s = 0.0;
      for (Index k = b; k < e; ++k) {
        s += vals[k] *
             x[static_cast<std::size_t>(cols[k]) * rs + static_cast<std::size_t>(j)];
      }
      yr[j] = s;
    }
  }
}

void n_col_sums(const double* p, Index n, Index r, double* out) {
  const auto rs = static_cast<std::size_t>(r);
  const Index n4 = n & ~Index{3};
  const Index r2 = r & ~Index{1};
  Index j = 0;
  for (; j < r2; j += 2) {
    float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0), a3 = vdupq_n_f64(0.0);
    Index v = 0;
    for (; v < n4; v += 4) {
      const double* base =
          p + static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j);
      a0 = vaddq_f64(a0, vld1q_f64(base));
      a1 = vaddq_f64(a1, vld1q_f64(base + rs));
      a2 = vaddq_f64(a2, vld1q_f64(base + 2 * rs));
      a3 = vaddq_f64(a3, vld1q_f64(base + 3 * rs));
    }
    float64x2_t s = vaddq_f64(vaddq_f64(a0, a2), vaddq_f64(a1, a3));
    for (; v < n; ++v) {
      s = vaddq_f64(s, vld1q_f64(p + static_cast<std::size_t>(v) * rs +
                                 static_cast<std::size_t>(j)));
    }
    vst1q_f64(out + j, s);
  }
  for (; j < r; ++j) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    Index v = 0;
    for (; v < n4; v += 4) {
      const double* base =
          p + static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j);
      a0 += base[0];
      a1 += base[rs];
      a2 += base[2 * rs];
      a3 += base[3 * rs];
    }
    double s = (a0 + a2) + (a1 + a3);
    for (; v < n; ++v) {
      s += p[static_cast<std::size_t>(v) * rs + static_cast<std::size_t>(j)];
    }
    out[j] = s;
  }
}

void n_add_row_bias(double* p, Index n, Index r, const double* c) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r2 = r & ~Index{1};
  for (Index v = 0; v < n; ++v) {
    double* row = p + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r2; j += 2) {
      vst1q_f64(row + j, vaddq_f64(vld1q_f64(row + j), vld1q_f64(c + j)));
    }
    for (; j < r; ++j) row[j] += c[j];
  }
}

void n_sub_row_bias(const double* b, const double* c, double* f, Index n,
                    Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r2 = r & ~Index{1};
  for (Index v = 0; v < n; ++v) {
    const double* brow = b + static_cast<std::size_t>(v) * rs;
    double* frow = f + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r2; j += 2) {
      vst1q_f64(frow + j, vsubq_f64(vld1q_f64(brow + j), vld1q_f64(c + j)));
    }
    for (; j < r; ++j) frow[j] = brow[j] - c[j];
  }
}

void n_tree_accumulate(const Vertex* order, const Vertex* parent, Index n,
                       double* f, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r2 = r & ~Index{1};
  for (Index i = n; i-- > 1;) {
    const Vertex v = order[i];
    const Vertex pa = parent[v];
    double* fp = f + static_cast<std::size_t>(pa) * rs;
    const double* fv = f + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r2; j += 2) {
      vst1q_f64(fp + j, vaddq_f64(vld1q_f64(fp + j), vld1q_f64(fv + j)));
    }
    for (; j < r; ++j) fp[j] += fv[j];
  }
}

void n_tree_integrate(const Vertex* order, const Vertex* parent,
                      const double* parent_weight, Index n, const double* f,
                      double* x, Index r) {
  const auto rs = static_cast<std::size_t>(r);
  const Index r2 = r & ~Index{1};
  double* xroot = x + static_cast<std::size_t>(order[0]) * rs;
  for (Index j = 0; j < r; ++j) xroot[j] = 0.0;
  for (Index i = 1; i < n; ++i) {
    const Vertex v = order[i];
    const Vertex pa = parent[v];
    const float64x2_t vw = vdupq_n_f64(parent_weight[v]);
    const double w = parent_weight[v];
    const double* xp = x + static_cast<std::size_t>(pa) * rs;
    const double* fv = f + static_cast<std::size_t>(v) * rs;
    double* xv = x + static_cast<std::size_t>(v) * rs;
    Index j = 0;
    for (; j < r2; j += 2) {
      vst1q_f64(xv + j, vaddq_f64(vld1q_f64(xp + j),
                                  vdivq_f64(vld1q_f64(fv + j), vw)));
    }
    for (; j < r; ++j) xv[j] = xp[j] + fv[j] / w;
  }
}

const Ops kNeonOps = {
    .dot = n_dot,
    .sum = n_sum,
    .nrm2sq = n_nrm2sq,
    .sq_dist = n_sq_dist,
    .norm_inf = n_norm_inf,
    .axpy = n_axpy,
    .xpay = n_xpay,
    .scal = n_scal,
    .shift = n_shift,
    .sub = n_sub,
    .add = n_add,
    .axpy_sum = n_axpy_sum,
    .shift_nrm2sq = n_shift_nrm2sq,
    .spmv_rows = generic_spmv_rows,
    .spmv_panel = n_spmv_panel,
    .col_sums = n_col_sums,
    .add_row_bias = n_add_row_bias,
    .sub_row_bias = n_sub_row_bias,
    .tree_accumulate = n_tree_accumulate,
    .tree_integrate = n_tree_integrate,
};

}  // namespace

const Ops& neon_ops() { return kNeonOps; }

}  // namespace ssp::kernels::detail

#endif  // SSP_KERNELS_HAVE_NEON
