#pragma once

/// \file vector_ops.hpp
/// Dense vector operations. Vectors are plain `std::vector<double>`; every
/// routine also has a `std::span` form so callers can operate on sub-ranges
/// without copies. These are the size-checked convenience wrappers — the
/// actual inner loops live in the dispatchable kernel layer
/// (la/kernels/kernels.hpp), which owns the one definition of each
/// primitive per backend and the cross-backend determinism contract.
///
/// The spectral-sparsification pipeline works exclusively in the subspace
/// orthogonal to the all-ones vector (the common nullspace of connected
/// graph Laplacians); `project_out_mean` implements that projection and is
/// used after every operator application.

#include <span>
#include <vector>

#include "util/types.hpp"

namespace ssp {

using Vec = std::vector<double>;

/// Inner product <x, y>. Sizes must match.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm ||x||_2.
[[nodiscard]] double norm2(std::span<const double> x);

/// Infinity norm ||x||_inf. NaN entries follow MAXPD lane semantics
/// (`acc > v ? acc : v`, second operand on unordered): a NaN enters the
/// accumulator but is NOT sticky — a later element in the same lane
/// replaces it. The exact NaN behaviour is a function of the canonical
/// lane order only, so it is identical across backends.
[[nodiscard]] double norm_inf(std::span<const double> x);

/// y += a*x.
void axpy(double a, std::span<const double> x, std::span<double> y);

/// x *= a.
void scale(std::span<double> x, double a);

/// x := a (fill).
void fill(std::span<double> x, double a);

/// Arithmetic mean of x (0 for empty).
[[nodiscard]] double mean(std::span<const double> x);

/// Subtracts the mean from every entry: x := (I - (1/n) 11^T) x.
void project_out_mean(std::span<double> x);

/// Normalizes x to unit Euclidean norm. Throws std::invalid_argument when
/// ||x|| is zero (no direction to normalize).
void normalize(std::span<double> x);

/// Returns x - y.
[[nodiscard]] Vec subtract(std::span<const double> x, std::span<const double> y);

/// Returns x + y.
[[nodiscard]] Vec add(std::span<const double> x, std::span<const double> y);

/// Relative Euclidean distance ||x - y|| / max(||y||, eps).
[[nodiscard]] double relative_error(std::span<const double> x,
                                    std::span<const double> y);

class Rng;

/// Zero-mean unit-norm random probe vector (Rademacher entries). Redraws —
/// falling back to Gaussian entries — when the mean-projection annihilates
/// the draw, which happens with probability 2^{1−n} for ±1 vectors (certain
/// failure mode for n = 2).
[[nodiscard]] Vec random_probe_vector(Index n, Rng& rng);

/// In-place form of `random_probe_vector` writing into `v` (size >= 2):
/// draws the identical Rng sequence without allocating, so steady-state
/// callers (the densification engine) can reuse one buffer across rounds.
void random_probe_fill(std::span<double> v, Rng& rng);

}  // namespace ssp
