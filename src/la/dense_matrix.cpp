#include "la/dense_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace ssp {

DenseMatrix::DenseMatrix(Index rows, Index cols, double value)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            value) {
  SSP_REQUIRE(rows >= 0 && cols >= 0, "negative dimensions");
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a, Index max_dim) {
  SSP_REQUIRE(a.rows() <= max_dim && a.cols() <= max_dim,
              "matrix too large to densify");
  DenseMatrix d(a.rows(), a.cols());
  for (Index r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      d(r, cols[k]) = vals[k];
    }
  }
  return d;
}

DenseMatrix DenseMatrix::identity(Index n) {
  DenseMatrix d(n, n);
  for (Index i = 0; i < n; ++i) d(i, i) = 1.0;
  return d;
}

double& DenseMatrix::operator()(Index r, Index c) {
  SSP_DASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

double DenseMatrix::operator()(Index r, Index c) const {
  SSP_DASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

void DenseMatrix::multiply(std::span<const double> x,
                           std::span<double> y) const {
  SSP_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply: x size");
  SSP_REQUIRE(static_cast<Index>(y.size()) == rows_, "multiply: y size");
  for (Index r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (Index c = 0; c < cols_; ++c) s += (*this)(r, c) * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = s;
  }
}

Vec DenseMatrix::multiply(std::span<const double> x) const {
  Vec y(static_cast<std::size_t>(rows_));
  multiply(x, y);
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& b) const {
  SSP_REQUIRE(cols_ == b.rows_, "multiply: inner dimension mismatch");
  DenseMatrix out(rows_, b.cols_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (Index j = 0; j < b.cols_; ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (Index r = 0; r < rows_; ++r) {
    for (Index c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void DenseMatrix::cholesky_in_place() {
  SSP_REQUIRE(rows_ == cols_, "cholesky: matrix must be square");
  for (Index j = 0; j < cols_; ++j) {
    double d = (*this)(j, j);
    for (Index k = 0; k < j; ++k) d -= (*this)(j, k) * (*this)(j, k);
    if (d <= 0.0) {
      throw std::runtime_error("dense Cholesky: matrix is not SPD (pivot " +
                               std::to_string(j) + " = " + std::to_string(d) +
                               ")");
    }
    const double ljj = std::sqrt(d);
    (*this)(j, j) = ljj;
    for (Index i = j + 1; i < rows_; ++i) {
      double s = (*this)(i, j);
      for (Index k = 0; k < j; ++k) s -= (*this)(i, k) * (*this)(j, k);
      (*this)(i, j) = s / ljj;
    }
  }
}

Vec DenseMatrix::cholesky_solve(std::span<const double> b) const {
  SSP_REQUIRE(rows_ == cols_, "cholesky_solve: matrix must be square");
  SSP_REQUIRE(static_cast<Index>(b.size()) == rows_, "cholesky_solve: b size");
  Vec x(b.begin(), b.end());
  // Forward: L y = b.
  for (Index i = 0; i < rows_; ++i) {
    double s = x[static_cast<std::size_t>(i)];
    for (Index k = 0; k < i; ++k) s -= (*this)(i, k) * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = s / (*this)(i, i);
  }
  // Backward: L^T x = y.
  for (Index i = rows_ - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < rows_; ++k) {
      s -= (*this)(k, i) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = s / (*this)(i, i);
  }
  return x;
}

}  // namespace ssp
