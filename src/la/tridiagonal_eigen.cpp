#include "la/tridiagonal_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/assert.hpp"

namespace ssp {

namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

/// Implicit-shift QL on (d, e); when `z` is non-null, accumulates the
/// rotations into its columns (z must start as identity or any orthogonal
/// basis to rotate).
void tql2_core(Vec& d, Vec& e, DenseMatrix* z) {
  const Index n = static_cast<Index>(d.size());
  if (n <= 1) return;
  // e is shifted so that e[i] couples d[i] and d[i+1]; internally use the
  // classic convention e[0..n-2] valid, with a zero sentinel at the end.
  e.push_back(0.0);

  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    Index m = 0;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m) + 1]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <=
            1e-16 * dd) {
          break;
        }
      }
      if (m != l) {
        if (++iter == 50) {
          throw std::runtime_error("tridiagonal QL: no convergence");
        }
        double g = (d[static_cast<std::size_t>(l) + 1] -
                    d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = hypot2(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] /
                (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (Index i = m - 1; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = hypot2(f, g);
          e[static_cast<std::size_t>(i) + 1] = r;
          if (r == 0.0) {
            d[static_cast<std::size_t>(i) + 1] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i) + 1] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i) + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (Index k = 0; k < z->rows(); ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
  e.pop_back();
}

}  // namespace

TridiagonalEigen tridiagonal_eigen(const Vec& diag, const Vec& offdiag) {
  const Index n = static_cast<Index>(diag.size());
  SSP_REQUIRE(n == 0 || static_cast<Index>(offdiag.size()) == n - 1,
              "tridiagonal_eigen: offdiag must have length n-1");
  TridiagonalEigen out;
  if (n == 0) {
    out.vectors = DenseMatrix(0, 0);
    return out;
  }
  Vec d = diag;
  Vec e = offdiag;
  DenseMatrix z = DenseMatrix::identity(n);
  tql2_core(d, e, &z);

  // Sort ascending.
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  std::sort(perm.begin(), perm.end(), [&](Index a, Index b) {
    return d[static_cast<std::size_t>(a)] < d[static_cast<std::size_t>(b)];
  });
  out.eigenvalues.resize(static_cast<std::size_t>(n));
  out.vectors = DenseMatrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = perm[static_cast<std::size_t>(j)];
    out.eigenvalues[static_cast<std::size_t>(j)] =
        d[static_cast<std::size_t>(src)];
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = z(i, src);
  }
  return out;
}

Vec tridiagonal_eigenvalues(const Vec& diag, const Vec& offdiag) {
  const Index n = static_cast<Index>(diag.size());
  SSP_REQUIRE(n == 0 || static_cast<Index>(offdiag.size()) == n - 1,
              "tridiagonal_eigenvalues: offdiag must have length n-1");
  Vec d = diag;
  Vec e = offdiag;
  tql2_core(d, e, nullptr);
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace ssp
