#include "la/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/kernels/kernels.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace ssp {

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<Index> row_ptr,
                     std::vector<Vertex> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  SSP_REQUIRE(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  SSP_REQUIRE(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
              "row_ptr size must be rows+1");
  SSP_REQUIRE(col_idx_.size() == values_.size(),
              "col_idx/values size mismatch");
  SSP_REQUIRE(row_ptr_.front() == 0 &&
                  row_ptr_.back() == static_cast<Index>(col_idx_.size()),
              "row_ptr endpoints invalid");
  for (Index r = 0; r < rows_; ++r) {
    SSP_REQUIRE(row_ptr_[static_cast<std::size_t>(r)] <=
                    row_ptr_[static_cast<std::size_t>(r) + 1],
                "row_ptr must be non-decreasing");
  }
}

CsrMatrix CsrMatrix::from_triplets(Index rows, Index cols,
                                   std::span<const Triplet> ts) {
  SSP_REQUIRE(rows >= 0 && cols >= 0, "negative dimensions");
  for (const auto& t : ts) {
    SSP_REQUIRE(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                "triplet index out of range");
  }
  // Counting sort by row, then sort each row's slice by column and coalesce.
  std::vector<Index> counts(static_cast<std::size_t>(rows) + 1, 0);
  for (const auto& t : ts) ++counts[static_cast<std::size_t>(t.row) + 1];
  for (Index r = 0; r < rows; ++r) {
    counts[static_cast<std::size_t>(r) + 1] +=
        counts[static_cast<std::size_t>(r)];
  }
  std::vector<Index> slot = counts;  // running insert positions
  std::vector<Vertex> cols_tmp(ts.size());
  std::vector<double> vals_tmp(ts.size());
  for (const auto& t : ts) {
    const auto pos =
        static_cast<std::size_t>(slot[static_cast<std::size_t>(t.row)]++);
    cols_tmp[pos] = static_cast<Vertex>(t.col);
    vals_tmp[pos] = t.value;
  }

  std::vector<Index> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<Vertex> col_idx;
  std::vector<double> values;
  col_idx.reserve(ts.size());
  values.reserve(ts.size());

  std::vector<std::pair<Vertex, double>> row_buf;
  for (Index r = 0; r < rows; ++r) {
    const auto begin = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
    const auto end =
        static_cast<std::size_t>(counts[static_cast<std::size_t>(r) + 1]);
    row_buf.clear();
    for (std::size_t i = begin; i < end; ++i) {
      row_buf.emplace_back(cols_tmp[i], vals_tmp[i]);
    }
    // Stable: duplicate columns must coalesce in insertion order so the
    // floating-point sum below is reproducible (and matches the
    // streaming .sspb converter bit for bit).
    std::stable_sort(row_buf.begin(), row_buf.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (std::size_t i = 0; i < row_buf.size();) {
      const Vertex c = row_buf[i].first;
      double sum = 0.0;
      while (i < row_buf.size() && row_buf[i].first == c) {
        sum += row_buf[i].second;
        ++i;
      }
      col_idx.push_back(c);
      values.push_back(sum);
    }
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(col_idx.size());
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::identity(Index n) {
  std::vector<Index> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<Vertex> col_idx(static_cast<std::size_t>(n));
  std::vector<double> values(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i <= n; ++i) row_ptr[static_cast<std::size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) {
    col_idx[static_cast<std::size_t>(i)] = static_cast<Vertex>(i);
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  SSP_REQUIRE(static_cast<Index>(x.size()) == cols_, "multiply: x size");
  SSP_REQUIRE(static_cast<Index>(y.size()) == rows_, "multiply: y size");
  const auto& k = kernels::ops();
  // Each y[r] is owned by exactly one row, so the row-parallel form is
  // bit-identical to the serial loop for every thread count.
  if (rows_ >= kernels::kSpmvParallelMinRows &&
      static_cast<Index>(col_idx_.size()) >= kernels::kSpmvParallelMinNnz) {
    parallel_for_chunks(Index{0}, rows_, 0, [&](int, Index b, Index e) {
      k.spmv_rows(b, e, row_ptr_.data(), col_idx_.data(), values_.data(),
                  x.data(), y.data());
    });
  } else {
    k.spmv_rows(0, rows_, row_ptr_.data(), col_idx_.data(), values_.data(),
                x.data(), y.data());
  }
}

void CsrMatrix::multiply_panel(std::span<const double> x, std::span<double> y,
                               Index r) const {
  SSP_REQUIRE(r >= 1, "multiply_panel: need r >= 1");
  SSP_REQUIRE(static_cast<Index>(x.size()) == cols_ * r,
              "multiply_panel: x size");
  SSP_REQUIRE(static_cast<Index>(y.size()) == rows_ * r,
              "multiply_panel: y size");
  const auto& k = kernels::ops();
  // The nnz floor scales with the panel width: the panel does r times the
  // flops per row, so the fork/join cost amortizes r times sooner.
  if (rows_ >= kernels::kSpmvParallelMinRows &&
      static_cast<Index>(col_idx_.size()) * r >=
          kernels::kSpmvParallelMinNnz) {
    parallel_for_chunks(Index{0}, rows_, 0, [&](int, Index b, Index e) {
      k.spmv_panel(b, e, row_ptr_.data(), col_idx_.data(), values_.data(),
                   x.data(), y.data(), r);
    });
  } else {
    k.spmv_panel(0, rows_, row_ptr_.data(), col_idx_.data(), values_.data(),
                 x.data(), y.data(), r);
  }
}

Vec CsrMatrix::multiply(std::span<const double> x) const {
  Vec y(static_cast<std::size_t>(rows_));
  multiply(x, y);
  return y;
}

double CsrMatrix::bilinear(std::span<const double> x,
                           std::span<const double> y) const {
  SSP_REQUIRE(static_cast<Index>(x.size()) == rows_, "bilinear: x size");
  const Vec ay = multiply(y);
  return dot(x, ay);
}

double CsrMatrix::quadratic(std::span<const double> x) const {
  return bilinear(x, x);
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<Index> row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (Vertex c : col_idx_) ++row_ptr[static_cast<std::size_t>(c) + 1];
  for (Index c = 0; c < cols_; ++c) {
    row_ptr[static_cast<std::size_t>(c) + 1] +=
        row_ptr[static_cast<std::size_t>(c)];
  }
  std::vector<Index> slot(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<Vertex> col_idx(col_idx_.size());
  std::vector<double> values(values_.size());
  for (Index r = 0; r < rows_; ++r) {
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto c =
          static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]);
      const auto pos = static_cast<std::size_t>(slot[c]++);
      col_idx[pos] = static_cast<Vertex>(r);
      values[pos] = values_[static_cast<std::size_t>(k)];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

Vec CsrMatrix::diagonal() const {
  const Index n = std::min(rows_, cols_);
  Vec d(static_cast<std::size_t>(n), 0.0);
  for (Index r = 0; r < n; ++r) {
    d[static_cast<std::size_t>(r)] = at(r, r);
  }
  return d;
}

void CsrMatrix::drop_explicit_zeros() {
  std::vector<Index> new_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<Vertex> new_cols;
  std::vector<double> new_vals;
  new_cols.reserve(col_idx_.size());
  new_vals.reserve(values_.size());
  for (Index r = 0; r < rows_; ++r) {
    for (Index k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      if (values_[static_cast<std::size_t>(k)] != 0.0) {
        new_cols.push_back(col_idx_[static_cast<std::size_t>(k)]);
        new_vals.push_back(values_[static_cast<std::size_t>(k)]);
      }
    }
    new_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(new_cols.size());
  }
  row_ptr_ = std::move(new_ptr);
  col_idx_ = std::move(new_cols);
  values_ = std::move(new_vals);
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  const CsrMatrix t = transpose();
  if (t.nnz() != nnz()) return false;
  for (Index r = 0; r < rows_; ++r) {
    const auto a_cols = row_cols(r);
    const auto b_cols = t.row_cols(r);
    if (a_cols.size() != b_cols.size()) return false;
    const auto a_vals = row_vals(r);
    const auto b_vals = t.row_vals(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      if (a_cols[i] != b_cols[i]) return false;
      if (std::abs(a_vals[i] - b_vals[i]) > tol) return false;
    }
  }
  return true;
}

std::span<const Vertex> CsrMatrix::row_cols(Index r) const {
  SSP_REQUIRE(r >= 0 && r < rows_, "row index out of range");
  const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
  const auto e =
      static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
  return {col_idx_.data() + b, e - b};
}

std::span<const double> CsrMatrix::row_vals(Index r) const {
  SSP_REQUIRE(r >= 0 && r < rows_, "row index out of range");
  const auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
  const auto e =
      static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
  return {values_.data() + b, e - b};
}

double CsrMatrix::at(Index r, Index c) const {
  SSP_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "at: index out of range");
  const auto cols = row_cols(r);
  const auto vals = row_vals(r);
  const auto it =
      std::lower_bound(cols.begin(), cols.end(), static_cast<Vertex>(c));
  if (it != cols.end() && *it == static_cast<Vertex>(c)) {
    return vals[static_cast<std::size_t>(it - cols.begin())];
  }
  return 0.0;
}

double CsrMatrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

}  // namespace ssp
