#pragma once

/// \file dense_eigen.hpp
/// Dense symmetric eigensolver (cyclic Jacobi rotations) and a dense
/// generalized eigensolver for the pencil (A, B) with B symmetric positive
/// semi-definite sharing A's nullspace.
///
/// These are the *reference oracles* the test suite uses to validate the
/// sparse Lanczos/power-iteration code and the paper's estimators on small
/// graphs. O(n^3) — intended for n up to a few hundred.

#include <vector>

#include "la/dense_matrix.hpp"
#include "util/types.hpp"

namespace ssp {

/// Result of a dense symmetric eigendecomposition A = V diag(w) V^T.
struct DenseEigen {
  Vec eigenvalues;     ///< ascending
  DenseMatrix vectors; ///< column j is the eigenvector of eigenvalues[j]
};

/// Full eigendecomposition of a symmetric matrix by cyclic Jacobi.
/// Off-diagonal convergence threshold `tol` is relative to the Frobenius
/// norm. Throws std::invalid_argument when `a` is not square/symmetric.
[[nodiscard]] DenseEigen dense_symmetric_eigen(const DenseMatrix& a,
                                               double tol = 1e-13,
                                               int max_sweeps = 100);

/// Generalized eigenvalues of the pencil `A u = λ B u` restricted to the
/// complement of the common nullspace of A and B (for graph Laplacians: the
/// all-ones vector). Implemented by eigendecomposing B, forming
/// `M = B^{+1/2} A B^{+1/2}` on the range of B, and eigendecomposing M.
/// Eigenvalues whose B-eigenvalue is below `null_tol` (relative) are treated
/// as nullspace directions and skipped.
/// \returns ascending finite generalized eigenvalues.
[[nodiscard]] Vec dense_generalized_eigenvalues(const DenseMatrix& a,
                                                const DenseMatrix& b,
                                                double null_tol = 1e-9);

}  // namespace ssp
