#pragma once

/// \file protocol.hpp
/// Line framing and response grammar of the sparsification service
/// (src/serve/). The *request* grammar is the update-journal grammar of
/// journal_wire.hpp extended with session and read verbs:
///
/// ```
/// open <name> <mtx-path|gen-spec>   % create a session and attach to it
/// attach <name>                     % attach to an existing session
/// close [<name>]                    % close the attached (or named) session
/// sessions                          % list open sessions
/// insert <u> <v> <w>                % buffer one op (journal grammar)
/// delete <u> <v>
/// reweight <u> <v> <w>
/// commit                            % apply the buffered ops as one batch
/// query edges|stats|quality|journal % read the attached session
/// snapshot <path>                   % write the sparsifier as .mtx
/// stats [<session>]                 % introspection: all-session summary
///                                   %   lines, or key=value detail (incl.
///                                   %   per-stage seconds) for one session
/// metrics                           % dump the obs registry snapshot as
///                                   %   sorted "<name> <value>" lines
/// ping                              % liveness probe
/// quit                              % close the connection
/// ```
///
/// Every request line receives exactly one status line: `ok ...` or
/// `err <category>: <message>`. A status of the form `ok n=<k> ...`
/// announces a payload of exactly k data lines following it — clients
/// read k more lines and are back in lockstep. The mutation path
/// (insert/delete/reweight/commit) *is* the journal grammar, so the
/// committed traffic of a session replays offline through
/// `ssp_sparsify --update-file` byte for byte.

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ssp::serve {

/// A line exceeded the framing limit (protocol violation; the server
/// reports it and drops the connection).
class FramingError : public std::runtime_error {
 public:
  explicit FramingError(const std::string& what) : std::runtime_error(what) {}
};

/// Reassembles protocol lines from a byte stream: lines may arrive split
/// across reads or several per read. `\n` terminates a line; a trailing
/// `\r` is stripped (telnet-style clients). Lines longer than `max_line`
/// bytes throw FramingError — a server cannot buffer unbounded garbage.
class LineFramer {
 public:
  static constexpr std::size_t kDefaultMaxLine = 64 * 1024;

  explicit LineFramer(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Appends `data` and returns every line it completes, in order.
  std::vector<std::string> push(std::string_view data);

  /// Bytes of the line still under assembly (no terminator seen yet).
  [[nodiscard]] const std::string& partial() const { return partial_; }

  [[nodiscard]] std::size_t max_line() const { return max_line_; }

 private:
  std::size_t max_line_;
  std::string partial_;
};

/// Formats an error status line: `err <category>: <message>`, with any
/// newlines in `message` flattened to spaces (responses are one line).
[[nodiscard]] std::string error_line(const std::string& category,
                                     const std::string& message);

/// True when `status` is an `ok` response.
[[nodiscard]] bool is_ok(const std::string& status);

/// The payload line count announced by a status line (`n=<k>` token), or
/// nullopt when the status carries no payload.
[[nodiscard]] std::optional<std::size_t> payload_count(
    const std::string& status);

}  // namespace ssp::serve
