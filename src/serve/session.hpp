#pragma once

/// \file session.hpp
/// Multi-tenant session state of the sparsification service: a `Session`
/// wraps one `DynamicSparsifier` plus its committed journal and
/// per-session telemetry; a `SessionManager` owns many named sessions
/// behind admission control (max sessions, per-session commit queue caps
/// with backpressure responses).
///
/// Concurrency model: any number of client threads may call into one
/// session; commits are FIFO-serialized on a per-session apply lock (the
/// journal records the actual apply order), and each apply fans its
/// engine work out across the process-wide `ssp::ThreadPool` exactly like
/// an offline run. Backpressure: a commit that finds `max_queued_batches`
/// commits already queued or applying is rejected *before* waiting, so a
/// client sees `err backpressure` instead of an unbounded stall.
///
/// Determinism contract (inherited from the dynamic layer): whatever
/// interleaving of client commits a session observes, its sparsifier is
/// bit-identical to replaying the session's committed journal offline
/// through `ssp_sparsify --update-file` on the same base options — the
/// journal is written in apply order, batch seeds derive from the batch
/// index, and thread counts never change a bit of output.

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "dynamic/dynamic_sparsifier.hpp"
#include "dynamic/update_journal.hpp"
#include "graph/graph.hpp"
#include "storage/checkpoint.hpp"

namespace ssp::serve {

/// Engine + admission-control configuration of the daemon.
struct ServeOptions {
  /// Per-session engine options (every session gets the same base; the
  /// per-batch seed derivation is the dynamic layer's).
  DynamicOptions dynamic;
  /// Admission control: `open` beyond this many live sessions is refused.
  Index max_sessions = 64;
  /// Per-session cap on commits queued or applying; the commit that would
  /// exceed it gets a backpressure error instead of waiting.
  Index max_queued_batches = 8;
  /// Graceful-drain budget on shutdown: how long the server waits for
  /// in-flight commits before force-closing connections.
  double drain_seconds = 5.0;
  /// Session persistence directory (see session_store.hpp). Empty (the
  /// default) disables persistence; non-empty makes every session journal
  /// its commits to disk, checkpoint its sparsifier, and reopen warm on
  /// the next start — bit-identical to a never-restarted daemon.
  std::string state_dir;
  /// With persistence on: write a sparsifier checkpoint every N commits
  /// (a final one is always written on graceful close). Smaller = less
  /// journal tail to replay after a hard kill, more checkpoint I/O.
  Index checkpoint_every = 16;

  /// Throws std::invalid_argument on the first violated constraint
  /// (including dynamic.validate()).
  void validate() const;

  ServeOptions& with_dynamic(DynamicOptions opts);
  ServeOptions& with_max_sessions(Index n);
  ServeOptions& with_max_queued_batches(Index n);
  ServeOptions& with_drain_seconds(double seconds);
  ServeOptions& with_state_dir(std::string dir);
  ServeOptions& with_checkpoint_every(Index n);
};

/// Per-session persistence wiring (paths live in
/// `ServeOptions::state_dir`; see session_store.hpp). Default-constructed
/// = persistence off.
struct SessionPersist {
  std::string journal_path;     ///< empty = no persistence
  std::string checkpoint_path;
  Index checkpoint_every = 16;

  [[nodiscard]] bool enabled() const { return !journal_path.empty(); }
};

/// Outcome of Session::commit.
struct CommitOutcome {
  bool accepted = false;  ///< false = backpressure (state untouched)
  Index queued = 0;       ///< commits queued/applying at rejection time
  UpdateStats stats{};    ///< valid iff accepted
};

/// Aggregate read-side view of one session.
struct SessionInfo {
  Vertex vertices = 0;
  EdgeId graph_edges = 0;
  EdgeId sparsifier_edges = 0;
  double sigma2_estimate = 0.0;
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  bool reached_target = false;
  Index batches = 0;           ///< dynamic-layer batches incl. initial build
  Index commits = 0;           ///< committed (non-empty) client batches
  double last_seconds = 0.0;   ///< wall time of the latest batch
  double total_seconds = 0.0;  ///< summed batch wall time incl. build
  UpdateRoute last_route = UpdateRoute::kRebuild;
};

/// One named graph session: an evolving graph + its live sparsifier +
/// the journal of every committed batch. Thread-safe; see the file
/// comment for the serialization and backpressure rules.
class Session {
 public:
  /// Binds to `g` (finalized, connected) and runs the initial
  /// sparsification eagerly — construction is the expensive step. With
  /// `persist` enabled, the journal file must already exist (the manager
  /// writes its header before constructing the session).
  Session(std::string name, const Graph& g, const DynamicOptions& opts,
          Index max_queued_batches, SessionPersist persist = {});

  /// Warm restore from on-disk state: `g` is the freshly loaded source
  /// graph, `batches` the committed journal, `ckpt` the latest
  /// checkpoint (nullptr when none was written yet). The graph is
  /// fast-forwarded to the checkpointed batch without re-sparsifying
  /// (dynamic/apply_batch_to_graph + DynamicRestoreState); only the
  /// journal tail past `ckpt->commits` replays through full applies.
  /// The resulting session is bit-identical to one that never restarted.
  Session(std::string name, const Graph& g, const DynamicOptions& opts,
          Index max_queued_batches,
          const storage::SparsifierCheckpoint* ckpt,
          std::span<const JournalBatch> batches, SessionPersist persist);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Applies one committed batch (already parsed, endpoint-addressed).
  /// Resolution/validation failures throw std::runtime_error /
  /// std::invalid_argument and leave every bit of state untouched; a full
  /// queue returns `accepted = false` instead. `batch` must be non-empty.
  CommitOutcome commit(const JournalBatch& batch);

  /// The committed journal in apply order: each batch's canonical op
  /// lines followed by `commit` — exactly what `ssp_sparsify
  /// --update-file` replays to the same bits.
  [[nodiscard]] std::vector<std::string> journal_lines() const;

  /// The sparsifier's edges materialized as `(u, v, w)` rows.
  [[nodiscard]] std::vector<Edge> sparsifier_edges() const;

  /// Aggregate telemetry + quality view.
  [[nodiscard]] SessionInfo info() const;

  /// Commits queued or applying right now (the `stats` verb's queue
  /// depth; bounded by max_queued_batches).
  [[nodiscard]] Index queued() const;

  /// Per-stage breakdown of the latest batch (the dynamic layer's
  /// UpdateStats, including the initial build as batch 0).
  [[nodiscard]] UpdateStats last_update() const;

  /// Writes the sparsifier as a symmetric .mtx — byte-identical to
  /// `ssp_sparsify --update-file <journal> --out <path>` on the committed
  /// journal.
  void snapshot_mtx(const std::string& path) const;

  /// Marks the session closed: every later call fails. Blocks until the
  /// applying commit (if any) finishes.
  void close();

  [[nodiscard]] bool closed() const;

  /// Telemetry pass-through to the underlying DynamicSparsifier. Attach
  /// before traffic starts; the observer must outlive the session.
  void set_observer(DynamicObserver* observer);

 private:
  void require_open_locked() const;  ///< throws when closed_
  /// Builds the restored dynamic layer: fast-forwards a copy of `g`
  /// through the checkpointed batches' graph mutations, then restores
  /// the sparsifier state without running it.
  [[nodiscard]] static DynamicSparsifier make_restored(
      const Graph& g, const DynamicOptions& opts,
      const storage::SparsifierCheckpoint* ckpt,
      std::span<const JournalBatch> batches);
  /// Appends one committed batch's lines to the journal file (flushed).
  /// Caller holds apply_mu_.
  void persist_batch_locked(const JournalBatch& batch);
  /// Writes the sparsifier checkpoint at the current commit count.
  /// Caller holds apply_mu_.
  void persist_checkpoint_locked();

  const std::string name_;
  const Index max_queued_batches_;
  const SessionPersist persist_;

  mutable std::mutex admit_mu_;  ///< guards pending_ + closed_
  Index pending_ = 0;            ///< commits queued or applying
  bool closed_ = false;

  mutable std::mutex apply_mu_;  ///< serializes applies and reads
  DynamicSparsifier dyn_;
  std::vector<std::string> journal_;
  Index commits_ = 0;
  std::ofstream journal_file_;  ///< append handle, opened lazily
};

/// Builds a session graph from `source`: a Matrix Market path, or a
/// generator spec
///
/// ```
/// gen:grid2d:<nx>x<ny>[:<seed>]    % 2-D grid, log-uniform weights
/// gen:tri:<nx>x<ny>[:<seed>]      % triangulated grid, uniform weights
/// gen:ba:<n>:<m>[:<seed>]         % preferential attachment, unit weights
/// gen:planted:<n>:<k>[:<seed>]    % planted partition, uniform weights
/// ```
///
/// The same spec always yields the same graph (explicit seed, default 1).
/// Throws std::invalid_argument on malformed specs, std::runtime_error on
/// unreadable files.
[[nodiscard]] Graph load_session_graph(const std::string& source);

/// Named-session table with admission control. Thread-safe.
class SessionManager {
 public:
  explicit SessionManager(ServeOptions opts);

  [[nodiscard]] const ServeOptions& options() const { return opts_; }

  /// Creates (and returns) a session — the expensive graph load + initial
  /// sparsification runs outside the table lock, so concurrent opens of
  /// *different* names overlap. Throws on duplicate/invalid names, a full
  /// table, or a failing load.
  std::shared_ptr<Session> open(const std::string& name,
                                const std::string& source);

  /// Looks up an open session; throws std::runtime_error when unknown or
  /// still opening.
  [[nodiscard]] std::shared_ptr<Session> attach(const std::string& name) const;

  /// Closes and removes a session (live attachments see "closed" errors).
  /// With persistence on, this is the *explicit teardown* path: the
  /// session's journal and checkpoint files are deleted — a client-closed
  /// session does not resurrect on the next start.
  void close(const std::string& name);

  /// Open session names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] Index size() const;

  /// Closes every session (shutdown path) — blocks on in-flight commits.
  /// On-disk state is kept (each close writes a final checkpoint), so
  /// the next start restores every session warm.
  void close_all();

  /// Restores every session persisted in `state_dir` (no-op when
  /// persistence is off or the directory is empty). Returns the restored
  /// names. Call before serving traffic; throws on corrupt state files
  /// (SspbError / JournalParseError name the exact offset or line).
  std::vector<std::string> restore_all();

 private:
  /// Persistence wiring for `name` (empty paths when state_dir is unset).
  [[nodiscard]] SessionPersist persist_for(const std::string& name) const;

  const ServeOptions opts_;
  mutable std::mutex mu_;
  /// nullptr value = name reserved by an in-progress open.
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace ssp::serve
