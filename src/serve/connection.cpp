#include "serve/connection.hpp"

#include <sstream>

#include "core/options_io.hpp"
#include "dynamic/journal_wire.hpp"
#include "serve/protocol.hpp"

namespace ssp::serve {

namespace {

std::string format_double(double v) { return format_journal_weight(v); }

}  // namespace

Reply Connection::handle_line(const std::string& line) {
  ++line_no_;
  try {
    return dispatch(line, tokenize_journal_line(line));
  } catch (const JournalParseError& e) {
    return Reply{error_line("parse", e.what()), {}, false};
  } catch (const std::invalid_argument& e) {
    return Reply{error_line("invalid", e.what()), {}, false};
  } catch (const std::exception& e) {
    return Reply{error_line("error", e.what()), {}, false};
  }
}

Reply Connection::dispatch(const std::string& line,
                           const std::vector<std::string>& tokens) {
  if (tokens.empty()) return Reply{"ok blank", {}, false};  // keep lockstep
  const std::string& verb = tokens[0];
  if (verb == "open") return handle_open(tokens);
  if (verb == "attach") return handle_attach(tokens);
  if (verb == "close") return handle_close(tokens);
  if (verb == "sessions") return handle_sessions();
  if (verb == "insert" || verb == "delete" || verb == "reweight" ||
      verb == "commit") {
    return handle_journal_line(line);
  }
  if (verb == "query") return handle_query(tokens);
  if (verb == "snapshot") return handle_snapshot(tokens);
  if (verb == "ping") return Reply{"ok pong", {}, false};
  if (verb == "quit") return Reply{"ok bye", {}, true};
  std::ostringstream os;
  os << "unknown request '" << verb << "' (line " << line_no_ << ": \"" << line
     << "\")";
  return Reply{error_line("protocol", os.str()), {}, false};
}

namespace {

std::string session_status(const Session& session) {
  const SessionInfo info = session.info();
  std::ostringstream os;
  os << "ok session=" << session.name() << " vertices=" << info.vertices
     << " graph_edges=" << info.graph_edges
     << " sparsifier_edges=" << info.sparsifier_edges
     << " sigma2=" << format_double(info.sigma2_estimate)
     << " reached=" << (info.reached_target ? 1 : 0);
  return os.str();
}

}  // namespace

Reply Connection::handle_open(const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) {
    return Reply{error_line("protocol", "usage: open <name> <mtx-path|gen-spec>"),
                 {},
                 false};
  }
  auto session = sessions_.open(tokens[1], tokens[2]);
  session_ = std::move(session);
  pending_ = JournalBatch{};
  return Reply{session_status(*session_), {}, false};
}

Reply Connection::handle_attach(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Reply{error_line("protocol", "usage: attach <name>"), {}, false};
  }
  session_ = sessions_.attach(tokens[1]);
  pending_ = JournalBatch{};
  return Reply{session_status(*session_), {}, false};
}

Reply Connection::handle_close(const std::vector<std::string>& tokens) {
  if (tokens.size() > 2) {
    return Reply{error_line("protocol", "usage: close [<name>]"), {}, false};
  }
  std::string name;
  if (tokens.size() == 2) {
    name = tokens[1];
  } else {
    if (session_ == nullptr) {
      return Reply{error_line("protocol", "close: no session attached"),
                   {},
                   false};
    }
    name = session_->name();
  }
  sessions_.close(name);
  if (session_ != nullptr && session_->name() == name) {
    session_.reset();
    pending_ = JournalBatch{};
  }
  return Reply{"ok closed=" + name, {}, false};
}

Reply Connection::handle_sessions() {
  Reply reply;
  reply.payload = sessions_.names();
  std::ostringstream os;
  os << "ok n=" << reply.payload.size();
  reply.status = os.str();
  return reply;
}

std::shared_ptr<Session> Connection::require_session() const {
  if (session_ == nullptr) {
    throw std::runtime_error(
        "no session attached (use 'open <name> <source>' or 'attach <name>')");
  }
  return session_;
}

Reply Connection::handle_journal_line(const std::string& line) {
  const auto session = require_session();
  const JournalLine parsed = parse_journal_line(line, line_no_);
  if (parsed.kind == JournalLine::Kind::kOp) {
    pending_.ops.push_back(parsed.op);
    std::ostringstream os;
    os << "ok queued=" << pending_.ops.size();
    return Reply{os.str(), {}, false};
  }
  // commit — empty commits are no-ops, exactly like the journal grammar.
  if (pending_.ops.empty()) return Reply{"ok batch=empty", {}, false};
  CommitOutcome outcome;
  try {
    outcome = session->commit(pending_);
  } catch (...) {
    // Resolve/validation failure: the session is untouched, but the
    // buffered ops are poisoned — drop them so the client can rebuild.
    pending_ = JournalBatch{};
    throw;
  }
  if (!outcome.accepted) {
    // Backpressure keeps the buffer: the client may simply retry commit.
    std::ostringstream os;
    os << "session '" << session->name() << "' has " << outcome.queued
       << " queued batches (max "
       << sessions_.options().max_queued_batches << "); retry commit";
    return Reply{error_line("backpressure", os.str()), {}, false};
  }
  pending_ = JournalBatch{};
  const UpdateStats& s = outcome.stats;
  std::ostringstream os;
  os << "ok batch=" << s.batch << " route=" << to_string(s.route)
     << " graph_edges=" << s.graph_edges
     << " sparsifier_edges=" << s.sparsifier_edges
     << " sigma2=" << format_double(s.sigma2_estimate)
     << " reached=" << (s.reached_target ? 1 : 0)
     << " seconds=" << format_double(s.seconds);
  return Reply{os.str(), {}, false};
}

Reply Connection::handle_query(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Reply{
        error_line("protocol", "usage: query edges|stats|quality|journal"),
        {},
        false};
  }
  const auto session = require_session();
  const std::string& what = tokens[1];
  Reply reply;
  if (what == "edges") {
    for (const Edge& e : session->sparsifier_edges()) {
      std::ostringstream os;
      os << e.u << ' ' << e.v << ' ' << format_double(e.weight);
      reply.payload.push_back(os.str());
    }
    std::ostringstream os;
    os << "ok n=" << reply.payload.size();
    reply.status = os.str();
    return reply;
  }
  if (what == "journal") {
    reply.payload = session->journal_lines();
    const SessionInfo info = session->info();
    std::ostringstream os;
    os << "ok n=" << reply.payload.size() << " commits=" << info.commits;
    reply.status = os.str();
    return reply;
  }
  if (what == "stats") {
    const SessionInfo info = session->info();
    std::ostringstream os;
    os << "ok batches=" << info.batches << " commits=" << info.commits
       << " graph_edges=" << info.graph_edges
       << " sparsifier_edges=" << info.sparsifier_edges
       << " route=" << to_string(info.last_route)
       << " seconds=" << format_double(info.last_seconds)
       << " total_seconds=" << format_double(info.total_seconds);
    reply.status = os.str();
    return reply;
  }
  if (what == "quality") {
    const SessionInfo info = session->info();
    std::ostringstream os;
    os << "ok sigma2=" << format_double(info.sigma2_estimate)
       << " lambda_min=" << format_double(info.lambda_min)
       << " lambda_max=" << format_double(info.lambda_max)
       << " reached=" << (info.reached_target ? 1 : 0);
    reply.status = os.str();
    return reply;
  }
  return Reply{error_line("protocol", "unknown query '" + what +
                                          "' (edges|stats|quality|journal)"),
               {},
               false};
}

Reply Connection::handle_snapshot(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Reply{error_line("protocol", "usage: snapshot <path>"), {}, false};
  }
  const auto session = require_session();
  session->snapshot_mtx(tokens[1]);
  const SessionInfo info = session->info();
  std::ostringstream os;
  os << "ok wrote=" << tokens[1] << " edges=" << info.sparsifier_edges;
  return Reply{os.str(), {}, false};
}

}  // namespace ssp::serve
