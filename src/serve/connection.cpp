#include "serve/connection.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/options_io.hpp"
#include "dynamic/journal_wire.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace ssp::serve {

namespace {

// Raw shortest-round-trip text. Deliberately NOT format_journal_weight:
// that formatter enforces the journal's positive-weight domain, while the
// introspection fields here (seconds, fractions, λ bounds) may be zero.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Reply Connection::handle_line(const std::string& line) {
  ++line_no_;
  try {
    return dispatch(line, tokenize_journal_line(line));
  } catch (const JournalParseError& e) {
    return Reply{error_line("parse", e.what()), {}, false};
  } catch (const std::invalid_argument& e) {
    return Reply{error_line("invalid", e.what()), {}, false};
  } catch (const std::exception& e) {
    return Reply{error_line("error", e.what()), {}, false};
  }
}

Reply Connection::dispatch(const std::string& line,
                           const std::vector<std::string>& tokens) {
  if (tokens.empty()) return Reply{"ok blank", {}, false};  // keep lockstep
  const std::string& verb = tokens[0];
  if (verb == "open") return handle_open(tokens);
  if (verb == "attach") return handle_attach(tokens);
  if (verb == "close") return handle_close(tokens);
  if (verb == "sessions") return handle_sessions();
  if (verb == "insert" || verb == "delete" || verb == "reweight" ||
      verb == "commit") {
    return handle_journal_line(line);
  }
  if (verb == "query") return handle_query(tokens);
  if (verb == "snapshot") return handle_snapshot(tokens);
  if (verb == "stats") return handle_stats(tokens);
  if (verb == "metrics") return handle_metrics(tokens);
  if (verb == "ping") return Reply{"ok pong", {}, false};
  if (verb == "quit") return Reply{"ok bye", {}, true};
  std::ostringstream os;
  os << "unknown request '" << verb << "' (line " << line_no_ << ": \"" << line
     << "\")";
  return Reply{error_line("protocol", os.str()), {}, false};
}

namespace {

std::string session_status(const Session& session) {
  const SessionInfo info = session.info();
  std::ostringstream os;
  os << "ok session=" << session.name() << " vertices=" << info.vertices
     << " graph_edges=" << info.graph_edges
     << " sparsifier_edges=" << info.sparsifier_edges
     << " sigma2=" << format_double(info.sigma2_estimate)
     << " reached=" << (info.reached_target ? 1 : 0);
  return os.str();
}

}  // namespace

Reply Connection::handle_open(const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) {
    return Reply{error_line("protocol", "usage: open <name> <mtx-path|gen-spec>"),
                 {},
                 false};
  }
  auto session = sessions_.open(tokens[1], tokens[2]);
  session_ = std::move(session);
  pending_ = JournalBatch{};
  return Reply{session_status(*session_), {}, false};
}

Reply Connection::handle_attach(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Reply{error_line("protocol", "usage: attach <name>"), {}, false};
  }
  session_ = sessions_.attach(tokens[1]);
  pending_ = JournalBatch{};
  return Reply{session_status(*session_), {}, false};
}

Reply Connection::handle_close(const std::vector<std::string>& tokens) {
  if (tokens.size() > 2) {
    return Reply{error_line("protocol", "usage: close [<name>]"), {}, false};
  }
  std::string name;
  if (tokens.size() == 2) {
    name = tokens[1];
  } else {
    if (session_ == nullptr) {
      return Reply{error_line("protocol", "close: no session attached"),
                   {},
                   false};
    }
    name = session_->name();
  }
  sessions_.close(name);
  if (session_ != nullptr && session_->name() == name) {
    session_.reset();
    pending_ = JournalBatch{};
  }
  return Reply{"ok closed=" + name, {}, false};
}

Reply Connection::handle_sessions() {
  Reply reply;
  reply.payload = sessions_.names();
  std::ostringstream os;
  os << "ok n=" << reply.payload.size();
  reply.status = os.str();
  return reply;
}

std::shared_ptr<Session> Connection::require_session() const {
  if (session_ == nullptr) {
    throw std::runtime_error(
        "no session attached (use 'open <name> <source>' or 'attach <name>')");
  }
  return session_;
}

Reply Connection::handle_journal_line(const std::string& line) {
  const auto session = require_session();
  const JournalLine parsed = parse_journal_line(line, line_no_);
  if (parsed.kind == JournalLine::Kind::kOp) {
    pending_.ops.push_back(parsed.op);
    std::ostringstream os;
    os << "ok queued=" << pending_.ops.size();
    return Reply{os.str(), {}, false};
  }
  // commit — empty commits are no-ops, exactly like the journal grammar.
  if (pending_.ops.empty()) return Reply{"ok batch=empty", {}, false};
  CommitOutcome outcome;
  try {
    outcome = session->commit(pending_);
  } catch (...) {
    // Resolve/validation failure: the session is untouched, but the
    // buffered ops are poisoned — drop them so the client can rebuild.
    pending_ = JournalBatch{};
    throw;
  }
  if (!outcome.accepted) {
    // Backpressure keeps the buffer: the client may simply retry commit.
    std::ostringstream os;
    os << "session '" << session->name() << "' has " << outcome.queued
       << " queued batches (max "
       << sessions_.options().max_queued_batches << "); retry commit";
    return Reply{error_line("backpressure", os.str()), {}, false};
  }
  pending_ = JournalBatch{};
  const UpdateStats& s = outcome.stats;
  std::ostringstream os;
  os << "ok batch=" << s.batch << " route=" << to_string(s.route)
     << " graph_edges=" << s.graph_edges
     << " sparsifier_edges=" << s.sparsifier_edges
     << " sigma2=" << format_double(s.sigma2_estimate)
     << " reached=" << (s.reached_target ? 1 : 0)
     << " seconds=" << format_double(s.seconds);
  return Reply{os.str(), {}, false};
}

Reply Connection::handle_query(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Reply{
        error_line("protocol", "usage: query edges|stats|quality|journal"),
        {},
        false};
  }
  const auto session = require_session();
  const std::string& what = tokens[1];
  Reply reply;
  if (what == "edges") {
    for (const Edge& e : session->sparsifier_edges()) {
      std::ostringstream os;
      os << e.u << ' ' << e.v << ' ' << format_double(e.weight);
      reply.payload.push_back(os.str());
    }
    std::ostringstream os;
    os << "ok n=" << reply.payload.size();
    reply.status = os.str();
    return reply;
  }
  if (what == "journal") {
    reply.payload = session->journal_lines();
    const SessionInfo info = session->info();
    std::ostringstream os;
    os << "ok n=" << reply.payload.size() << " commits=" << info.commits;
    reply.status = os.str();
    return reply;
  }
  if (what == "stats") {
    const SessionInfo info = session->info();
    std::ostringstream os;
    os << "ok batches=" << info.batches << " commits=" << info.commits
       << " graph_edges=" << info.graph_edges
       << " sparsifier_edges=" << info.sparsifier_edges
       << " route=" << to_string(info.last_route)
       << " seconds=" << format_double(info.last_seconds)
       << " total_seconds=" << format_double(info.total_seconds);
    reply.status = os.str();
    return reply;
  }
  if (what == "quality") {
    const SessionInfo info = session->info();
    std::ostringstream os;
    os << "ok sigma2=" << format_double(info.sigma2_estimate)
       << " lambda_min=" << format_double(info.lambda_min)
       << " lambda_max=" << format_double(info.lambda_max)
       << " reached=" << (info.reached_target ? 1 : 0);
    reply.status = os.str();
    return reply;
  }
  return Reply{error_line("protocol", "unknown query '" + what +
                                          "' (edges|stats|quality|journal)"),
               {},
               false};
}

namespace {

/// One-line summary of a session for the daemon-wide `stats` listing.
std::string stats_summary_line(const Session& session) {
  const SessionInfo info = session.info();
  std::ostringstream os;
  os << "session=" << session.name() << " vertices=" << info.vertices
     << " graph_edges=" << info.graph_edges
     << " sparsifier_edges=" << info.sparsifier_edges
     << " sigma2=" << format_double(info.sigma2_estimate)
     << " reached=" << (info.reached_target ? 1 : 0)
     << " batches=" << info.batches << " commits=" << info.commits
     << " queued=" << session.queued()
     << " route=" << to_string(info.last_route)
     << " total_seconds=" << format_double(info.total_seconds);
  return os.str();
}

}  // namespace

Reply Connection::handle_stats(const std::vector<std::string>& tokens) {
  if (tokens.size() > 2) {
    return Reply{error_line("protocol", "usage: stats [<session>]"), {}, false};
  }
  Reply reply;
  if (tokens.size() == 2) {
    // Detailed key=value view of one session, including the dynamic
    // layer's per-stage breakdown of the latest batch.
    const auto session = sessions_.attach(tokens[1]);
    const SessionInfo info = session->info();
    const UpdateStats last = session->last_update();
    auto line = [&reply](const std::string& key, const std::string& value) {
      reply.payload.push_back(key + "=" + value);
    };
    line("name", session->name());
    line("vertices", std::to_string(info.vertices));
    line("graph_edges", std::to_string(info.graph_edges));
    line("sparsifier_edges", std::to_string(info.sparsifier_edges));
    line("sigma2", format_double(info.sigma2_estimate));
    line("lambda_min", format_double(info.lambda_min));
    line("lambda_max", format_double(info.lambda_max));
    line("reached", info.reached_target ? "1" : "0");
    line("batches", std::to_string(info.batches));
    line("commits", std::to_string(info.commits));
    line("queued", std::to_string(session->queued()));
    line("max_queued", std::to_string(sessions_.options().max_queued_batches));
    line("total_seconds", format_double(info.total_seconds));
    line("last.route", to_string(last.route));
    line("last.batch", std::to_string(last.batch));
    line("last.seconds", format_double(last.seconds));
    line("last.dirty_fraction", format_double(last.dirty_fraction));
    line("last.tree_swaps", std::to_string(last.tree_swaps));
    for (int s = 0; s < kNumDynamicStages; ++s) {
      line(std::string("last.stage.") +
               to_string(static_cast<DynamicStage>(s)) + ".seconds",
           format_double(last.stage_seconds[static_cast<std::size_t>(s)]));
    }
    std::ostringstream os;
    os << "ok n=" << reply.payload.size() << " session=" << session->name();
    reply.status = os.str();
    return reply;
  }
  // Daemon-wide: one summary line per open session. A session closing
  // between the listing and its info read simply drops out.
  for (const std::string& name : sessions_.names()) {
    try {
      reply.payload.push_back(stats_summary_line(*sessions_.attach(name)));
    } catch (const std::exception&) {
      // closed concurrently — skip
    }
  }
  std::ostringstream os;
  os << "ok n=" << reply.payload.size();
  reply.status = os.str();
  return reply;
}

Reply Connection::handle_metrics(const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    return Reply{error_line("protocol", "usage: metrics"), {}, false};
  }
  Reply reply;
  obs::for_each_metric([&reply](const obs::MetricEntry& e) {
    std::ostringstream os;
    switch (e.kind) {
      case obs::MetricKind::kCounter:
        os << e.name << ' ' << e.counter;
        reply.payload.push_back(os.str());
        break;
      case obs::MetricKind::kGauge:
        os << e.name << ' ' << e.gauge;
        reply.payload.push_back(os.str());
        break;
      case obs::MetricKind::kHistogram: {
        const std::string base(e.name);
        reply.payload.push_back(base + ".count " +
                                std::to_string(e.hist.count));
        reply.payload.push_back(base + ".sum " + format_double(e.hist.sum));
        reply.payload.push_back(base + ".p50 " +
                                format_double(e.hist.percentile(0.50)));
        reply.payload.push_back(base + ".p95 " +
                                format_double(e.hist.percentile(0.95)));
        reply.payload.push_back(base + ".p99 " +
                                format_double(e.hist.percentile(0.99)));
        break;
      }
    }
  });
  // Registry slot order depends on hash probing; sort for a stable wire
  // format clients can diff.
  std::sort(reply.payload.begin(), reply.payload.end());
  std::ostringstream os;
  os << "ok n=" << reply.payload.size()
     << " enabled=" << (obs::metrics_enabled() ? 1 : 0);
  reply.status = os.str();
  return reply;
}

Reply Connection::handle_snapshot(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Reply{error_line("protocol", "usage: snapshot <path>"), {}, false};
  }
  const auto session = require_session();
  session->snapshot_mtx(tokens[1]);
  const SessionInfo info = session->info();
  std::ostringstream os;
  os << "ok wrote=" << tokens[1] << " edges=" << info.sparsifier_edges;
  return Reply{os.str(), {}, false};
}

}  // namespace ssp::serve
