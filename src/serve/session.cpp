#include "serve/session.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "dynamic/journal_wire.hpp"
#include "graph/generators/community.hpp"
#include "graph/generators/lattice.hpp"
#include "graph/generators/random_graphs.hpp"
#include "graph/generators/weights.hpp"
#include "graph/mtx_io.hpp"
#include "util/assert.hpp"

namespace ssp::serve {

// ---- ServeOptions ----------------------------------------------------------

void ServeOptions::validate() const {
  dynamic.validate();
  if (max_sessions < 1) {
    throw std::invalid_argument("serve: max_sessions must be >= 1");
  }
  if (max_queued_batches < 1) {
    throw std::invalid_argument("serve: max_queued_batches must be >= 1");
  }
  if (!(drain_seconds >= 0.0)) {
    throw std::invalid_argument("serve: drain_seconds must be >= 0");
  }
}

ServeOptions& ServeOptions::with_dynamic(DynamicOptions opts) {
  opts.validate();
  dynamic = std::move(opts);
  return *this;
}

ServeOptions& ServeOptions::with_max_sessions(Index n) {
  if (n < 1) throw std::invalid_argument("serve: max_sessions must be >= 1");
  max_sessions = n;
  return *this;
}

ServeOptions& ServeOptions::with_max_queued_batches(Index n) {
  if (n < 1) {
    throw std::invalid_argument("serve: max_queued_batches must be >= 1");
  }
  max_queued_batches = n;
  return *this;
}

ServeOptions& ServeOptions::with_drain_seconds(double seconds) {
  if (!(seconds >= 0.0)) {
    throw std::invalid_argument("serve: drain_seconds must be >= 0");
  }
  drain_seconds = seconds;
  return *this;
}

// ---- Session ---------------------------------------------------------------

Session::Session(std::string name, const Graph& g, const DynamicOptions& opts,
                 Index max_queued_batches)
    : name_(std::move(name)),
      max_queued_batches_(max_queued_batches),
      dyn_(g, opts) {}

void Session::require_open_locked() const {
  if (closed_) {
    throw std::runtime_error("session '" + name_ + "' is closed");
  }
}

CommitOutcome Session::commit(const JournalBatch& batch) {
  SSP_REQUIRE(!batch.ops.empty(),
              "empty commits are no-ops and must not reach Session::commit");
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    require_open_locked();
    if (pending_ >= max_queued_batches_) {
      CommitOutcome out;
      out.accepted = false;
      out.queued = pending_;
      return out;
    }
    ++pending_;
  }
  // Balance pending_ on every exit path (success, resolve failure, close).
  struct PendingGuard {
    Session* s;
    ~PendingGuard() {
      std::lock_guard<std::mutex> lk(s->admit_mu_);
      --s->pending_;
    }
  } guard{this};

  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();  // closed while we waited for our turn
  }
  const UpdateBatch resolved = resolve_journal_batch(dyn_.graph(), batch);
  CommitOutcome out;
  out.accepted = true;
  out.stats = dyn_.apply(resolved);
  // Journal only what actually applied, in apply order: the offline
  // replay of these exact lines reproduces the sparsifier bit for bit.
  for (const JournalOp& op : batch.ops) {
    journal_.push_back(format_journal_op(op));
  }
  journal_.push_back("commit");
  ++commits_;
  return out;
}

std::vector<std::string> Session::journal_lines() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  return journal_;
}

std::vector<Edge> Session::sparsifier_edges() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  std::vector<Edge> out;
  out.reserve(dyn_.result().edges.size());
  for (const EdgeId e : dyn_.result().edges) {
    out.push_back(dyn_.graph().edge(e));
  }
  return out;
}

SessionInfo Session::info() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  SessionInfo info;
  const SparsifyResult& res = dyn_.result();
  info.vertices = dyn_.graph().num_vertices();
  info.graph_edges = dyn_.graph().num_edges();
  info.sparsifier_edges = res.num_edges();
  info.sigma2_estimate = res.sigma2_estimate;
  info.lambda_min = res.lambda_min;
  info.lambda_max = res.lambda_max;
  info.reached_target = res.reached_target;
  info.batches = dyn_.batches_applied();
  info.commits = commits_;
  for (const UpdateStats& s : dyn_.history()) info.total_seconds += s.seconds;
  const UpdateStats& last = dyn_.history().back();
  info.last_seconds = last.seconds;
  info.last_route = last.route;
  return info;
}

void Session::snapshot_mtx(const std::string& path) const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  save_graph_mtx(path, dyn_.result().extract(dyn_.graph()));
}

void Session::close() {
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    closed_ = true;
  }
  // Wait for the in-flight apply (if any); queued commits fail their
  // re-check instead of applying.
  std::lock_guard<std::mutex> lk(apply_mu_);
}

bool Session::closed() const {
  std::lock_guard<std::mutex> lk(admit_mu_);
  return closed_;
}

void Session::set_observer(DynamicObserver* observer) {
  std::lock_guard<std::mutex> lk(apply_mu_);
  dyn_.set_observer(observer);
}

// ---- Graph sources ---------------------------------------------------------

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

[[noreturn]] void spec_error(const std::string& spec, const std::string& what) {
  throw std::invalid_argument("bad gen spec '" + spec + "': " + what);
}

long long parse_spec_int(const std::string& tok, const std::string& spec) {
  if (tok.empty() ||
      !std::all_of(tok.begin(), tok.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    spec_error(spec, "'" + tok + "' is not a non-negative integer");
  }
  try {
    return std::stoll(tok);
  } catch (const std::exception&) {
    spec_error(spec, "'" + tok + "' overflows");
  }
}

/// `<nx>x<ny>` dimensions token.
std::pair<Vertex, Vertex> parse_dims(const std::string& tok,
                                     const std::string& spec) {
  const std::size_t x = tok.find('x');
  if (x == std::string::npos) {
    spec_error(spec, "expected <nx>x<ny> dimensions, got '" + tok + "'");
  }
  const auto nx = parse_spec_int(tok.substr(0, x), spec);
  const auto ny = parse_spec_int(tok.substr(x + 1), spec);
  if (nx < 2 || ny < 2) spec_error(spec, "dimensions must be >= 2");
  return {static_cast<Vertex>(nx), static_cast<Vertex>(ny)};
}

Graph graph_from_spec(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  // parts[0] == "gen" (checked by the caller).
  if (parts.size() < 3) {
    spec_error(spec, "expected gen:<family>:<params>[:<seed>]");
  }
  const std::string& family = parts[1];
  if (family == "grid2d" || family == "tri") {
    if (parts.size() > 4) spec_error(spec, "too many fields");
    const auto [nx, ny] = parse_dims(parts[2], spec);
    const std::uint64_t seed =
        parts.size() == 4
            ? static_cast<std::uint64_t>(parse_spec_int(parts[3], spec))
            : 1;
    Rng rng(seed);
    return family == "grid2d"
               ? grid_2d(nx, ny, WeightModel::log_uniform(0.1, 10.0), &rng)
               : triangulated_grid(nx, ny, WeightModel::uniform(0.5, 2.0),
                                   &rng);
  }
  if (family == "ba" || family == "planted") {
    if (parts.size() < 4 || parts.size() > 5) {
      spec_error(spec, "expected gen:" + family + ":<n>:<m|k>[:<seed>]");
    }
    const auto n = parse_spec_int(parts[2], spec);
    const auto mk = parse_spec_int(parts[3], spec);
    if (n < 4 || mk < 1) spec_error(spec, "sizes out of range");
    const std::uint64_t seed =
        parts.size() == 5
            ? static_cast<std::uint64_t>(parse_spec_int(parts[4], spec))
            : 1;
    Rng rng(seed);
    if (family == "ba") {
      return barabasi_albert(static_cast<Vertex>(n), static_cast<Vertex>(mk),
                             rng);
    }
    return planted_partition(static_cast<Vertex>(n), static_cast<Vertex>(mk),
                             0.1, 0.005, rng, WeightModel::uniform(0.5, 2.0));
  }
  spec_error(spec, "unknown family '" + family +
                       "' (grid2d|tri|ba|planted)");
}

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '_' || c == '-' || c == '.';
  });
}

}  // namespace

Graph load_session_graph(const std::string& source) {
  if (source.rfind("gen:", 0) == 0) return graph_from_spec(source);
  return load_graph_mtx(source);
}

// ---- SessionManager --------------------------------------------------------

SessionManager::SessionManager(ServeOptions opts) : opts_(std::move(opts)) {
  opts_.validate();
}

std::shared_ptr<Session> SessionManager::open(const std::string& name,
                                              const std::string& source) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!valid_session_name(name)) {
      throw std::invalid_argument(
          "invalid session name '" + name +
          "' (1-64 chars of [A-Za-z0-9_.-])");
    }
    if (static_cast<Index>(sessions_.size()) >= opts_.max_sessions) {
      throw std::runtime_error(
          "session table full (max " + std::to_string(opts_.max_sessions) +
          ")");
    }
    if (sessions_.count(name) != 0) {
      throw std::runtime_error("session '" + name + "' already exists");
    }
    sessions_[name] = nullptr;  // reserve while we build outside the lock
  }
  try {
    const Graph g = load_session_graph(source);
    auto session = std::make_shared<Session>(name, g, opts_.dynamic,
                                             opts_.max_queued_batches);
    std::lock_guard<std::mutex> lk(mu_);
    sessions_[name] = session;
    return session;
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    sessions_.erase(name);
    throw;
  }
}

std::shared_ptr<Session> SessionManager::attach(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw std::runtime_error("no session named '" + name + "'");
  }
  if (it->second == nullptr) {
    throw std::runtime_error("session '" + name + "' is still opening");
  }
  return it->second;
}

void SessionManager::close(const std::string& name) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      throw std::runtime_error("no session named '" + name + "'");
    }
    if (it->second == nullptr) {
      throw std::runtime_error("session '" + name + "' is still opening");
    }
    session = it->second;
    sessions_.erase(it);
  }
  session->close();  // blocks on the in-flight commit, outside the table lock
}

std::vector<std::string> SessionManager::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) {
    if (session != nullptr) out.push_back(name);
  }
  return out;
}

Index SessionManager::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<Index>(sessions_.size());
}

void SessionManager::close_all() {
  std::map<std::string, std::shared_ptr<Session>> taken;
  {
    std::lock_guard<std::mutex> lk(mu_);
    taken.swap(sessions_);
  }
  for (auto& [name, session] : taken) {
    if (session != nullptr) session->close();
  }
}

}  // namespace ssp::serve
