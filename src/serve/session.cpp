#include "serve/session.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>

#include "dynamic/journal_wire.hpp"
#include "graph/graph_source.hpp"
#include "graph/mtx_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/session_store.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp::serve {

// ---- ServeOptions ----------------------------------------------------------

void ServeOptions::validate() const {
  dynamic.validate();
  if (max_sessions < 1) {
    throw std::invalid_argument("serve: max_sessions must be >= 1");
  }
  if (max_queued_batches < 1) {
    throw std::invalid_argument("serve: max_queued_batches must be >= 1");
  }
  if (!(drain_seconds >= 0.0)) {
    throw std::invalid_argument("serve: drain_seconds must be >= 0");
  }
  if (checkpoint_every < 1) {
    throw std::invalid_argument("serve: checkpoint_every must be >= 1");
  }
}

ServeOptions& ServeOptions::with_dynamic(DynamicOptions opts) {
  opts.validate();
  dynamic = std::move(opts);
  return *this;
}

ServeOptions& ServeOptions::with_max_sessions(Index n) {
  if (n < 1) throw std::invalid_argument("serve: max_sessions must be >= 1");
  max_sessions = n;
  return *this;
}

ServeOptions& ServeOptions::with_max_queued_batches(Index n) {
  if (n < 1) {
    throw std::invalid_argument("serve: max_queued_batches must be >= 1");
  }
  max_queued_batches = n;
  return *this;
}

ServeOptions& ServeOptions::with_drain_seconds(double seconds) {
  if (!(seconds >= 0.0)) {
    throw std::invalid_argument("serve: drain_seconds must be >= 0");
  }
  drain_seconds = seconds;
  return *this;
}

ServeOptions& ServeOptions::with_state_dir(std::string dir) {
  state_dir = std::move(dir);
  return *this;
}

ServeOptions& ServeOptions::with_checkpoint_every(Index n) {
  if (n < 1) {
    throw std::invalid_argument("serve: checkpoint_every must be >= 1");
  }
  checkpoint_every = n;
  return *this;
}

// ---- Session ---------------------------------------------------------------

Session::Session(std::string name, const Graph& g, const DynamicOptions& opts,
                 Index max_queued_batches, SessionPersist persist)
    : name_(std::move(name)),
      max_queued_batches_(max_queued_batches),
      persist_(std::move(persist)),
      dyn_(g, opts) {}

DynamicSparsifier Session::make_restored(
    const Graph& g, const DynamicOptions& opts,
    const storage::SparsifierCheckpoint* ckpt,
    std::span<const JournalBatch> batches) {
  if (ckpt == nullptr || ckpt->commits == 0) {
    // No snapshot (or one from before any commit): cold initial build,
    // the whole journal replays through full applies in the ctor body.
    return DynamicSparsifier(g, opts);
  }
  if (ckpt->commits > batches.size()) {
    throw std::runtime_error(
        "serve: checkpoint covers " + std::to_string(ckpt->commits) +
        " commits but the journal holds only " +
        std::to_string(batches.size()));
  }
  // Fast-forward the graph (mutations only, no sparsification) to the
  // checkpointed batch, then restore the sparsifier without running it.
  Graph replayed = g;
  for (std::uint64_t b = 0; b < ckpt->commits; ++b) {
    const UpdateBatch resolved =
        resolve_journal_batch(replayed, batches[static_cast<std::size_t>(b)]);
    apply_batch_to_graph(replayed, resolved);
  }
  return DynamicSparsifier(replayed, opts, ckpt->state);
}

Session::Session(std::string name, const Graph& g, const DynamicOptions& opts,
                 Index max_queued_batches,
                 const storage::SparsifierCheckpoint* ckpt,
                 std::span<const JournalBatch> batches, SessionPersist persist)
    : name_(std::move(name)),
      max_queued_batches_(max_queued_batches),
      persist_(std::move(persist)),
      dyn_(make_restored(g, opts, ckpt, batches)) {
  // Replay the journal tail the checkpoint does not cover — these are
  // full applies (engine runs), each drawing the same per-batch seed the
  // original process drew, so the resumed state is bit-identical.
  const std::size_t start =
      ckpt == nullptr ? 0 : static_cast<std::size_t>(ckpt->commits);
  for (std::size_t b = start; b < batches.size(); ++b) {
    const UpdateBatch resolved =
        resolve_journal_batch(dyn_.graph(), batches[b]);
    dyn_.apply(resolved);
  }
  // Rebuild the in-memory journal mirror so journal_lines() and the
  // offline-replay contract are oblivious to the restart.
  for (const JournalBatch& batch : batches) {
    for (const JournalOp& op : batch.ops) {
      journal_.push_back(format_journal_op(op));
    }
    journal_.push_back("commit");
  }
  commits_ = static_cast<Index>(batches.size());
}

void Session::require_open_locked() const {
  if (closed_) {
    throw std::runtime_error("session '" + name_ + "' is closed");
  }
}

CommitOutcome Session::commit(const JournalBatch& batch) {
  SSP_REQUIRE(!batch.ops.empty(),
              "empty commits are no-ops and must not reach Session::commit");
  const WallTimer commit_timer;
  const obs::Span commit_span("serve.commit");
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    require_open_locked();
    if (pending_ >= max_queued_batches_) {
      obs::counter_add("serve.backpressure.rejections", 1);
      CommitOutcome out;
      out.accepted = false;
      out.queued = pending_;
      return out;
    }
    ++pending_;
  }
  // Balance pending_ on every exit path (success, resolve failure, close).
  struct PendingGuard {
    Session* s;
    ~PendingGuard() {
      std::lock_guard<std::mutex> lk(s->admit_mu_);
      --s->pending_;
    }
  } guard{this};

  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();  // closed while we waited for our turn
  }
  const UpdateBatch resolved = resolve_journal_batch(dyn_.graph(), batch);
  CommitOutcome out;
  out.accepted = true;
  out.stats = dyn_.apply(resolved);
  // Journal only what actually applied, in apply order: the offline
  // replay of these exact lines reproduces the sparsifier bit for bit.
  for (const JournalOp& op : batch.ops) {
    journal_.push_back(format_journal_op(op));
  }
  journal_.push_back("commit");
  ++commits_;
  if (persist_.enabled()) {
    persist_batch_locked(batch);
    if (commits_ % persist_.checkpoint_every == 0) {
      persist_checkpoint_locked();
    }
  }
  obs::counter_add("serve.commits", 1);
  const double latency_us = commit_timer.seconds() * 1e6;
  obs::histogram_observe("serve.commit.latency_us", latency_us);
  if (obs::metrics_enabled()) {
    // Per-session latency under a runtime label (names are <= 64 chars,
    // so the composed name fits the registry's fixed buffer).
    char label[96];
    std::snprintf(label, sizeof(label), "serve.session.%s.commit_us",
                  name_.c_str());
    obs::histogram_observe_named(label, latency_us);
  }
  return out;
}

void Session::persist_batch_locked(const JournalBatch& batch) {
  if (!journal_file_.is_open()) {
    journal_file_.open(persist_.journal_path, std::ios::app);
  }
  for (const JournalOp& op : batch.ops) {
    journal_file_ << format_journal_op(op) << '\n';
  }
  journal_file_ << "commit\n";
  if (!journal_file_.flush()) {
    throw std::runtime_error("serve: short write to journal '" +
                             persist_.journal_path + "'");
  }
}

void Session::persist_checkpoint_locked() {
  storage::SparsifierCheckpoint ckpt;
  ckpt.commits = static_cast<std::uint64_t>(commits_);
  ckpt.state = dyn_.restore_state();
  storage::save_checkpoint(persist_.checkpoint_path, ckpt);
}

std::vector<std::string> Session::journal_lines() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  return journal_;
}

std::vector<Edge> Session::sparsifier_edges() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  std::vector<Edge> out;
  out.reserve(dyn_.result().edges.size());
  for (const EdgeId e : dyn_.result().edges) {
    out.push_back(dyn_.graph().edge(e));
  }
  return out;
}

SessionInfo Session::info() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  SessionInfo info;
  const SparsifyResult& res = dyn_.result();
  info.vertices = dyn_.graph().num_vertices();
  info.graph_edges = dyn_.graph().num_edges();
  info.sparsifier_edges = res.num_edges();
  info.sigma2_estimate = res.sigma2_estimate;
  info.lambda_min = res.lambda_min;
  info.lambda_max = res.lambda_max;
  info.reached_target = res.reached_target;
  info.batches = dyn_.batches_applied();
  info.commits = commits_;
  for (const UpdateStats& s : dyn_.history()) info.total_seconds += s.seconds;
  const UpdateStats& last = dyn_.history().back();
  info.last_seconds = last.seconds;
  info.last_route = last.route;
  return info;
}

Index Session::queued() const {
  std::lock_guard<std::mutex> lk(admit_mu_);
  return pending_;
}

UpdateStats Session::last_update() const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  return dyn_.history().back();
}

void Session::snapshot_mtx(const std::string& path) const {
  std::lock_guard<std::mutex> lk(apply_mu_);
  {
    std::lock_guard<std::mutex> al(admit_mu_);
    require_open_locked();
  }
  save_graph_mtx(path, dyn_.result().extract(dyn_.graph()));
}

void Session::close() {
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    if (closed_) return;  // idempotent; checkpoint once
    closed_ = true;
  }
  // Wait for the in-flight apply (if any); queued commits fail their
  // re-check instead of applying.
  std::lock_guard<std::mutex> lk(apply_mu_);
  // Final checkpoint so the next start replays no journal tail at all.
  if (persist_.enabled()) persist_checkpoint_locked();
}

bool Session::closed() const {
  std::lock_guard<std::mutex> lk(admit_mu_);
  return closed_;
}

void Session::set_observer(DynamicObserver* observer) {
  std::lock_guard<std::mutex> lk(apply_mu_);
  dyn_.set_observer(observer);
}

// ---- Graph sources ---------------------------------------------------------

namespace {

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) != 0 || c == '_' || c == '-' || c == '.';
  });
}

}  // namespace

Graph load_session_graph(const std::string& source) {
  // Thin wrapper kept for the serve API: all classification (gen: specs,
  // .sspb binaries, Matrix Market) lives in graph/graph_source.hpp now.
  return load_graph_source(source);
}

// ---- SessionManager --------------------------------------------------------

SessionManager::SessionManager(ServeOptions opts) : opts_(std::move(opts)) {
  opts_.validate();
}

SessionPersist SessionManager::persist_for(const std::string& name) const {
  SessionPersist persist;
  if (!opts_.state_dir.empty()) {
    persist.journal_path = session_journal_path(opts_.state_dir, name);
    persist.checkpoint_path = session_checkpoint_path(opts_.state_dir, name);
    persist.checkpoint_every = opts_.checkpoint_every;
  }
  return persist;
}

std::shared_ptr<Session> SessionManager::open(const std::string& name,
                                              const std::string& source) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!valid_session_name(name)) {
      throw std::invalid_argument(
          "invalid session name '" + name +
          "' (1-64 chars of [A-Za-z0-9_.-])");
    }
    if (static_cast<Index>(sessions_.size()) >= opts_.max_sessions) {
      obs::counter_add("serve.admission.rejections", 1);
      throw std::runtime_error(
          "session table full (max " + std::to_string(opts_.max_sessions) +
          ")");
    }
    if (sessions_.count(name) != 0) {
      throw std::runtime_error("session '" + name + "' already exists");
    }
    sessions_[name] = nullptr;  // reserve while we build outside the lock
  }
  try {
    const Graph g = load_session_graph(source);
    SessionPersist persist = persist_for(name);
    if (persist.enabled()) {
      std::filesystem::create_directories(opts_.state_dir);
      create_session_journal(persist.journal_path, source);
    }
    auto session = std::make_shared<Session>(name, g, opts_.dynamic,
                                             opts_.max_queued_batches,
                                             std::move(persist));
    obs::counter_add("serve.sessions.opened", 1);
    std::lock_guard<std::mutex> lk(mu_);
    sessions_[name] = session;
    return session;
  } catch (...) {
    if (!opts_.state_dir.empty()) {
      // Don't leave a header-only journal that would "restore" an empty
      // session on the next start.
      std::error_code ec;
      std::filesystem::remove(session_journal_path(opts_.state_dir, name),
                              ec);
      std::filesystem::remove(
          session_checkpoint_path(opts_.state_dir, name), ec);
    }
    std::lock_guard<std::mutex> lk(mu_);
    sessions_.erase(name);
    throw;
  }
}

std::vector<std::string> SessionManager::restore_all() {
  std::vector<std::string> restored;
  if (opts_.state_dir.empty()) return restored;
  for (const std::string& name : list_stored_sessions(opts_.state_dir)) {
    if (!valid_session_name(name)) continue;  // stray file, not ours
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (sessions_.count(name) != 0) continue;  // already live
      if (static_cast<Index>(sessions_.size()) >= opts_.max_sessions) break;
      sessions_[name] = nullptr;
    }
    try {
      const SessionPersist persist = persist_for(name);
      const StoredSession stored =
          read_stored_session(persist.journal_path);
      // Cut the torn tail off the file before the session appends to it:
      // stale uncommitted ops left in place would merge into the next
      // committed batch and poison the *following* restart's replay.
      truncate_stored_session(persist.journal_path, stored);
      const Graph g = load_session_graph(stored.source);
      std::optional<storage::SparsifierCheckpoint> ckpt;
      if (std::filesystem::exists(persist.checkpoint_path)) {
        ckpt = storage::load_checkpoint(persist.checkpoint_path);
      }
      auto session = std::make_shared<Session>(
          name, g, opts_.dynamic, opts_.max_queued_batches,
          ckpt.has_value() ? &*ckpt : nullptr, stored.batches, persist);
      std::lock_guard<std::mutex> lk(mu_);
      sessions_[name] = session;
      restored.push_back(name);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      sessions_.erase(name);
      throw;
    }
  }
  return restored;
}

std::shared_ptr<Session> SessionManager::attach(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw std::runtime_error("no session named '" + name + "'");
  }
  if (it->second == nullptr) {
    throw std::runtime_error("session '" + name + "' is still opening");
  }
  return it->second;
}

void SessionManager::close(const std::string& name) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      throw std::runtime_error("no session named '" + name + "'");
    }
    if (it->second == nullptr) {
      throw std::runtime_error("session '" + name + "' is still opening");
    }
    session = it->second;
    sessions_.erase(it);
  }
  obs::counter_add("serve.sessions.closed", 1);
  session->close();  // blocks on the in-flight commit, outside the table lock
  if (!opts_.state_dir.empty()) {
    // Explicit teardown: a client-closed session must not resurrect.
    std::error_code ec;
    std::filesystem::remove(session_journal_path(opts_.state_dir, name), ec);
    std::filesystem::remove(session_checkpoint_path(opts_.state_dir, name),
                            ec);
  }
}

std::vector<std::string> SessionManager::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) {
    if (session != nullptr) out.push_back(name);
  }
  return out;
}

Index SessionManager::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<Index>(sessions_.size());
}

void SessionManager::close_all() {
  std::map<std::string, std::shared_ptr<Session>> taken;
  {
    std::lock_guard<std::mutex> lk(mu_);
    taken.swap(sessions_);
  }
  for (auto& [name, session] : taken) {
    if (session != nullptr) session->close();
  }
}

}  // namespace ssp::serve
