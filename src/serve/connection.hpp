#pragma once

/// \file connection.hpp
/// Per-client protocol state machine, socket-free so tests can drive it
/// line by line: one `Connection` holds the attached session and the ops
/// buffered since the last `commit`, and maps each request line
/// (protocol.hpp grammar) to exactly one status line plus an optional
/// payload. The socket front end (server.hpp) only frames bytes and
/// shuttles Replies back.

#include <memory>
#include <string>
#include <vector>

#include "dynamic/update_journal.hpp"
#include "serve/session.hpp"

namespace ssp::serve {

/// What one request line produced.
struct Reply {
  std::string status;                ///< `ok ...` or `err <cat>: <msg>`
  std::vector<std::string> payload;  ///< size announced as `n=<k>` in status
  bool close = false;                ///< connection should end (quit)
};

class Connection {
 public:
  explicit Connection(SessionManager& sessions) : sessions_(sessions) {}

  /// Handles one request line. Never throws: every failure becomes an
  /// `err` status (parse errors echo the 1-based request line number and
  /// offending text; backpressure and admission failures get their own
  /// categories).
  [[nodiscard]] Reply handle_line(const std::string& line);

  /// Ops buffered since the last commit (for telemetry/tests).
  [[nodiscard]] Index pending_ops() const {
    return static_cast<Index>(pending_.ops.size());
  }

  [[nodiscard]] bool attached() const { return session_ != nullptr; }

 private:
  Reply dispatch(const std::string& line,
                 const std::vector<std::string>& tokens);
  Reply handle_open(const std::vector<std::string>& tokens);
  Reply handle_attach(const std::vector<std::string>& tokens);
  Reply handle_close(const std::vector<std::string>& tokens);
  Reply handle_sessions();
  Reply handle_journal_line(const std::string& line);  ///< ops + commit
  Reply handle_query(const std::vector<std::string>& tokens);
  Reply handle_snapshot(const std::vector<std::string>& tokens);
  Reply handle_stats(const std::vector<std::string>& tokens);
  Reply handle_metrics(const std::vector<std::string>& tokens);
  [[nodiscard]] std::shared_ptr<Session> require_session() const;

  SessionManager& sessions_;
  std::shared_ptr<Session> session_;
  JournalBatch pending_;  ///< ops since the last commit
  Index line_no_ = 0;     ///< 1-based request line counter (diagnostics)
};

}  // namespace ssp::serve
