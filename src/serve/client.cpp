#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ssp::serve {

ServeClient ServeClient::connect_unix(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("connect_unix: bad socket path '" + path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("connect_unix: socket(): failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect_unix(" + path + "): " + why);
  }
  return ServeClient(fd);
}

ServeClient ServeClient::connect_tcp(int port) {
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("connect_tcp: bad port " + std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("connect_tcp: socket(): failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect_tcp(127.0.0.1:" + std::to_string(port) +
                             "): " + why);
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      framer_(std::move(other.framer_)),
      buffered_(std::move(other.buffered_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    framer_ = std::move(other.framer_);
    buffered_ = std::move(other.buffered_);
  }
  return *this;
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string ServeClient::read_line() {
  while (buffered_.empty()) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("serve client: server closed the connection");
    }
    auto lines = framer_.push(std::string_view(buf, static_cast<std::size_t>(n)));
    buffered_.insert(buffered_.end(), std::make_move_iterator(lines.begin()),
                     std::make_move_iterator(lines.end()));
  }
  std::string line = std::move(buffered_.front());
  buffered_.erase(buffered_.begin());
  return line;
}

ClientResponse ServeClient::request(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("serve client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  ClientResponse resp;
  resp.status = read_line();
  const std::size_t n_payload = payload_count(resp.status).value_or(0);
  resp.payload.reserve(n_payload);
  for (std::size_t i = 0; i < n_payload; ++i) {
    resp.payload.push_back(read_line());
  }
  return resp;
}

}  // namespace ssp::serve
