#pragma once

/// \file client.hpp
/// Minimal blocking client for the serving protocol — one request line
/// out, one status line (plus any announced payload) back. Used by the
/// `ssp_client` tool, the `bench_serve` load generator, and the serve
/// test suite; scripted clients stay in lockstep because every request
/// yields exactly one status line and `n=<k>` announces payload sizes.

#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace ssp::serve {

/// Status line + payload of one request.
struct ClientResponse {
  std::string status;
  std::vector<std::string> payload;

  [[nodiscard]] bool ok() const { return is_ok(status); }
};

class ServeClient {
 public:
  /// Connects to a unix-domain socket. Throws std::runtime_error.
  [[nodiscard]] static ServeClient connect_unix(const std::string& path);

  /// Connects to 127.0.0.1:<port>. Throws std::runtime_error.
  [[nodiscard]] static ServeClient connect_tcp(int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request line (newline appended) and reads the status line
  /// plus the payload it announces. Throws std::runtime_error when the
  /// server hangs up mid-response.
  ClientResponse request(const std::string& line);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close();

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  [[nodiscard]] std::string read_line();

  int fd_ = -1;
  LineFramer framer_;
  std::vector<std::string> buffered_;  ///< complete lines not yet consumed
};

}  // namespace ssp::serve
