#include "serve/session_store.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ssp::serve {

namespace {

constexpr const char* kJournalExt = ".journal";
constexpr const char* kCheckpointExt = ".sspc";
constexpr const char* kSourcePrefix = "% source ";

}  // namespace

std::string session_journal_path(const std::string& state_dir,
                                 const std::string& name) {
  return (std::filesystem::path(state_dir) / (name + kJournalExt)).string();
}

std::string session_checkpoint_path(const std::string& state_dir,
                                    const std::string& name) {
  return (std::filesystem::path(state_dir) / (name + kCheckpointExt))
      .string();
}

void create_session_journal(const std::string& path,
                            const std::string& source) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("serve: cannot create journal '" + path + "'");
  }
  out << "% ssp-serve session journal v1\n";
  out << kSourcePrefix << source << "\n";
  if (!out.flush()) {
    throw std::runtime_error("serve: short write to journal '" + path + "'");
  }
}

StoredSession read_stored_session(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serve: cannot open journal '" + path + "'");
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string data = raw.str();

  StoredSession stored;
  // Walk the bytes tracking where the committed prefix ends: the header
  // comment lines, then everything up to (and including) the last
  // newline-terminated `commit` line. Anything past that point — ops of
  // a batch the dying process never finished appending, or a `commit`
  // whose own newline never hit the disk — is a torn tail: it is neither
  // replayed nor kept (truncate_stored_session cuts the file at
  // `committed_bytes` so later appends cannot merge into it).
  bool in_header = true;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated fragment: torn
    const std::string line = data.substr(pos, nl - pos);
    pos = nl + 1;
    if (in_header && !line.empty() && line[0] == '%') {
      if (stored.source.empty() && line.rfind(kSourcePrefix, 0) == 0) {
        stored.source = line.substr(std::string(kSourcePrefix).size());
      }
      stored.committed_bytes = pos;
      continue;
    }
    in_header = false;
    if (line == "commit") stored.committed_bytes = pos;
  }
  if (stored.source.empty()) {
    throw std::runtime_error("serve: journal '" + path +
                             "' has no '% source <graph>' header line");
  }
  // Parse exactly the committed prefix (its `%` header lines are comment
  // grammar to the journal parser).
  std::istringstream replay(
      data.substr(0, static_cast<std::size_t>(stored.committed_bytes)));
  stored.batches = parse_update_journal(replay);
  return stored;
}

void truncate_stored_session(const std::string& path,
                             const StoredSession& stored) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("serve: cannot stat journal '" + path +
                             "': " + ec.message());
  }
  if (size <= stored.committed_bytes) return;  // clean shutdown: no tail
  std::filesystem::resize_file(path, stored.committed_bytes, ec);
  if (ec) {
    throw std::runtime_error("serve: cannot truncate torn tail of journal '" +
                             path + "': " + ec.message());
  }
}

std::vector<std::string> list_stored_sessions(const std::string& state_dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(state_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() == kJournalExt) names.push_back(p.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ssp::serve
