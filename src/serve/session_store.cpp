#include "serve/session_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ssp::serve {

namespace {

constexpr const char* kJournalExt = ".journal";
constexpr const char* kCheckpointExt = ".sspc";
constexpr const char* kSourcePrefix = "% source ";

}  // namespace

std::string session_journal_path(const std::string& state_dir,
                                 const std::string& name) {
  return (std::filesystem::path(state_dir) / (name + kJournalExt)).string();
}

std::string session_checkpoint_path(const std::string& state_dir,
                                    const std::string& name) {
  return (std::filesystem::path(state_dir) / (name + kCheckpointExt))
      .string();
}

void create_session_journal(const std::string& path,
                            const std::string& source) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("serve: cannot create journal '" + path + "'");
  }
  out << "% ssp-serve session journal v1\n";
  out << kSourcePrefix << source << "\n";
  if (!out.flush()) {
    throw std::runtime_error("serve: short write to journal '" + path + "'");
  }
}

StoredSession read_stored_session(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("serve: cannot open journal '" + path + "'");
  }
  StoredSession stored;
  // Pass 1: pull the source header and keep only lines up to the last
  // `commit` — anything after it is a batch the dying process never
  // applied (torn append), so replaying it would overshoot.
  std::vector<std::string> lines;
  std::string line;
  std::size_t last_commit_end = 0;
  bool have_source = false;
  while (std::getline(in, line)) {
    if (!have_source && line.rfind(kSourcePrefix, 0) == 0) {
      stored.source = line.substr(std::string(kSourcePrefix).size());
      have_source = true;
      continue;
    }
    lines.push_back(line);
    if (line == "commit") last_commit_end = lines.size();
  }
  if (!have_source || stored.source.empty()) {
    throw std::runtime_error("serve: journal '" + path +
                             "' has no '% source <graph>' header line");
  }
  lines.resize(last_commit_end);
  std::ostringstream committed;
  for (const std::string& l : lines) committed << l << '\n';
  std::istringstream replay(committed.str());
  stored.batches = parse_update_journal(replay);
  return stored;
}

std::vector<std::string> list_stored_sessions(const std::string& state_dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(state_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() == kJournalExt) names.push_back(p.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ssp::serve
