#pragma once

/// \file server.hpp
/// Socket front end of the sparsification service: accepts concurrent
/// clients on a unix-domain socket (default) or a loopback TCP port, runs
/// one protocol `Connection` per client on its own thread, and drains
/// gracefully on stop — in-flight commits finish and their responses are
/// written before connections close. The compute itself fans out across
/// the process-wide `ssp::ThreadPool` from whichever client thread
/// commits (the engine's own parallelism contract), so the daemon adds no
/// second pool.
///
/// `request_stop()` only stores an atomic flag — safe to call from a
/// SIGINT/SIGTERM handler — and every loop polls it; `wait()` then joins
/// the acceptor and client threads, force-closing connections that are
/// still idle after `ServeOptions::drain_seconds`.

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace ssp::serve {

/// Transport + service configuration of one server instance.
struct ServerConfig {
  /// Unix-domain socket path (the default transport). Created on start,
  /// unlinked on stop. Must fit sockaddr_un (~100 bytes).
  std::string socket_path = "ssp_serve.sock";
  /// TCP mode: >= 0 binds 127.0.0.1:<port> instead of the unix socket
  /// (0 picks an ephemeral port, see Server::tcp_port()); -1 = unix.
  int tcp_port = -1;
  /// Admission control: connections beyond this are refused with an
  /// `err limit` line.
  int max_clients = 64;
  /// Oversized-line rejection threshold for client traffic.
  std::size_t max_line_bytes = LineFramer::kDefaultMaxLine;
  /// Session/engine configuration.
  ServeOptions serve;

  /// Throws std::invalid_argument on the first violated constraint
  /// (including serve.validate()).
  void validate() const;
};

class Server {
 public:
  explicit Server(ServerConfig config);

  /// Stops and joins if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor thread. Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();

  /// Requests shutdown. Only stores an atomic flag; safe from signal
  /// handlers. Idempotent.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// True between start() and the end of wait().
  [[nodiscard]] bool running() const { return running_; }

  /// Blocks until the server has stopped (someone must call
  /// request_stop() — e.g. a signal handler), drains client threads, and
  /// closes every session.
  void wait();

  /// The bound TCP port (TCP mode; meaningful after start() — resolves
  /// ephemeral port 0).
  [[nodiscard]] int tcp_port() const { return bound_port_; }

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }

  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// The session table (tests drive admission directly through this).
  [[nodiscard]] SessionManager& sessions() { return sessions_; }

 private:
  struct ClientSlot {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void client_loop(ClientSlot* slot);
  void reap_finished_locked();

  ServerConfig config_;
  SessionManager sessions_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::thread acceptor_;
  std::mutex clients_mu_;
  std::list<ClientSlot> clients_;
};

}  // namespace ssp::serve
