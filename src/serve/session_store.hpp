#pragma once

/// \file session_store.hpp
/// On-disk layout of persisted serving sessions. With a state directory
/// configured (`ServeOptions::state_dir`), each session `<name>` owns:
///
///   * `<name>.journal` — the committed op journal as plain text: a
///     comment header carrying the graph source, then exactly the lines
///     `Session::journal_lines()` reports. Because the header lines are
///     `%` comments, the file doubles as a valid `ssp_sparsify
///     --update-file` input — the offline replay story and the restart
///     story are the same file.
///   * `<name>.sspc` — the latest sparsifier checkpoint
///     (storage/checkpoint.hpp), written every `checkpoint_every`
///     commits and on graceful close.
///
/// Restart: `read_stored_session` parses the header and the batches
/// **up to the last newline-terminated `commit` line** — a batch torn by
/// a crash mid-append is ignored, matching what the dying process
/// durably journaled. The session manager then calls
/// `truncate_stored_session` to cut the torn tail off the file itself
/// (otherwise the restored session's appends would merge into the stale
/// ops on the next restart), fast-forwards the graph to the checkpoint
/// (`apply_batch_to_graph`), restores the sparsifier without re-running
/// it, and replays only the journal tail through full applies.

#include <cstdint>
#include <string>
#include <vector>

#include "dynamic/update_journal.hpp"

namespace ssp::serve {

/// `<dir>/<name>.journal`.
[[nodiscard]] std::string session_journal_path(const std::string& state_dir,
                                               const std::string& name);

/// `<dir>/<name>.sspc`.
[[nodiscard]] std::string session_checkpoint_path(const std::string& state_dir,
                                                  const std::string& name);

/// Creates (truncating) a journal file holding only the comment header:
/// the format tag and the session's graph source. Throws
/// std::runtime_error on I/O failure.
void create_session_journal(const std::string& path,
                            const std::string& source);

/// A parsed on-disk session journal.
struct StoredSession {
  std::string source;  ///< graph source from the `% source` header line
  /// Committed batches, in order. Trailing ops past the last
  /// newline-terminated `commit` line (a torn append) are dropped, not
  /// replayed.
  std::vector<JournalBatch> batches;
  /// Byte length of the committed prefix: the header plus every line up
  /// to and including the last durable `commit`. Bytes past this offset
  /// are the torn tail.
  std::uint64_t committed_bytes = 0;
};

/// Reads and parses `<path>`. Throws std::runtime_error when the file
/// cannot be opened or carries no `% source` header, JournalParseError
/// on malformed committed lines.
[[nodiscard]] StoredSession read_stored_session(const std::string& path);

/// Truncates `<path>` to `stored.committed_bytes`, discarding the torn
/// tail a crash left behind — must run before the restored session
/// appends, or the stale ops would merge into its next committed batch
/// and the following restart would replay state the live session never
/// held. No-op when the journal ends exactly at a commit. Throws
/// std::runtime_error on I/O failure.
void truncate_stored_session(const std::string& path,
                             const StoredSession& stored);

/// Session names with a `<name>.journal` file in `state_dir`, sorted.
/// A missing or unreadable directory yields an empty list (first boot).
[[nodiscard]] std::vector<std::string> list_stored_sessions(
    const std::string& state_dir);

}  // namespace ssp::serve
