#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "serve/connection.hpp"
#include "serve/protocol.hpp"

namespace ssp::serve {

namespace {

/// Writes all of `data`, suppressing SIGPIPE; false when the peer is gone.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render(const Reply& reply) {
  std::string out = reply.status;
  out += '\n';
  for (const std::string& line : reply.payload) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

void ServerConfig::validate() const {
  serve.validate();
  if (tcp_port > 65535) {
    throw std::invalid_argument("serve: tcp port must be in [0, 65535]");
  }
  if (tcp_port < 0) {
    if (socket_path.empty()) {
      throw std::invalid_argument("serve: unix socket path must be non-empty");
    }
    if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::invalid_argument("serve: unix socket path too long (max " +
                                  std::to_string(sizeof(sockaddr_un{}.sun_path) -
                                                 1) +
                                  " bytes)");
    }
  }
  if (max_clients < 1) {
    throw std::invalid_argument("serve: max_clients must be >= 1");
  }
  if (max_line_bytes < 16) {
    throw std::invalid_argument("serve: max_line_bytes must be >= 16");
  }
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), sessions_(config_.serve) {
  config_.validate();
}

Server::~Server() {
  request_stop();
  if (running_) wait();
}

void Server::start() {
  if (running_) throw std::runtime_error("server already started");
  stop_.store(false, std::memory_order_relaxed);

  // Warm-restore persisted sessions before accepting any traffic, so the
  // first client sees every pre-restart session already open (restores
  // replay journal tails, which can take engine time — better spent here
  // than racing early commits).
  sessions_.restore_all();

  if (config_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket(): failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("bind(127.0.0.1:" +
                               std::to_string(config_.tcp_port) +
                               "): " + std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = static_cast<int>(ntohs(addr.sin_port));
  } else {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket(): failed");
    ::unlink(config_.socket_path.c_str());  // stale socket from a crash
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("bind(" + config_.socket_path +
                               "): " + std::strerror(errno));
    }
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(): failed");
  }
  running_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::reap_finished_locked() {
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      ::close(it->fd);
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, 100);
    {
      std::lock_guard<std::mutex> lk(clients_mu_);
      reap_finished_locked();
    }
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(clients_mu_);
    if (static_cast<int>(clients_.size()) >= config_.max_clients) {
      write_all(fd, error_line("limit",
                               "server at max clients (" +
                                   std::to_string(config_.max_clients) + ")") +
                        "\n");
      ::close(fd);
      continue;
    }
    clients_.emplace_back();
    ClientSlot* slot = &clients_.back();
    slot->fd = fd;
    slot->thread = std::thread([this, slot] { client_loop(slot); });
  }
}

void Server::client_loop(ClientSlot* slot) {
  Connection conn(sessions_);
  LineFramer framer(config_.max_line_bytes);
  char buf[4096];
  bool open = true;
  while (open && !stop_.load(std::memory_order_relaxed)) {
    pollfd p{slot->fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(slot->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed (or error)
    std::vector<std::string> lines;
    try {
      lines = framer.push(std::string_view(buf, static_cast<std::size_t>(n)));
    } catch (const FramingError& e) {
      write_all(slot->fd, error_line("framing", e.what()) + "\n");
      break;  // cannot resynchronize mid-line — drop the connection
    }
    for (const std::string& line : lines) {
      const Reply reply = conn.handle_line(line);
      if (!write_all(slot->fd, render(reply))) {
        open = false;
        break;
      }
      if (reply.close) {
        open = false;
        break;
      }
    }
  }
  ::shutdown(slot->fd, SHUT_RDWR);
  slot->done.store(true, std::memory_order_release);
}

void Server::wait() {
  if (!running_) return;
  // Wait for request_stop() — the acceptor exits on the same flag.
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Graceful drain: client threads notice stop_ within one poll tick once
  // their in-flight request (commit included) finishes writing.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(
                            config_.serve.drain_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lk(clients_mu_);
      for (const ClientSlot& slot : clients_) {
        all_done = all_done && slot.done.load(std::memory_order_acquire);
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    // Force-close stragglers: shutdown() unblocks their socket reads; the
    // join below still waits for a commit that is mid-apply.
    std::lock_guard<std::mutex> lk(clients_mu_);
    for (ClientSlot& slot : clients_) {
      if (!slot.done.load(std::memory_order_acquire)) {
        ::shutdown(slot.fd, SHUT_RDWR);
      }
    }
    for (ClientSlot& slot : clients_) {
      slot.thread.join();
      ::close(slot.fd);
    }
    clients_.clear();
  }
  sessions_.close_all();
  if (config_.tcp_port < 0) ::unlink(config_.socket_path.c_str());
  running_ = false;
}

}  // namespace ssp::serve
