#include "serve/protocol.hpp"

#include <sstream>

#include "dynamic/journal_wire.hpp"

namespace ssp::serve {

std::vector<std::string> LineFramer::push(std::string_view data) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t nl = data.find('\n', start);
    if (nl == std::string_view::npos) {
      partial_.append(data.substr(start));
      break;
    }
    partial_.append(data.substr(start, nl - start));
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    if (partial_.size() > max_line_) {
      partial_.clear();
      throw FramingError("line exceeds the framing limit");
    }
    lines.push_back(std::move(partial_));
    partial_.clear();
    start = nl + 1;
  }
  if (partial_.size() > max_line_) {
    partial_.clear();
    throw FramingError("line exceeds the framing limit");
  }
  return lines;
}

std::string error_line(const std::string& category,
                       const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "err " + category + ": " + flat;
}

bool is_ok(const std::string& status) {
  return status == "ok" || status.rfind("ok ", 0) == 0;
}

std::optional<std::size_t> payload_count(const std::string& status) {
  for (const std::string& tok : tokenize_journal_line(status)) {
    if (tok.rfind("n=", 0) == 0) {
      std::istringstream is(tok.substr(2));
      std::size_t n = 0;
      if (is >> n) return n;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace ssp::serve
