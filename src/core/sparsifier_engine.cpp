#include "core/sparsifier_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/edge_filter.hpp"
#include "core/eigen_estimate.hpp"
#include "core/stretch.hpp"
#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tree/akpw.hpp"
#include "tree/dijkstra_tree.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

Sparsifier::Sparsifier(const Graph& g, SparsifyOptions opts)
    : g_(&g), opts_(std::move(opts)), rng_(opts_.seed) {
  opts_.validate();
  SSP_REQUIRE(g.finalized(), "sparsify: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "sparsify: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "sparsify: graph must be connected");
  const WallTimer timer;
  // Localized estimation never applies L_G: the stretch heats and bounds
  // come straight off the backbone, so the Laplacian build is skipped.
  if (opts_.estimation == EstimationMode::kPower) lg_ = laplacian(g);
  elapsed_seconds_ = timer.seconds();
}

Sparsifier::Sparsifier(const Graph& g, const SpanningTree& backbone,
                       SparsifyOptions opts)
    : g_(&g), opts_(std::move(opts)), external_backbone_(&backbone),
      rng_(opts_.seed) {
  opts_.validate();
  SSP_REQUIRE(&backbone.graph() == &g,
              "densify: backbone built on another graph");
  SSP_REQUIRE(g.finalized(), "sparsify: graph must be finalized");
  const WallTimer timer;
  if (opts_.estimation == EstimationMode::kPower) lg_ = laplacian(g);
  elapsed_seconds_ = timer.seconds();
}

void Sparsifier::ensure_backbone() {
  if (backbone_ != nullptr) return;
  const WallTimer timer;
  if (external_backbone_ != nullptr) {
    bind_backbone(*external_backbone_);
  } else {
    Rng tree_rng(opts_.seed ^ 0x5eed5eedULL);
    switch (opts_.backbone) {
      case BackboneKind::kMaxWeight:
        owned_backbone_ = max_weight_spanning_tree(*g_);
        break;
      case BackboneKind::kShortestPath:
        owned_backbone_ = shortest_path_tree_from_center(*g_);
        break;
      case BackboneKind::kAkpw:
        owned_backbone_ = akpw_low_stretch_tree(*g_, tree_rng);
        break;
    }
    bind_backbone(*owned_backbone_);
  }
  notify_stage(StageKind::kBackbone, timer.seconds());
}

void Sparsifier::bind_backbone(const SpanningTree& backbone) {
  backbone_ = &backbone;
  // Localized mode runs no inner solves, so the tree solver/preconditioner
  // pair (an O(n) build each) is never materialized.
  if (opts_.estimation == EstimationMode::kPower) {
    tree_solver_.emplace(backbone);
    tree_precond_.emplace(backbone);
  }
  result_.tree_edges.assign(backbone.tree_edge_ids().begin(),
                            backbone.tree_edge_ids().end());
  result_.edges = result_.tree_edges;
  in_p_.assign(static_cast<std::size_t>(g_->num_edges()), 0);
  for (EdgeId e : result_.edges) in_p_[static_cast<std::size_t>(e)] = 1;
}

LinOp Sparsifier::make_solver(double* setup_seconds, PanelOp* panel) {
  const WallTimer timer;
  LinOp solve_p;
  const bool tree_only = static_cast<EdgeId>(result_.edges.size()) ==
                         static_cast<EdgeId>(g_->num_vertices()) - 1;
  if (tree_only) {
    // The backbone tree solver doubles as the PCG preconditioner of every
    // later sparsifier (the tree stays a subgraph of P).
    solve_p = make_tree_solver_op(*tree_solver_);
    if (panel != nullptr) {
      *panel = make_tree_solver_panel_op(*tree_solver_);
    }
  } else {
    lp_ = laplacian(g_->edge_subgraph(result_.edges));
    if (opts_.inner_solver == InnerSolverKind::kAmg) {
      amg_ = AmgHierarchy::build(lp_);
      solve_p = make_amg_op(amg_, opts_.solver_tolerance, 200);
    } else {
      solve_p = make_pcg_op(lp_, *tree_precond_,
                            {.max_iterations = 500,
                             .rel_tolerance = opts_.solver_tolerance,
                             .project_constants = true});
    }
  }
  if (setup_seconds != nullptr) *setup_seconds = timer.seconds();
  return solve_p;
}

namespace {

// Indexed by StageKind; keep in sync with the enum in the header.
constexpr const char* kStageSpanName[kNumStageKinds] = {
    "engine.backbone",  "engine.solver-setup", "engine.spectral-estimate",
    "engine.embedding", "engine.filtering",    "engine.final-estimate"};
constexpr obs::MetricId kStageNsMetric[kNumStageKinds] = {
    "engine.stage.backbone.ns",          "engine.stage.solver-setup.ns",
    "engine.stage.spectral-estimate.ns", "engine.stage.embedding.ns",
    "engine.stage.filtering.ns",         "engine.stage.final-estimate.ns"};
constexpr obs::MetricId kStageCallsMetric[kNumStageKinds] = {
    "engine.stage.backbone.calls",          "engine.stage.solver-setup.calls",
    "engine.stage.spectral-estimate.calls", "engine.stage.embedding.calls",
    "engine.stage.filtering.calls",         "engine.stage.final-estimate.calls"};

}  // namespace

bool Sparsifier::finish_round(DensifyRound& stats, double seconds) {
  stats.seconds = seconds;
  obs::counter_add("engine.rounds", 1);
  obs::counter_add("engine.filter.edges_added",
                   static_cast<std::uint64_t>(stats.edges_added));
  result_.rounds.push_back(stats);
  ++next_round_;
  return observer_ == nullptr || observer_->on_round(stats);
}

void Sparsifier::notify_stage(StageKind stage, double seconds) {
  // Telemetry only: nothing below feeds back into the computation, so
  // output stays bit-identical with observability on or off.
  const auto idx = static_cast<int>(stage);
  obs::counter_add(kStageNsMetric[idx],
                   static_cast<std::uint64_t>(seconds * 1e9));
  obs::counter_add(kStageCallsMetric[idx], 1);
  obs::TraceScope span(kStageSpanName[idx], seconds);
  if (observer_ != nullptr) observer_->on_stage(stage, seconds);
}

StepStatus Sparsifier::step() {
  if (done_) return status_;
  const WallTimer timer;
  status_ = step_impl();
  elapsed_seconds_ += timer.seconds();
  result_.total_seconds = elapsed_seconds_;
  return status_;
}

void Sparsifier::ensure_stretch() {
  if (stretch_ready_) return;
  SSP_ASSERT(backbone_ != nullptr, "ensure_stretch: backbone not bound");
  const EdgeId m = g_->num_edges();
  heat_stats_ = {};
  if (stretch_warm_pending_) {
    SSP_ASSERT(stretch_cache_.size() == static_cast<std::size_t>(m) &&
                   stretch_dirty_.size() == static_cast<std::size_t>(m),
               "ensure_stretch: warm cache size mismatch");
    for (EdgeId e = 0; e < m; ++e) {
      if (backbone_->contains(e)) continue;
      if (stretch_dirty_[static_cast<std::size_t>(e)] != 0) {
        stretch_cache_[static_cast<std::size_t>(e)] =
            edge_stretch(*backbone_, e);
        ++heat_stats_.recomputed;
      } else {
        ++heat_stats_.reused;
      }
    }
    stretch_warm_pending_ = false;
  } else {
    stretch_cache_.assign(static_cast<std::size_t>(m), 0.0);
    for (EdgeId e = 0; e < m; ++e) {
      if (backbone_->contains(e)) continue;
      stretch_cache_[static_cast<std::size_t>(e)] =
          edge_stretch(*backbone_, e);
      ++heat_stats_.recomputed;
    }
  }
  obs::counter_add("engine.heats.reused",
                   static_cast<std::uint64_t>(heat_stats_.reused));
  obs::counter_add("engine.heats.recomputed",
                   static_cast<std::uint64_t>(heat_stats_.recomputed));
  stretch_ready_ = true;
}

StepStatus Sparsifier::step_impl_localized() {
  ensure_backbone();
  const WallTimer round_timer;
  DensifyRound stats;
  stats.round = next_round_;

  // --- Heat (re)build + off-tree embedding assembly. The cache either
  // comes out of ensure_stretch() cold (full canonical sweep) or patched
  // (warm rebind: dirty ids only); the assembled embedding is bitwise the
  // same either way — the localized kEmbedding stage. ---
  WallTimer stage_timer;
  ensure_stretch();
  const EdgeId m = g_->num_edges();
  emb_.offtree_edges.clear();
  emb_.heat.clear();
  emb_.heat_max = 0.0;
  emb_.total_heat = 0.0;
  emb_.power_steps = 0;
  emb_.num_vectors = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (in_p_[static_cast<std::size_t>(e)] != 0) continue;
    const double h = stretch_cache_[static_cast<std::size_t>(e)];
    emb_.offtree_edges.push_back(e);
    emb_.heat.push_back(h);
    emb_.total_heat += h;
    if (h > emb_.heat_max) emb_.heat_max = h;
  }
  notify_stage(StageKind::kEmbedding, stage_timer.seconds());

  // --- Spectral bounds from the remaining stretch. For a subgraph
  // sparsifier λ_min(L_P⁺L_G) = 1 exactly, and splitting each remaining
  // off-tree edge against its own tree path gives
  // L_G ≼ (1 + max remaining stretch) · L_P, so σ̂² = 1 + heat_max is a
  // true upper bound on the relative condition number — no solves, no
  // probes, no Rng. ---
  stage_timer.reset();
  stats.lambda_min = 1.0;
  stats.lambda_max = 1.0 + emb_.heat_max;
  stats.sigma2_estimate = stats.lambda_max;
  notify_stage(StageKind::kSpectralEstimate, stage_timer.seconds());

  result_.lambda_min = stats.lambda_min;
  result_.lambda_max = stats.lambda_max;
  result_.sigma2_estimate = stats.sigma2_estimate;

  if (stats.sigma2_estimate <= opts_.sigma2 || emb_.offtree_edges.empty()) {
    result_.reached_target = stats.sigma2_estimate <= opts_.sigma2;
    finish_round(stats, round_timer.seconds());
    done_ = true;
    return result_.reached_target ? StepStatus::kConverged
                                  : StepStatus::kExhausted;
  }

  // --- Rank and filter. An edge keeps σ̂² above the target exactly when
  // its stretch exceeds σ² − 1, so that cut — normalized by heat_max for
  // the filter's relative-threshold convention — is θ. The adaptive
  // "small portions" cap and the dissimilarity policy are shared with the
  // power path verbatim. ---
  stage_timer.reset();
  stats.theta = std::clamp((opts_.sigma2 - 1.0) / emb_.heat_max, 0.0, 1.0);
  const EdgeId cap_per_round = [&] {
    if (opts_.max_edges_per_round > 0) return opts_.max_edges_per_round;
    const double gap = stats.sigma2_estimate / opts_.sigma2;
    const Index divisor =
        gap > 1000.0 ? 4 : (gap > 100.0 ? 8 : (gap > 3.0 ? 16 : 24));
    return std::max<EdgeId>(
        64, static_cast<EdgeId>(g_->num_vertices()) / divisor);
  }();
  const FilterOptions fopts = {.similarity = opts_.similarity,
                               .node_cap = opts_.node_cap,
                               .max_edges = cap_per_round};
  std::vector<EdgeId> picked =
      filter_offtree_edges(*g_, emb_, stats.theta, fopts);
  if (picked.empty()) {
    picked = filter_offtree_edges(
        *g_, emb_, 0.0,
        {.similarity = opts_.similarity,
         .node_cap = opts_.node_cap,
         .max_edges = std::min<EdgeId>(cap_per_round, 16)});
  }
  notify_stage(StageKind::kFiltering, stage_timer.seconds());
  if (picked.empty()) {  // unreachable: the hottest edge always passes
    finish_round(stats, round_timer.seconds());
    done_ = true;
    return StepStatus::kExhausted;
  }
  for (EdgeId e : picked) {
    in_p_[static_cast<std::size_t>(e)] = 1;
    result_.edges.push_back(e);
  }
  stats.edges_added = static_cast<EdgeId>(picked.size());
  ++rounds_this_phase_;

  const bool keep_going = finish_round(stats, round_timer.seconds());
  if (rounds_this_phase_ >= opts_.max_rounds) {
    final_estimate();
    done_ = true;
    return result_.reached_target ? StepStatus::kConverged
                                  : StepStatus::kRoundLimit;
  }
  if (!keep_going) {
    done_ = true;
    return StepStatus::kCancelled;
  }
  return StepStatus::kAdvanced;
}

StepStatus Sparsifier::step_impl() {
  if (opts_.estimation == EstimationMode::kLocalized) {
    return step_impl_localized();
  }
  ensure_backbone();
  const WallTimer round_timer;
  DensifyRound stats;
  stats.round = next_round_;

  // --- Step 1 (§3.7): update L_P and its solver. ---
  double setup_seconds = 0.0;
  PanelOp solve_p_panel;
  const LinOp solve_p = make_solver(&setup_seconds, &solve_p_panel);
  notify_stage(StageKind::kSolverSetup, setup_seconds);

  // --- Step 2: estimate the spectral similarity. ---
  WallTimer stage_timer;
  stats.lambda_min = estimate_lambda_min_node_coloring(*g_, in_p_);
  stats.lambda_max = estimate_lambda_max_power(lg_, solve_p, rng_,
                                               opts_.lambda_max_iterations);
  // Guard against solver noise: the pencil spectrum is >= 1 for
  // subgraph sparsifiers.
  stats.lambda_max = std::max(stats.lambda_max, 1.0);
  stats.lambda_min = std::clamp(stats.lambda_min, 1.0, stats.lambda_max);
  stats.sigma2_estimate = stats.lambda_max / stats.lambda_min;
  notify_stage(StageKind::kSpectralEstimate, stage_timer.seconds());

  result_.lambda_min = stats.lambda_min;
  result_.lambda_max = stats.lambda_max;
  result_.sigma2_estimate = stats.sigma2_estimate;

  // --- Step 3: stop when similar enough (or nothing left to add). ---
  if (stats.sigma2_estimate <= opts_.sigma2 ||
      static_cast<EdgeId>(result_.edges.size()) == g_->num_edges()) {
    result_.reached_target = stats.sigma2_estimate <= opts_.sigma2;
    finish_round(stats, round_timer.seconds());
    done_ = true;
    return result_.reached_target ? StepStatus::kConverged
                                  : StepStatus::kExhausted;
  }

  // --- Step 4: spectral embedding of off-tree edges. ---
  stage_timer.reset();
  compute_offtree_heat(*g_, lg_, in_p_, solve_p,
                       {.power_steps = opts_.power_steps,
                        .num_vectors = opts_.num_vectors,
                        .threads = opts_.threads},
                       rng_, emb_ws_, emb_, solve_p_panel);
  notify_stage(StageKind::kEmbedding, stage_timer.seconds());
  obs::counter_add("engine.embedding.vectors",
                   static_cast<std::uint64_t>(opts_.num_vectors));

  // --- Step 5: rank and filter by normalized Joule heat (Eq. 15). ---
  stage_timer.reset();
  stats.theta = heat_threshold(opts_.sigma2, stats.lambda_min,
                               stats.lambda_max, opts_.power_steps);

  // --- Step 6: add only dissimilar filtered edges. ---
  // Adaptive "small portions" (§3.7): while far from the target, add up to
  // n/4 edges per round; once within 8x of the target, shrink the batch to
  // n/16 so the final density is not overshot. A user-provided cap wins.
  const EdgeId cap_per_round = [&] {
    if (opts_.max_edges_per_round > 0) return opts_.max_edges_per_round;
    // Batch size tracks the remaining multiplicative gap to the target:
    // large batches while far away (few expensive re-embedding rounds),
    // small ones near the target (no density overshoot).
    const double gap = stats.sigma2_estimate / opts_.sigma2;
    const Index divisor =
        gap > 1000.0 ? 4 : (gap > 100.0 ? 8 : (gap > 3.0 ? 16 : 24));
    return std::max<EdgeId>(
        64, static_cast<EdgeId>(g_->num_vertices()) / divisor);
  }();
  const FilterOptions fopts = {.similarity = opts_.similarity,
                               .node_cap = opts_.node_cap,
                               .max_edges = cap_per_round};
  std::vector<EdgeId> picked =
      filter_offtree_edges(*g_, emb_, stats.theta, fopts);
  if (picked.empty()) {
    // The threshold filtered everything although the target is unmet
    // (estimator noise). Force progress with the hottest edges.
    picked = filter_offtree_edges(
        *g_, emb_, 0.0,
        {.similarity = opts_.similarity,
         .node_cap = opts_.node_cap,
         .max_edges = std::min<EdgeId>(cap_per_round, 16)});
  }
  notify_stage(StageKind::kFiltering, stage_timer.seconds());
  if (picked.empty()) {  // no off-tree edges remain
    finish_round(stats, round_timer.seconds());
    done_ = true;
    return StepStatus::kExhausted;
  }
  for (EdgeId e : picked) {
    in_p_[static_cast<std::size_t>(e)] = 1;
    result_.edges.push_back(e);
  }
  stats.edges_added = static_cast<EdgeId>(picked.size());
  ++rounds_this_phase_;

  const bool keep_going = finish_round(stats, round_timer.seconds());
  if (rounds_this_phase_ >= opts_.max_rounds) {
    // Round budget exhausted right after an add: refresh the final
    // estimate so the reported σ² reflects the sparsifier actually
    // returned. This round terminates the run regardless, so the
    // observer's cancellation verdict is ignored (per the StageObserver
    // contract).
    final_estimate();
    done_ = true;
    return result_.reached_target ? StepStatus::kConverged
                                  : StepStatus::kRoundLimit;
  }
  if (!keep_going) {
    // Observer cancellation: keep the edges accepted so far; the reported
    // estimates reflect the state before this round's additions.
    done_ = true;
    return StepStatus::kCancelled;
  }
  return StepStatus::kAdvanced;
}

void Sparsifier::final_estimate_localized() {
  const WallTimer timer;
  ensure_stretch();
  double max_remaining = 0.0;
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    if (in_p_[static_cast<std::size_t>(e)] != 0) continue;
    max_remaining =
        std::max(max_remaining, stretch_cache_[static_cast<std::size_t>(e)]);
  }
  result_.lambda_min = 1.0;
  result_.lambda_max = 1.0 + max_remaining;
  result_.sigma2_estimate = result_.lambda_max;
  result_.reached_target = result_.sigma2_estimate <= opts_.sigma2;
  notify_stage(StageKind::kFinalEstimate, timer.seconds());
}

void Sparsifier::final_estimate() {
  if (opts_.estimation == EstimationMode::kLocalized) {
    final_estimate_localized();
    return;
  }
  const WallTimer timer;
  const LinOp solve_p = make_solver(nullptr);
  result_.lambda_min = estimate_lambda_min_node_coloring(*g_, in_p_);
  result_.lambda_max =
      std::max(estimate_lambda_max_power(lg_, solve_p, rng_,
                                         opts_.lambda_max_iterations),
               1.0);
  result_.lambda_min =
      std::clamp(result_.lambda_min, 1.0, result_.lambda_max);
  result_.sigma2_estimate = result_.lambda_max / result_.lambda_min;
  result_.reached_target = result_.sigma2_estimate <= opts_.sigma2;
  notify_stage(StageKind::kFinalEstimate, timer.seconds());
}

StepStatus Sparsifier::run() {
  while (!done_) step();
  return status_;
}

void Sparsifier::rearm_phase() {
  rounds_this_phase_ = 0;
  done_ = false;
  status_ = StepStatus::kAdvanced;
  result_.reached_target = false;
}

void Sparsifier::refine(double new_sigma2) {
  opts_.with_sigma2(new_sigma2);  // shared per-field constraint check
  rearm_phase();
}

void Sparsifier::resparsify(std::span<const double> updated_weights) {
  SSP_REQUIRE(static_cast<EdgeId>(updated_weights.size()) == g_->num_edges(),
              "resparsify: one weight per edge id required");
  for (const double w : updated_weights) {
    SSP_REQUIRE(w > 0.0 && std::isfinite(w),
                "resparsify: weights must be positive and finite");
  }

  // Rebuild the graph with the new weights (topology unchanged, so edge
  // ids — and with them the backbone's tree edge ids — stay valid).
  Graph reweighted(g_->num_vertices());
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    const Edge& edge = g_->edge(e);
    reweighted.add_edge(edge.u, edge.v,
                        updated_weights[static_cast<std::size_t>(e)]);
  }
  reweighted.finalize();

  // Snapshot the backbone topology before the old graph goes away. A
  // caller-supplied backbone not yet bound (no step ran) counts too —
  // its tree must survive the warm start, not be replaced by an
  // opts_.backbone rebuild.
  const SpanningTree* source_backbone =
      backbone_ != nullptr ? backbone_ : external_backbone_;
  const bool had_backbone = source_backbone != nullptr;
  std::vector<EdgeId> tree_ids;
  Vertex root = 0;
  if (had_backbone) {
    tree_ids.assign(source_backbone->tree_edge_ids().begin(),
                    source_backbone->tree_edge_ids().end());
    root = source_backbone->root();
  }

  // Drop state referencing the old graph/backbone, then swap.
  tree_solver_.reset();
  tree_precond_.reset();
  owned_backbone_.reset();
  backbone_ = nullptr;
  external_backbone_ = nullptr;

  owned_graph_ = std::move(reweighted);
  g_ = &*owned_graph_;
  if (opts_.estimation == EstimationMode::kPower) lg_ = laplacian(*g_);
  // New weights change every stretch — the localized cache is stale.
  stretch_ready_ = false;
  stretch_warm_pending_ = false;
  rng_ = Rng(opts_.seed);

  result_ = SparsifyResult{};
  next_round_ = 0;
  elapsed_seconds_ = 0.0;
  rearm_phase();

  if (had_backbone) {
    // Reuse the backbone topology: the expensive low-stretch construction
    // is skipped, only the O(n) rooted structure and the weight-dependent
    // tree solver/preconditioner are rebuilt.
    const WallTimer timer;
    owned_backbone_.emplace(*g_, std::move(tree_ids), root);
    bind_backbone(*owned_backbone_);
    elapsed_seconds_ = timer.seconds();
    result_.total_seconds = elapsed_seconds_;
    notify_stage(StageKind::kBackbone, elapsed_seconds_);
  }
}

void Sparsifier::rebind(const Graph& g, const SpanningTree& backbone,
                        std::uint64_t seed,
                        std::span<const EdgeId> keep_offtree,
                        const HeatWarmStart* warm) {
  SSP_REQUIRE(g.finalized(), "rebind: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "rebind: need >= 2 vertices");
  SSP_REQUIRE(&backbone.graph() == &g, "rebind: backbone built on another graph");
  SSP_REQUIRE(!owned_graph_.has_value() || &g != &*owned_graph_,
              "rebind: pass a caller-owned graph, not the engine's "
              "resparsify() copy");
  // Validate the keep list before any teardown so a rejected call leaves
  // the engine exactly as it was (the resparsify() atomicity contract).
  {
    std::vector<char> seen(static_cast<std::size_t>(g.num_edges()), 0);
    for (const EdgeId e : keep_offtree) {
      SSP_REQUIRE(e >= 0 && e < g.num_edges(),
                  "rebind: keep_offtree id out of range");
      SSP_REQUIRE(!backbone.contains(e) &&
                      seen[static_cast<std::size_t>(e)] == 0,
                  "rebind: keep_offtree id is a tree edge or a duplicate");
      seen[static_cast<std::size_t>(e)] = 1;
    }
  }
  // Stage the localized heat-cache migration before teardown so a rejected
  // warm descriptor leaves the engine untouched (same atomicity contract
  // as the keep list above). Identity remap keeps the cache in place;
  // otherwise old heats land at their new ids and removed ids drop out.
  const bool take_warm = warm != nullptr &&
                         opts_.estimation == EstimationMode::kLocalized &&
                         stretch_ready_;
  std::vector<double> migrated;
  bool migrate_in_place = false;
  if (take_warm) {
    SSP_REQUIRE(warm->dirty.size() == static_cast<std::size_t>(g.num_edges()),
                "rebind: warm dirty mask must cover every new edge id");
    if (warm->old_to_new.empty()) {
      // Identity: prior ids keep their slots; ids past the old edge count
      // are new (appended) and must be flagged dirty by the caller.
      SSP_REQUIRE(stretch_cache_.size() <=
                      static_cast<std::size_t>(g.num_edges()),
                  "rebind: identity warm remap cannot shrink the id space");
      migrate_in_place = true;
    } else {
      // The remap may cover more ids than the cache (edges appended after
      // the previous binding, compacted together with it) — only cached
      // slots migrate; everything else starts dirty-zero.
      SSP_REQUIRE(warm->old_to_new.size() >= stretch_cache_.size(),
                  "rebind: warm remap must cover every old edge id");
      migrated.assign(static_cast<std::size_t>(g.num_edges()), 0.0);
      for (std::size_t e = 0; e < stretch_cache_.size(); ++e) {
        const EdgeId ne = warm->old_to_new[e];
        if (ne != kInvalidEdge) {
          SSP_REQUIRE(ne < g.num_edges(),
                      "rebind: warm remap target out of range");
          migrated[static_cast<std::size_t>(ne)] = stretch_cache_[e];
        }
      }
    }
  }

  const WallTimer timer;
  // Drop state referencing the old graph/backbone, then swap.
  tree_solver_.reset();
  tree_precond_.reset();
  owned_backbone_.reset();
  owned_graph_.reset();
  backbone_ = nullptr;
  external_backbone_ = &backbone;

  g_ = &g;
  if (opts_.estimation == EstimationMode::kPower) lg_ = laplacian(g);
  if (take_warm) {
    if (migrate_in_place) {
      stretch_cache_.resize(static_cast<std::size_t>(g.num_edges()), 0.0);
    } else {
      stretch_cache_ = std::move(migrated);
    }
    stretch_dirty_.assign(warm->dirty.begin(), warm->dirty.end());
    stretch_warm_pending_ = true;
  } else {
    stretch_warm_pending_ = false;
  }
  stretch_ready_ = false;  // rebuilt (full or patched) on the next step
  opts_.seed = seed;
  rng_ = Rng(seed);

  result_ = SparsifyResult{};
  next_round_ = 0;
  rearm_phase();
  bind_backbone(backbone);
  for (const EdgeId e : keep_offtree) {  // pre-validated above
    in_p_[static_cast<std::size_t>(e)] = 1;
    result_.edges.push_back(e);
  }
  elapsed_seconds_ = timer.seconds();
  result_.total_seconds = elapsed_seconds_;
  notify_stage(StageKind::kBackbone, elapsed_seconds_);
}

void Sparsifier::restore_result(double lambda_min, double lambda_max,
                                double sigma2_estimate, bool reached_target,
                                StepStatus status) {
  SSP_REQUIRE(backbone_ != nullptr,
              "restore_result: rebind() to the checkpointed backbone first");
  SSP_REQUIRE(is_terminal(status),
              "restore_result: status must be terminal");
  result_.lambda_min = lambda_min;
  result_.lambda_max = lambda_max;
  result_.sigma2_estimate = sigma2_estimate;
  result_.reached_target = reached_target;
  done_ = true;
  status_ = status;
}

}  // namespace ssp
