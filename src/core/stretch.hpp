#pragma once

/// \file stretch.hpp
/// Canonical per-edge tree-stretch evaluation — the heat function of the
/// engine's localized estimation mode (EstimationMode::kLocalized).
///
/// For an off-tree edge e = (u, v) with weight w_e, the stretch is
///   stretch(e) = w_e * R_T(u, v),  R_T = Σ 1/w_f over f on the tree path,
/// i.e. the paper's Joule heat specialised to the exact tree embedding
/// (h = tree voltages for a unit u→v current instead of smoothed JL
/// probes). Its value depends only on the path edges and nothing else,
/// which is what makes per-edge caching across dynamic batches sound: an
/// edge whose tree path is untouched reuses the cached double verbatim.
///
/// Bit-determinism contract: the walk below is *canonical*. The two
/// endpoints climb toward their LCA strictly by depth (deeper side first,
/// u's side on ties) — but the depths only steer the pointers; the sum is
/// accumulated in path order from u to v (u's leg bottom-up, then v's leg
/// top-down), so every rounding step is a pure function of the path's edge
/// sequence and weights alone. In particular the result does NOT depend on
/// where the LCA falls relative to the current root: re-rooting or
/// re-hanging a subtree elsewhere cannot perturb the bits of an edge whose
/// path is unchanged. That invariance is precisely what the dynamic layer's
/// clean/dirty rule relies on when it reuses cached heats verbatim.

#include <span>

#include "tree/spanning_tree.hpp"
#include "util/types.hpp"

namespace ssp {

/// Stretch of graph edge `e` against tree `t` by the canonical two-pointer
/// walk. `e` may be a tree edge (result is exactly 1.0 analytically; the
/// walk returns w_e * (1/w_e), kept for generality). O(path length).
[[nodiscard]] double edge_stretch(const SpanningTree& t, EdgeId e);

/// Fills `out[e]` with edge_stretch(t, e) for every off-tree edge, leaving
/// other slots untouched. `out.size()` must equal the graph's edge count.
/// Single-threaded by design — the per-edge walk is already the canonical
/// order, and this path is only hot in cold builds where it is dominated
/// by the backbone sort anyway.
void compute_all_stretches(const SpanningTree& t, std::span<double> out);

}  // namespace ssp
