#pragma once

/// \file sparsifier_preconditioner.hpp
/// The production preconditioner built from a similarity-aware sparsifier:
/// L_P is *factored once* by sparse Cholesky — an ultra-sparse P (tree plus
/// a small fraction of off-tree edges) factors with near-zero fill under a
/// min-degree ordering, so each PCG application costs two triangular
/// solves over ~O(|V|) nonzeros and the operator is exactly fixed (as CG
/// requires). This realizes the paper's Table 2/3 usage: "the spectral
/// sparsifier … is leveraged as a preconditioner in a PCG solver".

#include "graph/graph.hpp"
#include "graph/laplacian.hpp"
#include "solver/cholesky.hpp"
#include "solver/preconditioner.hpp"

namespace ssp {

class SparsifierPreconditioner final : public Preconditioner {
 public:
  /// Factors the Laplacian of sparsifier graph `p` (connected, finalized).
  explicit SparsifierPreconditioner(
      const Graph& p,
      CholeskyOptions::Ordering ordering = CholeskyOptions::Ordering::kMinDegree)
      : chol_(SparseCholesky::factor_laplacian(laplacian(p),
                                               {.ordering = ordering})) {}

  void apply(std::span<const double> r, std::span<double> z) const override {
    chol_.solve(r, z);
  }

  [[nodiscard]] Index size() const override { return chol_.size(); }

  /// Factor nonzeros — the fill the ordering left (≈ |Es| + small).
  [[nodiscard]] Index factor_nnz() const { return chol_.factor_nnz(); }

  /// Analytic memory footprint (Table 3's M_I component).
  [[nodiscard]] std::size_t memory_bytes() const {
    return chol_.memory_bytes();
  }

 private:
  SparseCholesky chol_;
};

}  // namespace ssp
