#pragma once

/// \file graph_filter.hpp
/// Graph-signal-processing view of spectral sparsification (paper §3.4).
///
/// A graph signal x ∈ R^V decomposes along the Laplacian eigenbasis;
/// low-eigenvalue components vary slowly across edges ("low frequency").
/// The paper frames a spectral sparsifier as a *low-pass graph filter*: P
/// preserves the action of L_G on smooth signals and degrades gracefully
/// on oscillatory ones. This module provides the tooling to measure that
/// claim directly:
///
///  * `smoothness`  — the normalized Rayleigh quotient xᵀLx/xᵀx (the GSP
///    notion of signal frequency);
///  * `chebyshev_lowpass` — polynomial approximation of the ideal low-pass
///    filter h(L)x with h(λ) = exp(−τλ) (heat-kernel smoothing), evaluated
///    with Chebyshev recurrences so only SpMVs are needed;
///  * `filter_agreement` — relative L2 error between filtering a signal on
///    G and on its sparsifier P across a band of smoothness levels: small
///    for smooth inputs, growing with frequency — the low-pass fingerprint
///    (bench_gsp_filter).

#include "la/csr_matrix.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Normalized Rayleigh quotient xᵀ L x / xᵀ x (0 for the zero vector).
[[nodiscard]] double smoothness(const CsrMatrix& l, std::span<const double> x);

struct ChebyshevFilterOptions {
  double tau = 1.0;       ///< heat-kernel time; larger = stronger smoothing
  int degree = 24;        ///< polynomial degree (SpMV count)
  double lambda_max = 0;  ///< spectral upper bound; 0 = estimate via power
};

/// y ≈ exp(−τ L) x via degree-d Chebyshev approximation on [0, λ_max].
/// Needs only matrix–vector products with L.
[[nodiscard]] Vec chebyshev_lowpass(const CsrMatrix& l,
                                    std::span<const double> x,
                                    const ChebyshevFilterOptions& opts,
                                    Rng& rng);

/// Synthesizes a unit-norm signal that mixes a smooth component (k-step
/// smoothed noise) with an oscillatory one, with `high_fraction` ∈ [0,1]
/// energy in the oscillatory part. Used by tests and the GSP bench to
/// probe the filter across frequencies.
[[nodiscard]] Vec synthesize_signal(const CsrMatrix& l, double high_fraction,
                                    Rng& rng);

/// L2 difference of the low-pass filter outputs computed on L_G vs on L_P
/// for the same input, relative to the reference output:
/// ||h(L_P)x − h(L_G)x|| / max(||h(L_G)x||, 1e-3·||x||). The floor keeps
/// the metric finite when the reference filter annihilates the signal
/// (pure high-frequency input under a strong low-pass), where *any*
/// response mismatch is infinitely large in purely relative terms.
[[nodiscard]] double filter_agreement(const CsrMatrix& lg,
                                      const CsrMatrix& lp,
                                      std::span<const double> signal,
                                      const ChebyshevFilterOptions& opts,
                                      Rng& rng);

}  // namespace ssp
