#pragma once

/// \file rescale.hpp
/// Optional sparsifier re-scaling — the paper's §3.1 notes that "edge
/// re-scaling schemes [19] can be applied to further improve the
/// approximation"; this module implements the scalar variant.
///
/// κ(L_G, L_P) is invariant under scaling L_P ← c·L_P, but the σ of the
/// two-sided bound (Eq. (2)) is not: the pencil spectrum [λ_min, λ_max]
/// maps to [λ_min/c, λ_max/c], and c* = √(λ_min·λ_max) centers it
/// geometrically around 1, giving the optimal two-sided σ = (λ_max/λ_min)^¼
/// … i.e. σ² drops from κ to √κ. Useful when the sparsifier is consumed
/// through the quadratic-form bound rather than through PCG.

#include "core/sparsifier.hpp"
#include "graph/graph.hpp"

namespace ssp {

struct RescaleResult {
  Graph sparsifier;      ///< re-scaled sparsifier graph (finalized)
  double scale = 1.0;    ///< factor applied to every edge weight
  double sigma2_before = 0.0;  ///< two-sided σ² bound before (= κ)
  double sigma2_after = 0.0;   ///< two-sided σ² bound after (= √κ)
};

/// Applies the optimal scalar re-scaling c* = 1/√(λ_min·λ_max) to the
/// sparsifier edges, using the eigenvalue estimates recorded in `result`.
[[nodiscard]] RescaleResult rescale_sparsifier(const Graph& g,
                                               const SparsifyResult& result);

}  // namespace ssp
