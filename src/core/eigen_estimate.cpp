#include "core/eigen_estimate.hpp"

#include <algorithm>
#include <limits>

#include "eigen/power_iteration.hpp"
#include "graph/laplacian.hpp"
#include "util/assert.hpp"

namespace ssp {

double estimate_lambda_min_node_coloring(const Graph& g,
                                         std::span<const char> in_sparsifier) {
  SSP_REQUIRE(g.finalized(), "lambda_min: graph must be finalized");
  SSP_REQUIRE(static_cast<EdgeId>(in_sparsifier.size()) == g.num_edges(),
              "lambda_min: in_sparsifier size must equal edge count");
  const Index n = g.num_vertices();
  SSP_REQUIRE(n >= 2, "lambda_min: need >= 2 vertices");

  Vec deg_p(static_cast<std::size_t>(n), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_sparsifier[static_cast<std::size_t>(e)] == 0) continue;
    const Edge& edge = g.edge(e);
    deg_p[static_cast<std::size_t>(edge.u)] += edge.weight;
    deg_p[static_cast<std::size_t>(edge.v)] += edge.weight;
  }
  double best = std::numeric_limits<double>::infinity();
  for (Vertex v = 0; v < n; ++v) {
    const double dp = deg_p[static_cast<std::size_t>(v)];
    SSP_REQUIRE(dp > 0.0,
                "lambda_min: vertex with zero sparsifier degree (P must "
                "contain a spanning tree)");
    best = std::min(best, g.weighted_degree(v) / dp);
  }
  return best;
}

double estimate_lambda_min_node_coloring(const Graph& g, const Graph& p) {
  SSP_REQUIRE(g.num_vertices() == p.num_vertices(),
              "lambda_min: vertex count mismatch");
  SSP_REQUIRE(g.finalized() && p.finalized(),
              "lambda_min: graphs must be finalized");
  double best = std::numeric_limits<double>::infinity();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const double dp = p.weighted_degree(v);
    SSP_REQUIRE(dp > 0.0, "lambda_min: vertex with zero sparsifier degree");
    best = std::min(best, g.weighted_degree(v) / dp);
  }
  return best;
}

double estimate_lambda_max_power(const CsrMatrix& lg, const LinOp& solve_p,
                                 Rng& rng, Index iterations) {
  SSP_REQUIRE(iterations >= 1, "lambda_max: need >= 1 iteration");
  const PowerResult res = generalized_power_iteration(
      lg, solve_p, rng,
      {.max_iterations = iterations, .rel_tolerance = 1e-4});
  return res.eigenvalue;
}

}  // namespace ssp
