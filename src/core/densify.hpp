#pragma once

/// \file densify.hpp
/// Iterative graph densification (paper §3.7) with a caller-supplied
/// backbone. Thin wrapper over the stateful `ssp::Sparsifier` engine
/// (sparsifier_engine.hpp) — kept so tests and ablation benches can drive
/// the loop one-shot with an explicit spanning tree; for staged control,
/// observers, or warm starts, construct the engine directly.

#include "core/sparsifier.hpp"
#include "tree/spanning_tree.hpp"

namespace ssp {

/// Runs the densification loop starting from `backbone` (which must span
/// `g`). Follows SparsifyOptions for the embedding/filter/solver knobs;
/// `opts.backbone` is ignored (the tree is given).
[[nodiscard]] SparsifyResult densify_loop(const Graph& g,
                                          const SpanningTree& backbone,
                                          const SparsifyOptions& opts);

}  // namespace ssp
