#include "core/effective_resistance.hpp"

#include <cmath>

#include "la/vector_ops.hpp"
#include "tree/kruskal.hpp"
#include "tree/lca.hpp"
#include "util/assert.hpp"

namespace ssp {

double effective_resistance(const Graph& g, const LinOp& solve, Vertex u,
                            Vertex v) {
  SSP_REQUIRE(u >= 0 && u < g.num_vertices() && v >= 0 &&
                  v < g.num_vertices(),
              "effective_resistance: vertex out of range");
  if (u == v) return 0.0;
  const Index n = g.num_vertices();
  Vec b(static_cast<std::size_t>(n), 0.0);
  b[static_cast<std::size_t>(u)] = 1.0;
  b[static_cast<std::size_t>(v)] = -1.0;
  project_out_mean(b);
  Vec x(static_cast<std::size_t>(n));
  solve(b, x);
  return x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
}

ResistanceSketch::ResistanceSketch(const Graph& g, const LinOp& solve,
                                   Index projections, Rng& rng)
    : g_(&g) {
  SSP_REQUIRE(g.finalized(), "ResistanceSketch: graph must be finalized");
  SSP_REQUIRE(projections >= 1, "ResistanceSketch: need >= 1 projection");
  const Index n = g.num_vertices();
  const double scale_factor = 1.0 / std::sqrt(static_cast<double>(projections));
  z_.resize(static_cast<std::size_t>(projections));
  Vec y(static_cast<std::size_t>(n));
  for (Index i = 0; i < projections; ++i) {
    fill(y, 0.0);
    for (const Edge& e : g.edges()) {
      const double q = rng.rademacher() * scale_factor * std::sqrt(e.weight);
      y[static_cast<std::size_t>(e.u)] += q;
      y[static_cast<std::size_t>(e.v)] -= q;
    }
    project_out_mean(y);
    z_[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(n));
    solve(y, z_[static_cast<std::size_t>(i)]);
  }
}

double ResistanceSketch::query(Vertex u, Vertex v) const {
  SSP_REQUIRE(u >= 0 && u < g_->num_vertices() && v >= 0 &&
                  v < g_->num_vertices(),
              "ResistanceSketch: vertex out of range");
  double sum = 0.0;
  for (const Vec& z : z_) {
    const double d =
        z[static_cast<std::size_t>(u)] - z[static_cast<std::size_t>(v)];
    sum += d * d;
  }
  return sum;
}

Vec ResistanceSketch::all_edges() const {
  Vec out(static_cast<std::size_t>(g_->num_edges()));
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    const Edge& edge = g_->edge(e);
    out[static_cast<std::size_t>(e)] = query(edge.u, edge.v);
  }
  return out;
}

Vec tree_resistance_bound_all_edges(const Graph& g) {
  const SpanningTree tree = max_weight_spanning_tree(g);
  const LcaIndex lca(tree);
  Vec out(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    out[static_cast<std::size_t>(e)] = lca.path_resistance(edge.u, edge.v);
  }
  return out;
}

}  // namespace ssp
