#pragma once

/// \file embedding.hpp
/// Spectral embedding of off-sparsifier edges — paper §3.2 / Eq. (6), (12).
///
/// Running t-step generalized power iterations h_t = (L_P⁺ L_G)^t h_0 with
/// r random ±1 start vectors and expanding the Laplacian quadratic form of
/// δL = L_G − L_P gives each missing edge (p,q) its **Joule heat**
///
///   heat(p,q) = w_pq · Σ_j (h_t,j(p) − h_t,j(q))²
///             ≈ w_pq Σ_i α_i² λ_i^{2t} (u_iᵀ e_pq)²,
///
/// i.e. the generalized eigenvalues are embedded into per-edge scalars:
/// edges whose inclusion would most reduce the dominant eigenvalues of
/// L_P⁺ L_G carry the most heat. t = 2 suffices in practice (paper §3.2).

#include <span>
#include <vector>

#include "eigen/operators.hpp"
#include "graph/graph.hpp"
#include "la/vector_ops.hpp"
#include "util/rng.hpp"

namespace ssp {

struct EmbeddingOptions {
  /// t — generalized power iteration steps (paper default 2).
  int power_steps = 2;
  /// r — number of random start vectors; 0 selects ceil(log2 n) (paper
  /// §3.7 step 4: "O(log |V|) random vectors").
  Index num_vectors = 0;
  /// Worker threads for the probe loop (0 = `ssp::default_threads()`).
  /// Results are bit-identical for every value: each probe draws from its
  /// own `Rng::split(j)` stream and per-probe heat partials are combined
  /// in stream order, so chunking never changes the arithmetic.
  int threads = 0;
};

struct OffTreeEmbedding {
  /// Edges of G absent from the sparsifier, ascending by id.
  std::vector<EdgeId> offtree_edges;
  /// Joule heat per off-tree edge, aligned with offtree_edges.
  std::vector<double> heat;
  double heat_max = 0.0;
  /// Σ heat = sampled Q_{δL,max}(h_t) of Eq. (6) — large values mean low
  /// spectral similarity.
  double total_heat = 0.0;
  int power_steps = 2;       ///< t actually used
  Index num_vectors = 0;     ///< r actually used
};

/// Reusable scratch for `compute_offtree_heat`: the multi-RHS panels the
/// power iterations advance. Owned by the caller (the `ssp::Sparsifier`
/// engine keeps one per instance) so repeated rounds on a same-size graph
/// allocate nothing once the buffers reach steady-state capacity.
struct EmbeddingWorkspace {
  /// Solved iterates h_t as one row-major n×r panel (vertex v's r probe
  /// values contiguous): the panel kernels amortize each matrix/tree
  /// traversal over all probes, and the per-edge heat reduction reads two
  /// contiguous rows instead of r strided vectors.
  Vec panel_h;
  /// n×r scratch panel holding L_G h_s before the L_P⁺ apply.
  Vec panel_gh;
  /// r-length per-column bias scratch for panel mean projection.
  Vec col_bias;
};

/// Computes Joule heats for every edge of `g` not marked in
/// `in_sparsifier` (one char per edge id, nonzero = inside P). `solve_p`
/// applies L_P⁺ and must be safe to invoke concurrently from several
/// threads (every solver built by eigen/operators.hpp is).
///
/// Randomness contract: the call advances `rng` exactly once to derive a
/// per-call stream root, then probe j draws from `root.split(j)`. The
/// result is therefore a function of (graph, options, rng state) only —
/// independent of `opts.threads` and of how the probe loop is chunked.
[[nodiscard]] OffTreeEmbedding compute_offtree_heat(
    const Graph& g, std::span<const char> in_sparsifier, const LinOp& solve_p,
    const EmbeddingOptions& opts, Rng& rng);

/// Workspace form: `lg` is the precomputed Laplacian of `g`, `ws` provides
/// the power-iteration buffers, and `out` is refilled in place (its vectors
/// keep their capacity between rounds). Draws the identical Rng sequence as
/// the allocating overload, so results are bit-for-bit equal.
///
/// When `solve_p_panel` is non-empty it is used instead of `solve_p` to
/// apply L_P⁺ to the whole n×r probe panel at once (e.g. the blocked tree
/// solve); it must produce panel columns bit-identical to `solve_p` on the
/// corresponding single vector. When empty, columns are solved one at a
/// time through `solve_p`.
void compute_offtree_heat(const Graph& g, const CsrMatrix& lg,
                          std::span<const char> in_sparsifier,
                          const LinOp& solve_p, const EmbeddingOptions& opts,
                          Rng& rng, EmbeddingWorkspace& ws,
                          OffTreeEmbedding& out,
                          const PanelOp& solve_p_panel = {});

}  // namespace ssp
