#pragma once

/// \file eigen_estimate.hpp
/// Extreme generalized-eigenvalue estimators of paper §3.6.
///
/// λ_max — generalized power iterations (§3.6.1): fast because the top
/// eigenvalues of L_P⁺ L_G are well separated [21]; fewer than ten
/// iterations give a few-percent estimate (validated in Table 1).
///
/// λ_min — node-coloring bound (§3.6.2): restricting the Courant–Fischer
/// quotient xᵀL_G x / xᵀL_P x to 0/1-valued x (two-coloring the nodes) and
/// then to single-node indicators yields
///   λ_min ≈ min_p L_G(p,p) / L_P(p,p),
/// the minimum weighted-degree ratio — an O(n) upper bound that is
/// accurate to ~10 % on real graphs (Table 1). No Krylov method does this
/// cheaply because the small pencil eigenvalues are clustered.

#include <span>

#include "eigen/operators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Node-coloring estimate of λ_min(L_P⁺ L_G) per paper Eq. (18).
/// `in_sparsifier` marks the edges of P (one char per edge of g).
/// Every vertex must have positive P-degree (true whenever P contains a
/// spanning tree).
[[nodiscard]] double estimate_lambda_min_node_coloring(
    const Graph& g, std::span<const char> in_sparsifier);

/// Convenience overload for a standalone sparsifier graph on the same
/// vertex set.
[[nodiscard]] double estimate_lambda_min_node_coloring(const Graph& g,
                                                       const Graph& p);

/// λ_max estimate via `iterations` generalized power iterations (§3.6.1).
[[nodiscard]] double estimate_lambda_max_power(const CsrMatrix& lg,
                                               const LinOp& solve_p, Rng& rng,
                                               Index iterations = 10);

}  // namespace ssp
