#include "core/options_io.hpp"

#include <stdexcept>

#include "core/sparsifier_engine.hpp"
#include "dynamic/dynamic_sparsifier.hpp"
#include "scale/partitioned_sparsifier.hpp"

namespace ssp {

const char* to_string(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kAkpw:
      return "akpw";
    case BackboneKind::kMaxWeight:
      return "kruskal";
    case BackboneKind::kShortestPath:
      return "spt";
  }
  return "?";
}

const char* to_string(InnerSolverKind kind) {
  switch (kind) {
    case InnerSolverKind::kTreePcg:
      return "tree-pcg";
    case InnerSolverKind::kAmg:
      return "amg";
  }
  return "?";
}

const char* to_string(EstimationMode mode) {
  switch (mode) {
    case EstimationMode::kPower:
      return "power";
    case EstimationMode::kLocalized:
      return "localized";
  }
  return "?";
}

const char* to_string(SimilarityPolicy policy) {
  switch (policy) {
    case SimilarityPolicy::kNone:
      return "none";
    case SimilarityPolicy::kNodeDisjoint:
      return "node-disjoint";
    case SimilarityPolicy::kBounded:
      return "bounded";
  }
  return "?";
}

const char* to_string(StageKind stage) {
  switch (stage) {
    case StageKind::kBackbone:
      return "backbone";
    case StageKind::kSolverSetup:
      return "solver-setup";
    case StageKind::kSpectralEstimate:
      return "spectral-estimate";
    case StageKind::kEmbedding:
      return "embedding";
    case StageKind::kFiltering:
      return "filtering";
    case StageKind::kFinalEstimate:
      return "final-estimate";
  }
  return "?";
}

const char* to_string(CutPolicy policy) {
  switch (policy) {
    case CutPolicy::kKeepAll:
      return "keep-all";
    case CutPolicy::kFilter:
      return "filter";
    case CutPolicy::kQuotient:
      return "quotient";
  }
  return "?";
}

const char* to_string(ScaleStage stage) {
  switch (stage) {
    case ScaleStage::kPartition:
      return "partition";
    case ScaleStage::kExtract:
      return "extract";
    case ScaleStage::kBlockSparsify:
      return "block-sparsify";
    case ScaleStage::kCutSparsify:
      return "cut-sparsify";
    case ScaleStage::kStitch:
      return "stitch";
    case ScaleStage::kQuality:
      return "quality";
  }
  return "?";
}

const char* to_string(UpdateRoute route) {
  switch (route) {
    case UpdateRoute::kResparsify:
      return "resparsify";
    case UpdateRoute::kTreeRepair:
      return "tree-repair";
    case UpdateRoute::kRebuild:
      return "rebuild";
  }
  return "?";
}

const char* to_string(DynamicStage stage) {
  switch (stage) {
    case DynamicStage::kValidate:
      return "validate";
    case DynamicStage::kApplyGraph:
      return "apply-graph";
    case DynamicStage::kTreeRepair:
      return "tree-repair";
    case DynamicStage::kRebind:
      return "rebind";
    case DynamicStage::kSparsify:
      return "sparsify";
  }
  return "?";
}

BackboneKind parse_backbone_kind(const std::string& name) {
  if (name == "akpw") return BackboneKind::kAkpw;
  if (name == "kruskal") return BackboneKind::kMaxWeight;
  if (name == "spt") return BackboneKind::kShortestPath;
  throw std::invalid_argument("unknown backbone '" + name +
                              "' (akpw|kruskal|spt)");
}

InnerSolverKind parse_inner_solver_kind(const std::string& name) {
  if (name == "tree-pcg") return InnerSolverKind::kTreePcg;
  if (name == "amg") return InnerSolverKind::kAmg;
  throw std::invalid_argument("unknown inner solver '" + name +
                              "' (tree-pcg|amg)");
}

EstimationMode parse_estimation_mode(const std::string& name) {
  if (name == "power") return EstimationMode::kPower;
  if (name == "localized") return EstimationMode::kLocalized;
  throw std::invalid_argument("unknown estimation mode '" + name +
                              "' (power|localized)");
}

SimilarityPolicy parse_similarity_policy(const std::string& name) {
  if (name == "none") return SimilarityPolicy::kNone;
  if (name == "node-disjoint") return SimilarityPolicy::kNodeDisjoint;
  if (name == "bounded") return SimilarityPolicy::kBounded;
  throw std::invalid_argument("unknown similarity policy '" + name +
                              "' (none|node-disjoint|bounded)");
}

CutPolicy parse_cut_policy(const std::string& name) {
  if (name == "keep-all") return CutPolicy::kKeepAll;
  if (name == "filter") return CutPolicy::kFilter;
  if (name == "quotient") return CutPolicy::kQuotient;
  throw std::invalid_argument("unknown cut policy '" + name +
                              "' (keep-all|filter|quotient)");
}

}  // namespace ssp
