#include "core/options_io.hpp"

#include <stdexcept>

#include "core/sparsifier_engine.hpp"

namespace ssp {

const char* to_string(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kAkpw:
      return "akpw";
    case BackboneKind::kMaxWeight:
      return "kruskal";
    case BackboneKind::kShortestPath:
      return "spt";
  }
  return "?";
}

const char* to_string(InnerSolverKind kind) {
  switch (kind) {
    case InnerSolverKind::kTreePcg:
      return "tree-pcg";
    case InnerSolverKind::kAmg:
      return "amg";
  }
  return "?";
}

const char* to_string(SimilarityPolicy policy) {
  switch (policy) {
    case SimilarityPolicy::kNone:
      return "none";
    case SimilarityPolicy::kNodeDisjoint:
      return "node-disjoint";
    case SimilarityPolicy::kBounded:
      return "bounded";
  }
  return "?";
}

const char* to_string(StageKind stage) {
  switch (stage) {
    case StageKind::kBackbone:
      return "backbone";
    case StageKind::kSolverSetup:
      return "solver-setup";
    case StageKind::kSpectralEstimate:
      return "spectral-estimate";
    case StageKind::kEmbedding:
      return "embedding";
    case StageKind::kFiltering:
      return "filtering";
    case StageKind::kFinalEstimate:
      return "final-estimate";
  }
  return "?";
}

BackboneKind parse_backbone_kind(const std::string& name) {
  if (name == "akpw") return BackboneKind::kAkpw;
  if (name == "kruskal") return BackboneKind::kMaxWeight;
  if (name == "spt") return BackboneKind::kShortestPath;
  throw std::invalid_argument("unknown backbone '" + name +
                              "' (akpw|kruskal|spt)");
}

InnerSolverKind parse_inner_solver_kind(const std::string& name) {
  if (name == "tree-pcg") return InnerSolverKind::kTreePcg;
  if (name == "amg") return InnerSolverKind::kAmg;
  throw std::invalid_argument("unknown inner solver '" + name +
                              "' (tree-pcg|amg)");
}

SimilarityPolicy parse_similarity_policy(const std::string& name) {
  if (name == "none") return SimilarityPolicy::kNone;
  if (name == "node-disjoint") return SimilarityPolicy::kNodeDisjoint;
  if (name == "bounded") return SimilarityPolicy::kBounded;
  throw std::invalid_argument("unknown similarity policy '" + name +
                              "' (none|node-disjoint|bounded)");
}

}  // namespace ssp
