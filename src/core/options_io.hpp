#pragma once

/// \file options_io.hpp
/// String round-tripping for the public option enums — the single home for
/// the name tables previously copy-pasted across the ssp_* tools and the
/// ablation benches. `to_string(parse_*(s)) == s` for every accepted name.

#include <string>

#include "core/sparsifier.hpp"

namespace ssp {

enum class StageKind;     // full definition in core/sparsifier_engine.hpp
enum class CutPolicy;     // full definition in scale/partitioned_sparsifier.hpp
enum class ScaleStage;    // full definition in scale/partitioned_sparsifier.hpp
enum class UpdateRoute;   // full definition in dynamic/dynamic_sparsifier.hpp
enum class DynamicStage;  // full definition in dynamic/dynamic_sparsifier.hpp

/// "akpw" | "kruskal" | "spt"
[[nodiscard]] const char* to_string(BackboneKind kind);

/// "tree-pcg" | "amg"
[[nodiscard]] const char* to_string(InnerSolverKind kind);

/// "power" | "localized"
[[nodiscard]] const char* to_string(EstimationMode mode);

/// "none" | "node-disjoint" | "bounded"
[[nodiscard]] const char* to_string(SimilarityPolicy policy);

/// "backbone" | "solver-setup" | "spectral-estimate" | "embedding" |
/// "filtering" | "final-estimate"
[[nodiscard]] const char* to_string(StageKind stage);

/// "keep-all" | "filter" | "quotient"
[[nodiscard]] const char* to_string(CutPolicy policy);

/// "partition" | "extract" | "block-sparsify" | "cut-sparsify" | "stitch" |
/// "quality"
[[nodiscard]] const char* to_string(ScaleStage stage);

/// "resparsify" | "tree-repair" | "rebuild"
[[nodiscard]] const char* to_string(UpdateRoute route);

/// "validate" | "apply-graph" | "tree-repair" | "rebind" | "sparsify"
[[nodiscard]] const char* to_string(DynamicStage stage);

/// Inverse of to_string(BackboneKind); throws std::invalid_argument naming
/// the accepted spellings.
[[nodiscard]] BackboneKind parse_backbone_kind(const std::string& name);

/// Inverse of to_string(InnerSolverKind).
[[nodiscard]] InnerSolverKind parse_inner_solver_kind(const std::string& name);

/// Inverse of to_string(EstimationMode).
[[nodiscard]] EstimationMode parse_estimation_mode(const std::string& name);

/// Inverse of to_string(SimilarityPolicy).
[[nodiscard]] SimilarityPolicy parse_similarity_policy(const std::string& name);

/// Inverse of to_string(CutPolicy).
[[nodiscard]] CutPolicy parse_cut_policy(const std::string& name);

}  // namespace ssp
