#pragma once

/// \file resistance_sampling.hpp
/// Spielman–Srivastava effective-resistance edge sampling [17] — the
/// baseline spectral sparsifier the paper positions itself against: it
/// produces good sparsifiers but offers no direct control of the final
/// similarity level, which is exactly the gap the similarity-aware filter
/// closes. Compared head-to-head in `bench_baseline_ss`.
///
/// Sampling q edges with replacement with probability p_e ∝ w_e·R_eff(e)
/// and weight w_e/(q·p_e) per sample preserves the Laplacian spectrum with
/// high probability for q = O(n log n / ε²).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "la/vector_ops.hpp"
#include "util/rng.hpp"

namespace ssp {

/// How effective resistances are estimated.
enum class ResistanceEstimate {
  /// Tree-path resistance upper bound via the max-weight spanning tree —
  /// exact on the tree, an over-estimate off it; O(m log n) total.
  kTreeUpperBound,
  /// Johnson–Lindenstrauss sketch: R_eff(u,v) ≈ ||Z(e_u − e_v)||² with
  /// Z = Q W^{1/2} B L⁺ built from `jl_projections` Laplacian solves
  /// (the construction of [17] §4).
  kJlSketch,
};

struct SsOptions {
  /// Number of samples drawn (q). 0 selects ceil(8 n ln n).
  EdgeId samples = 0;
  ResistanceEstimate estimate = ResistanceEstimate::kTreeUpperBound;
  /// JL sketch dimension (kJlSketch only).
  Index jl_projections = 24;
  /// Tolerance of the Laplacian solves building the sketch.
  double solver_tolerance = 1e-6;
  /// Union a max-weight spanning tree into the output so it is always
  /// connected/usable as a preconditioner (the usual practical tweak).
  bool include_spanning_tree = true;
  /// Worker threads for the resistance estimation (the k JL solves and the
  /// per-edge accumulations; 0 = `ssp::default_threads()`). Results are
  /// bit-identical for every value: sketch i draws from its own
  /// `Rng::split(i)` stream and reductions run in stream order.
  int threads = 0;
  std::uint64_t seed = 42;
};

struct SsResult {
  Graph sparsifier;        ///< reweighted sampled graph (finalized)
  EdgeId distinct_edges = 0;
  EdgeId samples_drawn = 0;
  double seconds = 0.0;
};

/// Reusable scratch for repeated SS runs (the benches re-sparsify the same
/// graph at several sample budgets): per-edge resistance estimates, the
/// cumulative sampling table, and the JL sketch vectors. All buffers keep
/// their capacity across calls on same-size graphs.
struct SsWorkspace {
  Vec resistances;           ///< per-edge R_eff estimates
  Vec cumulative;            ///< cumulative w_e·R_e sampling table
  std::vector<Vec> z;        ///< JL sketch columns (kJlSketch only)
  std::vector<Vec> chunk_y;  ///< per-chunk solve right-hand sides (kJlSketch)
};

/// Runs Spielman–Srivastava sampling on a connected, finalized graph.
[[nodiscard]] SsResult spielman_srivastava_sparsify(const Graph& g,
                                                    const SsOptions& opts = {});

/// Workspace form: identical results, but all per-run scratch lives in
/// `ws` and is reused across calls.
[[nodiscard]] SsResult spielman_srivastava_sparsify(const Graph& g,
                                                    const SsOptions& opts,
                                                    SsWorkspace& ws);

}  // namespace ssp
