#include "core/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

OffTreeEmbedding compute_offtree_heat(const Graph& g,
                                      std::span<const char> in_sparsifier,
                                      const LinOp& solve_p,
                                      const EmbeddingOptions& opts, Rng& rng) {
  SSP_REQUIRE(g.finalized(), "embedding: graph must be finalized");
  SSP_REQUIRE(static_cast<EdgeId>(in_sparsifier.size()) == g.num_edges(),
              "embedding: in_sparsifier size must equal edge count");
  SSP_REQUIRE(opts.power_steps >= 1, "embedding: power_steps must be >= 1");
  const Index n = g.num_vertices();
  SSP_REQUIRE(n >= 2, "embedding: need >= 2 vertices");

  OffTreeEmbedding emb;
  emb.power_steps = opts.power_steps;
  // Default r = max(6, ceil(log2(n)/2)) — still the paper's O(log |V|)
  // regime; the embedding-parameter ablation shows the heat ranking is
  // already stable there, at half the solve cost of r = log2 n.
  emb.num_vectors =
      opts.num_vectors > 0
          ? opts.num_vectors
          : std::max<Index>(
                6, static_cast<Index>(std::ceil(
                       0.5 *
                       std::log2(static_cast<double>(std::max<Index>(n, 4))))));

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_sparsifier[static_cast<std::size_t>(e)] == 0) {
      emb.offtree_edges.push_back(e);
    }
  }
  emb.heat.assign(emb.offtree_edges.size(), 0.0);
  if (emb.offtree_edges.empty()) return emb;

  const CsrMatrix lg = laplacian(g);
  Vec h(static_cast<std::size_t>(n));
  Vec gh(static_cast<std::size_t>(n));

  for (Index j = 0; j < emb.num_vectors; ++j) {
    h = random_probe_vector(n, rng);
    for (int s = 0; s < opts.power_steps; ++s) {
      lg.multiply(h, gh);
      project_out_mean(gh);
      solve_p(gh, h);
      project_out_mean(h);
    }
    // Accumulate per-edge Joule heat of h_t (Eq. (6)).
    for (std::size_t k = 0; k < emb.offtree_edges.size(); ++k) {
      const Edge& e = g.edge(emb.offtree_edges[k]);
      const double d = h[static_cast<std::size_t>(e.u)] -
                       h[static_cast<std::size_t>(e.v)];
      emb.heat[k] += e.weight * d * d;
    }
  }

  for (double v : emb.heat) {
    emb.total_heat += v;
    emb.heat_max = std::max(emb.heat_max, v);
  }
  return emb;
}

}  // namespace ssp
