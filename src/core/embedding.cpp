#include "core/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace ssp {

OffTreeEmbedding compute_offtree_heat(const Graph& g,
                                      std::span<const char> in_sparsifier,
                                      const LinOp& solve_p,
                                      const EmbeddingOptions& opts, Rng& rng) {
  // The Laplacian is only consumed by the power iterations, which never
  // run when every edge already sits in the sparsifier — skip the
  // O(|V|+|E|) assembly then (the workspace form returns before using lg).
  const bool any_offtree =
      std::any_of(in_sparsifier.begin(), in_sparsifier.end(),
                  [](char c) { return c == 0; });
  const CsrMatrix lg = any_offtree ? laplacian(g) : CsrMatrix{};
  EmbeddingWorkspace ws;
  OffTreeEmbedding emb;
  compute_offtree_heat(g, lg, in_sparsifier, solve_p, opts, rng, ws, emb);
  return emb;
}

void compute_offtree_heat(const Graph& g, const CsrMatrix& lg,
                          std::span<const char> in_sparsifier,
                          const LinOp& solve_p, const EmbeddingOptions& opts,
                          Rng& rng, EmbeddingWorkspace& ws,
                          OffTreeEmbedding& out) {
  SSP_REQUIRE(g.finalized(), "embedding: graph must be finalized");
  SSP_REQUIRE(static_cast<EdgeId>(in_sparsifier.size()) == g.num_edges(),
              "embedding: in_sparsifier size must equal edge count");
  SSP_REQUIRE(opts.power_steps >= 1, "embedding: power_steps must be >= 1");
  const Index n = g.num_vertices();
  SSP_REQUIRE(n >= 2, "embedding: need >= 2 vertices");

  out.power_steps = opts.power_steps;
  // Default r = max(6, ceil(log2(n)/2)) — still the paper's O(log |V|)
  // regime; the embedding-parameter ablation shows the heat ranking is
  // already stable there, at half the solve cost of r = log2 n.
  out.num_vectors =
      opts.num_vectors > 0
          ? opts.num_vectors
          : std::max<Index>(
                6, static_cast<Index>(std::ceil(
                       0.5 *
                       std::log2(static_cast<double>(std::max<Index>(n, 4))))));
  out.heat_max = 0.0;
  out.total_heat = 0.0;

  out.offtree_edges.clear();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_sparsifier[static_cast<std::size_t>(e)] == 0) {
      out.offtree_edges.push_back(e);
    }
  }
  out.heat.assign(out.offtree_edges.size(), 0.0);
  if (out.offtree_edges.empty()) return;

  const std::size_t num_offtree = out.offtree_edges.size();
  const Index r = out.num_vectors;
  const int threads = resolve_threads(opts.threads);
  const int chunks = static_cast<int>(
      std::min<Index>(static_cast<Index>(threads), r));

  // Advance the parent generator once so back-to-back embeddings (one per
  // densification round) derive fresh stream roots, then hand probe j its
  // own split(j) stream. The sequence each probe consumes depends only on
  // (rng state, j) — never on the thread count or chunking.
  (void)rng();
  const Rng probe_root = rng;

  ws.probe_h.resize(static_cast<std::size_t>(r));
  ws.chunk_gh.resize(static_cast<std::size_t>(chunks));

  global_pool().run_chunks(
      0, r, chunks, [&](int chunk, Index j_begin, Index j_end) {
        Vec& gh = ws.chunk_gh[static_cast<std::size_t>(chunk)];
        gh.resize(static_cast<std::size_t>(n));
        for (Index j = j_begin; j < j_end; ++j) {
          // The solved iterate is kept per probe (not per thread) so the
          // heat reduction below can run in probe order.
          Vec& h = ws.probe_h[static_cast<std::size_t>(j)];
          h.resize(static_cast<std::size_t>(n));
          Rng probe_rng = probe_root.split(static_cast<std::uint64_t>(j));
          random_probe_fill(h, probe_rng);
          for (int s = 0; s < opts.power_steps; ++s) {
            lg.multiply(h, gh);
            project_out_mean(gh);
            solve_p(gh, h);
            project_out_mean(h);
          }
        }
      });

  // Per-edge Joule heat of h_t (Eq. (6)). Deterministic reduction: probe
  // contributions summed in stream order, the same arithmetic for every
  // thread count; each edge's sum is owned by exactly one chunk.
  parallel_for(0, static_cast<Index>(num_offtree), threads, [&](Index ki) {
    const auto k = static_cast<std::size_t>(ki);
    const Edge& e = g.edge(out.offtree_edges[k]);
    double sum = 0.0;
    for (Index j = 0; j < r; ++j) {
      const Vec& h = ws.probe_h[static_cast<std::size_t>(j)];
      const double d = h[static_cast<std::size_t>(e.u)] -
                       h[static_cast<std::size_t>(e.v)];
      sum += e.weight * d * d;
    }
    out.heat[k] = sum;
  });

  for (double v : out.heat) {
    out.total_heat += v;
    out.heat_max = std::max(out.heat_max, v);
  }
}

}  // namespace ssp
