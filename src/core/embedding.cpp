#include "core/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

OffTreeEmbedding compute_offtree_heat(const Graph& g,
                                      std::span<const char> in_sparsifier,
                                      const LinOp& solve_p,
                                      const EmbeddingOptions& opts, Rng& rng) {
  // The Laplacian is only consumed by the power iterations, which never
  // run when every edge already sits in the sparsifier — skip the
  // O(|V|+|E|) assembly then (the workspace form returns before using lg).
  const bool any_offtree =
      std::any_of(in_sparsifier.begin(), in_sparsifier.end(),
                  [](char c) { return c == 0; });
  const CsrMatrix lg = any_offtree ? laplacian(g) : CsrMatrix{};
  EmbeddingWorkspace ws;
  OffTreeEmbedding emb;
  compute_offtree_heat(g, lg, in_sparsifier, solve_p, opts, rng, ws, emb);
  return emb;
}

void compute_offtree_heat(const Graph& g, const CsrMatrix& lg,
                          std::span<const char> in_sparsifier,
                          const LinOp& solve_p, const EmbeddingOptions& opts,
                          Rng& rng, EmbeddingWorkspace& ws,
                          OffTreeEmbedding& out) {
  SSP_REQUIRE(g.finalized(), "embedding: graph must be finalized");
  SSP_REQUIRE(static_cast<EdgeId>(in_sparsifier.size()) == g.num_edges(),
              "embedding: in_sparsifier size must equal edge count");
  SSP_REQUIRE(opts.power_steps >= 1, "embedding: power_steps must be >= 1");
  const Index n = g.num_vertices();
  SSP_REQUIRE(n >= 2, "embedding: need >= 2 vertices");

  out.power_steps = opts.power_steps;
  // Default r = max(6, ceil(log2(n)/2)) — still the paper's O(log |V|)
  // regime; the embedding-parameter ablation shows the heat ranking is
  // already stable there, at half the solve cost of r = log2 n.
  out.num_vectors =
      opts.num_vectors > 0
          ? opts.num_vectors
          : std::max<Index>(
                6, static_cast<Index>(std::ceil(
                       0.5 *
                       std::log2(static_cast<double>(std::max<Index>(n, 4))))));
  out.heat_max = 0.0;
  out.total_heat = 0.0;

  out.offtree_edges.clear();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_sparsifier[static_cast<std::size_t>(e)] == 0) {
      out.offtree_edges.push_back(e);
    }
  }
  out.heat.assign(out.offtree_edges.size(), 0.0);
  if (out.offtree_edges.empty()) return;

  ws.h.resize(static_cast<std::size_t>(n));
  ws.gh.resize(static_cast<std::size_t>(n));
  Vec& h = ws.h;
  Vec& gh = ws.gh;

  for (Index j = 0; j < out.num_vectors; ++j) {
    random_probe_fill(h, rng);
    for (int s = 0; s < opts.power_steps; ++s) {
      lg.multiply(h, gh);
      project_out_mean(gh);
      solve_p(gh, h);
      project_out_mean(h);
    }
    // Accumulate per-edge Joule heat of h_t (Eq. (6)).
    for (std::size_t k = 0; k < out.offtree_edges.size(); ++k) {
      const Edge& e = g.edge(out.offtree_edges[k]);
      const double d = h[static_cast<std::size_t>(e.u)] -
                       h[static_cast<std::size_t>(e.v)];
      out.heat[k] += e.weight * d * d;
    }
  }

  for (double v : out.heat) {
    out.total_heat += v;
    out.heat_max = std::max(out.heat_max, v);
  }
}

}  // namespace ssp
