#include "core/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "graph/laplacian.hpp"
#include "la/kernels/kernels.hpp"
#include "la/vector_ops.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace ssp {

OffTreeEmbedding compute_offtree_heat(const Graph& g,
                                      std::span<const char> in_sparsifier,
                                      const LinOp& solve_p,
                                      const EmbeddingOptions& opts, Rng& rng) {
  // The Laplacian is only consumed by the power iterations, which never
  // run when every edge already sits in the sparsifier — skip the
  // O(|V|+|E|) assembly then (the workspace form returns before using lg).
  const bool any_offtree =
      std::any_of(in_sparsifier.begin(), in_sparsifier.end(),
                  [](char c) { return c == 0; });
  const CsrMatrix lg = any_offtree ? laplacian(g) : CsrMatrix{};
  EmbeddingWorkspace ws;
  OffTreeEmbedding emb;
  compute_offtree_heat(g, lg, in_sparsifier, solve_p, opts, rng, ws, emb);
  return emb;
}

void compute_offtree_heat(const Graph& g, const CsrMatrix& lg,
                          std::span<const char> in_sparsifier,
                          const LinOp& solve_p, const EmbeddingOptions& opts,
                          Rng& rng, EmbeddingWorkspace& ws,
                          OffTreeEmbedding& out, const PanelOp& solve_p_panel) {
  SSP_REQUIRE(g.finalized(), "embedding: graph must be finalized");
  SSP_REQUIRE(static_cast<EdgeId>(in_sparsifier.size()) == g.num_edges(),
              "embedding: in_sparsifier size must equal edge count");
  SSP_REQUIRE(opts.power_steps >= 1, "embedding: power_steps must be >= 1");
  const Index n = g.num_vertices();
  SSP_REQUIRE(n >= 2, "embedding: need >= 2 vertices");

  out.power_steps = opts.power_steps;
  // Default r = max(6, ceil(log2(n)/2)) — still the paper's O(log |V|)
  // regime; the embedding-parameter ablation shows the heat ranking is
  // already stable there, at half the solve cost of r = log2 n.
  out.num_vectors =
      opts.num_vectors > 0
          ? opts.num_vectors
          : std::max<Index>(
                6, static_cast<Index>(std::ceil(
                       0.5 *
                       std::log2(static_cast<double>(std::max<Index>(n, 4))))));
  out.heat_max = 0.0;
  out.total_heat = 0.0;

  out.offtree_edges.clear();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_sparsifier[static_cast<std::size_t>(e)] == 0) {
      out.offtree_edges.push_back(e);
    }
  }
  out.heat.assign(out.offtree_edges.size(), 0.0);
  if (out.offtree_edges.empty()) return;

  const std::size_t num_offtree = out.offtree_edges.size();
  const Index r = out.num_vectors;
  const auto ur = static_cast<std::size_t>(r);
  const int threads = resolve_threads(opts.threads);

  // Advance the parent generator once so back-to-back embeddings (one per
  // densification round) derive fresh stream roots, then hand probe j its
  // own split(j) stream. The sequence each probe consumes depends only on
  // (rng state, j) — never on the thread count or chunking.
  (void)rng();
  const Rng probe_root = rng;

  // All r probes advance together as one row-major n×r panel: vertex v's
  // r iterate values are contiguous, so the panel kernels amortize every
  // matrix/tree traversal over all probes at once and the per-edge heat
  // reduces over one contiguous row pair instead of r strided vectors.
  ws.panel_h.resize(static_cast<std::size_t>(n) * ur);
  ws.panel_gh.resize(static_cast<std::size_t>(n) * ur);
  ws.col_bias.resize(ur);

  // Draw each probe's start column from its own stream, then scatter it
  // into the panel (column j owned by exactly one loop index).
  parallel_for(Index{0}, r, threads, [&](Index j) {
    thread_local Vec col;
    col.resize(static_cast<std::size_t>(n));
    Rng probe_rng = probe_root.split(static_cast<std::uint64_t>(j));
    random_probe_fill(col, probe_rng);
    double* h = ws.panel_h.data();
    for (Index v = 0; v < n; ++v) {
      h[static_cast<std::size_t>(v) * ur + static_cast<std::size_t>(j)] =
          col[static_cast<std::size_t>(v)];
    }
  });

  const auto& krn = kernels::ops();
  // Per-column mean projection: col_sums applies the lane-blocked order of
  // kernels::sum per column, and x + (−m) matches project_out_mean — each
  // panel column stays bit-identical to projecting it standalone.
  const auto project_panel = [&](Vec& panel) {
    krn.col_sums(panel.data(), n, r, ws.col_bias.data());
    for (Index j = 0; j < r; ++j) {
      ws.col_bias[static_cast<std::size_t>(j)] =
          -(ws.col_bias[static_cast<std::size_t>(j)] / static_cast<double>(n));
    }
    krn.add_row_bias(panel.data(), n, r, ws.col_bias.data());
  };

  for (int s = 0; s < opts.power_steps; ++s) {
    lg.multiply_panel(ws.panel_h, ws.panel_gh, r);
    project_panel(ws.panel_gh);
    if (solve_p_panel) {
      // Blocked solve: one tree traversal serves all r columns.
      solve_p_panel(ws.panel_gh.data(), ws.panel_h.data(), n, r);
    } else {
      // Column-wise fallback (e.g. PCG rounds): gather column j, solve,
      // scatter back. Columns are independent and each is owned by one
      // loop index, so the result is thread-count invariant.
      parallel_for(Index{0}, r, threads, [&](Index j) {
        thread_local Vec col_in;
        thread_local Vec col_out;
        col_in.resize(static_cast<std::size_t>(n));
        col_out.resize(static_cast<std::size_t>(n));
        const double* gh = ws.panel_gh.data();
        for (Index v = 0; v < n; ++v) {
          col_in[static_cast<std::size_t>(v)] =
              gh[static_cast<std::size_t>(v) * ur + static_cast<std::size_t>(j)];
        }
        solve_p(col_in, col_out);
        double* h = ws.panel_h.data();
        for (Index v = 0; v < n; ++v) {
          h[static_cast<std::size_t>(v) * ur + static_cast<std::size_t>(j)] =
              col_out[static_cast<std::size_t>(v)];
        }
      });
    }
    project_panel(ws.panel_h);
  }

  // Per-edge Joule heat of h_t (Eq. (6)). The probe dimension of each
  // vertex is one contiguous panel row, so the per-edge sum is a fused
  // squared distance over the two rows; each edge's heat is owned by
  // exactly one chunk, so the result is thread-count invariant.
  parallel_for(Index{0}, static_cast<Index>(num_offtree), threads,
               [&](Index ki) {
                 const auto k = static_cast<std::size_t>(ki);
                 const Edge& e = g.edge(out.offtree_edges[k]);
                 const double* hu =
                     ws.panel_h.data() + static_cast<std::size_t>(e.u) * ur;
                 const double* hv =
                     ws.panel_h.data() + static_cast<std::size_t>(e.v) * ur;
                 out.heat[k] = e.weight * krn.sq_dist(hu, hv, ur);
               });

  for (double v : out.heat) {
    out.total_heat += v;
    out.heat_max = std::max(out.heat_max, v);
  }
}

}  // namespace ssp
