#include "core/edge_filter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace ssp {

double heat_threshold(double sigma2, double lambda_min, double lambda_max,
                      int power_steps) {
  SSP_REQUIRE(sigma2 > 0.0, "heat_threshold: sigma2 must be positive");
  SSP_REQUIRE(lambda_min > 0.0 && lambda_max > 0.0,
              "heat_threshold: eigenvalue estimates must be positive");
  SSP_REQUIRE(power_steps >= 1, "heat_threshold: power_steps must be >= 1");
  const double ratio = sigma2 * lambda_min / lambda_max;
  const double theta = std::pow(ratio, 2 * power_steps + 1);
  return std::clamp(theta, 0.0, 1.0);
}

std::vector<EdgeId> filter_offtree_edges(const Graph& g,
                                         const OffTreeEmbedding& emb,
                                         double theta,
                                         const FilterOptions& opts) {
  SSP_REQUIRE(theta >= 0.0 && theta <= 1.0, "filter: theta must be in [0,1]");
  SSP_REQUIRE(emb.offtree_edges.size() == emb.heat.size(),
              "filter: malformed embedding");
  std::vector<EdgeId> selected;
  if (emb.offtree_edges.empty() || emb.heat_max <= 0.0) return selected;

  // Candidate indices above threshold, sorted by descending heat.
  std::vector<std::size_t> idx;
  idx.reserve(emb.offtree_edges.size());
  const double cut = theta * emb.heat_max;
  for (std::size_t k = 0; k < emb.heat.size(); ++k) {
    if (emb.heat[k] >= cut) idx.push_back(k);
  }
  // Descending heat with an ascending edge-id tiebreak (offtree_edges is
  // ascending by id, so index order is id order), via stable_sort: equal
  // heats are common on symmetric graphs, and without the tiebreak the
  // accepted set — and through the node-disjoint policy the whole
  // sparsifier — would depend on the STL's sort implementation.
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (emb.heat[a] != emb.heat[b]) return emb.heat[a] > emb.heat[b];
    return emb.offtree_edges[a] < emb.offtree_edges[b];
  });

  const Index cap =
      opts.similarity == SimilarityPolicy::kNodeDisjoint ? 1 : opts.node_cap;
  SSP_REQUIRE(opts.similarity == SimilarityPolicy::kNone || cap >= 1,
              "filter: node_cap must be >= 1");
  std::vector<Index> touched(
      opts.similarity == SimilarityPolicy::kNone
          ? 0
          : static_cast<std::size_t>(g.num_vertices()),
      0);

  for (std::size_t k : idx) {
    if (opts.max_edges > 0 &&
        static_cast<EdgeId>(selected.size()) >= opts.max_edges) {
      break;
    }
    const EdgeId id = emb.offtree_edges[k];
    const Edge& e = g.edge(id);
    if (opts.similarity != SimilarityPolicy::kNone) {
      auto& tu = touched[static_cast<std::size_t>(e.u)];
      auto& tv = touched[static_cast<std::size_t>(e.v)];
      if (tu >= cap || tv >= cap) continue;  // similar to an accepted edge
      ++tu;
      ++tv;
    }
    selected.push_back(id);
  }
  return selected;
}

}  // namespace ssp
