#include "core/sparsifier.hpp"

#include "core/densify.hpp"
#include "graph/connectivity.hpp"
#include "tree/akpw.hpp"
#include "tree/dijkstra_tree.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

SparsifyResult sparsify(const Graph& g, const SparsifyOptions& opts) {
  SSP_REQUIRE(g.finalized(), "sparsify: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "sparsify: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "sparsify: graph must be connected");

  const WallTimer timer;
  Rng tree_rng(opts.seed ^ 0x5eed5eedULL);
  const SpanningTree backbone = [&] {
    switch (opts.backbone) {
      case BackboneKind::kMaxWeight:
        return max_weight_spanning_tree(g);
      case BackboneKind::kShortestPath:
        return shortest_path_tree_from_center(g);
      case BackboneKind::kAkpw:
        break;
    }
    return akpw_low_stretch_tree(g, tree_rng);
  }();

  SparsifyResult result = densify_loop(g, backbone, opts);
  result.total_seconds = timer.seconds();  // include backbone construction
  return result;
}

}  // namespace ssp
