#include "core/sparsifier.hpp"

#include "core/sparsifier_engine.hpp"
#include "util/assert.hpp"

namespace ssp {

namespace {

// Per-field constraints, shared between the eager with_* setters and the
// full validate() pass so the two entry points cannot drift.
void check_sigma2(double value) {
  SSP_REQUIRE(value > 1.0, "sparsify: sigma2 must exceed 1");
}
void check_power_steps(int steps) {
  SSP_REQUIRE(steps >= 1, "sparsify: power_steps must be >= 1");
}
void check_num_vectors(Index r) {
  SSP_REQUIRE(r >= 0, "sparsify: num_vectors must be >= 0");
}
void check_max_rounds(Index rounds) {
  SSP_REQUIRE(rounds >= 1, "sparsify: max_rounds must be >= 1");
}
void check_max_edges_per_round(EdgeId cap) {
  SSP_REQUIRE(cap >= 0, "sparsify: max_edges_per_round must be >= 0");
}
void check_node_cap(Index cap) {
  SSP_REQUIRE(cap >= 1, "sparsify: node_cap must be >= 1");
}
void check_solver_tolerance(double tol) {
  SSP_REQUIRE(tol > 0.0 && tol < 1.0,
              "sparsify: solver_tolerance must be in (0,1)");
}
void check_lambda_max_iterations(Index iterations) {
  SSP_REQUIRE(iterations >= 1,
              "sparsify: lambda_max_iterations must be >= 1");
}
void check_threads(int n) {
  SSP_REQUIRE(n >= 0, "sparsify: threads must be >= 0 (0 = auto)");
}

}  // namespace

void SparsifyOptions::validate() const {
  check_sigma2(sigma2);
  check_power_steps(power_steps);
  check_num_vectors(num_vectors);
  check_max_rounds(max_rounds);
  check_max_edges_per_round(max_edges_per_round);
  check_solver_tolerance(solver_tolerance);
  check_lambda_max_iterations(lambda_max_iterations);
  check_threads(threads);
  // Cross-field: node_cap only matters when a capped policy is active,
  // so direct field pokes of an unused cap stay legal.
  if (similarity != SimilarityPolicy::kNone) check_node_cap(node_cap);
}

SparsifyOptions& SparsifyOptions::with_sigma2(double value) {
  check_sigma2(value);
  sigma2 = value;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_backbone(BackboneKind kind) {
  backbone = kind;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_power_steps(int steps) {
  check_power_steps(steps);
  power_steps = steps;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_num_vectors(Index r) {
  check_num_vectors(r);
  num_vectors = r;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_max_rounds(Index rounds) {
  check_max_rounds(rounds);
  max_rounds = rounds;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_max_edges_per_round(EdgeId cap) {
  check_max_edges_per_round(cap);
  max_edges_per_round = cap;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_similarity(SimilarityPolicy policy) {
  similarity = policy;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_node_cap(Index cap) {
  check_node_cap(cap);
  node_cap = cap;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_inner_solver(InnerSolverKind kind) {
  inner_solver = kind;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_solver_tolerance(double tol) {
  check_solver_tolerance(tol);
  solver_tolerance = tol;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_lambda_max_iterations(Index iterations) {
  check_lambda_max_iterations(iterations);
  lambda_max_iterations = iterations;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_threads(int n) {
  check_threads(n);
  threads = n;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_seed(std::uint64_t value) {
  seed = value;
  return *this;
}

SparsifyOptions& SparsifyOptions::with_estimation(EstimationMode mode) {
  estimation = mode;
  return *this;
}

SparsifyResult sparsify(const Graph& g, const SparsifyOptions& opts) {
  Sparsifier engine(g, opts);
  engine.run();
  return engine.take_result();
}

}  // namespace ssp
