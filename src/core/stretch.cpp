#include "core/stretch.hpp"

#include <vector>

#include "util/assert.hpp"

namespace ssp {

double edge_stretch(const SpanningTree& t, EdgeId e) {
  const Graph& g = t.graph();
  SSP_REQUIRE(e < g.num_edges(), "edge_stretch: edge id out of range");
  const std::span<const Vertex> parent = t.parents();
  const std::span<const double> parent_w = t.parent_weights();
  const std::span<const Index> depth = t.depths();

  const Edge& edge = g.edges()[e];
  Vertex a = edge.u;
  Vertex b = edge.v;
  // The depths only *steer* the two pointers to the LCA; the value is
  // accumulated in path order u → v (u's leg bottom-up, then v's leg
  // top-down), so every rounding step is a pure function of the path's
  // edge sequence and weights. Where the LCA happens to fall relative to
  // the current root does not enter — see header contract.
  double r = 0.0;
  thread_local std::vector<double> vleg;
  vleg.clear();
  while (a != b) {
    if (depth[a] >= depth[b]) {
      r += 1.0 / parent_w[a];
      a = parent[a];
    } else {
      vleg.push_back(1.0 / parent_w[b]);
      b = parent[b];
    }
  }
  for (std::size_t i = vleg.size(); i > 0; --i) r += vleg[i - 1];
  return edge.weight * r;
}

void compute_all_stretches(const SpanningTree& t, std::span<double> out) {
  const Graph& g = t.graph();
  SSP_REQUIRE(out.size() == g.num_edges(),
              "compute_all_stretches: output size mismatch");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!t.contains(e)) out[e] = edge_stretch(t, e);
  }
}

}  // namespace ssp
