#pragma once

/// \file edge_filter.hpp
/// Similarity-aware off-tree edge filtering — paper §3.5 / Eq. (15) — plus
/// the dissimilarity check of densification step 6 (§3.7).
///
/// The filter keeps an off-tree edge (p,q) iff its *normalized* Joule heat
/// clears the low-pass threshold
///   heat(p,q)/heat_max ≥ θ_σ ≈ (σ² λ_min / λ_max)^{2t+1}.
/// Intuition: heats scale like λ^{2t+1}; the target spectral radius after
/// densification is λ̃_max = σ²·λ̃_min ≈ σ²·λ_min, so edges whose implied λ
/// exceeds that target pass the filter, the rest are attenuated away —
/// spectral sparsification acting as a graph low-pass filter (§3.4).

#include <span>
#include <vector>

#include "core/embedding.hpp"
#include "graph/graph.hpp"

namespace ssp {

/// How "similar" edges are suppressed within one filtered batch (paper
/// densification step 6: "only add dissimilar edges").
enum class SimilarityPolicy {
  kNone,          ///< keep every edge above threshold
  kNodeDisjoint,  ///< greedy: skip an edge when either endpoint was already
                  ///< touched by an accepted edge this round
  kBounded,       ///< allow up to `node_cap` accepted edges per endpoint
};

struct FilterOptions {
  SimilarityPolicy similarity = SimilarityPolicy::kNodeDisjoint;
  /// Per-endpoint acceptance budget for SimilarityPolicy::kBounded.
  Index node_cap = 2;
  /// Hard cap on accepted edges per round (0 = unlimited) — the "small
  /// portions" of paper §3.7.
  EdgeId max_edges = 0;
};

/// Paper Eq. (15): θ_σ = (σ²·λ_min / λ_max)^{2t+1}, clamped to [0, 1].
[[nodiscard]] double heat_threshold(double sigma2, double lambda_min,
                                    double lambda_max, int power_steps);

/// Applies the threshold + similarity policy to an embedding. Edges are
/// visited in descending heat order; the returned ids preserve that order.
[[nodiscard]] std::vector<EdgeId> filter_offtree_edges(
    const Graph& g, const OffTreeEmbedding& emb, double theta,
    const FilterOptions& opts = {});

}  // namespace ssp
