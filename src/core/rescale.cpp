#include "core/rescale.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ssp {

RescaleResult rescale_sparsifier(const Graph& g,
                                 const SparsifyResult& result) {
  SSP_REQUIRE(result.lambda_min > 0.0 && result.lambda_max > 0.0,
              "rescale: result lacks eigenvalue estimates");
  RescaleResult out;
  // Pencil spectrum ⊂ [λ_min, λ_max]; scaling P by c divides it by c.
  // c = √(λ_min λ_max) centers the spectrum geometrically around 1.
  const double c = std::sqrt(result.lambda_min * result.lambda_max);
  out.scale = c;
  out.sigma2_before = result.lambda_max / result.lambda_min;
  // After centering, both ends sit at √κ^{±1}: two-sided σ² = √κ.
  out.sigma2_after = std::sqrt(out.sigma2_before);

  out.sparsifier = Graph(g.num_vertices());
  for (EdgeId e : result.edges) {
    const Edge& edge = g.edge(e);
    out.sparsifier.add_edge(edge.u, edge.v, edge.weight * c);
  }
  out.sparsifier.finalize();
  return out;
}

}  // namespace ssp
