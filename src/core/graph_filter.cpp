#include "core/graph_filter.hpp"

#include <cmath>

#include "eigen/operators.hpp"
#include "eigen/power_iteration.hpp"
#include "la/vector_ops.hpp"
#include "util/assert.hpp"

namespace ssp {

double smoothness(const CsrMatrix& l, std::span<const double> x) {
  SSP_REQUIRE(static_cast<Index>(x.size()) == l.rows(), "smoothness: size");
  const double xx = dot(x, x);
  if (xx == 0.0) return 0.0;
  return l.quadratic(x) / xx;
}

namespace {

/// Chebyshev coefficients of f on [0, lmax] via the standard cosine
/// quadrature (Clenshaw–Curtis style at Chebyshev points).
Vec chebyshev_coefficients(double tau, double lmax, int degree) {
  const int m = degree + 1;
  Vec c(static_cast<std::size_t>(m), 0.0);
  for (int j = 0; j < m; ++j) {
    double sum = 0.0;
    for (int q = 0; q < m; ++q) {
      const double theta = M_PI * (static_cast<double>(q) + 0.5) /
                           static_cast<double>(m);
      // Map cos(theta) in [-1,1] to lambda in [0, lmax].
      const double lambda = 0.5 * lmax * (std::cos(theta) + 1.0);
      sum += std::exp(-tau * lambda) *
             std::cos(static_cast<double>(j) * theta);
    }
    c[static_cast<std::size_t>(j)] = 2.0 * sum / static_cast<double>(m);
  }
  c[0] *= 0.5;
  return c;
}

}  // namespace

Vec chebyshev_lowpass(const CsrMatrix& l, std::span<const double> x,
                      const ChebyshevFilterOptions& opts, Rng& rng) {
  SSP_REQUIRE(l.rows() == l.cols(), "chebyshev: matrix not square");
  SSP_REQUIRE(static_cast<Index>(x.size()) == l.rows(), "chebyshev: x size");
  SSP_REQUIRE(opts.degree >= 1, "chebyshev: degree must be >= 1");
  SSP_REQUIRE(opts.tau > 0.0, "chebyshev: tau must be positive");

  double lmax = opts.lambda_max;
  if (lmax <= 0.0) {
    const PowerResult pr = power_iteration(
        make_csr_op(l), l.rows(), rng,
        {.max_iterations = 50, .rel_tolerance = 1e-3,
         .project_constants = false});
    lmax = pr.eigenvalue * 1.05;  // small safety margin
  }
  SSP_ASSERT(lmax > 0.0, "chebyshev: nonpositive spectral bound");

  const Vec coeff = chebyshev_coefficients(opts.tau, lmax, opts.degree);

  // Chebyshev recurrence on the shifted operator
  //   A~ = (2/lmax) L - I   (spectrum in [-1, 1]).
  const Index n = l.rows();
  auto apply_shifted = [&](const Vec& v, Vec& out) {
    l.multiply(v, out);
    for (Index i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] =
          (2.0 / lmax) * out[static_cast<std::size_t>(i)] -
          v[static_cast<std::size_t>(i)];
    }
  };

  Vec t_prev(x.begin(), x.end());            // T_0 x = x
  Vec t_cur(static_cast<std::size_t>(n));    // T_1 x = A~ x
  apply_shifted(t_prev, t_cur);

  Vec y(static_cast<std::size_t>(n), 0.0);
  axpy(coeff[0], t_prev, y);
  if (coeff.size() > 1) axpy(coeff[1], t_cur, y);

  Vec t_next(static_cast<std::size_t>(n));
  for (std::size_t j = 2; j < coeff.size(); ++j) {
    apply_shifted(t_cur, t_next);
    for (Index i = 0; i < n; ++i) {
      t_next[static_cast<std::size_t>(i)] =
          2.0 * t_next[static_cast<std::size_t>(i)] -
          t_prev[static_cast<std::size_t>(i)];
    }
    axpy(coeff[j], t_next, y);
    std::swap(t_prev, t_cur);
    std::swap(t_cur, t_next);
  }
  return y;
}

Vec synthesize_signal(const CsrMatrix& l, double high_fraction, Rng& rng) {
  SSP_REQUIRE(high_fraction >= 0.0 && high_fraction <= 1.0,
              "synthesize_signal: fraction in [0,1]");
  const Index n = l.rows();
  SSP_REQUIRE(n >= 2, "synthesize_signal: need n >= 2");

  const PowerResult pr = power_iteration(
      make_csr_op(l), n, rng,
      {.max_iterations = 40, .rel_tolerance = 1e-3,
       .project_constants = false});
  const double lmax = std::max(pr.eigenvalue, 1e-300);

  // Smooth part: noise pushed to the bottom of the spectrum with a strong
  // heat kernel — components at λ are damped by e^{-150 λ/λmax}, so only
  // the genuinely low-frequency subspace survives.
  Vec smooth = chebyshev_lowpass(
      l, random_probe_vector(n, rng),
      {.tau = 150.0 / lmax, .degree = 96, .lambda_max = lmax * 1.05}, rng);
  project_out_mean(smooth);
  normalize(smooth);

  // Oscillatory part: noise pushed toward the top of the spectrum by a few
  // plain power iterations on L.
  Vec rough = random_probe_vector(n, rng);
  Vec tmp(static_cast<std::size_t>(n));
  for (int pass = 0; pass < 8; ++pass) {
    l.multiply(rough, tmp);
    rough = tmp;
    project_out_mean(rough);
    normalize(rough);
  }

  Vec sig(static_cast<std::size_t>(n), 0.0);
  axpy(std::sqrt(1.0 - high_fraction), smooth, sig);
  axpy(std::sqrt(high_fraction), rough, sig);
  normalize(sig);
  return sig;
}

double filter_agreement(const CsrMatrix& lg, const CsrMatrix& lp,
                        std::span<const double> signal,
                        const ChebyshevFilterOptions& opts, Rng& rng) {
  SSP_REQUIRE(lg.rows() == lp.rows(), "filter_agreement: size mismatch");
  // Use a shared spectral bound so both filters approximate the same h(λ).
  ChebyshevFilterOptions shared = opts;
  if (shared.lambda_max <= 0.0) {
    const PowerResult pr = power_iteration(
        make_csr_op(lg), lg.rows(), rng,
        {.max_iterations = 50, .rel_tolerance = 1e-3,
         .project_constants = false});
    shared.lambda_max = pr.eigenvalue * 1.05;
  }
  const Vec yg = chebyshev_lowpass(lg, signal, shared, rng);
  const Vec yp = chebyshev_lowpass(lp, signal, shared, rng);
  const double denom =
      std::max(norm2(yg), 1e-3 * std::max(norm2(signal), 1e-300));
  return norm2(subtract(yp, yg)) / denom;
}

}  // namespace ssp
