#include "core/resistance_sampling.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "eigen/operators.hpp"
#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "la/vector_ops.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/kruskal.hpp"
#include "tree/lca.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace ssp {

namespace {

/// Per-edge effective resistance estimates, written into `ws.resistances`.
void estimate_resistances(const Graph& g, const SsOptions& opts, Rng& rng,
                          SsWorkspace& ws) {
  const EdgeId m = g.num_edges();
  Vec& r = ws.resistances;
  r.resize(static_cast<std::size_t>(m));

  const int threads = resolve_threads(opts.threads);

  if (opts.estimate == ResistanceEstimate::kTreeUpperBound) {
    const SpanningTree tree = max_weight_spanning_tree(g);
    const LcaIndex lca(tree);
    parallel_for(0, static_cast<Index>(m), threads, [&](Index ei) {
      const auto e = static_cast<EdgeId>(ei);
      const Edge& edge = g.edge(e);
      r[static_cast<std::size_t>(e)] = lca.path_resistance(edge.u, edge.v);
    });
    return;
  }

  // JL sketch: z_i = L^+ (B^T W^{1/2} q_i), R_eff(u,v) ≈ Σ_i (z_i(u)-z_i(v))².
  const Index n = g.num_vertices();
  const Index k = std::max<Index>(opts.jl_projections, 4);
  const CsrMatrix l = laplacian(g);
  const SpanningTree tree = max_weight_spanning_tree(g);
  const TreePreconditioner precond(tree);
  const LinOp solve = make_pcg_op(l, precond,
                                  {.max_iterations = 1000,
                                   .rel_tolerance = opts.solver_tolerance,
                                   .project_constants = true});

  // Per-sketch split streams (advance the parent once per call so repeated
  // estimations derive fresh roots): sketch i's Rademacher sequence depends
  // only on (rng state, i), so the k solves parallelize without changing a
  // single bit of the result for any thread count.
  (void)rng();
  const Rng sketch_root = rng;
  const int chunks = static_cast<int>(std::min<Index>(threads, k));

  ws.z.resize(static_cast<std::size_t>(k));
  ws.chunk_y.resize(static_cast<std::size_t>(chunks));
  const double scale_factor = 1.0 / std::sqrt(static_cast<double>(k));
  global_pool().run_chunks(
      0, k, chunks, [&](int chunk, Index i_begin, Index i_end) {
        Vec& y = ws.chunk_y[static_cast<std::size_t>(chunk)];
        y.resize(static_cast<std::size_t>(n));
        for (Index i = i_begin; i < i_end; ++i) {
          Rng sketch_rng = sketch_root.split(static_cast<std::uint64_t>(i));
          fill(y, 0.0);
          for (EdgeId e = 0; e < m; ++e) {
            const Edge& edge = g.edge(e);
            const double q = sketch_rng.rademacher() * scale_factor *
                             std::sqrt(edge.weight);
            y[static_cast<std::size_t>(edge.u)] += q;
            y[static_cast<std::size_t>(edge.v)] -= q;
          }
          project_out_mean(y);
          ws.z[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(n));
          solve(y, ws.z[static_cast<std::size_t>(i)]);
        }
      });
  // Per-edge accumulation: each edge owned by one chunk, sketches summed
  // in stream order — deterministic for every thread count.
  parallel_for(0, static_cast<Index>(m), threads, [&](Index ei) {
    const auto e = static_cast<EdgeId>(ei);
    const Edge& edge = g.edge(e);
    double sum = 0.0;
    for (Index i = 0; i < k; ++i) {
      const double d =
          ws.z[static_cast<std::size_t>(i)][static_cast<std::size_t>(edge.u)] -
          ws.z[static_cast<std::size_t>(i)][static_cast<std::size_t>(edge.v)];
      sum += d * d;
    }
    r[static_cast<std::size_t>(e)] = sum;
  });
}

}  // namespace

SsResult spielman_srivastava_sparsify(const Graph& g, const SsOptions& opts) {
  SsWorkspace ws;
  return spielman_srivastava_sparsify(g, opts, ws);
}

SsResult spielman_srivastava_sparsify(const Graph& g, const SsOptions& opts,
                                      SsWorkspace& ws) {
  SSP_REQUIRE(g.finalized(), "ss: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "ss: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "ss: graph must be connected");
  SSP_REQUIRE(opts.jl_projections >= 1, "ss: jl_projections must be >= 1");

  const WallTimer timer;
  Rng rng(opts.seed);
  const Index n = g.num_vertices();
  const EdgeId m = g.num_edges();
  const EdgeId q =
      opts.samples > 0
          ? opts.samples
          : static_cast<EdgeId>(std::ceil(
                8.0 * static_cast<double>(n) *
                std::log(std::max(2.0, static_cast<double>(n)))));

  estimate_resistances(g, opts, rng, ws);
  const Vec& resistances = ws.resistances;

  // Sampling probabilities p_e ∝ w_e R_e; build the cumulative table.
  Vec& cumulative = ws.cumulative;
  cumulative.resize(static_cast<std::size_t>(m));
  double total = 0.0;
  for (EdgeId e = 0; e < m; ++e) {
    const double score =
        g.edge(e).weight * std::max(resistances[static_cast<std::size_t>(e)], 0.0);
    total += score;
    cumulative[static_cast<std::size_t>(e)] = total;
  }
  SSP_REQUIRE(total > 0.0, "ss: degenerate resistance estimates");

  // Draw q samples with replacement; accumulate reweighted multiplicity.
  std::map<EdgeId, double> weight_of;
  for (EdgeId s = 0; s < q; ++s) {
    const double u = rng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const EdgeId e = static_cast<EdgeId>(it - cumulative.begin());
    const double pe =
        (g.edge(e).weight *
         std::max(resistances[static_cast<std::size_t>(e)], 0.0)) /
        total;
    weight_of[e] += g.edge(e).weight /
                    (static_cast<double>(q) * std::max(pe, 1e-300));
  }

  SsResult out;
  out.samples_drawn = q;
  out.sparsifier = Graph(static_cast<Vertex>(n));
  if (opts.include_spanning_tree) {
    const SpanningTree tree = max_weight_spanning_tree(g);
    for (EdgeId e : tree.tree_edge_ids()) {
      // Keep original weight for tree edges not sampled; sampled ones merge.
      if (weight_of.find(e) == weight_of.end()) {
        weight_of[e] = g.edge(e).weight;
      }
    }
  }
  for (const auto& [e, w] : weight_of) {
    const Edge& edge = g.edge(e);
    out.sparsifier.add_edge(edge.u, edge.v, w);
  }
  out.sparsifier.finalize();
  out.distinct_edges = out.sparsifier.num_edges();
  out.seconds = timer.seconds();
  return out;
}

}  // namespace ssp
