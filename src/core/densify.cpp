#include "core/densify.hpp"

#include "core/sparsifier_engine.hpp"

namespace ssp {

SparsifyResult densify_loop(const Graph& g, const SpanningTree& backbone,
                            const SparsifyOptions& opts) {
  Sparsifier engine(g, backbone, opts);
  engine.run();
  return engine.take_result();
}

}  // namespace ssp
