#include "core/densify.hpp"

#include <algorithm>
#include <cmath>

#include "core/eigen_estimate.hpp"
#include "core/embedding.hpp"
#include "eigen/operators.hpp"
#include "graph/laplacian.hpp"
#include "solver/amg.hpp"
#include "solver/pcg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/tree_solver.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ssp {

namespace {

void validate_options(const SparsifyOptions& o) {
  SSP_REQUIRE(o.sigma2 > 1.0, "sparsify: sigma2 must exceed 1");
  SSP_REQUIRE(o.power_steps >= 1, "sparsify: power_steps must be >= 1");
  SSP_REQUIRE(o.num_vectors >= 0, "sparsify: num_vectors must be >= 0");
  SSP_REQUIRE(o.max_rounds >= 1, "sparsify: max_rounds must be >= 1");
  SSP_REQUIRE(o.max_edges_per_round >= 0,
              "sparsify: max_edges_per_round must be >= 0");
  SSP_REQUIRE(o.solver_tolerance > 0.0 && o.solver_tolerance < 1.0,
              "sparsify: solver_tolerance must be in (0,1)");
  SSP_REQUIRE(o.lambda_max_iterations >= 1,
              "sparsify: lambda_max_iterations must be >= 1");
  SSP_REQUIRE(o.similarity == SimilarityPolicy::kNone || o.node_cap >= 1,
              "sparsify: node_cap must be >= 1");
}

}  // namespace

SparsifyResult densify_loop(const Graph& g, const SpanningTree& backbone,
                            const SparsifyOptions& opts) {
  validate_options(opts);
  SSP_REQUIRE(&backbone.graph() == &g, "densify: backbone built on another graph");
  const WallTimer total_timer;
  const Index n = g.num_vertices();
  // Adaptive "small portions" (§3.7): while far from the target, add up to
  // n/4 edges per round; once within 8x of the target, shrink the batch to
  // n/16 so the final density is not overshot. A user-provided cap wins.
  const auto cap_for = [&](double sigma2_estimate) {
    if (opts.max_edges_per_round > 0) return opts.max_edges_per_round;
    // Batch size tracks the remaining multiplicative gap to the target:
    // large batches while far away (few expensive re-embedding rounds),
    // small ones near the target (no density overshoot).
    const double gap = sigma2_estimate / opts.sigma2;
    const Index divisor =
        gap > 1000.0 ? 4 : (gap > 100.0 ? 8 : (gap > 3.0 ? 16 : 24));
    return std::max<EdgeId>(64, static_cast<EdgeId>(n) / divisor);
  };

  Rng rng(opts.seed);
  const CsrMatrix lg = laplacian(g);

  SparsifyResult result;
  result.tree_edges.assign(backbone.tree_edge_ids().begin(),
                           backbone.tree_edge_ids().end());
  result.edges = result.tree_edges;
  std::vector<char> in_p(static_cast<std::size_t>(g.num_edges()), 0);
  for (EdgeId e : result.edges) in_p[static_cast<std::size_t>(e)] = 1;

  // The backbone tree solver doubles as the PCG preconditioner of every
  // later sparsifier (the tree stays a subgraph of P).
  const TreeSolver tree_solver(backbone);
  const TreePreconditioner tree_precond(backbone);

  for (Index round = 0; round < opts.max_rounds; ++round) {
    const WallTimer round_timer;
    DensifyRound stats;
    stats.round = round;

    // --- Step 1 (§3.7): update L_P and its solver. ---
    const bool tree_only =
        static_cast<EdgeId>(result.edges.size()) == n - 1;
    CsrMatrix lp;
    AmgHierarchy amg;
    LinOp solve_p;
    if (tree_only) {
      solve_p = make_tree_solver_op(tree_solver);
    } else {
      lp = laplacian(g.edge_subgraph(result.edges));
      if (opts.inner_solver == InnerSolverKind::kAmg) {
        amg = AmgHierarchy::build(lp);
        solve_p = make_amg_op(amg, opts.solver_tolerance, 200);
      } else {
        solve_p = make_pcg_op(lp, tree_precond,
                              {.max_iterations = 500,
                               .rel_tolerance = opts.solver_tolerance,
                               .project_constants = true});
      }
    }

    // --- Step 2: estimate the spectral similarity. ---
    stats.lambda_min = estimate_lambda_min_node_coloring(g, in_p);
    stats.lambda_max = estimate_lambda_max_power(lg, solve_p, rng,
                                                 opts.lambda_max_iterations);
    // Guard against solver noise: the pencil spectrum is >= 1 for
    // subgraph sparsifiers.
    stats.lambda_max = std::max(stats.lambda_max, 1.0);
    stats.lambda_min = std::clamp(stats.lambda_min, 1.0, stats.lambda_max);
    stats.sigma2_estimate = stats.lambda_max / stats.lambda_min;

    result.lambda_min = stats.lambda_min;
    result.lambda_max = stats.lambda_max;
    result.sigma2_estimate = stats.sigma2_estimate;

    // --- Step 3: stop when similar enough (or nothing left to add). ---
    if (stats.sigma2_estimate <= opts.sigma2 ||
        static_cast<EdgeId>(result.edges.size()) == g.num_edges()) {
      result.reached_target = stats.sigma2_estimate <= opts.sigma2;
      stats.seconds = round_timer.seconds();
      result.rounds.push_back(stats);
      break;
    }

    // --- Step 4: spectral embedding of off-tree edges. ---
    const OffTreeEmbedding emb = compute_offtree_heat(
        g, in_p, solve_p,
        {.power_steps = opts.power_steps, .num_vectors = opts.num_vectors},
        rng);

    // --- Step 5: rank and filter by normalized Joule heat (Eq. 15). ---
    stats.theta = heat_threshold(opts.sigma2, stats.lambda_min,
                                 stats.lambda_max, opts.power_steps);

    // --- Step 6: add only dissimilar filtered edges. ---
    const EdgeId cap_per_round = cap_for(stats.sigma2_estimate);
    const FilterOptions fopts = {.similarity = opts.similarity,
                                 .node_cap = opts.node_cap,
                                 .max_edges = cap_per_round};
    std::vector<EdgeId> picked =
        filter_offtree_edges(g, emb, stats.theta, fopts);
    if (picked.empty()) {
      // The threshold filtered everything although the target is unmet
      // (estimator noise). Force progress with the hottest edges.
      picked = filter_offtree_edges(
          g, emb, 0.0,
          {.similarity = opts.similarity,
           .node_cap = opts.node_cap,
           .max_edges = std::min<EdgeId>(cap_per_round, 16)});
    }
    if (picked.empty()) {  // no off-tree edges remain
      stats.seconds = round_timer.seconds();
      result.rounds.push_back(stats);
      break;
    }
    for (EdgeId e : picked) {
      in_p[static_cast<std::size_t>(e)] = 1;
      result.edges.push_back(e);
    }
    stats.edges_added = static_cast<EdgeId>(picked.size());
    stats.seconds = round_timer.seconds();
    result.rounds.push_back(stats);
  }

  if (!result.reached_target && !result.rounds.empty() &&
      result.rounds.back().edges_added > 0) {
    // max_rounds exhausted right after an add: refresh the final estimate
    // so the reported σ² reflects the sparsifier actually returned.
    const CsrMatrix lp = laplacian(g.edge_subgraph(result.edges));
    LinOp solve_p;
    AmgHierarchy amg;
    if (opts.inner_solver == InnerSolverKind::kAmg) {
      amg = AmgHierarchy::build(lp);
      solve_p = make_amg_op(amg, opts.solver_tolerance, 200);
    } else {
      solve_p = make_pcg_op(lp, tree_precond,
                            {.max_iterations = 500,
                             .rel_tolerance = opts.solver_tolerance,
                             .project_constants = true});
    }
    result.lambda_min = estimate_lambda_min_node_coloring(g, in_p);
    result.lambda_max = std::max(
        estimate_lambda_max_power(lg, solve_p, rng,
                                  opts.lambda_max_iterations),
        1.0);
    result.lambda_min =
        std::clamp(result.lambda_min, 1.0, result.lambda_max);
    result.sigma2_estimate = result.lambda_max / result.lambda_min;
    result.reached_target = result.sigma2_estimate <= opts.sigma2;
  }

  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace ssp
