#pragma once

/// \file effective_resistance.hpp
/// Effective-resistance computation. R_eff(u,v) = (e_u − e_v)ᵀ L⁺ (e_u − e_v)
/// is the electrical distance the paper's §2 lists among the quantities a
/// spectral sparsifier preserves, and the sampling weight of the
/// Spielman–Srivastava baseline [17].
///
/// Three estimators, trading accuracy for cost:
///  * exact        — one Laplacian solve per queried pair;
///  * JL sketch    — O(log n / ε²) solves once, then O(k) per pair [17];
///  * tree bound   — spanning-tree path resistance, an upper bound, O(log n)
///                   per pair after O(n log n) preprocessing.

#include <utility>
#include <vector>

#include "eigen/operators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Exact effective resistance between u and v using `solve` ≈ L⁺.
[[nodiscard]] double effective_resistance(const Graph& g, const LinOp& solve,
                                          Vertex u, Vertex v);

/// Johnson–Lindenstrauss sketch of all-pairs effective resistances:
/// R(u,v) ≈ ||Z(:,u) − Z(:,v)||² with Z = Q W^{1/2} B L⁺ built from
/// `projections` Laplacian solves.
class ResistanceSketch {
 public:
  /// Builds the sketch; `solve` applies L⁺ of `g`'s Laplacian.
  ResistanceSketch(const Graph& g, const LinOp& solve, Index projections,
                   Rng& rng);

  [[nodiscard]] double query(Vertex u, Vertex v) const;

  /// Per-edge resistances for all edges of the host graph.
  [[nodiscard]] Vec all_edges() const;

  [[nodiscard]] Index projections() const {
    return static_cast<Index>(z_.size());
  }

 private:
  const Graph* g_;
  std::vector<Vec> z_;  // one n-vector per projection
};

/// Spanning-tree upper bound: R_T(u,v) ≥ R_G(u,v) by Rayleigh monotonicity.
/// (Computed via tree/lca.hpp; thin wrapper re-exported here so resistance
/// users need only this header.)
[[nodiscard]] Vec tree_resistance_bound_all_edges(const Graph& g);

}  // namespace ssp
