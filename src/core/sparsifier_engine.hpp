#pragma once

/// \file sparsifier_engine.hpp
/// Stateful similarity-aware sparsification engine.
///
/// The paper's pipeline is inherently staged — backbone → (λ_min, λ_max)
/// estimation → Joule-heat embedding → θ_σ filtering → dissimilar-batch
/// acceptance — and `ssp::Sparsifier` exposes exactly those seams:
///
///  * `run()` drives the densification loop to completion;
///  * `step()` executes one round at a time (identical results: a seeded
///    step()-driven run reproduces the one-shot edge list bit-for-bit);
///  * `result()` is the accumulated `SparsifyResult` at any point;
///  * `refine(sigma2)` re-arms a finished engine at a new similarity
///    target, keeping the edge set, backbone, tree solver/preconditioner,
///    and scratch workspace — resuming densification instead of starting
///    over (the GRASS-style iterative-refinement workflow). Per-round
///    solver state that depends on the growing edge set (L_P, the AMG
///    hierarchy) is rebuilt each round, warm or cold;
///  * `resparsify(weights)` warm-starts on re-weighted edges (same
///    topology): the backbone tree topology and all workspace buffers are
///    reused; only the weight-dependent solver state is rebuilt.
///
/// Observability: attach a `StageObserver` to receive per-round telemetry
/// (`on_round`, which may cancel by returning false) and per-stage wall
/// times (`on_stage`). This replaces grepping the write-only
/// `SparsifyResult::rounds` vector after the fact.
///
/// The engine owns all per-round scratch (sparsifier membership bitmap,
/// power-iteration vectors, off-tree heat arrays), so repeated rounds —
/// and repeated warm starts on same-size graphs — perform no steady-state
/// allocation in the embedding path.
///
/// Determinism contract (threads): the engine's result is a pure function
/// of (graph, options-without-threads, seed). `SparsifyOptions::threads`
/// — and the SSP_THREADS environment default behind `threads == 0` —
/// changes only wall time, never a single bit of the final edge list or
/// the telemetry estimates. Two mechanisms guarantee this:
///
///  1. **Per-stream RNG.** Every parallel unit of work (probe vector j of
///     the Joule-heat embedding, JL sketch i of the SS baseline) draws
///     from its own `Rng::split(stream_id)` child generator, derived from
///     the engine seed — the random sequence a unit consumes depends only
///     on its stream id, never on which thread executes it.
///  2. **Deterministic reductions.** Solved probe iterates are stored per
///     probe and their per-edge heat contributions summed in stream
///     order; every other parallel loop writes each output location from
///     exactly one chunk. No floating-point sum ever depends on the
///     chunk decomposition.
///
/// The switch from one shared sequential RNG to derived per-probe streams
/// changed one-shot `sparsify()` output once (relative to the pre-threaded
/// library); it is now fixed regardless of thread count, and the
/// sequential path (`threads = 1`) draws the identical derived streams.
///
/// Thread-compatibility: a `Sparsifier` instance is single-threaded at the
/// API level — calls into one instance must not overlap, while internally
/// each step fans work out over the global pool; distinct instances are
/// independent. The engine is neither copyable nor movable (inner solvers
/// hold references into the instance).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/embedding.hpp"
#include "core/sparsifier.hpp"
#include "la/csr_matrix.hpp"
#include "solver/amg.hpp"
#include "solver/preconditioner.hpp"
#include "tree/spanning_tree.hpp"
#include "tree/tree_solver.hpp"
#include "util/rng.hpp"

namespace ssp {

/// Pipeline stages reported through `StageObserver::on_stage`.
enum class StageKind {
  kBackbone,          ///< spanning-tree backbone construction
  kSolverSetup,       ///< L_P assembly and inner-solver (re)build
  kSpectralEstimate,  ///< (λ_min, λ_max) estimation (§3.6)
  kEmbedding,         ///< Joule-heat embedding of off-tree edges (§3.2)
  kFiltering,         ///< θ_σ filter + dissimilar batch selection (§3.5/3.7)
  kFinalEstimate,     ///< post-loop σ² refresh after the round budget
};

/// Number of StageKind values (for per-stage accumulation arrays).
inline constexpr int kNumStageKinds = 6;

/// Live telemetry hook for the engine. Default implementations observe
/// nothing; override what you need. Callbacks run synchronously on the
/// engine's thread and must not re-enter the engine.
class StageObserver {
 public:
  virtual ~StageObserver() = default;

  /// Called after every densification round with its telemetry (including
  /// the terminal estimate-only round). Return false to cancel: the engine
  /// finishes with StepStatus::kCancelled and keeps the edges accepted so
  /// far. The returned value is ignored on rounds that already terminate
  /// the run.
  virtual bool on_round(const DensifyRound& /*round*/) { return true; }

  /// Called as each pipeline stage completes, with its wall time.
  virtual void on_stage(StageKind /*stage*/, double /*seconds*/) {}
};

/// Outcome of a `step()` (and, for the terminal statuses, of `run()`).
enum class StepStatus {
  kAdvanced,    ///< a round ran and accepted edges; more work may remain
  kConverged,   ///< σ² target reached — `result().reached_target` is true
  kExhausted,   ///< no off-tree edges left to add (σ² target unreachable)
  kRoundLimit,  ///< max_rounds exhausted before reaching the target
  kCancelled,   ///< a StageObserver::on_round returned false
};

/// True for every status except kAdvanced.
[[nodiscard]] constexpr bool is_terminal(StepStatus s) {
  return s != StepStatus::kAdvanced;
}

/// Localized warm-start descriptor for `rebind()` (EstimationMode::
/// kLocalized only). Carries the dynamic layer's knowledge of *which*
/// per-edge heats survived the batch:
///  * `old_to_new` — edge-id remap from the previously bound graph to the
///    new one (the `Graph::remove_edges` convention: old id → new id,
///    kInvalidEdge for removed ids; empty span = identity). The engine
///    migrates its heat cache through it.
///  * `dirty` — one flag per *new* edge id; nonzero means the edge's tree
///    path may have changed (or the edge is new/reweighted) and its heat
///    must be recomputed. Clean off-tree edges reuse the cached double
///    verbatim — same bits, because the canonical stretch walk
///    (core/stretch.hpp) is a pure function of the untouched path.
/// The caller is responsible for `dirty` being a superset of the truly
/// affected edges; the differential tests enforce it against a cold
/// recompute.
struct HeatWarmStart {
  std::span<const EdgeId> old_to_new;
  std::span<const char> dirty;
};

/// Reuse accounting of the most recent localized heat (re)build.
struct LocalizedHeatStats {
  EdgeId reused = 0;      ///< off-tree heats taken from the warm cache
  EdgeId recomputed = 0;  ///< off-tree heats recomputed by the stretch walk
};

class Sparsifier {
 public:
  /// Validates `opts` and binds the engine to `g` (connected, finalized;
  /// must outlive the engine). The backbone is built lazily on the first
  /// `step()`/`run()` so an observer attached after construction still
  /// sees the StageKind::kBackbone notification.
  explicit Sparsifier(const Graph& g, SparsifyOptions opts = {});

  /// Caller-supplied backbone (must span `g`; both must outlive the
  /// engine). `opts.backbone` is ignored. Used by tests and ablation
  /// benches that study backbone choices in isolation.
  Sparsifier(const Graph& g, const SpanningTree& backbone,
             SparsifyOptions opts = {});

  Sparsifier(const Sparsifier&) = delete;
  Sparsifier& operator=(const Sparsifier&) = delete;

  /// Attaches (or detaches, with nullptr) the telemetry observer. The
  /// observer must outlive the engine or be detached first.
  void set_observer(StageObserver* observer) { observer_ = observer; }

  /// Executes one densification round (§3.7). No-op returning the final
  /// status when the engine is already done.
  StepStatus step();

  /// Steps until a terminal status; returns it.
  StepStatus run();

  /// True once a terminal status was reached (reset by warm starts).
  [[nodiscard]] bool done() const { return done_; }

  /// Status of the most recent step (kAdvanced before any work).
  [[nodiscard]] StepStatus status() const { return status_; }

  /// Accumulated result. Before the first step the edge list is empty;
  /// after any step it always contains at least the backbone.
  [[nodiscard]] const SparsifyResult& result() const { return result_; }

  /// Moves the result out of a finished engine without copying the edge
  /// and telemetry vectors. The engine's accumulated state is gone
  /// afterwards: destroy it or warm-start with resparsify(); step(),
  /// run(), and refine() are no longer valid. Used by the one-shot
  /// wrappers.
  [[nodiscard]] SparsifyResult take_result() { return std::move(result_); }

  /// The graph currently being sparsified — the constructor argument, or
  /// the engine-owned re-weighted copy after `resparsify()`. Use this (not
  /// the original) with `result().extract(...)` after re-sparsification.
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] const SparsifyOptions& options() const { return opts_; }

  /// Total rounds executed across all phases (cold run + warm starts).
  [[nodiscard]] Index rounds_completed() const { return next_round_; }

  /// Warm start at a new σ² target: keeps the accepted edge set, backbone,
  /// tree solver/preconditioner, and workspace, re-arms the engine with a
  /// fresh round budget, and resumes on the next `step()`/`run()`.
  /// Tightening the target densifies incrementally; loosening simply stops
  /// earlier (already-accepted edges are never removed).
  void refine(double new_sigma2);

  /// Warm start on updated edge weights (`updated_weights[e]` replaces the
  /// weight of edge id `e`; same topology, all weights > 0 and finite).
  /// Reuses the backbone tree topology and all scratch buffers; rebuilds
  /// only the weight-dependent solver state. Densification restarts from
  /// the backbone with a reseeded Rng, so the result matches a cold run on
  /// the re-weighted graph up to the (reused) backbone choice.
  void resparsify(std::span<const double> updated_weights);

  /// Warm start on a different graph (any topology) with a caller-supplied
  /// backbone — the generalization of `resparsify()` behind the dynamic
  /// update layer (src/dynamic/). Both `g` and `backbone` must outlive the
  /// engine (`g` may not be the engine-owned `resparsify()` copy), and
  /// `backbone` must span `g`. The engine re-seeds its Rng with `seed` and
  /// restarts densification from the backbone, reusing every workspace
  /// buffer, so the run is bit-identical to a cold
  /// `Sparsifier(g, backbone, opts.with_seed(seed))` run — only cheaper
  /// (no allocation, no connectivity re-check).
  ///
  /// `keep_offtree` optionally pre-accepts off-tree edges of `g` (valid
  /// ids, not tree edges, pairwise distinct) into the sparsifier before the
  /// first round — the incremental-refine warm start: densification then
  /// tops up from the previous selection instead of from the bare tree.
  ///
  /// `warm` (EstimationMode::kLocalized only, ignored otherwise) migrates
  /// the per-edge heat cache of the previously bound graph into the new
  /// binding instead of discarding it: cached heats are remapped through
  /// `warm->old_to_new` and only ids flagged in `warm->dirty` are
  /// recomputed on the next step — see HeatWarmStart. Passing nullptr (or
  /// rebinding a power-mode engine) invalidates the cache, so the next
  /// step recomputes every off-tree heat; either way the resulting bits
  /// are identical to a cold run, only the work differs.
  void rebind(const Graph& g, const SpanningTree& backbone,
              std::uint64_t seed, std::span<const EdgeId> keep_offtree = {},
              const HeatWarmStart* warm = nullptr);

  /// Checkpoint-restore companion to `rebind()`: stamps the telemetry
  /// scalars of a previously *finished* run onto the freshly rebound
  /// result and marks the engine done with `status` (which must be
  /// terminal), without running a single round. After
  /// `rebind(g, backbone, seed, offtree)` + `restore_result(...)` the
  /// engine's `result()`, `done()`, and `status()` match the engine that
  /// originally produced the checkpoint bit for bit — so a restored
  /// serving session answers quality queries correctly and its next
  /// warm-refine `rebind()` sees the identical previous selection.
  void restore_result(double lambda_min, double lambda_max,
                      double sigma2_estimate, bool reached_target,
                      StepStatus status);

  /// Reuse accounting of the most recent localized heat (re)build (zeros
  /// in power mode or before the first localized step). Read by the
  /// dynamic layer for UpdateStats / dynamic.heats.* metrics.
  [[nodiscard]] LocalizedHeatStats localized_heat_stats() const {
    return heat_stats_;
  }

  /// The localized per-edge heat cache, indexed by edge id (tree-edge and
  /// pre-kept slots are unspecified). Valid after a localized step; empty
  /// in power mode. Exposed for the dirty-set differential tests, which
  /// compare it bitwise against a cold stretch recompute.
  [[nodiscard]] std::span<const double> localized_heat_cache() const {
    return stretch_ready_ ? std::span<const double>(stretch_cache_)
                          : std::span<const double>{};
  }

 private:
  void ensure_backbone();
  void bind_backbone(const SpanningTree& backbone);
  void rearm_phase();
  /// (Re)builds the localized heat cache: full canonical stretch sweep
  /// cold, dirty-only patch after a warm rebind. Updates heat_stats_.
  void ensure_stretch();
  StepStatus step_impl_localized();
  void final_estimate_localized();
  /// Builds the L_P⁺ operator for the current sparsifier. When `panel` is
  /// non-null and the sparsifier supports a blocked multi-RHS apply (the
  /// tree-only rounds), `*panel` receives the panel form; otherwise it is
  /// left empty and callers fall back to column-wise solves.
  [[nodiscard]] LinOp make_solver(double* setup_seconds,
                                  PanelOp* panel = nullptr);
  void final_estimate();
  /// Stamps seconds, records, and notifies; returns on_round's verdict.
  bool finish_round(DensifyRound& stats, double seconds);
  void notify_stage(StageKind stage, double seconds);
  StepStatus step_impl();

  const Graph* g_;
  std::optional<Graph> owned_graph_;  ///< set by resparsify()
  SparsifyOptions opts_;
  StageObserver* observer_ = nullptr;

  std::optional<SpanningTree> owned_backbone_;
  const SpanningTree* external_backbone_ = nullptr;
  const SpanningTree* backbone_ = nullptr;  ///< active backbone (once built)
  std::optional<TreeSolver> tree_solver_;
  std::optional<TreePreconditioner> tree_precond_;

  CsrMatrix lg_;  ///< Laplacian of *g_, built once per (re)binding
  Rng rng_;

  // Engine-owned workspace, reused every round.
  std::vector<char> in_p_;       ///< sparsifier membership per edge id
  CsrMatrix lp_;                 ///< current L_P (non-tree-only rounds)
  AmgHierarchy amg_;             ///< current AMG hierarchy (kAmg only)
  EmbeddingWorkspace emb_ws_;    ///< power-iteration vectors
  OffTreeEmbedding emb_;         ///< off-tree heats, refilled in place

  // Localized-estimation state (EstimationMode::kLocalized only).
  std::vector<double> stretch_cache_;  ///< per-edge heat, indexed by edge id
  std::vector<char> stretch_dirty_;    ///< warm-rebind recompute flags
  bool stretch_ready_ = false;         ///< cache valid for current binding
  bool stretch_warm_pending_ = false;  ///< cache holds remapped prior heats
  LocalizedHeatStats heat_stats_;

  SparsifyResult result_;
  Index next_round_ = 0;         ///< global round counter (stats.round)
  Index rounds_this_phase_ = 0;  ///< rounds since ctor / last warm start
  bool done_ = false;
  StepStatus status_ = StepStatus::kAdvanced;
  double elapsed_seconds_ = 0.0;
};

}  // namespace ssp
