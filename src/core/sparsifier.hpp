#pragma once

/// \file sparsifier.hpp
/// Public entry points: similarity-aware spectral graph sparsification by
/// edge filtering (Feng, DAC 2018).
///
/// One-shot convenience wrapper (thin shim over the `ssp::Sparsifier`
/// engine in sparsifier_engine.hpp):
///
/// ```
/// ssp::Graph g = ...;                      // weighted, connected
/// const auto opts = ssp::SparsifyOptions{}
///                       .with_sigma2(100.0)   // target relative cond. #
///                       .with_seed(42);
/// const ssp::SparsifyResult r = ssp::sparsify(g, opts);
/// ssp::Graph p = r.extract(g);             // the sparsifier
/// // κ(L_G, L_P) ≈ r.sigma2_estimate ≤ opts.sigma2 (when reached_target)
/// ```
///
/// Staged engine flow — per-round control, stage observers, cancellation,
/// and warm-started re-sparsification (see sparsifier_engine.hpp):
///
/// ```
/// ssp::Sparsifier engine(g, opts);
/// engine.set_observer(&my_observer);       // on_round / on_stage hooks
/// engine.run();                            // or: while (!engine.done()) engine.step();
/// ssp::Graph p = engine.result().extract(engine.graph());
/// engine.refine(25.0);                     // tighten σ² — reuses the
/// engine.run();                            // backbone, workspace, solvers
/// ```
///
/// `SparsifyOptions` remains an aggregate for compatibility, but prefer the
/// `with_*` named setters (they validate eagerly) plus `validate()` over
/// poking fields directly; direct field writes bypass validation until the
/// engine constructor runs and may be restricted in a future release.
///
/// Pipeline (paper §3): low-stretch spanning-tree backbone → iterative
/// densification, each round estimating (λ_min, λ_max) of L_P⁺ L_G,
/// embedding off-tree edges by Joule heat, filtering by θ_σ, and adding a
/// small batch of mutually dissimilar survivors — until λ_max/λ_min ≤ σ².

#include <cstdint>
#include <vector>

#include "core/edge_filter.hpp"
#include "graph/graph.hpp"

namespace ssp {

/// Spanning-tree backbone algorithm (§3.1 step (a)).
enum class BackboneKind {
  kAkpw,         ///< AKPW-style low-stretch tree (default)
  kMaxWeight,    ///< Kruskal maximum-weight tree
  kShortestPath  ///< Dijkstra SPT from a max-degree center
};

/// Inner solver used to apply L_P⁺ during estimation/embedding (§3.7
/// step 1; the paper uses graph-theoretic AMG [13,24]).
enum class InnerSolverKind {
  kTreePcg,  ///< PCG preconditioned by the backbone tree (default)
  kAmg       ///< aggregation AMG V-cycles
};

/// How per-edge Joule heats (and the spectral bounds driving convergence)
/// are estimated each densification round.
enum class EstimationMode {
  /// The paper's smoothed JL embedding: r random probes pushed through t
  /// generalized power iterations against L_P⁺ L_G (default). Heats are a
  /// global function of the whole graph, so dynamic updates must recompute
  /// everything to stay bit-identical.
  kPower,
  /// Localized tree-stretch estimation: heat(e) := w_e · R_T(u,v), the
  /// exact Joule heat of the tree embedding (stretch.hpp), with
  /// λ̂_min = 1 (exact lower bound for subgraph sparsifiers) and
  /// λ̂_max = 1 + max remaining stretch (upper-bound surrogate via
  /// L_G ≼ L_T + Σ stretch). Per-edge heats depend only on the edge's own
  /// tree path, so the dynamic layer can reuse cached heats verbatim for
  /// every edge whose path escaped the batch — the basis of the localized
  /// incremental warm start. Rng- and thread-count-free by construction.
  kLocalized
};

struct SparsifyOptions {
  /// Target upper bound σ² on the relative condition number κ(L_G, L_P).
  double sigma2 = 100.0;
  BackboneKind backbone = BackboneKind::kAkpw;
  /// t — generalized power-iteration steps for the edge embedding.
  int power_steps = 2;
  /// r — random embedding vectors; 0 selects ceil(log2 n).
  Index num_vectors = 0;
  /// Densification rounds before giving up (per engine phase — each
  /// `refine()`/`resparsify()` warm start gets a fresh budget).
  Index max_rounds = 24;
  /// Edges added per round; 0 selects an adaptive cap — n/4 while the
  /// estimate is > 8x the target, n/16 for the refinement rounds
  /// ("small portions", §3.7).
  EdgeId max_edges_per_round = 0;
  SimilarityPolicy similarity = SimilarityPolicy::kNodeDisjoint;
  /// Per-endpoint budget for SimilarityPolicy::kBounded.
  Index node_cap = 2;
  /// Tree-PCG default: the backbone stays a subgraph of P, making an
  /// excellent preconditioner; the inner-solver ablation shows it matching
  /// or beating AMG in wall time across graph families.
  InnerSolverKind inner_solver = InnerSolverKind::kTreePcg;
  /// Relative tolerance of the inner L_P solves (heat ranking and λ_max
  /// estimation tolerate loose solves; see the inner-solver ablation).
  double solver_tolerance = 1e-4;
  /// Generalized power iterations for the λ_max estimate (§3.6.1).
  Index lambda_max_iterations = 10;
  /// Worker threads for the engine's own parallel stages (probe-vector
  /// embedding and per-edge accumulations; 0 = `ssp::default_threads()`,
  /// which honours the SSP_THREADS environment variable and falls back to
  /// `hardware_concurrency()`). Everything nested inside those stages —
  /// including row-parallel SpMV — is confined to the stage's workers, so
  /// `threads = 1` runs the whole embedding serially. Shared primitives
  /// invoked *outside* an engine stage (e.g. a top-level
  /// `CsrMatrix::multiply`) follow the process-wide default instead; use
  /// `ssp::set_default_threads()` / SSP_THREADS (as the tools' --threads
  /// flag does) to bound the entire process. The engine's determinism
  /// contract guarantees bit-identical results for every value — see
  /// sparsifier_engine.hpp.
  int threads = 0;
  std::uint64_t seed = 42;
  /// Heat/spectral estimation mode. kLocalized replaces the JL probe
  /// machinery with exact tree stretches — cheaper per round, cache-
  /// reusable across dynamic batches, and deterministic independent of
  /// seed and thread count. See EstimationMode.
  EstimationMode estimation = EstimationMode::kPower;

  /// Full cross-field validation; throws std::invalid_argument on the
  /// first violated constraint. Called by the engine constructor, so
  /// callers only need it to fail fast at configuration time.
  void validate() const;

  // Builder-style named setters. Each validates its argument eagerly and
  // returns *this so options chain fluently:
  //   auto opts = SparsifyOptions{}.with_sigma2(50).with_max_rounds(12);
  SparsifyOptions& with_sigma2(double value);
  SparsifyOptions& with_backbone(BackboneKind kind);
  SparsifyOptions& with_power_steps(int steps);
  SparsifyOptions& with_num_vectors(Index r);
  SparsifyOptions& with_max_rounds(Index rounds);
  SparsifyOptions& with_max_edges_per_round(EdgeId cap);
  SparsifyOptions& with_similarity(SimilarityPolicy policy);
  SparsifyOptions& with_node_cap(Index cap);
  SparsifyOptions& with_inner_solver(InnerSolverKind kind);
  SparsifyOptions& with_solver_tolerance(double tol);
  SparsifyOptions& with_lambda_max_iterations(Index iterations);
  SparsifyOptions& with_threads(int n);
  SparsifyOptions& with_seed(std::uint64_t value);
  SparsifyOptions& with_estimation(EstimationMode mode);
};

/// Telemetry of one densification round (paper §3.7), delivered live via
/// `StageObserver::on_round` and retained in `SparsifyResult::rounds`.
struct DensifyRound {
  Index round = 0;
  double lambda_min = 0.0;       ///< node-coloring estimate, Eq. (18)
  double lambda_max = 0.0;       ///< power-iteration estimate, §3.6.1
  double sigma2_estimate = 0.0;  ///< λ_max / λ_min before this round's adds
  double theta = 0.0;            ///< filter threshold θ_σ used, Eq. (15)
  EdgeId edges_added = 0;
  double seconds = 0.0;
};

struct SparsifyResult {
  /// Edge ids of G forming the sparsifier (backbone first, then additions
  /// in acceptance order).
  std::vector<EdgeId> edges;
  /// The backbone subset (n−1 ids) — always a prefix of `edges`.
  std::vector<EdgeId> tree_edges;
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  double sigma2_estimate = 0.0;  ///< final λ_max/λ_min estimate
  bool reached_target = false;
  /// Per-round telemetry. Deprecated in favour of a live
  /// `StageObserver::on_round` hook on the engine; kept populated for
  /// existing callers.
  std::vector<DensifyRound> rounds;
  double total_seconds = 0.0;

  /// Materializes the sparsifier as a finalized graph on g's vertex set.
  [[nodiscard]] Graph extract(const Graph& g) const {
    return g.edge_subgraph(edges);
  }
  /// |Es| including the backbone.
  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(edges.size());
  }
};

/// Runs the full similarity-aware sparsification pipeline on a connected,
/// finalized graph — constructs an `ssp::Sparsifier` engine, drives it to
/// completion, and returns its result. Throws std::invalid_argument for
/// bad options or a disconnected graph.
[[nodiscard]] SparsifyResult sparsify(const Graph& g,
                                      const SparsifyOptions& opts = {});

}  // namespace ssp
