#include "dynamic/dynamic_sparsifier.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "util/union_find.hpp"

namespace ssp {

// ---- DynamicOptions --------------------------------------------------------

void DynamicOptions::validate() const {
  base.validate();
  SSP_REQUIRE(rebuild_threshold >= 0.0 && std::isfinite(rebuild_threshold),
              "DynamicOptions: rebuild_threshold must be finite and >= 0");
}

DynamicOptions& DynamicOptions::with_base(SparsifyOptions opts) {
  opts.validate();
  base = std::move(opts);
  return *this;
}

DynamicOptions& DynamicOptions::with_rebuild_threshold(double fraction) {
  SSP_REQUIRE(fraction >= 0.0 && std::isfinite(fraction),
              "DynamicOptions: rebuild_threshold must be finite and >= 0");
  rebuild_threshold = fraction;
  return *this;
}

DynamicOptions& DynamicOptions::with_warm_refine(bool on) {
  warm_refine = on;
  return *this;
}

// ---- DynamicSparsifier -----------------------------------------------------

DynamicSparsifier::DynamicSparsifier(const Graph& g, DynamicOptions opts,
                                     DynamicObserver* observer)
    : opts_(std::move(opts)), graph_(g), observer_(observer) {
  opts_.validate();
  SSP_REQUIRE(g.finalized(), "DynamicSparsifier: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "DynamicSparsifier: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "DynamicSparsifier: graph must be connected");

  UpdateStats stats;
  stats.batch = 0;
  stats.dirty_fraction = 1.0;
  stats.route = UpdateRoute::kRebuild;

  WallTimer timer;
  backbone_ = max_weight_spanning_tree(graph_);
  tree_.emplace(graph_, backbone_->tree_edge_ids());
  notify_stage(DynamicStage::kTreeRepair, timer.seconds(), stats);

  timer.reset();
  SparsifyOptions engine_opts = opts_.base;
  engine_opts.seed = batch_seed(0);
  engine_.emplace(graph_, *backbone_, std::move(engine_opts));
  notify_stage(DynamicStage::kRebind, timer.seconds(), stats);

  timer.reset();
  engine_->run();
  notify_stage(DynamicStage::kSparsify, timer.seconds(), stats);

  const SparsifyResult& r = engine_->result();
  stats.graph_edges = graph_.num_edges();
  stats.sparsifier_edges = r.num_edges();
  stats.sigma2_estimate = r.sigma2_estimate;
  stats.reached_target = r.reached_target;
  for (const double s : stats.stage_seconds) stats.seconds += s;
  history_.push_back(stats);
  if (observer_ != nullptr) observer_->on_update(history_.back());
}

DynamicSparsifier::DynamicSparsifier(const Graph& g, DynamicOptions opts,
                                     const DynamicRestoreState& state,
                                     DynamicObserver* observer)
    : opts_(std::move(opts)), graph_(g), observer_(observer) {
  opts_.validate();
  SSP_REQUIRE(g.finalized(), "DynamicSparsifier: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "DynamicSparsifier: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "DynamicSparsifier: graph must be connected");
  SSP_REQUIRE(state.vertices == g.num_vertices() &&
                  state.edges == g.num_edges(),
              "restore: graph shape does not match the checkpoint (replay "
              "the journal to the checkpointed batch first)");
  SSP_REQUIRE(!state.history.empty(),
              "restore: checkpoint must include batch 0");

  // Backbone and repair state come straight from the checkpoint: the
  // stored ids are the canonical max-weight tree on this graph, so the
  // rebuilt MaxWeightTree continues repairing exactly where the
  // checkpointed instance left off (incremental ≡ cold contract).
  tree_.emplace(graph_, state.tree_edges);
  const std::span<const EdgeId> canon = tree_->canonical_edge_ids();
  backbone_.emplace(graph_, std::vector<EdgeId>(canon.begin(), canon.end()));

  // Re-arm the engine on the stored selection: rebind() pre-accepts the
  // off-tree keeps under the checkpointed batch's seed, restore_result()
  // stamps the terminal telemetry — no densification rounds run.
  const Index last_batch = static_cast<Index>(state.history.size()) - 1;
  SparsifyOptions engine_opts = opts_.base;
  engine_opts.seed = batch_seed(last_batch);
  engine_.emplace(graph_, *backbone_, std::move(engine_opts));
  engine_->rebind(graph_, *backbone_, batch_seed(last_batch),
                  state.offtree_edges);
  engine_->restore_result(state.lambda_min, state.lambda_max,
                          state.sigma2_estimate, state.reached_target,
                          state.status);
  history_ = state.history;
}

DynamicRestoreState DynamicSparsifier::restore_state() const {
  DynamicRestoreState state;
  state.vertices = graph_.num_vertices();
  state.edges = graph_.num_edges();
  const auto tree_ids = backbone_->tree_edge_ids();
  state.tree_edges.assign(tree_ids.begin(), tree_ids.end());
  const SparsifyResult& r = engine_->result();
  state.offtree_edges.assign(
      r.edges.begin() + static_cast<std::ptrdiff_t>(r.tree_edges.size()),
      r.edges.end());
  state.lambda_min = r.lambda_min;
  state.lambda_max = r.lambda_max;
  state.sigma2_estimate = r.sigma2_estimate;
  state.reached_target = r.reached_target;
  state.status = engine_->status();
  state.history = history_;
  return state;
}

const SparsifyResult& DynamicSparsifier::result() const {
  return engine_->result();
}

SparsifyOptions DynamicSparsifier::cold_equivalent_options() const {
  SparsifyOptions opts = opts_.base;
  opts.backbone = BackboneKind::kMaxWeight;
  opts.seed = batch_seed(static_cast<Index>(history_.size()) - 1);
  return opts;
}

namespace {

// Indexed by DynamicStage; keep in sync with the enum in the header.
constexpr const char* kDynSpanName[kNumDynamicStages] = {
    "dynamic.validate", "dynamic.apply-graph", "dynamic.tree-repair",
    "dynamic.rebind", "dynamic.sparsify"};
constexpr obs::MetricId kDynStageNs[kNumDynamicStages] = {
    "dynamic.stage.validate.ns", "dynamic.stage.apply-graph.ns",
    "dynamic.stage.tree-repair.ns", "dynamic.stage.rebind.ns",
    "dynamic.stage.sparsify.ns"};

}  // namespace

void DynamicSparsifier::notify_stage(DynamicStage stage, double seconds,
                                     UpdateStats& stats) const {
  stats.stage_seconds[static_cast<std::size_t>(stage)] += seconds;
  // Telemetry only — consumes no RNG and never feeds back into routing.
  const auto idx = static_cast<int>(stage);
  obs::counter_add(kDynStageNs[idx], static_cast<std::uint64_t>(seconds * 1e9));
  obs::TraceScope span(kDynSpanName[idx], seconds);
  if (observer_ != nullptr) observer_->on_dynamic_stage(stage, seconds);
}

void DynamicSparsifier::validate_batch(const UpdateBatch& batch) const {
  const EdgeId m = graph_.num_edges();
  std::vector<char> touched(static_cast<std::size_t>(m), 0);
  for (const EdgeId e : batch.remove) {
    SSP_REQUIRE(e >= 0 && e < m, "apply: remove id out of range");
    SSP_REQUIRE(touched[static_cast<std::size_t>(e)] == 0,
                "apply: duplicate remove id");
    touched[static_cast<std::size_t>(e)] = 1;
  }
  for (const WeightUpdate& wu : batch.reweight) {
    SSP_REQUIRE(wu.edge >= 0 && wu.edge < m,
                "apply: reweight id out of range");
    SSP_REQUIRE(touched[static_cast<std::size_t>(wu.edge)] == 0,
                "apply: edge removed or reweighted twice in one batch");
    touched[static_cast<std::size_t>(wu.edge)] = 1;
    SSP_REQUIRE(wu.weight > 0.0 && std::isfinite(wu.weight),
                "apply: reweight value must be positive and finite");
  }
  const Vertex n = graph_.num_vertices();
  for (const Edge& e : batch.insert) {
    SSP_REQUIRE(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                "apply: insert endpoint out of range");
    SSP_REQUIRE(e.u != e.v, "apply: insert would create a self-loop");
    SSP_REQUIRE(e.weight > 0.0 && std::isfinite(e.weight),
                "apply: insert weight must be positive and finite");
  }
  if (batch.remove.empty()) return;
  // Connectivity pre-check so a disconnecting batch is rejected before any
  // state mutates: the surviving edges plus the inserted ones must still
  // span one component.
  UnionFind& uf = uf_scratch_;
  uf.reset(static_cast<Index>(n));
  for (EdgeId e = 0; e < m; ++e) {
    // `touched` marks removals and reweights; reweighted edges survive.
    if (touched[static_cast<std::size_t>(e)] != 0) continue;
    const Edge& edge = graph_.edge(e);
    uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
  }
  for (const WeightUpdate& wu : batch.reweight) {
    const Edge& edge = graph_.edge(wu.edge);
    uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
  }
  for (const Edge& e : batch.insert) {
    uf.unite(static_cast<Index>(e.u), static_cast<Index>(e.v));
  }
  SSP_REQUIRE(uf.num_sets() == 1, "apply: batch would disconnect the graph");
}

void DynamicSparsifier::compute_dirty_mask(
    std::span<const EdgeId> touched_new_ids, std::span<const EdgeId> remap,
    EdgeId old_m) {
  // Runs on the OUTGOING backbone_ — still the previous batch's tree,
  // over the previous edge numbering. The final tree keeps every
  // previous-tree edge the repair did not record, so a surviving edge's
  // path (and cached stretch) changed iff its PREVIOUS-tree path crossed
  // a recorded edge — an exact rule, tested with labels instead of
  // per-edge path walks.
  const EdgeId new_m = graph_.num_edges();
  const Vertex n = graph_.num_vertices();
  dirty_scratch_.assign(static_cast<std::size_t>(new_m), 0);
  dirty_tree_scratch_.assign(static_cast<std::size_t>(old_m), 0);
  for (const EdgeId e : tree_->dirty_tree_edges()) {
    // Ids >= old_m are same-batch inserts that were swapped out again;
    // they were never previous-tree edges and are covered by the
    // touched-id sweep below.
    if (e < old_m) dirty_tree_scratch_[static_cast<std::size_t>(e)] = 1;
  }

  // Innermost-dirty-ancestor labels over the previous tree's BFS order
  // (parents first): label[v] identifies the deepest recorded tree edge
  // on v's old root path; a path crosses a recorded edge iff its
  // endpoints' labels differ. One O(n) pass replaces per-edge walks.
  const auto parent = backbone_->parents();
  const auto parent_eid = backbone_->parent_edges();
  label_scratch_.assign(static_cast<std::size_t>(n), kInvalidEdge);
  for (const Vertex v : backbone_->bfs_order()) {
    const EdgeId pe = parent_eid[static_cast<std::size_t>(v)];
    if (pe == kInvalidEdge) continue;  // root keeps kInvalidEdge
    label_scratch_[static_cast<std::size_t>(v)] =
        dirty_tree_scratch_[static_cast<std::size_t>(pe)] != 0
            ? pe
            : label_scratch_[static_cast<std::size_t>(
                  parent[static_cast<std::size_t>(v)])];
  }

  // Label-test every surviving pre-batch edge at its post-compaction id.
  // Endpoints are compaction-invariant, so the new edge record serves.
  // (Slots that are tree edges in the NEW tree are never read by the
  // warm start — flag values there are irrelevant; previous-tree edges
  // that left the tree are recorded, so the test flags them dirty.)
  for (EdgeId e = 0; e < old_m; ++e) {
    const EdgeId ne = remap.empty() ? e : remap[static_cast<std::size_t>(e)];
    if (ne == kInvalidEdge) continue;  // removed this batch
    const Edge& edge = graph_.edge(ne);
    if (label_scratch_[static_cast<std::size_t>(edge.u)] !=
        label_scratch_[static_cast<std::size_t>(edge.v)]) {
      dirty_scratch_[static_cast<std::size_t>(ne)] = 1;
    }
  }

  // Batch-touched edges (reweighted / inserted) are dirty regardless of
  // their path: their own weight changed or they have no cache slot.
  for (const EdgeId e : touched_new_ids) {
    dirty_scratch_[static_cast<std::size_t>(e)] = 1;
  }
}

void DynamicSparsifier::rebuild_backbone_cold() {
  backbone_ = max_weight_spanning_tree(graph_);
  tree_.emplace(graph_, backbone_->tree_edge_ids());
}

UpdateStats DynamicSparsifier::apply(const UpdateBatch& batch) {
  UpdateStats stats;
  stats.batch = static_cast<Index>(history_.size());
  stats.inserted = static_cast<EdgeId>(batch.insert.size());
  stats.removed = static_cast<EdgeId>(batch.remove.size());
  stats.reweighted = static_cast<EdgeId>(batch.reweight.size());

  WallTimer timer;
  validate_batch(batch);
  const EdgeId old_m = graph_.num_edges();  // pre-batch numbering bound
  const EdgeId final_edges = graph_.num_edges() - stats.removed +
                             stats.inserted;
  stats.dirty_fraction = static_cast<double>(batch.size()) /
                         static_cast<double>(std::max<EdgeId>(1, final_edges));
  const bool rebuild = stats.dirty_fraction >= opts_.rebuild_threshold;
  const bool localized =
      opts_.base.estimation == EstimationMode::kLocalized && !rebuild;
  notify_stage(DynamicStage::kValidate, timer.seconds(), stats);

  // Open the tree's dirty-tracking window before any repair hook runs;
  // batch-touched edge ids (reweighted / inserted, pre-removal numbering)
  // are collected alongside — both feed the localized warm start.
  if (!rebuild) tree_->begin_batch();
  std::vector<EdgeId> touched;
  if (localized) {
    touched.reserve(batch.reweight.size() + batch.insert.size());
  }

  // Snapshot the previous off-tree selection for the warm-refine route
  // (the backbone is always the edge-list prefix).
  std::vector<EdgeId> keep;
  if (opts_.warm_refine && !rebuild) {
    const SparsifyResult& prev = engine_->result();
    keep.assign(prev.edges.begin() +
                    static_cast<std::ptrdiff_t>(prev.tree_edges.size()),
                prev.edges.end());
  }

  // Mutate the graph and repair the backbone in lockstep. Inserts land
  // before removals so a batch may delete a bridge it replaces; removal
  // compaction then renumbers, keeping inserted edges at the tail.
  timer.reset();
  double repair_seconds = 0.0;
  for (const WeightUpdate& wu : batch.reweight) {
    const double old_weight = graph_.edge(wu.edge).weight;
    graph_.set_weight(wu.edge, wu.weight);
    if (localized) touched.push_back(wu.edge);
    if (!rebuild) {
      const WallTimer repair;
      if (tree_->after_reweight(wu.edge, old_weight)) ++stats.tree_swaps;
      repair_seconds += repair.seconds();
    }
  }
  for (const Edge& e : batch.insert) {
    const EdgeId id = graph_.add_edge(e.u, e.v, e.weight);
    if (localized) touched.push_back(id);
    if (!rebuild) {
      const WallTimer repair;
      if (tree_->after_insert(id)) ++stats.tree_swaps;
      repair_seconds += repair.seconds();
    }
  }
  std::vector<EdgeId> remap;
  if (!batch.remove.empty()) {
    std::vector<char> deleted(static_cast<std::size_t>(graph_.num_edges()),
                              0);
    for (const EdgeId e : batch.remove) {
      deleted[static_cast<std::size_t>(e)] = 1;
      if (!rebuild && tree_->contains(e)) ++stats.tree_removed;
    }
    if (!rebuild) {
      const WallTimer repair;
      stats.tree_swaps += tree_->after_deletions(deleted);
      repair_seconds += repair.seconds();
    }
    remap = graph_.remove_edges(batch.remove);
    if (!rebuild) {
      const WallTimer repair;
      tree_->remap_ids(remap);
      repair_seconds += repair.seconds();
      if (!keep.empty()) {
        std::size_t out = 0;
        for (const EdgeId e : keep) {
          const EdgeId mapped = remap[static_cast<std::size_t>(e)];
          if (mapped != kInvalidEdge) keep[out++] = mapped;
        }
        keep.resize(out);
      }
      if (!touched.empty()) {
        // Touched ids were recorded pre-compaction; a batch never removes
        // an edge it also reweights or inserts, so every id survives.
        for (EdgeId& e : touched) {
          e = remap[static_cast<std::size_t>(e)];
          SSP_ASSERT(e != kInvalidEdge, "touched edge removed in same batch");
        }
      }
    }
  }
  graph_.finalize();
  notify_stage(DynamicStage::kApplyGraph, timer.seconds() - repair_seconds,
               stats);

  // Localized warm start: label the OUTGOING backbone (still the
  // previous tree) with the repair's recorded dirty edges and flag every
  // surviving edge whose old path crossed one, plus the batch-touched
  // ids — then hand the mask + id remap to the engine so clean heats
  // carry over bit-for-bit. This must precede the backbone swap below.
  timer.reset();
  HeatWarmStart warm;
  const HeatWarmStart* warm_ptr = nullptr;
  if (localized) {
    compute_dirty_mask(touched, remap, old_m);
    warm.old_to_new = remap;  // empty span == identity (no removals)
    warm.dirty = dirty_scratch_;
    warm_ptr = &warm;
  }
  const double mask_seconds = timer.seconds();

  // Re-root the repaired backbone (or recompute it cold) on the updated
  // graph; canonical order keeps the tree-edge prefix bit-identical to a
  // cold Kruskal rebuild.
  timer.reset();
  if (rebuild) {
    rebuild_backbone_cold();
    stats.route = UpdateRoute::kRebuild;
    keep.clear();
  } else {
    // A batch that inserts nothing, removes nothing, and recorded no
    // dirty tree edge left the backbone bit-valid: same edge ids, same
    // tree-edge set, same tree-edge weights — every SpanningTree array
    // (and the canonical prefix order) is unchanged, so skip the O(n)
    // re-root. Reweight-only batches touching off-tree edges — the
    // parameter-update pattern of circuit simulation — hit this on
    // nearly every batch.
    const bool backbone_intact = batch.remove.empty() &&
                                 batch.insert.empty() &&
                                 tree_->dirty_tree_edges().empty();
    if (!backbone_intact) {
      const std::span<const EdgeId> canon = tree_->canonical_edge_ids();
      backbone_.emplace(graph_,
                        std::vector<EdgeId>(canon.begin(), canon.end()));
    }
    stats.route = (batch.remove.empty() && batch.insert.empty() &&
                   stats.tree_swaps == 0)
                      ? UpdateRoute::kResparsify
                      : UpdateRoute::kTreeRepair;
  }
  notify_stage(DynamicStage::kTreeRepair, repair_seconds + timer.seconds(),
               stats);

  // Warm-refine keeps may have been swapped into the new tree; they are
  // already covered by the backbone prefix then.
  if (!keep.empty()) {
    std::size_t out = 0;
    for (const EdgeId e : keep) {
      if (!backbone_->contains(e)) keep[out++] = e;
    }
    keep.resize(out);
  }

  timer.reset();
  engine_->rebind(graph_, *backbone_,
                  batch_seed(static_cast<Index>(history_.size())), keep,
                  warm_ptr);
  notify_stage(DynamicStage::kRebind, mask_seconds + timer.seconds(), stats);

  timer.reset();
  engine_->run();
  notify_stage(DynamicStage::kSparsify, timer.seconds(), stats);

  const SparsifyResult& r = engine_->result();
  stats.graph_edges = graph_.num_edges();
  stats.sparsifier_edges = r.num_edges();
  stats.sigma2_estimate = r.sigma2_estimate;
  stats.reached_target = r.reached_target;
  const LocalizedHeatStats heats = engine_->localized_heat_stats();
  stats.heats_reused = heats.reused;
  stats.heats_recomputed = heats.recomputed;
  for (const double s : stats.stage_seconds) stats.seconds += s;
  obs::counter_add("dynamic.batches", 1);
  obs::counter_add("dynamic.tree_swaps",
                   static_cast<std::uint64_t>(stats.tree_swaps));
  obs::counter_add("dynamic.heats.reused",
                   static_cast<std::uint64_t>(stats.heats_reused));
  obs::counter_add("dynamic.heats.recomputed",
                   static_cast<std::uint64_t>(stats.heats_recomputed));
  switch (stats.route) {
    case UpdateRoute::kResparsify:
      obs::counter_add("dynamic.route.resparsify", 1);
      break;
    case UpdateRoute::kTreeRepair:
      obs::counter_add("dynamic.route.tree-repair", 1);
      break;
    case UpdateRoute::kRebuild:
      obs::counter_add("dynamic.route.rebuild", 1);
      break;
  }
  history_.push_back(stats);
  if (observer_ != nullptr) observer_->on_update(history_.back());
  return history_.back();
}

UpdateStats DynamicSparsifier::insert_edges(std::span<const Edge> edges) {
  UpdateBatch batch;
  batch.insert.assign(edges.begin(), edges.end());
  return apply(batch);
}

UpdateStats DynamicSparsifier::delete_edges(
    std::span<const EdgeId> edge_ids) {
  UpdateBatch batch;
  batch.remove.assign(edge_ids.begin(), edge_ids.end());
  return apply(batch);
}

UpdateStats DynamicSparsifier::reweight_edges(
    std::span<const WeightUpdate> updates) {
  UpdateBatch batch;
  batch.reweight.assign(updates.begin(), updates.end());
  return apply(batch);
}

void apply_batch_to_graph(Graph& g, const UpdateBatch& batch) {
  for (const WeightUpdate& wu : batch.reweight) {
    g.set_weight(wu.edge, wu.weight);
  }
  for (const Edge& e : batch.insert) g.add_edge(e.u, e.v, e.weight);
  if (!batch.remove.empty()) g.remove_edges(batch.remove);
  g.finalize();
}

DynamicResult dynamic_sparsify(const Graph& g,
                               std::span<const UpdateBatch> script,
                               const DynamicOptions& opts) {
  DynamicSparsifier dyn(g, opts);
  for (const UpdateBatch& batch : script) dyn.apply(batch);
  return DynamicResult{dyn.graph(), dyn.result(), dyn.history()};
}

}  // namespace ssp
