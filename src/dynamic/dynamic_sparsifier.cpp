#include "dynamic/dynamic_sparsifier.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/connectivity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tree/kruskal.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "util/union_find.hpp"

namespace ssp {

// ---- DynamicOptions --------------------------------------------------------

void DynamicOptions::validate() const {
  base.validate();
  SSP_REQUIRE(rebuild_threshold >= 0.0 && std::isfinite(rebuild_threshold),
              "DynamicOptions: rebuild_threshold must be finite and >= 0");
}

DynamicOptions& DynamicOptions::with_base(SparsifyOptions opts) {
  opts.validate();
  base = std::move(opts);
  return *this;
}

DynamicOptions& DynamicOptions::with_rebuild_threshold(double fraction) {
  SSP_REQUIRE(fraction >= 0.0 && std::isfinite(fraction),
              "DynamicOptions: rebuild_threshold must be finite and >= 0");
  rebuild_threshold = fraction;
  return *this;
}

DynamicOptions& DynamicOptions::with_warm_refine(bool on) {
  warm_refine = on;
  return *this;
}

// ---- DynamicSparsifier -----------------------------------------------------

DynamicSparsifier::DynamicSparsifier(const Graph& g, DynamicOptions opts,
                                     DynamicObserver* observer)
    : opts_(std::move(opts)), graph_(g), observer_(observer) {
  opts_.validate();
  SSP_REQUIRE(g.finalized(), "DynamicSparsifier: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "DynamicSparsifier: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "DynamicSparsifier: graph must be connected");

  UpdateStats stats;
  stats.batch = 0;
  stats.dirty_fraction = 1.0;
  stats.route = UpdateRoute::kRebuild;

  WallTimer timer;
  backbone_ = max_weight_spanning_tree(graph_);
  tree_.emplace(graph_, backbone_->tree_edge_ids());
  notify_stage(DynamicStage::kTreeRepair, timer.seconds(), stats);

  timer.reset();
  SparsifyOptions engine_opts = opts_.base;
  engine_opts.seed = batch_seed(0);
  engine_.emplace(graph_, *backbone_, std::move(engine_opts));
  notify_stage(DynamicStage::kRebind, timer.seconds(), stats);

  timer.reset();
  engine_->run();
  notify_stage(DynamicStage::kSparsify, timer.seconds(), stats);

  const SparsifyResult& r = engine_->result();
  stats.graph_edges = graph_.num_edges();
  stats.sparsifier_edges = r.num_edges();
  stats.sigma2_estimate = r.sigma2_estimate;
  stats.reached_target = r.reached_target;
  for (const double s : stats.stage_seconds) stats.seconds += s;
  history_.push_back(stats);
  if (observer_ != nullptr) observer_->on_update(history_.back());
}

DynamicSparsifier::DynamicSparsifier(const Graph& g, DynamicOptions opts,
                                     const DynamicRestoreState& state,
                                     DynamicObserver* observer)
    : opts_(std::move(opts)), graph_(g), observer_(observer) {
  opts_.validate();
  SSP_REQUIRE(g.finalized(), "DynamicSparsifier: graph must be finalized");
  SSP_REQUIRE(g.num_vertices() >= 2, "DynamicSparsifier: need >= 2 vertices");
  SSP_REQUIRE(is_connected(g), "DynamicSparsifier: graph must be connected");
  SSP_REQUIRE(state.vertices == g.num_vertices() &&
                  state.edges == g.num_edges(),
              "restore: graph shape does not match the checkpoint (replay "
              "the journal to the checkpointed batch first)");
  SSP_REQUIRE(!state.history.empty(),
              "restore: checkpoint must include batch 0");

  // Backbone and repair state come straight from the checkpoint: the
  // stored ids are the canonical max-weight tree on this graph, so the
  // rebuilt MaxWeightTree continues repairing exactly where the
  // checkpointed instance left off (incremental ≡ cold contract).
  tree_.emplace(graph_, state.tree_edges);
  backbone_.emplace(graph_, tree_->canonical_edge_ids());

  // Re-arm the engine on the stored selection: rebind() pre-accepts the
  // off-tree keeps under the checkpointed batch's seed, restore_result()
  // stamps the terminal telemetry — no densification rounds run.
  const Index last_batch = static_cast<Index>(state.history.size()) - 1;
  SparsifyOptions engine_opts = opts_.base;
  engine_opts.seed = batch_seed(last_batch);
  engine_.emplace(graph_, *backbone_, std::move(engine_opts));
  engine_->rebind(graph_, *backbone_, batch_seed(last_batch),
                  state.offtree_edges);
  engine_->restore_result(state.lambda_min, state.lambda_max,
                          state.sigma2_estimate, state.reached_target,
                          state.status);
  history_ = state.history;
}

DynamicRestoreState DynamicSparsifier::restore_state() const {
  DynamicRestoreState state;
  state.vertices = graph_.num_vertices();
  state.edges = graph_.num_edges();
  const auto tree_ids = backbone_->tree_edge_ids();
  state.tree_edges.assign(tree_ids.begin(), tree_ids.end());
  const SparsifyResult& r = engine_->result();
  state.offtree_edges.assign(
      r.edges.begin() + static_cast<std::ptrdiff_t>(r.tree_edges.size()),
      r.edges.end());
  state.lambda_min = r.lambda_min;
  state.lambda_max = r.lambda_max;
  state.sigma2_estimate = r.sigma2_estimate;
  state.reached_target = r.reached_target;
  state.status = engine_->status();
  state.history = history_;
  return state;
}

const SparsifyResult& DynamicSparsifier::result() const {
  return engine_->result();
}

SparsifyOptions DynamicSparsifier::cold_equivalent_options() const {
  SparsifyOptions opts = opts_.base;
  opts.backbone = BackboneKind::kMaxWeight;
  opts.seed = batch_seed(static_cast<Index>(history_.size()) - 1);
  return opts;
}

namespace {

// Indexed by DynamicStage; keep in sync with the enum in the header.
constexpr const char* kDynSpanName[kNumDynamicStages] = {
    "dynamic.validate", "dynamic.apply-graph", "dynamic.tree-repair",
    "dynamic.rebind", "dynamic.sparsify"};
constexpr obs::MetricId kDynStageNs[kNumDynamicStages] = {
    "dynamic.stage.validate.ns", "dynamic.stage.apply-graph.ns",
    "dynamic.stage.tree-repair.ns", "dynamic.stage.rebind.ns",
    "dynamic.stage.sparsify.ns"};

}  // namespace

void DynamicSparsifier::notify_stage(DynamicStage stage, double seconds,
                                     UpdateStats& stats) const {
  stats.stage_seconds[static_cast<std::size_t>(stage)] += seconds;
  // Telemetry only — consumes no RNG and never feeds back into routing.
  const auto idx = static_cast<int>(stage);
  obs::counter_add(kDynStageNs[idx], static_cast<std::uint64_t>(seconds * 1e9));
  obs::TraceScope span(kDynSpanName[idx], seconds);
  if (observer_ != nullptr) observer_->on_dynamic_stage(stage, seconds);
}

void DynamicSparsifier::validate_batch(const UpdateBatch& batch) const {
  const EdgeId m = graph_.num_edges();
  std::vector<char> touched(static_cast<std::size_t>(m), 0);
  for (const EdgeId e : batch.remove) {
    SSP_REQUIRE(e >= 0 && e < m, "apply: remove id out of range");
    SSP_REQUIRE(touched[static_cast<std::size_t>(e)] == 0,
                "apply: duplicate remove id");
    touched[static_cast<std::size_t>(e)] = 1;
  }
  for (const WeightUpdate& wu : batch.reweight) {
    SSP_REQUIRE(wu.edge >= 0 && wu.edge < m,
                "apply: reweight id out of range");
    SSP_REQUIRE(touched[static_cast<std::size_t>(wu.edge)] == 0,
                "apply: edge removed or reweighted twice in one batch");
    touched[static_cast<std::size_t>(wu.edge)] = 1;
    SSP_REQUIRE(wu.weight > 0.0 && std::isfinite(wu.weight),
                "apply: reweight value must be positive and finite");
  }
  const Vertex n = graph_.num_vertices();
  for (const Edge& e : batch.insert) {
    SSP_REQUIRE(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                "apply: insert endpoint out of range");
    SSP_REQUIRE(e.u != e.v, "apply: insert would create a self-loop");
    SSP_REQUIRE(e.weight > 0.0 && std::isfinite(e.weight),
                "apply: insert weight must be positive and finite");
  }
  if (batch.remove.empty()) return;
  // Connectivity pre-check so a disconnecting batch is rejected before any
  // state mutates: the surviving edges plus the inserted ones must still
  // span one component.
  UnionFind& uf = uf_scratch_;
  uf.reset(static_cast<Index>(n));
  for (EdgeId e = 0; e < m; ++e) {
    // `touched` marks removals and reweights; reweighted edges survive.
    if (touched[static_cast<std::size_t>(e)] != 0) continue;
    const Edge& edge = graph_.edge(e);
    uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
  }
  for (const WeightUpdate& wu : batch.reweight) {
    const Edge& edge = graph_.edge(wu.edge);
    uf.unite(static_cast<Index>(edge.u), static_cast<Index>(edge.v));
  }
  for (const Edge& e : batch.insert) {
    uf.unite(static_cast<Index>(e.u), static_cast<Index>(e.v));
  }
  SSP_REQUIRE(uf.num_sets() == 1, "apply: batch would disconnect the graph");
}

void DynamicSparsifier::rebuild_backbone_cold() {
  backbone_ = max_weight_spanning_tree(graph_);
  tree_.emplace(graph_, backbone_->tree_edge_ids());
}

UpdateStats DynamicSparsifier::apply(const UpdateBatch& batch) {
  UpdateStats stats;
  stats.batch = static_cast<Index>(history_.size());
  stats.inserted = static_cast<EdgeId>(batch.insert.size());
  stats.removed = static_cast<EdgeId>(batch.remove.size());
  stats.reweighted = static_cast<EdgeId>(batch.reweight.size());

  WallTimer timer;
  validate_batch(batch);
  const EdgeId final_edges = graph_.num_edges() - stats.removed +
                             stats.inserted;
  stats.dirty_fraction = static_cast<double>(batch.size()) /
                         static_cast<double>(std::max<EdgeId>(1, final_edges));
  const bool rebuild = stats.dirty_fraction >= opts_.rebuild_threshold;
  notify_stage(DynamicStage::kValidate, timer.seconds(), stats);

  // Snapshot the previous off-tree selection for the warm-refine route
  // (the backbone is always the edge-list prefix).
  std::vector<EdgeId> keep;
  if (opts_.warm_refine && !rebuild) {
    const SparsifyResult& prev = engine_->result();
    keep.assign(prev.edges.begin() +
                    static_cast<std::ptrdiff_t>(prev.tree_edges.size()),
                prev.edges.end());
  }

  // Mutate the graph and repair the backbone in lockstep. Inserts land
  // before removals so a batch may delete a bridge it replaces; removal
  // compaction then renumbers, keeping inserted edges at the tail.
  timer.reset();
  double repair_seconds = 0.0;
  for (const WeightUpdate& wu : batch.reweight) {
    const double old_weight = graph_.edge(wu.edge).weight;
    graph_.set_weight(wu.edge, wu.weight);
    if (!rebuild) {
      const WallTimer repair;
      if (tree_->after_reweight(wu.edge, old_weight)) ++stats.tree_swaps;
      repair_seconds += repair.seconds();
    }
  }
  for (const Edge& e : batch.insert) {
    const EdgeId id = graph_.add_edge(e.u, e.v, e.weight);
    if (!rebuild) {
      const WallTimer repair;
      if (tree_->after_insert(id)) ++stats.tree_swaps;
      repair_seconds += repair.seconds();
    }
  }
  if (!batch.remove.empty()) {
    std::vector<char> deleted(static_cast<std::size_t>(graph_.num_edges()),
                              0);
    for (const EdgeId e : batch.remove) {
      deleted[static_cast<std::size_t>(e)] = 1;
      if (!rebuild && tree_->contains(e)) ++stats.tree_removed;
    }
    if (!rebuild) {
      const WallTimer repair;
      stats.tree_swaps += tree_->after_deletions(deleted);
      repair_seconds += repair.seconds();
    }
    const std::vector<EdgeId> remap = graph_.remove_edges(batch.remove);
    if (!rebuild) {
      const WallTimer repair;
      tree_->remap_ids(remap);
      repair_seconds += repair.seconds();
      if (!keep.empty()) {
        std::size_t out = 0;
        for (const EdgeId e : keep) {
          const EdgeId mapped = remap[static_cast<std::size_t>(e)];
          if (mapped != kInvalidEdge) keep[out++] = mapped;
        }
        keep.resize(out);
      }
    }
  }
  graph_.finalize();
  notify_stage(DynamicStage::kApplyGraph, timer.seconds() - repair_seconds,
               stats);

  // Re-root the repaired backbone (or recompute it cold) on the updated
  // graph; canonical order keeps the tree-edge prefix bit-identical to a
  // cold Kruskal rebuild.
  timer.reset();
  if (rebuild) {
    rebuild_backbone_cold();
    stats.route = UpdateRoute::kRebuild;
    keep.clear();
  } else {
    backbone_.emplace(graph_, tree_->canonical_edge_ids());
    stats.route = (batch.remove.empty() && batch.insert.empty() &&
                   stats.tree_swaps == 0)
                      ? UpdateRoute::kResparsify
                      : UpdateRoute::kTreeRepair;
  }
  notify_stage(DynamicStage::kTreeRepair, repair_seconds + timer.seconds(),
               stats);

  // Warm-refine keeps may have been swapped into the new tree; they are
  // already covered by the backbone prefix then.
  if (!keep.empty()) {
    std::size_t out = 0;
    for (const EdgeId e : keep) {
      if (!backbone_->contains(e)) keep[out++] = e;
    }
    keep.resize(out);
  }

  timer.reset();
  engine_->rebind(graph_, *backbone_,
                  batch_seed(static_cast<Index>(history_.size())), keep);
  notify_stage(DynamicStage::kRebind, timer.seconds(), stats);

  timer.reset();
  engine_->run();
  notify_stage(DynamicStage::kSparsify, timer.seconds(), stats);

  const SparsifyResult& r = engine_->result();
  stats.graph_edges = graph_.num_edges();
  stats.sparsifier_edges = r.num_edges();
  stats.sigma2_estimate = r.sigma2_estimate;
  stats.reached_target = r.reached_target;
  for (const double s : stats.stage_seconds) stats.seconds += s;
  obs::counter_add("dynamic.batches", 1);
  obs::counter_add("dynamic.tree_swaps",
                   static_cast<std::uint64_t>(stats.tree_swaps));
  switch (stats.route) {
    case UpdateRoute::kResparsify:
      obs::counter_add("dynamic.route.resparsify", 1);
      break;
    case UpdateRoute::kTreeRepair:
      obs::counter_add("dynamic.route.tree-repair", 1);
      break;
    case UpdateRoute::kRebuild:
      obs::counter_add("dynamic.route.rebuild", 1);
      break;
  }
  history_.push_back(stats);
  if (observer_ != nullptr) observer_->on_update(history_.back());
  return history_.back();
}

UpdateStats DynamicSparsifier::insert_edges(std::span<const Edge> edges) {
  UpdateBatch batch;
  batch.insert.assign(edges.begin(), edges.end());
  return apply(batch);
}

UpdateStats DynamicSparsifier::delete_edges(
    std::span<const EdgeId> edge_ids) {
  UpdateBatch batch;
  batch.remove.assign(edge_ids.begin(), edge_ids.end());
  return apply(batch);
}

UpdateStats DynamicSparsifier::reweight_edges(
    std::span<const WeightUpdate> updates) {
  UpdateBatch batch;
  batch.reweight.assign(updates.begin(), updates.end());
  return apply(batch);
}

void apply_batch_to_graph(Graph& g, const UpdateBatch& batch) {
  for (const WeightUpdate& wu : batch.reweight) {
    g.set_weight(wu.edge, wu.weight);
  }
  for (const Edge& e : batch.insert) g.add_edge(e.u, e.v, e.weight);
  if (!batch.remove.empty()) g.remove_edges(batch.remove);
  g.finalize();
}

DynamicResult dynamic_sparsify(const Graph& g,
                               std::span<const UpdateBatch> script,
                               const DynamicOptions& opts) {
  DynamicSparsifier dyn(g, opts);
  for (const UpdateBatch& batch : script) dyn.apply(batch);
  return DynamicResult{dyn.graph(), dyn.result(), dyn.history()};
}

}  // namespace ssp
