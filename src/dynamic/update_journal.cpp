#include "dynamic/update_journal.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dynamic/journal_wire.hpp"

namespace ssp {

namespace {

/// Resolve-time failure: names the op (canonical spelling) and, when the
/// op was parsed from a journal/wire stream, its 1-based source line.
[[noreturn]] void resolve_error(const JournalOp& op, const std::string& what) {
  std::ostringstream os;
  os << "update journal";
  if (op.line > 0) os << ", line " << op.line;
  os << ": " << what << " (op: \"" << format_journal_op(op) << "\")";
  throw std::runtime_error(os.str());
}

}  // namespace

std::vector<JournalBatch> parse_update_journal(std::istream& in) {
  std::vector<JournalBatch> batches;
  JournalBatch current;
  std::string line;
  Index line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const JournalLine parsed = parse_journal_line(line, line_no);
    switch (parsed.kind) {
      case JournalLine::Kind::kBlank:
        break;
      case JournalLine::Kind::kCommit:
        // Empty commits are ignored: a stray blank batch would still cost
        // a full re-sparsification and shift every later per-batch seed.
        if (!current.ops.empty()) {
          batches.push_back(std::move(current));
          current = JournalBatch{};
        }
        break;
      case JournalLine::Kind::kOp:
        current.ops.push_back(parsed.op);
        break;
    }
  }
  if (!current.ops.empty()) batches.push_back(std::move(current));
  return batches;
}

std::vector<JournalBatch> load_update_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open update journal: " + path);
  }
  return parse_update_journal(in);
}

UpdateBatch resolve_journal_batch(const Graph& g, const JournalBatch& batch) {
  UpdateBatch out;
  // Pairs deleted earlier in this batch: an insert may legally re-create
  // one (the layer applies same-batch delete + insert cleanly).
  std::set<std::pair<Vertex, Vertex>> deleted;
  std::set<std::pair<Vertex, Vertex>> inserted;
  for (const JournalOp& op : batch.ops) {
    if (op.u < 0 || op.u >= g.num_vertices() || op.v < 0 ||
        op.v >= g.num_vertices()) {
      std::ostringstream os;
      os << "vertex pair (" << op.u << ", " << op.v << ") out of range";
      resolve_error(op, os.str());
    }
    const std::pair<Vertex, Vertex> pair = std::minmax(op.u, op.v);
    const EdgeId found = g.find_edge(op.u, op.v);
    switch (op.kind) {
      case JournalOp::Kind::kInsert:
        if ((found != kInvalidEdge && deleted.count(pair) == 0) ||
            !inserted.insert(pair).second) {
          std::ostringstream os;
          os << "insert duplicates existing edge (" << op.u << ", " << op.v
             << ")";
          resolve_error(op, os.str());
        }
        out.insert.push_back(Edge{op.u, op.v, op.weight});
        break;
      case JournalOp::Kind::kDelete:
      case JournalOp::Kind::kReweight:
        if (found == kInvalidEdge) {
          std::ostringstream os;
          os << "no edge joins (" << op.u << ", " << op.v << ")";
          resolve_error(op, os.str());
        }
        if (op.kind == JournalOp::Kind::kDelete) {
          out.remove.push_back(found);
          deleted.insert(pair);
        } else {
          out.reweight.push_back(WeightUpdate{found, op.weight});
        }
        break;
    }
  }
  return out;
}

}  // namespace ssp
