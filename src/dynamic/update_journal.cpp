#include "dynamic/update_journal.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ssp {

namespace {

[[noreturn]] void journal_error(Index line, const std::string& what) {
  std::ostringstream os;
  os << "update journal, line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

}  // namespace

std::vector<JournalBatch> parse_update_journal(std::istream& in) {
  std::vector<JournalBatch> batches;
  JournalBatch current;
  std::string line;
  Index line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '%' || op[0] == '#') continue;
    if (op == "commit") {
      // Empty commits are ignored: a stray blank batch would still cost a
      // full re-sparsification and shift every later per-batch seed.
      if (!current.ops.empty()) {
        batches.push_back(std::move(current));
        current = JournalBatch{};
      }
      continue;
    }
    JournalOp entry;
    if (op == "insert") {
      entry.kind = JournalOp::Kind::kInsert;
    } else if (op == "delete") {
      entry.kind = JournalOp::Kind::kDelete;
    } else if (op == "reweight") {
      entry.kind = JournalOp::Kind::kReweight;
    } else {
      journal_error(line_no, "unknown operation '" + op + "'");
    }
    if (!(ls >> entry.u >> entry.v)) {
      journal_error(line_no, "expected two vertex ids after '" + op + "'");
    }
    if (entry.kind != JournalOp::Kind::kDelete) {
      if (!(ls >> entry.weight)) {
        journal_error(line_no, "expected a weight after '" + op + " u v'");
      }
      if (!(entry.weight > 0.0) || !std::isfinite(entry.weight)) {
        journal_error(line_no, "weight must be positive and finite");
      }
    }
    current.ops.push_back(entry);
  }
  if (!current.ops.empty()) batches.push_back(std::move(current));
  return batches;
}

std::vector<JournalBatch> load_update_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open update journal: " + path);
  }
  return parse_update_journal(in);
}

UpdateBatch resolve_journal_batch(const Graph& g, const JournalBatch& batch) {
  UpdateBatch out;
  // Pairs deleted earlier in this batch: an insert may legally re-create
  // one (the layer applies same-batch delete + insert cleanly).
  std::set<std::pair<Vertex, Vertex>> deleted;
  std::set<std::pair<Vertex, Vertex>> inserted;
  for (const JournalOp& op : batch.ops) {
    if (op.u < 0 || op.u >= g.num_vertices() || op.v < 0 ||
        op.v >= g.num_vertices()) {
      std::ostringstream os;
      os << "update journal: vertex pair (" << op.u << ", " << op.v
         << ") out of range";
      throw std::runtime_error(os.str());
    }
    const std::pair<Vertex, Vertex> pair = std::minmax(op.u, op.v);
    const EdgeId found = g.find_edge(op.u, op.v);
    switch (op.kind) {
      case JournalOp::Kind::kInsert:
        if ((found != kInvalidEdge && deleted.count(pair) == 0) ||
            !inserted.insert(pair).second) {
          std::ostringstream os;
          os << "update journal: insert duplicates existing edge (" << op.u
             << ", " << op.v << ")";
          throw std::runtime_error(os.str());
        }
        out.insert.push_back(Edge{op.u, op.v, op.weight});
        break;
      case JournalOp::Kind::kDelete:
      case JournalOp::Kind::kReweight:
        if (found == kInvalidEdge) {
          std::ostringstream os;
          os << "update journal: no edge joins (" << op.u << ", " << op.v
             << ")";
          throw std::runtime_error(os.str());
        }
        if (op.kind == JournalOp::Kind::kDelete) {
          out.remove.push_back(found);
          deleted.insert(pair);
        } else {
          out.reweight.push_back(WeightUpdate{found, op.weight});
        }
        break;
    }
  }
  return out;
}

}  // namespace ssp
