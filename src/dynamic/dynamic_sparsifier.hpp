#pragma once

/// \file dynamic_sparsifier.hpp
/// Dynamic update layer: batched edge insertions / deletions / reweights
/// applied incrementally to a live sparsifier, instead of a cold
/// `Sparsifier::run()` from scratch after every change — the
/// continuously-changing-traffic workflow the GRASS-style
/// spectral-perturbation literature targets.
///
/// `ssp::DynamicSparsifier` owns the evolving graph plus its current
/// sparsifier state and applies `UpdateBatch`es:
///
///  1. **Validate** the whole batch up front (ids, weights, and — via one
///     union-find pass over the surviving edges — connectivity), so a bad
///     batch throws before any state changes.
///  2. **Apply + repair**: weights are patched in place, deletions are
///     classified against the persistent backbone (tree-edge deletions
///     trigger spanning-tree repair via union-find + strongest-crossing
///     reconnection; off-tree churn touches nothing), insertions run a
///     path exchange each (tree/tree_repair.hpp).
///  3. **Route** the re-sparsification: reweight-only batches that leave
///     the tree untouched take the `resparsify()`-style warm path; any
///     topology churn re-roots the repaired backbone; and when the dirty
///     fraction (touched edges / final edge count) reaches
///     `rebuild_threshold`, the layer falls back to a cold rebuild
///     (backbone recomputed from scratch by Kruskal). All three routes
///     feed `Sparsifier::rebind()`, which reuses the engine workspace.
///  4. **Sparsify**: the engine densifies to the σ² target and the new
///     result replaces the old one.
///
/// Determinism contract (incremental ≡ cold): the backbone is pinned to
/// the **canonical maximum-weight spanning tree** — unique under the
/// (weight desc, edge id asc) total order — which is the one backbone
/// whose incremental repair provably lands on the same tree as a cold
/// Kruskal rebuild (`DynamicOptions::base.backbone` is therefore
/// ignored). Batch `b` (the constructor's initial build is batch 0) seeds
/// its engine run with the derived stream `Rng(base.seed).split(b)`, so:
///
///  * after any batch, `result()` is **bit-identical** to
///    `sparsify(graph(), cold_equivalent_options())` — a cold rebuild on
///    the final graph — whatever mix of incremental routes produced it
///    (with `warm_refine` off, the default);
///  * `rebuild_threshold` changes wall time only, never a bit of output:
///    the cold-rebuild route recomputes by Kruskal exactly the tree the
///    repair path maintains;
///  * thread counts change wall time only (the engine's own contract,
///    sparsifier_engine.hpp, carries over verbatim);
///  * distinct batches draw from decorrelated split streams, so replaying
///    a journal is reproducible batch by batch.
///
/// `with_warm_refine(true)` trades that bit-exactness for speed: the
/// previous off-tree selection is pre-accepted via `rebind()`'s
/// `keep_offtree`, so an update whose sparsifier still meets the σ²
/// target finishes after a single estimation round. Results then drift
/// from the cold rebuild (they keep edges a cold run would re-rank) but
/// stay spectrally equivalent — κ still converges to the same σ² target,
/// and `rebuild_threshold` bounds the drift by periodically resetting to
/// the cold path. The differential harness (tests/harness.hpp) checks
/// both regimes.
///
/// **Localized re-estimation** (`base.estimation =
/// EstimationMode::kLocalized`) makes the *exact* route fast without
/// giving up a bit of the cold contract. What is cached: the engine keeps
/// one double per off-tree edge — its tree stretch w_e·R_T(u,v), the
/// localized heat (core/stretch.hpp) — across batches. When caches
/// invalidate: the repaired `MaxWeightTree` records every previous-tree
/// edge that was reweighted, swapped out, or deleted
/// (tree/tree_repair.hpp). Because the final tree keeps every
/// previous-tree edge that is *not* recorded, an edge's tree path — and
/// with it the cached stretch — changed iff its path in the PREVIOUS
/// tree crossed a recorded edge. This layer tests exactly that on the
/// outgoing backbone before replacing it: label each vertex with its
/// innermost recorded ancestor edge in one O(n) pass, and flag an edge
/// dirty iff its endpoints' labels differ or the batch touched the edge
/// itself (inserted/reweighted). The rule is exact, not a
/// detour-path over-approximation: a clean flag proves the old and new
/// paths are the same edges at the same weights. Only flagged heats are
/// recomputed; everything
/// else is reused verbatim through `rebind()`'s HeatWarmStart. The
/// kRebuild route and `resparsify()`-style weight rebinds drop the cache
/// wholesale. Why bit-parity survives: the canonical stretch walk is a
/// pure function of the edge's own rooted tree path, so an edge whose
/// path the batch provably did not touch reproduces the cold-computed
/// double exactly — reuse returns the same bits recomputation would, and
/// the filter consumes an embedding indistinguishable from a cold run's.
/// `UpdateStats::heats_reused/heats_recomputed` and the
/// `dynamic.heats.*` metrics report the split per batch.
///
/// The vertex set is fixed for the lifetime of the sparsifier; deletions
/// that would disconnect the graph are rejected.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/sparsifier.hpp"
#include "core/sparsifier_engine.hpp"
#include "tree/tree_repair.hpp"
#include "util/union_find.hpp"

namespace ssp {

/// Weight replacement for one existing edge.
struct WeightUpdate {
  EdgeId edge = kInvalidEdge;
  double weight = 0.0;  ///< new weight (> 0, finite)
};

/// One batch of updates. `remove` and `reweight` reference edge ids of
/// the graph *before* the batch; `insert` edges are appended after the
/// removals compact the id space (so the k-th inserted edge gets id
/// `graph().num_edges() - insert.size() + k` once the batch lands).
struct UpdateBatch {
  std::vector<Edge> insert;
  std::vector<EdgeId> remove;
  std::vector<WeightUpdate> reweight;

  [[nodiscard]] bool empty() const {
    return insert.empty() && remove.empty() && reweight.empty();
  }
  [[nodiscard]] EdgeId size() const {
    return static_cast<EdgeId>(insert.size() + remove.size() +
                               reweight.size());
  }
};

/// How a batch reached the engine.
enum class UpdateRoute {
  kResparsify,  ///< reweight-only, tree untouched — pure warm start
  kTreeRepair,  ///< incremental backbone repair, then rebind
  kRebuild,     ///< dirty fraction >= threshold — cold Kruskal rebuild
};

/// Stages reported through `DynamicObserver::on_dynamic_stage`.
enum class DynamicStage {
  kValidate,    ///< batch validation incl. connectivity pre-check
  kApplyGraph,  ///< graph mutation + CSR rebuild
  kTreeRepair,  ///< backbone repair / cold Kruskal + re-rooting
  kRebind,      ///< engine warm-start rebind
  kSparsify,    ///< engine densification run
};

/// Number of DynamicStage values (for per-stage accumulation arrays).
inline constexpr int kNumDynamicStages = 5;

/// Telemetry of one applied batch (or the initial build, batch 0).
struct UpdateStats {
  Index batch = 0;           ///< 0 = initial build
  EdgeId inserted = 0;
  EdgeId removed = 0;
  EdgeId reweighted = 0;
  EdgeId tree_removed = 0;   ///< removed edges that were tree edges
  EdgeId tree_swaps = 0;     ///< backbone exchange/reconnection repairs
  double dirty_fraction = 0.0;
  UpdateRoute route = UpdateRoute::kRebuild;
  EdgeId graph_edges = 0;       ///< |E| after the batch
  EdgeId sparsifier_edges = 0;  ///< |Es| after re-sparsification
  double sigma2_estimate = 0.0;
  bool reached_target = false;
  /// Localized-estimation reuse accounting (EstimationMode::kLocalized
  /// only; zeros in power mode): off-tree heats reused from the previous
  /// batch's cache vs recomputed because the batch dirtied them.
  EdgeId heats_reused = 0;
  EdgeId heats_recomputed = 0;
  double seconds = 0.0;
  /// Wall seconds per DynamicStage for this batch.
  std::array<double, kNumDynamicStages> stage_seconds{};
};

/// Telemetry hook mirroring `ScaleObserver`: `on_dynamic_stage` as each
/// stage of a batch finishes, then one `on_update` with the batch totals.
/// Callbacks run on the applying thread and must not re-enter the layer.
class DynamicObserver {
 public:
  virtual ~DynamicObserver() = default;
  virtual void on_dynamic_stage(DynamicStage /*stage*/, double /*seconds*/) {}
  virtual void on_update(const UpdateStats& /*stats*/) {}
};

struct DynamicOptions {
  /// Engine options for every (re-)sparsification. `base.seed` is the
  /// root of the per-batch split streams; `base.backbone` is ignored
  /// (the layer pins the canonical max-weight tree — see the file
  /// comment).
  SparsifyOptions base;
  /// Cold-rebuild fallback: a batch whose dirty fraction (touched edges /
  /// final edge count) is >= this rebuilds the backbone from scratch.
  /// 0 forces a rebuild every batch; > 1 never rebuilds. With
  /// `warm_refine` off this changes wall time only, never the result.
  double rebuild_threshold = 0.25;
  /// Pre-accept the previous off-tree selection instead of densifying
  /// from the bare tree (faster, spectrally equivalent, not bit-equal to
  /// a cold rebuild). Ignored on the kRebuild route.
  bool warm_refine = false;

  /// Full validation; throws std::invalid_argument on the first violated
  /// constraint (including `base.validate()`).
  void validate() const;

  DynamicOptions& with_base(SparsifyOptions opts);
  DynamicOptions& with_rebuild_threshold(double fraction);
  DynamicOptions& with_warm_refine(bool on);
};

/// Complete sparsifier state of a `DynamicSparsifier` at a batch
/// boundary — everything a fresh process needs to continue the update
/// stream bit-identically, *given the same graph* (reconstructed by
/// replaying the journal's graph mutations up to the same batch). This
/// is the payload `storage::save_checkpoint` serializes; the restoring
/// constructor consumes it without running a single engine round.
struct DynamicRestoreState {
  Vertex vertices = 0;  ///< graph shape check against the replayed graph
  EdgeId edges = 0;
  /// Canonical max-weight backbone (rooted tree-edge order,
  /// `SpanningTree::tree_edge_ids()` at capture time).
  std::vector<EdgeId> tree_edges;
  /// Accepted off-tree selection, in acceptance order (`result().edges`
  /// minus the tree prefix).
  std::vector<EdgeId> offtree_edges;
  /// Engine telemetry scalars of the captured terminal result.
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  double sigma2_estimate = 0.0;
  bool reached_target = false;
  StepStatus status = StepStatus::kConverged;
  /// Full per-batch telemetry log (restores history()/batches_applied(),
  /// and with them the per-batch seed derivation for future batches).
  std::vector<UpdateStats> history;
};

/// Dynamic sparsifier driver. Copies the input graph, runs the initial
/// sparsification (batch 0) eagerly, then applies batches in order. Not
/// copyable; API-level single-threaded like the engine (each batch fans
/// out internally per `base.threads`).
class DynamicSparsifier {
 public:
  /// Binds to a copy of `g` (finalized, connected, >= 2 vertices) and
  /// runs the initial sparsification (batch 0). Pass `observer` here —
  /// not only via set_observer() — to receive the initial build's
  /// telemetry too (the build completes before set_observer() could run).
  explicit DynamicSparsifier(const Graph& g, DynamicOptions opts = {},
                             DynamicObserver* observer = nullptr);

  /// Warm restore: binds to a copy of `g` (which must be the graph the
  /// checkpointed instance held — same vertex and edge counts, same ids;
  /// callers rebuild it by replaying the journal's graph mutations) and
  /// re-creates backbone, engine selection, and telemetry from `state`
  /// WITHOUT re-running the engine. Afterwards `result()`, `history()`,
  /// and every future `apply()` are bit-identical to the instance that
  /// produced the checkpoint — the foundation of the serving daemon's
  /// kill/restart warm path.
  DynamicSparsifier(const Graph& g, DynamicOptions opts,
                    const DynamicRestoreState& state,
                    DynamicObserver* observer = nullptr);

  /// Captures the full restore payload at the current batch boundary.
  [[nodiscard]] DynamicRestoreState restore_state() const;

  DynamicSparsifier(const DynamicSparsifier&) = delete;
  DynamicSparsifier& operator=(const DynamicSparsifier&) = delete;

  /// Attaches (or detaches, with nullptr) the telemetry observer; must
  /// outlive the driver or be detached first.
  void set_observer(DynamicObserver* observer) { observer_ = observer; }

  /// Applies one batch atomically: validation failures throw
  /// std::invalid_argument and leave graph, backbone, and sparsifier
  /// untouched. Returns this batch's telemetry (a copy; the full log
  /// stays in history()).
  UpdateStats apply(const UpdateBatch& batch);

  /// Single-kind conveniences, each one batch.
  UpdateStats insert_edges(std::span<const Edge> edges);
  UpdateStats delete_edges(std::span<const EdgeId> edge_ids);
  UpdateStats reweight_edges(std::span<const WeightUpdate> updates);

  /// The current (post-batch) graph. `result()` edge ids index into it.
  [[nodiscard]] const Graph& graph() const { return graph_; }

  /// The current sparsifier (engine result; backbone-first edge order).
  [[nodiscard]] const SparsifyResult& result() const;

  /// Telemetry of every batch applied so far, batch 0 first.
  [[nodiscard]] const std::vector<UpdateStats>& history() const {
    return history_;
  }

  /// Batches applied, counting the initial build.
  [[nodiscard]] Index batches_applied() const {
    return static_cast<Index>(history_.size());
  }

  /// Options whose cold `sparsify(graph(), cold_equivalent_options())`
  /// reproduces `result()` bit for bit (warm_refine off): the base
  /// options with the canonical kMaxWeight backbone and the current
  /// batch's derived seed. The differential harness rests on this.
  [[nodiscard]] SparsifyOptions cold_equivalent_options() const;

  /// The engine seed batch `batch` draws for a layer rooted at
  /// `base_seed` — the single definition of the per-batch stream
  /// derivation (benches and external cold baselines use it too).
  [[nodiscard]] static std::uint64_t batch_seed(std::uint64_t base_seed,
                                                Index batch) {
    return Rng(base_seed).split(static_cast<std::uint64_t>(batch))();
  }

  [[nodiscard]] const DynamicOptions& options() const { return opts_; }

  /// The engine's localized per-edge heat cache (empty in power mode) —
  /// exposed so the differential tests can prove dirty-set correctness by
  /// diffing it bitwise against a cold stretch recompute after every
  /// batch. Indexed by current edge id; tree-edge slots unspecified.
  [[nodiscard]] std::span<const double> localized_heat_cache() const {
    return engine_->localized_heat_cache();
  }

 private:
  [[nodiscard]] std::uint64_t batch_seed(Index batch) const {
    return batch_seed(opts_.base.seed, batch);
  }
  void validate_batch(const UpdateBatch& batch) const;
  void rebuild_backbone_cold();
  void notify_stage(DynamicStage stage, double seconds,
                    UpdateStats& stats) const;
  /// Fills dirty_scratch_ (one flag per current edge id) from the tree's
  /// recorded previous-tree dirty edges + the batch-touched ids — the
  /// localized warm start's recompute set. Must run on the OUTGOING
  /// backbone (before it is re-emplaced): the labels are computed on the
  /// previous tree. `old_m` is the edge count before this batch's
  /// mutations and `remap` the compaction map from `Graph::remove_edges`
  /// (empty = identity). See the file comment for the exactness argument.
  void compute_dirty_mask(std::span<const EdgeId> touched_new_ids,
                          std::span<const EdgeId> remap, EdgeId old_m);

  DynamicOptions opts_;
  Graph graph_;
  std::optional<MaxWeightTree> tree_;      ///< persistent repaired backbone
  std::optional<SpanningTree> backbone_;   ///< rooted view, rebuilt per batch
  std::optional<Sparsifier> engine_;
  DynamicObserver* observer_ = nullptr;
  std::vector<UpdateStats> history_;
  /// Connectivity pre-check scratch, reset() per batch instead of
  /// reallocated.
  mutable UnionFind uf_scratch_{0};
  // Localized dirty-set scratch, reused across batches.
  std::vector<char> dirty_scratch_;       ///< per new edge id
  std::vector<char> dirty_tree_scratch_;  ///< per OLD edge id (tree edges)
  std::vector<EdgeId> label_scratch_;     ///< innermost dirty ancestor edge
};

/// One-shot wrapper outcome: the final graph, its sparsifier, and the
/// per-batch telemetry.
struct DynamicResult {
  Graph graph;
  SparsifyResult result;
  std::vector<UpdateStats> history;
};

/// Replays `script` through a fresh `DynamicSparsifier` and returns the
/// final state.
[[nodiscard]] DynamicResult dynamic_sparsify(
    const Graph& g, std::span<const UpdateBatch> script,
    const DynamicOptions& opts = {});

/// Applies only the *graph* mutations of `batch` to `g` — reweights,
/// then inserts, then removals (with id compaction), then `finalize()`;
/// exactly the order `DynamicSparsifier::apply` mutates its copy, so a
/// sequence of batches replayed through this function reproduces the
/// dynamic layer's graph bit for bit without paying a single
/// re-sparsification. This is the fast-forward step of checkpoint
/// restore: replay the journal's graph mutations up to the checkpointed
/// batch, then hand the graph plus the stored `DynamicRestoreState` to
/// the restoring constructor.
void apply_batch_to_graph(Graph& g, const UpdateBatch& batch);

}  // namespace ssp
