#pragma once

/// \file update_journal.hpp
/// Text journal of graph updates — the replay format behind
/// `ssp_sparsify --update-file` and the golden determinism fixtures.
///
/// One operation per line, batches separated by `commit`:
///
/// ```
/// % comments ('%' or '#') and blank lines are skipped
/// insert   u v w     % add edge {u, v} with weight w
/// delete   u v       % remove the edge joining u and v
/// reweight u v w     % replace the weight of edge {u, v} with w
/// commit             % apply everything since the previous commit
/// ```
///
/// Vertices are 0-based. Operations reference edges by endpoints (edge
/// ids are an in-memory detail that shifts across deletions); the
/// resolver maps them onto the live graph immediately before each batch
/// is applied, so a journal stays valid for the whole replay. Trailing
/// operations without a final `commit` form one last batch; empty
/// commits are ignored (they would otherwise pay a re-sparsification and
/// shift the per-batch seeds).
///
/// The line grammar itself (tokenizer, per-line parser, canonical
/// formatter, `JournalOp`) lives in journal_wire.hpp, shared with the
/// serving daemon's wire protocol (src/serve/) — this file owns only the
/// batch structure and the resolve step.

#include <iosfwd>
#include <string>
#include <vector>

#include "dynamic/dynamic_sparsifier.hpp"
#include "dynamic/journal_wire.hpp"
#include "graph/graph.hpp"

namespace ssp {

/// The operations of one `commit`-delimited batch.
struct JournalBatch {
  std::vector<JournalOp> ops;
};

/// Parses a journal stream. Throws JournalParseError (a
/// std::runtime_error) on malformed input — unknown verb, bad arity,
/// non-numeric ids/weights, non-positive weight, trailing garbage —
/// naming the 1-based line number and echoing the offending line.
[[nodiscard]] std::vector<JournalBatch> parse_update_journal(std::istream& in);

/// File-path convenience overload; throws std::runtime_error when the
/// file cannot be opened.
[[nodiscard]] std::vector<JournalBatch> load_update_journal(
    const std::string& path);

/// Resolves one journal batch against the *current* graph: endpoint pairs
/// become edge ids for delete/reweight (throws std::runtime_error when no
/// such edge exists, or when an insert duplicates an existing edge; the
/// message names the op's source line when it carries one). Resolve each
/// batch right before applying it — earlier batches shift the id space.
[[nodiscard]] UpdateBatch resolve_journal_batch(const Graph& g,
                                                const JournalBatch& batch);

}  // namespace ssp
